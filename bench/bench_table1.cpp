// Table 1 — costs of basic operations.
//
//   Intra-node message (to dormant)   paper: 2.3 us
//   Intra-node message (to active)    paper: 9.6 us
//   Intra-node creation               paper: 2.1 us
//   Latency of inter-node message     paper: 8.9 us
//
// Each row is measured end-to-end inside the simulator (modeled SPARC
// microseconds), the way the paper measured it: repeated invocation of a
// null method / repeated one-word ping between two dormant objects. The
// google-benchmark section then times the *same runtime code paths* in real
// host nanoseconds, demonstrating the implementation itself is cheap.
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "apps/pingpong.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

struct Env {
  core::Program prog;
  apps::CounterProgram cp;
  apps::PingPongProgram pp;
  Env() {
    cp = apps::register_counter(prog);
    pp = apps::register_pingpong(prog);
    prog.finalize();
  }
};

// Modeled cost of one intra-node send to a *dormant* object.
double measure_dormant_us(Env& env, int iters) {
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  double out = 0;
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);  // warm-up: lazy init
    sim::Instr t0 = ctx.clock();
    for (int i = 0; i < iters; ++i) ctx.send_past(c, env.cp.noop, nullptr, 0);
    out = cfg.cost.us(ctx.clock() - t0) / iters;
  });
  return out;
}

// Modeled cost of one intra-node send to an *active* object: the object
// fills its own queue (it is active while sending), and each buffered
// message then pays frame allocation, queueing and a scheduling-queue round
// trip.
double measure_active_us(Env& env, int iters) {
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);
  });
  // Window covers both halves of the active path: buffering each message
  // (queuing procedure) and the later scheduling-queue round trip.
  sim::Instr t0 = world.max_clock();
  world.boot(0, [&](Ctx& ctx) {
    Word args[2] = {static_cast<Word>(iters), env.cp.noop};
    ctx.send_past(c, env.cp.fill, args, 2);
  });
  world.run();
  return world.config().cost.us(world.max_clock() - t0) / iters;
}

double measure_create_us(Env& env, int iters) {
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  double out = 0;
  world.boot(0, [&](Ctx& ctx) {
    sim::Instr t0 = ctx.clock();
    for (int i = 0; i < iters; ++i) ctx.create_local(*env.cp.cls, nullptr, 0);
    out = cfg.cost.us(ctx.clock() - t0) / iters;
  });
  return out;
}

double measure_internode_us(Env& env, int rounds) {
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(env.prog, cfg);
  auto r = apps::run_pingpong(world, env.pp, 0, 1, static_cast<std::uint64_t>(rounds));
  return r.us_per_message;
}

void print_table1() {
  Env env;
  bench::header("Table 1: costs of basic operations (modeled us, 25 MHz SPARC)");
  util::Table t({"Operation", "Paper (us)", "Measured (us)"});
  t.add_row({"Intra-node message (to dormant)", "2.3",
             util::Table::num(measure_dormant_us(env, 100000), 2)});
  t.add_row({"Intra-node message (to active)", "9.6",
             util::Table::num(measure_active_us(env, 100000), 2)});
  t.add_row({"Intra-node creation", "2.1",
             util::Table::num(measure_create_us(env, 100000), 2)});
  t.add_row({"Latency of inter-node message", "8.9",
             util::Table::num(measure_internode_us(env, 20000), 2)});
  t.print();
}

// ---- host-nanosecond microbenchmarks of the same paths ----------------------

void BM_IntraNodeDormantSend(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);
    for (auto _ : state) {
      ctx.send_past(c, env.cp.noop, nullptr, 0);
    }
  });
}
BENCHMARK(BM_IntraNodeDormantSend);

void BM_IntraNodeCreate(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ctx.create_local(*env.cp.cls, nullptr, 0));
    }
  });
}
BENCHMARK(BM_IntraNodeCreate);

void BM_LocalNowCallFastPath(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.inc, nullptr, 0);
    for (auto _ : state) {
      core::NowCall call = ctx.send_now(c, env.cp.get, nullptr, 0);
      benchmark::DoNotOptimize(ctx.reply_ready(call));
      benchmark::DoNotOptimize(ctx.take_reply(call));
    }
  });
}
BENCHMARK(BM_LocalNowCallFastPath);

void BM_InterNodePingPong(benchmark::State& state) {
  // Full simulator step cost per one-way message (host time).
  Env env;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WorldConfig cfg;
    cfg.with_nodes(2);
    World world(env.prog, cfg);
    state.ResumeTiming();
    auto r = apps::run_pingpong(world, env.pp, 0, 1, 5000);
    msgs += r.bounces;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
}
BENCHMARK(BM_InterNodePingPong)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
