// Figure 6 — effect of stack-based scheduling.
//
// Paper: the naive scheduler (always buffer the message + schedule the
// object through the scheduling queue) is compared against the integrated
// stack/queue scheduler on N-queens, N = 9..12; stack scheduling wins by
// roughly 30%, and ~75% of local messages go to dormant-mode objects.
#include <benchmark/benchmark.h>

#include "apps/nqueens.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

struct Row {
  double stack_ms = 0;
  double naive_ms = 0;
  double dormant_frac = 0;
};

Row measure(int n, int nodes) {
  Row row;
  for (int naive = 0; naive < 2; ++naive) {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(nodes);
    cfg.node.policy =
        naive ? core::SchedPolicy::kNaive : core::SchedPolicy::kStack;
    World world(prog, cfg);
    auto p = apps::NQueensParams::paper_calibrated(n);
    auto r = apps::run_nqueens(world, np, p);
    if (naive) {
      row.naive_ms = r.sim_ms;
    } else {
      row.stack_ms = r.sim_ms;
      row.dormant_frac = static_cast<double>(r.stats.local_to_dormant) /
                         static_cast<double>(r.stats.local_sends);
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::header("Figure 6: effect of stack-based scheduling (64 PEs)");
  util::Table t({"N", "Stack (ms)", "Naive (ms)", "Naive/Stack",
                 "Local msgs to dormant"});
  for (int n : {9, 10, 11, 12}) {
    Row r = measure(n, 64);
    t.add_row({std::to_string(n), util::Table::num(r.stack_ms, 1),
               util::Table::num(r.naive_ms, 1),
               util::Table::num(r.naive_ms / r.stack_ms, 2),
               bench::pct(r.dormant_frac)});
  }
  t.print();
  std::printf(
      "paper: ~30%% speedup from stack scheduling; ~75%% of local messages "
      "to dormant objects\n");
  return 0;
}
