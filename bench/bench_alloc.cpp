// Hot-path memory-subsystem ablation: slab-pooled node heaps + recycled
// packet buffers (the default) vs general-purpose allocation on every
// request (WorldConfig::pooling = false).
//
// Both modes run the same Figure-5-style N-queens workload (P = 64 nodes)
// under the serial Machine and the 8-thread ParallelMachine. Pooling is a
// host-side policy, so every simulated quantity — solutions, sim_time,
// quanta, packet counts, the slab alloc/free totals — must be identical
// across modes AND byte-identical across drivers; any divergence fails the
// bench. The wall-clock columns are where the modes are allowed to differ,
// and the pooled mode must win (reported, not gated — host timing is too
// noisy for CI pass/fail).
//
// Machine-readable counters land in BENCH_alloc.json (override with
// ABCLSIM_BENCH_JSON). Everything in it except wall_ms/host_cores is
// deterministic; CI regression-compares it against the committed baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "apps/nqueens.hpp"
#include "bench_common.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace abcl;

struct Sample {
  double wall_ms = 0.0;
  std::int64_t solutions = 0;
  sim::Instr sim_time = 0;
  std::uint64_t quanta = 0;
  std::uint64_t packets = 0;
  util::SlabAllocator::Stats alloc;
  std::string metrics;
};

Sample run_once(bool pooling, int host_threads, const apps::NQueensParams& p) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  WorldConfig cfg = WorldConfig{}
                        .with_nodes(64)
                        .with_host_threads(host_threads == 0 ? -1 : host_threads)
                        .with_pooling(pooling);
  World world(prog, cfg);

  auto t0 = std::chrono::steady_clock::now();
  auto r = apps::run_nqueens(world, np, p);
  auto t1 = std::chrono::steady_clock::now();

  Sample s;
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.solutions = r.solutions;
  s.sim_time = r.sim_time;
  s.quanta = r.rep.quanta;
  s.packets = world.network().stats().packets;
  s.alloc = world.total_alloc_stats();
  s.metrics = obs::metrics_json(world, &r.rep);
  return s;
}

// Best-of-k wall time; counters/metrics are identical across repeats by the
// determinism contract (asserted in main for the run pairs that matter).
Sample run_best(bool pooling, int host_threads, const apps::NQueensParams& p,
                int reps) {
  Sample best = run_once(pooling, host_threads, p);
  for (int i = 1; i < reps; ++i) {
    Sample s = run_once(pooling, host_threads, p);
    if (s.wall_ms < best.wall_ms) best = s;
  }
  return best;
}

void alloc_fields(std::FILE* f, const util::SlabAllocator::Stats& a) {
  std::fprintf(f,
               "\"allocs\": %llu, \"frees\": %llu, \"freelist_hits\": %llu, "
               "\"slab_refills\": %llu, \"slots_carved\": %llu, "
               "\"backing_bytes\": %llu",
               static_cast<unsigned long long>(a.allocs),
               static_cast<unsigned long long>(a.frees),
               static_cast<unsigned long long>(a.freelist_hits),
               static_cast<unsigned long long>(a.slab_refills),
               static_cast<unsigned long long>(a.slots_carved),
               static_cast<unsigned long long>(a.backing_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // accepted for interface uniformity
  bench::header("Memory subsystem ablation: slab/packet pooling on vs off");

  const int n = bench::env_int("ABCLSIM_NQUEENS_N", 9);
  const int reps = bench::env_int("ABCLSIM_BENCH_REPS", 3);
  const auto p = apps::NQueensParams::paper_calibrated(n);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("N = %d, P = 64, host cores = %u, best of %d\n", n, cores, reps);

  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      ok = false;
      std::printf("FAIL: %s\n", what);
    }
  };

  Sample pooled_serial = run_best(true, 0, p, reps);
  Sample pooled_par8 = run_best(true, 8, p, reps);
  Sample heap_serial = run_best(false, 0, p, reps);
  Sample heap_par8 = run_best(false, 8, p, reps);

  // Cross-driver byte-identity, per mode.
  check(pooled_serial.metrics == pooled_par8.metrics,
        "pooling on: serial vs 8-thread metrics snapshots differ");
  check(heap_serial.metrics == heap_par8.metrics,
        "pooling off: serial vs 8-thread metrics snapshots differ");

  // Pooling must not change the simulation.
  check(pooled_serial.solutions == heap_serial.solutions &&
            pooled_serial.sim_time == heap_serial.sim_time &&
            pooled_serial.quanta == heap_serial.quanta &&
            pooled_serial.packets == heap_serial.packets,
        "pooling changed simulated results");
  check(pooled_serial.alloc.allocs == heap_serial.alloc.allocs &&
            pooled_serial.alloc.frees == heap_serial.alloc.frees,
        "pooling changed the allocation sequence");

  // The pooled mode must actually recycle. Long-lived structures never
  // return, so the denominator is the churn: every free makes a slot
  // eligible for reuse, and most of them must come back as freelist hits.
  check(pooled_serial.alloc.freelist_hits * 2 > pooled_serial.alloc.frees,
        "slab freelists barely used");
  check(pooled_serial.alloc.backing_bytes < heap_serial.alloc.backing_bytes,
        "pooled backing memory not below the unpooled baseline");
  check(heap_serial.alloc.freelist_hits == 0 &&
            heap_serial.alloc.slab_refills == 0,
        "unpooled mode unexpectedly touched the slab machinery");

  struct Row {
    const char* mode;
    const char* driver;
    const Sample* s;
  };
  const Row rows[] = {{"pooled", "serial", &pooled_serial},
                      {"pooled", "8 threads", &pooled_par8},
                      {"heap", "serial", &heap_serial},
                      {"heap", "8 threads", &heap_par8}};
  util::Table t({"Mode", "Driver", "Wall (ms)", "ns/msg", "Freelist hits",
                 "Slab refills", "Backing KiB"});
  for (const Row& r : rows) {
    double ns_per_msg = r.s->packets == 0
                            ? 0.0
                            : r.s->wall_ms * 1e6 /
                                  static_cast<double>(r.s->packets);
    t.add_row({r.mode, r.driver, util::Table::num(r.s->wall_ms, 1),
               util::Table::num(ns_per_msg, 0),
               util::Table::num(r.s->alloc.freelist_hits),
               util::Table::num(r.s->alloc.slab_refills),
               util::Table::num(r.s->alloc.backing_bytes >> 10)});
  }
  t.print();
  std::printf("pooled vs heap wall: %.2fx (serial), %.2fx (8 threads)\n",
              heap_serial.wall_ms / pooled_serial.wall_ms,
              heap_par8.wall_ms / pooled_par8.wall_ms);

  const char* path = std::getenv("ABCLSIM_BENCH_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_alloc.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"alloc_ablation_nqueens\",\n");
    std::fprintf(f, "  \"n\": %d,\n  \"host_cores\": %u,\n", n, cores);
    std::fprintf(f, "  \"gates_passed\": %s,\n", ok ? "true" : "false");
    std::fprintf(f,
                 "  \"solutions\": %lld,\n  \"sim_time\": %llu,\n"
                 "  \"quanta\": %llu,\n  \"packets\": %llu,\n",
                 static_cast<long long>(pooled_serial.solutions),
                 static_cast<unsigned long long>(pooled_serial.sim_time),
                 static_cast<unsigned long long>(pooled_serial.quanta),
                 static_cast<unsigned long long>(pooled_serial.packets));
    std::fprintf(f, "  \"pooled\": {\"wall_ms\": %.3f, ", pooled_serial.wall_ms);
    alloc_fields(f, pooled_serial.alloc);
    std::fprintf(f, "},\n  \"unpooled\": {\"wall_ms\": %.3f, ",
                 heap_serial.wall_ms);
    alloc_fields(f, heap_serial.alloc);
    std::fprintf(f, "}\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::printf("could not open %s for writing\n", path);
  }
  return ok ? 0 : 1;
}
