// Table 2 — breakdown of an intra-node message to a dormant object.
//
//   Check Locality                      3
//   Lookup and Call                     5
//   Switch VFTP to Active Mode          3
//   Execution of Method Body            -
//   Check Message Queue                 3
//   Switch VFTP to Dormant Mode         3
//   Polling of Remote Message           5
//   Adjusting Stack Pointer and Return  3
//   Total                              25
//
// The harness verifies the modeled runtime charges exactly these
// components (by measuring one send end-to-end and by eliding one
// component at a time), and reproduces Section 6.1's optimization range
// 25 -> 8 instructions.
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

sim::Instr measured_send_cost(const sim::CostModel& cost) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.with_cost(cost);
  World world(prog, cfg);
  sim::Instr out = 0;
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*cp.cls, nullptr, 0);
    ctx.send_past(c, cp.noop, nullptr, 0);  // lazy init out of the way
    sim::Instr t0 = ctx.clock();
    ctx.send_past(c, cp.noop, nullptr, 0);
    out = ctx.clock() - t0;
  });
  return out;
}

void print_breakdown() {
  sim::CostModel cm = sim::CostModel::ap1000();
  bench::header("Table 2: breakdown of intra-node message to dormant object");
  util::Table t({"Component", "Paper (instr)", "Model (instr)"});
  t.add_row({"Check Locality", "3", std::to_string(cm.locality_check)});
  t.add_row({"Lookup and Call", "5", std::to_string(cm.lookup_call)});
  t.add_row({"Switch VFTP to Active Mode", "3", std::to_string(cm.vftp_switch)});
  t.add_row({"Execution of Method Body", "-", "-"});
  t.add_row({"Check Message Queue", "3", std::to_string(cm.mq_check)});
  t.add_row({"Switch VFTP to Dormant Mode", "3", std::to_string(cm.vftp_switch)});
  t.add_row({"Polling of Remote Message", "5", std::to_string(cm.poll_remote)});
  t.add_row({"Adjusting Stack Pointer and Return", "3",
             std::to_string(cm.stack_return)});
  t.add_row({"Total", "25", std::to_string(measured_send_cost(cm))});
  t.print();
}

void print_optimizations() {
  bench::header(
      "Section 6.1 optimizations: dormant send, 25 -> 8 instructions");
  util::Table t({"Configuration", "Instructions", "us"});
  struct Row {
    const char* name;
    bool loc, vftp, mq, poll;
  };
  const Row rows[] = {
      {"baseline (all checks)", false, false, false, false},
      {"+ locality check elided (known-local)", true, false, false, false},
      {"+ VFTP switch elided (non-blocking method)", true, true, false, false},
      {"+ message-queue check elided (not history-sensitive)", true, true, true,
       false},
      {"+ polling hoisted (small method)", true, true, true, true},
  };
  for (const Row& r : rows) {
    sim::CostModel cm = sim::CostModel::ap1000();
    cm.opt.elide_locality_check = r.loc;
    cm.opt.elide_vftp_switch = r.vftp;
    cm.opt.elide_mq_check = r.mq;
    cm.opt.elide_poll = r.poll;
    sim::Instr c = measured_send_cost(cm);
    t.add_row({r.name, std::to_string(c), util::Table::num(cm.us(c), 2)});
  }
  t.print();
  std::printf("(paper: \"the overhead ... varies from 8 ... to 25 instructions\")\n");
}

// Host-ns: each elision also shortens the real code path (fewer branches /
// charges); measure the baseline runtime path for reference.
void BM_DormantSendBaseline(benchmark::State& state) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*cp.cls, nullptr, 0);
    ctx.send_past(c, cp.noop, nullptr, 0);
    for (auto _ : state) ctx.send_past(c, cp.noop, nullptr, 0);
  });
}
BENCHMARK(BM_DormantSendBaseline);

}  // namespace

int main(int argc, char** argv) {
  print_breakdown();
  print_optimizations();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
