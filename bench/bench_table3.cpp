// Table 3 — comparison of send/reply latency (a remote now-type method
// invocation: request + reply).
//
// Paper rows (4th PPOPP, Table 3; J-Machine/EM4 figures as the paper cites
// them): ABCL/onAP1000 ~160 instructions, 17.8 us, ~450 cycles at 25 MHz;
// ABCL/onEM4 ~9 us (~110 cycles, 12.5 MHz); CST on the J-Machine ~220
// cycles (~17.6 us at 12.5 MHz). The paper's point: the stock-hardware
// implementation is within ~2-4x of the fine-grain machines once
// normalized to clock speed.
//
// We measure the same quantity in the simulator: a blocked now-type call to
// a remote object, request and reply crossing the wire, context save +
// resume on the sender.
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

// RoundTripper: "rt.go" [target_node, target_ptr, get_pat, n] — performs n
// sequential now-type calls, awaiting each reply.
struct RtState {
  std::int64_t done_calls = 0;
};

struct RtGoFrame : Frame {
  MailAddr target;
  PatternId get_pat = 0;
  std::int64_t n = 0;
  std::int64_t i = 0;
  NowCall call;
  static void init(RtGoFrame& f, const Msg& m) {
    f.target = m.addr(0);
    f.get_pat = static_cast<PatternId>(m.at(2));
    f.n = m.i64(3);
  }
  static Status run(Ctx& ctx, RtState& self, RtGoFrame& f) {
    ABCL_BEGIN(f);
    while (f.i < f.n) {
      f.call = ctx.send_now(f.target, f.get_pat, nullptr, 0);
      ABCL_AWAIT(ctx, f, 1, f.call);
      ctx.take_reply(f.call);
      f.i += 1;
      self.done_calls += 1;
    }
    ABCL_END();
  }
};

struct RoundTrip {
  double us_per_roundtrip = 0;
  double instr_per_roundtrip = 0;
};

RoundTrip measure_roundtrip(int nodes, NodeId a, NodeId b, int iters) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  PatternId go = prog.patterns().intern("rt.go", 4);
  ClassDef<RtState> def(prog, "RoundTripper");
  def.method<RtGoFrame>(go);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(nodes);
  World world(prog, cfg);
  MailAddr c;
  world.boot(b, [&](Ctx& ctx) {
    c = ctx.create_local(*cp.cls, nullptr, 0);
    ctx.send_past(c, cp.inc, nullptr, 0);
  });
  world.run();
  sim::Instr t0 = world.max_clock();
  world.boot(a, [&](Ctx& ctx) {
    MailAddr rt = ctx.create_local(def.info(), nullptr, 0);
    Word args[4] = {c.word_node(), c.word_ptr(), cp.get,
                    static_cast<Word>(iters)};
    ctx.send_past(rt, go, args, 4);
  });
  world.run();
  sim::Instr dt = world.max_clock() - t0;
  RoundTrip r;
  r.us_per_roundtrip = cfg.cost.us(dt) / iters;
  r.instr_per_roundtrip = static_cast<double>(dt) / iters;
  return r;
}

void print_table3() {
  RoundTrip inter = measure_roundtrip(2, 0, 1, 20000);
  RoundTrip intra = measure_roundtrip(1, 0, 0, 20000);

  bench::header("Table 3: send/reply latency comparison");
  util::Table t(
      {"System", "Instr", "Real time (us)", "Cycles", "Clock (MHz)"});
  t.add_row({"ABCL/onAP1000 (paper)", "160", "17.8", "450", "25"});
  t.add_row({"ABCL/onEM4 (paper)", "-", "9.0", "~110", "12.5"});
  t.add_row({"CST / J-Machine (paper)", "-", "17.6", "~220", "12.5"});
  t.add_row({"abclsim inter-node (measured)",
             util::Table::num(inter.instr_per_roundtrip, 0),
             util::Table::num(inter.us_per_roundtrip, 1),
             util::Table::num(inter.us_per_roundtrip * 25.0, 0), "25"});
  t.add_row({"abclsim intra-node now-call (measured)",
             util::Table::num(intra.instr_per_roundtrip, 0),
             util::Table::num(intra.us_per_roundtrip, 1),
             util::Table::num(intra.us_per_roundtrip * 25.0, 0), "25"});
  t.print();
  std::printf(
      "(paper: send+reply ~ 2x CST, ~4x EM4 when normalized to clock)\n");
}

void BM_RemoteNowCallRoundTrip(benchmark::State& state) {
  // Host time of the full simulated round trip (driver + runtime + net).
  std::uint64_t calls = 0;
  for (auto _ : state) {
    auto r = measure_roundtrip(2, 0, 1, 2000);
    benchmark::DoNotOptimize(r.us_per_roundtrip);
    calls += 2000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(calls));
}
BENCHMARK(BM_RemoteNowCallRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
