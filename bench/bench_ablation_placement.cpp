// Ablation D — placement policies for remote creation (Section 2.5).
//
// "To provide the programmer with locality control, we provide two
// primitives, local create and remote create. In remote creation, the
// system determines where the object is created based on local
// information." This bench quantifies the choice of that local decision on
// N-queens: spreading policies (round-robin/random) maximize parallelism
// but make every message remote; neighbor placement trades parallel width
// for shorter wires; self placement degenerates to sequential.
#include <benchmark/benchmark.h>

#include "apps/nqueens.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

struct Row {
  double ms = 0;
  double remote_frac = 0;
  double dormant_frac = 0;
};

Row run_with(remote::PlacementKind kind, int nodes, int n) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(nodes);
  cfg.with_placement(kind);
  if (kind == remote::PlacementKind::kLeastLoaded) {
    cfg.node.gossip_interval = 8;  // the policy is blind without the service
  }
  World world(prog, cfg);
  auto p = apps::NQueensParams::paper_calibrated(n);
  auto r = apps::run_nqueens(world, np, p);
  Row row;
  row.ms = r.sim_ms;
  std::uint64_t total = r.stats.local_sends + r.stats.remote_sends;
  row.remote_frac = total == 0 ? 0
                               : static_cast<double>(r.stats.remote_sends) /
                                     static_cast<double>(total);
  row.dormant_frac = r.stats.local_sends == 0
                         ? 0
                         : static_cast<double>(r.stats.local_to_dormant) /
                               static_cast<double>(r.stats.local_sends);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::header(
      "Ablation D: remote-creation placement policies (N-queens N=10, 64 PEs)");
  util::Table t({"Policy", "Elapsed (ms)", "Remote msgs", "Local msgs to dormant"});
  struct P {
    const char* name;
    remote::PlacementKind kind;
  };
  const P policies[] = {
      {"round-robin", remote::PlacementKind::kRoundRobin},
      {"random", remote::PlacementKind::kRandom},
      {"neighbor (1-hop)", remote::PlacementKind::kNeighbor},
      {"least-loaded (gossip)", remote::PlacementKind::kLeastLoaded},
      {"self (sequential)", remote::PlacementKind::kSelf},
  };
  for (const P& p : policies) {
    Row r = run_with(p.kind, 64, 10);
    t.add_row({p.name, util::Table::num(r.ms, 1), bench::pct(r.remote_frac),
               bench::pct(r.dormant_frac)});
  }
  t.print();
  std::printf(
      "(spreading policies buy parallel width at the price of all-remote "
      "traffic; neighbor placement keeps wires short but bounds the width "
      "to the local neighbourhood)\n");
  return 0;
}
