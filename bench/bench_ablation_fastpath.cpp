// Ablation A — which of Section 6.1's compile-time optimizations buys how
// much, measured on a *workload* rather than a single send: N-queens with
// each elision enabled cumulatively. (The per-send effect is in
// bench_table2; this shows the end-to-end impact.)
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "apps/nqueens.hpp"
#include "apps/pingpong.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

// Fine-grain workload: intra-node ping-pong with empty method bodies — the
// regime where the 25->8 send-path reduction matters most.
double run_finegrain_us(const sim::OptFlags& opt) {
  core::Program prog;
  auto pp = apps::register_pingpong(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.cost.opt = opt;
  World world(prog, cfg);
  return apps::run_pingpong(world, pp, 0, 0, 50000).us_per_message;
}

double run_with(const sim::OptFlags& opt) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(16);
  cfg.cost.opt = opt;
  World world(prog, cfg);
  auto p = apps::NQueensParams::paper_calibrated(10);
  return apps::run_nqueens(world, np, p).sim_ms;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::header(
      "Ablation A: Section 6.1 send-path optimizations on N-queens "
      "(N=10, 16 PEs)");
  util::Table t({"Configuration", "Elapsed (ms)", "vs baseline"});
  sim::OptFlags opt;
  double base = run_with(opt);
  t.add_row({"baseline (25-instr dormant sends)", util::Table::num(base, 2),
             "1.00"});
  struct Step {
    const char* name;
    void (*apply)(sim::OptFlags&);
  };
  const Step steps[] = {
      {"+ elide locality check", [](sim::OptFlags& o) { o.elide_locality_check = true; }},
      {"+ elide VFTP switches", [](sim::OptFlags& o) { o.elide_vftp_switch = true; }},
      {"+ elide message-queue check", [](sim::OptFlags& o) { o.elide_mq_check = true; }},
      {"+ elide polling slot", [](sim::OptFlags& o) { o.elide_poll = true; }},
  };
  for (const Step& s : steps) {
    s.apply(opt);
    double ms = run_with(opt);
    t.add_row({s.name, util::Table::num(ms, 2), util::Table::num(ms / base, 2)});
  }
  t.print();
  std::printf(
      "(note: N-queens is creation/communication-heavy, so the send-path "
      "elisions recover only part of the 25->8 per-send factor)\n");

  bench::header(
      "Ablation A': same elisions on a fine-grain workload "
      "(intra-node ping-pong, empty bodies)");
  util::Table t2({"Configuration", "us/message", "vs baseline"});
  sim::OptFlags opt2;
  double base2 = run_finegrain_us(opt2);
  t2.add_row({"baseline (all checks)", util::Table::num(base2, 2), "1.00"});
  for (const Step& s : steps) {
    s.apply(opt2);
    double u = run_finegrain_us(opt2);
    t2.add_row({s.name, util::Table::num(u, 2), util::Table::num(u / base2, 2)});
  }
  t2.print();
  std::printf(
      "(here the full elision set approaches the paper's 8-instruction "
      "send: ~3x cheaper messages)\n");
  return 0;
}
