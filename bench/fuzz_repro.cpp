// fuzz_repro — replay / sweep / shrink CLI for the fuzz subsystem.
//
//   fuzz_repro --seed N [--dump FILE]        generate seed N, run the full
//                                            oracle, optionally dump the spec
//   fuzz_repro --spec FILE                   replay a committed spec file
//   fuzz_repro --shrink FILE --out FILE      minimize a failing spec
//   fuzz_repro --sweep N [--artifact-dir D]  oracle on seeds 1..N; failing
//                                            specs (plus shrunk repros) are
//                                            written to D; exit 1 on any
//                                            failure
//
// Any mode also takes --faults SPEC (same grammar as ABCLSIM_FAULTS, e.g.
// "drop=0.05,dup=0.01,seed=7"): the parsed FaultConfig is overlaid on every
// spec before it runs, so the whole corpus can be swept under a fault plan
// without regenerating repro files. "--faults off" strips the block instead.
// --migration SPEC (grammar of ABCLSIM_MIGRATION, e.g.
// "interval=32,min_queue=4,seed=9") overlays a live-migration block the same
// way; "--migration off" strips it. The two overlays compose, so
// `--sweep N --faults ... --migration ...` is the migration×faults regime.
//
// --horizon global|distance and --shard static|balanced select the parallel
// driver's window and shard policies for every oracle run (grammar of
// ABCLSIM_HORIZON / ABCLSIM_SHARD); results must be byte-identical to the
// serial baseline regardless, so the flags sweep the corpus under a policy
// combination without regenerating anything.
//
// --ckpt switches every mode from the differential oracle (check_spec) to
// the snapshot-equivalence oracle (check_spec_checkpoint): each spec is run
// uninterrupted, then checkpointed mid-run, destroyed, restored (including
// cross-driver) and crash-recovered, and every variant must be
// byte-identical to the baseline. CI's checkpoint-matrix job runs
// `--sweep N --ckpt` plain and under the faults+migration overlays.
//
// Exit status: 0 = all checks passed, 1 = oracle failure, 2 = usage/I/O
// error. CI runs `--sweep` as the extended fuzz job; developers replay
// artifacts with `--spec`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/oracle.hpp"
#include "fuzz/program_gen.hpp"
#include "fuzz/shrinker.hpp"
#include "fuzz/spec.hpp"
#include "net/fault.hpp"
#include "obs/json.hpp"
#include "remote/migration.hpp"

namespace {

using namespace abcl;

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_repro --seed N [--dump FILE]\n"
               "       fuzz_repro --spec FILE\n"
               "       fuzz_repro --shrink FILE --out FILE\n"
               "       fuzz_repro --sweep N [--artifact-dir D]\n"
               "       (any mode) --faults SPEC --migration SPEC --ckpt\n"
               "                  --horizon global|distance"
               " --shard static|balanced\n");
  return 2;
}

// Set by --faults; nullopt = leave each spec's own faults block alone.
std::optional<net::FaultConfig> g_faults;

void overlay_faults(fuzz::Spec& s) {
  if (!g_faults.has_value()) return;
  if (g_faults->enabled) {
    s.faults = *g_faults;
  } else {
    s.faults.reset();  // "--faults off" replays a fault repro fault-free
  }
}

// Set by --migration; nullopt = leave each spec's own migration block alone.
std::optional<remote::MigrationConfig> g_migration;

void overlay_migration(fuzz::Spec& s) {
  if (!g_migration.has_value()) return;
  if (g_migration->enabled) {
    s.migration = *g_migration;
  } else {
    s.migration.reset();  // "--migration off" replays migration-free
  }
}

void overlay(fuzz::Spec& s) {
  overlay_faults(s);
  overlay_migration(s);
}

// Set by --ckpt: run the snapshot-equivalence oracle instead of the plain
// differential one.
bool g_ckpt = false;

// Set by --horizon / --shard; applied to every oracle run.
sim::HorizonKind g_horizon = sim::HorizonKind::kGlobal;
sim::ShardKind g_shard = sim::ShardKind::kStatic;

fuzz::OracleResult run_oracle(const fuzz::Spec& s) {
  if (g_ckpt) {
    fuzz::CheckpointOracleOptions opts;
    opts.horizon = g_horizon;
    opts.shard = g_shard;
    return fuzz::check_spec_checkpoint(s, opts);
  }
  fuzz::OracleOptions opts;
  opts.horizon = g_horizon;
  opts.shard = g_shard;
  return fuzz::check_spec(s, opts);
}

bool oracle_fails(const fuzz::Spec& s) { return !run_oracle(s).ok; }

int check_and_report(const fuzz::Spec& spec, const std::string& label) {
  fuzz::OracleResult r = run_oracle(spec);
  if (r.ok) {
    std::printf("%s: OK (%zu actions, %u steps, sim_time %llu)\n",
                label.c_str(), spec.total_actions(),
                static_cast<unsigned>(r.serial.total.steps_run),
                static_cast<unsigned long long>(r.serial.sim_time));
    return 0;
  }
  std::printf("%s: FAIL — %s\n", label.c_str(), r.failure.c_str());
  return 1;
}

std::optional<fuzz::Spec> load(const std::string& path) {
  std::optional<std::string> text = obs::read_file(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::string err;
  std::optional<fuzz::Spec> spec = fuzz::Spec::from_json(*text, &err);
  if (!spec.has_value()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", path.c_str(), err.c_str());
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode, arg, dump, out, artifact_dir;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--seed" || a == "--spec" || a == "--shrink" || a == "--sweep") {
      const char* v = next();
      if (v == nullptr || !mode.empty()) return usage();
      mode = a;
      arg = v;
    } else if (a == "--dump") {
      const char* v = next();
      if (v == nullptr) return usage();
      dump = v;
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) return usage();
      out = v;
    } else if (a == "--artifact-dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      artifact_dir = v;
    } else if (a == "--faults") {
      const char* v = next();
      if (v == nullptr) return usage();
      std::string err;
      g_faults = net::parse_fault_spec(v, &err);
      if (!g_faults.has_value()) {
        std::fprintf(stderr, "--faults: %s\n", err.c_str());
        return 2;
      }
    } else if (a == "--migration") {
      const char* v = next();
      if (v == nullptr) return usage();
      std::string err;
      g_migration = remote::parse_migration_spec(v, &err);
      if (!g_migration.has_value()) {
        std::fprintf(stderr, "--migration: %s\n", err.c_str());
        return 2;
      }
    } else if (a == "--ckpt") {
      g_ckpt = true;
    } else if (a == "--horizon") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "global") == 0) {
        g_horizon = sim::HorizonKind::kGlobal;
      } else if (std::strcmp(v, "distance") == 0) {
        g_horizon = sim::HorizonKind::kDistance;
      } else {
        std::fprintf(stderr, "--horizon: expected global|distance, got %s\n",
                     v);
        return 2;
      }
    } else if (a == "--shard") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "static") == 0) {
        g_shard = sim::ShardKind::kStatic;
      } else if (std::strcmp(v, "balanced") == 0) {
        g_shard = sim::ShardKind::kBalanced;
      } else {
        std::fprintf(stderr, "--shard: expected static|balanced, got %s\n", v);
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (mode.empty()) return usage();

  if (mode == "--seed") {
    fuzz::Spec spec = fuzz::generate(std::strtoull(arg.c_str(), nullptr, 0));
    overlay(spec);
    if (!dump.empty() && !obs::write_file(dump, spec.to_json())) {
      std::fprintf(stderr, "cannot write %s\n", dump.c_str());
      return 2;
    }
    return check_and_report(spec, "seed " + arg);
  }

  if (mode == "--spec") {
    std::optional<fuzz::Spec> spec = load(arg);
    if (!spec.has_value()) return 2;
    overlay(*spec);
    return check_and_report(*spec, arg);
  }

  if (mode == "--shrink") {
    if (out.empty()) return usage();
    std::optional<fuzz::Spec> spec = load(arg);
    if (!spec.has_value()) return 2;
    overlay(*spec);
    if (!oracle_fails(*spec)) {
      std::fprintf(stderr, "%s passes the oracle; nothing to shrink\n",
                   arg.c_str());
      return 2;
    }
    fuzz::ShrinkStats st;
    fuzz::Spec small = fuzz::shrink(*spec, oracle_fails, &st);
    if (!obs::write_file(out, small.to_json())) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 2;
    }
    std::printf("shrunk %zu -> %zu actions (%d rounds, %zu attempts) -> %s\n",
                spec->total_actions(), small.total_actions(), st.rounds,
                st.attempts, out.c_str());
    return 1;  // the spec still fails, by construction
  }

  // --sweep
  const std::uint64_t n = std::strtoull(arg.c_str(), nullptr, 0);
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    fuzz::Spec spec = fuzz::generate(seed);
    overlay(spec);
    fuzz::OracleResult r = run_oracle(spec);
    if (r.ok) continue;
    ++failures;
    std::printf("seed %llu: FAIL — %s\n",
                static_cast<unsigned long long>(seed), r.failure.c_str());
    if (!artifact_dir.empty()) {
      const std::string base =
          artifact_dir + "/repro_seed_" + std::to_string(seed);
      obs::write_file(base + ".json", spec.to_json());
      fuzz::Spec small = fuzz::shrink(spec, oracle_fails, nullptr, 500);
      obs::write_file(base + "_min.json", small.to_json());
      obs::write_file(base + ".txt", r.failure);
    }
  }
  std::printf("sweep 1..%llu: %d failure(s)\n",
              static_cast<unsigned long long>(n), failures);
  return failures == 0 ? 0 : 1;
}
