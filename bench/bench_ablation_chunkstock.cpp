// Ablation C — chunk-stock prefetching vs split-phase allocation
// (Section 5.2).
//
// A creator object issues a burst of remote creations to one peer. With an
// empty stock every creation is split-phase (block on the allocation
// round trip — the cost the paper avoids); with a seeded stock of depth D,
// up to D creations can be in flight before the creator ever blocks, and
// the replenishment stream keeps it warm. We sweep the seed depth and
// report elapsed time and context switches (blocks).
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

// Burst creator: "bc.go" [target, count, class_ptr] — creates `count`
// counters on `target` back-to-back.
struct BcState {
  std::int64_t created = 0;
};

struct BcGoFrame : Frame {
  NodeId target = 0;
  std::int64_t count = 0;
  const core::ClassInfo* cls = nullptr;
  std::int64_t i = 0;
  CreateCall cc;
  static void init(BcGoFrame& f, const Msg& m) {
    f.target = static_cast<NodeId>(m.i64(0));
    f.count = m.i64(1);
    f.cls = reinterpret_cast<const core::ClassInfo*>(
        static_cast<std::uintptr_t>(m.at(2)));
  }
  static Status run(Ctx& ctx, BcState& self, BcGoFrame& f) {
    ABCL_BEGIN(f);
    while (f.i < f.count) {
      f.cc = ctx.remote_create_begin(*f.cls, f.target, nullptr, 0);
      ABCL_AWAIT(ctx, f, 1, f.cc.call);
      ctx.remote_create_finish(f.cc);
      f.i += 1;
      self.created += 1;
    }
    ABCL_END();
  }
};

struct Result {
  double ms = 0;
  std::uint64_t blocks = 0;
  std::uint64_t misses = 0;
};

Result run_burst(int seed_depth, int count, bool replenish = true) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  PatternId go = prog.patterns().intern("bc.go", 3);
  ClassDef<BcState> def(prog, "BurstCreator");
  def.method<BcGoFrame>(go);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(2);
  cfg.node.disable_replenish = !replenish;
  World world(prog, cfg);
  if (seed_depth > 0) world.seed_stocks(*cp.cls, seed_depth);

  sim::Instr t0 = world.max_clock();
  world.boot(0, [&](Ctx& ctx) {
    MailAddr bc = ctx.create_local(def.info(), nullptr, 0);
    Word args[3] = {0, 0, 0};
    args[0] = 1;  // target node
    args[1] = static_cast<Word>(count);
    args[2] = static_cast<Word>(reinterpret_cast<std::uintptr_t>(cp.cls));
    ctx.send_past(bc, go, args, 3);
  });
  world.run();

  Result r;
  r.ms = world.config().cost.ms(world.max_clock() - t0);
  auto st = world.total_stats();
  r.blocks = st.blocks_await;
  r.misses = st.chunk_stock_misses;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::header(
      "Ablation C: chunk-stock prefetch vs split-phase allocation "
      "(1000 remote creations to one peer)");
  util::Table t({"Seed depth", "Elapsed (ms)", "Context switches (blocks)",
                 "Stock misses"});
  const int kCount = 1000;
  {
    Result r = run_burst(0, kCount, /*replenish=*/false);
    t.add_row({"split-phase (no stock, no replenish)", util::Table::num(r.ms, 2),
               util::Table::num(r.blocks), util::Table::num(r.misses)});
  }
  for (int depth : {0, 1, 2, 4, 8, 16}) {
    Result r = run_burst(depth, kCount);
    t.add_row({std::to_string(depth), util::Table::num(r.ms, 2),
               util::Table::num(r.blocks), util::Table::num(r.misses)});
  }
  t.print();
  std::printf(
      "(split-phase blocks on every creation — the context switching the "
      "paper's predelivered stocks avoid; with replenishment even a cold "
      "stock self-primes after the first misses)\n");
  return 0;
}
