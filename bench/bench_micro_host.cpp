// Host-nanosecond microbenchmarks of the runtime primitives themselves —
// separate from the paper tables (which report modeled machine time). These
// demonstrate the implementation is genuinely lightweight: the scheduling
// paths the paper counts in SPARC instructions cost a few host nanoseconds.
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/lookahead.hpp"
#include "sim/machine.hpp"
#include "sim/shard_balance.hpp"
#include "util/arena.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab.hpp"

namespace {

using namespace abcl;

// ---- allocators -------------------------------------------------------------

// state.range(0): 1 = slab-pooled, 0 = the general-purpose ablation mode.
void BM_SlabAllocFree(benchmark::State& state) {
  util::Arena arena;
  util::SlabAllocator pool(arena, state.range(0) != 0);
  for (auto _ : state) {
    void* p = pool.allocate(128);
    benchmark::DoNotOptimize(p);
    pool.deallocate(p, 128);
  }
}
BENCHMARK(BM_SlabAllocFree)->Arg(1)->Arg(0);

// Frame-churn shape: a burst of live frames across classes, then release —
// the pattern a dispatch cascade produces (the single-slot ping-pong above
// flatters any allocator).
void BM_SlabChurn(benchmark::State& state) {
  util::Arena arena;
  util::SlabAllocator pool(arena, state.range(0) != 0);
  void* live[64];
  const std::size_t sizes[4] = {48, 96, 160, 320};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) live[i] = pool.allocate(sizes[i & 3]);
    for (int i = 63; i >= 0; --i) pool.deallocate(live[i], sizes[i & 3]);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SlabChurn)->Arg(1)->Arg(0);

void BM_ArenaBump(benchmark::State& state) {
  util::Arena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.allocate(64));
  }
}
BENCHMARK(BM_ArenaBump);

// ---- message queue ----------------------------------------------------------

void BM_MsgQueuePushPop(benchmark::State& state) {
  core::MsgFrame frames[8];
  util::IntrusiveFifo<core::MsgFrame, &core::MsgFrame::next> q;
  for (auto _ : state) {
    for (auto& f : frames) q.push_back(&f);
    while (core::MsgFrame* f = q.pop_front()) benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MsgQueuePushPop);

// ---- network ----------------------------------------------------------------

// state.range(0): 1 = recycled packet slots, 0 = per-send heap allocation.
void BM_NetworkSendPoll(benchmark::State& state) {
  sim::CostModel cm = sim::CostModel::ap1000();
  net::Network net(net::Topology(net::TopologyKind::kTorus2D, 64), &cm, {},
                   state.range(0) != 0);
  sim::Instr t = 0;
  for (auto _ : state) {
    net::Packet p;
    p.handler = 0;
    p.src = 0;
    p.dst = 37;
    p.send_time = t++;
    p.push(42);
    net.send(std::move(p), net::AmCategory::kObjectMessage);
    net::Packet out;
    bool got = net.poll(37, sim::kInstrInf, out);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_NetworkSendPoll)->Arg(1)->Arg(0);

// Same, but against a standing queue of 256 in-flight packets: heap sifts
// now move 24-byte slot refs instead of whole Packets, which is where the
// pooled queue wins.
void BM_NetworkSendPollDeep(benchmark::State& state) {
  sim::CostModel cm = sim::CostModel::ap1000();
  net::Network net(net::Topology(net::TopologyKind::kTorus2D, 64), &cm, {},
                   state.range(0) != 0);
  sim::Instr t = 0;
  auto send_one = [&](std::int32_t src) {
    net::Packet p;
    p.handler = 0;
    p.src = src;
    p.dst = 37;
    p.send_time = t;
    p.push(42);
    net.send(std::move(p), net::AmCategory::kObjectMessage);
  };
  for (std::int32_t s = 0; s < 64; ++s) {
    for (int i = 0; i < 4; ++i) send_one(s);
  }
  ++t;
  for (auto _ : state) {
    send_one(static_cast<std::int32_t>(t % 64));
    ++t;
    net::Packet out;
    bool got = net.poll(37, sim::kInstrInf, out);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_NetworkSendPollDeep)->Arg(1)->Arg(0);

// ---- time queues ------------------------------------------------------------

struct QEntry {
  sim::Instr key;
  std::int32_t id;
};
struct QKey {
  sim::Instr operator()(const QEntry& e) const { return e.key; }
};
struct QLess {
  bool operator()(const QEntry& a, const QEntry& b) const {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  }
};

// Standing-depth push/pop ping-pong: pop the min, reinsert it a pseudo-random
// small stride later — the drifting-time-front shape both the machine's ready
// set and the per-destination arrival queues produce. state.range(0) = depth.
void queue_push_pop(benchmark::State& state, util::QueueKind kind) {
  const auto depth = static_cast<int>(state.range(0));
  util::BucketQueue<QEntry, QKey, QLess> q(kind);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  sim::Instr t = 0;
  for (int i = 0; i < depth; ++i) {
    t += static_cast<sim::Instr>(next() % 64);
    q.push({t, i});
  }
  for (auto _ : state) {
    QEntry e = q.top();
    q.pop();
    benchmark::DoNotOptimize(e);
    e.key += 1 + static_cast<sim::Instr>(next() % 512);
    q.push(e);
  }
}

void BM_BucketQueuePushPop(benchmark::State& state) {
  queue_push_pop(state, util::QueueKind::kBucket);
}
BENCHMARK(BM_BucketQueuePushPop)->Arg(16)->Arg(256)->Arg(4096);

void BM_BinaryHeapPushPop(benchmark::State& state) {
  queue_push_pop(state, util::QueueKind::kHeap);
}
BENCHMARK(BM_BinaryHeapPushPop)->Arg(16)->Arg(256)->Arg(4096);

// ---- barrier flush ----------------------------------------------------------

// flush_outboxes ablation: the coordinator-side cost of committing a window's
// sends from 8 worker outboxes. state.range(0) = packets per box;
// state.range(1): 1 = k-way merge over pre-sorted runs (the pre-sort itself
// is excluded, as in production it runs inside the parallel region), 0 = the
// historical global stable_sort. Fill and drain run under PauseTiming.
void BM_FlushOutboxesMerge(benchmark::State& state) {
  const auto per_box = static_cast<int>(state.range(0));
  const bool merge = state.range(1) != 0;
  constexpr int kBoxes = 8;
  constexpr std::int32_t kNodes = 64;
  sim::CostModel cm = sim::CostModel::ap1000();
  net::Network net(net::Topology(net::TopologyKind::kTorus2D, kNodes), &cm, {},
                   true, util::QueueKind::kBucket,
                   merge ? net::FlushKind::kMerge : net::FlushKind::kSort);
  net::Network::Outbox boxes[kBoxes];
  net::Network::Outbox* ptrs[kBoxes];
  for (int b = 0; b < kBoxes; ++b) ptrs[b] = &boxes[b];
  for (std::int32_t src = 0; src < kNodes; ++src) {
    net.set_outbox(src, &boxes[src % kBoxes]);  // round-robin shard, as in
                                                // ParallelMachine
  }
  sim::Instr t = 1;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < per_box; ++i) {
      for (int b = 0; b < kBoxes; ++b) {
        auto src = static_cast<std::int32_t>(
            (b + kBoxes * (i % (kNodes / kBoxes))) % kNodes);
        boxes[b].set_current_key(t + static_cast<sim::Instr>((i * 7 + b * 3) %
                                                             64));
        net::Packet p;
        p.handler = 0;
        p.src = src;
        p.dst = (src + 17) % kNodes;
        p.send_time = t;
        p.push(42);
        net.send(std::move(p), net::AmCategory::kObjectMessage);
      }
    }
    if (merge) {
      for (auto& b : boxes) b.sort_canonical();
    }
    state.ResumeTiming();
    net.flush_outboxes(ptrs, kBoxes);
    state.PauseTiming();
    net::Packet out;
    for (std::int32_t d = 0; d < kNodes; ++d) {
      while (net.poll(d, sim::kInstrInf, out)) {
      }
    }
    t += 128;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * per_box * kBoxes);
}
BENCHMARK(BM_FlushOutboxesMerge)
    ->Args({16, 1})
    ->Args({16, 0})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({4096, 1})
    ->Args({4096, 0});

// ---- end-to-end dispatch ------------------------------------------------------

struct Env {
  core::Program prog;
  apps::CounterProgram cp;
  Env() {
    cp = apps::register_counter(prog);
    prog.finalize();
  }
};

void BM_DormantDispatch(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.with_cost(sim::CostModel::zero());  // isolate host cost from model math
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);
    for (auto _ : state) ctx.send_past(c, env.cp.noop, nullptr, 0);
  });
}
BENCHMARK(BM_DormantDispatch);

void BM_ActivePathPerMessage(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);
  });
  std::int64_t msgs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    world.boot(0, [&](Ctx& ctx) {
      Word args[2] = {1024, env.cp.noop};
      ctx.send_past(c, env.cp.fill, args, 2);
    });
    state.ResumeTiming();
    world.run();
    msgs += 1024;
  }
  state.SetItemsProcessed(msgs);
}
BENCHMARK(BM_ActivePathPerMessage);

void BM_MachineQuantumOverhead(benchmark::State& state) {
  // Pure driver cost: a world whose only work is self-refilling noops.
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(16);
  World world(env.prog, cfg);
  std::vector<MailAddr> cs(16);
  for (NodeId nid = 0; nid < 16; ++nid) {
    world.boot(nid, [&](Ctx& ctx) {
      cs[static_cast<std::size_t>(nid)] = ctx.create_local(*env.cp.cls, nullptr, 0);
    });
  }
  std::int64_t quanta = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (NodeId nid = 0; nid < 16; ++nid) {
      world.boot(nid, [&](Ctx& ctx) {
        Word args[2] = {256, env.cp.noop};
        ctx.send_past(cs[static_cast<std::size_t>(nid)], env.cp.fill, args, 2);
      });
    }
    state.ResumeTiming();
    quanta += static_cast<std::int64_t>(world.run().quanta);
  }
  state.SetItemsProcessed(quanta);
}
BENCHMARK(BM_MachineQuantumOverhead)->Unit(benchmark::kMicrosecond);

// ---- parallel-driver window machinery ---------------------------------------

// Per-window cost of the distance-horizon relaxation: one O(N) min-plus
// pass over the torus for state.range(0) nodes. Keys cycle through a mix of
// finite and infinite (idle) entries so the sweep sees realistic data.
void BM_HorizonRelaxation(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  net::Topology topo(net::TopologyKind::kTorus2D, n);
  sim::HorizonMap hmap(&topo, /*per_hop=*/1);
  std::vector<sim::Instr> keys(static_cast<std::size_t>(n));
  std::vector<sim::Instr> out(static_cast<std::size_t>(n));
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (auto& k : keys) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    k = (x & 7) != 0 ? (x % 100000) : sim::kInstrInf;
  }
  for (auto _ : state) {
    hmap.relax(keys, &out);
    benchmark::DoNotOptimize(out.data());
    // Drift the keys so successive windows differ, as in a real run.
    keys[static_cast<std::size_t>(state.iterations()) %
         keys.size()] += 64;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HorizonRelaxation)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Per-barrier cost of the deterministic shard rebalance: EWMA fold plus the
// LPT repack over state.range(0) nodes onto 8 workers.
void BM_ShardRebalance(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  sim::ShardBalancer bal(n, /*workers=*/8, /*seed=*/1);
  std::vector<std::uint64_t> quanta(static_cast<std::size_t>(n));
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (auto& q : quanta) {
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      q = x & 31;  // skewed small loads, some zero
    }
    benchmark::DoNotOptimize(bal.rebalance(quanta.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShardRebalance)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
