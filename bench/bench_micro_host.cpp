// Host-nanosecond microbenchmarks of the runtime primitives themselves —
// separate from the paper tables (which report modeled machine time). These
// demonstrate the implementation is genuinely lightweight: the scheduling
// paths the paper counts in SPARC instructions cost a few host nanoseconds.
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "net/network.hpp"
#include "sim/machine.hpp"
#include "util/arena.hpp"
#include "util/intrusive_list.hpp"

namespace {

using namespace abcl;

// ---- allocators -------------------------------------------------------------

void BM_PoolAllocFree(benchmark::State& state) {
  util::Arena arena;
  util::PoolAllocator pool(arena);
  for (auto _ : state) {
    void* p = pool.allocate(128);
    benchmark::DoNotOptimize(p);
    pool.deallocate(p, 128);
  }
}
BENCHMARK(BM_PoolAllocFree);

void BM_ArenaBump(benchmark::State& state) {
  util::Arena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.allocate(64));
  }
}
BENCHMARK(BM_ArenaBump);

// ---- message queue ----------------------------------------------------------

void BM_MsgQueuePushPop(benchmark::State& state) {
  core::MsgFrame frames[8];
  util::IntrusiveFifo<core::MsgFrame, &core::MsgFrame::next> q;
  for (auto _ : state) {
    for (auto& f : frames) q.push_back(&f);
    while (core::MsgFrame* f = q.pop_front()) benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MsgQueuePushPop);

// ---- network ----------------------------------------------------------------

void BM_NetworkSendPoll(benchmark::State& state) {
  sim::CostModel cm = sim::CostModel::ap1000();
  net::Network net(net::Topology(net::TopologyKind::kTorus2D, 64), &cm);
  sim::Instr t = 0;
  for (auto _ : state) {
    net::Packet p;
    p.handler = 0;
    p.src = 0;
    p.dst = 37;
    p.send_time = t++;
    p.push(42);
    net.send(std::move(p), net::AmCategory::kObjectMessage);
    net::Packet out;
    bool got = net.poll(37, sim::kInstrInf, out);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_NetworkSendPoll);

// ---- end-to-end dispatch ------------------------------------------------------

struct Env {
  core::Program prog;
  apps::CounterProgram cp;
  Env() {
    cp = apps::register_counter(prog);
    prog.finalize();
  }
};

void BM_DormantDispatch(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.nodes = 1;
  cfg.cost = sim::CostModel::zero();  // isolate host cost from model math
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);
    for (auto _ : state) ctx.send_past(c, env.cp.noop, nullptr, 0);
  });
}
BENCHMARK(BM_DormantDispatch);

void BM_ActivePathPerMessage(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.nodes = 1;
  World world(env.prog, cfg);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.noop, nullptr, 0);
  });
  std::int64_t msgs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    world.boot(0, [&](Ctx& ctx) {
      Word args[2] = {1024, env.cp.noop};
      ctx.send_past(c, env.cp.fill, args, 2);
    });
    state.ResumeTiming();
    world.run();
    msgs += 1024;
  }
  state.SetItemsProcessed(msgs);
}
BENCHMARK(BM_ActivePathPerMessage);

void BM_MachineQuantumOverhead(benchmark::State& state) {
  // Pure driver cost: a world whose only work is self-refilling noops.
  Env env;
  WorldConfig cfg;
  cfg.nodes = 16;
  World world(env.prog, cfg);
  std::vector<MailAddr> cs(16);
  for (NodeId nid = 0; nid < 16; ++nid) {
    world.boot(nid, [&](Ctx& ctx) {
      cs[static_cast<std::size_t>(nid)] = ctx.create_local(*env.cp.cls, nullptr, 0);
    });
  }
  std::int64_t quanta = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (NodeId nid = 0; nid < 16; ++nid) {
      world.boot(nid, [&](Ctx& ctx) {
        Word args[2] = {256, env.cp.noop};
        ctx.send_past(cs[static_cast<std::size_t>(nid)], env.cp.fill, args, 2);
      });
    }
    state.ResumeTiming();
    quanta += static_cast<std::int64_t>(world.run().quanta);
  }
  state.SetItemsProcessed(quanta);
}
BENCHMARK(BM_MachineQuantumOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
