// CI regression gate over bench trajectories and metrics snapshots.
//
//   $ bench_regression_check <baseline.json> <candidate.json> [tol_pct]
//
// Compares every numeric counter in `candidate` against `baseline` and
// fails (exit 1) on relative drift beyond the tolerance (default 0.5%,
// override with the third argument or ABCLSIM_REGRESSION_TOL_PCT).
// Host-dependent fields (wall_ms, host_cores) are ignored — the gate is
// about the *simulated* trajectory, which is deterministic: solutions,
// sim_time, quanta, packet and scheduling counters. An intentional
// cost-model change is expected to update the committed baseline in the
// same PR.
//
// With no arguments the tool prints usage and exits 0, so sweeping
// `for b in build/bench/*; do $b; done` stays harmless.
#include <cstdio>
#include <cstdlib>

#include "obs/regression.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::printf(
        "usage: %s <baseline.json> <candidate.json> [tol_pct]\n"
        "(no files given - nothing to check, exiting 0)\n",
        argv[0]);
    return 0;
  }
  double tol = 0.5;
  if (const char* env = std::getenv("ABCLSIM_REGRESSION_TOL_PCT")) {
    if (*env != '\0') tol = std::atof(env);
  }
  if (argc > 3) tol = std::atof(argv[3]);

  abcl::obs::CompareResult res =
      abcl::obs::compare_json_files(argv[1], argv[2], tol);
  if (!res.ok()) {
    std::printf("REGRESSION: %zu counter(s) drifted beyond %.2f%% "
                "(baseline %s, candidate %s):\n%s",
                res.drifts.size(), tol, argv[1], argv[2],
                res.to_string().c_str());
    return 1;
  }
  std::printf("ok: %s matches %s within %.2f%%\n", argv[2], argv[1], tol);
  return 0;
}
