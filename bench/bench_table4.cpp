// Table 4 — the scale of the N-queens program.
//
// Paper (N=8 / N=13):
//   # of solutions            92            / 73,712
//   # of object creations     2,056         / 4,636,210
//   # of messages             4,104         / 9,349,765
//   total memory used (KB)    130           / 549,463
//   elapsed time on SS1+ (ms) 84            / 461,955
//
// We run the same actor program (one object per tree node, go + done
// messages) and the same sequential baseline under the paper-calibrated
// work model. N=13 takes several GB of simulated heap and minutes of host
// time; it is enabled with ABCLSIM_NQUEENS_MAX=13 (default sweeps 8..12).
#include <benchmark/benchmark.h>

#include "apps/nqueens.hpp"
#include "apps/nqueens_seq.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

void print_table4() {
  int max_n = bench::env_int("ABCLSIM_NQUEENS_MAX", 12);
  bench::header("Table 4: the scale of the N-queen program");
  util::Table t({"N", "Solutions", "Creations", "Messages", "Memory (KB)",
                 "Seq elapsed (ms, model)", "Seq elapsed (ms, host)"});

  for (int n = 8; n <= max_n; ++n) {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(64);
    World world(prog, cfg);
    auto p = apps::NQueensParams::paper_calibrated(n);
    auto r = apps::run_nqueens(world, np, p);
    auto seq = apps::nqueens_seq(n, p.charge_base, p.charge_per_col);
    t.add_row({std::to_string(n), util::Table::num(static_cast<std::uint64_t>(r.solutions)),
               util::Table::num(r.objects_created), util::Table::num(r.messages),
               util::Table::num(static_cast<std::uint64_t>(r.heap_bytes / 1024)),
               util::Table::num(cfg.cost.ms(seq.charged), 1),
               util::Table::num(seq.host_seconds * 1000.0, 2)});
  }
  t.print();
  std::printf(
      "paper:  N=8:  92 solutions, 2,056 creations, 4,104 messages, 130 KB, "
      "84 ms\n"
      "        N=13: 73,712 solutions, 4,636,210 creations, 9,349,765 "
      "messages, 549,463 KB, 461,955 ms\n"
      "(set ABCLSIM_NQUEENS_MAX=13 to run the full-scale row)\n");
}

void BM_NQueensSeqHost(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  std::int64_t sols = 0;
  for (auto _ : state) {
    auto r = apps::nqueens_seq(n, 0, 0);
    sols = r.solutions;
    benchmark::DoNotOptimize(sols);
  }
  state.counters["solutions"] = static_cast<double>(sols);
}
BENCHMARK(BM_NQueensSeqHost)->Arg(8)->Arg(10)->Arg(12);

void BM_NQueensActorHost(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(16);
    World world(prog, cfg);
    apps::NQueensParams p;
    p.n = n;
    auto r = apps::run_nqueens(world, np, p);
    benchmark::DoNotOptimize(r.solutions);
  }
}
BENCHMARK(BM_NQueensActorHost)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
