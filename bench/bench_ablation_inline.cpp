// Ablation B — method inlining (Section 8.2).
//
// When the receiver's class is statically known, the compiler can inline
// the method body behind two guards:
//     receiver.node_id == my_node  &&  receiver->vftp == C_dormant_vft
// We measure three variants of a local accumulate-loop:
//   full dispatch   — the normal 25-instr dormant send;
//   guarded inline  — guards pass, body runs inline (5 modeled instr);
//   guard miss      — guards fail (receiver active), fall back to dispatch.
// Both modeled instructions and real host nanoseconds are reported.
#include <benchmark/benchmark.h>

#include "apps/counters.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

struct Env {
  core::Program prog;
  apps::CounterProgram cp;
  Env() {
    cp = apps::register_counter(prog);
    prog.finalize();
  }
};

void print_modeled() {
  Env env;
  bench::header("Ablation B: inlined sends (Section 8.2), modeled cost");
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  util::Table t({"Variant", "Instr/send", "us/send"});
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.inc, nullptr, 0);
    const int kIters = 10000;

    sim::Instr t0 = ctx.clock();
    for (int i = 0; i < kIters; ++i) ctx.send_past(c, env.cp.inc, nullptr, 0);
    double full = static_cast<double>(ctx.clock() - t0) / kIters;

    t0 = ctx.clock();
    auto* state = c.ptr->state_as<apps::CounterState>();
    for (int i = 0; i < kIters; ++i) {
      if (ctx.inline_guard(c, *env.cp.cls)) {
        ctx.charge(2);       // the inlined body: one add
        state->count += 1;   // inlined method body
      } else {
        ctx.send_past(c, env.cp.inc, nullptr, 0);
      }
    }
    double inl = static_cast<double>(ctx.clock() - t0) / kIters;

    const auto& cm = world.config().cost;
    t.add_row({"full VFT dispatch", util::Table::num(full, 1),
               util::Table::num(cm.us(static_cast<sim::Instr>(full)), 2)});
    t.add_row({"guarded inline (guard hits)", util::Table::num(inl, 1),
               util::Table::num(cm.us(static_cast<sim::Instr>(inl)), 2)});
    t.add_row({"speedup", util::Table::num(full / inl, 2) + "x", ""});
  });
  t.print();
  std::printf(
      "(paper: with the checks the inlined call keeps locality+mode guards; "
      "removing them needs interprocedural inference — future work)\n");
}

void BM_FullDispatch(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.inc, nullptr, 0);
    for (auto _ : state) ctx.send_past(c, env.cp.inc, nullptr, 0);
  });
}
BENCHMARK(BM_FullDispatch);

void BM_GuardedInline(benchmark::State& state) {
  Env env;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(env.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*env.cp.cls, nullptr, 0);
    ctx.send_past(c, env.cp.inc, nullptr, 0);
    auto* s = c.ptr->state_as<apps::CounterState>();
    for (auto _ : state) {
      if (ctx.inline_guard(c, *env.cp.cls)) {
        s->count += 1;
      } else {
        ctx.send_past(c, env.cp.inc, nullptr, 0);
      }
      benchmark::DoNotOptimize(s->count);
    }
  });
}
BENCHMARK(BM_GuardedInline);

}  // namespace

int main(int argc, char** argv) {
  print_modeled();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
