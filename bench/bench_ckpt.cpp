// Checkpoint/restore cost characterization: snapshot size and capture /
// restore wall time for the Figure-5 N-queens workload across machine
// sizes, plus the correctness cross-checks a cost table is worthless
// without (the restored run must finish with the baseline's solutions,
// sim_time and cumulative quanta — address-faithful restore means even the
// host-side latch MailAddr captured at boot stays valid afterwards).
//
// Plain CLI (no google-benchmark): wall-clock here is descriptive, not a
// CI gate. EXPERIMENTS.md carries a sample table produced by this tool.
//
//   bench_ckpt [n]      board size (default 8)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "apps/nqueens.hpp"
#include "ckpt/snapshot.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace abcl;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// The boot half of apps::run_nqueens, split out so the run can be stopped
// at a checkpoint boundary between the boot and the finish.
MailAddr boot_nqueens(World& world, const apps::NQueensProgram& np,
                      const apps::NQueensParams& p) {
  MailAddr latch;
  world.boot(0, [&](Ctx& ctx) {
    latch = ctx.create_local(*np.latch.cls, {});
    ctx.send_past(latch, np.latch.expect, {1});
    Word work = (static_cast<Word>(p.charge_base) << 16) |
                static_cast<Word>(p.charge_per_col);
    Word args[9] = {latch.word_node(), latch.word_ptr(), np.latch.done,
                    np.done,           static_cast<Word>(p.n) << 8,
                    0,                 0,
                    0,                 work};
    MailAddr root = ctx.create_local(*np.node_cls, args, 9);
    ctx.send_past(root, np.go, nullptr, 0);
  });
  return latch;
}

void measure(int nodes, int board_n) {
  core::Program prog;
  apps::NQueensProgram np = apps::register_nqueens(prog);
  prog.finalize();
  apps::NQueensParams p;
  p.n = board_n;

  // Uninterrupted baseline: target for every identity below.
  WorldConfig base_cfg = WorldConfig{}.with_nodes(nodes);
  World base(prog, base_cfg);
  MailAddr base_latch = boot_nqueens(base, np, p);
  RunReport base_rep = base.run();
  const std::int64_t base_solutions = latch_state(base_latch).total;

  // Checkpointed run: stop at the midpoint boundary, capture, destroy,
  // restore, finish.
  ckpt::CheckpointConfig ck;
  ck.enabled = true;
  ck.at = base_rep.sim_time / 2 + 1;
  auto world = std::make_unique<World>(
      prog, WorldConfig{}.with_nodes(nodes).with_ckpt(ck));
  MailAddr latch = boot_nqueens(*world, np, p);
  RunReport r1 = world->run();

  auto t0 = std::chrono::steady_clock::now();
  ckpt::MemSink sink;
  world->checkpoint(sink);
  const double capture_ms = ms_since(t0);
  const std::size_t bytes = sink.bytes().size();

  world.reset();  // restore re-maps the arenas at their recorded bases
  t0 = std::chrono::steady_clock::now();
  ckpt::MemSource src(sink.take());
  std::unique_ptr<World> restored = World::restore(prog, src);
  const double restore_ms = ms_since(t0);
  RunReport r2 = restored->run();

  const std::int64_t solutions = latch_state(latch).total;
  const bool ok = solutions == base_solutions &&
                  r2.sim_time == base_rep.sim_time &&
                  restored->resumed_quanta() + r2.quanta == base_rep.quanta &&
                  r1.quanta == restored->resumed_quanta();
  std::printf("| %5d | %8llu | %10zu | %10.2f | %10.2f | %s |\n", nodes,
              static_cast<unsigned long long>(base_rep.quanta), bytes,
              capture_ms, restore_ms, ok ? "ok" : "MISMATCH");
  if (!ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const int board_n = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("N-queens n=%d, checkpoint at sim_time/2, serial driver\n\n",
              board_n);
  std::printf("| nodes | quanta   | snap bytes | capture ms | restore ms | eq |\n");
  std::printf("|------:|---------:|-----------:|-----------:|-----------:|----|\n");
  for (int nodes : {16, 64, 256}) measure(nodes, board_n);
  return 0;
}
