// Shared helpers for the Table/Figure bench harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "abcl/abcl.hpp"
#include "util/table.hpp"

namespace abcl::bench {

inline int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : dflt;
}

inline void header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline std::string us(double v) { return util::Table::num(v, 2) + " us"; }
inline std::string ms(double v) { return util::Table::num(v, 1) + " ms"; }
inline std::string pct(double v) { return util::Table::num(v * 100.0, 0) + "%"; }

}  // namespace abcl::bench
