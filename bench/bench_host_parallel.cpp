// Host-parallel driver speedup: wall-clock of Figure-5-style N-queens runs
// (P in {64, 256, 512} simulated nodes), serial Machine vs ParallelMachine
// at 1/2/4/8 host threads. Every configuration must produce the identical
// solution count and modeled sim_time — the speedup is pure host-side.
//
// Machine-readable trajectory lands in BENCH_host_parallel.json (override
// the path with ABCLSIM_BENCH_JSON). N defaults to 10; set
// ABCLSIM_NQUEENS_N for other sizes. Note: the measured speedup is bounded
// by physical cores — the JSON records the real
// std::thread::hardware_concurrency() as host_cores and sets
// "parallel_meaningful": false when it is < 2, so trajectories from
// single-core boxes are never misread as scaling regressions.
//
// ABCLSIM_SCALING_GATE=1 additionally turns the scaling expectation into an
// exit-code gate on multi-core hosts: for every P the 2-thread wall clock
// must stay within 1.5x of serial (generous — real speedup is expected, but
// shared CI runners are noisy). Single-core hosts skip the gate.
//
// A full obs metrics snapshot of the canonical P=64 run additionally lands
// next to the trajectory (ABCLSIM_METRICS_JSON, default
// BENCH_host_parallel.metrics.json); the serial and 8-thread snapshots are
// diffed byte-for-byte here, so any cross-driver stats divergence fails the
// bench just like a solution-count divergence. CI feeds both files to
// bench_regression_check against the committed baselines.
//
// A second workload — a hot-spot world where every migratable actor is born
// on node 0 and the work-shedding balancer must spread them — runs serial
// and at 8 threads with migration enabled. Its six migration counters and
// final object placement are pure simulated quantities, so they must match
// across drivers (folded into the same exit gate) and are spliced into the
// metrics snapshot as "migration_hotspot" for the regression baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/nqueens.hpp"
#include "bench_common.hpp"
#include "core/object.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "remote/migration.hpp"

namespace {

using namespace abcl;

struct Sample {
  int nodes = 0;
  int host_threads = 0;  // 0 = serial Machine
  double wall_ms = 0.0;
  std::int64_t solutions = 0;
  sim::Instr sim_time = 0;
  std::uint64_t quanta = 0;
};

Sample run_once(int nodes, int host_threads, const apps::NQueensParams& p,
                std::string* metrics_out = nullptr) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(nodes);
  cfg.with_host_threads(host_threads == 0 ? -1 : host_threads);
  World world(prog, cfg);

  auto t0 = std::chrono::steady_clock::now();
  auto r = apps::run_nqueens(world, np, p);
  auto t1 = std::chrono::steady_clock::now();

  Sample s;
  s.nodes = nodes;
  s.host_threads = host_threads;
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.solutions = r.solutions;
  s.sim_time = r.sim_time;
  s.quanta = r.rep.quanta;
  if (metrics_out != nullptr) *metrics_out = obs::metrics_json(world, &r.rep);
  return s;
}

// ------------------------------------------ hot-spot migration workload -----

// All actors are born on node 0 of an 8-node world and churn through
// self-chains; the shedding balancer must export objects off the hot node.
// Every field below is a simulated quantity — identical across drivers by
// the determinism contract, which is exactly what main() gates on.
struct ChurnState {
  std::uint64_t steps = 0;
};

struct MigSample {
  double wall_ms = 0.0;
  std::uint64_t total_steps = 0;
  int hot_node_objects = 0;   // actors still homed on node 0 after the run
  int nodes_with_objects = 0;
  core::NodeStats totals{};   // world-summed; migration counters consumed
};

constexpr int kMigNodes = 8;
constexpr int kMigActors = 96;
constexpr Word kMigFuel = 120;

MigSample run_hotspot(int host_threads) {
  core::Program prog;
  PatternId kick = prog.patterns().intern("churn.kick", 1);
  ClassDef<ChurnState> def(prog, "Churn");
  def.migratable();
  struct KickFrame : Frame {
    Word fuel = 0;
    PatternId pat = 0;
    static void init(KickFrame& f, const Msg& m) {
      f.fuel = m.at(0);
      f.pat = m.pattern;
    }
    static Status run(Ctx& ctx, ChurnState& self, KickFrame& f) {
      ABCL_BEGIN(f);
      self.steps += 1;
      ctx.charge(200);
      if (f.fuel > 0) {
        Word arg = f.fuel - 1;
        ctx.send_past(ctx.self_addr(), f.pat, &arg, 1);
      }
      ABCL_END();
    }
  };
  def.method<KickFrame>(kick);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(kMigNodes);
  cfg.with_host_threads(host_threads);
  remote::MigrationConfig mc;
  mc.enabled = true;
  mc.interval = 8;
  mc.hysteresis = 2;
  mc.max_batch = 4;
  mc.min_queue = 6;
  mc.seed = 5;
  cfg.with_migration(mc);
  World world(prog, cfg);

  std::vector<MailAddr> actors;
  world.boot(0, [&](Ctx& ctx) {
    for (int i = 0; i < kMigActors; ++i) {
      actors.push_back(ctx.create_local(def.info(), {}));
    }
  });
  world.boot(0, [&](Ctx& ctx) {
    for (const MailAddr& a : actors) ctx.send_past(a, kick, {kMigFuel});
  });
  auto t0 = std::chrono::steady_clock::now();
  world.run();
  auto t1 = std::chrono::steady_clock::now();

  MigSample s;
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::vector<int> per_node(kMigNodes, 0);
  for (MailAddr a : actors) {
    // Chase the forwarding chain (path compression bounds it, but a fixed
    // hop cap keeps a regression from hanging the bench).
    for (int hops = 0; hops < 8; ++hops) {
      auto f = world.node(a.node).forward_target(a.ptr);
      if (!f.has_value() || (f->node == a.node && f->ptr == a.ptr)) break;
      a = *f;
    }
    per_node[static_cast<std::size_t>(a.node)] += 1;
    s.total_steps += a.ptr->state_as<const ChurnState>()->steps;
  }
  s.hot_node_objects = per_node[0];
  for (int n : per_node) s.nodes_with_objects += n > 0;
  s.totals = world.total_stats();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // accepted for interface uniformity
  bench::header("Host-parallel driver: N-queens wall-clock, serial vs threads");

  const int n = bench::env_int("ABCLSIM_NQUEENS_N", 10);
  const auto p = apps::NQueensParams::paper_calibrated(n);
  const unsigned cores = std::thread::hardware_concurrency();
  const int thread_counts[] = {0, 1, 2, 4, 8};  // 0 = serial Machine

  const bool meaningful = cores >= 2;
  const bool scaling_gate =
      meaningful && bench::env_int("ABCLSIM_SCALING_GATE", 0) != 0;

  std::printf("N = %d, host cores = %u%s\n", n, cores,
              meaningful ? "" : " (single-core: speedups not meaningful)");
  std::vector<Sample> samples;
  bool identical = true;
  bool scaling_ok = true;
  std::string metrics_serial, metrics_par8;
  for (int nodes : {64, 256, 512}) {
    util::Table t({"P", "Driver", "Wall (ms)", "Speedup vs serial",
                   "Solutions", "Sim time (instr)"});
    double serial_ms = 0.0;
    Sample serial{};
    for (int ht : thread_counts) {
      // Snapshot the canonical P=64 config from both drivers: the serial
      // snapshot is the published artifact, the 8-thread one only exists to
      // prove byte-identity below.
      std::string* mout = nullptr;
      if (nodes == 64 && ht == 0) mout = &metrics_serial;
      if (nodes == 64 && ht == 8) mout = &metrics_par8;
      Sample s = run_once(nodes, ht, p, mout);
      samples.push_back(s);
      if (ht == 0) {
        serial_ms = s.wall_ms;
        serial = s;
      } else if (s.solutions != serial.solutions ||
                 s.sim_time != serial.sim_time || s.quanta != serial.quanta) {
        identical = false;
        std::printf("DIVERGENCE at P=%d threads=%d!\n", nodes, ht);
      }
      if (scaling_gate && ht == 2 && s.wall_ms > 1.5 * serial_ms) {
        scaling_ok = false;
        std::printf("SCALING GATE at P=%d: 2-thread wall %.1f ms > 1.5x "
                    "serial %.1f ms\n",
                    nodes, s.wall_ms, serial_ms);
      }
      t.add_row({std::to_string(nodes),
                 ht == 0 ? "serial" : std::to_string(ht) + " threads",
                 util::Table::num(s.wall_ms, 1),
                 ht == 0 ? "1.00" : util::Table::num(serial_ms / s.wall_ms, 2),
                 util::Table::num(static_cast<std::uint64_t>(s.solutions)),
                 util::Table::num(static_cast<std::uint64_t>(s.sim_time))});
    }
    t.print();
  }

  if (metrics_serial != metrics_par8) {
    identical = false;
    std::printf("METRICS DIVERGENCE: serial and 8-thread snapshots differ!\n");
  }

  // Hot-spot migration workload: serial vs 8 threads with the shedding
  // balancer on. Placement, step totals, and all six migration counters are
  // modeled quantities — any cross-driver difference is a determinism bug
  // and fails the bench exactly like an N-queens divergence. The workload
  // must also actually shed: a silently migration-free run would turn the
  // counters (and the committed baseline) vacuous.
  {
    util::Table t({"Driver", "Wall (ms)", "Shed out", "Shed in",
                   "Node-0 objects", "Nodes w/ objects"});
    MigSample ms = run_hotspot(-1);
    MigSample mp = run_hotspot(8);
    for (const MigSample* s : {&ms, &mp}) {
      t.add_row({s == &ms ? "serial" : "8 threads",
                 util::Table::num(s->wall_ms, 1),
                 util::Table::num(s->totals.migrations_out),
                 util::Table::num(s->totals.migrations_in),
                 util::Table::num(static_cast<std::uint64_t>(
                     s->hot_node_objects)),
                 util::Table::num(static_cast<std::uint64_t>(
                     s->nodes_with_objects))});
    }
    t.print();
    const std::uint64_t expected_steps =
        static_cast<std::uint64_t>(kMigActors) * (kMigFuel + 1);
    if (ms.total_steps != expected_steps || mp.total_steps != expected_steps ||
        ms.hot_node_objects != mp.hot_node_objects ||
        ms.nodes_with_objects != mp.nodes_with_objects ||
        ms.totals.migrations_out != mp.totals.migrations_out ||
        ms.totals.migrations_in != mp.totals.migrations_in ||
        ms.totals.migration_mail != mp.totals.migration_mail ||
        ms.totals.migration_forwards != mp.totals.migration_forwards ||
        ms.totals.migration_updates != mp.totals.migration_updates ||
        ms.totals.migration_holds != mp.totals.migration_holds) {
      identical = false;
      std::printf("MIGRATION DIVERGENCE: hot-spot runs differ across "
                  "drivers (or lost steps)!\n");
    }
    if (ms.totals.migrations_out == 0 || ms.nodes_with_objects < 2) {
      identical = false;
      std::printf("MIGRATION GATE: hot-spot workload did not shed!\n");
    }
    // Splice the (deterministic) hot-spot counters into the serial metrics
    // snapshot so bench_regression_check pins them. metrics_json output is
    // one compact object + '\n'; insert before the closing brace.
    char hot[512];
    std::snprintf(
        hot, sizeof hot,
        ",\"migration_hotspot\":{\"nodes\":%d,\"actors\":%d,\"fuel\":%llu,"
        "\"migrations_out\":%llu,\"migrations_in\":%llu,"
        "\"migration_mail\":%llu,\"migration_forwards\":%llu,"
        "\"migration_updates\":%llu,\"migration_holds\":%llu,"
        "\"hot_node_final_objects\":%d,\"nodes_with_objects\":%d}",
        kMigNodes, kMigActors, static_cast<unsigned long long>(kMigFuel),
        static_cast<unsigned long long>(ms.totals.migrations_out),
        static_cast<unsigned long long>(ms.totals.migrations_in),
        static_cast<unsigned long long>(ms.totals.migration_mail),
        static_cast<unsigned long long>(ms.totals.migration_forwards),
        static_cast<unsigned long long>(ms.totals.migration_updates),
        static_cast<unsigned long long>(ms.totals.migration_holds),
        ms.hot_node_objects, ms.nodes_with_objects);
    const std::size_t brace = metrics_serial.rfind('}');
    if (brace != std::string::npos) metrics_serial.insert(brace, hot);
  }

  const char* mpath = std::getenv("ABCLSIM_METRICS_JSON");
  if (mpath == nullptr || *mpath == '\0') mpath = "BENCH_host_parallel.metrics.json";
  if (obs::write_file(mpath, metrics_serial)) {
    std::printf("wrote %s\n", mpath);
  } else {
    std::printf("could not open %s for writing\n", mpath);
  }

  const char* path = std::getenv("ABCLSIM_BENCH_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_host_parallel.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"host_parallel_nqueens\",\n");
    std::fprintf(f, "  \"n\": %d,\n  \"host_cores\": %u,\n", n, cores);
    std::fprintf(f, "  \"parallel_meaningful\": %s,\n",
                 meaningful ? "true" : "false");
    std::fprintf(f, "  \"results_identical_across_drivers\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"nodes\": %d, \"host_threads\": %d, "
                   "\"wall_ms\": %.3f, \"solutions\": %lld, "
                   "\"sim_time\": %llu, \"quanta\": %llu}%s\n",
                   s.nodes, s.host_threads, s.wall_ms,
                   static_cast<long long>(s.solutions),
                   static_cast<unsigned long long>(s.sim_time),
                   static_cast<unsigned long long>(s.quanta),
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  } else {
    std::printf("\ncould not open %s for writing\n", path);
  }
  return (identical && scaling_ok) ? 0 : 1;
}
