// Host-parallel driver speedup: wall-clock of Figure-5-style N-queens runs
// (P in {64, 256, 512} simulated nodes), serial Machine vs ParallelMachine
// at 1/2/4/8 host threads. Every configuration must produce the identical
// solution count and modeled sim_time — the speedup is pure host-side.
//
// Machine-readable trajectory lands in BENCH_host_parallel.json (override
// the path with ABCLSIM_BENCH_JSON). N defaults to 10; set
// ABCLSIM_NQUEENS_N for other sizes. Note: the measured speedup is bounded
// by physical cores — the JSON records the real
// std::thread::hardware_concurrency() as host_cores and sets
// "parallel_meaningful": false when it is < 2, so trajectories from
// single-core boxes are never misread as scaling regressions.
//
// ABCLSIM_SCALING_GATE=1 additionally turns the scaling expectation into an
// exit-code gate on multi-core hosts: for every P the 2-thread wall clock
// must stay within 1.5x of serial (generous — real speedup is expected, but
// shared CI runners are noisy). Single-core hosts skip the gate.
//
// A full obs metrics snapshot of the canonical P=64 run additionally lands
// next to the trajectory (ABCLSIM_METRICS_JSON, default
// BENCH_host_parallel.metrics.json); the serial and 8-thread snapshots are
// diffed byte-for-byte here, so any cross-driver stats divergence fails the
// bench just like a solution-count divergence. CI feeds both files to
// bench_regression_check against the committed baselines.
//
// A second workload — a hot-spot world where every migratable actor is born
// on node 0 and the work-shedding balancer must spread them — runs serial
// and at 8 threads with migration enabled (under both shard policies). Its
// six migration counters and final object placement are pure simulated
// quantities, so they must match across drivers (folded into the same exit
// gate) and are spliced into the metrics snapshot as "migration_hotspot"
// for the regression baseline.
//
// Driver-policy ablations (new with the topology-aware windows):
//  - Window policy: every parallel N-queens config also runs under
//    ABCLSIM_HORIZON=distance semantics (cfg.with_horizon). The table gains
//    a windows-per-run column; distance must cut windows_run by >= 25% at
//    every P (always gated — windows_run is a simulated quantity), produce
//    identical solutions/sim_time/quanta, and at P=64 a byte-identical
//    metrics snapshot.
//  - Shard policy: a clustered workload pins heavy actors on nodes 0 mod 8
//    of a 64-node world, which the static node-id-mod-T assignment piles
//    onto worker 0 at 8 threads. It runs static vs balanced at 8 threads;
//    all simulated counters must match, and under ABCLSIM_SCALING_GATE=1 on
//    multi-core hosts the balanced wall clock must beat static by >= 1.3x.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/nqueens.hpp"
#include "bench_common.hpp"
#include "core/object.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "net/topology.hpp"
#include "remote/migration.hpp"
#include "sim/parallel_machine.hpp"

namespace {

using namespace abcl;

struct Sample {
  int nodes = 0;
  int host_threads = 0;  // 0 = serial Machine
  double wall_ms = 0.0;
  std::int64_t solutions = 0;
  sim::Instr sim_time = 0;
  std::uint64_t quanta = 0;
  // Parallel-driver window count (0 under the serial Machine). A function
  // of simulated state + the horizon policy only — identical at any thread
  // count, so the committed baseline pins it.
  std::uint64_t windows = 0;
};

Sample run_once(int nodes, int host_threads, const apps::NQueensParams& p,
                std::string* metrics_out = nullptr,
                sim::HorizonKind horizon = sim::HorizonKind::kGlobal) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(nodes);
  cfg.with_host_threads(host_threads == 0 ? -1 : host_threads);
  cfg.with_horizon(horizon);
  World world(prog, cfg);

  auto t0 = std::chrono::steady_clock::now();
  auto r = apps::run_nqueens(world, np, p);
  auto t1 = std::chrono::steady_clock::now();

  Sample s;
  s.nodes = nodes;
  s.host_threads = host_threads;
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.solutions = r.solutions;
  s.sim_time = r.sim_time;
  s.quanta = r.rep.quanta;
  if (auto* pm = dynamic_cast<sim::ParallelMachine*>(&world.machine())) {
    s.windows = pm->windows_run();
  }
  if (metrics_out != nullptr) *metrics_out = obs::metrics_json(world, &r.rep);
  return s;
}

// ------------------------------------------ hot-spot migration workload -----

// All actors are born on node 0 of an 8-node world and churn through
// self-chains; the shedding balancer must export objects off the hot node.
// Every field below is a simulated quantity — identical across drivers by
// the determinism contract, which is exactly what main() gates on.
struct ChurnState {
  std::uint64_t steps = 0;
};

struct MigSample {
  double wall_ms = 0.0;
  std::uint64_t total_steps = 0;
  int hot_node_objects = 0;   // actors still homed on node 0 after the run
  int nodes_with_objects = 0;
  core::NodeStats totals{};   // world-summed; migration counters consumed
};

constexpr int kMigNodes = 8;
constexpr int kMigActors = 96;
constexpr Word kMigFuel = 120;

MigSample run_hotspot(int host_threads,
                      sim::ShardKind shard = sim::ShardKind::kStatic) {
  core::Program prog;
  PatternId kick = prog.patterns().intern("churn.kick", 1);
  ClassDef<ChurnState> def(prog, "Churn");
  def.migratable();
  struct KickFrame : Frame {
    Word fuel = 0;
    PatternId pat = 0;
    static void init(KickFrame& f, const Msg& m) {
      f.fuel = m.at(0);
      f.pat = m.pattern;
    }
    static Status run(Ctx& ctx, ChurnState& self, KickFrame& f) {
      ABCL_BEGIN(f);
      self.steps += 1;
      ctx.charge(200);
      if (f.fuel > 0) {
        Word arg = f.fuel - 1;
        ctx.send_past(ctx.self_addr(), f.pat, &arg, 1);
      }
      ABCL_END();
    }
  };
  def.method<KickFrame>(kick);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(kMigNodes);
  cfg.with_host_threads(host_threads);
  cfg.with_shard(shard);
  remote::MigrationConfig mc;
  mc.enabled = true;
  mc.interval = 8;
  mc.hysteresis = 2;
  mc.max_batch = 4;
  mc.min_queue = 6;
  mc.seed = 5;
  cfg.with_migration(mc);
  World world(prog, cfg);

  std::vector<MailAddr> actors;
  world.boot(0, [&](Ctx& ctx) {
    for (int i = 0; i < kMigActors; ++i) {
      actors.push_back(ctx.create_local(def.info(), {}));
    }
  });
  world.boot(0, [&](Ctx& ctx) {
    for (const MailAddr& a : actors) ctx.send_past(a, kick, {kMigFuel});
  });
  auto t0 = std::chrono::steady_clock::now();
  world.run();
  auto t1 = std::chrono::steady_clock::now();

  MigSample s;
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::vector<int> per_node(kMigNodes, 0);
  for (MailAddr a : actors) {
    // Chase the forwarding chain (path compression bounds it, but a fixed
    // hop cap keeps a regression from hanging the bench).
    for (int hops = 0; hops < 8; ++hops) {
      auto f = world.node(a.node).forward_target(a.ptr);
      if (!f.has_value() || (f->node == a.node && f->ptr == a.ptr)) break;
      a = *f;
    }
    per_node[static_cast<std::size_t>(a.node)] += 1;
    s.total_steps += a.ptr->state_as<const ChurnState>()->steps;
  }
  s.hot_node_objects = per_node[0];
  for (int n : per_node) s.nodes_with_objects += n > 0;
  s.totals = world.total_stats();
  return s;
}

// --------------------------------------- clustered shard-policy workload ----

// 64 nodes, heavy self-chaining actors only on nodes 0 mod 8. The static
// node-id-mod-T shard assignment maps every one of those nodes to worker 0
// at 8 host threads — the worst case the balanced policy exists for. Each
// quantum also burns real host CPU (kSpinIters mixing rounds) so the
// wall-clock contrast measures execution spread, not barrier overhead.
struct ClusterState {
  std::uint64_t steps = 0;
  std::uint64_t acc = 0;
};

struct ClusterSample {
  double wall_ms = 0.0;
  std::uint64_t total_steps = 0;
  sim::Instr sim_time = 0;
  std::uint64_t quanta = 0;
  std::uint64_t windows = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t shard_moves = 0;
};

constexpr int kClNodes = 64;
constexpr int kClActorsPerHot = 12;  // 8 hot nodes -> 96 actors
constexpr Word kClFuel = 120;
constexpr int kClSpinIters = 24000;

ClusterSample run_clustered(sim::ShardKind shard) {
  core::Program prog;
  PatternId kick = prog.patterns().intern("cluster.kick", 1);
  ClassDef<ClusterState> def(prog, "Cluster");
  struct KickFrame : Frame {
    Word fuel = 0;
    PatternId pat = 0;
    static void init(KickFrame& f, const Msg& m) {
      f.fuel = m.at(0);
      f.pat = m.pattern;
    }
    static Status run(Ctx& ctx, ClusterState& self, KickFrame& f) {
      ABCL_BEGIN(f);
      self.steps += 1;
      {
        // Deterministic host-side work: the result feeds actor state, so
        // the simulated outcome pins it and the optimizer cannot drop it.
        std::uint64_t x = self.acc + f.fuel + 0x9e3779b97f4a7c15ull;
        for (int i = 0; i < kClSpinIters; ++i) {
          x ^= x >> 30;
          x *= 0xbf58476d1ce4e5b9ull;
          x ^= x >> 27;
        }
        self.acc += x;
      }
      ctx.charge(200);
      if (f.fuel > 0) {
        Word arg = f.fuel - 1;
        ctx.send_past(ctx.self_addr(), f.pat, &arg, 1);
      }
      ABCL_END();
    }
  };
  def.method<KickFrame>(kick);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(kClNodes);
  cfg.with_host_threads(8);
  cfg.with_shard(shard);
  World world(prog, cfg);

  // Create AND kick locally on each hot node: every chain starts at the
  // same simulated instant and advances by the same charge, so all actors
  // stay in lockstep and every window executes every actor — the contrast
  // between the policies is then purely where those quanta execute.
  std::vector<MailAddr> actors;
  for (int node = 0; node < kClNodes; node += 8) {
    world.boot(node, [&](Ctx& ctx) {
      for (int i = 0; i < kClActorsPerHot; ++i) {
        MailAddr a = ctx.create_local(def.info(), {});
        actors.push_back(a);
        ctx.send_past(a, kick, {kClFuel});
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  RunReport rep = world.run();
  auto t1 = std::chrono::steady_clock::now();

  ClusterSample s;
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.sim_time = rep.sim_time;
  s.quanta = rep.quanta;
  for (const MailAddr& a : actors) {
    s.total_steps += a.ptr->state_as<const ClusterState>()->steps;
  }
  if (auto* pm = dynamic_cast<sim::ParallelMachine*>(&world.machine())) {
    s.windows = pm->windows_run();
    s.rebalances = pm->rebalances();
    s.shard_moves = pm->shard_moves();
  }
  return s;
}

// ------------------------------------------ torus-locality window bench -----

// The workload distance horizons exist for: every node of the 16x16 torus
// churns a node-local chain, phase-shifted by 2 * hops(0, i) instructions -
// dense in *time*, with the in-time neighbors far apart in *space*. Under
// the flat policy a 20-instr window only reaches phases < 20, so each
// 200-instr generation costs two barriers. The distance policy prices the
// hops between a node and the frontier into its horizon -- H_i >= K_min +
// 20 + hops(0,i) > K_min + 2*hops(0,i) -- so every node runs its quantum in
// the first window and each generation costs one barrier: an asymptotic 50%
// window reduction, all simulated and thread-count-independent, which the
// >= 25% acceptance gate pins. (The N-queens runs above are saturated --
// queues deep everywhere, every window full under either policy -- so their
// reduction is structurally small; they are reported but not gated.)
struct LocalityResult {
  std::uint64_t windows = 0;
  std::uint64_t occupancy = 0;
  sim::Instr sim_time = 0;
  std::uint64_t quanta = 0;
  std::string driver_json;  // obs::driver_metrics_json snapshot
};

constexpr int kLocNodes = 256;  // 16x16 torus
constexpr Word kLocFuel = 200;

LocalityResult run_locality(sim::HorizonKind horizon) {
  core::Program prog;
  PatternId kick = prog.patterns().intern("loc.kick", 2);  // fuel, phase
  ClassDef<ClusterState> def(prog, "Loc");
  struct KickFrame : Frame {
    Word fuel = 0;
    Word phase = 0;
    PatternId pat = 0;
    static void init(KickFrame& f, const Msg& m) {
      f.fuel = m.at(0);
      f.phase = m.at(1);
      f.pat = m.pattern;
    }
    static Status run(Ctx& ctx, ClusterState& self, KickFrame& f) {
      ABCL_BEGIN(f);
      self.steps += 1;
      ctx.charge(200 + f.phase);  // phase is only nonzero on the first step
      if (f.fuel > 0) {
        Word args[2] = {f.fuel - 1, 0};
        ctx.send_past(ctx.self_addr(), f.pat, args, 2);
      }
      ABCL_END();
    }
  };
  def.method<KickFrame>(kick);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(kLocNodes);
  cfg.with_host_threads(2);
  cfg.with_horizon(horizon);
  World world(prog, cfg);

  const net::Topology topo(net::TopologyKind::kTorus2D, kLocNodes);
  for (int node = 0; node < kLocNodes; ++node) {
    world.boot(node, [&](Ctx& ctx) {
      MailAddr a = ctx.create_local(def.info(), {});
      ctx.send_past(a, kick,
                    {kLocFuel, static_cast<Word>(2 * topo.hops(0, node))});
    });
  }
  RunReport rep = world.run();

  LocalityResult r;
  r.sim_time = rep.sim_time;
  r.quanta = rep.quanta;
  if (auto* pm = dynamic_cast<sim::ParallelMachine*>(&world.machine())) {
    r.windows = pm->windows_run();
    r.occupancy = pm->occupancy_sum();
    r.driver_json = obs::driver_metrics_json(*pm);
  }
  return r;
}


}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // accepted for interface uniformity
  bench::header("Host-parallel driver: N-queens wall-clock, serial vs threads");

  const int n = bench::env_int("ABCLSIM_NQUEENS_N", 10);
  const auto p = apps::NQueensParams::paper_calibrated(n);
  const unsigned cores = std::thread::hardware_concurrency();
  const int thread_counts[] = {0, 1, 2, 4, 8};  // 0 = serial Machine

  const bool meaningful = cores >= 2;
  const bool scaling_gate =
      meaningful && bench::env_int("ABCLSIM_SCALING_GATE", 0) != 0;

  std::printf("N = %d, host cores = %u%s\n", n, cores,
              meaningful ? "" : " (single-core: speedups not meaningful)");
  std::vector<Sample> samples;
  struct WindowAblation {
    int nodes = 0;
    std::uint64_t global_windows = 0;
    std::uint64_t distance_windows = 0;
  };
  std::vector<WindowAblation> ablations;
  bool identical = true;
  bool scaling_ok = true;
  bool windows_ok = true;
  std::string metrics_serial, metrics_par8, metrics_dist;
  for (int nodes : {64, 256, 512}) {
    util::Table t({"P", "Driver", "Wall (ms)", "Speedup vs serial",
                   "Solutions", "Sim time (instr)", "Windows"});
    double serial_ms = 0.0;
    Sample serial{};
    Sample global8{};
    for (int ht : thread_counts) {
      // Snapshot the canonical P=64 config from both drivers: the serial
      // snapshot is the published artifact, the 8-thread one only exists to
      // prove byte-identity below.
      std::string* mout = nullptr;
      if (nodes == 64 && ht == 0) mout = &metrics_serial;
      if (nodes == 64 && ht == 8) mout = &metrics_par8;
      Sample s = run_once(nodes, ht, p, mout);
      samples.push_back(s);
      if (ht == 0) {
        serial_ms = s.wall_ms;
        serial = s;
      } else if (s.solutions != serial.solutions ||
                 s.sim_time != serial.sim_time || s.quanta != serial.quanta) {
        identical = false;
        std::printf("DIVERGENCE at P=%d threads=%d!\n", nodes, ht);
      }
      if (ht == 8) global8 = s;
      if (scaling_gate && ht == 2 && s.wall_ms > 1.5 * serial_ms) {
        scaling_ok = false;
        std::printf("SCALING GATE at P=%d: 2-thread wall %.1f ms > 1.5x "
                    "serial %.1f ms\n",
                    nodes, s.wall_ms, serial_ms);
      }
      t.add_row({std::to_string(nodes),
                 ht == 0 ? "serial" : std::to_string(ht) + " threads",
                 util::Table::num(s.wall_ms, 1),
                 ht == 0 ? "1.00" : util::Table::num(serial_ms / s.wall_ms, 2),
                 util::Table::num(static_cast<std::uint64_t>(s.solutions)),
                 util::Table::num(static_cast<std::uint64_t>(s.sim_time)),
                 ht == 0 ? "-" : util::Table::num(s.windows)});
    }
    // Window-policy ablation: the same config under distance horizons. The
    // saturated N-queens world keeps every torus neighborhood busy, so the
    // reduction here is structurally modest (the gated >= 25% contrast is
    // the locality workload below); it must still be a reduction and must
    // not change any simulated result.
    {
      std::string* mout = nodes == 64 ? &metrics_dist : nullptr;
      Sample d = run_once(nodes, 8, p, mout, sim::HorizonKind::kDistance);
      samples.push_back(d);
      if (d.solutions != serial.solutions || d.sim_time != serial.sim_time ||
          d.quanta != serial.quanta) {
        identical = false;
        std::printf("DIVERGENCE at P=%d horizon=distance!\n", nodes);
      }
      ablations.push_back({nodes, global8.windows, d.windows});
      if (d.windows > global8.windows) {
        windows_ok = false;
        std::printf("WINDOW GATE at P=%d: distance ran %llu windows, global "
                    "only %llu — distance horizons must never add windows\n",
                    nodes, static_cast<unsigned long long>(d.windows),
                    static_cast<unsigned long long>(global8.windows));
      }
      t.add_row({std::to_string(nodes), "8 thr, distance",
                 util::Table::num(d.wall_ms, 1),
                 util::Table::num(serial_ms / d.wall_ms, 2),
                 util::Table::num(static_cast<std::uint64_t>(d.solutions)),
                 util::Table::num(static_cast<std::uint64_t>(d.sim_time)),
                 util::Table::num(d.windows)});
    }
    t.print();
  }

  if (metrics_serial != metrics_par8) {
    identical = false;
    std::printf("METRICS DIVERGENCE: serial and 8-thread snapshots differ!\n");
  }
  if (metrics_serial != metrics_dist) {
    identical = false;
    std::printf(
        "METRICS DIVERGENCE: distance-horizon snapshot differs from "
        "serial!\n");
  }

  // Hot-spot migration workload: serial vs 8 threads with the shedding
  // balancer on. Placement, step totals, and all six migration counters are
  // modeled quantities — any cross-driver difference is a determinism bug
  // and fails the bench exactly like an N-queens divergence. The workload
  // must also actually shed: a silently migration-free run would turn the
  // counters (and the committed baseline) vacuous.
  {
    util::Table t({"Driver", "Wall (ms)", "Shed out", "Shed in",
                   "Node-0 objects", "Nodes w/ objects"});
    MigSample ms = run_hotspot(-1);
    MigSample mp = run_hotspot(8);
    MigSample mb = run_hotspot(8, sim::ShardKind::kBalanced);
    for (const MigSample* s : {&ms, &mp, &mb}) {
      t.add_row({s == &ms   ? "serial"
                 : s == &mp ? "8 threads"
                            : "8 thr, balanced",
                 util::Table::num(s->wall_ms, 1),
                 util::Table::num(s->totals.migrations_out),
                 util::Table::num(s->totals.migrations_in),
                 util::Table::num(static_cast<std::uint64_t>(
                     s->hot_node_objects)),
                 util::Table::num(static_cast<std::uint64_t>(
                     s->nodes_with_objects))});
    }
    t.print();
    const std::uint64_t expected_steps =
        static_cast<std::uint64_t>(kMigActors) * (kMigFuel + 1);
    auto mig_matches = [&](const MigSample& x) {
      return x.total_steps == expected_steps &&
             x.hot_node_objects == ms.hot_node_objects &&
             x.nodes_with_objects == ms.nodes_with_objects &&
             x.totals.migrations_out == ms.totals.migrations_out &&
             x.totals.migrations_in == ms.totals.migrations_in &&
             x.totals.migration_mail == ms.totals.migration_mail &&
             x.totals.migration_forwards == ms.totals.migration_forwards &&
             x.totals.migration_updates == ms.totals.migration_updates &&
             x.totals.migration_holds == ms.totals.migration_holds;
    };
    if (ms.total_steps != expected_steps || !mig_matches(mp) ||
        !mig_matches(mb)) {
      identical = false;
      std::printf("MIGRATION DIVERGENCE: hot-spot runs differ across "
                  "drivers/shard policies (or lost steps)!\n");
    }
    if (ms.totals.migrations_out == 0 || ms.nodes_with_objects < 2) {
      identical = false;
      std::printf("MIGRATION GATE: hot-spot workload did not shed!\n");
    }
    // Splice the (deterministic) hot-spot counters into the serial metrics
    // snapshot so bench_regression_check pins them. metrics_json output is
    // one compact object + '\n'; insert before the closing brace.
    char hot[512];
    std::snprintf(
        hot, sizeof hot,
        ",\"migration_hotspot\":{\"nodes\":%d,\"actors\":%d,\"fuel\":%llu,"
        "\"migrations_out\":%llu,\"migrations_in\":%llu,"
        "\"migration_mail\":%llu,\"migration_forwards\":%llu,"
        "\"migration_updates\":%llu,\"migration_holds\":%llu,"
        "\"hot_node_final_objects\":%d,\"nodes_with_objects\":%d}",
        kMigNodes, kMigActors, static_cast<unsigned long long>(kMigFuel),
        static_cast<unsigned long long>(ms.totals.migrations_out),
        static_cast<unsigned long long>(ms.totals.migrations_in),
        static_cast<unsigned long long>(ms.totals.migration_mail),
        static_cast<unsigned long long>(ms.totals.migration_forwards),
        static_cast<unsigned long long>(ms.totals.migration_updates),
        static_cast<unsigned long long>(ms.totals.migration_holds),
        ms.hot_node_objects, ms.nodes_with_objects);
    const std::size_t brace = metrics_serial.rfind('}');
    if (brace != std::string::npos) metrics_serial.insert(brace, hot);
  }

  // Torus-locality window ablation — the gated >= 25% reduction.
  LocalityResult loc_global = run_locality(sim::HorizonKind::kGlobal);
  LocalityResult loc_dist = run_locality(sim::HorizonKind::kDistance);
  {
    util::Table t({"Horizon", "Windows", "Mean occupancy", "Sim time (instr)",
                   "Quanta"});
    for (const LocalityResult* r : {&loc_global, &loc_dist}) {
      t.add_row({r == &loc_global ? "global" : "distance",
                 util::Table::num(r->windows),
                 util::Table::num(
                     static_cast<double>(r->occupancy) /
                         static_cast<double>(r->windows ? r->windows : 1),
                     2),
                 util::Table::num(static_cast<std::uint64_t>(r->sim_time)),
                 util::Table::num(r->quanta)});
    }
    t.print();
    if (loc_global.sim_time != loc_dist.sim_time ||
        loc_global.quanta != loc_dist.quanta) {
      identical = false;
      std::printf("DIVERGENCE: locality workload's simulated results differ "
                  "between horizon policies!\n");
    }
    if (loc_dist.windows * 4 > loc_global.windows * 3) {
      windows_ok = false;
      std::printf("WINDOW GATE: locality workload — distance ran %llu "
                  "windows, global %llu — less than a 25%% reduction\n",
                  static_cast<unsigned long long>(loc_dist.windows),
                  static_cast<unsigned long long>(loc_global.windows));
    }
  }

  // Clustered shard-policy workload: static piles every hot node onto
  // worker 0; balanced spreads them. All simulated quantities must match;
  // the wall-clock win is gated only under ABCLSIM_SCALING_GATE on
  // multi-core hosts (it needs real parallel execution to exist).
  ClusterSample cl_static{};
  ClusterSample cl_bal{};
  {
    // Best-of-3 per policy: wall clock on shared runners is noisy and the
    // minimum is the least contaminated observation of each policy's cost.
    for (int rep = 0; rep < 3; ++rep) {
      ClusterSample s = run_clustered(sim::ShardKind::kStatic);
      ClusterSample b = run_clustered(sim::ShardKind::kBalanced);
      if (rep == 0 || s.wall_ms < cl_static.wall_ms) cl_static = s;
      if (rep == 0 || b.wall_ms < cl_bal.wall_ms) cl_bal = b;
    }
    util::Table t({"Shard", "Wall (ms)", "Speedup", "Sim time (instr)",
                   "Windows", "Rebalances", "Moves"});
    for (const ClusterSample* s : {&cl_static, &cl_bal}) {
      t.add_row({s == &cl_static ? "static" : "balanced",
                 util::Table::num(s->wall_ms, 1),
                 s == &cl_static
                     ? "1.00"
                     : util::Table::num(cl_static.wall_ms / s->wall_ms, 2),
                 util::Table::num(static_cast<std::uint64_t>(s->sim_time)),
                 util::Table::num(s->windows), util::Table::num(s->rebalances),
                 util::Table::num(s->shard_moves)});
    }
    t.print();
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kClNodes / 8 * kClActorsPerHot) *
        (kClFuel + 1);
    if (cl_static.total_steps != expected || cl_bal.total_steps != expected ||
        cl_static.sim_time != cl_bal.sim_time ||
        cl_static.quanta != cl_bal.quanta ||
        cl_static.windows != cl_bal.windows) {
      identical = false;
      std::printf("SHARD DIVERGENCE: clustered workload's simulated results "
                  "differ between shard policies!\n");
    }
    if (cl_bal.shard_moves == 0) {
      identical = false;
      std::printf("SHARD GATE: balanced policy never moved a node!\n");
    }
    if (scaling_gate && cl_bal.wall_ms * 1.3 > cl_static.wall_ms) {
      scaling_ok = false;
      std::printf("SHARD SCALING GATE: balanced wall %.1f ms not >= 1.3x "
                  "faster than static %.1f ms\n",
                  cl_bal.wall_ms, cl_static.wall_ms);
    }
  }

  const char* mpath = std::getenv("ABCLSIM_METRICS_JSON");
  if (mpath == nullptr || *mpath == '\0') mpath = "BENCH_host_parallel.metrics.json";
  if (obs::write_file(mpath, metrics_serial)) {
    std::printf("wrote %s\n", mpath);
  } else {
    std::printf("could not open %s for writing\n", mpath);
  }

  const char* path = std::getenv("ABCLSIM_BENCH_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_host_parallel.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"host_parallel_nqueens\",\n");
    std::fprintf(f, "  \"n\": %d,\n  \"host_cores\": %u,\n", n, cores);
    std::fprintf(f, "  \"parallel_meaningful\": %s,\n",
                 meaningful ? "true" : "false");
    std::fprintf(f, "  \"results_identical_across_drivers\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"nodes\": %d, \"host_threads\": %d, "
                   "\"wall_ms\": %.3f, \"solutions\": %lld, "
                   "\"sim_time\": %llu, \"quanta\": %llu, "
                   "\"windows\": %llu}%s\n",
                   s.nodes, s.host_threads, s.wall_ms,
                   static_cast<long long>(s.solutions),
                   static_cast<unsigned long long>(s.sim_time),
                   static_cast<unsigned long long>(s.quanta),
                   static_cast<unsigned long long>(s.windows),
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Window-policy ablation: window counts are simulated quantities, so
    // the committed baseline pins both and with them the >= 25% reduction.
    std::fprintf(f, "  \"window_policy\": [\n");
    for (std::size_t i = 0; i < ablations.size(); ++i) {
      const WindowAblation& a = ablations[i];
      std::fprintf(f,
                   "    {\"nodes\": %d, \"global_windows\": %llu, "
                   "\"distance_windows\": %llu}%s\n",
                   a.nodes, static_cast<unsigned long long>(a.global_windows),
                   static_cast<unsigned long long>(a.distance_windows),
                   i + 1 < ablations.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Gated torus-locality ablation (all simulated, hence pinnable).
    std::fprintf(f,
                 "  \"window_locality\": {\"nodes\": %d, "
                 "\"global_windows\": %llu, \"distance_windows\": %llu, "
                 "\"global_occupancy\": %llu, \"distance_occupancy\": %llu, "
                 "\"quanta\": %llu, \"sim_time\": %llu},\n",
                 kLocNodes,
                 static_cast<unsigned long long>(loc_global.windows),
                 static_cast<unsigned long long>(loc_dist.windows),
                 static_cast<unsigned long long>(loc_global.occupancy),
                 static_cast<unsigned long long>(loc_dist.occupancy),
                 static_cast<unsigned long long>(loc_global.quanta),
                 static_cast<unsigned long long>(loc_global.sim_time));
    // Full driver-counter snapshots (obs::driver_metrics_json) per policy —
    // deterministic at the pinned 2-thread width, so pinned in baselines.
    std::fprintf(f, "  \"window_locality_driver\": {\"global\": %s, "
                 "\"distance\": %s},\n",
                 loc_global.driver_json.c_str(), loc_dist.driver_json.c_str());
    // Shard-policy workload. Counts are deterministic at the pinned 8-thread
    // width; "speedup" is wall-clock-derived and on the shared ignore list.
    std::fprintf(
        f,
        "  \"shard_hotspot\": {\"nodes\": %d, \"actors\": %d, "
        "\"fuel\": %llu, \"quanta\": %llu, \"sim_time\": %llu, "
        "\"windows\": %llu, \"rebalances\": %llu, \"shard_moves\": %llu, "
        "\"static\": {\"wall_ms\": %.3f}, \"balanced\": {\"wall_ms\": %.3f}, "
        "\"speedup\": %.3f},\n",
        kClNodes, kClNodes / 8 * kClActorsPerHot,
        static_cast<unsigned long long>(kClFuel),
        static_cast<unsigned long long>(cl_static.quanta),
        static_cast<unsigned long long>(cl_static.sim_time),
        static_cast<unsigned long long>(cl_static.windows),
        static_cast<unsigned long long>(cl_bal.rebalances),
        static_cast<unsigned long long>(cl_bal.shard_moves), cl_static.wall_ms,
        cl_bal.wall_ms, cl_static.wall_ms / cl_bal.wall_ms);
    std::fprintf(f, "  \"windows_gate_ok\": %s\n",
                 windows_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  } else {
    std::printf("\ncould not open %s for writing\n", path);
  }
  return (identical && scaling_ok && windows_ok) ? 0 : 1;
}
