// Figure 5 — speedup of the N-queens program vs number of processors.
//
// Paper: N=8 saturates around 20x (64 PEs); N=13 reaches ~440x on 512 PEs
// (~85% utilization). Speedup is measured exactly as in the paper: elapsed
// time of the *sequential* program (same algorithm, stack-based DFS, same
// per-node work) divided by the parallel program's elapsed time, both in
// modeled machine time.
//
// Defaults sweep N=8 and N=12 up to 512 simulated nodes; set
// ABCLSIM_NQUEENS_MAX=13 for the full-scale curve (minutes of host time).
#include <benchmark/benchmark.h>

#include "apps/nqueens.hpp"
#include "apps/nqueens_seq.hpp"
#include "bench_common.hpp"

namespace {

using namespace abcl;

void run_series(int n) {
  auto p = apps::NQueensParams::paper_calibrated(n);
  auto seq = apps::nqueens_seq(n, p.charge_base, p.charge_per_col);
  const auto cost = sim::CostModel::ap1000();

  std::printf("\nN = %d  (sequential: %s solutions, %.1f ms modeled)\n", n,
              util::Table::num(static_cast<std::uint64_t>(seq.solutions)).c_str(),
              cost.ms(seq.charged));
  util::Table t({"Processors", "Elapsed (ms)", "Speedup", "Utilization"});
  for (int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(nodes);
    World world(prog, cfg);
    auto r = apps::run_nqueens(world, np, p);
    double speedup = static_cast<double>(seq.charged) /
                     static_cast<double>(r.sim_time);
    t.add_row({std::to_string(nodes), util::Table::num(r.sim_ms, 2),
               util::Table::num(speedup, 1),
               bench::pct(speedup / nodes)});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // accepted for interface uniformity
  bench::header("Figure 5: speedup for the N-queens problem");
  int max_n = bench::env_int("ABCLSIM_NQUEENS_MAX", 12);
  run_series(8);
  if (max_n >= 12) run_series(12);
  if (max_n >= 13) run_series(13);
  std::printf(
      "\npaper reference points: N=8 -> ~20x on 64 PEs (saturating); "
      "N=13 -> ~440x on 512 PEs (~85%% utilization)\n");
  return 0;
}
