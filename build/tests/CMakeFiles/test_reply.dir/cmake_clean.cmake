file(REMOVE_RECURSE
  "CMakeFiles/test_reply.dir/test_reply.cpp.o"
  "CMakeFiles/test_reply.dir/test_reply.cpp.o.d"
  "test_reply"
  "test_reply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
