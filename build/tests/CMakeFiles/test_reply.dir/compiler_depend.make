# Empty compiler generated dependencies file for test_reply.
# This may be replaced when dependencies are built.
