file(REMOVE_RECURSE
  "CMakeFiles/test_nqueens.dir/test_nqueens.cpp.o"
  "CMakeFiles/test_nqueens.dir/test_nqueens.cpp.o.d"
  "test_nqueens"
  "test_nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
