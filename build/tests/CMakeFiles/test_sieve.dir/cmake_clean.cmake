file(REMOVE_RECURSE
  "CMakeFiles/test_sieve.dir/test_sieve.cpp.o"
  "CMakeFiles/test_sieve.dir/test_sieve.cpp.o.d"
  "test_sieve"
  "test_sieve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
