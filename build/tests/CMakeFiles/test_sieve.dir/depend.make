# Empty dependencies file for test_sieve.
# This may be replaced when dependencies are built.
