file(REMOVE_RECURSE
  "CMakeFiles/test_remote_create.dir/test_remote_create.cpp.o"
  "CMakeFiles/test_remote_create.dir/test_remote_create.cpp.o.d"
  "test_remote_create"
  "test_remote_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
