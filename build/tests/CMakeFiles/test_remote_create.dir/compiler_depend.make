# Empty compiler generated dependencies file for test_remote_create.
# This may be replaced when dependencies are built.
