file(REMOVE_RECURSE
  "libabclsim.a"
)
