# Empty compiler generated dependencies file for abclsim.
# This may be replaced when dependencies are built.
