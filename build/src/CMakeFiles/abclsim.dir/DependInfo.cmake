
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abcl/class_def.cpp" "src/CMakeFiles/abclsim.dir/abcl/class_def.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/abcl/class_def.cpp.o.d"
  "/root/repo/src/abcl/machine_api.cpp" "src/CMakeFiles/abclsim.dir/abcl/machine_api.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/abcl/machine_api.cpp.o.d"
  "/root/repo/src/abcl/termination.cpp" "src/CMakeFiles/abclsim.dir/abcl/termination.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/abcl/termination.cpp.o.d"
  "/root/repo/src/apps/buffer.cpp" "src/CMakeFiles/abclsim.dir/apps/buffer.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/buffer.cpp.o.d"
  "/root/repo/src/apps/counters.cpp" "src/CMakeFiles/abclsim.dir/apps/counters.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/counters.cpp.o.d"
  "/root/repo/src/apps/fib.cpp" "src/CMakeFiles/abclsim.dir/apps/fib.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/fib.cpp.o.d"
  "/root/repo/src/apps/nqueens.cpp" "src/CMakeFiles/abclsim.dir/apps/nqueens.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/nqueens.cpp.o.d"
  "/root/repo/src/apps/nqueens_seq.cpp" "src/CMakeFiles/abclsim.dir/apps/nqueens_seq.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/nqueens_seq.cpp.o.d"
  "/root/repo/src/apps/pingpong.cpp" "src/CMakeFiles/abclsim.dir/apps/pingpong.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/pingpong.cpp.o.d"
  "/root/repo/src/apps/sieve.cpp" "src/CMakeFiles/abclsim.dir/apps/sieve.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/apps/sieve.cpp.o.d"
  "/root/repo/src/core/node_runtime.cpp" "src/CMakeFiles/abclsim.dir/core/node_runtime.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/core/node_runtime.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/CMakeFiles/abclsim.dir/core/pattern.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/core/pattern.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/CMakeFiles/abclsim.dir/core/program.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/core/program.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/abclsim.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/vft.cpp" "src/CMakeFiles/abclsim.dir/core/vft.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/core/vft.cpp.o.d"
  "/root/repo/src/net/active_message.cpp" "src/CMakeFiles/abclsim.dir/net/active_message.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/net/active_message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/abclsim.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/net/network.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/abclsim.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/net/topology.cpp.o.d"
  "/root/repo/src/remote/chunk_stock.cpp" "src/CMakeFiles/abclsim.dir/remote/chunk_stock.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/remote/chunk_stock.cpp.o.d"
  "/root/repo/src/remote/placement.cpp" "src/CMakeFiles/abclsim.dir/remote/placement.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/remote/placement.cpp.o.d"
  "/root/repo/src/remote/services.cpp" "src/CMakeFiles/abclsim.dir/remote/services.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/remote/services.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/abclsim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/abclsim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/util/arena.cpp" "src/CMakeFiles/abclsim.dir/util/arena.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/util/arena.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/abclsim.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/abclsim.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/abclsim.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
