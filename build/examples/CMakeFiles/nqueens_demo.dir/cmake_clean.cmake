file(REMOVE_RECURSE
  "CMakeFiles/nqueens_demo.dir/nqueens_demo.cpp.o"
  "CMakeFiles/nqueens_demo.dir/nqueens_demo.cpp.o.d"
  "nqueens_demo"
  "nqueens_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nqueens_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
