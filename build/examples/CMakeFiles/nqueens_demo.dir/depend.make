# Empty dependencies file for nqueens_demo.
# This may be replaced when dependencies are built.
