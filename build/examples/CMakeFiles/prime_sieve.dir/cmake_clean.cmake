file(REMOVE_RECURSE
  "CMakeFiles/prime_sieve.dir/prime_sieve.cpp.o"
  "CMakeFiles/prime_sieve.dir/prime_sieve.cpp.o.d"
  "prime_sieve"
  "prime_sieve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
