file(REMOVE_RECURSE
  "CMakeFiles/fib_forkjoin.dir/fib_forkjoin.cpp.o"
  "CMakeFiles/fib_forkjoin.dir/fib_forkjoin.cpp.o.d"
  "fib_forkjoin"
  "fib_forkjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fib_forkjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
