# Empty dependencies file for fib_forkjoin.
# This may be replaced when dependencies are built.
