file(REMOVE_RECURSE
  "../bench/bench_ablation_inline"
  "../bench/bench_ablation_inline.pdb"
  "CMakeFiles/bench_ablation_inline.dir/bench_ablation_inline.cpp.o"
  "CMakeFiles/bench_ablation_inline.dir/bench_ablation_inline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
