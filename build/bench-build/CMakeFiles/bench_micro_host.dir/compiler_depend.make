# Empty compiler generated dependencies file for bench_micro_host.
# This may be replaced when dependencies are built.
