file(REMOVE_RECURSE
  "../bench/bench_micro_host"
  "../bench/bench_micro_host.pdb"
  "CMakeFiles/bench_micro_host.dir/bench_micro_host.cpp.o"
  "CMakeFiles/bench_micro_host.dir/bench_micro_host.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
