# Empty compiler generated dependencies file for bench_ablation_chunkstock.
# This may be replaced when dependencies are built.
