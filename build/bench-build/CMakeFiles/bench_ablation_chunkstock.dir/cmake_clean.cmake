file(REMOVE_RECURSE
  "../bench/bench_ablation_chunkstock"
  "../bench/bench_ablation_chunkstock.pdb"
  "CMakeFiles/bench_ablation_chunkstock.dir/bench_ablation_chunkstock.cpp.o"
  "CMakeFiles/bench_ablation_chunkstock.dir/bench_ablation_chunkstock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunkstock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
