# Empty dependencies file for bench_ablation_fastpath.
# This may be replaced when dependencies are built.
