// Producer/consumer through a synchronizing buffer — demonstrates
// *selective message reception* (Section 2.2 action 4): a `get` on an empty
// buffer waits inside the method for the next `put`, implemented with a
// per-wait-site virtual function table (awaited pattern restores the
// blocked context; everything else queues).
//
//   $ ./producer_consumer [items] [nodes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/buffer.hpp"
#include "apps/counters.hpp"

using namespace abcl;

namespace {

// Consumer: "cons.go" [buffer_node, buffer_ptr, get_pat, n] — performs n
// now-type gets, accumulating the received items.
struct ConsumerState {
  std::int64_t sum = 0;
  std::int64_t received = 0;
};

struct ConsumerGoFrame : Frame {
  MailAddr buf;
  PatternId get_pat = 0;
  std::int64_t n = 0;
  std::int64_t i = 0;
  NowCall call;
  static void init(ConsumerGoFrame& f, const Msg& m) {
    f.buf = m.addr(0);
    f.get_pat = static_cast<PatternId>(m.at(2));
    f.n = m.i64(3);
  }
  static Status run(Ctx& ctx, ConsumerState& self, ConsumerGoFrame& f) {
    ABCL_BEGIN(f);
    while (f.i < f.n) {
      f.call = ctx.send_now(f.buf, f.get_pat, nullptr, 0);
      ABCL_AWAIT(ctx, f, 1, f.call);
      self.sum += static_cast<std::int64_t>(ctx.take_reply(f.call));
      self.received += 1;
      f.i += 1;
    }
    ABCL_END();
  }
};

}  // namespace

int main(int argc, char** argv) {
  int items = argc > 1 ? std::atoi(argv[1]) : 1000;
  int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  if (items < 1 || nodes < 1) {
    std::fprintf(stderr, "usage: %s [items] [nodes]\n", argv[0]);
    return 1;
  }

  core::Program prog;
  apps::BufferProgram bp = apps::register_buffer(prog);
  PatternId cons_go = prog.patterns().intern("cons.go", 4);
  ClassDef<ConsumerState> consumer_def(prog, "Consumer");
  consumer_def.method<ConsumerGoFrame>(cons_go);
  prog.finalize();

  World world(prog, WorldConfig::from_env().with_nodes(nodes));

  // Buffer on node 0, consumer on the last node, producer on node 1 (or 0).
  MailAddr buf, consumer;
  world.boot(0, [&](Ctx& ctx) { buf = ctx.create_local(*bp.cls, nullptr, 0); });
  world.boot(nodes - 1, [&](Ctx& ctx) {
    consumer = ctx.create_local(consumer_def.info(), nullptr, 0);
    Word args[4] = {buf.word_node(), buf.word_ptr(), bp.get,
                    static_cast<Word>(items)};
    ctx.send_past(consumer, cons_go, args, 4);
  });
  world.boot(nodes > 1 ? 1 : 0, [&](Ctx& ctx) {
    for (int i = 1; i <= items; ++i) {
      Word item = static_cast<Word>(i);
      ctx.send_past(buf, bp.put, &item, 1);
    }
  });

  RunReport rep = world.run();
  const auto& cs = *consumer.ptr->state_as<ConsumerState>();
  const auto& bs = apps::buffer_state(buf);
  std::printf("producer/consumer over a synchronizing buffer (%d nodes)\n",
              nodes);
  std::printf("  items produced/consumed : %d / %lld\n", items,
              static_cast<long long>(cs.received));
  std::printf("  checksum                : %lld (expected %lld)\n",
              static_cast<long long>(cs.sum),
              static_cast<long long>(std::int64_t{items} * (items + 1) / 2));
  std::printf("  gets that select-waited : %llu\n",
              static_cast<unsigned long long>(bs.waited_gets));
  std::printf("  simulated time          : %.3f ms\n", rep.sim_ms);
  return cs.received == items ? 0 : 2;
}
