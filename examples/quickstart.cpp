// Quickstart: define a concurrent class, build a 4-node world, send some
// past- and now-type messages, and read the results.
//
//   $ ./quickstart
//
// Walkthrough:
//  1. A Program collects message patterns and classes ("compile time").
//  2. A World is the simulated multicomputer (nodes + torus network).
//  3. boot() runs code on a node: create objects, send the first messages.
//  4. run() drives the machine to quiescence; host code then reads state.
#include <cstdio>

#include "abcl/abcl.hpp"
#include "apps/counters.hpp"

using namespace abcl;

int main() {
  // 1. Build the program: the Counter class with noop/inc/add/get methods.
  core::Program prog;
  apps::CounterProgram cp = apps::register_counter(prog);
  prog.finalize();

  // 2. A 4-node torus, paper-calibrated cost model (25 MHz SPARC nodes).
  // from_env() resolves ABCLSIM_HOST_THREADS / ABCLSIM_POOLING, so the
  // same binary runs serial or host-parallel, pooled or not, via env.
  World world(prog, WorldConfig::from_env().with_nodes(4));

  // 3. Create one counter per node and send messages around.
  MailAddr counters[4];
  for (NodeId nid = 0; nid < 4; ++nid) {
    world.boot(nid, [&](Ctx& ctx) {
      Word initial = 100 * static_cast<Word>(nid);
      counters[nid] = ctx.create_local(*cp.cls, &initial, 1);
    });
  }
  world.boot(0, [&](Ctx& ctx) {
    for (NodeId nid = 0; nid < 4; ++nid) {
      ctx.send_past(counters[nid], cp.inc, nullptr, 0);  // local or remote
      Word k = 5;
      ctx.send_past(counters[nid], cp.add, &k, 1);
    }
  });

  // 4. Run to quiescence and inspect.
  RunReport rep = world.run();
  std::printf("quickstart: ran %llu quanta, simulated %.3f ms of machine time\n",
              static_cast<unsigned long long>(rep.quanta), rep.sim_ms);
  for (NodeId nid = 0; nid < 4; ++nid) {
    const auto& st = apps::counter_state(counters[nid]);
    std::printf("  counter[%d] = %lld (expected %lld)\n", nid,
                static_cast<long long>(st.count),
                static_cast<long long>(100 * nid + 6));
  }

  core::NodeStats stats = world.total_stats();
  std::printf("  local sends: %llu (dormant fast path: %llu), remote: %llu\n",
              static_cast<unsigned long long>(stats.local_sends),
              static_cast<unsigned long long>(stats.local_to_dormant),
              static_cast<unsigned long long>(stats.remote_sends));
  return 0;
}
