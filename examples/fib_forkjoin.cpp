// Fork-join Fibonacci — demonstrates now-type messages (asynchronous call +
// reply destination), the stack-scheduled fast path (the callee usually
// replies before the caller checks), blocking with lazy heap frames, and
// object retirement.
//
//   $ ./fib_forkjoin [n] [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/fib.hpp"

using namespace abcl;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 18;
  int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  if (n < 0 || n > 28 || nodes < 1) {
    std::fprintf(stderr, "usage: %s [n 0..28] [nodes]\n", argv[0]);
    return 1;
  }

  core::Program prog;
  apps::FibProgram fp = apps::register_fib(prog);
  prog.finalize();

  World world(prog, WorldConfig::from_env().with_nodes(nodes));
  apps::FibResult r = apps::run_fib(world, fp, n);

  core::NodeStats st = world.total_stats();
  std::printf("fib(%d) = %lld on %d simulated nodes\n", n,
              static_cast<long long>(r.value), nodes);
  // Remaining live "objects" are predelivered fault-mode stock chunks, not
  // Fib call nodes (those all retire after replying).
  std::printf("  objects created (one per call) : %llu, live after run: %zu "
              "(stock chunks)\n",
              static_cast<unsigned long long>(world.total_created_objects()),
              world.total_live_objects());
  std::printf("  now-calls answered before check (fast path): %llu\n",
              static_cast<unsigned long long>(st.await_fast_hits));
  std::printf("  now-calls that blocked + resumed            : %llu\n",
              static_cast<unsigned long long>(st.blocks_await));
  std::printf("  simulated time: %.3f ms\n", r.rep.sim_ms);
  return 0;
}
