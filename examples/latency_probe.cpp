// Message-latency probe — reproduces the paper's basic-cost methodology
// interactively: bounce a one-word past-type message between two objects at
// a configurable distance on the torus and report the per-message latency.
//
//   $ ./latency_probe [nodes] [node_a] [node_b] [rounds]
//
// With node_a == node_b this measures the intra-node fast path (~2.3 us);
// across nodes it measures inter-node latency (~8.9 us + per-hop cost).
#include <cstdio>
#include <cstdlib>

#include "apps/pingpong.hpp"

using namespace abcl;

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 16;
  int a = argc > 2 ? std::atoi(argv[2]) : 0;
  int b = argc > 3 ? std::atoi(argv[3]) : nodes > 1 ? 1 : 0;
  int rounds = argc > 4 ? std::atoi(argv[4]) : 10000;
  if (nodes < 1 || a < 0 || a >= nodes || b < 0 || b >= nodes || rounds < 1) {
    std::fprintf(stderr, "usage: %s [nodes] [node_a] [node_b] [rounds]\n",
                 argv[0]);
    return 1;
  }

  core::Program prog;
  apps::PingPongProgram pp = apps::register_pingpong(prog);
  prog.finalize();

  World world(prog, WorldConfig::from_env().with_nodes(nodes));
  int hops = world.network().topology().hops(a, b);

  apps::PingPongResult r =
      apps::run_pingpong(world, pp, a, b, static_cast<std::uint64_t>(rounds));

  std::printf("ping-pong: nodes=%d  %d <-> %d  (%d torus hop%s)\n", nodes, a, b,
              hops, hops == 1 ? "" : "s");
  std::printf("  messages delivered : %llu\n",
              static_cast<unsigned long long>(r.bounces));
  std::printf("  latency/message    : %.2f us (modeled 25 MHz SPARC)\n",
              r.us_per_message);
  std::printf("  paper anchors      : intra-node 2.3 us, inter-node 8.9 us\n");
  return 0;
}
