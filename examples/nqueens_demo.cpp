// N-queens on a simulated multicomputer — the paper's Section 6.2 workload
// as a runnable example.
//
//   $ ./nqueens_demo [N] [nodes]        (defaults: N=10, nodes=64)
//
// One concurrent object per search-tree node; children are created on
// remote nodes through the chunk-stock protocol; results flow back up the
// tree as acknowledgement messages (the paper's termination detection).
#include <cstdio>
#include <cstdlib>

#include "apps/nqueens.hpp"
#include "apps/nqueens_seq.hpp"

using namespace abcl;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 10;
  int nodes = argc > 2 ? std::atoi(argv[2]) : 64;
  if (n < 1 || n > 14 || nodes < 1 || nodes > 1024) {
    std::fprintf(stderr, "usage: %s [N 1..14] [nodes 1..1024]\n", argv[0]);
    return 1;
  }

  core::Program prog;
  apps::NQueensProgram np = apps::register_nqueens(prog);
  prog.finalize();

  World world(prog, WorldConfig::from_env().with_nodes(nodes));

  auto params = apps::NQueensParams::paper_calibrated(n);
  apps::NQueensResult r = apps::run_nqueens(world, np, params);
  apps::NQueensSeqResult seq =
      apps::nqueens_seq(n, params.charge_base, params.charge_per_col);

  std::printf("N=%d on %d simulated nodes (2-D torus, 25 MHz SPARC model)\n", n,
              nodes);
  std::printf("  solutions        : %lld\n", static_cast<long long>(r.solutions));
  std::printf("  objects created  : %llu\n",
              static_cast<unsigned long long>(r.objects_created));
  std::printf("  messages         : %llu\n",
              static_cast<unsigned long long>(r.messages));
  std::printf("  simulated time   : %.2f ms   (sequential: %.2f ms)\n", r.sim_ms,
              world.config().cost.ms(seq.charged));
  std::printf("  speedup          : %.1fx on %d nodes (%.0f%% utilization)\n",
              static_cast<double>(seq.charged) / static_cast<double>(r.sim_time),
              nodes,
              100.0 * static_cast<double>(seq.charged) /
                  static_cast<double>(r.sim_time) / nodes);
  std::printf("  local msgs dormant-fast-path: %.0f%%\n",
              100.0 * static_cast<double>(r.stats.local_to_dormant) /
                  static_cast<double>(r.stats.local_sends));
  std::printf("  chunk-stock hits/misses     : %llu / %llu\n",
              static_cast<unsigned long long>(r.stats.chunk_stock_hits),
              static_cast<unsigned long long>(r.stats.chunk_stock_misses));
  return 0;
}
