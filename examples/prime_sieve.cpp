// Prime sieve as a growing actor pipeline.
//
//   $ ./prime_sieve [limit] [nodes]
//
// Each prime becomes a Filter object placed by the node-local placement
// policy; candidate numbers stream down the chain. Watch the runtime
// counters: chain growth blocks on cold chunk stocks (split-phase), while
// the steady stream rides the dormant fast path.
#include <cstdio>
#include <cstdlib>

#include "apps/sieve.hpp"

using namespace abcl;

int main(int argc, char** argv) {
  std::int64_t limit = argc > 1 ? std::atoll(argv[1]) : 2000;
  int nodes = argc > 2 ? std::atoi(argv[2]) : 16;
  if (limit < 2 || nodes < 1) {
    std::fprintf(stderr, "usage: %s [limit >= 2] [nodes]\n", argv[0]);
    return 1;
  }

  core::Program prog;
  apps::SieveProgram sp = apps::register_sieve(prog);
  prog.finalize();

  World world(prog, WorldConfig::from_env().with_nodes(nodes));
  apps::SieveResult r = apps::run_sieve(world, sp, limit);

  std::printf("sieve up to %lld on %d simulated nodes\n",
              static_cast<long long>(limit), nodes);
  std::printf("  primes found       : %lld (filter chain length)\n",
              static_cast<long long>(r.primes));
  std::printf("  simulated time     : %.3f ms\n", r.rep.sim_ms);
  std::printf("  local msgs dormant : %.0f%%\n",
              100.0 * static_cast<double>(r.stats.local_to_dormant) /
                  static_cast<double>(r.stats.local_sends));
  std::printf("  chain growths that blocked (cold stock): %llu\n",
              static_cast<unsigned long long>(r.stats.blocks_await));
  std::printf("  remote messages    : %llu\n",
              static_cast<unsigned long long>(r.stats.remote_sends));
  return 0;
}
