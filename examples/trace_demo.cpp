// Execution tracing and utilization reporting.
//
//   $ ./trace_demo [N] [nodes] [trace.json]
//
// Runs N-queens with a tracer attached, prints the per-node utilization
// table and a coarse text timeline of quantum activity per node — a quick
// way to see load balance and the idle tail at the end of a run. With a
// third argument, additionally writes the trace in Chrome trace-event
// format: open the file at https://ui.perfetto.dev (or chrome://tracing)
// to browse it interactively; see EXPERIMENTS.md for the recipe.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/nqueens.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "sim/trace.hpp"

using namespace abcl;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 9;
  int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const char* trace_path = argc > 3 ? argv[3] : nullptr;
  if (n < 4 || n > 13 || nodes < 1 || nodes > 64) {
    std::fprintf(stderr, "usage: %s [N 4..13] [nodes 1..64] [trace.json]\n",
                 argv[0]);
    return 1;
  }

  core::Program prog;
  apps::NQueensProgram np = apps::register_nqueens(prog);
  prog.finalize();

  World world(prog, WorldConfig::from_env().with_nodes(nodes));
  sim::Tracer tracer(1u << 20);
  world.attach_tracer(&tracer);

  apps::NQueensParams p;
  p.n = n;
  apps::NQueensResult r = apps::run_nqueens(world, np, p);

  std::printf("N=%d on %d nodes: %lld solutions, %.2f ms simulated, "
              "mean utilization %.0f%%\n\n",
              n, nodes, static_cast<long long>(r.solutions), r.sim_ms,
              world.mean_utilization() * 100.0);
  world.utilization_table().print();

  if (trace_path != nullptr) {
    if (obs::write_file(trace_path, obs::chrome_trace_json(tracer))) {
      std::printf("\nwrote %s (load it at https://ui.perfetto.dev)\n",
                  trace_path);
    } else {
      std::fprintf(stderr, "could not write %s\n", trace_path);
      return 1;
    }
  }

  // Coarse activity timeline: one row per node, 64 buckets over the run;
  // darker glyphs = more quanta started in that interval.
  auto events = tracer.snapshot();
  sim::Instr end = world.max_clock();
  if (end == 0 || events.empty()) return 0;
  constexpr int kBuckets = 64;
  std::vector<std::vector<int>> activity(
      static_cast<std::size_t>(nodes), std::vector<int>(kBuckets, 0));
  for (const auto& e : events) {
    if (e.kind != sim::TraceEv::kQuantum) continue;
    int b = static_cast<int>(e.t * kBuckets / (end + 1));
    activity[static_cast<std::size_t>(e.node)][static_cast<std::size_t>(b)] += 1;
  }
  int peak = 1;
  for (auto& row : activity) {
    for (int v : row) peak = std::max(peak, v);
  }
  const char* glyphs = " .:-=+*#%@";
  std::printf("\nquantum-activity timeline (%.2f ms across, %d buckets; "
              "last %zu of %llu events)\n",
              r.sim_ms, kBuckets, events.size(),
              static_cast<unsigned long long>(tracer.total_recorded()));
  for (int nid = 0; nid < nodes; ++nid) {
    std::printf("node %2d |", nid);
    for (int b = 0; b < kBuckets; ++b) {
      int v = activity[static_cast<std::size_t>(nid)][static_cast<std::size_t>(b)];
      int g = v == 0 ? 0 : 1 + v * 8 / peak;
      std::putchar(glyphs[g]);
    }
    std::printf("|\n");
  }
  return 0;
}
