// Per-node bump arena.
//
// Every simulated node owns one Arena (its "local heap"); the size-classed
// SlabAllocator (util/slab.hpp) carves objects, heap frames, reply boxes
// and chunk memory out of it in whole-slab increments.
//
// Two backing modes:
//  - Block mode (default): malloc'd blocks growing geometrically. Cheap,
//    but block addresses are wherever malloc put them.
//  - Reserved mode (checkpoint support): one fixed-base virtual reservation
//    of kSlotBytes per arena, taken from a process-wide slot registry (or
//    re-mapped at an exact recorded base on restore). Fixed bases are what
//    make snapshots address-faithful: a restored arena occupies the same
//    virtual range, so every pointer embedded in the heap image — message
//    frame links, slab freelists, MailAddrs inside opaque user state —
//    remains valid verbatim, with no swizzling pass. The reservation is
//    MAP_NORESERVE virtual space; pages materialize on first touch, so an
//    idle node still costs nothing. Only checkpoint-enabled worlds use this
//    mode; default worlds keep the malloc path bit-for-bit unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace abcl::util {

class Arena {
 public:
  // Virtual span of one reserved slot — the hard heap cap of a
  // checkpointable node (virtual, not committed).
  static constexpr std::size_t kSlotBytes = std::size_t{64} << 20;
  // `reserved_base` sentinel: take the next free fixed-base slot from the
  // process-wide registry.
  static constexpr std::uint64_t kReserveAuto = ~std::uint64_t{0};

  // reserved_base == 0 -> block mode. kReserveAuto -> registry slot.
  // Any other value -> map the reservation at exactly that base (checkpoint
  // restore); dies with a diagnostic if the range is unavailable.
  explicit Arena(std::size_t block_bytes = 1u << 20,
                 std::uint64_t reserved_base = 0);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (power of two, <= 64).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  template <class T, class... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(static_cast<Args&&>(args)...);
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  // Reserved-mode introspection (checkpoint serialization).
  bool reserved() const { return base_ != nullptr; }
  std::uint64_t base() const { return reinterpret_cast<std::uint64_t>(base_); }
  // Bytes of the reservation touched by the bump pointer so far — the
  // extent of the raw image a snapshot must carry.
  std::size_t used() const {
    return base_ == nullptr ? 0 : static_cast<std::size_t>(cur_ - base_);
  }

  // Checkpoint restore: overwrite this (freshly reserved) arena with a
  // snapshot image and its allocation counters. Reserved mode only.
  void restore_image(const void* data, std::size_t used_bytes,
                     std::size_t bytes_allocated);

 private:
  void new_block(std::size_t at_least);

  std::size_t block_bytes_;      // next block size; grows geometrically
  std::size_t max_block_bytes_ = 8u << 20;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* base_ = nullptr;    // non-null in reserved mode
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace abcl::util
