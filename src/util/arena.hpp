// Per-node bump arena and size-classed freelist pool.
//
// Every simulated node owns one Arena (its "local heap") and carves objects,
// heap frames, reply boxes and chunk memory out of it. Frames and boxes
// recycle through size-classed freelists, matching the constant-time
// allocation the paper's cost model assumes for the active-mode path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace abcl::util {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 1u << 20);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (power of two, <= 64).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  template <class T, class... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(static_cast<Args&&>(args)...);
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void new_block(std::size_t at_least);

  std::size_t block_bytes_;      // next block size; grows geometrically
  std::size_t max_block_bytes_ = 8u << 20;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

// Size-classed freelist on top of an Arena. Size classes are powers of two
// from kMinClass bytes up; freed blocks are recycled exactly by class, so a
// pointer handed out twice is a bug the chunk-stock tests can catch.
class PoolAllocator {
 public:
  static constexpr std::size_t kMinClassLog2 = 5;   // 32 B
  static constexpr std::size_t kMaxClassLog2 = 16;  // 64 KiB
  static constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

  explicit PoolAllocator(Arena& arena) : arena_(&arena) {}

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  static std::size_t size_class(std::size_t bytes);
  static std::size_t class_bytes(std::size_t cls) {
    return std::size_t{1} << (cls + kMinClassLog2);
  }

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  std::uint64_t live_count() const { return allocs_ - frees_; }
  std::uint64_t alloc_count() const { return allocs_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  Arena* arena_;
  FreeNode* free_[kNumClasses] = {};
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
};

}  // namespace abcl::util
