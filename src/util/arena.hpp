// Per-node bump arena.
//
// Every simulated node owns one Arena (its "local heap"); the size-classed
// SlabAllocator (util/slab.hpp) carves objects, heap frames, reply boxes
// and chunk memory out of it in whole-slab increments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace abcl::util {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 1u << 20);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (power of two, <= 64).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  template <class T, class... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(static_cast<Args&&>(args)...);
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void new_block(std::size_t at_least);

  std::size_t block_bytes_;      // next block size; grows geometrically
  std::size_t max_block_bytes_ = 8u << 20;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace abcl::util
