#include "util/table.hpp"

#include <cstdint>
#include <cstdio>

namespace abcl::util {

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  // Groups digits with commas, matching the paper's table style.
  char raw[32];
  std::snprintf(raw, sizeof raw, "%llu", static_cast<unsigned long long>(v));
  std::string s(raw);
  std::string out;
  int count = 0;
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + emit_row(headers_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace abcl::util
