// Deterministic PRNGs for placement policies, workload generation and
// property tests. splitmix64 seeds xoshiro256**; both are allocation-free
// and bit-reproducible across platforms, which the simulation's determinism
// guarantee depends on.
#pragma once

#include <cstdint>

namespace abcl::util {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x3243f6a8885a308dull) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased-enough bounded draw (Lemire reduction without the rejection
  // loop; bias is < 2^-32 for the bounds we use, all far below 2^32).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  double uniform01() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace abcl::util
