#include "util/stats.hpp"

#include <cstdio>

namespace abcl::util {

void RunningStat::merge(const RunningStat& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  std::uint64_t n = n_ + o.n_;
  double d = o.mean_ - mean_;
  double mean = mean_ + d * static_cast<double>(o.n_) / static_cast<double>(n);
  m2_ = m2_ + o.m2_ +
        d * d * static_cast<double>(n_) * static_cast<double>(o.n_) /
            static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  sum_ += o.sum_;
}

std::uint64_t Log2Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  // Clamp p into [0,1] before the uint64_t cast: a negative product (or
  // NaN) cast to uint64_t is undefined behaviour, and p > 1 would silently
  // saturate to the max. The !(p > 0.0) form also catches NaN.
  if (!(p > 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(p * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return i == 0 ? 0 : (1ull << i) - 1;
  }
  return ~0ull;
}

std::string Log2Histogram::to_string(int max_rows) const {
  std::string out;
  char line[128];
  int printed = 0;
  for (int i = 0; i < kBuckets && printed < max_rows; ++i) {
    if (buckets_[i] == 0) continue;
    std::uint64_t lo = i == 0 ? 0 : (1ull << (i - 1));
    std::uint64_t hi = (1ull << i) - 1;
    std::snprintf(line, sizeof line, "  [%12llu, %12llu] %10llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
    ++printed;
  }
  return out;
}

}  // namespace abcl::util
