// Size-classed slab allocator for a node's hot-path heap objects.
//
// Replaces the old single-pool PoolAllocator: each power-of-two size class
// owns a LIFO freelist of recycled slots plus a bump region inside its
// current slab. A freelist miss carves a whole slab (many slots) from the
// node Arena in one trip instead of one object at a time, so steady-state
// allocation is a pointer pop and steady-state free is a pointer push —
// the constant-time path the paper's cost model assumes for heap frames,
// reply boxes and chunk memory.
//
// Alignment: every slot is aligned to min(class_bytes, kMaxAlignment).
// Classes start at 32 B, so any type with alignof() <= 32 is naturally
// aligned by its own class and types up to alignof() == 64 land in classes
// whose slabs are 64-aligned. alloc_ctx_frame static_asserts against
// kMaxAlignment, which closes the old PoolAllocator bug where an
// over-aligned frame silently got max_align_t alignment.
//
// Ablation ("pooling off"): constructed with pooled=false the allocator
// degrades to general-purpose heap allocation per request — the baseline
// bench_alloc measures the slab scheme against. Outstanding blocks are
// tracked through an intrusive header list so teardown with live objects
// (worlds are routinely dropped mid-state) stays leak-free under ASan.
//
// Determinism: allocation order on a node is a function of the simulation
// only, so every Stats counter is bit-identical across host drivers and
// safe to export in the metrics snapshot.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/arena.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::util {

class SlabAllocator {
 public:
  static constexpr std::size_t kMinClassLog2 = 5;   // 32 B
  static constexpr std::size_t kMaxClassLog2 = 16;  // 64 KiB
  static constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  // Strongest alignment any slot (hence any pooled type) may rely on.
  static constexpr std::size_t kMaxAlignment = 64;
  // Slab granularity: one arena trip yields kSlabBytes / class_bytes slots
  // (at least one). 16 KiB keeps small classes cheap (512 x 32 B per trip)
  // without over-reserving for the rare large classes.
  static constexpr std::size_t kSlabBytes = 16u << 10;

  // All counters are simulated-deterministic (see file comment).
  struct Stats {
    std::uint64_t allocs = 0;         // allocate() calls
    std::uint64_t frees = 0;          // deallocate() calls
    std::uint64_t freelist_hits = 0;  // allocations served by a recycled slot
    std::uint64_t slab_refills = 0;   // arena trips (pooled mode only)
    std::uint64_t slots_carved = 0;   // total slots those trips produced
    std::uint64_t backing_bytes = 0;  // bytes obtained from arena or heap

    void merge(const Stats& o);
    std::uint64_t live() const { return allocs - frees; }
  };

  explicit SlabAllocator(Arena& arena, bool pooled = true);
  ~SlabAllocator();

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  static std::size_t size_class(std::size_t bytes);
  static std::size_t class_bytes(std::size_t cls) {
    return std::size_t{1} << (cls + kMinClassLog2);
  }
  static std::size_t class_align(std::size_t cls) {
    std::size_t b = class_bytes(cls);
    return b < kMaxAlignment ? b : kMaxAlignment;
  }

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  bool pooled() const { return pooled_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t live_count() const { return stats_.live(); }
  std::uint64_t alloc_count() const { return stats_.allocs; }

 private:
  // Checkpoint serializer (src/ckpt/world_io.cpp): snapshots freelist heads
  // and bump cursors verbatim — freelist chains live inside the (reserved,
  // address-faithful) arena, so the raw pointers restore as-is.
  friend struct abcl::ckpt::WorldIo;

  struct FreeNode {
    FreeNode* next;
  };
  // Unpooled-mode block header: doubly linked so deallocate() unlinks in
  // O(1) and the destructor can free whatever is still outstanding. Padded
  // to kMaxAlignment so the payload after it keeps the class guarantee.
  struct alignas(kMaxAlignment) HeapBlock {
    HeapBlock* next;
    HeapBlock* prev;
  };
  static_assert(sizeof(HeapBlock) == kMaxAlignment);

  void refill(std::size_t cls);
  void* heap_allocate(std::size_t cls);
  void heap_deallocate(void* p, std::size_t cls);

  Arena* arena_;
  bool pooled_;
  FreeNode* free_[kNumClasses] = {};
  std::byte* fresh_[kNumClasses] = {};        // bump cursor in current slab
  std::size_t fresh_left_[kNumClasses] = {};  // slots left at the cursor
  HeapBlock* heap_head_ = nullptr;            // unpooled mode: live blocks
  Stats stats_;
};

}  // namespace abcl::util
