// One strict key=value spec grammar for every tuning knob.
//
// Four parsers grew independently — ABCLSIM_FAULTS, ABCLSIM_MIGRATION,
// ABCLSIM_QUEUE, ABCLSIM_FLUSH — each re-implementing the same trim /
// split / duplicate-key / overflow-checked-number machinery with slightly
// different bugs waiting to diverge. SpecParser is the shared core: a
// comma-separated key=value list with typed fields, where *any* deviation
// (unknown key, repeated key, malformed number) is a hard error carrying a
// human-readable reason. Garbage never falls back silently to a default.
//
// The existing entry points (net::parse_fault_spec, remote::
// parse_migration_spec, the World env knobs) stay as thin wrappers so their
// diagnostics and round-trip guarantees are unchanged; new knobs
// (ABCLSIM_CHECKPOINT) route through here directly.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace abcl::util {

class SpecParser {
 public:
  // Field registration. `out` must outlive run(). Field kind decides both
  // the accepted syntax and the failure wording:
  //   prob_ppm  "0.05" / "1" / ".25" -> parts-per-million, <= 6 decimals
  //   u64       non-negative decimal integer (overflow-checked)
  //   u32       non-negative decimal integer fitting 32 bits
  //   str       any non-empty value (no commas — they split entries)
  SpecParser& prob_ppm(const char* key, std::uint32_t* out);
  SpecParser& u64(const char* key, std::uint64_t* out);
  SpecParser& u32(const char* key, std::uint32_t* out);
  SpecParser& str(const char* key, std::string* out);

  // Parses `raw` against the registered fields. On failure returns false
  // and stores the bare reason ("unknown key \"x\"") in *why; callers wrap
  // it with their knob context via spec_error().
  bool run(const std::string& raw, std::string* why);

  // The shared building blocks, exposed for spec-adjacent strict parsers.
  static std::string trim(const std::string& s);
  // Overflow-checked "123" -> u64; nullopt on anything non-decimal.
  static std::optional<std::uint64_t> parse_u64(const std::string& s);
  // "0.05" / "1" / ".25" -> ppm. Strict: decimal digits only, at most six
  // fractional digits (the ppm resolution), value <= 1.
  static std::optional<std::uint32_t> parse_prob_ppm(const std::string& s);

 private:
  struct Field {
    std::string key;
    std::function<std::optional<std::string>(const std::string& val)> apply;
    bool seen = false;
  };
  std::vector<Field> fields_;
};

// True when the spec text means "knob off": nullptr, empty, or "off".
bool spec_off(const char* text);

// The one diagnostic shape every spec knob reports:
//   <context> "<raw>": <why> (<hint>)
// e.g. context "fault spec", hint "expected comma-separated drop=PROB, ...".
std::string spec_error(const std::string& context, const std::string& raw,
                       const std::string& why, const std::string& hint);

// Single-word choice knobs (ABCLSIM_QUEUE=bucket|heap, ...): index of the
// matching word, or nullopt. The caller handles unset before calling.
std::optional<std::size_t> parse_choice(
    const char* text, std::initializer_list<const char*> words);

// Diagnostic for a failed choice knob:
//   <knob>="<raw>": expected <choices>, or unset for <default_hint>
std::string choice_error(const std::string& knob, const std::string& raw,
                         const std::string& choices,
                         const std::string& default_hint);

}  // namespace abcl::util
