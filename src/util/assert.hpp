// Always-on checked assertions for the abclsim runtime.
//
// ABCL_CHECK is kept in release builds: the runtime's scheduling invariants
// (mode/VFTP agreement, single sched-queue membership, chunk single-issue)
// are cheap to test and catastrophic to violate silently.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace abcl::util {

[[noreturn]] inline void check_fail(const char* cond, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "abclsim: check failed: %s at %s:%d%s%s\n", cond, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace abcl::util

#define ABCL_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) ::abcl::util::check_fail(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ABCL_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) ::abcl::util::check_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#if defined(NDEBUG)
#define ABCL_DCHECK(cond) ((void)0)
#else
#define ABCL_DCHECK(cond) ABCL_CHECK(cond)
#endif

#define ABCL_UNREACHABLE() \
  ::abcl::util::check_fail("unreachable", __FILE__, __LINE__, nullptr)
