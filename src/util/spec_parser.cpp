#include "util/spec_parser.hpp"

namespace abcl::util {

std::string SpecParser::trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::optional<std::uint64_t> SpecParser::parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    if (v > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10) {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::optional<std::uint32_t> SpecParser::parse_prob_ppm(const std::string& s) {
  constexpr std::uint64_t kPpm = 1'000'000;
  if (s.empty()) return std::nullopt;
  std::size_t dot = s.find('.');
  std::string ip = dot == std::string::npos ? s : s.substr(0, dot);
  std::string fp = dot == std::string::npos ? "" : s.substr(dot + 1);
  if (ip.empty() && fp.empty()) return std::nullopt;
  if (fp.size() > 6) return std::nullopt;  // sub-ppm precision unsupported
  std::uint64_t whole = 0;
  for (char c : ip) {
    if (c < '0' || c > '9') return std::nullopt;
    whole = whole * 10 + static_cast<std::uint64_t>(c - '0');
    if (whole > 1) return std::nullopt;
  }
  std::uint64_t frac = 0;
  for (char c : fp) {
    if (c < '0' || c > '9') return std::nullopt;
    frac = frac * 10 + static_cast<std::uint64_t>(c - '0');
  }
  for (std::size_t i = fp.size(); i < 6; ++i) frac *= 10;
  std::uint64_t ppm = whole * kPpm + frac;
  if (ppm > kPpm) return std::nullopt;
  return static_cast<std::uint32_t>(ppm);
}

SpecParser& SpecParser::prob_ppm(const char* key, std::uint32_t* out) {
  std::string k = key;
  fields_.push_back(Field{
      k,
      [k, out](const std::string& val) -> std::optional<std::string> {
        std::optional<std::uint32_t> p = parse_prob_ppm(val);
        if (!p.has_value()) {
          return k + "=\"" + val +
                 "\" is not a probability in [0, 1] with <= 6 decimals";
        }
        *out = *p;
        return std::nullopt;
      },
      false});
  return *this;
}

SpecParser& SpecParser::u64(const char* key, std::uint64_t* out) {
  std::string k = key;
  fields_.push_back(Field{
      k,
      [k, out](const std::string& val) -> std::optional<std::string> {
        std::optional<std::uint64_t> v = parse_u64(val);
        if (!v.has_value()) {
          return k + "=\"" + val + "\" is not a non-negative integer";
        }
        *out = *v;
        return std::nullopt;
      },
      false});
  return *this;
}

SpecParser& SpecParser::u32(const char* key, std::uint32_t* out) {
  std::string k = key;
  fields_.push_back(Field{
      k,
      [k, out](const std::string& val) -> std::optional<std::string> {
        std::optional<std::uint64_t> v = parse_u64(val);
        if (!v.has_value() || *v > 0xFFFFFFFFull) {
          return k + "=\"" + val + "\" is not a non-negative 32-bit integer";
        }
        *out = static_cast<std::uint32_t>(*v);
        return std::nullopt;
      },
      false});
  return *this;
}

SpecParser& SpecParser::str(const char* key, std::string* out) {
  std::string k = key;
  fields_.push_back(Field{
      k,
      [k, out](const std::string& val) -> std::optional<std::string> {
        if (val.empty()) return k + "=\"\" must not be empty";
        *out = val;
        return std::nullopt;
      },
      false});
  return *this;
}

bool SpecParser::run(const std::string& raw, std::string* why) {
  auto fail = [&](const std::string& w) {
    if (why != nullptr) *why = w;
    return false;
  };
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    std::size_t comma = raw.find(',', pos);
    if (comma == std::string::npos) comma = raw.size();
    const std::string item = trim(raw.substr(pos, comma - pos));
    pos = comma + 1;
    if (item.empty()) return fail("empty list entry");
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return fail("entry \"" + item + "\" has no '='");
    }
    const std::string key = trim(item.substr(0, eq));
    const std::string val = trim(item.substr(eq + 1));

    Field* f = nullptr;
    for (Field& cand : fields_) {
      if (cand.key == key) {
        f = &cand;
        break;
      }
    }
    if (f == nullptr) return fail("unknown key \"" + key + "\"");
    if (f->seen) return fail("duplicate key \"" + key + "\"");
    f->seen = true;
    if (std::optional<std::string> w = f->apply(val)) return fail(*w);
    if (pos > raw.size()) break;
  }
  return true;
}

bool spec_off(const char* text) {
  if (text == nullptr || *text == '\0') return true;
  return SpecParser::trim(text) == "off";
}

std::string spec_error(const std::string& context, const std::string& raw,
                       const std::string& why, const std::string& hint) {
  return context + " \"" + raw + "\": " + why + " (" + hint + ")";
}

std::optional<std::size_t> parse_choice(
    const char* text, std::initializer_list<const char*> words) {
  if (text == nullptr) return std::nullopt;
  const std::string s = text;
  std::size_t i = 0;
  for (const char* w : words) {
    if (s == w) return i;
    ++i;
  }
  return std::nullopt;
}

std::string choice_error(const std::string& knob, const std::string& raw,
                         const std::string& choices,
                         const std::string& default_hint) {
  return knob + "=\"" + raw + "\": expected " + choices + ", or unset for " +
         default_hint;
}

}  // namespace abcl::util
