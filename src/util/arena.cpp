#include "util/arena.hpp"

#include <atomic>
#include <cstring>
#include <string>

#include <sys/mman.h>

namespace abcl::util {

namespace {

// Fixed-base slot registry for reserved arenas. The window starts far above
// any malloc/ASLR region; each arena claims one kSlotBytes slot. A restore
// maps at an exact recorded base instead, so the auto path probes forward
// past slots an earlier restore may still occupy.
//
// TSan's mmap interceptor aborts the process on fixed maps that land
// outside its application address ranges, and 0x5a00'0000'0000 is not in
// them; the classic x86_64 layout keeps [0x7e80'0000'0000, 0x8000'0000'0000)
// app-mappable, so the slot window parks there under TSan. Snapshots are
// restored by the build that wrote them, so the two windows never mix.
#if defined(__SANITIZE_THREAD__)
#define ABCL_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ABCL_TSAN_BUILD 1
#endif
#endif
#ifdef ABCL_TSAN_BUILD
constexpr std::uint64_t kFirstSlotBase = 0x7e80'0000'0000ull;
#else
constexpr std::uint64_t kFirstSlotBase = 0x5a00'0000'0000ull;
#endif
std::atomic<std::uint64_t> g_next_slot{0};

void* map_reservation(std::uint64_t base) {
  void* want = reinterpret_cast<void*>(base);
  int flags = MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE;
#ifdef MAP_FIXED_NOREPLACE
  void* got = mmap(want, Arena::kSlotBytes, PROT_READ | PROT_WRITE,
                   flags | MAP_FIXED_NOREPLACE, -1, 0);
  return got == MAP_FAILED ? nullptr : got;
#else
  // Portable fallback: a hinted map that must land exactly on the hint.
  void* got = mmap(want, Arena::kSlotBytes, PROT_READ | PROT_WRITE, flags,
                   -1, 0);
  if (got == MAP_FAILED) return nullptr;
  if (got != want) {
    munmap(got, Arena::kSlotBytes);
    return nullptr;
  }
  return got;
#endif
}

}  // namespace

Arena::Arena(std::size_t block_bytes, std::uint64_t reserved_base)
    : block_bytes_(block_bytes) {
  ABCL_CHECK(block_bytes_ >= 4096);
  if (reserved_base == 0) return;  // block mode

  void* got = nullptr;
  if (reserved_base == kReserveAuto) {
    // Probe forward: a slot may be held by a restored arena that was mapped
    // at its recorded base without going through the counter.
    for (int attempts = 0; attempts < 4096 && got == nullptr; ++attempts) {
      std::uint64_t slot = g_next_slot.fetch_add(1, std::memory_order_relaxed);
      got = map_reservation(kFirstSlotBase + slot * kSlotBytes);
    }
    ABCL_CHECK_MSG(got != nullptr,
                   "arena: could not reserve a fixed-base checkpoint slot");
  } else {
    got = map_reservation(reserved_base);
    ABCL_CHECK_MSG(
        got != nullptr,
        ("checkpoint restore: arena base " + std::to_string(reserved_base) +
         " is unavailable (is the checkpointed world still alive?)")
            .c_str());
  }
  base_ = static_cast<std::byte*>(got);
  cur_ = base_;
  end_ = base_ + kSlotBytes;
  bytes_reserved_ = kSlotBytes;
}

Arena::~Arena() {
  if (base_ != nullptr) munmap(base_, kSlotBytes);
}

void Arena::new_block(std::size_t at_least) {
  ABCL_CHECK_MSG(base_ == nullptr,
                 "arena: reserved checkpoint slot exhausted (64 MiB)");
  std::size_t sz = block_bytes_;
  while (sz < at_least) sz *= 2;
  blocks_.push_back(std::make_unique<std::byte[]>(sz));
  cur_ = blocks_.back().get();
  end_ = cur_ + sz;
  bytes_reserved_ += sz;
  // Grow geometrically so idle nodes stay cheap but busy ones amortize.
  if (block_bytes_ < max_block_bytes_) block_bytes_ *= 2;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  ABCL_DCHECK(align != 0 && (align & (align - 1)) == 0 && align <= 64);
  if (bytes == 0) bytes = 1;
  auto ip = reinterpret_cast<std::uintptr_t>(cur_);
  std::uintptr_t aligned = (ip + (align - 1)) & ~std::uintptr_t(align - 1);
  std::size_t need = bytes + static_cast<std::size_t>(aligned - ip);
  if (cur_ == nullptr || static_cast<std::size_t>(end_ - cur_) < need) {
    new_block(bytes + align);
    ip = reinterpret_cast<std::uintptr_t>(cur_);
    aligned = (ip + (align - 1)) & ~std::uintptr_t(align - 1);
  }
  cur_ = reinterpret_cast<std::byte*>(aligned) + bytes;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::restore_image(const void* data, std::size_t used_bytes,
                          std::size_t bytes_allocated) {
  ABCL_CHECK(base_ != nullptr && used_bytes <= kSlotBytes);
  std::memcpy(base_, data, used_bytes);
  cur_ = base_ + used_bytes;
  bytes_allocated_ = bytes_allocated;
}

}  // namespace abcl::util
