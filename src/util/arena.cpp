#include "util/arena.hpp"

#include <cstring>

namespace abcl::util {

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  ABCL_CHECK(block_bytes_ >= 4096);
}

void Arena::new_block(std::size_t at_least) {
  std::size_t sz = block_bytes_;
  while (sz < at_least) sz *= 2;
  blocks_.push_back(std::make_unique<std::byte[]>(sz));
  cur_ = blocks_.back().get();
  end_ = cur_ + sz;
  bytes_reserved_ += sz;
  // Grow geometrically so idle nodes stay cheap but busy ones amortize.
  if (block_bytes_ < max_block_bytes_) block_bytes_ *= 2;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  ABCL_DCHECK(align != 0 && (align & (align - 1)) == 0 && align <= 64);
  if (bytes == 0) bytes = 1;
  auto ip = reinterpret_cast<std::uintptr_t>(cur_);
  std::uintptr_t aligned = (ip + (align - 1)) & ~std::uintptr_t(align - 1);
  std::size_t need = bytes + static_cast<std::size_t>(aligned - ip);
  if (cur_ == nullptr || static_cast<std::size_t>(end_ - cur_) < need) {
    new_block(bytes + align);
    ip = reinterpret_cast<std::uintptr_t>(cur_);
    aligned = (ip + (align - 1)) & ~std::uintptr_t(align - 1);
  }
  cur_ = reinterpret_cast<std::byte*>(aligned) + bytes;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

}  // namespace abcl::util
