// Console table printer used by the bench harnesses to emit paper-style
// tables (Tables 1-4) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace abcl::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abcl::util
