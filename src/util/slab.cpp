#include "util/slab.hpp"

#include <new>

namespace abcl::util {

void SlabAllocator::Stats::merge(const Stats& o) {
  // Field-coverage guard, same discipline as NodeStats/Network::Stats: a
  // new counter must be merged here (and exported in obs/metrics) or
  // totals silently drop it.
  static_assert(sizeof(Stats) == 6 * sizeof(std::uint64_t),
                "new SlabAllocator::Stats field? merge it here, export it in "
                "obs/metrics, and extend the tests");
  allocs += o.allocs;
  frees += o.frees;
  freelist_hits += o.freelist_hits;
  slab_refills += o.slab_refills;
  slots_carved += o.slots_carved;
  backing_bytes += o.backing_bytes;
}

SlabAllocator::SlabAllocator(Arena& arena, bool pooled)
    : arena_(&arena), pooled_(pooled) {}

SlabAllocator::~SlabAllocator() {
  // Pooled slots die with the arena. Unpooled blocks are individually
  // heap-owned; free whatever the simulation still held at teardown.
  while (heap_head_ != nullptr) {
    HeapBlock* b = heap_head_;
    heap_head_ = b->next;
    ::operator delete(b, std::align_val_t{kMaxAlignment});
  }
}

std::size_t SlabAllocator::size_class(std::size_t bytes) {
  std::size_t cls = 0;
  std::size_t cap = std::size_t{1} << kMinClassLog2;
  while (cap < bytes) {
    cap <<= 1;
    ++cls;
  }
  ABCL_CHECK_MSG(cls < kNumClasses, "allocation exceeds slab size-class range");
  return cls;
}

void SlabAllocator::refill(std::size_t cls) {
  const std::size_t cbytes = class_bytes(cls);
  std::size_t slots = kSlabBytes / cbytes;
  if (slots == 0) slots = 1;
  const std::size_t bytes = slots * cbytes;
  // Slab bases are class-aligned; slots are consecutive multiples of a
  // power-of-two size, so every slot inherits the base alignment.
  fresh_[cls] = static_cast<std::byte*>(arena_->allocate(bytes, class_align(cls)));
  fresh_left_[cls] = slots;
  stats_.slab_refills += 1;
  stats_.slots_carved += slots;
  stats_.backing_bytes += bytes;
}

void* SlabAllocator::heap_allocate(std::size_t cls) {
  const std::size_t cbytes = class_bytes(cls);
  void* raw = ::operator new(sizeof(HeapBlock) + cbytes,
                             std::align_val_t{kMaxAlignment});
  auto* b = static_cast<HeapBlock*>(raw);
  b->prev = nullptr;
  b->next = heap_head_;
  if (heap_head_ != nullptr) heap_head_->prev = b;
  heap_head_ = b;
  stats_.backing_bytes += sizeof(HeapBlock) + cbytes;
  return b + 1;
}

void SlabAllocator::heap_deallocate(void* p, std::size_t cls) {
  (void)cls;
  HeapBlock* b = static_cast<HeapBlock*>(p) - 1;
  if (b->prev != nullptr) b->prev->next = b->next;
  if (b->next != nullptr) b->next->prev = b->prev;
  if (heap_head_ == b) heap_head_ = b->next;
  ::operator delete(b, std::align_val_t{kMaxAlignment});
}

void* SlabAllocator::allocate(std::size_t bytes) {
  const std::size_t cls = size_class(bytes);
  ++stats_.allocs;
  if (!pooled_) return heap_allocate(cls);
  if (FreeNode* n = free_[cls]) {
    free_[cls] = n->next;
    ++stats_.freelist_hits;
    return n;
  }
  if (fresh_left_[cls] == 0) refill(cls);
  void* p = fresh_[cls];
  fresh_[cls] += class_bytes(cls);
  --fresh_left_[cls];
  return p;
}

void SlabAllocator::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t cls = size_class(bytes);
  ++stats_.frees;
  if (!pooled_) {
    heap_deallocate(p, cls);
    return;
  }
  auto* n = static_cast<FreeNode*>(p);
  n->next = free_[cls];
  free_[cls] = n;
}

}  // namespace abcl::util
