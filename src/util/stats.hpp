// Lightweight counters, online mean/variance, and log2 histograms used by
// the runtime's per-node statistics blocks and by the benchmark harnesses.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace abcl::util {

// Welford online accumulator; numerically stable, O(1) per sample.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStat& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Power-of-two bucketed histogram for latency-style distributions.
//
// Bucket i holds values in [2^(i-1), 2^i - 1] (bucket 0 holds {0}); the
// add() clamp means bucket 63 additionally absorbs all values >= 2^63, so
// its nominal upper bound (2^63 - 1) under-reports such outliers.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t v) {
    int b = v == 0 ? 0 : 64 - countl_zero(v);
    if (b >= kBuckets) b = kBuckets - 1;
    ++buckets_[b];
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  // Approximate percentile (the containing bucket's upper bound). `p` is
  // clamped into [0,1]; see the class comment for the bucket-63 caveat.
  std::uint64_t percentile(double p) const;
  std::string to_string(int max_rows = 12) const;

  void merge(const Log2Histogram& o) {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
  }

 private:
  static int countl_zero(std::uint64_t v) {
    return v == 0 ? 64 : __builtin_clzll(v);
  }
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
};

}  // namespace abcl::util
