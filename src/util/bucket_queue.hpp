// Bucketed monotone-friendly priority queue (calendar/ladder hybrid).
//
// The simulation's two hot min-queues — the serial Machine's ready
// structure and the Network's per-destination delivery queues — are keyed
// on simulated time (`sim::Instr`) and consumed almost monotonically:
// pops advance with the global clock and pushes land a bounded lookahead
// into the future. A binary heap pays O(log n) sifts per operation for a
// generality those workloads never use. BucketQueue instead spreads
// entries over a ring of time buckets (width adapted to the observed key
// span) and lazily sorts only the bucket currently being drained, giving
// amortized O(1) push/pop on monotone streams while remaining correct —
// exact (key, tie-break) pop order — for arbitrary inputs:
//
//  * push: O(1) — index the ring by (key - base) / width, or append to the
//    far-future overflow tier when the key lies beyond the ring.
//  * pop/top: advance to the first non-empty bucket and drain it in sorted
//    order; the sort is amortized against the pushes that filled it. When
//    the ring empties, the overflow tier is re-based into a fresh ring
//    whose width is recomputed from the tier's key span.
//  * late pushes (key below the active bucket, which conservative drivers
//    produce only across window boundaries) clamp into the active bucket;
//    ordering stays exact because comparisons always use the true key.
//
// Determinism contract: pop order is the strict total order induced by
// `Less` (whose primary component must be the key `KeyFn` extracts), so a
// BucketQueue and a binary heap over the same pushes pop identically —
// which is what lets ABCLSIM_QUEUE=heap serve as a byte-compared ablation.
// kInstrInf-sized keys are valid: all bucket math is overflow-safe.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace abcl::util {

// Which algorithm backs a BucketQueue (and, via WorldConfig::queue /
// ABCLSIM_QUEUE, every queue in a World): kBucket is the default, kHeap is
// the std::priority_queue-equivalent ablation baseline.
enum class QueueKind { kBucket, kHeap };

// Entry: element type. KeyFn: stateless functor mapping Entry -> uint64
// time key. Less: stateless strict-weak total order over Entry whose
// primary component is the key (ties broken deterministically).
template <typename Entry, typename KeyFn, typename Less>
class BucketQueue {
 public:
  explicit BucketQueue(QueueKind mode = QueueKind::kBucket,
                       std::size_t nbuckets = 64)
      : mode_(mode), nb_(nbuckets) {
    ABCL_CHECK(nb_ >= 2);
  }

  // Switching algorithms mid-stream would need a rebuild; restrict to the
  // empty state, which is when drivers configure their queues anyway.
  void set_mode(QueueKind m) {
    ABCL_CHECK(size_ == 0);
    mode_ = m;
  }
  QueueKind mode() const { return mode_; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Entry e) {
    ++size_;
    if (mode_ == QueueKind::kHeap) {
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
      return;
    }
    bucket_push(std::move(e));
  }

  // Smallest entry under Less. Logically const: bucket bookkeeping (lazy
  // sort, cursor advance, overflow re-base) is mutable.
  const Entry& top() const {
    ABCL_DCHECK(size_ > 0);
    if (mode_ == QueueKind::kHeap) return heap_.front();
    ensure_top();
    return ring_[cur_][active_pos_];
  }

  void pop() {
    ABCL_DCHECK(size_ > 0);
    --size_;
    if (mode_ == QueueKind::kHeap) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
      heap_.pop_back();
      return;
    }
    ensure_top();
    auto& b = ring_[cur_];
    if (++active_pos_ == b.size()) {
      b.clear();  // keeps capacity for the bucket's next pass
      active_pos_ = 0;
      active_sorted_ = true;
    }
    --ring_count_;
  }

  void clear() {
    size_ = 0;
    heap_.clear();
    for (auto& b : ring_) b.clear();
    overflow_.clear();
    ring_count_ = 0;
    cur_ = 0;
    active_pos_ = 0;
    active_sorted_ = true;
  }

  // Visits every live entry in unspecified order (checkpoint serialization
  // sorts canonically on its own). The consumed prefix [0, active_pos_) of
  // the active bucket holds already-popped entries awaiting their lazy
  // erase; buckets behind the cursor are empty (pop clears a drained bucket
  // and bucket_push clamps at-or-behind-cursor keys into the active one).
  template <class F>
  void for_each(F&& f) const {
    for (const Entry& e : heap_) f(e);
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      const std::vector<Entry>& b = ring_[i];
      for (std::size_t j = i == cur_ ? active_pos_ : 0; j < b.size(); ++j) {
        f(b[j]);
      }
    }
    for (const Entry& e : overflow_) f(e);
  }

 private:
  // std::push_heap builds a max-heap; invert Less so the front is the min.
  struct HeapCmp {
    bool operator()(const Entry& a, const Entry& b) const {
      return Less{}(b, a);
    }
  };

  // True when `k` falls inside the ring's covered span [base_, base_+span).
  // span can reach 2^64 (kInstrInf-wide re-base), hence the 128-bit compare.
  bool in_ring(std::uint64_t k) const {
    return k >= base_ &&
           static_cast<unsigned __int128>(k - base_) < ring_span_;
  }

  void bucket_push(Entry e) {
    const std::uint64_t k = KeyFn{}(e);
    if (ring_.empty()) ring_.resize(nb_);
    if (ring_count_ == 0 && overflow_.empty()) {
      // Empty queue: re-anchor the ring at this key so the steady
      // push-one/pop-one pattern never touches the overflow tier.
      base_ = k;
      cur_ = 0;
      active_pos_ = 0;
      ring_span_ = static_cast<unsigned __int128>(nb_) * width_;
    }
    if (!in_ring(k) && k >= base_) {
      overflow_.push_back(std::move(e));
      return;
    }
    // k < base_ (a late push) or a bucket at/behind the cursor: clamp into
    // the active bucket — every earlier bucket is empty, and comparisons
    // always use true keys, so pop order is unaffected.
    std::size_t idx = k < base_ ? cur_ : (k - base_) / width_;
    if (idx <= cur_) {
      auto& b = ring_[cur_];
      if (active_sorted_) {
        // Positioned insert into the live suffix, keeping the draining
        // bucket sorted. Marking it dirty instead would re-sort the whole
        // bucket on the next pop — the classic calendar-queue pathology
        // when the steady-state reinsertion stride is smaller than the
        // bucket width, turning amortized O(1) pops into O(b log b).
        b.insert(std::upper_bound(
                     b.begin() + static_cast<std::ptrdiff_t>(active_pos_),
                     b.end(), e, Less{}),
                 std::move(e));
        ++ring_count_;
        return;
      }
      if (active_pos_ > 0) {
        // Drop the consumed prefix before mixing in new entries, so the
        // eventual sort cannot resurrect already-popped elements.
        b.erase(b.begin(),
                b.begin() + static_cast<std::ptrdiff_t>(active_pos_));
        active_pos_ = 0;
      }
      idx = cur_;
    }
    ring_[idx].push_back(std::move(e));
    ++ring_count_;
  }

  void ensure_top() const {
    if (ring_count_ == 0) rebase_from_overflow();
    while (ring_[cur_].empty()) {
      ++cur_;
      active_pos_ = 0;
      active_sorted_ = false;
    }
    if (!active_sorted_) {
      auto& b = ring_[cur_];
      if (active_pos_ > 0) {
        b.erase(b.begin(),
                b.begin() + static_cast<std::ptrdiff_t>(active_pos_));
        active_pos_ = 0;
      }
      std::sort(b.begin(), b.end(), Less{});
      active_sorted_ = true;
    }
  }

  // The ring drained; re-anchor it at the overflow tier's minimum with a
  // width that spreads the tier across all nb_ buckets. Every deferred
  // entry fits: (hi - lo) / width <= nb_ - 1 by construction.
  void rebase_from_overflow() const {
    ABCL_DCHECK(!overflow_.empty());
    std::uint64_t lo = KeyFn{}(overflow_.front());
    std::uint64_t hi = lo;
    for (const Entry& e : overflow_) {
      const std::uint64_t k = KeyFn{}(e);
      if (k < lo) lo = k;
      if (k > hi) hi = k;
    }
    base_ = lo;
    width_ = (hi - lo) / nb_ + 1;
    ring_span_ = static_cast<unsigned __int128>(nb_) * width_;
    cur_ = 0;
    active_pos_ = 0;
    active_sorted_ = false;
    for (Entry& e : overflow_) {
      ring_[(KeyFn{}(e) - base_) / width_].push_back(std::move(e));
    }
    ring_count_ = overflow_.size();
    overflow_.clear();
  }

  QueueKind mode_;
  std::size_t nb_;
  std::size_t size_ = 0;

  std::vector<Entry> heap_;  // kHeap mode storage

  // kBucket mode. All mutable: top() is observably const but re-bases,
  // advances the cursor and sorts lazily.
  mutable std::vector<std::vector<Entry>> ring_;  // lazily sized to nb_
  mutable std::vector<Entry> overflow_;           // keys beyond the ring
  mutable std::uint64_t base_ = 0;                // ring time origin
  mutable std::uint64_t width_ = 1;               // per-bucket key span
  mutable unsigned __int128 ring_span_ = 0;       // nb_ * width_
  mutable std::size_t ring_count_ = 0;            // entries in the ring
  mutable std::size_t cur_ = 0;                   // active bucket index
  mutable std::size_t active_pos_ = 0;   // consumed prefix of ring_[cur_]
  mutable bool active_sorted_ = true;
};

}  // namespace abcl::util
