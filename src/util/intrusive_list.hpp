// Intrusive singly-linked FIFO queue.
//
// Used for per-object message queues and the node-wise scheduling queue;
// both are FIFO and never need random removal, so a head/tail singly-linked
// list with an embedded `next` pointer gives O(1) push/pop with zero
// allocation — the idiom the paper's hand-written C runtime uses.
#pragma once

#include <cstddef>

#include "util/assert.hpp"

namespace abcl::util {

// T must expose a public member `T* <NextMember>` reachable via the member
// pointer given as the template argument.
template <class T, T* T::* Next>
class IntrusiveFifo {
 public:
  IntrusiveFifo() = default;

  // The queue does not own its elements; destruction with elements still
  // linked is legal (the owner reclaims them through its pools).
  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return size_; }

  T* front() const { return head_; }

  void push_back(T* t) {
    ABCL_DCHECK(t != nullptr);
    t->*Next = nullptr;
    if (tail_ == nullptr) {
      head_ = tail_ = t;
    } else {
      tail_->*Next = t;
      tail_ = t;
    }
    ++size_;
  }

  T* pop_front() {
    T* t = head_;
    if (t == nullptr) return nullptr;
    head_ = t->*Next;
    if (head_ == nullptr) tail_ = nullptr;
    t->*Next = nullptr;
    --size_;
    return t;
  }

  // Removes the first element matching `pred`; O(n). Needed only by
  // selective reception's message-queue scan, which the paper also performs.
  template <class Pred>
  T* remove_first_if(Pred&& pred) {
    T* prev = nullptr;
    for (T* cur = head_; cur != nullptr; prev = cur, cur = cur->*Next) {
      if (pred(*cur)) {
        if (prev == nullptr) {
          head_ = cur->*Next;
        } else {
          prev->*Next = cur->*Next;
        }
        if (tail_ == cur) tail_ = prev;
        cur->*Next = nullptr;
        --size_;
        return cur;
      }
    }
    return nullptr;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (T* cur = head_; cur != nullptr; cur = cur->*Next) fn(*cur);
  }

  void clear() {
    head_ = tail_ = nullptr;
    size_ = 0;
  }

 private:
  T* head_ = nullptr;
  T* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace abcl::util
