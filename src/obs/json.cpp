#include "obs/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace abcl::obs {

// ----------------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------------

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;  // value follows its key on the same line
    return;
  }
  if (stack_.empty()) return;  // the root value
  Scope& s = stack_.back();
  ABCL_CHECK_MSG(!s.is_object, "object members need a key() first");
  if (s.has_elem) out_ += ',';
  s.has_elem = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  ABCL_CHECK_MSG(!stack_.empty() && stack_.back().is_object,
                 "key() outside an object");
  ABCL_CHECK_MSG(!pending_key_, "two keys in a row");
  Scope& s = stack_.back();
  if (s.has_elem) out_ += ',';
  s.has_elem = true;
  newline_indent();
  raw_string(k);
  out_ += indent_ > 0 ? ": " : ":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ += '{';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ABCL_CHECK(!stack_.empty() && stack_.back().is_object && !pending_key_);
  bool had = stack_.back().has_elem;
  stack_.pop_back();
  if (had) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ += '[';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ABCL_CHECK(!stack_.empty() && !stack_.back().is_object);
  bool had = stack_.back().has_elem;
  stack_.pop_back();
  if (had) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  // %.17g round-trips every finite double and is a pure function of the
  // bits, which is what keeps snapshots byte-comparable. Non-finite values
  // have no JSON literal; emit null.
  char buf[40];
  if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) {
    out_ += "null";
    return *this;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ += v ? "true" : "false";
  return *this;
}

void JsonWriter::raw_string(std::string_view v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::value(std::string_view v) {
  element_prefix();
  raw_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  element_prefix();
  out_ += "null";
  return *this;
}

// ----------------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
                return false;
              }
            }
            // The writer only emits \u00xx control escapes; decode the
            // BMP code point as UTF-8 so round-trips are lossless.
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& v) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected number");
      return false;
    }
    std::string lit(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size()) {
      fail("malformed number");
      return false;
    }
    if (integral) {
      errno = 0;
      long long i = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end == lit.c_str() + lit.size()) {
        v.integer = i;
        v.is_integer = true;
      }
    }
    return true;
  }

  bool parse_value(JsonValue& v) {
    if (depth_ > 128) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      ++depth_;
      skip_ws();
      if (eat('}')) {
        --depth_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) {
          fail("expected ':'");
          return false;
        }
        JsonValue member;
        if (!parse_value(member)) return false;
        v.object.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (eat(',')) continue;
        if (eat('}')) {
          --depth_;
          return true;
        }
        fail("expected ',' or '}'");
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      ++depth_;
      skip_ws();
      if (eat(']')) {
        --depth_;
        return true;
      }
      while (true) {
        JsonValue elem;
        if (!parse_value(elem)) return false;
        v.array.push_back(std::move(elem));
        skip_ws();
        if (eat(',')) continue;
        if (eat(']')) {
          --depth_;
          return true;
        }
        fail("expected ',' or ']'");
        return false;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      return parse_string(v.string);
    }
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return true;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return true;
    }
    if (literal("null")) {
      v.kind = JsonValue::Kind::kNull;
      return true;
    }
    return parse_number(v);
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  bool ok = n == content.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace abcl::obs
