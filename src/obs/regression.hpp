// Counter-drift regression checking over JSON reports.
//
// Compares a candidate document (fresh bench/metrics output) against a
// committed baseline, walking both trees in parallel. Numeric leaves must
// agree within a relative tolerance; strings/bools must match exactly;
// structure (keys, array lengths) must match. Keys in the ignore set —
// host-dependent quantities like wall-clock and core counts — are skipped
// wherever they appear.
//
// This is the CI hook behind `bench_regression_check`: tier-1 counters
// (solutions, sim_time, quanta, packet counts) are deterministic, so any
// drift beyond the tolerance means either a real regression or an
// intentional cost-model change that must update the baseline in the same
// PR.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace abcl::obs {

struct Drift {
  std::string path;    // e.g. "runs[3].sim_time"
  std::string detail;  // human-readable "baseline X, candidate Y (+Z%)"
};

struct CompareResult {
  std::vector<Drift> drifts;
  bool ok() const { return drifts.empty(); }
  std::string to_string() const;  // one drift per line; empty when ok
};

// Fields excluded from bench-trajectory comparison: host-dependent ones
// (wall_ms, speedup, host_cores, parallel_meaningful) plus the
// fault-injection and migration counter blocks (present only in runs with
// those features on). The one canonical list — see regression.cpp.
extern const std::vector<std::string> kDefaultIgnoredKeys;

struct CompareOptions {
  double tol_pct = 0.5;
  std::vector<std::string> ignored_keys = kDefaultIgnoredKeys;
  // Forward-compat mode for schema-bumped candidates against an older
  // committed baseline: keys the candidate adds are tolerated (the shared
  // counter prefix is still checked exactly); keys missing from the
  // candidate remain drifts. Strict both-ways checking stays the default —
  // a key silently vanishing OR appearing is normally a bug.
  bool allow_candidate_extra_keys = false;
};

CompareResult compare_json(const JsonValue& baseline, const JsonValue& candidate,
                           const CompareOptions& opts);

CompareResult compare_json(const JsonValue& baseline, const JsonValue& candidate,
                           double tol_pct,
                           const std::vector<std::string>& ignored_keys =
                               kDefaultIgnoredKeys);

// File-level convenience: parses both files and compares. Parse or I/O
// failures are reported as drifts so callers can treat any non-ok result
// uniformly.
//
// Baseline-version compat: when the baseline is an "abclsim-metrics-v1"
// snapshot and the candidate is the current metrics schema, the comparison
// automatically relaxes to the shared counter prefix — candidate-only keys
// (the v2 alloc blocks, "pooling") are tolerated and "schema"/"heap_bytes"
// are ignored (v2's slab-granular arena growth changed heap_bytes). This
// keeps committed v1 BENCH_*.json baselines green until they are
// refreshed; every other schema pairing is compared strictly.
CompareResult compare_json_files(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 double tol_pct,
                                 const std::vector<std::string>& ignored_keys =
                                     kDefaultIgnoredKeys);

}  // namespace abcl::obs
