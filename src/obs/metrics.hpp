// Structured metrics export (the machine-readable side of every table in
// the paper's evaluation).
//
// metrics_json serializes the whole World's observable state — per-node
// NodeStats including the per-AM-category send->dispatch latency histograms
// and scheduling-queue depth samples, Network::Stats, heap/object figures
// and the optional run report — into one stable JSON document.
//
// Determinism contract: every quantity is simulated (instruction counts,
// packet counts, Welford moments over simulated latencies), key order and
// number formatting are fixed, and nothing host-dependent (thread count,
// wall time, pointers) is included. A serial Machine run and a
// ParallelMachine run of the same program therefore produce byte-identical
// snapshots; the cross-driver tests and the bench regression hook rely on
// this.
#pragma once

#include <string>

#include "abcl/machine_api.hpp"
#include "util/stats.hpp"

namespace abcl::sim {
class ParallelMachine;
}  // namespace abcl::sim

namespace abcl::obs {

// v2 adds the "pooling" flag plus per-node and total "alloc" blocks (slab
// allocator counters — all simulated-deterministic). v1 documents remain
// comparable as regression baselines: compare_json_files detects a
// v1-baseline/v2-candidate pair and checks the shared counter prefix (see
// obs/regression.hpp).
inline constexpr const char* kMetricsSchema = "abclsim-metrics-v2";

// Serializes `world` (and, if non-null, the report of its last run). Safe
// on a world that has never run: all counters are zero.
std::string metrics_json(const World& world, const RunReport* rep = nullptr);

// Shared histogram serializer (also used by test assertions): count,
// p50/p90/p99 approximations and the non-empty buckets as [index, count].
void histogram_json(class JsonWriter& w, const util::Log2Histogram& h);

// Parallel-driver execution counters: window/occupancy/rebalance totals
// plus the effective horizon/shard policies. Kept OUT of metrics_json on
// purpose — windows_run depends on the driver (a serial Machine has no
// windows at all), so embedding it there would break the serial/parallel
// byte-identity contract above. Everything emitted is still deterministic
// for a fixed (program, policy, pinned thread count), so benches splice
// this block into their own reports and pin it in baselines.
std::string driver_metrics_json(const sim::ParallelMachine& pm);

}  // namespace abcl::obs
