#include "obs/regression.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace abcl::obs {

// Host-dependent keys: wall time, wall-time ratios, the recorded core
// count, and the flag derived from it — never simulated quantities. This is
// the single shared list every trajectory/metrics comparison draws from
// (bench_regression_check, tests, compare_json defaults); benches must name
// host-dependent fields with these keys rather than growing per-call-site
// exclusions. "faults" is the whole fault-injection block: it only exists
// in fault-enabled runs, and ignoring it both ways lets a fault-run
// candidate compare against the committed faults-off baselines (and vice
// versa) without structural drift. "migration" follows the same pattern for
// the live-migration block.
const std::vector<std::string> kDefaultIgnoredKeys = {
    "wall_ms", "speedup",  "host_cores",
    "faults",  "migration", "parallel_meaningful"};

namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

std::string fmt_number(const JsonValue& v) {
  char buf[40];
  if (v.is_integer) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v.integer));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v.number);
  }
  return buf;
}

struct Walker {
  double tol_pct;
  const std::vector<std::string>* ignored;
  bool allow_candidate_extra;
  CompareResult* out;

  bool is_ignored(const std::string& key) const {
    return std::find(ignored->begin(), ignored->end(), key) != ignored->end();
  }

  void drift(const std::string& path, std::string detail) {
    out->drifts.push_back({path, std::move(detail)});
  }

  void walk(const std::string& path, const JsonValue& b, const JsonValue& c) {
    if (b.kind != c.kind) {
      drift(path, std::string("type changed: ") + kind_name(b.kind) + " -> " +
                      kind_name(c.kind));
      return;
    }
    switch (b.kind) {
      case JsonValue::Kind::kNull:
        return;
      case JsonValue::Kind::kBool:
        if (b.boolean != c.boolean) {
          drift(path, std::string("baseline ") + (b.boolean ? "true" : "false") +
                          ", candidate " + (c.boolean ? "true" : "false"));
        }
        return;
      case JsonValue::Kind::kString:
        if (b.string != c.string) {
          drift(path, "baseline \"" + b.string + "\", candidate \"" + c.string +
                          "\"");
        }
        return;
      case JsonValue::Kind::kNumber: {
        // Relative drift against the baseline magnitude; the max(|b|, 1)
        // floor keeps near-zero baselines from exploding the percentage
        // while still flagging absolute changes of tolerance size.
        double diff = std::fabs(c.number - b.number);
        double denom = std::max(std::fabs(b.number), 1.0);
        double pct = diff / denom * 100.0;
        if (pct > tol_pct) {
          char d[64];
          std::snprintf(d, sizeof d, " (%+.2f%%, tol %.2f%%)",
                        (c.number - b.number) / denom * 100.0, tol_pct);
          drift(path,
                "baseline " + fmt_number(b) + ", candidate " + fmt_number(c) + d);
        }
        return;
      }
      case JsonValue::Kind::kArray: {
        if (b.array.size() != c.array.size()) {
          drift(path, "array length " + std::to_string(b.array.size()) + " -> " +
                          std::to_string(c.array.size()));
          return;
        }
        for (std::size_t i = 0; i < b.array.size(); ++i) {
          walk(path + "[" + std::to_string(i) + "]", b.array[i], c.array[i]);
        }
        return;
      }
      case JsonValue::Kind::kObject: {
        for (const auto& [key, bv] : b.object) {
          if (is_ignored(key)) continue;
          std::string sub = path.empty() ? key : path + "." + key;
          const JsonValue* cv = c.find(key);
          if (cv == nullptr) {
            drift(sub, "missing from candidate");
            continue;
          }
          walk(sub, bv, *cv);
        }
        if (!allow_candidate_extra) {
          for (const auto& [key, cv] : c.object) {
            (void)cv;
            if (is_ignored(key)) continue;
            if (b.find(key) == nullptr) {
              drift(path.empty() ? key : path + "." + key,
                    "not present in baseline");
            }
          }
        }
        return;
      }
    }
  }
};

}  // namespace

std::string CompareResult::to_string() const {
  std::string out;
  for (const Drift& d : drifts) {
    out += d.path + ": " + d.detail + "\n";
  }
  return out;
}

CompareResult compare_json(const JsonValue& baseline, const JsonValue& candidate,
                           const CompareOptions& opts) {
  CompareResult res;
  Walker{opts.tol_pct, &opts.ignored_keys, opts.allow_candidate_extra_keys, &res}
      .walk("", baseline, candidate);
  return res;
}

CompareResult compare_json(const JsonValue& baseline, const JsonValue& candidate,
                           double tol_pct,
                           const std::vector<std::string>& ignored_keys) {
  CompareResult res;
  Walker{tol_pct, &ignored_keys, false, &res}.walk("", baseline, candidate);
  return res;
}

CompareResult compare_json_files(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 double tol_pct,
                                 const std::vector<std::string>& ignored_keys) {
  CompareResult res;
  auto btext = read_file(baseline_path);
  if (!btext) {
    res.drifts.push_back({baseline_path, "cannot read baseline"});
    return res;
  }
  auto ctext = read_file(candidate_path);
  if (!ctext) {
    res.drifts.push_back({candidate_path, "cannot read candidate"});
    return res;
  }
  std::string err;
  auto b = parse_json(*btext, &err);
  if (!b) {
    res.drifts.push_back({baseline_path, "parse error: " + err});
    return res;
  }
  err.clear();
  auto c = parse_json(*ctext, &err);
  if (!c) {
    res.drifts.push_back({candidate_path, "parse error: " + err});
    return res;
  }
  // v1-baseline acceptance (see header): relax to the shared counter
  // prefix when an old committed metrics baseline meets a current-schema
  // candidate.
  const JsonValue* bs = b->find("schema");
  const JsonValue* cs = c->find("schema");
  if (bs != nullptr && cs != nullptr &&
      bs->kind == JsonValue::Kind::kString &&
      cs->kind == JsonValue::Kind::kString &&
      bs->string == "abclsim-metrics-v1" && cs->string == "abclsim-metrics-v2") {
    CompareOptions opts;
    opts.tol_pct = tol_pct;
    opts.ignored_keys = ignored_keys;
    opts.ignored_keys.push_back("schema");
    opts.ignored_keys.push_back("heap_bytes");
    opts.allow_candidate_extra_keys = true;
    return compare_json(*b, *c, opts);
  }
  return compare_json(*b, *c, tol_pct, ignored_keys);
}

}  // namespace abcl::obs
