#include "obs/metrics.hpp"

#include "net/active_message.hpp"
#include "obs/json.hpp"
#include "sim/parallel_machine.hpp"

namespace abcl::obs {

namespace {

void running_stat_json(JsonWriter& w, const util::RunningStat& s) {
  w.begin_object();
  w.field("count", s.count());
  w.field("mean", s.mean());
  w.field("variance", s.variance());
  w.field("min", s.min());
  w.field("max", s.max());
  w.field("sum", s.sum());
  w.end_object();
}

// The scalar counters shared by the per-node records and the totals block.
// `include_migration` is keyed off WorldConfig.migration.enabled: migration-
// off snapshots must stay byte-identical to baselines written before the
// fields existed.
void node_counters_json(JsonWriter& w, const core::NodeStats& s,
                        bool include_migration) {
  w.field("local_sends", s.local_sends);
  w.field("local_to_dormant", s.local_to_dormant);
  w.field("local_to_active", s.local_to_active);
  w.field("local_to_waiting_hit", s.local_to_waiting_hit);
  w.field("forced_buffer_depth", s.forced_buffer_depth);
  w.field("remote_sends", s.remote_sends);
  w.field("remote_recv", s.remote_recv);
  w.field("replies_sent", s.replies_sent);
  w.field("blocks_await", s.blocks_await);
  w.field("blocks_select", s.blocks_select);
  w.field("yields", s.yields);
  w.field("resumes", s.resumes);
  w.field("await_fast_hits", s.await_fast_hits);
  w.field("creations_local", s.creations_local);
  w.field("creations_remote", s.creations_remote);
  w.field("chunk_stock_hits", s.chunk_stock_hits);
  w.field("chunk_stock_misses", s.chunk_stock_misses);
  w.field("sched_enqueues", s.sched_enqueues);
  w.field("sched_dispatches", s.sched_dispatches);
  if (include_migration) {
    w.field("migrations_out", s.migrations_out);
    w.field("migrations_in", s.migrations_in);
    w.field("migration_mail", s.migration_mail);
    w.field("migration_forwards", s.migration_forwards);
    w.field("migration_updates", s.migration_updates);
    w.field("migration_holds", s.migration_holds);
  }
  w.field("busy_instr", s.busy_instr);
  w.field("idle_instr", s.idle_instr);
}

// Slab-allocator counters. Every field is a function of the node's
// simulated allocation sequence, so the block survives the cross-driver
// byte-identity contract. Magazine/depot occupancy (host-dependent) is
// deliberately NOT here.
void alloc_json(JsonWriter& w, const util::SlabAllocator::Stats& s) {
  w.key("alloc");
  w.begin_object();
  w.field("allocs", s.allocs);
  w.field("frees", s.frees);
  w.field("live", s.live());
  w.field("freelist_hits", s.freelist_hits);
  w.field("slab_refills", s.slab_refills);
  w.field("slots_carved", s.slots_carved);
  w.field("backing_bytes", s.backing_bytes);
  w.end_object();
}

void latency_histograms_json(JsonWriter& w, const core::NodeStats& s) {
  w.key("msg_latency_instr");
  w.begin_object();
  for (int c = 0; c < core::NodeStats::kNumAmCategories; ++c) {
    w.key(net::to_string(static_cast<net::AmCategory>(c)));
    histogram_json(w, s.msg_latency[c]);
  }
  w.end_object();
  w.key("sched_depth");
  histogram_json(w, s.sched_depth);
}

}  // namespace

void histogram_json(JsonWriter& w, const util::Log2Histogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("p50", h.percentile(0.50));
  w.field("p90", h.percentile(0.90));
  w.field("p99", h.percentile(0.99));
  w.key("buckets");
  w.begin_array();
  for (int i = 0; i < util::Log2Histogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    w.begin_array();
    w.value(i);
    w.value(h.bucket(i));
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

std::string metrics_json(const World& world, const RunReport* rep) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kMetricsSchema);
  w.field("nodes", static_cast<std::int64_t>(world.num_nodes()));
  w.field("seed", world.config().seed);
  w.field("pooling", world.config().pooling);

  if (rep != nullptr) {
    w.key("run");
    w.begin_object();
    w.field("sim_time", rep->sim_time);
    w.field("quanta", rep->quanta);
    w.field("sim_ms", rep->sim_ms);
    w.end_object();
  }

  const net::Network::Stats& ns = world.network().stats();
  w.key("network");
  w.begin_object();
  w.field("packets", ns.packets);
  w.field("payload_words", ns.payload_words);
  w.field("wire_words", ns.wire_words);
  w.field("in_flight", world.network().in_flight());
  w.key("per_category");
  w.begin_object();
  for (int c = 0; c < 4; ++c) {
    w.field(net::to_string(static_cast<net::AmCategory>(c)),
            ns.per_category[c]);
  }
  w.end_object();
  w.key("wire_latency_instr");
  running_stat_json(w, ns.wire_latency_instr);
  // The faults block exists only when a FaultPlan is installed: faults-off
  // snapshots must stay byte-identical to the committed baselines, and the
  // regression gate additionally lists "faults" in its default ignored keys
  // so a fault-run candidate still compares against a faults-off baseline.
  if (world.network().faults_enabled()) {
    const net::FaultConfig& fc = world.network().fault_plan().config();
    const net::FaultStats fs = world.network().fault_stats();
    w.key("faults");
    w.begin_object();
    w.key("config");
    w.begin_object();
    w.field("drop_ppm", static_cast<std::uint64_t>(fc.drop_ppm));
    w.field("dup_ppm", static_cast<std::uint64_t>(fc.dup_ppm));
    w.field("delay_ppm", static_cast<std::uint64_t>(fc.delay_ppm));
    w.field("delay_max", fc.delay_max);
    w.field("blackout_ppm", static_cast<std::uint64_t>(fc.blackout_ppm));
    w.field("blackout_window", fc.blackout_window);
    w.field("rto", world.network().fault_plan().rto());
    w.field("rto_max", fc.rto_max);
    w.field("seed", fc.seed);
    w.end_object();
    w.field("attempts", fs.attempts);
    w.field("drops", fs.drops);
    w.field("blackout_drops", fs.blackout_drops);
    w.field("duplicates", fs.duplicates);
    w.field("delays", fs.delays);
    w.field("spurious_retransmits", fs.spurious_retransmits);
    w.field("forced_deliveries", fs.forced_deliveries);
    w.field("copies_enqueued", fs.copies_enqueued);
    w.field("delivered", fs.delivered);
    w.field("dup_suppressed", fs.dup_suppressed);
    w.key("retry_delay_instr");
    histogram_json(w, fs.retry_delay_instr);
    w.end_object();
  }
  w.end_object();

  // The migration block mirrors "faults": present only when the knob is on
  // (migration-off byte-identity), ignored by default in the regression
  // comparator so a migration-run candidate can diff against an off
  // baseline.
  const bool migration_on = world.config().migration.enabled;
  if (migration_on) {
    const remote::MigrationConfig& mc = world.config().migration;
    w.key("migration");
    w.begin_object();
    w.key("config");
    w.begin_object();
    w.field("interval", static_cast<std::uint64_t>(mc.interval));
    w.field("hysteresis", static_cast<std::uint64_t>(mc.hysteresis));
    w.field("max_batch", static_cast<std::uint64_t>(mc.max_batch));
    w.field("min_queue", static_cast<std::uint64_t>(mc.min_queue));
    w.field("seed", mc.seed);
    w.end_object();
    const core::NodeStats t = world.total_stats();
    w.field("migrations", t.migrations_out);
    w.field("mail_flushed", t.migration_mail);
    w.field("forwards", t.migration_forwards);
    w.field("updates", t.migration_updates);
    w.field("holds", t.migration_holds);
    w.end_object();
  }

  core::NodeStats totals = world.total_stats();
  w.key("totals");
  w.begin_object();
  node_counters_json(w, totals, migration_on);
  w.field("live_objects", static_cast<std::uint64_t>(world.total_live_objects()));
  w.field("created_objects", world.total_created_objects());
  w.field("heap_bytes", static_cast<std::uint64_t>(world.total_heap_bytes()));
  w.field("max_clock", world.max_clock());
  alloc_json(w, world.total_alloc_stats());
  latency_histograms_json(w, totals);
  w.end_object();

  w.key("per_node");
  w.begin_array();
  for (std::int32_t i = 0; i < world.num_nodes(); ++i) {
    const core::NodeRuntime& n = world.node(i);
    w.begin_object();
    w.field("node", static_cast<std::int64_t>(n.node_id()));
    w.field("clock", n.clock());
    node_counters_json(w, n.stats(), migration_on);
    w.field("live_objects", static_cast<std::uint64_t>(n.live_objects()));
    w.field("created_objects", n.total_created());
    w.field("heap_bytes", static_cast<std::uint64_t>(n.heap_bytes()));
    w.field("sched_queue_len", static_cast<std::uint64_t>(n.sched_queue_len()));
    w.field("net_pending", static_cast<std::uint64_t>(
                               world.network().pending(n.node_id())));
    alloc_json(w, n.alloc_stats());
    latency_histograms_json(w, n.stats());
    w.end_object();
  }
  w.end_array();

  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

std::string driver_metrics_json(const sim::ParallelMachine& pm) {
  JsonWriter w(/*indent=*/0);
  w.begin_object();
  w.field("horizon", sim::to_string(pm.horizon_kind()));
  w.field("shard", sim::to_string(pm.shard_kind()));
  w.field("windows_run", pm.windows_run());
  w.field("occupancy_sum", pm.occupancy_sum());
  w.field("rebalances", pm.rebalances());
  w.field("shard_moves", pm.shard_moves());
  w.end_object();
  return w.take();
}

}  // namespace abcl::obs
