// Chrome trace-event (Perfetto-compatible) export of sim::Tracer rings.
//
// Emits the JSON array format that chrome://tracing and ui.perfetto.dev
// load directly: one instant event per trace record, pid 0 ("abclsim"),
// tid = simulated node id, ts = the simulated instruction clock (the
// viewer labels it "us"; read it as instrs). The kind-specific payload
// word rides in args, so a loaded trace shows queue lengths, pattern ids
// and class ids inline.
//
// Output is a pure function of the event sequence — the cross-driver tests
// diff exporter output from serial and parallel runs byte-for-byte.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace abcl::obs {

std::string chrome_trace_json(const std::vector<sim::Tracer::Event>& events);

inline std::string chrome_trace_json(const sim::Tracer& tracer) {
  return chrome_trace_json(tracer.snapshot());
}

}  // namespace abcl::obs
