#include "obs/chrome_trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace abcl::obs {

namespace {

// What the payload word means for each event kind (shown as the arg name
// in the trace viewer; keep in sync with the TraceEv comments).
const char* payload_name(sim::TraceEv e) {
  switch (e) {
    case sim::TraceEv::kQuantum: return "sched_queue_len";
    case sim::TraceEv::kSendRemote: return "pattern";
    case sim::TraceEv::kRecvRemote: return "handler";
    case sim::TraceEv::kBlock: return "reason";
    case sim::TraceEv::kResume: return "class";
    case sim::TraceEv::kCreate: return "class";
    case sim::TraceEv::kFaultDup: return "handler";
    case sim::TraceEv::kFaultRetry: return "attempt";
    case sim::TraceEv::kMigrateOut: return "target_node";
    case sim::TraceEv::kMigrateIn: return "source_node";
    case sim::TraceEv::kForward: return "pattern";
  }
  return "payload";
}

}  // namespace

std::string chrome_trace_json(const std::vector<sim::Tracer::Event>& events) {
  // Compact (single-line-per-event would still be valid; indent 0 keeps
  // multi-megabyte traces loadable and the diff in tests small).
  JsonWriter w(/*indent=*/0);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  // Thread-name metadata for every node that appears, in node order, so
  // the viewer shows "node N" lanes and the output is deterministic.
  std::vector<sim::NodeId> nodes;
  for (const auto& e : events) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  w.begin_object();
  w.field("name", "process_name");
  w.field("ph", "M");
  w.field("pid", 0);
  w.key("args").begin_object().field("name", "abclsim").end_object();
  w.end_object();
  for (sim::NodeId n : nodes) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 0);
    w.field("tid", static_cast<std::int64_t>(n));
    w.key("args").begin_object();
    w.field("name", "node " + std::to_string(n));
    w.end_object();
    w.end_object();
  }

  for (const auto& e : events) {
    w.begin_object();
    w.field("name", sim::to_string(e.kind));
    w.field("ph", "i");
    w.field("s", "t");  // thread-scoped instant
    w.field("ts", e.t);
    w.field("pid", 0);
    w.field("tid", static_cast<std::int64_t>(e.node));
    w.key("args").begin_object();
    w.field(payload_name(e.kind), e.payload);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

}  // namespace abcl::obs
