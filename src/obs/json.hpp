// Deterministic JSON support for the observability layer.
//
// Writer: a small streaming emitter whose output is a pure function of the
// value sequence — fixed key order (caller-controlled), fixed number
// formatting ("%.17g" for doubles, exact decimal for integers), fixed
// 2-space indentation. Byte-identical output across runs and host drivers
// is a contract here: the cross-driver tests diff snapshot strings
// directly.
//
// Parser: the minimal recursive-descent reader the regression tooling needs
// to load `BENCH_*.json` baselines and metrics snapshots. Not a general
// validator; it accepts the JSON this repo emits (objects, arrays, strings
// with the escapes the writer produces, numbers, bools, null) and reports
// the first error position otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace abcl::obs {

class JsonWriter {
 public:
  // indent <= 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key of the next member (only valid directly inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  // key() + value() in one call.
  template <class T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void element_prefix();  // comma/newline/indent bookkeeping
  void newline_indent();
  void raw_string(std::string_view v);

  struct Scope {
    bool is_object = false;
    bool has_elem = false;
  };
  std::string out_;
  std::vector<Scope> stack_;
  int indent_;
  bool pending_key_ = false;
};

// Parsed JSON value; object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;          // always set for kNumber
  std::int64_t integer = 0;     // exact value when is_integer
  bool is_integer = false;      // true if the literal was integral & in range
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // Member lookup (nullptr if absent or not an object).
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Returns nullopt on malformed input; `error`, if given, receives a short
// description with the byte offset of the failure.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

// Whole-file helpers used by the bench/CI tooling. read_file returns
// nullopt if the file cannot be opened.
bool write_file(const std::string& path, std::string_view content);
std::optional<std::string> read_file(const std::string& path);

}  // namespace abcl::obs
