// Umbrella header: the public API of the abclsim library.
//
// Typical usage:
//
//   core::Program prog;
//   auto patterns = /* intern patterns */;
//   abcl::ClassDef<MyState> def(prog, "My");   // register classes/methods
//   prog.finalize();
//
//   abcl::WorldConfig cfg; cfg.nodes = 64;
//   abcl::World world(prog, cfg);
//   world.boot(0, [&](abcl::Ctx& ctx) { /* create roots, send messages */ });
//   abcl::RunReport rep = world.run();
#pragma once

#include "abcl/args.hpp"
#include "abcl/class_def.hpp"
#include "abcl/dsl.hpp"
#include "abcl/machine_api.hpp"
#include "abcl/termination.hpp"
