#include "abcl/termination.hpp"

#include "abcl/dsl.hpp"

namespace abcl {

namespace {

CompletionPatterns g_pats;  // ids are per-Program; stored for the frames

struct ExpectFrame : Frame {
  std::int64_t n;
  static void init(ExpectFrame& f, const Msg& m) { f.n = m.i64(0); }
  static Status run(Ctx& ctx, CompletionLatch& self, ExpectFrame& f) {
    (void)ctx;
    self.expected = f.n;
    self.armed = true;
    return Status::kDone;
  }
};

struct DoneFrame : Frame {
  std::int64_t count;
  static void init(DoneFrame& f, const Msg& m) { f.count = m.i64(0); }
  static Status run(Ctx& ctx, CompletionLatch& self, DoneFrame& f) {
    self.received += 1;
    self.total += f.count;
    if (self.done() && !self.pending_get.is_nil()) {
      Word v = static_cast<Word>(self.total);
      ctx.reply(self.pending_get, &v, 1);
      self.pending_get = core::kNilReply;
    }
    return Status::kDone;
  }
};

struct GetFrame : Frame {
  ReplyDest rd;
  static void init(GetFrame& f, const Msg& m) { f.rd = m.reply; }
  static Status run(Ctx& ctx, CompletionLatch& self, GetFrame& f) {
    if (self.done()) {
      Word v = static_cast<Word>(self.total);
      ctx.reply(f.rd, &v, 1);
    } else {
      ABCL_CHECK_MSG(self.pending_get.is_nil(),
                     "CompletionLatch supports one pending get");
      self.pending_get = f.rd;
    }
    return Status::kDone;
  }
};

}  // namespace

CompletionPatterns register_completion_latch(core::Program& prog) {
  CompletionPatterns p;
  p.expect = prog.patterns().intern("latch.expect", 1);
  p.done = prog.patterns().intern("latch.done", 1);
  p.get = prog.patterns().intern("latch.get", 0);

  ClassDef<CompletionLatch> def(prog, "abcl.CompletionLatch");
  def.method<ExpectFrame>(p.expect);
  def.method<DoneFrame>(p.done);
  def.method<GetFrame>(p.get);
  p.cls = &def.info();
  g_pats = p;
  return p;
}

const CompletionLatch& latch_state(MailAddr addr) {
  ABCL_CHECK(!addr.is_nil());
  ABCL_CHECK_MSG(!addr.ptr->needs_init,
                 "latch never received a message; state not constructed");
  return *addr.ptr->state_as<CompletionLatch>();
}

}  // namespace abcl
