// Typed argument packing for message sends and creation.
//
// Messages and creation requests carry untyped 64-bit words (the statically
// typed layout is known to both ends, so no runtime tags are needed —
// Section 2.3). These helpers remove the Word[] boilerplate at call sites:
//
//   ctx.send_past(target, pat, abcl::args(n, addr, rd));
//
// An ArgPack is a fixed-capacity value buffer; MailAddr and ReplyDest
// expand to their two-word encodings automatically.
#pragma once

#include <type_traits>

#include "core/frame.hpp"
#include "core/mail_addr.hpp"

namespace abcl {

class ArgPack {
 public:
  const core::Word* data() const { return words_; }
  int size() const { return n_; }

  // NodeRuntime's send/create overloads take WordSpan.
  operator core::WordSpan() const { return core::WordSpan{words_, n_}; }  // NOLINT

  void push(core::Word w) {
    ABCL_CHECK_MSG(n_ < core::kMaxArgs, "message arity limit exceeded");
    words_[n_++] = w;
  }

  template <class T>
  void add(const T& v) {
    if constexpr (std::is_same_v<T, core::MailAddr>) {
      push(v.word_node());
      push(v.word_ptr());
    } else if constexpr (std::is_same_v<T, core::ReplyDest>) {
      push(v.word_node());
      push(v.word_box());
    } else if constexpr (std::is_pointer_v<T>) {
      push(reinterpret_cast<core::Word>(v));
    } else if constexpr (std::is_enum_v<T>) {
      push(static_cast<core::Word>(v));
    } else {
      static_assert(std::is_integral_v<T>,
                    "pass integers, enums, pointers, MailAddr or ReplyDest");
      push(static_cast<core::Word>(v));
    }
  }

 private:
  core::Word words_[core::kMaxArgs];
  int n_ = 0;
};

// Builds an ArgPack from a heterogeneous argument list.
template <class... Ts>
ArgPack args(const Ts&... vs) {
  ArgPack p;
  (p.add(vs), ...);
  return p;
}

}  // namespace abcl
