// Completion latch — library-provided termination detection.
//
// The paper's N-queens detects termination by acknowledgement messages
// tracing back the search tree. The latch generalizes the root of such an
// ack tree: an object that absorbs "done(count)" messages until `expected`
// of them arrived, accumulating the counts; the host reads the result after
// the world quiesces (or another object awaits it with a now-type get).
//
// Patterns:
//   latch.expect [n]      — (re)arms the latch for n completions
//   latch.done   [count]  — one completion carrying a partial result
//   latch.get    []       — now-type: replies the total once complete
#pragma once

#include "abcl/class_def.hpp"
#include "abcl/machine_api.hpp"

namespace abcl {

struct CompletionLatch {
  std::int64_t expected = 0;
  std::int64_t received = 0;
  std::int64_t total = 0;
  bool armed = false;
  // One waiter may block in latch.get before completion.
  ReplyDest pending_get = core::kNilReply;

  bool done() const { return armed && received >= expected; }
};

// Pattern names (interned by register_completion_latch).
struct CompletionPatterns {
  PatternId expect = 0;
  PatternId done = 0;
  PatternId get = 0;
  const core::ClassInfo* cls = nullptr;
};

// Registers the latch class + patterns on `prog`. Call before finalize().
CompletionPatterns register_completion_latch(core::Program& prog);

// Host-side helpers (valid once the world has quiesced).
const CompletionLatch& latch_state(MailAddr addr);

}  // namespace abcl
