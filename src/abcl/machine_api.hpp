// World: the whole simulated multicomputer behind one facade.
//
// Owns the network, one NodeRuntime per node and the PDES driver; provides
// bootstrapping, the run-to-quiescence loop, chunk-stock seeding and
// aggregate reporting. A World is built from a finalized Program and a
// WorldConfig; everything is deterministic given (program, config).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "core/node_runtime.hpp"
#include "net/network.hpp"
#include "sim/lookahead.hpp"
#include "sim/machine.hpp"
#include "sim/shard_balance.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl {

// World construction parameters. Preferred style is the fluent builder —
//   World w(prog, WorldConfig::from_env().with_nodes(64).with_seed(7));
// — with from_env() as the single place environment variables are read.
// Plain aggregate initialization (`WorldConfig cfg; cfg.nodes = 64;`) keeps
// working but is deprecated for new code; see API.md.
struct WorldConfig {
  std::int32_t nodes = 1;
  net::TopologyKind topology = net::TopologyKind::kTorus2D;
  sim::CostModel cost = sim::CostModel::ap1000();
  core::NodeRuntime::Config node;
  remote::PlacementKind placement = remote::PlacementKind::kRoundRobin;
  std::uint64_t seed = 1;
  // Host worker threads for the simulation driver. 0 = consult the
  // ABCLSIM_HOST_THREADS environment variable (unset/empty -> serial
  // Machine; otherwise a strictly validated integer in [1, 1024]);
  // >= 1 = host-parallel ParallelMachine with that many workers;
  // < 0 = force the serial Machine regardless of the environment. Results
  // are bit-identical across all settings.
  int host_threads = 0;
  // Hot-path memory pooling: slab-pooled node heaps + recycled packet
  // buffers (default) vs general-purpose allocation everywhere (the
  // bench_alloc ablation baseline). Never changes simulation results.
  bool pooling = true;
  // Time-queue structure for the serial machine's ready set and the
  // network's per-destination queues: bucketed calendar queue (default) vs
  // binary-heap ablation (ABCLSIM_QUEUE=heap). Pop order is identical —
  // results never change.
  util::QueueKind queue = util::QueueKind::kBucket;
  // Barrier commit strategy for the host-parallel driver: N-way merge over
  // worker-pre-sorted outbox runs (default) vs the old coordinator-side
  // global sort ablation (ABCLSIM_FLUSH=sort). Commit order is identical —
  // results never change.
  net::FlushKind flush = net::FlushKind::kMerge;
  // Window policy of the host-parallel driver: flat global lookahead
  // (default) vs per-node distance-aware horizons (ABCLSIM_HORIZON=
  // distance; see sim/lookahead.hpp). Fewer barriers on torus workloads —
  // results never change. Ignored by the serial driver; falls back to
  // global when fault injection is enabled.
  sim::HorizonKind horizon = sim::HorizonKind::kGlobal;
  // Shard policy of the host-parallel driver: static round-robin (default)
  // vs deterministic barrier-time EWMA rebalancing (ABCLSIM_SHARD=
  // balanced; see sim/shard_balance.hpp). Results never change; only which
  // host thread runs which node does.
  sim::ShardKind shard = sim::ShardKind::kStatic;
  // Deterministic network fault injection (drop/dup/delay/blackout) plus
  // the delivery-hardening protocol; see net/fault.hpp. Disabled by default
  // — a faults-off World is byte-identical to one built before this knob
  // existed. Set via with_faults(), or ABCLSIM_FAULTS through from_env().
  net::FaultConfig faults;
  // Live object migration + deterministic work shedding; see
  // remote/migration.hpp. Disabled by default — a migration-off World is
  // byte-identical to one built before this knob existed. Set via
  // with_migration(), or ABCLSIM_MIGRATION through from_env(). When enabled
  // and gossip is off, World auto-enables gossip at the shed interval (the
  // policy needs neighbour loads).
  remote::MigrationConfig migration;
  // Deterministic checkpoint capture; see ckpt/snapshot.hpp. Disabled by
  // default. When enabled with a `path`, run() writes the snapshot file at
  // the `at` boundary and resumes in the same call (fire-and-forget:
  // transparent to checkpoint-unaware programs). With an empty `path`,
  // run() hands control back at the boundary with
  // StopReason::kCheckpointRequested so the caller captures via
  // World::checkpoint. Either way node heaps are placed in fixed-base
  // reserved arenas so a restored world is address-faithful. Requires
  // pooling (the reserved-arena heap). Set via with_ckpt(), or
  // ABCLSIM_CHECKPOINT through from_env().
  ckpt::CheckpointConfig ckpt;

  // Builds a config with every environment-controlled knob resolved here,
  // once, strictly: ABCLSIM_HOST_THREADS (see parse_host_threads; unset ->
  // serial, recorded as host_threads = -1 so the result never re-consults
  // the environment), ABCLSIM_POOLING (unset/1/true/on -> pooled,
  // 0/false/off -> ablation baseline), ABCLSIM_QUEUE (unset/bucket or
  // heap), ABCLSIM_FLUSH (unset/merge or sort), ABCLSIM_HORIZON
  // (unset/global or distance), ABCLSIM_SHARD (unset/static or balanced)
  // and ABCLSIM_FAULTS (unset or
  // "off" -> no faults; otherwise a strict net::parse_fault_spec string
  // like "drop=0.05,dup=0.01,seed=7") and ABCLSIM_MIGRATION (unset or "off"
  // -> no migration; otherwise a strict remote::parse_migration_spec string
  // like "interval=32,hysteresis=2,seed=7"); anything else aborts.
  // New environment knobs must be absorbed here, not scattered.
  static WorldConfig from_env();

  // Fluent setters, chainable from from_env() or a default-constructed
  // config.
  WorldConfig& with_nodes(std::int32_t n) { nodes = n; return *this; }
  WorldConfig& with_topology(net::TopologyKind k) { topology = k; return *this; }
  WorldConfig& with_cost(const sim::CostModel& c) { cost = c; return *this; }
  WorldConfig& with_node(const core::NodeRuntime::Config& nc) {
    node = nc;
    return *this;
  }
  WorldConfig& with_placement(remote::PlacementKind p) {
    placement = p;
    return *this;
  }
  WorldConfig& with_seed(std::uint64_t s) { seed = s; return *this; }
  WorldConfig& with_host_threads(int t) { host_threads = t; return *this; }
  WorldConfig& with_pooling(bool on) { pooling = on; return *this; }
  WorldConfig& with_queue(util::QueueKind q) { queue = q; return *this; }
  WorldConfig& with_flush(net::FlushKind f) { flush = f; return *this; }
  WorldConfig& with_horizon(sim::HorizonKind h) { horizon = h; return *this; }
  WorldConfig& with_shard(sim::ShardKind s) { shard = s; return *this; }
  WorldConfig& with_faults(const net::FaultConfig& f) {
    faults = f;
    return *this;
  }
  WorldConfig& with_migration(const remote::MigrationConfig& m) {
    migration = m;
    return *this;
  }
  WorldConfig& with_ckpt(const ckpt::CheckpointConfig& c) {
    ckpt = c;
    return *this;
  }
};

// Strict parser behind ABCLSIM_HOST_THREADS. nullptr/empty -> 0 (serial);
// a decimal integer in [1, 1024] (surrounding blanks allowed) -> that
// count; anything else -> nullopt with a diagnostic in *err. Garbage never
// falls back silently: a typo in the variable aborts World construction
// instead of quietly running serial.
std::optional<int> parse_host_threads(const char* text, std::string* err);

// Why a run() call returned: the world drained (quiesced), the caller's
// max_time arrived with work still pending, or the configured caller-driven
// checkpoint boundary stopped it (work still pending — capture with
// World::checkpoint, then resume with another run(), or restore elsewhere;
// path-configured file checkpoints resume internally and never surface
// this reason).
enum class StopReason { kQuiesced, kMaxTime, kCheckpointRequested };

const char* to_string(StopReason r);

struct RunReport {
  sim::Instr sim_time = 0;       // end-of-run instant (max node clock)
  std::uint64_t quanta = 0;      // scheduling quanta executed
  double sim_ms = 0.0;           // sim_time at the model's clock rate
  StopReason stop_reason = StopReason::kQuiesced;
};

class World {
 public:
  World(core::Program& prog, WorldConfig cfg);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  std::int32_t num_nodes() const { return cfg_.nodes; }
  core::NodeRuntime& node(core::NodeId id) {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  const core::NodeRuntime& node(core::NodeId id) const {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  net::Network& network() { return *net_; }
  const net::Network& network() const { return *net_; }
  sim::Driver& machine() { return *machine_; }
  const WorldConfig& config() const { return cfg_; }
  // Host worker threads actually driving the simulation (1 = serial).
  int host_threads() const { return host_threads_; }

  // Runs `fn` as bootstrap code on `node` (typically: create the root
  // objects and send the first messages).
  void boot(core::NodeId id, const std::function<void(core::NodeRuntime&)>& fn);

  // Runs the machine to quiescence (all nodes idle, no packets in flight).
  RunReport run(sim::Instr max_time = sim::kInstrInf);

  // Pre-delivers `depth` chunks of `cls`'s size class from every node into
  // every other node's stock (warm start for creation-heavy workloads).
  void seed_stocks(const core::ClassInfo& cls, int depth);

  // Attaches an execution tracer to every node (nullptr detaches).
  void attach_tracer(sim::Tracer* tracer);

  // Serializes the whole world into `sink` (see ckpt/snapshot.hpp for the
  // format and its same-process contract). Only legal between run() calls —
  // a quantum boundary — and only on a world built with checkpointing
  // enabled (reserved arenas).
  void checkpoint(ckpt::Sink& sink) const;

  // Rebuilds a world from a snapshot taken by checkpoint(). `prog` must be
  // the same finalized Program the snapshot was captured under (validated
  // via a fingerprint). The checkpointed world must have been destroyed
  // first: restore re-maps the node arenas at their original fixed bases.
  // host_threads_override: 0 = keep the snapshot's driver configuration;
  // otherwise same semantics as WorldConfig::host_threads (results are
  // bit-identical either way).
  static std::unique_ptr<World> restore(core::Program& prog,
                                        ckpt::Source& src,
                                        int host_threads_override = 0);

  // Quanta executed before the snapshot this world was restored from (0 for
  // a world built normally). run() reports only quanta it ran itself;
  // resumed_quanta() + sum of reports = the uninterrupted run's quanta.
  std::uint64_t resumed_quanta() const { return resumed_quanta_; }

  // True while any node is runnable or any packet is in flight — i.e. a
  // further run() would make progress.
  bool work_remaining() const;

  // Per-node utilization summary (busy vs idle instructions) as a printable
  // table, plus machine-wide figures — useful after any run.
  util::Table utilization_table() const;
  double mean_utilization() const;

  // Aggregates across nodes.
  core::NodeStats total_stats() const;
  util::SlabAllocator::Stats total_alloc_stats() const;
  std::size_t total_live_objects() const;
  std::uint64_t total_created_objects() const;
  std::size_t total_heap_bytes() const;
  sim::Instr max_clock() const;

 private:
  friend struct ckpt::WorldIo;

  // Restore path: members are filled in by ckpt::WorldIo, not the normal
  // constructor.
  struct RestoreTag {};
  World(RestoreTag, core::Program& prog) : prog_(&prog) {}

  // (Re)builds the driver from cfg_.host_threads and wires the network's
  // deliverable callback to it. Shared by the constructor and restore.
  void build_machine();

  WorldConfig cfg_;
  core::Program* prog_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<core::NodeRuntime>> nodes_;
  std::unique_ptr<sim::Driver> machine_;
  int host_threads_ = 1;
  std::uint64_t quanta_total_ = 0;    // cumulative across run() calls
  std::uint64_t resumed_quanta_ = 0;  // quanta before the restored snapshot
  bool ckpt_taken_ = false;           // the cfg_.ckpt boundary already fired
};

}  // namespace abcl
