#include "abcl/class_def.hpp"

// Header-only implementation; this TU anchors the component in the library.
namespace abcl {}
