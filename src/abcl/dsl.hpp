// Method-body DSL: the control-flow macros methods use for blocking
// operations. A method body is a pc-indexed state machine:
//
//   Status GetFrame::run(Ctx& ctx, Buffer& self, GetFrame& f) {
//     ABCL_BEGIN(f);
//     ...                                  // pc == 0: fresh invocation
//     ABCL_AWAIT(ctx, f, 1, f.call);       // block until the reply arrives
//     x = ctx.take_reply(f.call);
//     ...
//     ABCL_END();
//   }
//
// Rules (enforced where possible by static_asserts in core/dispatch.hpp):
//  * every local that must survive a blocking point lives in the frame;
//  * case labels (the `label` arguments) are unique small integers > 0;
//  * frames are trivially copyable.
#pragma once

#include "abcl/class_def.hpp"

// Opens the state machine.
#define ABCL_BEGIN(f) \
  switch ((f).pc) {   \
    case 0:

// Closes the state machine (normal completion).
#define ABCL_END()                 \
  break;                           \
  default:                         \
    ABCL_UNREACHABLE();            \
  }                                \
  return ::abcl::Status::kDone

// Explicit early completion from inside the switch.
#define ABCL_RETURN() return ::abcl::Status::kDone

// Awaits a now-type reply (or a pending remote creation's chunk). If the
// reply has already arrived — the common case under stack scheduling — the
// method continues without blocking.
#define ABCL_AWAIT(ctx, f, label, call)                       \
  (f).pc = (label);                                           \
  if (!(ctx).reply_ready((call))) {                           \
    return (ctx).block_await((call));                         \
  }                                                           \
  [[fallthrough]];                                            \
  case (label):

// Selective reception: waits for any pattern accepted by `site`. The
// message queue is scanned first (the paper: "the object is not blocked as
// long as it finds an awaited message when it first checks its message
// queue"); on a hit, the site's copy-in lands the arguments in the frame
// and execution continues at the accept's resume_pc.
#define ABCL_SELECT(ctx, self, f, site)                                   \
  do {                                                                    \
    std::uint16_t abcl_npc = (ctx).select_try((site), &(f));              \
    if (abcl_npc == ::abcl::core::kPcBlocked) {                           \
      return (ctx).block_select((site));                                  \
    }                                                                     \
    (f).pc = abcl_npc;                                                    \
    return std::remove_reference_t<decltype(f)>::run((ctx), (self), (f)); \
  } while (0)

// Hybrid wait (Section 2.2 action 4): wait for the call's reply OR any
// pattern accepted by `site`, whichever arrives first. On a reply the
// method continues at `case label`; on an accepted message it continues at
// that accept's resume_pc with its copy-in applied, and the reply
// registration is cancelled (a later reply just fills the box — AWAIT it
// again to consume it). The message queue is scanned before blocking.
#define ABCL_AWAIT_OR_SELECT(ctx, self, f, label, call, site)               \
  (f).pc = (label);                                                         \
  if (!(ctx).reply_ready((call))) {                                         \
    std::uint16_t abcl_npc = (ctx).select_try((site), &(f));                \
    if (abcl_npc != ::abcl::core::kPcBlocked) {                             \
      (f).pc = abcl_npc;                                                    \
      return std::remove_reference_t<decltype(f)>::run((ctx), (self), (f)); \
    }                                                                       \
    return (ctx).block_await_select((call), (site));                        \
  }                                                                         \
  [[fallthrough]];                                                          \
  case (label):

// Voluntary preemption point for long loops / deep recursions: spills the
// frame and round-trips the scheduling queue when the reduction budget for
// this quantum is exhausted.
#define ABCL_YIELD(ctx, f, label)       \
  (f).pc = (label);                     \
  if ((ctx).should_yield()) {           \
    return (ctx).block_yield();         \
  }                                     \
  [[fallthrough]];                      \
  case (label):
