#include "abcl/machine_api.hpp"

#include <cstdlib>
#include <string>

#include "sim/parallel_machine.hpp"
#include "util/assert.hpp"

namespace abcl {

namespace {

// WorldConfig.host_threads == 0 defers to the environment so any existing
// binary can be parallelized without a rebuild: ABCLSIM_HOST_THREADS=8.
int resolve_host_threads(int configured) {
  if (configured != 0) return configured;
  std::string err;
  std::optional<int> v =
      parse_host_threads(std::getenv("ABCLSIM_HOST_THREADS"), &err);
  ABCL_CHECK_MSG(v.has_value(), err.c_str());
  return *v;
}

// ABCLSIM_POOLING follows the same strictness discipline as
// ABCLSIM_HOST_THREADS: a typo aborts instead of silently picking a mode.
bool parse_pooling_env(const char* text) {
  if (text == nullptr || *text == '\0') return true;  // unset: pooled
  const std::string s = text;
  if (s == "1" || s == "true" || s == "on") return true;
  if (s == "0" || s == "false" || s == "off") return false;
  ABCL_CHECK_MSG(false, ("ABCLSIM_POOLING=\"" + s +
                         "\": expected 1/true/on or 0/false/off, or unset "
                         "for pooled allocation")
                            .c_str());
  return true;
}

util::QueueKind parse_queue_env(const char* text) {
  if (text == nullptr || *text == '\0') return util::QueueKind::kBucket;
  const std::string s = text;
  if (s == "bucket") return util::QueueKind::kBucket;
  if (s == "heap") return util::QueueKind::kHeap;
  ABCL_CHECK_MSG(false, ("ABCLSIM_QUEUE=\"" + s +
                         "\": expected bucket or heap, or unset for the "
                         "bucketed time queue")
                            .c_str());
  return util::QueueKind::kBucket;
}

net::FlushKind parse_flush_env(const char* text) {
  if (text == nullptr || *text == '\0') return net::FlushKind::kMerge;
  const std::string s = text;
  if (s == "merge") return net::FlushKind::kMerge;
  if (s == "sort") return net::FlushKind::kSort;
  ABCL_CHECK_MSG(false, ("ABCLSIM_FLUSH=\"" + s +
                         "\": expected merge or sort, or unset for the "
                         "k-way merge commit path")
                            .c_str());
  return net::FlushKind::kMerge;
}

}  // namespace

WorldConfig WorldConfig::from_env() {
  WorldConfig cfg;
  std::string err;
  std::optional<int> threads =
      parse_host_threads(std::getenv("ABCLSIM_HOST_THREADS"), &err);
  ABCL_CHECK_MSG(threads.has_value(), err.c_str());
  // Record the resolved decision: -1 forces serial, so constructing a World
  // from this config later never re-reads the environment.
  cfg.host_threads = *threads == 0 ? -1 : *threads;
  cfg.pooling = parse_pooling_env(std::getenv("ABCLSIM_POOLING"));
  cfg.queue = parse_queue_env(std::getenv("ABCLSIM_QUEUE"));
  cfg.flush = parse_flush_env(std::getenv("ABCLSIM_FLUSH"));
  err.clear();
  std::optional<net::FaultConfig> faults =
      net::parse_fault_spec(std::getenv("ABCLSIM_FAULTS"), &err);
  ABCL_CHECK_MSG(faults.has_value(), ("ABCLSIM_FAULTS " + err).c_str());
  cfg.faults = *faults;
  err.clear();
  std::optional<remote::MigrationConfig> mig =
      remote::parse_migration_spec(std::getenv("ABCLSIM_MIGRATION"), &err);
  ABCL_CHECK_MSG(mig.has_value(), ("ABCLSIM_MIGRATION " + err).c_str());
  cfg.migration = *mig;
  return cfg;
}

std::optional<int> parse_host_threads(const char* text, std::string* err) {
  if (text == nullptr || *text == '\0') return 0;  // unset: serial driver
  const std::string raw = text;
  std::size_t b = raw.find_first_not_of(" \t");
  std::size_t e = raw.find_last_not_of(" \t");
  auto fail = [&](const char* why) -> std::optional<int> {
    if (err != nullptr) {
      *err = "ABCLSIM_HOST_THREADS=\"" + raw + "\": " + why +
             " (expected an integer in [1, 1024], or unset for the serial "
             "driver)";
    }
    return std::nullopt;
  };
  if (b == std::string::npos) return fail("value is blank");
  const std::string s = raw.substr(b, e - b + 1);
  // atoi-style silent fallback hid typos ("8x", "eight") as thread-count 0;
  // anything but a plain positive decimal is now an error.
  if (s[0] == '-') return fail("thread count cannot be negative");
  long v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return fail("not a decimal integer");
    v = v * 10 + (ch - '0');
    if (v > 1024) return fail("thread count is implausibly large");
  }
  if (v == 0) return fail("thread count must be at least 1");
  return static_cast<int>(v);
}

World::World(core::Program& prog, WorldConfig cfg) : cfg_(cfg), prog_(&prog) {
  ABCL_CHECK_MSG(prog.finalized(), "finalize the Program before building a World");
  ABCL_CHECK(cfg_.nodes >= 1);

  net_ = std::make_unique<net::Network>(
      net::Topology(cfg_.topology, cfg_.nodes), &cfg_.cost,
      std::function<void(core::NodeId)>{}, cfg_.pooling, cfg_.queue,
      cfg_.flush, cfg_.faults);

  {
    std::string merr;
    ABCL_CHECK_MSG(remote::validate_migration_config(cfg_.migration, &merr),
                   merr.c_str());
  }

  nodes_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
    core::NodeRuntime::Config nc = cfg_.node;
    nc.seed = cfg_.seed;
    nc.pooling = cfg_.pooling;
    nc.migration = cfg_.migration;
    // The shed policy is blind without load figures: when the app enabled
    // migration but left gossip off, gossip runs at the shed interval.
    if (nc.migration.enabled && nc.gossip_interval == 0) {
      nc.gossip_interval = nc.migration.interval;
    }
    auto rt = std::make_unique<core::NodeRuntime>(i, prog, *net_, cfg_.cost, nc);
    rt->placement().set_kind(cfg_.placement);
    nodes_.push_back(std::move(rt));
  }

  std::vector<sim::NodeExec*> execs;
  execs.reserve(nodes_.size());
  for (auto& n : nodes_) execs.push_back(n.get());

  int threads = resolve_host_threads(cfg_.host_threads);
  if (threads >= 1) {
    machine_ = std::make_unique<sim::ParallelMachine>(std::move(execs),
                                                      net_.get(), threads);
    host_threads_ = threads;
  } else {
    machine_ = std::make_unique<sim::Machine>(std::move(execs), cfg_.queue);
    host_threads_ = 1;
  }

  net_->set_on_deliverable(
      [m = machine_.get()](core::NodeId dst) { m->notify_work(dst); });
}

void World::boot(core::NodeId id,
                 const std::function<void(core::NodeRuntime&)>& fn) {
  ABCL_CHECK(id >= 0 && id < cfg_.nodes);
  node(id).boot(fn);
}

RunReport World::run(sim::Instr max_time) {
  sim::Driver::RunReport r = machine_->run(max_time);
  RunReport out;
  out.sim_time = r.end_time;
  out.quanta = r.quanta;
  out.sim_ms = cfg_.cost.ms(r.end_time);
  return out;
}

void World::seed_stocks(const core::ClassInfo& cls, int depth) {
  for (auto& consumer : nodes_) {
    for (auto& producer : nodes_) {
      if (consumer.get() == producer.get()) continue;
      consumer->seed_stock_from(*producer, cls, depth);
    }
  }
}

void World::attach_tracer(sim::Tracer* tracer) {
  for (auto& n : nodes_) n->set_tracer(tracer);
}

util::Table World::utilization_table() const {
  util::Table t({"Node", "Busy (instr)", "Idle (instr)", "Utilization",
                 "Objects created", "Sched dispatches"});
  for (const auto& n : nodes_) {
    const core::NodeStats& s = n->stats();
    // busy + idle is 0 for a node that never ran a quantum (zero-quantum
    // run, or a report taken before any run()): report 0% rather than
    // dividing by zero.
    sim::Instr total = s.busy_instr + s.idle_instr;
    double util = total == 0 ? 0.0
                             : static_cast<double>(s.busy_instr) /
                                   static_cast<double>(total);
    t.add_row({std::to_string(n->node_id()), util::Table::num(s.busy_instr),
               util::Table::num(s.idle_instr),
               util::Table::num(util * 100.0, 1) + "%",
               util::Table::num(n->total_created()),
               util::Table::num(s.sched_dispatches)});
  }
  return t;
}

double World::mean_utilization() const {
  sim::Instr end = max_clock();
  if (end == 0) return 0.0;
  double sum = 0;
  for (const auto& n : nodes_) {
    sum += static_cast<double>(n->stats().busy_instr) / static_cast<double>(end);
  }
  return sum / static_cast<double>(nodes_.size());
}

core::NodeStats World::total_stats() const {
  core::NodeStats total;
  for (const auto& n : nodes_) total.merge(n->stats());
  return total;
}

util::SlabAllocator::Stats World::total_alloc_stats() const {
  util::SlabAllocator::Stats total;
  for (const auto& n : nodes_) total.merge(n->alloc_stats());
  return total;
}

std::size_t World::total_live_objects() const {
  std::size_t t = 0;
  for (const auto& n : nodes_) t += n->live_objects();
  return t;
}

std::uint64_t World::total_created_objects() const {
  std::uint64_t t = 0;
  for (const auto& n : nodes_) t += n->total_created();
  return t;
}

std::size_t World::total_heap_bytes() const {
  std::size_t t = 0;
  for (const auto& n : nodes_) t += n->heap_bytes();
  return t;
}

sim::Instr World::max_clock() const {
  sim::Instr t = 0;
  for (const auto& n : nodes_) {
    if (n->clock() > t) t = n->clock();
  }
  return t;
}

}  // namespace abcl
