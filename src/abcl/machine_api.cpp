#include "abcl/machine_api.hpp"

#include <cstdlib>
#include <string>

#include "sim/parallel_machine.hpp"
#include "util/assert.hpp"
#include "util/spec_parser.hpp"

namespace abcl {

namespace {

// WorldConfig.host_threads == 0 defers to the environment so any existing
// binary can be parallelized without a rebuild: ABCLSIM_HOST_THREADS=8.
int resolve_host_threads(int configured) {
  if (configured != 0) return configured;
  std::string err;
  std::optional<int> v =
      parse_host_threads(std::getenv("ABCLSIM_HOST_THREADS"), &err);
  ABCL_CHECK_MSG(v.has_value(), err.c_str());
  return *v;
}

// The single-word env knobs all route through util::parse_choice /
// util::choice_error, following the same strictness discipline as
// ABCLSIM_HOST_THREADS: a typo aborts instead of silently picking a mode.
bool parse_pooling_env(const char* text) {
  if (text == nullptr || *text == '\0') return true;  // unset: pooled
  std::optional<std::size_t> i =
      util::parse_choice(text, {"1", "true", "on", "0", "false", "off"});
  ABCL_CHECK_MSG(i.has_value(),
                 util::choice_error("ABCLSIM_POOLING", text,
                                    "1/true/on or 0/false/off",
                                    "pooled allocation")
                     .c_str());
  return *i < 3;
}

util::QueueKind parse_queue_env(const char* text) {
  if (text == nullptr || *text == '\0') return util::QueueKind::kBucket;
  std::optional<std::size_t> i = util::parse_choice(text, {"bucket", "heap"});
  ABCL_CHECK_MSG(i.has_value(),
                 util::choice_error("ABCLSIM_QUEUE", text, "bucket or heap",
                                    "the bucketed time queue")
                     .c_str());
  return *i == 0 ? util::QueueKind::kBucket : util::QueueKind::kHeap;
}

net::FlushKind parse_flush_env(const char* text) {
  if (text == nullptr || *text == '\0') return net::FlushKind::kMerge;
  std::optional<std::size_t> i = util::parse_choice(text, {"merge", "sort"});
  ABCL_CHECK_MSG(i.has_value(),
                 util::choice_error("ABCLSIM_FLUSH", text, "merge or sort",
                                    "the k-way merge commit path")
                     .c_str());
  return *i == 0 ? net::FlushKind::kMerge : net::FlushKind::kSort;
}

sim::HorizonKind parse_horizon_env(const char* text) {
  if (text == nullptr || *text == '\0') return sim::HorizonKind::kGlobal;
  std::optional<std::size_t> i =
      util::parse_choice(text, {"global", "distance"});
  ABCL_CHECK_MSG(i.has_value(),
                 util::choice_error("ABCLSIM_HORIZON", text,
                                    "global or distance",
                                    "the flat global window")
                     .c_str());
  return *i == 0 ? sim::HorizonKind::kGlobal : sim::HorizonKind::kDistance;
}

sim::ShardKind parse_shard_env(const char* text) {
  if (text == nullptr || *text == '\0') return sim::ShardKind::kStatic;
  std::optional<std::size_t> i =
      util::parse_choice(text, {"static", "balanced"});
  ABCL_CHECK_MSG(i.has_value(),
                 util::choice_error("ABCLSIM_SHARD", text,
                                    "static or balanced",
                                    "the static round-robin shard")
                     .c_str());
  return *i == 0 ? sim::ShardKind::kStatic : sim::ShardKind::kBalanced;
}

}  // namespace

WorldConfig WorldConfig::from_env() {
  WorldConfig cfg;
  std::string err;
  std::optional<int> threads =
      parse_host_threads(std::getenv("ABCLSIM_HOST_THREADS"), &err);
  ABCL_CHECK_MSG(threads.has_value(), err.c_str());
  // Record the resolved decision: -1 forces serial, so constructing a World
  // from this config later never re-reads the environment.
  cfg.host_threads = *threads == 0 ? -1 : *threads;
  cfg.pooling = parse_pooling_env(std::getenv("ABCLSIM_POOLING"));
  cfg.queue = parse_queue_env(std::getenv("ABCLSIM_QUEUE"));
  cfg.flush = parse_flush_env(std::getenv("ABCLSIM_FLUSH"));
  cfg.horizon = parse_horizon_env(std::getenv("ABCLSIM_HORIZON"));
  cfg.shard = parse_shard_env(std::getenv("ABCLSIM_SHARD"));
  err.clear();
  std::optional<net::FaultConfig> faults =
      net::parse_fault_spec(std::getenv("ABCLSIM_FAULTS"), &err);
  ABCL_CHECK_MSG(faults.has_value(), ("ABCLSIM_FAULTS " + err).c_str());
  cfg.faults = *faults;
  err.clear();
  std::optional<remote::MigrationConfig> mig =
      remote::parse_migration_spec(std::getenv("ABCLSIM_MIGRATION"), &err);
  ABCL_CHECK_MSG(mig.has_value(), ("ABCLSIM_MIGRATION " + err).c_str());
  cfg.migration = *mig;
  err.clear();
  std::optional<ckpt::CheckpointConfig> ck =
      ckpt::parse_checkpoint_spec(std::getenv("ABCLSIM_CHECKPOINT"), &err);
  ABCL_CHECK_MSG(ck.has_value(), ("ABCLSIM_CHECKPOINT " + err).c_str());
  cfg.ckpt = *ck;
  return cfg;
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kQuiesced: return "quiesced";
    case StopReason::kMaxTime: return "max_time";
    case StopReason::kCheckpointRequested: return "checkpoint_requested";
  }
  return "?";
}

std::optional<int> parse_host_threads(const char* text, std::string* err) {
  if (text == nullptr || *text == '\0') return 0;  // unset: serial driver
  const std::string raw = text;
  std::size_t b = raw.find_first_not_of(" \t");
  std::size_t e = raw.find_last_not_of(" \t");
  auto fail = [&](const char* why) -> std::optional<int> {
    if (err != nullptr) {
      *err = "ABCLSIM_HOST_THREADS=\"" + raw + "\": " + why +
             " (expected an integer in [1, 1024], or unset for the serial "
             "driver)";
    }
    return std::nullopt;
  };
  if (b == std::string::npos) return fail("value is blank");
  const std::string s = raw.substr(b, e - b + 1);
  // atoi-style silent fallback hid typos ("8x", "eight") as thread-count 0;
  // anything but a plain positive decimal is now an error.
  if (s[0] == '-') return fail("thread count cannot be negative");
  long v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return fail("not a decimal integer");
    v = v * 10 + (ch - '0');
    if (v > 1024) return fail("thread count is implausibly large");
  }
  if (v == 0) return fail("thread count must be at least 1");
  return static_cast<int>(v);
}

World::World(core::Program& prog, WorldConfig cfg) : cfg_(cfg), prog_(&prog) {
  ABCL_CHECK_MSG(prog.finalized(), "finalize the Program before building a World");
  ABCL_CHECK(cfg_.nodes >= 1);

  net_ = std::make_unique<net::Network>(
      net::Topology(cfg_.topology, cfg_.nodes), &cfg_.cost,
      std::function<void(core::NodeId)>{}, cfg_.pooling, cfg_.queue,
      cfg_.flush, cfg_.faults);

  {
    std::string merr;
    ABCL_CHECK_MSG(remote::validate_migration_config(cfg_.migration, &merr),
                   merr.c_str());
    ABCL_CHECK_MSG(ckpt::validate_checkpoint_config(cfg_.ckpt, &merr),
                   merr.c_str());
  }
  // Checkpointable heaps are reserved-arena slab heaps; the unpooled
  // ablation allocates from the general heap, which cannot be imaged.
  ABCL_CHECK_MSG(!cfg_.ckpt.enabled || cfg_.pooling,
                 "checkpointing requires pooling (reserved node arenas)");

  nodes_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (std::int32_t i = 0; i < cfg_.nodes; ++i) {
    core::NodeRuntime::Config nc = cfg_.node;
    nc.seed = cfg_.seed;
    nc.pooling = cfg_.pooling;
    nc.migration = cfg_.migration;
    // The shed policy is blind without load figures: when the app enabled
    // migration but left gossip off, gossip runs at the shed interval.
    if (nc.migration.enabled && nc.gossip_interval == 0) {
      nc.gossip_interval = nc.migration.interval;
    }
    // Checkpointable worlds pin every node heap at a fixed virtual base so
    // a snapshot can be restored address-faithfully (util/arena.hpp).
    nc.reserved_arena = cfg_.ckpt.enabled;
    auto rt = std::make_unique<core::NodeRuntime>(i, prog, *net_, cfg_.cost, nc);
    rt->placement().set_kind(cfg_.placement);
    nodes_.push_back(std::move(rt));
  }

  build_machine();
}

void World::build_machine() {
  std::vector<sim::NodeExec*> execs;
  execs.reserve(nodes_.size());
  for (auto& n : nodes_) execs.push_back(n.get());

  int threads = resolve_host_threads(cfg_.host_threads);
  if (threads >= 1) {
    sim::ParallelMachine::Options opts;
    opts.horizon = cfg_.horizon;
    opts.shard = cfg_.shard;
    opts.seed = cfg_.seed;
    machine_ = std::make_unique<sim::ParallelMachine>(
        std::move(execs), net_.get(), threads, opts);
    host_threads_ = threads;
  } else {
    machine_ = std::make_unique<sim::Machine>(std::move(execs), cfg_.queue);
    host_threads_ = 1;
  }

  net_->set_on_deliverable(
      [m = machine_.get()](core::NodeId dst) { m->notify_work(dst); });
}

bool World::work_remaining() const {
  if (net_->in_flight() > 0) return true;
  for (const auto& n : nodes_) {
    if (n->runnable()) return true;
  }
  return false;
}

void World::boot(core::NodeId id,
                 const std::function<void(core::NodeRuntime&)>& fn) {
  ABCL_CHECK(id >= 0 && id < cfg_.nodes);
  node(id).boot(fn);
}

RunReport World::run(sim::Instr max_time) {
  // A pending checkpoint boundary strictly before the caller's horizon
  // shortens the first driver leg; the snapshot fires once, then later
  // run() calls proceed to the caller's own limit (drivers are resumable).
  const ckpt::CheckpointConfig& ck = cfg_.ckpt;
  const bool stop_for_ckpt = ck.enabled && !ckpt_taken_ && ck.at < max_time;
  sim::Driver::RunReport r = machine_->run(stop_for_ckpt ? ck.at : max_time);
  quanta_total_ += r.quanta;

  RunReport out;
  out.quanta = r.quanta;

  bool at_ckpt_boundary = false;
  if (stop_for_ckpt) {
    ckpt_taken_ = true;
    if (ck.path.empty()) {
      // Caller-driven capture: hand control back at the boundary.
      at_ckpt_boundary = true;
    } else {
      // File checkpoints are fire-and-forget: write the snapshot at the
      // boundary, then resume to the caller's horizon inside this same
      // call — so ABCLSIM_CHECKPOINT=at=T,path=F is transparent to
      // checkpoint-unaware programs (identical results, plus a snapshot).
      ckpt::FileSink sink(ck.path);
      checkpoint(sink);
      r = machine_->run(max_time);
      quanta_total_ += r.quanta;
      out.quanta += r.quanta;
    }
  }

  out.sim_time = r.end_time;
  out.sim_ms = cfg_.cost.ms(r.end_time);
  if (at_ckpt_boundary) {
    out.stop_reason = work_remaining() ? StopReason::kCheckpointRequested
                                       : StopReason::kQuiesced;
  } else {
    out.stop_reason =
        work_remaining() ? StopReason::kMaxTime : StopReason::kQuiesced;
  }
  return out;
}

void World::seed_stocks(const core::ClassInfo& cls, int depth) {
  for (auto& consumer : nodes_) {
    for (auto& producer : nodes_) {
      if (consumer.get() == producer.get()) continue;
      consumer->seed_stock_from(*producer, cls, depth);
    }
  }
}

void World::attach_tracer(sim::Tracer* tracer) {
  for (auto& n : nodes_) n->set_tracer(tracer);
}

util::Table World::utilization_table() const {
  util::Table t({"Node", "Busy (instr)", "Idle (instr)", "Utilization",
                 "Objects created", "Sched dispatches"});
  for (const auto& n : nodes_) {
    const core::NodeStats& s = n->stats();
    // busy + idle is 0 for a node that never ran a quantum (zero-quantum
    // run, or a report taken before any run()): report 0% rather than
    // dividing by zero.
    sim::Instr total = s.busy_instr + s.idle_instr;
    double util = total == 0 ? 0.0
                             : static_cast<double>(s.busy_instr) /
                                   static_cast<double>(total);
    t.add_row({std::to_string(n->node_id()), util::Table::num(s.busy_instr),
               util::Table::num(s.idle_instr),
               util::Table::num(util * 100.0, 1) + "%",
               util::Table::num(n->total_created()),
               util::Table::num(s.sched_dispatches)});
  }
  return t;
}

double World::mean_utilization() const {
  sim::Instr end = max_clock();
  if (end == 0) return 0.0;
  double sum = 0;
  for (const auto& n : nodes_) {
    sum += static_cast<double>(n->stats().busy_instr) / static_cast<double>(end);
  }
  return sum / static_cast<double>(nodes_.size());
}

core::NodeStats World::total_stats() const {
  core::NodeStats total;
  for (const auto& n : nodes_) total.merge(n->stats());
  return total;
}

util::SlabAllocator::Stats World::total_alloc_stats() const {
  util::SlabAllocator::Stats total;
  for (const auto& n : nodes_) total.merge(n->alloc_stats());
  return total;
}

std::size_t World::total_live_objects() const {
  std::size_t t = 0;
  for (const auto& n : nodes_) t += n->live_objects();
  return t;
}

std::uint64_t World::total_created_objects() const {
  std::uint64_t t = 0;
  for (const auto& n : nodes_) t += n->total_created();
  return t;
}

std::size_t World::total_heap_bytes() const {
  std::size_t t = 0;
  for (const auto& n : nodes_) t += n->heap_bytes();
  return t;
}

sim::Instr World::max_clock() const {
  sim::Instr t = 0;
  for (const auto& n : nodes_) {
    if (n->clock() > t) t = n->clock();
  }
  return t;
}

}  // namespace abcl
