// Class registration builder — the user-facing stand-in for the ABCL
// compiler. A class is a plain C++ struct T (the state-variable box) plus
// one *frame type* per method (see core/dispatch.hpp). The builder installs
// the generated entries into the ClassInfo the multiple virtual function
// tables are built from.
//
//   struct Counter { long count = 0; };
//   struct IncFrame : abcl::Frame {
//     static void init(IncFrame&, const abcl::Msg&) {}
//     static abcl::Status run(abcl::Ctx& ctx, Counter& self, IncFrame& f);
//   };
//   ...
//   abcl::ClassDef<Counter> def(prog, "Counter");
//   def.method<IncFrame>(PAT_INC);
//
// Selective reception registers wait sites:
//
//   auto site = def.wait_site<GetFrame>();
//   def.accept<GetFrame, &GetFrame::copy_result>(site, PAT_RESULT, PC_GOT);
#pragma once

#include <string>
#include <type_traits>

#include "core/dispatch.hpp"
#include "core/program.hpp"

namespace abcl {

// Public-API aliases.
using Ctx = core::NodeRuntime;
using Msg = core::MsgView;
using Frame = core::CtxFrameBase;
using Status = core::Status;
using Word = core::Word;
using MailAddr = core::MailAddr;
using ReplyDest = core::ReplyDest;
using NowCall = core::NowCall;
using CreateCall = core::CreateCall;
using PatternId = core::PatternId;
using NodeId = core::NodeId;

template <class T>
class ClassDef {
 public:
  ClassDef(core::Program& prog, std::string name) : prog_(&prog) {
    cls_ = &prog.add_class(std::move(name));
    cls_->state_bytes = sizeof(T);
    cls_->state_align = alignof(T);
    static_assert(alignof(T) <= 16,
                  "object state must fit the 16-byte chunk alignment");
    cls_->construct = [](void* storage, const Msg& ctor_args) {
      T* t = new (storage) T();
      if constexpr (requires(T& x, const Msg& m) { x.on_create(m); }) {
        t->on_create(ctor_args);
      } else {
        (void)ctor_args;
      }
    };
    cls_->destruct = [](void* storage) { static_cast<T*>(storage)->~T(); };
  }

  // Registers FrameT as the method body for pattern `p`.
  template <class FrameT>
  ClassDef& method(PatternId p) {
    auto& methods = cls_->methods;
    if (methods.size() <= p) methods.resize(p + 1);
    ABCL_CHECK_MSG(methods[p].body == nullptr, "duplicate method for pattern");
    methods[p].body = &core::method_entry<T, FrameT>;
    methods[p].arity = prog_->patterns().info(p).arity;
    return *this;
  }

  // Declares a selective-reception site whose blocked frame is FrameT.
  // Returns the site id the method passes to ABCL_SELECT.
  template <class FrameT>
  std::int32_t wait_site() {
    auto ws = std::make_unique<core::WaitSite>();
    ws->resume = &core::resume_frame<T, FrameT>;
    cls_->wait_sites.push_back(std::move(ws));
    return static_cast<std::int32_t>(cls_->wait_sites.size() - 1);
  }

  // Adds an accepted pattern to a wait site. CopyFn lands the message's
  // arguments into the blocked frame; resume_pc is the case label the
  // method continues at.
  template <class FrameT, auto CopyFn>
  ClassDef& accept(std::int32_t site, PatternId p, std::uint16_t resume_pc) {
    ABCL_CHECK(site >= 0 &&
               static_cast<std::size_t>(site) < cls_->wait_sites.size());
    core::WaitSite& ws = *cls_->wait_sites[static_cast<std::size_t>(site)];
    ABCL_CHECK_MSG(ws.find(p) == nullptr, "pattern already accepted at site");
    ws.accepts.push_back(core::WaitSite::Accept{
        p, &copy_trampoline<FrameT, CopyFn>, resume_pc});
    return *this;
  }

  // Opts the class into live migration (remote/migration.hpp). The state
  // box travels as raw words and is never destructed at the old home, so
  // the compile-time contract is: trivially copyable, trivially
  // destructible, and (by author discipline, not checkable here) no
  // node-local resources — pointers to frames, boxes or peer objects'
  // heaps — held in state or blocked frames across a wait site.
  ClassDef& migratable() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "migratable state must be trivially copyable (it ships as "
                  "raw words)");
    static_assert(std::is_trivially_destructible_v<T>,
                  "migratable state must be trivially destructible (the old "
                  "home never runs the destructor after shipping)");
    cls_->migratable = true;
    // The ClassDef ctor installs a destructor call unconditionally; a
    // trivially-destructible T makes it a no-op, and dropping it keeps the
    // shipped-away stale copy from being "destroyed" at node teardown.
    cls_->destruct = nullptr;
    return *this;
  }

  core::ClassInfo& info() { return *cls_; }
  const core::ClassInfo& info() const { return *cls_; }

 private:
  template <class FrameT, auto CopyFn>
  static void copy_trampoline(void* frame, const Msg& m) {
    CopyFn(*static_cast<FrameT*>(frame), m);
  }

  core::Program* prog_;
  core::ClassInfo* cls_;
};

}  // namespace abcl
