// Deterministic world snapshots: stream framing and integrity.
//
// A snapshot is a versioned binary image of the entire simulated world,
// captured between driver runs (a quantum boundary, where all state is a
// pure function of simulated history — no worker outboxes, no half-run
// windows, no host artifacts). The format is same-process, same-platform by
// design: checkpointable worlds place every node heap in a fixed-base
// reserved arena (util/arena.hpp), the snapshot carries the raw arena
// images, and restore re-maps them at their recorded bases — so every
// pointer embedded in simulated state (frame links, freelists, MailAddrs
// inside opaque user payloads) stays valid verbatim. Handler and pattern
// ids are validated against the restoring Program via a fingerprint; code
// pointers (vftps, entry functions) are process pointers and require the
// same finalized Program, exactly like live migration's resume_entry words.
//
// Integrity contract ("never a partial world"): Reader drains the whole
// stream and verifies magic, version, fingerprint, length and checksum
// before a single field is handed to the deserializers. A truncated or
// corrupted snapshot dies with a "checkpoint restore:" diagnostic; it can
// not leave a half-built World behind.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace abcl::ckpt {

// "ABCLCKPT" little-endian; bump kVersion on any layout change.
inline constexpr std::uint64_t kMagic = 0x54504b434c434241ull;
inline constexpr std::uint32_t kVersion = 2;

// ---------------------------------------------------------------------------
// Byte transport
// ---------------------------------------------------------------------------

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const void* p, std::size_t n) = 0;
};

class Source {
 public:
  virtual ~Source() = default;
  // Returns bytes actually read; < n means end of stream.
  virtual std::size_t read(void* p, std::size_t n) = 0;
};

class MemSink : public Sink {
 public:
  void write(const void* p, std::size_t n) override {
    bytes_.append(static_cast<const char*>(p), n);
  }
  const std::string& bytes() const { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

class MemSource : public Source {
 public:
  explicit MemSource(std::string bytes) : bytes_(std::move(bytes)) {}
  std::size_t read(void* p, std::size_t n) override {
    std::size_t take = bytes_.size() - pos_ < n ? bytes_.size() - pos_ : n;
    std::memcpy(p, bytes_.data() + pos_, take);
    pos_ += take;
    return take;
  }

 private:
  std::string bytes_;
  std::size_t pos_ = 0;
};

// File variants die with a diagnostic on I/O errors (a checkpoint that
// silently wrote nothing is worse than no checkpoint).
class FileSink : public Sink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(const void* p, std::size_t n) override;

 private:
  void* f_;
  std::string path_;
};

class FileSource : public Source {
 public:
  explicit FileSource(const std::string& path);
  ~FileSource() override;
  std::size_t read(void* p, std::size_t n) override;

 private:
  void* f_;
};

// ---------------------------------------------------------------------------
// Framed writer / reader
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const void* p, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ull);

class Writer {
 public:
  void u32(std::uint32_t v) { raw(v); }
  void u64(std::uint64_t v) { raw(v); }
  void i64(std::int64_t v) { raw(v); }
  void b(bool v) { raw(static_cast<std::uint8_t>(v ? 1 : 0)); }
  template <class T>
  void raw(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof v);
  }
  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  // Emits header (magic, version, fingerprint, payload length, checksum)
  // followed by the payload.
  void finish(std::uint64_t program_fingerprint, Sink& sink) const;

 private:
  std::string buf_;
};

class Reader {
 public:
  // Drains `src` and verifies the full frame up front (see file comment).
  Reader(Source& src, std::uint64_t program_fingerprint);

  std::uint32_t u32() { return raw<std::uint32_t>(); }
  std::uint64_t u64() { return raw<std::uint64_t>(); }
  std::int64_t i64() { return raw<std::int64_t>(); }
  bool b() { return raw<std::uint8_t>() != 0; }
  template <class T>
  T raw() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    bytes(&v, sizeof v);
    return v;
  }
  // Bytewise restore into the exact object save() serialized from. Structs
  // with padding (has_unique_object_representations_v == false) MUST be
  // loaded this way, not via `x = r.raw<T>()`: assigning a
  // trivially-copyable temporary is not guaranteed to copy padding bytes,
  // and a recapture of the restored world would then differ from the
  // original snapshot in indeterminate padding (seen as ASan's 0xbe fill).
  template <class T>
  void raw_into(T& dst) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&dst, sizeof dst);
  }
  void bytes(void* p, std::size_t n) {
    std::memcpy(p, view(n), n);
  }
  // Zero-copy window into the payload (arena images).
  const void* view(std::size_t n) {
    ABCL_CHECK_MSG(payload_.size() - pos_ >= n,
                   "checkpoint restore: truncated stream (payload section "
                   "shorter than its own framing)");
    const void* p = payload_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::string str() {
    std::uint64_t n = u64();
    ABCL_CHECK_MSG(n <= payload_.size() - pos_,
                   "checkpoint restore: truncated stream (payload section "
                   "shorter than its own framing)");
    std::string s(static_cast<const char*>(view(n)), n);
    return s;
  }
  // Every byte must be consumed: trailing garbage means reader and writer
  // disagree about the layout.
  void expect_end() const {
    ABCL_CHECK_MSG(pos_ == payload_.size(),
                   "checkpoint restore: trailing bytes after the last "
                   "section (layout mismatch)");
  }

 private:
  std::string payload_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// ABCLSIM_CHECKPOINT — "at=T[,path=FILE]" or "off"
// ---------------------------------------------------------------------------

struct CheckpointConfig {
  bool enabled = false;
  sim::Instr at = 0;  // simulated boundary where run() stops and captures
  std::string path;   // snapshot destination; empty = caller-driven capture

  bool operator==(const CheckpointConfig&) const = default;
};

bool validate_checkpoint_config(const CheckpointConfig& cfg, std::string* err);

// Strict parser behind ABCLSIM_CHECKPOINT (util::SpecParser grammar).
// nullptr / empty / "off" -> disabled. Garbage never silently disables.
std::optional<CheckpointConfig> parse_checkpoint_spec(const char* text,
                                                      std::string* err);

// Canonical rendering; parse_checkpoint_spec(to_string(cfg)) round-trips.
std::string to_string(const CheckpointConfig& cfg);

// The restore half of World::checkpoint lives on World itself
// (abcl/machine_api.hpp); WorldIo is the serializer with friend access to
// the runtime's internals (src/ckpt/world_io.cpp).
struct WorldIo;

}  // namespace abcl::ckpt
