// WorldIo: the checkpoint serializer (the friend the runtime headers
// forward-declare).
//
// Capture happens only between driver runs — a quantum boundary — where the
// world is a pure function of simulated history: no worker outboxes, no
// mid-quantum dispatch state, no half-advanced windows. The snapshot then
// decomposes into
//   (a) raw arena images: each node heap lives in a fixed-base reserved
//       arena (util/arena.hpp), so objects, frames, reply boxes, chunks and
//       every pointer among them are restored verbatim by re-mapping the
//       arena at its recorded base and memcpy-ing the image back; and
//   (b) a logical serialization of everything that lives outside the
//       arenas: node scalars and stats, the scheduler FIFO (relinked in
//       saved order), slab freelist heads, chunk stocks, gossip maps,
//       migration directories, network queues (packets re-acquire fresh
//       pool slots; their payload words — which may embed arena pointers —
//       stay valid because of (a)), channel floors/seqs and the fault
//       layer's dedup windows.
//
// Canonical order: every unordered container is written sorted by its key,
// so two checkpoints of identical simulated states are byte-identical.
// Code pointers (vftps, entry functions, resume entries) are process
// pointers; the restoring Program is validated via a fingerprint over its
// handler registry, exactly the contract live migration already relies on
// when it ships resume entries as raw words.
#include <algorithm>
#include <cstring>
#include <vector>

#include "abcl/machine_api.hpp"
#include "ckpt/snapshot.hpp"

namespace abcl::ckpt {

namespace {

std::uint64_t ptr_word(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}

template <class T>
T* word_ptr(std::uint64_t w) {
  return reinterpret_cast<T*>(w);
}

}  // namespace

struct WorldIo {
  // FNV over the active-message handler registry: count, names, categories.
  // Handler names embed every pattern, class and size class ("msg:acc",
  // "create:Counter", "replenish:3"), and ids are positional, so a matching
  // fingerprint means every handler/pattern id in the snapshot dereferences
  // to the same specialized procedure in the restoring process.
  static std::uint64_t fingerprint(const core::Program& prog) {
    const net::AmRegistry& am = prog.am();
    std::uint64_t n = am.size();
    std::uint64_t h = fnv1a(&n, sizeof n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const net::AmRegistry::Entry& e =
          am.entry(static_cast<net::HandlerId>(i));
      h = fnv1a(e.name.data(), e.name.size(), h);
      auto cat = static_cast<std::uint8_t>(e.category);
      h = fnv1a(&cat, sizeof cat, h);
    }
    return h;
  }

  // ----- whole world -------------------------------------------------------

  static void save(Writer& w, const World& world) {
    const WorldConfig& cfg = world.cfg_;
    w.u32(static_cast<std::uint32_t>(cfg.nodes));
    w.u32(static_cast<std::uint32_t>(cfg.topology));
    w.raw(cfg.cost);
    w.raw(cfg.node);
    w.u32(static_cast<std::uint32_t>(cfg.placement));
    w.u64(cfg.seed);
    w.i64(cfg.host_threads);
    w.b(cfg.pooling);
    w.u32(static_cast<std::uint32_t>(cfg.queue));
    w.u32(static_cast<std::uint32_t>(cfg.flush));
    w.raw(cfg.faults);
    w.raw(cfg.migration);
    w.b(cfg.ckpt.enabled);
    w.u64(cfg.ckpt.at);
    w.str(cfg.ckpt.path);
    // Driver policy knobs: purely host-side (results never depend on them),
    // but carried so a restored world keeps the run's configured policy when
    // the restoring caller doesn't override it. The parallel driver rebuilds
    // every derived structure (horizon map, balancer state) from scratch on
    // construction, so nothing else needs saving.
    w.u32(static_cast<std::uint32_t>(cfg.horizon));
    w.u32(static_cast<std::uint32_t>(cfg.shard));
    w.u64(world.quanta_total_);

    save_network(w, *world.net_);
    for (const auto& n : world.nodes_) save_node(w, *n);
  }

  static void load(Reader& r, World& world, int host_threads_override) {
    WorldConfig& cfg = world.cfg_;
    cfg.nodes = static_cast<std::int32_t>(r.u32());
    ABCL_CHECK_MSG(cfg.nodes >= 1,
                   "checkpoint restore: snapshot carries no nodes");
    cfg.topology = static_cast<net::TopologyKind>(r.u32());
    r.raw_into(cfg.cost);
    r.raw_into(cfg.node);
    cfg.placement = static_cast<remote::PlacementKind>(r.u32());
    cfg.seed = r.u64();
    cfg.host_threads = static_cast<int>(r.i64());
    cfg.pooling = r.b();
    cfg.queue = static_cast<util::QueueKind>(r.u32());
    cfg.flush = static_cast<net::FlushKind>(r.u32());
    r.raw_into(cfg.faults);
    r.raw_into(cfg.migration);
    cfg.ckpt.enabled = r.b();
    cfg.ckpt.at = r.u64();
    cfg.ckpt.path = r.str();
    cfg.horizon = static_cast<sim::HorizonKind>(r.u32());
    cfg.shard = static_cast<sim::ShardKind>(r.u32());
    if (host_threads_override != 0) cfg.host_threads = host_threads_override;
    world.quanta_total_ = r.u64();
    world.resumed_quanta_ = world.quanta_total_;
    // The snapshot's own boundary already fired; a restored world resumes
    // straight to its caller's horizon instead of re-stopping at cfg.ckpt.at
    // (which is in its past).
    world.ckpt_taken_ = true;

    world.net_ = std::make_unique<net::Network>(
        net::Topology(cfg.topology, cfg.nodes), &cfg.cost,
        std::function<void(core::NodeId)>{}, cfg.pooling, cfg.queue,
        cfg.flush, cfg.faults);
    load_network(r, *world.net_);

    world.nodes_.reserve(static_cast<std::size_t>(cfg.nodes));
    for (std::int32_t i = 0; i < cfg.nodes; ++i) {
      // Mirrors World's normal per-node config derivation, then pins the
      // arena at the recorded base.
      core::NodeRuntime::Config nc = cfg.node;
      nc.seed = cfg.seed;
      nc.pooling = cfg.pooling;
      nc.migration = cfg.migration;
      if (nc.migration.enabled && nc.gossip_interval == 0) {
        nc.gossip_interval = nc.migration.interval;
      }
      nc.reserved_arena = true;
      world.nodes_.push_back(load_node(r, i, *world.prog_, *world.net_,
                                       cfg.cost, nc));
      world.nodes_.back()->placement().set_kind(cfg.placement);
    }

    world.build_machine();
  }

  // ----- network -----------------------------------------------------------

  static void save_network(Writer& w, const net::Network& n) {
    // Boundary invariants: no worker redirects installed, no flush running.
    ABCL_CHECK_MSG(!n.flush_active_,
                   "checkpoint: capture attempted mid-flush");
    for (const net::Network::Outbox* ob : n.outboxes_) {
      ABCL_CHECK_MSG(ob == nullptr,
                     "checkpoint: capture attempted with worker outboxes "
                     "installed (mid-run)");
    }

    w.raw(n.stats_);
    for (std::uint64_t s : n.src_seq_) w.u64(s);
    save_channel_words(w, n.use_matrix_, n.channel_matrix_, n.channel_map_);

    // Per-destination queues in canonical (arrive, src, seq) order. The
    // 24-byte queue entries are reconstructed from the packets themselves
    // (enqueue stamps arrive_time into the slot).
    std::vector<net::Network::QueuedPacket> entries;
    for (const auto& q : n.queues_) {
      entries.clear();
      q.for_each([&entries](const net::Network::QueuedPacket& e) {
        entries.push_back(e);
      });
      std::sort(entries.begin(), entries.end(),
                [](const net::Network::QueuedPacket& a,
                   const net::Network::QueuedPacket& b) {
                  return net::Network::PacketOrder{}(a, b);
                });
      w.u64(entries.size());
      for (const net::Network::QueuedPacket& e : entries) w.raw(*e.slot);
    }

    if (n.fault_plan_ != nullptr) {
      w.raw(n.fault_commit_);
      save_channel_words(w, n.use_matrix_, n.link_seq_matrix_, n.link_seq_map_);
      for (const net::Network::DstFaultState& st : n.dst_fault_) {
        w.u64(st.delivered);
        w.u64(st.dup_suppressed);
        std::vector<std::int32_t> srcs;
        srcs.reserve(st.windows.size());
        for (const auto& [src, win] : st.windows) srcs.push_back(src);
        std::sort(srcs.begin(), srcs.end());
        w.u64(srcs.size());
        for (std::int32_t src : srcs) {
          const net::DedupWindow& win = st.windows.at(src);
          w.u32(static_cast<std::uint32_t>(src));
          w.u64(win.base_);
          w.u64(win.bits_);
          w.u64(win.far_.size());
          for (std::uint64_t s : win.far_) w.u64(s);  // std::set: sorted
        }
      }
    }
  }

  static void load_network(Reader& r, net::Network& n) {
    r.raw_into(n.stats_);
    for (std::uint64_t& s : n.src_seq_) s = r.u64();
    load_channel_words(r, n.use_matrix_, n.channel_matrix_, n.channel_map_);

    std::uint64_t total = 0;
    for (std::size_t dst = 0; dst < n.queues_.size(); ++dst) {
      std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        net::Packet* slot = n.pool_.acquire(n.home_mag_);
        r.raw_into(*slot);
        n.queues_[dst].push(net::Network::QueuedPacket{
            slot->arrive_time, slot->src, slot->seq, slot});
      }
      total += count;
    }
    n.in_flight_.store(total, std::memory_order_relaxed);

    if (n.fault_plan_ != nullptr) {
      r.raw_into(n.fault_commit_);
      load_channel_words(r, n.use_matrix_, n.link_seq_matrix_, n.link_seq_map_);
      for (net::Network::DstFaultState& st : n.dst_fault_) {
        st.delivered = r.u64();
        st.dup_suppressed = r.u64();
        std::uint64_t nwin = r.u64();
        for (std::uint64_t i = 0; i < nwin; ++i) {
          auto src = static_cast<std::int32_t>(r.u32());
          net::DedupWindow& win = st.windows[src];
          win.base_ = r.u64();
          win.bits_ = r.u64();
          std::uint64_t nfar = r.u64();
          for (std::uint64_t j = 0; j < nfar; ++j) win.far_.insert(r.u64());
        }
      }
    }
  }

  // Channel-indexed word state (arrival floors, link seqs): flat matrix on
  // small machines, sorted (key, value) pairs above the matrix threshold.
  template <class V>
  static void save_channel_words(
      Writer& w, bool use_matrix, const std::vector<V>& matrix,
      const std::unordered_map<std::uint64_t, V>& map) {
    if (use_matrix) {
      w.bytes(matrix.data(), matrix.size() * sizeof(V));
      return;
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(map.size());
    for (const auto& [k, v] : map) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t k : keys) {
      w.u64(k);
      w.u64(static_cast<std::uint64_t>(map.at(k)));
    }
  }

  template <class V>
  static void load_channel_words(Reader& r, bool use_matrix,
                                 std::vector<V>& matrix,
                                 std::unordered_map<std::uint64_t, V>& map) {
    if (use_matrix) {
      r.bytes(matrix.data(), matrix.size() * sizeof(V));
      return;
    }
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t k = r.u64();
      map[k] = static_cast<V>(r.u64());
    }
  }

  // ----- one node ----------------------------------------------------------

  static void save_node(Writer& w, const core::NodeRuntime& rt) {
    // Boundary invariants: nothing mid-dispatch.
    ABCL_CHECK_MSG(rt.cur_obj_ == nullptr && rt.call_depth_ == 0,
                   "checkpoint: capture attempted mid-quantum");
    ABCL_CHECK_MSG(rt.block_reason_.kind ==
                       core::NodeRuntime::BlockReason::Kind::kNone,
                   "checkpoint: capture attempted with a block in progress");
    ABCL_CHECK_MSG(rt.arena_.reserved(),
                   "checkpoint: node heap is not a reserved arena");

    // Raw heap image (see file comment). view()-restored, so the image is
    // the one genuinely large section and is never copied twice.
    w.u64(rt.arena_.base());
    w.u64(rt.arena_.used());
    w.u64(rt.arena_.bytes_allocated());
    w.bytes(word_ptr<const void>(rt.arena_.base()), rt.arena_.used());

    w.u64(rt.clock_);
    w.u64(rt.quanta_run_);
    w.u64(rt.total_created_);
    w.u64(rt.live_objects_);
    w.u64(ptr_word(rt.live_head_));
    w.raw(rt.stats_);
    w.raw(rt.rng_);

    // Slab allocator: freelist chains live inside the arena image; only the
    // per-class heads and bump cursors live out here.
    ABCL_CHECK_MSG(rt.pool_.heap_head_ == nullptr,
                   "checkpoint: unpooled heap blocks present");
    for (std::size_t c = 0; c < util::SlabAllocator::kNumClasses; ++c) {
      w.u64(ptr_word(rt.pool_.free_[c]));
      w.u64(ptr_word(rt.pool_.fresh_[c]));
      w.u64(rt.pool_.fresh_left_[c]);
    }
    w.raw(rt.pool_.stats_);

    // Scheduling FIFO, head to tail (relinked in this order on restore).
    w.u64(rt.sched_.size());
    rt.sched_.for_each(
        [&w](const core::ObjectHeader& o) { w.u64(ptr_word(&o)); });

    save_stock(w, rt.stock_);
    save_loads(w, rt.loads_);
    w.u32(rt.placement_.cursor_);
    save_migration(w, rt);
  }

  static std::unique_ptr<core::NodeRuntime> load_node(
      Reader& r, core::NodeId id, core::Program& prog, net::Network& net,
      const sim::CostModel& cm, core::NodeRuntime::Config nc) {
    std::uint64_t base = r.u64();
    std::uint64_t used = r.u64();
    std::uint64_t ballo = r.u64();
    const void* image = r.view(used);
    nc.arena_base = base;
    auto rt = std::make_unique<core::NodeRuntime>(id, prog, net, cm, nc);
    rt->arena_.restore_image(image, used, ballo);

    rt->clock_ = r.u64();
    // A restored quantum starts exactly at the restored clock: the budget
    // accounting continues as if the run had never stopped.
    rt->quantum_start_clock_ = rt->clock_;
    rt->quanta_run_ = r.u64();
    rt->total_created_ = r.u64();
    rt->live_objects_ = r.u64();
    rt->live_head_ = word_ptr<core::ObjectHeader>(r.u64());
    r.raw_into(rt->stats_);
    r.raw_into(rt->rng_);

    for (std::size_t c = 0; c < util::SlabAllocator::kNumClasses; ++c) {
      rt->pool_.free_[c] =
          word_ptr<util::SlabAllocator::FreeNode>(r.u64());
      rt->pool_.fresh_[c] = word_ptr<std::byte>(r.u64());
      rt->pool_.fresh_left_[c] = r.u64();
    }
    r.raw_into(rt->pool_.stats_);

    std::uint64_t nsched = r.u64();
    for (std::uint64_t i = 0; i < nsched; ++i) {
      rt->sched_.ckpt_relink_tail(word_ptr<core::ObjectHeader>(r.u64()));
    }

    load_stock(r, rt->stock_);
    load_loads(r, rt->loads_);
    rt->placement_.cursor_ = r.u32();
    load_migration(r, *rt);
    return rt;
  }

  // ----- node components ---------------------------------------------------

  static void save_stock(Writer& w, const remote::ChunkStock& s) {
    std::vector<std::uint64_t> keys;
    keys.reserve(s.stocks_.size());
    for (const auto& [k, v] : s.stocks_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t k : keys) {
      const auto& chunks = s.stocks_.at(k);
      w.u64(k);
      w.u64(chunks.size());
      for (const core::ObjectHeader* c : chunks) w.u64(ptr_word(c));
    }
    keys.clear();
    for (const auto& [k, v] : s.pending_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t k : keys) {
      w.u64(k);
      w.u64(s.pending_.at(k));
    }
    w.raw(s.stats_);
  }

  static void load_stock(Reader& r, remote::ChunkStock& s) {
    std::uint64_t nstocks = r.u64();
    for (std::uint64_t i = 0; i < nstocks; ++i) {
      std::uint64_t k = r.u64();
      std::uint64_t depth = r.u64();
      auto& vec = s.stocks_[k];
      vec.reserve(depth);
      for (std::uint64_t j = 0; j < depth; ++j) {
        vec.push_back(word_ptr<core::ObjectHeader>(r.u64()));
      }
    }
    std::uint64_t npend = r.u64();
    for (std::uint64_t i = 0; i < npend; ++i) {
      std::uint64_t k = r.u64();
      s.pending_[k] = r.u64();
    }
    r.raw_into(s.stats_);
  }

  static void save_loads(Writer& w, const remote::LoadMap& m) {
    std::vector<core::NodeId> keys;
    keys.reserve(m.loads_.size());
    for (const auto& [k, v] : m.loads_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (core::NodeId k : keys) {
      const remote::LoadMap::Entry& e = m.loads_.at(k);
      w.u32(static_cast<std::uint32_t>(k));
      w.u32(e.load);
      w.u64(e.stamp);
    }
  }

  static void load_loads(Reader& r, remote::LoadMap& m) {
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      auto peer = static_cast<core::NodeId>(r.u32());
      remote::LoadMap::Entry e;
      e.load = r.u32();
      e.stamp = r.u64();
      m.loads_[peer] = e;
    }
  }

  // Migration directories: all keyed by header/pointer words, iterated here
  // in sorted key order (the runtime itself never iterates them).
  static void save_migration(Writer& w, const core::NodeRuntime& rt) {
    // stubs_
    {
      std::vector<std::uint64_t> keys = sorted_ptr_keys(rt.stubs_);
      w.u64(keys.size());
      for (std::uint64_t k : keys) {
        const core::NodeRuntime::StubInfo& si =
            rt.stubs_.at(word_ptr<core::ObjectHeader>(k));
        w.u64(k);
        w.raw(si.fwd);
        w.u32(si.fwd_epoch);
        w.u64(si.parked.size());
        for (const auto& pm : si.parked) w.raw(pm);
      }
    }
    // redirects_
    {
      std::vector<std::uint64_t> keys = sorted_word_keys(rt.redirects_);
      w.u64(keys.size());
      for (std::uint64_t k : keys) {
        const core::NodeRuntime::RedirectEntry& re = rt.redirects_.at(k);
        w.u64(k);
        w.raw(re.fwd);
        w.u32(re.epoch);
        w.b(re.flushing);
        w.u64(re.held.size());
        for (const auto& hm : re.held) w.raw(hm);
      }
    }
    // inbound_
    {
      std::vector<std::uint64_t> keys = sorted_word_keys(rt.inbound_);
      w.u64(keys.size());
      for (std::uint64_t k : keys) {
        const core::NodeRuntime::InboundMigration& in = rt.inbound_.at(k);
        w.u64(k);
        w.b(in.have_start);
        w.u32(in.cls_id);
        w.u32(in.flags);
        w.u32(in.epoch);
        w.i64(in.wait_site);
        w.u32(in.blob_words);
        w.u32(in.received_words);
        w.u32(static_cast<std::uint32_t>(in.src));
        w.u64(in.priors.size());
        for (const auto& a : in.priors) w.raw(a);
        w.u64(in.blob.size());
        for (core::Word word : in.blob) w.u64(word);
      }
    }
    // migrated_meta_
    {
      std::vector<std::uint64_t> keys = sorted_ptr_keys(rt.migrated_meta_);
      w.u64(keys.size());
      for (std::uint64_t k : keys) {
        const core::NodeRuntime::MigratedMeta& mm =
            rt.migrated_meta_.at(word_ptr<core::ObjectHeader>(k));
        w.u64(k);
        w.u32(mm.epoch);
        w.u64(mm.priors.size());
        for (const auto& a : mm.priors) w.raw(a);
      }
    }
  }

  static void load_migration(Reader& r, core::NodeRuntime& rt) {
    {
      std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        auto* key = word_ptr<core::ObjectHeader>(r.u64());
        core::NodeRuntime::StubInfo si;
        r.raw_into(si.fwd);
        si.fwd_epoch = r.u32();
        std::uint64_t nparked = r.u64();
        si.parked.reserve(nparked);
        for (std::uint64_t j = 0; j < nparked; ++j) {
          r.raw_into(si.parked.emplace_back());
        }
        rt.stubs_.emplace(key, std::move(si));
      }
    }
    {
      std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        core::Word key = r.u64();
        core::NodeRuntime::RedirectEntry re;
        r.raw_into(re.fwd);
        re.epoch = r.u32();
        re.flushing = r.b();
        std::uint64_t nheld = r.u64();
        re.held.reserve(nheld);
        for (std::uint64_t j = 0; j < nheld; ++j) {
          r.raw_into(re.held.emplace_back());
        }
        rt.redirects_.emplace(key, std::move(re));
      }
    }
    {
      std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        core::Word key = r.u64();
        core::NodeRuntime::InboundMigration in;
        in.have_start = r.b();
        in.cls_id = static_cast<core::ClassId>(r.u32());
        in.flags = r.u32();
        in.epoch = r.u32();
        in.wait_site = r.i64();
        in.blob_words = r.u32();
        in.received_words = r.u32();
        in.src = static_cast<core::NodeId>(r.u32());
        std::uint64_t npriors = r.u64();
        in.priors.reserve(npriors);
        for (std::uint64_t j = 0; j < npriors; ++j) {
          r.raw_into(in.priors.emplace_back());
        }
        std::uint64_t nblob = r.u64();
        in.blob.reserve(nblob);
        for (std::uint64_t j = 0; j < nblob; ++j) in.blob.push_back(r.u64());
        rt.inbound_.emplace(key, std::move(in));
      }
    }
    {
      std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        auto* key = word_ptr<core::ObjectHeader>(r.u64());
        core::NodeRuntime::MigratedMeta mm;
        mm.epoch = r.u32();
        std::uint64_t npriors = r.u64();
        mm.priors.reserve(npriors);
        for (std::uint64_t j = 0; j < npriors; ++j) {
          r.raw_into(mm.priors.emplace_back());
        }
        rt.migrated_meta_.emplace(key, std::move(mm));
      }
    }
  }

  template <class Map>
  static std::vector<std::uint64_t> sorted_ptr_keys(const Map& m) {
    std::vector<std::uint64_t> keys;
    keys.reserve(m.size());
    for (const auto& [k, v] : m) keys.push_back(ptr_word(k));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  template <class Map>
  static std::vector<std::uint64_t> sorted_word_keys(const Map& m) {
    std::vector<std::uint64_t> keys;
    keys.reserve(m.size());
    for (const auto& [k, v] : m) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  }
};

}  // namespace abcl::ckpt

namespace abcl {

void World::checkpoint(ckpt::Sink& sink) const {
  ABCL_CHECK_MSG(cfg_.ckpt.enabled,
                 "checkpoint(): world was not built with checkpointing "
                 "enabled (WorldConfig::ckpt / ABCLSIM_CHECKPOINT)");
  ckpt::Writer w;
  ckpt::WorldIo::save(w, *this);
  w.finish(ckpt::WorldIo::fingerprint(*prog_), sink);
}

std::unique_ptr<World> World::restore(core::Program& prog, ckpt::Source& src,
                                      int host_threads_override) {
  ABCL_CHECK_MSG(prog.finalized(),
                 "checkpoint restore: finalize the Program first");
  ckpt::Reader r(src, ckpt::WorldIo::fingerprint(prog));
  std::unique_ptr<World> w(new World(RestoreTag{}, prog));
  ckpt::WorldIo::load(r, *w, host_threads_override);
  r.expect_end();
  return w;
}

}  // namespace abcl
