#include "ckpt/snapshot.hpp"

#include <cstdio>

#include "util/spec_parser.hpp"

namespace abcl::ckpt {

// ---------------------------------------------------------------------------
// File transport
// ---------------------------------------------------------------------------

FileSink::FileSink(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  ABCL_CHECK_MSG(f_ != nullptr,
                 ("checkpoint: cannot open \"" + path + "\" for writing").c_str());
}

FileSink::~FileSink() {
  if (f_ != nullptr) std::fclose(static_cast<std::FILE*>(f_));
}

void FileSink::write(const void* p, std::size_t n) {
  std::size_t w = std::fwrite(p, 1, n, static_cast<std::FILE*>(f_));
  ABCL_CHECK_MSG(w == n,
                 ("checkpoint: short write to \"" + path_ + "\"").c_str());
}

FileSource::FileSource(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  ABCL_CHECK_MSG(f_ != nullptr,
                 ("checkpoint restore: cannot open \"" + path + "\"").c_str());
}

FileSource::~FileSource() {
  if (f_ != nullptr) std::fclose(static_cast<std::FILE*>(f_));
}

std::size_t FileSource::read(void* p, std::size_t n) {
  return std::fread(p, 1, n, static_cast<std::FILE*>(f_));
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const void* p, std::size_t n, std::uint64_t h) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

struct Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t fingerprint;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
};
static_assert(std::is_trivially_copyable_v<Header> && sizeof(Header) == 40);

}  // namespace

void Writer::finish(std::uint64_t program_fingerprint, Sink& sink) const {
  Header h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.reserved = 0;
  h.fingerprint = program_fingerprint;
  h.payload_bytes = buf_.size();
  h.checksum = fnv1a(buf_.data(), buf_.size());
  sink.write(&h, sizeof h);
  sink.write(buf_.data(), buf_.size());
}

Reader::Reader(Source& src, std::uint64_t program_fingerprint) {
  Header h{};
  std::size_t got = src.read(&h, sizeof h);
  ABCL_CHECK_MSG(got == sizeof h,
                 "checkpoint restore: truncated stream (shorter than the "
                 "snapshot header)");
  ABCL_CHECK_MSG(h.magic == kMagic,
                 "checkpoint restore: bad magic (not an abclsim snapshot?)");
  ABCL_CHECK_MSG(
      h.version == kVersion,
      ("checkpoint restore: snapshot version " + std::to_string(h.version) +
       ", this binary reads version " + std::to_string(kVersion))
          .c_str());
  ABCL_CHECK_MSG(h.fingerprint == program_fingerprint,
                 "checkpoint restore: program fingerprint mismatch (snapshot "
                 "was taken under a different Program)");
  payload_.resize(h.payload_bytes);
  got = src.read(payload_.data(), payload_.size());
  ABCL_CHECK_MSG(got == payload_.size(),
                 "checkpoint restore: truncated stream (payload shorter than "
                 "the header claims)");
  // Reject trailing bytes too: an appended stream is not the stream that
  // was checksummed.
  char extra;
  ABCL_CHECK_MSG(src.read(&extra, 1) == 0,
                 "checkpoint restore: trailing bytes after the snapshot");
  ABCL_CHECK_MSG(fnv1a(payload_.data(), payload_.size()) == h.checksum,
                 "checkpoint restore: checksum mismatch (corrupt snapshot)");
}

// ---------------------------------------------------------------------------
// ABCLSIM_CHECKPOINT
// ---------------------------------------------------------------------------

bool validate_checkpoint_config(const CheckpointConfig& cfg, std::string* err) {
  if (!cfg.enabled) return true;
  if (cfg.at < 1) {
    if (err != nullptr) {
      *err = "checkpoint config: at must be >= 1 (a simulated-time boundary)";
    }
    return false;
  }
  return true;
}

std::optional<CheckpointConfig> parse_checkpoint_spec(const char* text,
                                                      std::string* err) {
  CheckpointConfig cfg;
  if (util::spec_off(text)) return cfg;  // unset or "off": no checkpoint
  const std::string raw = text;
  auto fail = [&](const std::string& why) -> std::optional<CheckpointConfig> {
    if (err != nullptr) {
      *err = util::spec_error("checkpoint spec", raw, why,
                              "expected comma-separated at=T[,path=FILE]");
    }
    return std::nullopt;
  };
  cfg.enabled = true;

  util::SpecParser p;
  p.u64("at", &cfg.at).str("path", &cfg.path);
  std::string why;
  if (!p.run(raw, &why)) return fail(why);

  std::string verr;
  if (!validate_checkpoint_config(cfg, &verr)) return fail(verr);
  return cfg;
}

std::string to_string(const CheckpointConfig& cfg) {
  if (!cfg.enabled) return "off";
  std::string out = "at=" + std::to_string(cfg.at);
  if (!cfg.path.empty()) out += ",path=" + cfg.path;
  return out;
}

}  // namespace abcl::ckpt
