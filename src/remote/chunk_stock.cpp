#include "remote/chunk_stock.hpp"

// Header-only implementation; this TU anchors the component in the library.
namespace abcl::remote {}
