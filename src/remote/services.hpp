// Category-4 services (Section 5.1): node-local bookkeeping for the
// miscellaneous remote services — currently the load-gossip map used by the
// least-loaded placement policy. Global GC and object migration, which the
// paper lists as further Category-4 clients, are out of scope (the paper
// itself defers them to future work).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/types.hpp"

namespace abcl::remote {

// Last load figure heard from each peer via the load-gossip service.
class LoadMap {
 public:
  void note(core::NodeId peer, std::uint32_t load) { loads_[peer] = load; }

  std::uint32_t get(core::NodeId peer) const {
    auto it = loads_.find(peer);
    return it == loads_.end() ? 0 : it->second;
  }

  std::size_t known_peers() const { return loads_.size(); }

 private:
  std::unordered_map<core::NodeId, std::uint32_t> loads_;
};

}  // namespace abcl::remote
