// Category-4 services (Section 5.1): node-local bookkeeping for the
// miscellaneous remote services — currently the load-gossip map used by the
// least-loaded placement policy. Global GC and object migration, which the
// paper lists as further Category-4 clients, are out of scope (the paper
// itself defers them to future work).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/types.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::remote {

// Last load figure heard from each peer via the load-gossip service, with a
// freshness stamp (the receiver's quantum counter at note() time).
//
// Two historical bugs live here, both fixed by making "unknown" explicit:
//  * get() used to return 0 for never-heard-from peers, so kLeastLoaded
//    treated silent or unreachable nodes as idle and piled work onto them;
//  * entries never aged, so a peer whose gossip packets stopped (blackout,
//    drops) kept its last figure forever. Callers now pass the current
//    quantum count and a max age; anything unknown or stale reads as
//    nullopt and the placement policy degrades gracefully to known peers
//    (or self when nothing trustworthy is left).
class LoadMap {
 public:
  void note(core::NodeId peer, std::uint32_t load, std::uint64_t now_quanta) {
    loads_[peer] = Entry{load, now_quanta};
  }

  // The peer's load if it has been heard from within `max_age` quanta of
  // `now_quanta` (max_age 0 = no aging), nullopt otherwise.
  std::optional<std::uint32_t> get(core::NodeId peer, std::uint64_t now_quanta,
                                   std::uint64_t max_age) const {
    auto it = loads_.find(peer);
    if (it == loads_.end()) return std::nullopt;
    if (max_age != 0 && now_quanta - it->second.stamp > max_age) {
      return std::nullopt;
    }
    return it->second.load;
  }

  // Peers ever heard from (stale entries included — staleness is a
  // read-side policy, the figures themselves are kept).
  std::size_t known_peers() const { return loads_.size(); }

 private:
  friend struct abcl::ckpt::WorldIo;  // checkpoint serializer

  struct Entry {
    std::uint32_t load = 0;
    std::uint64_t stamp = 0;  // receiver quanta_run at note() time
  };
  std::unordered_map<core::NodeId, Entry> loads_;
};

}  // namespace abcl::remote
