// Live object migration: configuration + the deterministic work-shedding
// policy.
//
// The paper fixes an object's home node at creation time (Section 6's
// placement schemes); an unlucky burst then leaves a hot node stuck with
// its load forever. Migration closes that gap: a node that finds itself
// far above its neighbourhood's load median detaches objects from its run
// queue and ships them (state + a forwarding contract for the pending
// inbox) to the least-loaded fresh neighbour. The old home keeps a
// forwarding stub so in-flight mail still arrives exactly once and in
// per-sender order; kUpdateAddr notifications compress forwarding chains
// back to length <= 1 (see DESIGN.md "Object migration").
//
// Everything in this header is *policy*: pure functions of simulated
// quantities (queue depth, gossip loads, quantum index, config seed). The
// mechanism — stubs, fragment reassembly, flush markers — lives in
// core::NodeRuntime. Keeping the policy pure is what makes the shed
// schedule bit-identical across the serial Machine and any-thread-count
// ParallelMachine: like net::FaultPlan, every decision is a counter-based
// hash of (seed, node, quantum) plus state that is itself a deterministic
// function of the run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace abcl::remote {

// Knobs behind WorldConfig.migration / ABCLSIM_MIGRATION / the fuzz spec's
// optional "migration" block. All integers, so configs serialize exactly
// (same reasoning as net::FaultConfig's ppm fields).
struct MigrationConfig {
  bool enabled = false;
  // Shed checks run every `interval` quanta (at quantum q when
  // q % interval == 0). Doubles as the auto-enabled gossip interval when
  // the app did not configure gossip itself (shedding needs load info).
  std::uint32_t interval = 64;
  // Hysteresis band: a node sheds only when its run-queue depth exceeds
  // the neighbourhood load median by MORE than this, so two nodes near
  // parity do not ping-pong objects.
  std::uint32_t hysteresis = 4;
  // At most this many objects leave per shed event.
  std::uint32_t max_batch = 4;
  // A node with fewer than this many queued objects never sheds, no matter
  // what its neighbours look like (migration has a fixed protocol cost).
  std::uint32_t min_queue = 8;
  // Tie-break decision-stream seed (independent of the workload seed, like
  // FaultConfig::seed).
  std::uint64_t seed = 1;

  bool operator==(const MigrationConfig&) const = default;
};

// kMigrateStart flag bits (word 2, low half; the epoch rides in the high
// half) — which optional sections the state blob carries.
inline constexpr std::uint32_t kMigNeedsInit = 1u << 0;    // state not constructed
inline constexpr std::uint32_t kMigPendingInit = 1u << 1;  // saved ctor frame
inline constexpr std::uint32_t kMigWaiting = 1u << 2;      // blocked ctx frame

// Cap on the prior-stub trail a migrating object carries (2 packet words
// per entry; 8 keeps kMigrateStart within net::kMaxPacketWords). Stubs that
// age out of the trail stop receiving kUpdateStub notifications, so their
// chains can grow by one hop per missed migration instead of staying <= 1 —
// bounded by the object's migration count and compressed back per-sender by
// kUpdateAddr (see DESIGN.md).
inline constexpr std::size_t kMaxPriorStubs = 8;

// Structural validation shared by parse_migration_spec, WorldConfig and the
// fuzz Spec loader. Returns false with a human-readable reason; a disabled
// config is always valid.
bool validate_migration_config(const MigrationConfig& cfg, std::string* err);

// Strict parser behind ABCLSIM_MIGRATION and fuzz_repro --migration.
// nullptr or empty -> disabled config; "off" -> disabled. Otherwise a
// comma-separated key=value list over
//   interval=N hysteresis=N max_batch=N min_queue=N seed=N
// Unknown keys, repeated keys or malformed numbers return nullopt with a
// diagnostic in *err — garbage never falls back silently to "no
// migration".
std::optional<MigrationConfig> parse_migration_spec(const char* text,
                                                    std::string* err);

// One-line canonical rendering ("interval=64,hysteresis=4,..."; "off" when
// disabled) — parse_migration_spec(to_string(cfg)) round-trips exactly.
std::string to_string(const MigrationConfig& cfg);

// Tie-break roll for a shed event, keyed on (seed, node, quantum) exactly
// like FaultPlan::roll is keyed on its decision coordinates. Pure.
std::uint64_t shed_roll(std::uint64_t seed, std::int32_t node,
                        std::uint64_t quantum);

// Outcome of one shed check: ship up to `quota` objects to `target`.
struct ShedDecision {
  std::int32_t target = -1;
  std::uint32_t quota = 0;
};

// The per-quantum shed check. `depth` is the node's run-queue depth at the
// check; `neighbor_loads` holds (node, load) for every *fresh* gossip
// sample, in the topology's fixed neighbour order (staleness filtering is
// the caller's job — see LoadMap::get). Sheds when depth exceeds the lower
// median of the neighbour loads by more than the hysteresis band; the
// target is the least-loaded strictly-less-loaded neighbour, ties broken
// by shed_roll. Returns nullopt when the node should keep its work.
//
// Every input is a simulated quantity, so serial and host-parallel drivers
// reach identical decisions at identical quanta.
std::optional<ShedDecision> decide_shed(
    const MigrationConfig& cfg, std::int32_t node, std::uint64_t quantum,
    std::uint32_t depth,
    const std::vector<std::pair<std::int32_t, std::uint32_t>>& neighbor_loads);

}  // namespace abcl::remote
