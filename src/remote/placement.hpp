// Placement policies for remote creation (Section 2.5).
//
// "In remote creation, the system determines where the object is created
// based on local information." These policies use only node-local state:
// a round-robin cursor, the local RNG, the torus neighbour list, or the
// gossiped load of peers (Category-4 service).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::core {
class NodeRuntime;
}

namespace abcl::remote {

enum class PlacementKind : std::uint8_t {
  kSelf,         // always local (degenerates remote creation to local)
  kRoundRobin,   // cycle over all nodes
  kRandom,       // uniform over all nodes
  kNeighbor,     // cycle over torus neighbours (locality-preserving)
  kLeastLoaded,  // min gossiped load among self + neighbours
};

// Per-node placement state. Deterministic given the node's RNG stream.
class Placement {
 public:
  explicit Placement(PlacementKind kind = PlacementKind::kRoundRobin)
      : kind_(kind) {}

  PlacementKind kind() const { return kind_; }
  void set_kind(PlacementKind k) { kind_ = k; }

  // Chooses a target node for the next creation issued by `rt`.
  core::NodeId choose(core::NodeRuntime& rt);

 private:
  friend struct abcl::ckpt::WorldIo;  // checkpoint serializer

  PlacementKind kind_;
  std::uint32_t cursor_ = 0;
};

}  // namespace abcl::remote
