#include "remote/placement.hpp"

#include "core/node_runtime.hpp"

namespace abcl::remote {

core::NodeId Placement::choose(core::NodeRuntime& rt) {
  const core::NodeId n = rt.num_nodes();
  if (n <= 1) return rt.node_id();
  switch (kind_) {
    case PlacementKind::kSelf:
      return rt.node_id();
    case PlacementKind::kRoundRobin: {
      // Start the cycle at self+1 so consecutive creations spread outward.
      core::NodeId t = static_cast<core::NodeId>(
          (static_cast<std::uint32_t>(rt.node_id()) + 1 + cursor_) %
          static_cast<std::uint32_t>(n));
      ++cursor_;
      return t;
    }
    case PlacementKind::kRandom:
      return static_cast<core::NodeId>(
          rt.rng().below(static_cast<std::uint64_t>(n)));
    case PlacementKind::kNeighbor: {
      auto nbs = rt.network().topology().neighbors(rt.node_id());
      if (nbs.empty()) return rt.node_id();
      core::NodeId t = nbs[cursor_ % nbs.size()];
      ++cursor_;
      return t;
    }
    case PlacementKind::kLeastLoaded: {
      // Graceful degradation: only neighbours with a *fresh* gossiped load
      // compete (known_load is nullopt for silent or stale peers). The old
      // code read unknown as load 0 and piled work onto exactly the nodes
      // nobody had heard from; now, when gossip goes quiet, the policy
      // naturally collapses to local creation — the paper's safe default.
      auto nbs = rt.network().topology().neighbors(rt.node_id());
      core::NodeId best = rt.node_id();
      std::uint32_t best_load = rt.sched_queue_len();
      for (core::NodeId nb : nbs) {
        std::optional<std::uint32_t> load = rt.known_load(nb);
        if (load.has_value() && *load < best_load) {
          best = nb;
          best_load = *load;
        }
      }
      return best;
    }
  }
  ABCL_UNREACHABLE();
}

}  // namespace abcl::remote
