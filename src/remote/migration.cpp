#include "remote/migration.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/spec_parser.hpp"

namespace abcl::remote {

bool validate_migration_config(const MigrationConfig& cfg, std::string* err) {
  auto fail = [&](const char* msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  if (!cfg.enabled) return true;
  if (cfg.interval < 1) {
    return fail("migration config: interval must be >= 1 quantum");
  }
  if (cfg.max_batch < 1) {
    return fail("migration config: max_batch must be >= 1");
  }
  if (cfg.min_queue < 1) {
    return fail("migration config: min_queue must be >= 1");
  }
  return true;
}

// Thin wrapper over util::SpecParser — see parse_fault_spec for the shape.
std::optional<MigrationConfig> parse_migration_spec(const char* text,
                                                    std::string* err) {
  MigrationConfig cfg;
  if (util::spec_off(text)) return cfg;  // unset or "off": migration off
  const std::string raw = text;
  auto fail = [&](const std::string& why) -> std::optional<MigrationConfig> {
    if (err != nullptr) {
      *err = util::spec_error("migration spec", raw, why,
                              "expected comma-separated "
                              "interval/hysteresis/max_batch/min_queue/seed=N");
    }
    return std::nullopt;
  };
  cfg.enabled = true;

  util::SpecParser p;
  p.u32("interval", &cfg.interval)
      .u32("hysteresis", &cfg.hysteresis)
      .u32("max_batch", &cfg.max_batch)
      .u32("min_queue", &cfg.min_queue)
      .u64("seed", &cfg.seed);
  std::string why;
  if (!p.run(raw, &why)) return fail(why);

  std::string verr;
  if (!validate_migration_config(cfg, &verr)) return fail(verr);
  return cfg;
}

std::string to_string(const MigrationConfig& cfg) {
  if (!cfg.enabled) return "off";
  std::string out;
  out += "interval=" + std::to_string(cfg.interval);
  out += ",hysteresis=" + std::to_string(cfg.hysteresis);
  out += ",max_batch=" + std::to_string(cfg.max_batch);
  out += ",min_queue=" + std::to_string(cfg.min_queue);
  out += ",seed=" + std::to_string(cfg.seed);
  return out;
}

std::uint64_t shed_roll(std::uint64_t seed, std::int32_t node,
                        std::uint64_t quantum) {
  // Short SplitMix chain over the decision coordinates, FaultPlan::roll
  // style: equal coordinates always produce equal rolls.
  std::uint64_t x = seed ^ 0xabc1'0b1e'c75ull;
  x = util::splitmix64(x);
  x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(node));
  x = util::splitmix64(x);
  x ^= quantum;
  return util::splitmix64(x);
}

std::optional<ShedDecision> decide_shed(
    const MigrationConfig& cfg, std::int32_t node, std::uint64_t quantum,
    std::uint32_t depth,
    const std::vector<std::pair<std::int32_t, std::uint32_t>>&
        neighbor_loads) {
  if (!cfg.enabled || depth < cfg.min_queue) return std::nullopt;
  if (neighbor_loads.empty()) return std::nullopt;

  // Lower median of the fresh neighbour loads: with the torus' four
  // neighbours that is the second-smallest sample, a robust "what does my
  // neighbourhood look like" figure that one overloaded peer cannot drag
  // up past the shedder's own depth.
  std::vector<std::uint32_t> loads;
  loads.reserve(neighbor_loads.size());
  for (const auto& [peer, load] : neighbor_loads) loads.push_back(load);
  std::sort(loads.begin(), loads.end());
  const std::uint32_t median = loads[(loads.size() - 1) / 2];

  if (depth <= median ||
      depth - median <= cfg.hysteresis) {  // inside the hysteresis band
    return std::nullopt;
  }
  const std::uint32_t quota =
      std::min<std::uint32_t>(cfg.max_batch, (depth - median) / 2);
  if (quota == 0) return std::nullopt;

  // Target: the least-loaded neighbour that is strictly below our depth.
  // Ties broken by the seeded roll so a symmetric neighbourhood does not
  // always dump on the lowest node id (which would re-create the hot spot
  // one hop over).
  std::uint32_t best = ~std::uint32_t{0};
  for (const auto& [peer, load] : neighbor_loads) {
    if (load < depth && load < best) best = load;
  }
  if (best == ~std::uint32_t{0}) return std::nullopt;
  std::vector<std::int32_t> ties;
  for (const auto& [peer, load] : neighbor_loads) {
    if (load == best) ties.push_back(peer);
  }
  const std::uint64_t r = shed_roll(cfg.seed, node, quantum);
  ShedDecision d;
  d.target = ties[static_cast<std::size_t>(r % ties.size())];
  d.quota = quota;
  return d;
}

}  // namespace abcl::remote
