// Predelivered chunk stocks (Section 5.2).
//
// Each node keeps, per (peer node, chunk size class), a stack of addresses
// of memory chunks that the peer has already allocated and formatted with
// the generic fault table. A remote creation draws the new object's mail
// address from this stock *locally*, hiding the allocation round trip; the
// Category-3 replenish message keeps the stock at its steady depth. Only
// when the stock is empty does the creator fall back to split-phase
// allocation (and hence context switching).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::remote {

class ChunkStock {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t pushes = 0;
  };

  // Pops a predelivered chunk on `peer` of the given size class, if any.
  std::optional<core::ObjectHeader*> try_pop(core::NodeId peer,
                                             std::uint16_t size_class) {
    auto it = stocks_.find(key(peer, size_class));
    if (it == stocks_.end() || it->second.empty()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    core::ObjectHeader* chunk = it->second.back();
    it->second.pop_back();
    return chunk;
  }

  void push(core::NodeId peer, std::uint16_t size_class,
            core::ObjectHeader* chunk) {
    ABCL_CHECK(chunk != nullptr);
    ++stats_.pushes;
    stocks_[key(peer, size_class)].push_back(chunk);
  }

  std::size_t depth(core::NodeId peer, std::uint16_t size_class) const {
    auto it = stocks_.find(key(peer, size_class));
    return it == stocks_.end() ? 0 : it->second.size();
  }

  // Replenish-in-flight bookkeeping. A creator that requests a replenish
  // with every create packet overshoots the steady-state target as soon as
  // the stock is drained and then bursts back up; tracking requests that
  // have not yet arrived lets the creator cap depth + pending at the
  // target. note_replenish_arrived clamps at zero so a replenish that
  // predates the bookkeeping (e.g. seeded mid-flight) cannot underflow.
  void note_replenish_requested(core::NodeId peer, std::uint16_t size_class) {
    pending_[key(peer, size_class)] += 1;
  }

  void note_replenish_arrived(core::NodeId peer, std::uint16_t size_class) {
    auto it = pending_.find(key(peer, size_class));
    if (it != pending_.end() && it->second > 0) it->second -= 1;
  }

  std::size_t pending_replenish(core::NodeId peer,
                                std::uint16_t size_class) const {
    auto it = pending_.find(key(peer, size_class));
    return it == pending_.end() ? 0 : it->second;
  }

  // Chunks usable without further wire traffic: on hand plus in flight.
  std::size_t planned_depth(core::NodeId peer, std::uint16_t size_class) const {
    return depth(peer, size_class) + pending_replenish(peer, size_class);
  }

  std::size_t total_chunks() const {
    std::size_t n = 0;
    for (const auto& [k, v] : stocks_) n += v.size();
    return n;
  }

  const Stats& stats() const { return stats_; }

 private:
  friend struct abcl::ckpt::WorldIo;  // checkpoint serializer

  static std::uint64_t key(core::NodeId peer, std::uint16_t size_class) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 16) |
           size_class;
  }

  std::unordered_map<std::uint64_t, std::vector<core::ObjectHeader*>> stocks_;
  std::unordered_map<std::uint64_t, std::size_t> pending_;
  Stats stats_;
};

}  // namespace abcl::remote
