#include "apps/buffer.hpp"

namespace abcl::apps {

namespace {

// Wait-site / continuation-pc constants (registration and method body must
// agree; see ClassDef::accept).
constexpr std::int32_t kSiteEmpty = 0;  // get waits for a put
constexpr std::int32_t kSiteFull = 1;   // put waits for a get
constexpr std::uint16_t kPcGotPut = 1;
constexpr std::uint16_t kPcGotGet = 1;

struct PutFrame : Frame {
  Word item = 0;
  ReplyDest get_rd;  // landing slot for the awaited get while full

  static void init(PutFrame& f, const Msg& m) { f.item = m.at(0); }

  // Copy-in for the awaited `get` while the buffer is full: capture the
  // get's reply destination so the continuation can serve it.
  static void copy_get(PutFrame& f, const Msg& m) { f.get_rd = m.reply; }

  static Status run(Ctx& ctx, BufferState& self, PutFrame& f) {
    ABCL_BEGIN(f);
    ctx.charge(6);
    self.puts += 1;
    if (self.count < kBufferCapacity) {
      self.push(f.item);
      ABCL_RETURN();
    }
    self.waited_puts += 1;
    ABCL_SELECT(ctx, self, f, kSiteFull);
    case kPcGotGet: {
      // Serve the oldest item to the arrived get, then store ours: FIFO
      // order is preserved and the buffer stays full.
      self.gets += 1;
      Word v = self.pop();
      ctx.reply(f.get_rd, &v, 1);
      self.push(f.item);
    }
    ABCL_END();
  }
};

struct GetFrame : Frame {
  ReplyDest rd;
  Word got = 0;

  static void init(GetFrame& f, const Msg& m) { f.rd = m.reply; }

  // Copy-in for the awaited `put` while select-waiting: the put's item
  // lands directly in the blocked get's frame (it never enters the ring).
  static void copy_put(GetFrame& f, const Msg& m) { f.got = m.at(0); }

  static Status run(Ctx& ctx, BufferState& self, GetFrame& f) {
    ABCL_BEGIN(f);
    ctx.charge(6);
    self.gets += 1;
    if (self.count > 0) {
      Word v = self.pop();
      ctx.reply(f.rd, &v, 1);
      ABCL_RETURN();
    }
    self.waited_gets += 1;
    ABCL_SELECT(ctx, self, f, kSiteEmpty);
    case kPcGotPut:
      self.puts += 1;  // the consumed put is still a completed put
      ctx.reply(f.rd, &f.got, 1);
    ABCL_END();
  }
};

}  // namespace

BufferProgram register_buffer(core::Program& prog) {
  BufferProgram bp;
  bp.put = prog.patterns().intern("buf.put", 1);
  bp.get = prog.patterns().intern("buf.get", 0);
  ClassDef<BufferState> def(prog, "SyncBuffer");
  def.method<PutFrame>(bp.put);
  def.method<GetFrame>(bp.get);
  bp.wait_empty_site = def.wait_site<GetFrame>();
  ABCL_CHECK(bp.wait_empty_site == kSiteEmpty);
  def.accept<GetFrame, &GetFrame::copy_put>(bp.wait_empty_site, bp.put,
                                            kPcGotPut);
  bp.wait_full_site = def.wait_site<PutFrame>();
  ABCL_CHECK(bp.wait_full_site == kSiteFull);
  def.accept<PutFrame, &PutFrame::copy_get>(bp.wait_full_site, bp.get,
                                            kPcGotGet);
  bp.cls = &def.info();
  return bp;
}

}  // namespace abcl::apps
