#include "apps/counters.hpp"

namespace abcl::apps {

namespace {

struct NoopFrame : Frame {
  static void init(NoopFrame&, const Msg&) {}
  static Status run(Ctx&, CounterState& self, NoopFrame&) {
    self.noops += 1;  // one store: the "null method" body
    return Status::kDone;
  }
};

struct IncFrame : Frame {
  static void init(IncFrame&, const Msg&) {}
  static Status run(Ctx& ctx, CounterState& self, IncFrame&) {
    ctx.charge(2);
    self.count += 1;
    return Status::kDone;
  }
};

struct AddFrame : Frame {
  std::int64_t k = 0;
  static void init(AddFrame& f, const Msg& m) { f.k = m.i64(0); }
  static Status run(Ctx& ctx, CounterState& self, AddFrame& f) {
    ctx.charge(2);
    self.count += f.k;
    return Status::kDone;
  }
};

struct GetFrame : Frame {
  ReplyDest rd;
  static void init(GetFrame& f, const Msg& m) { f.rd = m.reply; }
  static Status run(Ctx& ctx, CounterState& self, GetFrame& f) {
    ctx.charge(2);
    Word v = static_cast<Word>(self.count);
    ctx.reply(f.rd, &v, 1);
    return Status::kDone;
  }
};

struct FillFrame : Frame {
  std::int64_t n = 0;
  PatternId pat = 0;
  static void init(FillFrame& f, const Msg& m) {
    f.n = m.i64(0);
    f.pat = static_cast<PatternId>(m.at(1));
  }
  static Status run(Ctx& ctx, CounterState&, FillFrame& f) {
    for (std::int64_t i = 0; i < f.n; ++i) {
      ctx.send_past(ctx.self_addr(), f.pat, nullptr, 0);
    }
    return Status::kDone;
  }
};

}  // namespace

CounterProgram register_counter(core::Program& prog) {
  CounterProgram cp;
  cp.noop = prog.patterns().intern("ctr.noop", 0);
  cp.inc = prog.patterns().intern("ctr.inc", 0);
  cp.add = prog.patterns().intern("ctr.add", 1);
  cp.get = prog.patterns().intern("ctr.get", 0);
  cp.fill = prog.patterns().intern("ctr.fill", 2);
  ClassDef<CounterState> def(prog, "Counter");
  def.method<NoopFrame>(cp.noop);
  def.method<IncFrame>(cp.inc);
  def.method<AddFrame>(cp.add);
  def.method<GetFrame>(cp.get);
  def.method<FillFrame>(cp.fill);
  cp.cls = &def.info();
  return cp;
}

}  // namespace abcl::apps
