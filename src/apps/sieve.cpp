#include "apps/sieve.hpp"

namespace abcl::apps {

namespace {

// Creation args: [prime, latch_node, latch_ptr, latch_done_pat]
struct FilterState {
  std::int64_t prime = 0;
  MailAddr next;  // nil while this filter is the chain tail
  MailAddr latch;
  PatternId latch_done = 0;

  void on_create(const Msg& m) {
    prime = m.i64(0);
    latch = m.addr(1);
    latch_done = static_cast<PatternId>(m.at(3));
  }
};

struct NumFrame : Frame {
  std::int64_t n = 0;
  PatternId pat = 0;
  CreateCall cc;

  static void init(NumFrame& f, const Msg& m) {
    f.n = m.i64(0);
    f.pat = m.pattern;
  }
  static Status run(Ctx& ctx, FilterState& self, NumFrame& f) {
    ABCL_BEGIN(f);
    ctx.charge(12);  // one modulo + branch
    if (f.n % self.prime == 0) ABCL_RETURN();  // composite: drop
    if (!self.next.is_nil()) {
      Word w = static_cast<Word>(f.n);
      ctx.send_past(self.next, f.pat, &w, 1);
      ABCL_RETURN();
    }
    // Survived to the tail: n is prime. Grow the chain; candidates arriving
    // while we await the chunk are queued (waiting mode) and replayed in
    // order once `next` is set.
    f.cc = ctx.remote_create_begin(
        *ctx.current_object()->cls, ctx.placement().choose(ctx),
        args(f.n, self.latch, self.latch_done));
    ABCL_AWAIT(ctx, f, 1, f.cc.call);
    self.next = ctx.remote_create_finish(f.cc);
    ABCL_END();
  }
};

struct EndFrame : Frame {
  std::int64_t count = 0;
  PatternId pat = 0;
  static void init(EndFrame& f, const Msg& m) {
    f.count = m.i64(0);
    f.pat = m.pattern;
  }
  static Status run(Ctx& ctx, FilterState& self, EndFrame& f) {
    ctx.charge(8);
    std::int64_t acc = f.count + 1;  // count this filter's prime
    if (self.next.is_nil()) {
      Word w = static_cast<Word>(acc);
      ctx.send_past(self.latch, self.latch_done, &w, 1);
    } else {
      Word w = static_cast<Word>(acc);
      ctx.send_past(self.next, f.pat, &w, 1);
    }
    return Status::kDone;
  }
};

}  // namespace

SieveProgram register_sieve(core::Program& prog) {
  SieveProgram sp;
  sp.latch = register_completion_latch(prog);
  sp.num = prog.patterns().intern("sv.num", 1);
  sp.end = prog.patterns().intern("sv.end", 1);
  ClassDef<FilterState> def(prog, "SieveFilter");
  def.method<NumFrame>(sp.num);
  def.method<EndFrame>(sp.end);
  sp.filter_cls = &def.info();
  return sp;
}

SieveResult run_sieve(World& world, const SieveProgram& sp, std::int64_t limit) {
  ABCL_CHECK(limit >= 2);
  const core::NodeStats before = world.total_stats();
  MailAddr latch;
  world.boot(0, [&](Ctx& ctx) {
    latch = ctx.create_local(*sp.latch.cls, nullptr, 0);
    ctx.send_past(latch, sp.latch.expect, {1});
    MailAddr head =
        ctx.create_local(*sp.filter_cls, args(2, latch, sp.latch.done));
    for (std::int64_t n = 3; n <= limit; ++n) {
      Word w = static_cast<Word>(n);
      ctx.send_past(head, sp.num, &w, 1);
    }
    Word zero = 0;
    ctx.send_past(head, sp.end, &zero, 1);
  });
  RunReport rep = world.run();
  const CompletionLatch& latch_s = latch_state(latch);
  ABCL_CHECK_MSG(latch_s.done(), "sieve did not run to completion");

  SieveResult r;
  r.primes = latch_s.total;
  core::NodeStats after = world.total_stats();
  r.filters_created = (after.creations_local - before.creations_local) +
                      (after.creations_remote - before.creations_remote) -
                      1;  // minus the latch
  r.rep = rep;
  r.stats = after;
  return r;
}

}  // namespace abcl::apps
