// Sequential N-queens baseline (Table 4's "elapsed time on SS1+").
//
// The same depth-first algorithm as the parallel actor program, run as a
// plain recursive C++ function: stack-based, no heap, no termination
// detection — exactly the paper's sequential comparator. It charges the
// identical per-expansion work model, so
//     speedup(P) = seq.charged_instr / parallel.sim_time
// has the same semantics as the paper's elapsed-time ratio on identical
// CPUs.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace abcl::apps {

struct NQueensSeqResult {
  std::int64_t solutions = 0;
  std::uint64_t tree_nodes = 0;   // expansions == parallel object creations
  sim::Instr charged = 0;         // modeled work under the same cost formula
  double host_seconds = 0.0;      // real time on the host machine
};

NQueensSeqResult nqueens_seq(int n, sim::Instr charge_base,
                             sim::Instr charge_per_col);

}  // namespace abcl::apps
