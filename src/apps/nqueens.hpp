// Parallel N-queens (Section 6.2) — the paper's large-scale benchmark.
//
// One concurrent object per search-tree node: the `go` method expands the
// node's row, creating one child object per feasible column (placed by the
// node's placement policy) and sending it `go`; results flow back up the
// tree as `done(count)` acknowledgement messages — the paper's termination
// detection — and the root reports into a CompletionLatch.
//
// The method bodies charge a modeled work cost (base + per-candidate-column)
// identical to the sequential baseline's, so speedups compare like the
// paper's parallel-vs-SPARCstation numbers.
#pragma once

#include <cstdint>

#include "abcl/abcl.hpp"

namespace abcl::apps {

// Default work model calibrated to the paper's sequential baseline: 84 ms
// for N=8 on a 25 MHz SPARCstation 1+ over 2,056 tree nodes is ~850
// instructions per expansion (Table 4).
struct NQueensParams {
  int n = 8;
  sim::Instr charge_base = 380;    // per-expansion fixed work
  sim::Instr charge_per_col = 60;  // per candidate column

  // Work model matched to the paper's measured sequential times: Table 4
  // implies ~41 us per tree node at N=8 (~444 instructions at the model's
  // 2.3 effective CPI) but ~100 us (~1,087 instr) at N=13 — per-node cost
  // grows with N on the real machine (larger boards, worse cache
  // behaviour). This fits that growth exponentially between the two
  // anchors, so speedup/utilization figures are comparable with Figure 5's.
  static NQueensParams paper_calibrated(int n) {
    NQueensParams p;
    p.n = n;
    double per_node = 444.0;
    for (int i = 8; i < n; ++i) per_node *= 1.1965;  // (1087/444)^(1/5)
    for (int i = n; i < 8; ++i) per_node /= 1.1965;
    // The pruned search tree averages ~1.05 candidate columns per node, so
    // the per-column term contributes ~1.05 * charge_per_col on average.
    auto base = static_cast<std::int64_t>(per_node) - 65;
    p.charge_base = base > 50 ? static_cast<sim::Instr>(base) : 50;
    p.charge_per_col = 60;
    return p;
  }
};

struct NQueensProgram {
  PatternId go = 0;
  PatternId done = 0;
  const core::ClassInfo* node_cls = nullptr;
  CompletionPatterns latch;
};

struct NQueensResult {
  std::int64_t solutions = 0;
  std::uint64_t objects_created = 0;  // search-tree objects (excl. latch)
  std::uint64_t messages = 0;         // go + done messages (paper's count)
  sim::Instr sim_time = 0;
  double sim_ms = 0.0;
  std::size_t heap_bytes = 0;
  core::NodeStats stats;
  RunReport rep;
};

// Registers the N-queens classes and patterns (plus the completion latch)
// on `prog`. Call once per Program, before finalize().
NQueensProgram register_nqueens(core::Program& prog);

// Runs N-queens on an already-built world. Deterministic per (world, p).
NQueensResult run_nqueens(World& world, const NQueensProgram& np,
                          const NQueensParams& p);

// Convenience: build a world with `nodes` nodes and run.
NQueensResult run_nqueens_on(core::Program& prog, const NQueensProgram& np,
                             const NQueensParams& p, WorldConfig cfg);

}  // namespace abcl::apps
