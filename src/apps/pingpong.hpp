// Ping-pong latency workload (Table 1's inter-node latency row, Table 3's
// send/reply comparison): two objects bouncing a one-word past-type message.
#pragma once

#include "abcl/abcl.hpp"

namespace abcl::apps {

struct PingPongProgram {
  PatternId set_peer = 0;  // [peer_node, peer_ptr]
  PatternId ball = 0;      // [] one-word-equivalent ball message
  const core::ClassInfo* cls = nullptr;
};

PingPongProgram register_pingpong(core::Program& prog);

struct PingPongResult {
  std::uint64_t bounces = 0;      // total one-way messages delivered
  sim::Instr sim_time = 0;
  double us_per_message = 0.0;    // one-way latency in modeled microseconds
};

// Places the two objects on `node_a` / `node_b` (equal for the intra-node
// measurement), bounces `rounds` messages, and reports latency.
PingPongResult run_pingpong(World& world, const PingPongProgram& pp,
                            NodeId node_a, NodeId node_b,
                            std::uint64_t rounds);

}  // namespace abcl::apps
