// Synchronizing bounded buffer — the classic ABCL selective-reception
// example. `get` is a now-type request; when the buffer is empty the
// serving method *waits inside the method* (Section 2.2, action 4) for the
// next `put`, via a per-wait-site virtual function table: the awaited
// pattern restores the blocked context directly, every other message is
// queued. Symmetrically, a `put` into a full buffer waits for the next
// `get` (second wait site), so producers are flow-controlled.
#pragma once

#include "abcl/abcl.hpp"

namespace abcl::apps {

inline constexpr int kBufferCapacity = 16;

struct BufferProgram {
  PatternId put = 0;  // [item]
  PatternId get = 0;  // now-type: [] -> reply item
  const core::ClassInfo* cls = nullptr;
  std::int32_t wait_empty_site = 0;  // get waits here when empty
  std::int32_t wait_full_site = 1;   // put waits here when full
};

BufferProgram register_buffer(core::Program& prog);

struct BufferState {
  Word items[kBufferCapacity] = {};
  std::int32_t head = 0;
  std::int32_t count = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t waited_gets = 0;  // gets that had to select-wait
  std::uint64_t waited_puts = 0;  // puts that had to select-wait (full)

  void push(Word w) {
    ABCL_CHECK_MSG(count < kBufferCapacity, "buffer overflow");
    items[(head + count) % kBufferCapacity] = w;
    ++count;
  }
  Word pop() {
    ABCL_CHECK(count > 0);
    Word w = items[head];
    head = (head + 1) % kBufferCapacity;
    --count;
    return w;
  }
};

inline const BufferState& buffer_state(MailAddr a) {
  ABCL_CHECK(!a.is_nil() && !a.ptr->needs_init);
  return *a.ptr->state_as<BufferState>();
}

}  // namespace abcl::apps
