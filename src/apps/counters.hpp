// Counter objects — the quickstart class, and the "null method" used by the
// Table 1/2 microbenchmarks (repeated invocation of a no-op method).
#pragma once

#include "abcl/abcl.hpp"

namespace abcl::apps {

struct CounterProgram {
  PatternId noop = 0;   // [] null method (Table 1/2's measured method)
  PatternId inc = 0;    // []
  PatternId add = 0;    // [k]
  PatternId get = 0;    // now-type: [] -> reply count
  PatternId fill = 0;   // [n, pattern]: send self n messages of `pattern`
                        // (they buffer — the object is active — exercising
                        // the Table-1 "message to active object" path)
  const core::ClassInfo* cls = nullptr;
};

CounterProgram register_counter(core::Program& prog);

struct CounterState {
  std::int64_t count = 0;
  std::uint64_t noops = 0;

  void on_create(const Msg& m) {
    if (m.nargs >= 1) count = m.i64(0);
  }
};

// Host-side state peek (after the world quiesced).
inline const CounterState& counter_state(MailAddr a) {
  ABCL_CHECK(!a.is_nil() && !a.ptr->needs_init);
  return *a.ptr->state_as<CounterState>();
}

}  // namespace abcl::apps
