#include "apps/pingpong.hpp"

namespace abcl::apps {

namespace {

// Creation args: [remaining]
struct PingState {
  MailAddr peer;
  std::int64_t remaining = 0;
  std::uint64_t bounced = 0;

  void on_create(const Msg& m) { remaining = m.i64(0); }
};

struct SetPeerFrame : Frame {
  MailAddr peer;
  static void init(SetPeerFrame& f, const Msg& m) { f.peer = m.addr(0); }
  static Status run(Ctx&, PingState& self, SetPeerFrame& f) {
    self.peer = f.peer;
    return Status::kDone;
  }
};

struct BallFrame : Frame {
  PatternId pat = 0;
  static void init(BallFrame& f, const Msg& m) { f.pat = m.pattern; }
  static Status run(Ctx& ctx, PingState& self, BallFrame& f) {
    self.bounced += 1;
    if (self.remaining > 0) {
      self.remaining -= 1;
      ctx.send_past(self.peer, f.pat, nullptr, 0);
    }
    return Status::kDone;
  }
};

}  // namespace

PingPongProgram register_pingpong(core::Program& prog) {
  PingPongProgram pp;
  pp.set_peer = prog.patterns().intern("pp.peer", 2);
  pp.ball = prog.patterns().intern("pp.ball", 0);
  ClassDef<PingState> def(prog, "PingPong");
  def.method<SetPeerFrame>(pp.set_peer);
  def.method<BallFrame>(pp.ball);
  pp.cls = &def.info();
  return pp;
}

PingPongResult run_pingpong(World& world, const PingPongProgram& pp,
                            NodeId node_a, NodeId node_b,
                            std::uint64_t rounds) {
  MailAddr a, b;
  world.boot(node_a, [&](Ctx& ctx) {
    Word rem = rounds;
    a = ctx.create_local(*pp.cls, &rem, 1);
  });
  world.boot(node_b, [&](Ctx& ctx) {
    Word rem = rounds;
    b = ctx.create_local(*pp.cls, &rem, 1);
  });
  sim::Instr start = world.max_clock();
  world.boot(node_a, [&](Ctx& ctx) {
    Word peer_b[2] = {b.word_node(), b.word_ptr()};
    ctx.send_past(a, pp.set_peer, peer_b, 2);
    Word peer_a[2] = {a.word_node(), a.word_ptr()};
    ctx.send_past(b, pp.set_peer, peer_a, 2);
    ctx.send_past(a, pp.ball, nullptr, 0);
  });
  RunReport rep = world.run();

  PingPongResult r;
  auto& sa = *a.ptr->state_as<PingState>();
  auto& sb = *b.ptr->state_as<PingState>();
  r.bounces = sa.bounced + sb.bounced;
  r.sim_time = rep.sim_time - start;
  r.us_per_message = r.bounces == 0
                         ? 0.0
                         : world.config().cost.us(r.sim_time) /
                               static_cast<double>(r.bounces);
  return r;
}

}  // namespace abcl::apps
