// Prime sieve as a growing actor pipeline — the classic concurrent-OOPL
// benchmark shape (a dynamic chain of filter objects).
//
// Each Filter object holds one prime. Candidate numbers flow down the
// chain: a filter drops multiples of its prime and forwards survivors; a
// number surviving to the tail *is* prime, and the tail grows the chain by
// remote-creating a new Filter for it (awaiting a chunk if the stock is
// cold — during which later candidates queue in arrival order, so the
// pipeline stays correct). An end-of-stream token sweeps the chain counting
// filters and reports the prime count to a completion latch.
//
// This exercises, in one workload: per-channel FIFO, waiting-mode queueing
// during creation, the fault-table race (forwarding to a filter whose
// creation request is still in flight), and placement policies.
#pragma once

#include "abcl/abcl.hpp"

namespace abcl::apps {

struct SieveProgram {
  PatternId num = 0;  // [n] candidate number
  PatternId end = 0;  // [count] end-of-stream sweep
  const core::ClassInfo* filter_cls = nullptr;
  CompletionPatterns latch;
};

SieveProgram register_sieve(core::Program& prog);

struct SieveResult {
  std::int64_t primes = 0;        // number of filters == pi(limit)
  std::uint64_t filters_created = 0;
  RunReport rep;
  core::NodeStats stats;
};

// Counts primes in [2, limit] by streaming candidates through the pipeline.
SieveResult run_sieve(World& world, const SieveProgram& sp, std::int64_t limit);

}  // namespace abcl::apps
