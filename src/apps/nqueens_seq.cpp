#include "apps/nqueens_seq.hpp"

#include <bit>
#include <chrono>

#include "util/assert.hpp"

namespace abcl::apps {

namespace {

struct SeqCtx {
  std::uint32_t mask;
  int n;
  sim::Instr charge_base;
  sim::Instr charge_per_col;
  std::int64_t solutions = 0;
  std::uint64_t nodes = 0;
  sim::Instr charged = 0;
};

void dfs(SeqCtx& c, std::uint32_t cols, std::uint32_t d1, std::uint32_t d2,
         int row) {
  ++c.nodes;
  if (row == c.n) {
    // A full placement counts as a tree node of its own, matching the
    // parallel program (and the paper's creation counts).
    ++c.solutions;
    c.charged += c.charge_base;
    return;
  }
  std::uint32_t cand = ~(cols | d1 | d2) & c.mask;
  c.charged += c.charge_base +
               c.charge_per_col * static_cast<sim::Instr>(std::popcount(cand));
  while (cand != 0) {
    std::uint32_t bit = cand & (0u - cand);
    cand &= cand - 1;
    dfs(c, cols | bit, ((d1 | bit) << 1) & c.mask, (d2 | bit) >> 1, row + 1);
  }
}

}  // namespace

NQueensSeqResult nqueens_seq(int n, sim::Instr charge_base,
                             sim::Instr charge_per_col) {
  ABCL_CHECK(n >= 1 && n <= 16);
  SeqCtx c;
  c.mask = (1u << n) - 1;
  c.n = n;
  c.charge_base = charge_base;
  c.charge_per_col = charge_per_col;

  auto t0 = std::chrono::steady_clock::now();
  dfs(c, 0, 0, 0, 0);
  auto t1 = std::chrono::steady_clock::now();

  NQueensSeqResult r;
  r.solutions = c.solutions;
  r.tree_nodes = c.nodes;
  r.charged = c.charged;
  r.host_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace abcl::apps
