#include "apps/fib.hpp"

namespace abcl::apps {

namespace {

struct FibState {};  // pure computation; no state variables

struct ComputeFrame : Frame {
  std::int64_t n = 0;
  PatternId pat = 0;
  ReplyDest rd;
  CreateCall cc;
  MailAddr ch1, ch2;
  NowCall c1, c2;
  std::int64_t r1 = 0;

  static void init(ComputeFrame& f, const Msg& m) {
    f.n = m.i64(0);
    f.pat = m.pattern;
    f.rd = m.reply;
  }
  static Status run(Ctx& ctx, FibState& self, ComputeFrame& f);
};

Status ComputeFrame::run(Ctx& ctx, FibState&, ComputeFrame& f) {
  ABCL_BEGIN(f);
  ctx.charge(25);
  if (f.n < 2) {
    Word v = static_cast<Word>(f.n);
    ctx.reply(f.rd, &v, 1);
    ctx.retire_self();
    ABCL_RETURN();
  }
  f.cc = ctx.remote_create_begin(*ctx.current_object()->cls,
                                 ctx.placement().choose(ctx), nullptr, 0);
  ABCL_AWAIT(ctx, f, 1, f.cc.call);
  f.ch1 = ctx.remote_create_finish(f.cc);
  f.cc = ctx.remote_create_begin(*ctx.current_object()->cls,
                                 ctx.placement().choose(ctx), nullptr, 0);
  ABCL_AWAIT(ctx, f, 2, f.cc.call);
  f.ch2 = ctx.remote_create_finish(f.cc);
  {
    Word a1 = static_cast<Word>(f.n - 1);
    f.c1 = ctx.send_now(f.ch1, f.pat, &a1, 1);
    Word a2 = static_cast<Word>(f.n - 2);
    f.c2 = ctx.send_now(f.ch2, f.pat, &a2, 1);
  }
  ABCL_AWAIT(ctx, f, 3, f.c1);
  f.r1 = static_cast<std::int64_t>(ctx.take_reply(f.c1));
  ABCL_AWAIT(ctx, f, 4, f.c2);
  {
    Word v = static_cast<Word>(f.r1 +
                               static_cast<std::int64_t>(ctx.take_reply(f.c2)));
    ctx.reply(f.rd, &v, 1);
    ctx.retire_self();
  }
  ABCL_END();
}

}  // namespace

FibProgram register_fib(core::Program& prog) {
  FibProgram fp;
  fp.compute = prog.patterns().intern("fib.compute", 1);
  ClassDef<FibState> def(prog, "Fib");
  def.method<ComputeFrame>(fp.compute);
  fp.cls = &def.info();
  return fp;
}

FibResult run_fib(World& world, const FibProgram& fp, int n) {
  // A latch-free harness: the root call's reply box is allocated on node 0
  // by send_now and read by the host after quiescence.
  core::ReplyBox* box = nullptr;
  world.boot(0, [&](Ctx& ctx) {
    MailAddr root = ctx.create_local(*fp.cls, nullptr, 0);
    Word a = static_cast<Word>(n);
    core::NowCall call = ctx.send_now(root, fp.compute, &a, 1);
    box = call.box;
  });
  RunReport rep = world.run();

  ABCL_CHECK(box != nullptr && box->state == core::ReplyBox::State::kFull);
  FibResult r;
  r.value = static_cast<std::int64_t>(box->vals[0]);
  r.rep = rep;
  return r;
}

}  // namespace abcl::apps
