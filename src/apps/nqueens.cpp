#include "apps/nqueens.hpp"

#include <bit>

namespace abcl::apps {

namespace {

// Creation-argument layout (9 words):
//   0,1  parent mail address
//   2    pattern to report completion with (nq.done, or latch.done for root)
//   3    nq.done pattern id (what this node's children report with)
//   4    (n << 8) | row
//   5,6,7 cols, d1, d2 bitboards
//   8    (charge_base << 16) | charge_per_col
struct NqState {
  MailAddr parent;
  PatternId parent_pat = 0;
  PatternId done_pat = 0;
  std::int32_t n = 0;
  std::int32_t row = 0;
  std::uint32_t cols = 0;
  std::uint32_t d1 = 0;
  std::uint32_t d2 = 0;
  std::uint32_t work = 0;
  std::int32_t pending = 0;
  std::int64_t solutions = 0;

  void on_create(const Msg& m) {
    parent = m.addr(0);
    parent_pat = static_cast<PatternId>(m.at(2));
    done_pat = static_cast<PatternId>(m.at(3));
    n = static_cast<std::int32_t>(m.at(4) >> 8);
    row = static_cast<std::int32_t>(m.at(4) & 0xFF);
    cols = static_cast<std::uint32_t>(m.at(5));
    d1 = static_cast<std::uint32_t>(m.at(6));
    d2 = static_cast<std::uint32_t>(m.at(7));
    work = static_cast<std::uint32_t>(m.at(8));
  }

  sim::Instr expand_charge(int candidates) const {
    return (work >> 16) +
           static_cast<sim::Instr>(work & 0xFFFF) *
               static_cast<sim::Instr>(candidates);
  }

  void report(Ctx& ctx) {
    Word v = static_cast<Word>(solutions);
    ctx.send_past(parent, parent_pat, &v, 1);
    ctx.retire_self();
  }
};

struct NqGoFrame : Frame {
  std::uint32_t cand = 0;
  PatternId go_pat = 0;  // this method's own pattern (inherited by children)
  CreateCall cc;

  static void init(NqGoFrame& f, const Msg& m) { f.go_pat = m.pattern; }
  static Status run(Ctx& ctx, NqState& self, NqGoFrame& f);
};

Status NqGoFrame::run(Ctx& ctx, NqState& self, NqGoFrame& f) {
  ABCL_BEGIN(f);
  if (self.row == self.n) {
    // All n queens placed: this object *is* a solution (the paper's
    // creation counts include one object per solution — 2,056 for N=8 =
    // 1,964 interior nodes + 92 solutions + root).
    ctx.charge(self.expand_charge(0));
    self.solutions = 1;
    self.report(ctx);
    ABCL_RETURN();
  }
  {
    const std::uint32_t mask = (1u << self.n) - 1;
    f.cand = ~(self.cols | self.d1 | self.d2) & mask;
    ctx.charge(self.expand_charge(std::popcount(f.cand)));
  }
  while (f.cand != 0) {
    {
      const std::uint32_t bit = f.cand & (0u - f.cand);
      const std::uint32_t mask = (1u << self.n) - 1;
      MailAddr me = ctx.self_addr();
      Word args[9];
      args[0] = me.word_node();
      args[1] = me.word_ptr();
      args[2] = self.done_pat;
      args[3] = self.done_pat;
      args[4] = (static_cast<Word>(static_cast<std::uint32_t>(self.n)) << 8) |
                static_cast<Word>(static_cast<std::uint32_t>(self.row + 1));
      args[5] = self.cols | bit;
      args[6] = ((self.d1 | bit) << 1) & mask;
      args[7] = (self.d2 | bit) >> 1;
      args[8] = self.work;
      NodeId target = ctx.placement().choose(ctx);
      f.cc = ctx.remote_create_begin(*ctx.current_object()->cls, target, args, 9);
    }
    ABCL_AWAIT(ctx, f, 1, f.cc.call);
    {
      MailAddr child = ctx.remote_create_finish(f.cc);
      ctx.send_past(child, f.go_pat, nullptr, 0);
      self.pending += 1;
      f.cand &= f.cand - 1;
    }
  }
  if (self.pending == 0) self.report(ctx);
  ABCL_END();
}

struct NqDoneFrame : Frame {
  std::int64_t k = 0;
  static void init(NqDoneFrame& f, const Msg& m) { f.k = m.i64(0); }
  static Status run(Ctx& ctx, NqState& self, NqDoneFrame& f) {
    ctx.charge(20);  // accumulate + decrement bookkeeping
    self.solutions += f.k;
    self.pending -= 1;
    ABCL_CHECK(self.pending >= 0);
    if (self.pending == 0) self.report(ctx);
    return Status::kDone;
  }
};

}  // namespace

NQueensProgram register_nqueens(core::Program& prog) {
  NQueensProgram np;
  np.latch = register_completion_latch(prog);
  np.go = prog.patterns().intern("nq.go", 0);
  np.done = prog.patterns().intern("nq.done", 1);
  ClassDef<NqState> def(prog, "NqNode");
  def.method<NqGoFrame>(np.go);
  def.method<NqDoneFrame>(np.done);
  np.node_cls = &def.info();
  return np;
}

NQueensResult run_nqueens(World& world, const NQueensProgram& np,
                          const NQueensParams& p) {
  ABCL_CHECK(p.n >= 1 && p.n <= 16);
  ABCL_CHECK(p.charge_base < (1u << 16) && p.charge_per_col < (1u << 16));

  const core::NodeStats before = world.total_stats();
  MailAddr latch;
  world.boot(0, [&](Ctx& ctx) {
    latch = ctx.create_local(*np.latch.cls, {});
    ctx.send_past(latch, np.latch.expect, {1});
    Word work = (static_cast<Word>(p.charge_base) << 16) |
                static_cast<Word>(p.charge_per_col);
    Word args[9] = {latch.word_node(), latch.word_ptr(), np.latch.done,
                    np.done,           static_cast<Word>(p.n) << 8,
                    0,                 0,
                    0,                 work};
    MailAddr root = ctx.create_local(*np.node_cls, args, 9);
    ctx.send_past(root, np.go, nullptr, 0);
  });

  RunReport rep = world.run();
  const CompletionLatch& latch_s = latch_state(latch);
  ABCL_CHECK_MSG(latch_s.done(), "N-queens did not run to completion");

  NQueensResult r;
  r.solutions = latch_s.total;
  // Tree objects = all creations minus the latch (stock chunks are memory,
  // not objects, and are not counted by the creation stats).
  core::NodeStats after = world.total_stats();
  r.objects_created = (after.creations_local - before.creations_local) +
                      (after.creations_remote - before.creations_remote) - 1;
  r.messages = 2 * r.objects_created;  // one go + one done per tree object
  r.sim_time = rep.sim_time;
  r.sim_ms = rep.sim_ms;
  r.heap_bytes = world.total_heap_bytes();
  r.stats = world.total_stats();
  r.rep = rep;
  return r;
}

NQueensResult run_nqueens_on(core::Program& prog, const NQueensProgram& np,
                             const NQueensParams& p, WorldConfig cfg) {
  World world(prog, cfg);
  return run_nqueens(world, np, p);
}

}  // namespace abcl::apps
