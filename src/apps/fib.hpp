// Fork-join Fibonacci — exercises now-type sends, reply destinations,
// blocking/resumption and remote creation in a tree recursion.
#pragma once

#include "abcl/abcl.hpp"

namespace abcl::apps {

struct FibProgram {
  PatternId compute = 0;  // now-type: [n] -> reply fib(n)
  const core::ClassInfo* cls = nullptr;
};

FibProgram register_fib(core::Program& prog);

struct FibResult {
  std::int64_t value = 0;
  RunReport rep;
};

// Computes fib(n) on the world, one object per recursive call.
FibResult run_fib(World& world, const FibProgram& fp, int n);

}  // namespace abcl::apps
