// Deterministic node->worker rebalancing for the host-parallel driver.
//
// The static round-robin shard (node i -> worker i mod T) idles most of the
// host when load concentrates on a few nodes (the hot-spot workloads). At
// every window barrier the driver may instead recompute the assignment from
// a pure function of *simulated* state: each node's committed-quantum EWMA,
// greedily packed largest-first onto the least-loaded worker, with SplitMix
// hash tie-breaks (decide_shed-style) so equal loads still order
// deterministically. Nothing host-dependent feeds the decision — the window
// sequence and per-window quantum counts are functions of the simulated
// keys alone — so the assignment history is bit-identical at any thread
// count, and because reassignment happens only at barriers (outboxes and
// trace buffers drained), each source still lives in exactly one outbox per
// window and the canonical (key, src) commit order is untouched. Simulated
// results therefore do not depend on the assignment at all; the balancer
// only decides which host thread does the work.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace abcl::sim {

// Shard policy of the parallel driver: fixed round-robin (default) or
// barrier-time EWMA rebalancing. Results are byte-identical either way.
enum class ShardKind : std::uint8_t { kStatic, kBalanced };

// Stable spelling (matches the ABCLSIM_SHARD grammar) for logs/JSON.
inline const char* to_string(ShardKind k) {
  return k == ShardKind::kBalanced ? "balanced" : "static";
}

class ShardBalancer {
 public:
  // `seed` feeds the tie-break hash stream (the world seed, so equal-load
  // orderings differ across worlds but never across runs of one world).
  ShardBalancer(std::int32_t nodes, int workers, std::uint64_t seed);

  // Folds one window's per-node quantum counts into the load EWMAs and
  // recomputes the assignment. `window_quanta` must have num-nodes entries;
  // they are consumed (zeroed for the next window). Returns how many nodes
  // changed worker (0 = assignment unchanged, nothing to reinstall).
  int rebalance(std::uint64_t* window_quanta);

  // Current node -> worker map (seeded round-robin, like the static shard).
  const std::vector<std::int32_t>& assignment() const { return assignment_; }

 private:
  int workers_;
  std::uint64_t seed_;
  std::vector<std::int32_t> assignment_;
  // Fixed-point (<< 8) exponentially weighted quantum count per node.
  std::vector<std::uint64_t> ewma_;
  std::vector<std::uint64_t> tiebreak_;  // per-node SplitMix roll (cached)
  std::vector<std::int32_t> order_;      // sort scratch
  std::vector<std::uint64_t> load_;      // per-worker packed load scratch
};

}  // namespace abcl::sim
