// Host-parallel conservative PDES driver.
//
// Bounded-window synchronization: each round computes
//   horizon = min(effective key over all nodes) + lookahead
// where lookahead is the minimum positive latency any packet can have
// (net::Network::min_packet_latency). Every quantum with key < horizon is
// independent of every send issued inside the window — such a send arrives
// at >= min_key + lookahead = horizon — so a fixed pool of worker threads
// executes all of them concurrently, each node statically sharded to one
// worker (node id mod thread count).
//
// Determinism: workers never touch the shared network state. Sends are
// buffered into per-worker outboxes, stamped with the issuing quantum's
// key, and committed at the window barrier in canonical order — ascending
// (quantum key, src), preserving per-node program order — which is exactly
// the order the serial Machine would have issued them. Seq numbers, channel
// floors, Network::Stats (Welford updates included), and trace output are
// therefore bit-identical to a serial run at any thread count. Trace events
// are likewise buffered per worker and replayed sorted by (quantum key,
// node) into the originally attached tracers.
//
// Thread-safety partition during a window: a worker touches only its own
// nodes' state, those nodes' destination queues (poll side), its own outbox,
// trace buffer and packet-pool magazine. The shared mutable state is the
// network's in-flight counter (atomic) and the packet pool's depot, which a
// worker only reaches through its magazine's overflow path (mutex-guarded,
// amortized one trip per kMagazineCap frees).
//
// Commit-path parallelism: under the network's default kMerge flush, each
// worker stable-sorts its own outbox into canonical (quantum key, src)
// order at the end of its window — inside the parallel region — so the
// coordinator's flush only runs an N-way merge over pre-sorted runs.
//
// Epoch waits are spin-then-park: a bounded busy-wait burst (skipped
// entirely on single-core hosts, where spinning only steals cycles from
// the thread being waited on), then a condvar park. The atomics still
// carry the synchronization; the mutex/condvar pair only prevents lost
// wakeups around the park.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"

namespace abcl::sim {

class ParallelMachine : public Driver {
 public:
  // `net` may be nullptr for driver-only unit tests (lookahead falls back
  // to 1 and sends are not redirected). `num_threads` is clamped to >= 1.
  ParallelMachine(std::vector<NodeExec*> nodes, net::Network* net,
                  int num_threads);
  ~ParallelMachine() override;

  // Only ever invoked on the coordinator thread (commits happen at window
  // barriers or outside run()); folds the destination's new key into the
  // running minimum for the next window. Arrivals only lower next_wake, so
  // min over notification-time keys equals the post-flush key.
  void notify_work(NodeId dst) override;
  RunReport run(Instr max_time = kInstrInf) override;

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::uint64_t windows_run() const { return windows_; }

 private:
  // Tracer interposer: tags each event with the key of the quantum that
  // produced it so the barrier replay can reconstruct serial order.
  class WindowTraceBuffer final : public Tracer {
   public:
    WindowTraceBuffer() : Tracer(1) {}
    void set_current_key(Instr k) { key_ = k; }
    void record(Instr t, NodeId node, TraceEv kind,
                std::uint64_t payload) override {
      items_.push_back({key_, Event{t, node, kind, payload}});
    }

    struct Tagged {
      Instr key;
      Event ev;
    };
    std::vector<Tagged> items_;

   private:
    Instr key_ = 0;
  };

  struct Worker {
    std::vector<NodeId> shard;
    net::Network::Outbox outbox;
    // Thread-local cache of free packet slots; polls on this shard release
    // into it, touching the shared depot only on overflow.
    net::PacketPool::Magazine magazine;
    WindowTraceBuffer traces;
    std::uint64_t quanta = 0;
    // Min effective key across the shard after the window's execution
    // (published to the coordinator by the release-store on `done`).
    Instr shard_min = kInstrInf;
    std::atomic<std::uint64_t> done{0};
  };

  Instr effective_key(NodeExec& n) const;
  void run_shard(Worker& w);
  void worker_main(Worker& w);
  void flush_window();

  net::Network* net_;
  Instr lookahead_;
  std::vector<Worker> workers_;

  // Window parameters, written by the coordinator before it releases an
  // epoch; the release/acquire pair on epoch_ publishes them.
  Instr window_horizon_ = 0;
  Instr window_max_time_ = kInstrInf;

  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};

  // Park support for the epoch handshake (see file header). wake_mu_ is
  // only ever held for empty critical sections or around a cv wait; the
  // epoch_/done atomics remain the published state.
  int spin_limit_;  // busy-wait iterations before parking; 0 = park at once
  std::mutex wake_mu_;
  std::condition_variable epoch_cv_;  // workers park here between windows
  std::condition_variable done_cv_;   // coordinator parks here at barriers

  // Replay scratch + original tracers saved across a run() while buffers
  // are interposed (index = node id; nullptr = node had no tracer).
  std::vector<net::Network::Outbox*> outbox_ptrs_;
  std::vector<WindowTraceBuffer::Tagged> trace_merge_;
  std::vector<Tracer*> saved_tracers_;
  Instr notified_min_ = kInstrInf;  // min key among flush-time deliveries
  std::uint64_t windows_ = 0;
  std::uint64_t quanta_ = 0;
};

}  // namespace abcl::sim
