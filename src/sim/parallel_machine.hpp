// Host-parallel conservative PDES driver.
//
// Bounded-window synchronization. Under the default flat policy each round
// computes
//   horizon = min(effective key over all nodes) + lookahead
// where lookahead is the minimum positive latency any packet can have
// (net::Network::min_packet_latency). Every quantum with key < horizon is
// independent of every send issued inside the window — such a send arrives
// at >= min_key + lookahead = horizon — so a fixed pool of worker threads
// executes all of them concurrently.
//
// Distance-aware horizons (HorizonKind::kDistance): the flat bound ignores
// that a packet from j to i is priced at >= lookahead + per_hop *
// hops(j, i), so node i may instead run to the per-node horizon
//   H_i = lookahead + min_{j != i} (key_j + per_hop * hops(j, i))
// computed each window by sim::HorizonMap in O(N) (see lookahead.hpp for the
// exclude-self transforms and why excluding j == i is sound: the runtime
// never sends to its own node). Windows get wider the farther a node sits
// from the global minimum — an isolated busy node runs to quiescence in one
// window — which only changes *when* barriers happen, never what executes:
// any conservative window executes the same quanta with the same inputs as
// the serial driver.
//
// Determinism: workers never touch the shared network state. Sends are
// buffered into per-worker outboxes, stamped with the issuing quantum's
// key, and committed at the window barrier in canonical order — ascending
// (quantum key, src), preserving per-node program order. Seq numbers and
// channel floors are per-src/per-channel, so they only need each source's
// program order, which any window shape preserves. The two *globally*
// order-sensitive observables — the network's Welford wire-latency stat and
// trace replay — are reordered behind the global key frontier: each barrier
// computes the next window's floor key F (no later quantum, hence no later
// send or trace event, can carry a key < F), drains the network's deferred
// stat samples below F (Network::drain_deferred_wire_stats) and replays
// buffered trace events below F sorted by (key, node), carrying the rest.
// Under the flat policy every window drains completely (all keys < horizon
// <= F) and the behavior is exactly the historical one; under distance
// horizons the carry reconstructs the serial global order across windows.
// Either way the results are bit-identical to a serial run at any thread
// count.
//
// Shard policy: nodes map statically to workers (node id mod thread count)
// or, under ShardKind::kBalanced, are reassigned at window barriers by
// sim::ShardBalancer from per-node committed-quantum EWMAs — a pure
// function of simulated state, so the assignment history is itself
// bit-identical at any thread count. Reassignment happens only between
// windows, when outboxes and trace buffers are drained, so each source
// still lives in exactly one outbox per window and the canonical commit
// order (and with it every simulated result) is untouched.
//
// Thread-safety partition during a window: a worker touches only its own
// nodes' state, those nodes' destination queues (poll side), its own outbox,
// trace buffer and packet-pool magazine, plus its nodes' slots in the
// per-node key/quanta arrays (disjoint indices). The shared mutable state is
// the network's in-flight counter (atomic) and the packet pool's depot,
// which a worker only reaches through its magazine's overflow path
// (mutex-guarded, amortized one trip per kMagazineCap frees). Window
// parameters — horizon, per-node horizon vector, shard vectors — are
// written by the coordinator between windows and published by the
// release/acquire pair on epoch_.
//
// Epoch waits are spin-then-park: a bounded busy-wait burst (skipped
// entirely on single-core hosts, where spinning only steals cycles from
// the thread being waited on), then a condvar park. The atomics still
// carry the synchronization; the mutex/condvar pair only prevents lost
// wakeups around the park.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "sim/lookahead.hpp"
#include "sim/machine.hpp"
#include "sim/shard_balance.hpp"
#include "sim/trace.hpp"

namespace abcl::sim {

// Policy knobs of the parallel driver (namespace-scope so the in-class
// default argument below can use the member initializers).
struct ParallelOptions {
  HorizonKind horizon = HorizonKind::kGlobal;
  ShardKind shard = ShardKind::kStatic;
  std::uint64_t seed = 1;  // balancer tie-break stream (the world seed)
};

class ParallelMachine : public Driver {
 public:
  using Options = ParallelOptions;

  // `net` may be nullptr for driver-only unit tests (lookahead falls back
  // to 1, sends are not redirected, and the horizon policy falls back to
  // kGlobal — distance bounds need the network's topology and cost model).
  // `num_threads` is clamped to >= 1. Distance horizons also fall back to
  // the flat bound when fault injection is enabled: the issue's contract is
  // the analytic per-pair pricing, and the retry protocol's effective wire
  // times are easiest to bound globally.
  ParallelMachine(std::vector<NodeExec*> nodes, net::Network* net,
                  int num_threads, Options opts = Options());
  ~ParallelMachine() override;

  // Only ever invoked on the coordinator thread (commits happen at window
  // barriers or outside run()); folds the destination's new key into the
  // running minimum for the next window. Arrivals only lower next_wake, so
  // min over notification-time keys equals the post-flush key.
  void notify_work(NodeId dst) override;
  RunReport run(Instr max_time = kInstrInf) override;

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::uint64_t windows_run() const { return windows_; }
  // Sum over windows of nodes that executed >= 1 quantum: occupancy_sum /
  // windows_run is the mean window occupancy. A function of simulated state
  // only — identical at any thread count for a given horizon policy.
  std::uint64_t occupancy_sum() const { return occupancy_sum_; }
  // Barrier-time reassignments applied / individual node moves. Zero under
  // kStatic and on single-worker runs; depends on the worker count (but
  // never on anything simulated-observable).
  std::uint64_t rebalances() const { return rebalances_; }
  std::uint64_t shard_moves() const { return shard_moves_; }
  // Effective policies after the nullptr-net / fault-injection fallbacks.
  HorizonKind horizon_kind() const {
    return distance_ ? HorizonKind::kDistance : HorizonKind::kGlobal;
  }
  ShardKind shard_kind() const {
    return balancer_ != nullptr ? ShardKind::kBalanced : ShardKind::kStatic;
  }

 private:
  // Tracer interposer: tags each event with the key of the quantum that
  // produced it so the barrier replay can reconstruct serial order.
  class WindowTraceBuffer final : public Tracer {
   public:
    WindowTraceBuffer() : Tracer(1) {}
    void set_current_key(Instr k) { key_ = k; }
    void record(Instr t, NodeId node, TraceEv kind,
                std::uint64_t payload) override {
      items_.push_back({key_, Event{t, node, kind, payload}});
    }

    struct Tagged {
      Instr key;
      Event ev;
    };
    std::vector<Tagged> items_;

   private:
    Instr key_ = 0;
  };

  struct Worker {
    std::vector<NodeId> shard;
    net::Network::Outbox outbox;
    // Thread-local cache of free packet slots; polls on this shard release
    // into it, touching the shared depot only on overflow.
    net::PacketPool::Magazine magazine;
    WindowTraceBuffer traces;
    std::uint64_t quanta = 0;
    // Nodes of this shard that executed >= 1 quantum in the last window.
    std::uint64_t active = 0;
    // Min effective key across the shard after the window's execution
    // (published to the coordinator by the release-store on `done`).
    Instr shard_min = kInstrInf;
    std::atomic<std::uint64_t> done{0};
  };

  Instr effective_key(NodeExec& n) const;
  void run_shard(Worker& w);
  void worker_main(Worker& w);
  void compute_horizons();
  void flush_commits();
  void replay_traces(Instr frontier);
  void install_node(NodeId id, Worker& w);
  void apply_rebalance();

  net::Network* net_;
  Instr lookahead_;
  std::vector<Worker> workers_;
  bool distance_;  // effective horizon policy (see ctor fallbacks)

  // Window parameters, written by the coordinator before it releases an
  // epoch; the release/acquire pair on epoch_ publishes them (along with
  // horizons_ and any shard reassignment).
  Instr window_horizon_ = 0;
  Instr window_max_time_ = kInstrInf;

  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};

  // Park support for the epoch handshake (see file header). wake_mu_ is
  // only ever held for empty critical sections or around a cv wait; the
  // epoch_/done atomics remain the published state.
  int spin_limit_;  // busy-wait iterations before parking; 0 = park at once
  std::mutex wake_mu_;
  std::condition_variable epoch_cv_;  // workers park here between windows
  std::condition_variable done_cv_;   // coordinator parks here at barriers

  // Distance-horizon state: per-node window-start keys (each worker writes
  // only its shard's slots; the coordinator folds flush-time deliveries in
  // via notify_work) and the per-node horizons derived from them.
  std::unique_ptr<HorizonMap> hmap_;
  // Unclamped wire floor for the per-pair bound (see ctor); the clamped
  // lookahead_ stays the flat policy's window width.
  Instr dist_base_ = 1;
  std::vector<Instr> node_key_;
  std::vector<Instr> node_bound_;  // relax() scratch
  std::vector<Instr> horizons_;

  // Balanced-shard state: per-node quanta of the current window (worker-
  // written, disjoint slots) feeding the balancer's EWMAs at each barrier.
  std::unique_ptr<ShardBalancer> balancer_;
  std::vector<std::uint64_t> window_quanta_;

  // Replay scratch + original tracers saved across a run() while buffers
  // are interposed (index = node id; nullptr = node had no tracer).
  // trace_merge_ persists across windows under distance horizons: the
  // (key, node)-sorted suffix at or beyond the key frontier carries over
  // until the frontier passes it.
  std::vector<net::Network::Outbox*> outbox_ptrs_;
  std::vector<WindowTraceBuffer::Tagged> trace_merge_;
  std::vector<Tracer*> saved_tracers_;
  Instr notified_min_ = kInstrInf;  // min key among flush-time deliveries
  std::uint64_t windows_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::uint64_t rebalances_ = 0;
  std::uint64_t shard_moves_ = 0;
  std::uint64_t quanta_ = 0;
};

}  // namespace abcl::sim
