// Cost model for the simulated multicomputer.
//
// Every runtime operation charges a named instruction cost to the executing
// node's clock. The constants of the `ap1000()` preset are taken directly
// from the paper: Table 2 gives the component costs of an intra-node message
// to a dormant object (25 instructions total), Section 6.1 gives the
// active-mode cost (~4x dormant), sender setup (~20 instr), receiver
// software (~50 instr) and the ~1.5 us/way hardware wire latency.
//
// OptFlags model the compile-time optimizations of Section 6.1 which shrink
// the dormant send from 25 to 8 instructions (elide locality check, VFTP
// switches, message-queue check and the polling slot).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace abcl::sim {

// Compile-time optimizations the paper's Section 6.1 enumerates. The flags
// are applied when charging costs (and, for inline_known_class, by the
// inlined fast-path send in the core runtime).
struct OptFlags {
  bool elide_locality_check = false;  // receiver statically known local
  bool elide_vftp_switch = false;     // method sends no messages / never blocks
  bool elide_mq_check = false;        // object not history-sensitive
  bool elide_poll = false;            // periodic polling hoisted out
};

struct CostModel {
  // --- intra-node, dormant fast path (Table 2) --------------------------
  Instr locality_check = 3;   // "Check Locality"
  Instr lookup_call = 5;      // "Lookup and Call" (VFT index + call)
  Instr vftp_switch = 3;      // one switch; charged twice (to-active, back)
  Instr mq_check = 3;         // "Check Message Queue"
  Instr poll_remote = 5;      // "Polling of Remote Message"
  Instr stack_return = 3;     // "Adjusting Stack Pointer and Return"

  // --- intra-node, active (buffered) path (Section 6.1: ~9.6 us total) ---
  Instr frame_alloc = 18;     // heap frame allocation
  Instr msg_store = 10;       // storing the message into the frame
  Instr mq_enqueue = 12;      // enqueue frame into the object's message queue
  Instr sched_enqueue = 16;   // enqueue object into the scheduling queue
  Instr sched_dispatch = 28;  // dequeue + context re-establishment

  // --- blocking / context management -------------------------------------
  Instr ctx_save = 25;        // spill stack frame + locals to the heap frame
  Instr ctx_restore = 18;     // restore a saved context
  Instr reply_box_alloc = 6;  // allocate + initialise a reply-destination box
  Instr reply_check = 3;      // test the reply box after a now-type send
  Instr select_scan_per_msg = 4;  // message-queue scan step in selective recv

  // --- object creation ----------------------------------------------------
  Instr create_local = 23;    // 2.1 us (Table 1) at the effective CPI
  Instr create_remote_local_part = 15;  // draw address from stock + request send
  Instr create_remote_install = 30;     // Category-2 handler: install class
  Instr chunk_replenish = 12;           // Category-3 handler: push new chunk

  // --- inter-node messaging (Section 6.1) ---------------------------------
  Instr send_setup = 20;      // sender: ~20 instr, 4-word packet + routing
  Instr recv_handler = 42;    // receiver: poll hit, extract, buffer mgmt
  Instr wire_latency = 16;    // ~1.5 us each way at the effective CPI
  Instr per_hop = 1;          // torus per-hop cost
  Instr per_word = 1;         // payload serialization per word

  // --- inlined sends (Section 8.2) -----------------------------------------
  Instr inline_mode_check = 2;  // "vftp == C_dormant_vft" guard

  // --- scheduling policy baseline (Figure 6's "naive") --------------------
  // The naive scheduler always buffers + round-trips the scheduling queue;
  // it charges frame_alloc + msg_store + mq_enqueue + sched_enqueue +
  // sched_dispatch for every local message regardless of receiver mode.

  double clock_mhz = 25.0;    // AP1000 node clock

  // Effective cycles per instruction. Table 2 counts 25 instructions for a
  // dormant send that Table 1 times at 2.3 us on the 25 MHz SPARC — i.e.
  // ~2.3 effective CPI (cache misses, loads). Wall-clock figures are
  // instructions * cpi / clock_mhz; the instruction counts themselves stay
  // the paper's.
  double cpi = 2.3;

  OptFlags opt;

  // Total charged on the dormant fast path, excluding the method body.
  Instr dormant_send_overhead() const {
    Instr t = lookup_call + stack_return;
    if (!opt.elide_locality_check) t += locality_check;
    if (!opt.elide_vftp_switch) t += 2 * vftp_switch;
    if (!opt.elide_mq_check) t += mq_check;
    if (!opt.elide_poll) t += poll_remote;
    return t;
  }

  // Total charged on the active (buffered) path, excluding the method body.
  Instr active_send_overhead() const {
    Instr t = frame_alloc + msg_store + mq_enqueue + sched_enqueue + sched_dispatch;
    if (!opt.elide_locality_check) t += locality_check;
    t += lookup_call;  // the queuing procedure is reached through the VFT too
    return t;
  }

  double us(Instr n) const { return instr_to_us(n, clock_mhz) * cpi; }
  double ms(Instr n) const { return us(n) / 1000.0; }

  // The paper's machine: 25 MHz SPARC nodes, Table 2 component costs.
  static CostModel ap1000();

  // A free model (all zero costs) for pure-logic unit tests where simulated
  // time should not influence behaviour.
  static CostModel zero();
};

}  // namespace abcl::sim
