#include "sim/lookahead.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace abcl::sim {

namespace {

inline Instr mul_sat(Instr w, Instr k) {
  if (w == 0 || k == 0) return 0;
  return k > kInstrInf / w ? kInstrInf : w * k;
}

}  // namespace

void line_min_plus_excl(const Instr* a, std::size_t n, Instr w, bool wrap,
                        Instr* out) {
  if (n == 0) return;
  // Forward sweep: out[i] = min over j < i of a[j] + w * (i - j). After
  // visiting i, f carries the best candidate for position i + 1, so the
  // element itself is never folded into its own slot.
  Instr f = kInstrInf;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = f;
    f = sat_add(std::min(f, a[i]), w);
  }
  // Backward sweep: j > i at distance j - i.
  f = kInstrInf;
  for (std::size_t i = n; i-- > 0;) {
    out[i] = std::min(out[i], f);
    f = sat_add(std::min(f, a[i]), w);
  }
  if (!wrap || n < 2) return;
  // Ring wrap terms. For j > i the wrap distance is n - (j - i), i.e.
  // a[j] + w * (n - j) + w * i — a suffix minimum of a[j] + w * (n - j)
  // plus a per-position w * i; symmetrically for j < i. Both sweeps keep
  // the running extremum strictly on the far side of i, so the element
  // never reaches its own slot via the "distance n" lap.
  Instr suf = kInstrInf;
  for (std::size_t i = n; i-- > 0;) {
    out[i] = std::min(out[i], sat_add(suf, mul_sat(w, i)));
    suf = std::min(suf, sat_add(a[i], mul_sat(w, n - i)));
  }
  Instr pre = kInstrInf;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::min(out[i], sat_add(pre, mul_sat(w, n - i)));
    pre = std::min(pre, sat_add(a[i], mul_sat(w, i)));
  }
}

HorizonMap::HorizonMap(const net::Topology* topo, Instr per_hop)
    : topo_(topo), per_hop_(per_hop) {
  ABCL_CHECK(topo_ != nullptr);
}

Instr HorizonMap::brute_force(const net::Topology& topo, Instr per_hop,
                              const std::vector<Instr>& keys, NodeId i) {
  Instr best = kInstrInf;
  for (std::size_t j = 0; j < keys.size(); ++j) {
    if (static_cast<NodeId>(j) == i) continue;
    Instr hops = static_cast<Instr>(topo.hops(static_cast<NodeId>(j), i));
    best = std::min(best, sat_add(keys[j], mul_sat(per_hop, hops)));
  }
  return best;
}

void HorizonMap::relax(const std::vector<Instr>& keys,
                       std::vector<Instr>* out) {
  ABCL_CHECK(static_cast<std::int32_t>(keys.size()) == topo_->num_nodes());
  out->resize(keys.size());
  switch (topo_->kind()) {
    case net::TopologyKind::kRing:
      relax_ring(keys, out);
      return;
    case net::TopologyKind::kTorus2D:
      relax_grid(keys, out, /*wrap=*/true);
      return;
    case net::TopologyKind::kMesh2D:
      relax_grid(keys, out, /*wrap=*/false);
      return;
    case net::TopologyKind::kFullyConnected:
      relax_full(keys, out);
      return;
    case net::TopologyKind::kHypercube:
      relax_cube(keys, out);
      return;
  }
  ABCL_UNREACHABLE();
}

void HorizonMap::relax_ring(const std::vector<Instr>& keys,
                            std::vector<Instr>* out) {
  if (keys.size() < 2) {
    std::fill(out->begin(), out->end(), kInstrInf);
    return;
  }
  line_min_plus_excl(keys.data(), keys.size(), per_hop_, /*wrap=*/true,
                     out->data());
}

// Separable 2-D pass over the X x Y grid (id = y * X + x). Hop distance is
// |dx| + |dy| (ring distances per axis when wrapping), so
//   min_{j != i} = min( min over same-row j != i,
//                       min over rows y' != y of the row-inclusive best )
// — the column pass runs the exclude-self transform over the include-self
// row results, which covers every (x', y') with y' != y including x' == x,
// while the row pass covers y' == y, x' != x. The union is exactly j != i.
void HorizonMap::relax_grid(const std::vector<Instr>& keys,
                            std::vector<Instr>* out, bool wrap) {
  const std::size_t x = static_cast<std::size_t>(topo_->dim_x());
  const std::size_t y = static_cast<std::size_t>(topo_->dim_y());
  if (keys.size() < 2) {
    std::fill(out->begin(), out->end(), kInstrInf);
    return;
  }
  row_full_.resize(keys.size());
  for (std::size_t r = 0; r < y; ++r) {
    const Instr* a = keys.data() + r * x;
    Instr* excl = out->data() + r * x;
    line_min_plus_excl(a, x, per_hop_, wrap, excl);
    for (std::size_t c = 0; c < x; ++c) {
      row_full_[r * x + c] = std::min(excl[c], a[c]);
    }
  }
  col_in_.resize(y);
  col_out_.resize(y);
  for (std::size_t c = 0; c < x; ++c) {
    for (std::size_t r = 0; r < y; ++r) col_in_[r] = row_full_[r * x + c];
    line_min_plus_excl(col_in_.data(), y, per_hop_, wrap, col_out_.data());
    for (std::size_t r = 0; r < y; ++r) {
      Instr& o = (*out)[r * x + c];
      o = std::min(o, col_out_[r]);
    }
  }
}

void HorizonMap::relax_full(const std::vector<Instr>& keys,
                            std::vector<Instr>* out) {
  const std::size_t n = keys.size();
  if (n < 2) {
    std::fill(out->begin(), out->end(), kInstrInf);
    return;
  }
  // Every other node is one hop away: the bound is min over j != i of
  // keys[j] + w, i.e. the global min for everyone except the (first)
  // argmin, which sees the second minimum.
  std::size_t i1 = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (keys[i] < keys[i1]) i1 = i;
  }
  Instr m2 = kInstrInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != i1) m2 = std::min(m2, keys[i]);
  }
  const Instr m1w = sat_add(keys[i1], per_hop_);
  const Instr m2w = sat_add(m2, per_hop_);
  for (std::size_t i = 0; i < n; ++i) (*out)[i] = i == i1 ? m2w : m1w;
}

// Hypercube: log2(N) include-self dimension passes compute
// D[i] = min_j keys[j] + w * popcount(i ^ j); the neighbour relaxation
// w + min over one-bit flips of D is then exact for every j != i (any j != i
// differs in some bit b, and D[i ^ b] holds keys[j] + w * (hops - 1)) and
// adds only the self echo keys[i] + 2w — a smaller, still-conservative
// candidate. Exact self exclusion does not separate across dimensions; the
// echo costs at most one window of run-ahead for an isolated busy node.
void HorizonMap::relax_cube(const std::vector<Instr>& keys,
                            std::vector<Instr>* out) {
  const std::size_t n = keys.size();
  if (n < 2) {
    std::fill(out->begin(), out->end(), kInstrInf);
    return;
  }
  cube_a_ = keys;
  for (std::size_t b = 1; b < n; b <<= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i & b) continue;
      const std::size_t j = i | b;
      const Instr ai = cube_a_[i];
      const Instr aj = cube_a_[j];
      cube_a_[i] = std::min(ai, sat_add(aj, per_hop_));
      cube_a_[j] = std::min(aj, sat_add(ai, per_hop_));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    Instr best = kInstrInf;
    for (std::size_t b = 1; b < n; b <<= 1) {
      best = std::min(best, cube_a_[i ^ b]);
    }
    (*out)[i] = sat_add(best, per_hop_);
  }
}

}  // namespace abcl::sim
