// Distance-aware lookahead for the host-parallel PDES driver.
//
// The flat window lets every node run quanta with key < min_key + wire_min,
// where wire_min = Network::min_packet_latency(). That discards the torus
// structure the cost model prices: a packet from j to i costs at least
// wire_min + per_hop * hops(j, i), so node i is causally shielded from j for
// per_hop * hops(j, i) extra instructions. The per-node horizon
//
//   H_i = wire_min + min_{j != i} (key_j + per_hop * hops(j, i))
//
// is therefore still conservative — any packet that could affect a quantum
// of node i with key < H_i was sent by some j at key >= key_j and arrives at
// >= key_j + wire_min + per_hop * hops(j, i) >= H_i — while letting nodes far
// from the global minimum run far ahead. Crucially the self term j == i is
// excluded: the runtime never sends a packet to its own node (local delivery
// short-circuits before Network::send on every path), so a node's own key
// does not bound its horizon. An isolated busy node (all others idle at
// kInstrInf) gets H_i = kInstrInf and drains in a single window, where the
// flat bound would re-barrier every wire_min instructions.
//
// HorizonMap computes the hop term B_i = min_{j != i} (key_j + per_hop *
// hops(j, i)) for all i in O(N) per call (O(N log N) for the hypercube) via
// exclude-self min-plus transforms:
//   - ring: linear prefix/suffix sweeps plus two wrap terms, all excluding i;
//   - torus/mesh: separable — an exclude-self pass along rows combined with
//     an exclude-self pass down columns of the include-self row transform;
//   - fully connected: min / second-min with argmin;
//   - hypercube: log2(N) include-self dimension passes, then one neighbour
//     relaxation w + min over neighbours — exact for every j != i and only
//     over-conservative in the self echo key_i + 2 * per_hop, which is still
//     a valid (smaller) bound.
// All arithmetic saturates at sim::kInstrInf (the "idle forever" key).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace abcl::sim {

// Horizon policy of the parallel driver: the flat global window (default)
// or per-node distance-aware windows. Results are byte-identical either
// way; only the number of barriers changes.
enum class HorizonKind : std::uint8_t { kGlobal, kDistance };

// Stable spelling (matches the ABCLSIM_HORIZON grammar) for logs/JSON.
inline const char* to_string(HorizonKind k) {
  return k == HorizonKind::kDistance ? "distance" : "global";
}

// a + b clamped to kInstrInf; treats kInstrInf as absorbing.
inline Instr sat_add(Instr a, Instr b) {
  return a >= kInstrInf - b ? kInstrInf : a + b;
}

class HorizonMap {
 public:
  // `topo` must outlive the map. `per_hop` is the cost model's per-hop wire
  // charge (0 degrades gracefully: B_i = min over the other nodes' keys).
  HorizonMap(const net::Topology* topo, Instr per_hop);

  // keys[i] = node i's current effective key (kInstrInf = idle, nothing in
  // flight). Writes out[i] = min_{j != i} sat(keys[j] + per_hop *
  // hops(j, i)); kInstrInf when every other node is idle (or N == 1). The
  // caller adds wire_min on top — and must also fold in its own key at
  // hops = 0 (self-sends are legal: a remote-create whose placement picks
  // the caller's node ships a real packet). `out` is resized to keys.size().
  void relax(const std::vector<Instr>& keys, std::vector<Instr>* out);

  // O(N^2) reference of the exact exclude-self bound, for tests and for the
  // hypercube tightness check. Ignores the neighbour-relaxation slack.
  static Instr brute_force(const net::Topology& topo, Instr per_hop,
                           const std::vector<Instr>& keys, NodeId i);

 private:
  void relax_ring(const std::vector<Instr>& keys, std::vector<Instr>* out);
  void relax_grid(const std::vector<Instr>& keys, std::vector<Instr>* out,
                  bool wrap);
  void relax_full(const std::vector<Instr>& keys, std::vector<Instr>* out);
  void relax_cube(const std::vector<Instr>& keys, std::vector<Instr>* out);

  const net::Topology* topo_;
  Instr per_hop_;
  // Scratch reused across calls (the driver calls relax every window).
  std::vector<Instr> row_full_;
  std::vector<Instr> col_in_;
  std::vector<Instr> col_out_;
  std::vector<Instr> cube_a_;
};

// Exclude-self min-plus transform on a line: out[i] = min over j != i of
// a[j] + w * |i - j|, saturating. Exposed for the 2-D separable passes and
// unit tests. When `wrap`, distances are ring distances min(d, L - d). The
// include-self variant is min(out[i], a[i]).
void line_min_plus_excl(const Instr* a, std::size_t n, Instr w, bool wrap,
                        Instr* out);

}  // namespace abcl::sim
