// Bounded execution tracing.
//
// A Tracer records timestamped per-node events into a fixed-capacity ring
// (oldest events overwritten), cheap enough to leave attached during full
// runs: one branch when disabled, one store when enabled. The World exposes
// attach/snapshot helpers; `trace_demo` renders a text timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/time.hpp"

namespace abcl::sim {

enum class TraceEv : std::uint8_t {
  kQuantum = 0,  // a scheduling quantum began
  kSendRemote,   // packet handed to the network
  kRecvRemote,   // packet polled and dispatched
  kBlock,        // a method blocked (context spilled)
  kResume,       // a blocked context resumed
  kCreate,       // an object was created on this node
};

inline const char* to_string(TraceEv e) {
  switch (e) {
    case TraceEv::kQuantum: return "quantum";
    case TraceEv::kSendRemote: return "send";
    case TraceEv::kRecvRemote: return "recv";
    case TraceEv::kBlock: return "block";
    case TraceEv::kResume: return "resume";
    case TraceEv::kCreate: return "create";
  }
  return "?";
}

class Tracer {
 public:
  struct Event {
    Instr t = 0;
    NodeId node = -1;
    TraceEv kind = TraceEv::kQuantum;
  };

  explicit Tracer(std::size_t capacity = 1u << 16) : ring_(capacity) {}
  virtual ~Tracer() = default;

  // Virtual so the host-parallel driver can interpose a per-worker buffer
  // that replays into the real tracer in canonical order at window barriers.
  virtual void record(Instr t, NodeId node, TraceEv kind) {
    Event& e = ring_[head_];
    e.t = t;
    e.node = node;
    e.kind = kind;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
    ++total_;
  }

  std::size_t size() const { return count_; }
  std::uint64_t total_recorded() const { return total_; }

  // Events in chronological record order (oldest first).
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(count_);
    std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
    total_ = 0;
  }

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace abcl::sim
