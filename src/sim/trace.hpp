// Bounded execution tracing.
//
// A Tracer records timestamped per-node events into a fixed-capacity ring
// (oldest events overwritten), cheap enough to leave attached during full
// runs: one branch when disabled, one store when enabled. Each event carries
// a payload word whose meaning depends on the kind (scheduling-queue length,
// pattern/handler id, class id, block-reason code) so trace consumers — the
// text timeline in `trace_demo` and the Chrome/Perfetto exporter in
// `obs/chrome_trace` — can reconstruct what the node was doing, not just
// that it did something. The World exposes attach/snapshot helpers.
//
// Every payload is a simulated quantity (never a host pointer or host
// time), so traces are bit-identical between the serial Machine and the
// ParallelMachine at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/time.hpp"

namespace abcl::sim {

enum class TraceEv : std::uint8_t {
  kQuantum = 0,  // a scheduling quantum began      (payload: sched queue len)
  kSendRemote,   // packet handed to the network    (payload: pattern id)
  kRecvRemote,   // packet polled and dispatched    (payload: handler id)
  kBlock,        // a method blocked                (payload: block-reason code)
  kResume,       // a blocked context resumed       (payload: class id)
  kCreate,       // an object was created here      (payload: class id)
  kFaultDup,     // duplicate copy suppressed       (payload: handler id)
  kFaultRetry,   // retransmitted packet dispatched (payload: attempt index)
  kMigrateOut,   // an object was shed from here    (payload: target node)
  kMigrateIn,    // a migrated object attached here (payload: source node)
  kForward,      // a stub bounced a message        (payload: pattern id)
};

inline const char* to_string(TraceEv e) {
  switch (e) {
    case TraceEv::kQuantum: return "quantum";
    case TraceEv::kSendRemote: return "send";
    case TraceEv::kRecvRemote: return "recv";
    case TraceEv::kBlock: return "block";
    case TraceEv::kResume: return "resume";
    case TraceEv::kCreate: return "create";
    case TraceEv::kFaultDup: return "fault-dup";
    case TraceEv::kFaultRetry: return "fault-retry";
    case TraceEv::kMigrateOut: return "migrate-out";
    case TraceEv::kMigrateIn: return "migrate-in";
    case TraceEv::kForward: return "forward";
  }
  return "?";
}

class Tracer {
 public:
  struct Event {
    Instr t = 0;
    NodeId node = -1;
    TraceEv kind = TraceEv::kQuantum;
    std::uint64_t payload = 0;  // kind-specific; see TraceEv comments
  };

  // Capacity is clamped to >= 1: a zero-capacity ring would make record()'s
  // index reduction a modulo-by-zero.
  explicit Tracer(std::size_t capacity = 1u << 16)
      : ring_(capacity == 0 ? 1 : capacity) {}
  virtual ~Tracer() = default;

  // Virtual so the host-parallel driver can interpose a per-worker buffer
  // that replays into the real tracer in canonical order at window barriers.
  virtual void record(Instr t, NodeId node, TraceEv kind,
                      std::uint64_t payload = 0) {
    Event& e = ring_[head_];
    e.t = t;
    e.node = node;
    e.kind = kind;
    e.payload = payload;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
    ++total_;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return count_; }
  std::uint64_t total_recorded() const { return total_; }

  // Events in chronological record order (oldest first).
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(count_);
    std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
    total_ = 0;
  }

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace abcl::sim
