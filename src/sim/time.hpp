// Simulated time.
//
// Node clocks advance in *instructions* of the modeled CPU (the paper's
// 25 MHz SPARC); wall-clock microseconds are derived through the clock rate.
// Keeping the native unit integral makes the simulation bit-deterministic.
#pragma once

#include <cstdint>

namespace abcl::sim {

using Instr = std::uint64_t;  // instruction count on the modeled CPU

inline constexpr Instr kInstrInf = ~Instr{0};

// Converts modeled instructions to microseconds at `mhz` (instructions are
// assumed to retire one per cycle, as the paper's cycle counts do).
inline double instr_to_us(Instr n, double mhz) {
  return static_cast<double>(n) / mhz;
}

inline double instr_to_ms(Instr n, double mhz) { return instr_to_us(n, mhz) / 1000.0; }

}  // namespace abcl::sim
