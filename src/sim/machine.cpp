#include "sim/machine.hpp"

#include "util/assert.hpp"

namespace abcl::sim {

Driver::Driver(std::vector<NodeExec*> nodes) : nodes_(std::move(nodes)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ABCL_CHECK(nodes_[i] != nullptr);
    ABCL_CHECK(nodes_[i]->node_id() == static_cast<NodeId>(i));
  }
}

Machine::Machine(std::vector<NodeExec*> nodes, util::QueueKind queue)
    : Driver(std::move(nodes)), heap_(queue) {
  heap_key_.assign(nodes_.size(), kInstrInf);
}

Instr Machine::effective_key(NodeExec& n) const {
  if (n.runnable()) return n.clock();
  return n.next_wake();  // kInstrInf when idle with nothing in flight
}

void Machine::push_node(NodeId id) {
  NodeExec& n = *nodes_[static_cast<std::size_t>(id)];
  Instr key = effective_key(n);
  if (key == kInstrInf) return;
  auto& best = heap_key_[static_cast<std::size_t>(id)];
  if (key < best) {
    best = key;
    heap_.push(HeapEntry{key, id});
  }
}

void Machine::notify_work(NodeId dst) { push_node(dst); }

Machine::RunReport Machine::run(Instr max_time) { return run_impl(max_time, ~0ull); }

Machine::RunReport Machine::run_quanta(std::uint64_t max_quanta) {
  return run_impl(kInstrInf, max_quanta);
}

Machine::RunReport Machine::run_impl(Instr max_time, std::uint64_t max_quanta) {
  // Seed: all nodes with work.
  for (std::size_t i = 0; i < nodes_.size(); ++i) push_node(static_cast<NodeId>(i));

  std::uint64_t ran = 0;
  while (!heap_.empty() && ran < max_quanta) {
    HeapEntry e = heap_.top();
    heap_.pop();
    auto idx = static_cast<std::size_t>(e.node);
    if (heap_key_[idx] != e.key) continue;  // stale duplicate
    heap_key_[idx] = kInstrInf;

    NodeExec& n = *nodes_[idx];
    Instr key = effective_key(n);
    if (key == kInstrInf) continue;  // became idle since insertion
    if (key > e.key) {
      // The node's earliest work moved later; re-queue at the new key.
      push_node(e.node);
      continue;
    }
    if (key > max_time) continue;

    if (n.clock() < key) n.advance_clock(key);
    ABCL_DCHECK(n.runnable());
    n.step();
    ++ran;
    push_node(e.node);  // re-insert if it still has (or regained) work
  }

  RunReport rep;
  rep.quanta = (quanta_ += ran, ran);
  for (NodeExec* n : nodes_) {
    if (n->clock() > rep.end_time) rep.end_time = n->clock();
  }
  return rep;
}

}  // namespace abcl::sim
