// Conservative discrete-event driver for the simulated multicomputer.
//
// Each node is a single-threaded processor with its own instruction clock.
// The driver always executes the runnable node with the globally smallest
// clock (ties broken by node id), which is safe because every packet has
// strictly positive latency (lookahead): no node with a larger clock can
// retroactively deliver work into the past of the node being run. Idle
// nodes' clocks jump forward to their next packet arrival. The run ends at
// quiescence: no node runnable and no packet in flight.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace abcl::sim {

using NodeId = std::int32_t;

// Implemented by core::NodeRuntime. One step() executes one scheduling
// quantum (drain arrived packets, then run one scheduling-queue item or one
// freshly delivered message cascade) and advances the node's clock.
class NodeExec {
 public:
  virtual ~NodeExec() = default;

  virtual NodeId node_id() const = 0;
  virtual Instr clock() const = 0;

  // True if the node has local work it could run right now (scheduling
  // queue nonempty or packets already arrived at or before clock()).
  virtual bool runnable() const = 0;

  // Earliest future instant at which the node becomes runnable because of a
  // pending packet, or kInstrInf if none is in flight toward it.
  virtual Instr next_wake() const = 0;

  // Advance the local clock to `t` (only ever forward).
  virtual void advance_clock(Instr t) = 0;

  // Run one quantum. Precondition: runnable().
  virtual void step() = 0;
};

class Machine {
 public:
  struct RunReport {
    Instr end_time = 0;        // max node clock at quiescence
    std::uint64_t quanta = 0;  // total step() invocations
  };

  explicit Machine(std::vector<NodeExec*> nodes);

  // Must be called (e.g. by the network) whenever new work is scheduled for
  // `dst` — a packet enqueued or a cross-layer wakeup — so the driver can
  // re-evaluate the node's position in the ready heap.
  void notify_work(NodeId dst);

  // Runs until quiescence (or until `max_time` if given). Returns a report.
  RunReport run(Instr max_time = kInstrInf);

  // Single-step variant for tests: runs at most `max_quanta` quanta.
  RunReport run_quanta(std::uint64_t max_quanta);

  NodeExec* node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct HeapEntry {
    Instr key;
    NodeId node;
    bool operator>(const HeapEntry& o) const {
      return key != o.key ? key > o.key : node > o.node;
    }
  };

  Instr effective_key(NodeExec& n) const;
  void push_node(NodeId id);
  RunReport run_impl(Instr max_time, std::uint64_t max_quanta);

  std::vector<NodeExec*> nodes_;
  // best key currently present in the heap per node; kInstrInf = absent.
  std::vector<Instr> heap_key_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>
      heap_;
  std::uint64_t quanta_ = 0;
};

}  // namespace abcl::sim
