// Conservative discrete-event drivers for the simulated multicomputer.
//
// Each node is a single-threaded processor with its own instruction clock.
// The serial `Machine` always executes the runnable node with the globally
// smallest clock (ties broken by node id), which is safe because every
// packet has strictly positive latency (lookahead): no node with a larger
// clock can retroactively deliver work into the past of the node being run.
// Idle nodes' clocks jump forward to their next packet arrival. The run
// ends at quiescence: no node runnable and no packet in flight.
//
// `ParallelMachine` (parallel_machine.hpp) is a drop-in `Driver` that runs
// whole time windows of nodes concurrently on host threads while producing
// bit-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/bucket_queue.hpp"

namespace abcl::sim {

using NodeId = std::int32_t;

class Tracer;

// Implemented by core::NodeRuntime. One step() executes one scheduling
// quantum (drain arrived packets, then run one scheduling-queue item or one
// freshly delivered message cascade) and advances the node's clock.
class NodeExec {
 public:
  virtual ~NodeExec() = default;

  virtual NodeId node_id() const = 0;
  virtual Instr clock() const = 0;

  // True if the node has local work it could run right now (scheduling
  // queue nonempty or packets already arrived at or before clock()).
  virtual bool runnable() const = 0;

  // Earliest future instant at which the node becomes runnable because of a
  // pending packet, or kInstrInf if none is in flight toward it.
  virtual Instr next_wake() const = 0;

  // Advance the local clock to `t` (only ever forward).
  virtual void advance_clock(Instr t) = 0;

  // Run one quantum. Precondition: runnable().
  virtual void step() = 0;

  // Replace the node's attached tracer, returning the previous one. The
  // host-parallel driver uses this to interpose per-worker trace buffers.
  // Default: no tracing support.
  virtual Tracer* swap_tracer(Tracer*) { return nullptr; }
};

// Common driver interface: the abcl::World runs its nodes through one of
// these. The network's on_deliverable callback must call notify_work.
class Driver {
 public:
  struct RunReport {
    Instr end_time = 0;        // max node clock at quiescence
    std::uint64_t quanta = 0;  // total step() invocations
  };

  explicit Driver(std::vector<NodeExec*> nodes);
  virtual ~Driver() = default;

  // Must be called (e.g. by the network) whenever new work is scheduled for
  // `dst` — a packet enqueued or a cross-layer wakeup — so the driver can
  // re-evaluate the node's readiness.
  virtual void notify_work(NodeId dst) = 0;

  // Runs until quiescence (or until `max_time` if given). Returns a report.
  virtual RunReport run(Instr max_time = kInstrInf) = 0;

  NodeExec* node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t num_nodes() const { return nodes_.size(); }

 protected:
  std::vector<NodeExec*> nodes_;
};

class Machine : public Driver {
 public:
  // `queue` selects the ready structure: the bucketed time queue (default)
  // or the binary-heap ablation (ABCLSIM_QUEUE=heap via WorldConfig).
  // Both pop the exact (key, node) total order, so results are
  // byte-identical either way.
  explicit Machine(std::vector<NodeExec*> nodes,
                   util::QueueKind queue = util::QueueKind::kBucket);

  void notify_work(NodeId dst) override;
  RunReport run(Instr max_time = kInstrInf) override;

  // Single-step variant for tests: runs at most `max_quanta` quanta.
  RunReport run_quanta(std::uint64_t max_quanta);

 private:
  struct HeapEntry {
    Instr key;
    NodeId node;
  };
  struct EntryKey {
    Instr operator()(const HeapEntry& e) const { return e.key; }
  };
  // Ascending (key, node) — the serial execution order. A strict total
  // order: push_node never inserts the same (key, node) twice.
  struct EntryLess {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.key != b.key ? a.key < b.key : a.node < b.node;
    }
  };

  Instr effective_key(NodeExec& n) const;
  void push_node(NodeId id);
  RunReport run_impl(Instr max_time, std::uint64_t max_quanta);

  // best key currently present in the queue per node; kInstrInf = absent.
  std::vector<Instr> heap_key_;
  util::BucketQueue<HeapEntry, EntryKey, EntryLess> heap_;
  std::uint64_t quanta_ = 0;
};

}  // namespace abcl::sim
