#include "sim/shard_balance.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace abcl::sim {

namespace {
// EWMA with a ~4-window memory: ewma' = (3 * ewma + (q << kEwmaScale)) / 4.
// The fixed-point scale keeps single-quantum windows from rounding to zero
// against the 3/4 decay.
constexpr int kEwmaScale = 8;
}  // namespace

ShardBalancer::ShardBalancer(std::int32_t nodes, int workers,
                             std::uint64_t seed)
    : workers_(workers < 1 ? 1 : workers), seed_(seed) {
  ABCL_CHECK(nodes >= 1);
  const auto n = static_cast<std::size_t>(nodes);
  assignment_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    assignment_[i] =
        static_cast<std::int32_t>(i % static_cast<std::size_t>(workers_));
  }
  ewma_.assign(n, 0);
  // decide_shed-style roll: a short SplitMix chain over (seed, node). The
  // roll is per node, not per window, so equal-load orderings are stable
  // and a balanced assignment stops churning once loads settle.
  tiebreak_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = seed_ ^ (0x9e3779b97f4a7c15ull * (i + 1));
    x = util::splitmix64(x);
    tiebreak_[i] = util::splitmix64(x);
  }
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = static_cast<std::int32_t>(i);
  load_.assign(static_cast<std::size_t>(workers_), 0);
}

int ShardBalancer::rebalance(std::uint64_t* window_quanta) {
  const std::size_t n = ewma_.size();
  for (std::size_t i = 0; i < n; ++i) {
    ewma_[i] = (3 * ewma_[i] + (window_quanta[i] << kEwmaScale)) / 4;
    window_quanta[i] = 0;
  }
  if (workers_ <= 1) return 0;

  // Largest-processing-time greedy: nodes in (ewma desc, roll, id) order,
  // each onto the least-loaded worker so far (ties to the lowest index).
  std::sort(order_.begin(), order_.end(),
            [this](std::int32_t a, std::int32_t b) {
              const auto ia = static_cast<std::size_t>(a);
              const auto ib = static_cast<std::size_t>(b);
              if (ewma_[ia] != ewma_[ib]) return ewma_[ia] > ewma_[ib];
              if (tiebreak_[ia] != tiebreak_[ib]) {
                return tiebreak_[ia] < tiebreak_[ib];
              }
              return a < b;
            });
  std::fill(load_.begin(), load_.end(), 0);
  int moved = 0;
  for (std::int32_t id : order_) {
    std::size_t best = 0;
    for (std::size_t w = 1; w < load_.size(); ++w) {
      if (load_[w] < load_[best]) best = w;
    }
    load_[best] += ewma_[static_cast<std::size_t>(id)];
    auto& slot = assignment_[static_cast<std::size_t>(id)];
    if (slot != static_cast<std::int32_t>(best)) {
      slot = static_cast<std::int32_t>(best);
      ++moved;
    }
  }
  return moved;
}

}  // namespace abcl::sim
