#include "sim/parallel_machine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace abcl::sim {

namespace {
// Busy-wait burst before a parked wait. Long enough that a window whose
// work is already in flight completes without a futex round-trip, short
// enough that an idle or oversubscribed thread yields the core quickly.
constexpr int kSpinIters = 2048;
}  // namespace

ParallelMachine::ParallelMachine(std::vector<NodeExec*> nodes,
                                 net::Network* net, int num_threads,
                                 Options opts)
    : Driver(std::move(nodes)),
      net_(net),
      lookahead_(net != nullptr ? net->min_packet_latency() : 1),
      workers_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      distance_(opts.horizon == HorizonKind::kDistance && net != nullptr &&
                !net->faults_enabled()),
      // On a single hardware thread, every spin cycle is stolen from the
      // thread being waited on — park immediately instead.
      spin_limit_(std::thread::hardware_concurrency() > 1 ? kSpinIters : 0) {
  ABCL_CHECK(lookahead_ > 0);
  // Static round-robin shard: node i -> worker i mod T. Any fixed
  // assignment preserves determinism; round-robin balances the common case
  // where load correlates with id ranges.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    workers_[i % workers_.size()].shard.push_back(static_cast<NodeId>(i));
  }
  if (distance_) {
    hmap_ = std::make_unique<HorizonMap>(&net_->topology(),
                                         net_->cost_model().per_hop);
    // Per-pair price floor is raw_wire + hops * per_hop. The *unclamped*
    // raw wire floor must be used here: with a zero-cost wire the commit
    // path clamps the whole priced latency (hops included) up to 1, so
    // adding the clamped lookahead on top of the hop term would overshoot
    // the real price. Positivity for j != i follows from the network's
    // ctor invariant wire_latency + per_hop > 0 and hops >= 1.
    dist_base_ = net_->min_packet_latency_raw();
    node_key_.assign(nodes_.size(), kInstrInf);
    horizons_.assign(nodes_.size(), 0);
  }
  if (opts.shard == ShardKind::kBalanced && workers_.size() > 1) {
    balancer_ = std::make_unique<ShardBalancer>(
        static_cast<std::int32_t>(nodes_.size()),
        static_cast<int>(workers_.size()), opts.seed);
    window_quanta_.assign(nodes_.size(), 0);
  }
}

ParallelMachine::~ParallelMachine() {
  ABCL_CHECK(threads_.empty());  // threads only live inside run()
}

Instr ParallelMachine::effective_key(NodeExec& n) const {
  if (n.runnable()) return n.clock();
  return n.next_wake();  // kInstrInf when idle with nothing in flight
}

void ParallelMachine::run_shard(Worker& w) {
  const Instr global_horizon = window_horizon_;
  const Instr max_time = window_max_time_;
  const bool distance = distance_;
  const bool balanced = balancer_ != nullptr;
  Instr shard_min = kInstrInf;
  std::uint64_t active = 0;
  for (NodeId id : w.shard) {
    const auto idx = static_cast<std::size_t>(id);
    NodeExec& n = *nodes_[idx];
    const Instr horizon = distance ? horizons_[idx] : global_horizon;
    const std::uint64_t before = w.quanta;
    Instr key;
    while (true) {
      key = effective_key(n);
      if (key >= horizon || key > max_time) break;
      if (n.clock() < key) n.advance_clock(key);
      w.outbox.set_current_key(key);
      w.traces.set_current_key(key);
      n.step();
      ++w.quanta;
    }
    if (w.quanta != before) ++active;
    if (balanced) window_quanta_[idx] += w.quanta - before;
    // The break-time key is the node's final key for this window: nothing
    // else touches the node until the flush, whose deliveries are folded in
    // via notify_work (which also refreshes node_key_).
    if (distance) node_key_[idx] = key;
    if (key < shard_min) shard_min = key;
  }
  w.shard_min = shard_min;
  w.active = active;
  // Pre-sort this worker's run inside the parallel region so the barrier
  // flush only has to merge. Skipped under the kSort ablation, which
  // measures the old coordinator-side global sort.
  if (net_ != nullptr && net_->flush_kind() == net::FlushKind::kMerge) {
    w.outbox.sort_canonical();
  }
}

void ParallelMachine::worker_main(Worker& w) {
  std::uint64_t seen = 0;
  while (true) {
    std::uint64_t e;
    int spins = 0;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      if (++spins >= spin_limit_) {
        std::unique_lock<std::mutex> lk(wake_mu_);
        epoch_cv_.wait(lk, [&] {
          return epoch_.load(std::memory_order_acquire) != seen;
        });
        break;
      }
    }
    e = epoch_.load(std::memory_order_acquire);
    seen = e;
    if (stop_.load(std::memory_order_acquire)) return;
    run_shard(w);
    w.done.store(e, std::memory_order_release);
    // Empty critical section: orders the store above before the notify so
    // a coordinator observing an old `done` under wake_mu_ cannot miss it.
    { std::lock_guard<std::mutex> lk(wake_mu_); }
    done_cv_.notify_one();
  }
}

void ParallelMachine::compute_horizons() {
  hmap_->relax(node_key_, &node_bound_);
  horizons_.resize(node_bound_.size());
  for (std::size_t i = 0; i < node_bound_.size(); ++i) {
    // Fold the node's own key back in with hops = 0: the runtime does emit
    // genuine self-packets (e.g. a remote-create whose placement picks the
    // caller's node), and those travel through Network::send with the same
    // wire floor as any other packet. Excluding the self term would let a
    // node run past the arrival of a packet it has not sent yet.
    horizons_[i] = sat_add(std::min(node_bound_[i], node_key_[i]), dist_base_);
  }
}

void ParallelMachine::flush_commits() {
  if (net_ == nullptr) return;
  // Commit every buffered send in canonical (quantum key, src) order —
  // the exact order the serial driver would have issued them.
  if (outbox_ptrs_.empty()) {
    for (auto& w : workers_) outbox_ptrs_.push_back(&w.outbox);
  }
  net_->flush_outboxes(outbox_ptrs_.data(), outbox_ptrs_.size());
}

void ParallelMachine::replay_traces(Instr frontier) {
  const std::size_t carry = trace_merge_.size();
  for (auto& w : workers_) {
    trace_merge_.insert(trace_merge_.end(), w.traces.items_.begin(),
                        w.traces.items_.end());
    w.traces.items_.clear();
  }
  if (trace_merge_.empty()) return;
  // Serial execution order is ascending (quantum key, node); each node's
  // events live in one worker's buffer in program order, which the stable
  // sort preserves. The carried suffix from earlier windows is already
  // sorted and precedes this window's events of any equal (key, node) in
  // program order, so the merge keeps it first.
  auto cmp = [](const WindowTraceBuffer::Tagged& a,
                const WindowTraceBuffer::Tagged& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.ev.node < b.ev.node;
  };
  if (trace_merge_.size() > carry) {
    std::stable_sort(
        trace_merge_.begin() + static_cast<std::ptrdiff_t>(carry),
        trace_merge_.end(), cmp);
    if (carry > 0) {
      std::inplace_merge(trace_merge_.begin(),
                         trace_merge_.begin() +
                             static_cast<std::ptrdiff_t>(carry),
                         trace_merge_.end(), cmp);
    }
  }
  // Replay everything strictly below the next window's floor key: no later
  // window can produce an event below it. Under the flat horizon that is
  // always the whole buffer; under distance horizons the remainder carries.
  std::size_t n = 0;
  while (n < trace_merge_.size() && trace_merge_[n].key < frontier) {
    const auto& t = trace_merge_[n];
    Tracer* dst = saved_tracers_[static_cast<std::size_t>(t.ev.node)];
    if (dst != nullptr) dst->record(t.ev.t, t.ev.node, t.ev.kind, t.ev.payload);
    ++n;
  }
  trace_merge_.erase(trace_merge_.begin(),
                     trace_merge_.begin() + static_cast<std::ptrdiff_t>(n));
}

void ParallelMachine::install_node(NodeId id, Worker& w) {
  if (saved_tracers_[static_cast<std::size_t>(id)] != nullptr) {
    nodes_[static_cast<std::size_t>(id)]->swap_tracer(&w.traces);
  }
  if (net_ != nullptr) {
    net_->set_outbox(id, &w.outbox);
    net_->set_poll_magazine(id, &w.magazine);
  }
}

void ParallelMachine::apply_rebalance() {
  const int moved = balancer_->rebalance(window_quanta_.data());
  if (moved == 0) return;
  rebalances_ += 1;
  shard_moves_ += static_cast<std::uint64_t>(moved);
  // Rebuild every shard from the new assignment and reinstall the per-node
  // redirection pointers (outbox, poll magazine, trace buffer). Outboxes
  // and trace buffers are drained at this point — the barrier's flush and
  // replay just ran — so moving a node never splits its program order
  // across two buffers within one window. Reinstalling unmoved nodes
  // rewrites the same pointers; cheaper than tracking the diff.
  const auto& asg = balancer_->assignment();
  for (auto& w : workers_) w.shard.clear();
  for (std::size_t i = 0; i < asg.size(); ++i) {
    Worker& w = workers_[static_cast<std::size_t>(asg[i])];
    w.shard.push_back(static_cast<NodeId>(i));
    install_node(static_cast<NodeId>(i), w);
  }
}

void ParallelMachine::notify_work(NodeId dst) {
  Instr k = effective_key(*nodes_[static_cast<std::size_t>(dst)]);
  if (k < notified_min_) notified_min_ = k;
  if (distance_) node_key_[static_cast<std::size_t>(dst)] = k;
}

Driver::RunReport ParallelMachine::run(Instr max_time) {
  // Interpose per-worker outboxes and trace buffers. Nodes without a tracer
  // keep none (recording into a buffer nobody replays would cost time).
  saved_tracers_.assign(nodes_.size(), nullptr);
  for (auto& w : workers_) {
    w.quanta = 0;
    for (NodeId id : w.shard) {
      NodeExec& n = *nodes_[static_cast<std::size_t>(id)];
      Tracer* old = n.swap_tracer(&w.traces);
      if (old == nullptr) {
        n.swap_tracer(nullptr);
      } else {
        saved_tracers_[static_cast<std::size_t>(id)] = old;
      }
      if (net_ != nullptr) {
        net_->set_outbox(id, &w.outbox);
        net_->set_poll_magazine(id, &w.magazine);
      }
    }
  }
  if (net_ != nullptr) net_->set_windowed_stats(true);

  const bool threaded = workers_.size() > 1;
  if (threaded) {
    epoch_.store(0, std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);
    for (auto& w : workers_) w.done.store(0, std::memory_order_relaxed);
    threads_.reserve(workers_.size());
    for (auto& w : workers_) {
      threads_.emplace_back([this, &w] { worker_main(w); });
    }
  }

  // One full scan seeds the window loop (and, under distance horizons, the
  // per-node key vector); afterwards both are maintained incrementally —
  // each worker reports its shard's keys and flush-time deliveries fold in
  // through notify_work.
  Instr min_key = kInstrInf;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Instr k = effective_key(*nodes_[i]);
    if (distance_) node_key_[i] = k;
    if (k < min_key) min_key = k;
  }

  while (min_key != kInstrInf && min_key <= max_time) {
    window_horizon_ = sat_add(min_key, lookahead_);
    window_max_time_ = max_time;
    if (distance_) compute_horizons();

    if (threaded) {
      std::uint64_t e = epoch_.fetch_add(1, std::memory_order_release) + 1;
      { std::lock_guard<std::mutex> lk(wake_mu_); }
      epoch_cv_.notify_all();
      for (auto& w : workers_) {
        int spins = 0;
        while (w.done.load(std::memory_order_acquire) != e) {
          if (++spins >= spin_limit_) {
            std::unique_lock<std::mutex> lk(wake_mu_);
            done_cv_.wait(lk, [&] {
              return w.done.load(std::memory_order_acquire) == e;
            });
            break;
          }
        }
      }
    } else {
      run_shard(workers_[0]);
    }

    notified_min_ = kInstrInf;
    flush_commits();
    min_key = notified_min_;
    for (auto& w : workers_) {
      if (w.shard_min < min_key) min_key = w.shard_min;
      occupancy_sum_ += w.active;
    }
    // min_key is the next window's floor: every later quantum (and so every
    // later send or trace event) carries a key >= it. Release the deferred
    // order-sensitive observables up to that frontier.
    if (net_ != nullptr) net_->drain_deferred_wire_stats(min_key);
    replay_traces(min_key);
    ++windows_;
    if (balancer_ != nullptr) apply_rebalance();
  }

  if (threaded) {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    { std::lock_guard<std::mutex> lk(wake_mu_); }
    epoch_cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  // Exiting the loop means min_key exceeded max_time (or went infinite);
  // every executed quantum had key <= max_time < that final frontier, so
  // both reorder buffers drained completely.
  if (net_ != nullptr) {
    ABCL_CHECK(net_->deferred_wire_samples() == 0);
    net_->set_windowed_stats(false);
  }
  ABCL_CHECK(trace_merge_.empty());

  // Restore tracers and the direct send/release paths. Worker threads are
  // joined (or never existed), so draining their magazines back to the
  // depot from this thread is race-free.
  for (auto& w : workers_) {
    for (NodeId id : w.shard) {
      NodeExec& n = *nodes_[static_cast<std::size_t>(id)];
      if (Tracer* orig = saved_tracers_[static_cast<std::size_t>(id)]) {
        n.swap_tracer(orig);
      }
      if (net_ != nullptr) {
        net_->set_outbox(id, nullptr);
        net_->set_poll_magazine(id, nullptr);
      }
    }
    if (net_ != nullptr) net_->packet_pool().flush(w.magazine);
  }

  RunReport rep;
  for (auto& w : workers_) {
    rep.quanta += w.quanta;
  }
  quanta_ += rep.quanta;
  for (NodeExec* n : nodes_) {
    if (n->clock() > rep.end_time) rep.end_time = n->clock();
  }
  return rep;
}

}  // namespace abcl::sim
