#include "sim/parallel_machine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace abcl::sim {

namespace {
// Busy-wait burst before a parked wait. Long enough that a window whose
// work is already in flight completes without a futex round-trip, short
// enough that an idle or oversubscribed thread yields the core quickly.
constexpr int kSpinIters = 2048;
}  // namespace

ParallelMachine::ParallelMachine(std::vector<NodeExec*> nodes,
                                 net::Network* net, int num_threads)
    : Driver(std::move(nodes)),
      net_(net),
      lookahead_(net != nullptr ? net->min_packet_latency() : 1),
      workers_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      // On a single hardware thread, every spin cycle is stolen from the
      // thread being waited on — park immediately instead.
      spin_limit_(std::thread::hardware_concurrency() > 1 ? kSpinIters : 0) {
  ABCL_CHECK(lookahead_ > 0);
  // Static round-robin shard: node i -> worker i mod T. Any fixed
  // assignment preserves determinism; round-robin balances the common case
  // where load correlates with id ranges.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    workers_[i % workers_.size()].shard.push_back(static_cast<NodeId>(i));
  }
}

ParallelMachine::~ParallelMachine() {
  ABCL_CHECK(threads_.empty());  // threads only live inside run()
}

Instr ParallelMachine::effective_key(NodeExec& n) const {
  if (n.runnable()) return n.clock();
  return n.next_wake();  // kInstrInf when idle with nothing in flight
}

void ParallelMachine::run_shard(Worker& w) {
  const Instr horizon = window_horizon_;
  const Instr max_time = window_max_time_;
  Instr shard_min = kInstrInf;
  for (NodeId id : w.shard) {
    NodeExec& n = *nodes_[static_cast<std::size_t>(id)];
    Instr key;
    while (true) {
      key = effective_key(n);
      if (key >= horizon || key > max_time) break;
      if (n.clock() < key) n.advance_clock(key);
      w.outbox.set_current_key(key);
      w.traces.set_current_key(key);
      n.step();
      ++w.quanta;
    }
    // The break-time key is the node's final key for this window: nothing
    // else touches the node until the flush, whose deliveries are folded in
    // via notify_work.
    if (key < shard_min) shard_min = key;
  }
  w.shard_min = shard_min;
  // Pre-sort this worker's run inside the parallel region so the barrier
  // flush only has to merge. Skipped under the kSort ablation, which
  // measures the old coordinator-side global sort.
  if (net_ != nullptr && net_->flush_kind() == net::FlushKind::kMerge) {
    w.outbox.sort_canonical();
  }
}

void ParallelMachine::worker_main(Worker& w) {
  std::uint64_t seen = 0;
  while (true) {
    std::uint64_t e;
    int spins = 0;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      if (++spins >= spin_limit_) {
        std::unique_lock<std::mutex> lk(wake_mu_);
        epoch_cv_.wait(lk, [&] {
          return epoch_.load(std::memory_order_acquire) != seen;
        });
        break;
      }
    }
    e = epoch_.load(std::memory_order_acquire);
    seen = e;
    if (stop_.load(std::memory_order_acquire)) return;
    run_shard(w);
    w.done.store(e, std::memory_order_release);
    // Empty critical section: orders the store above before the notify so
    // a coordinator observing an old `done` under wake_mu_ cannot miss it.
    { std::lock_guard<std::mutex> lk(wake_mu_); }
    done_cv_.notify_one();
  }
}

void ParallelMachine::flush_window() {
  if (net_ != nullptr) {
    // Commit every buffered send in canonical (quantum key, src) order —
    // the exact order the serial driver would have issued them.
    if (outbox_ptrs_.empty()) {
      for (auto& w : workers_) outbox_ptrs_.push_back(&w.outbox);
    }
    net_->flush_outboxes(outbox_ptrs_.data(), outbox_ptrs_.size());
  }

  trace_merge_.clear();
  for (auto& w : workers_) {
    trace_merge_.insert(trace_merge_.end(), w.traces.items_.begin(),
                        w.traces.items_.end());
    w.traces.items_.clear();
  }
  if (!trace_merge_.empty()) {
    // Serial execution order is ascending (quantum key, node); each node's
    // events live in one worker's buffer in program order, which the stable
    // sort preserves.
    std::stable_sort(trace_merge_.begin(), trace_merge_.end(),
                     [](const WindowTraceBuffer::Tagged& a,
                        const WindowTraceBuffer::Tagged& b) {
                       if (a.key != b.key) return a.key < b.key;
                       return a.ev.node < b.ev.node;
                     });
    for (const auto& t : trace_merge_) {
      Tracer* dst = saved_tracers_[static_cast<std::size_t>(t.ev.node)];
      if (dst != nullptr) dst->record(t.ev.t, t.ev.node, t.ev.kind, t.ev.payload);
    }
    trace_merge_.clear();
  }
}

void ParallelMachine::notify_work(NodeId dst) {
  Instr k = effective_key(*nodes_[static_cast<std::size_t>(dst)]);
  if (k < notified_min_) notified_min_ = k;
}

Driver::RunReport ParallelMachine::run(Instr max_time) {
  // Interpose per-worker outboxes and trace buffers. Nodes without a tracer
  // keep none (recording into a buffer nobody replays would cost time).
  saved_tracers_.assign(nodes_.size(), nullptr);
  for (auto& w : workers_) {
    w.quanta = 0;
    for (NodeId id : w.shard) {
      NodeExec& n = *nodes_[static_cast<std::size_t>(id)];
      Tracer* old = n.swap_tracer(&w.traces);
      if (old == nullptr) {
        n.swap_tracer(nullptr);
      } else {
        saved_tracers_[static_cast<std::size_t>(id)] = old;
      }
      if (net_ != nullptr) {
        net_->set_outbox(id, &w.outbox);
        net_->set_poll_magazine(id, &w.magazine);
      }
    }
  }

  const bool threaded = workers_.size() > 1;
  if (threaded) {
    epoch_.store(0, std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);
    for (auto& w : workers_) w.done.store(0, std::memory_order_relaxed);
    threads_.reserve(workers_.size());
    for (auto& w : workers_) {
      threads_.emplace_back([this, &w] { worker_main(w); });
    }
  }

  // One full scan seeds the window loop; afterwards the next window's floor
  // is maintained incrementally — each worker reports its shard's min key
  // (O(P/T) in parallel instead of an O(P) serial rescan) and flush-time
  // deliveries fold in through notify_work.
  Instr min_key = kInstrInf;
  for (NodeExec* n : nodes_) {
    Instr k = effective_key(*n);
    if (k < min_key) min_key = k;
  }

  while (min_key != kInstrInf && min_key <= max_time) {
    window_horizon_ = (min_key > kInstrInf - lookahead_) ? kInstrInf
                                                         : min_key + lookahead_;
    window_max_time_ = max_time;

    if (threaded) {
      std::uint64_t e = epoch_.fetch_add(1, std::memory_order_release) + 1;
      { std::lock_guard<std::mutex> lk(wake_mu_); }
      epoch_cv_.notify_all();
      for (auto& w : workers_) {
        int spins = 0;
        while (w.done.load(std::memory_order_acquire) != e) {
          if (++spins >= spin_limit_) {
            std::unique_lock<std::mutex> lk(wake_mu_);
            done_cv_.wait(lk, [&] {
              return w.done.load(std::memory_order_acquire) == e;
            });
            break;
          }
        }
      }
    } else {
      run_shard(workers_[0]);
    }

    notified_min_ = kInstrInf;
    flush_window();
    ++windows_;

    min_key = notified_min_;
    for (auto& w : workers_) {
      if (w.shard_min < min_key) min_key = w.shard_min;
    }
  }

  if (threaded) {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    { std::lock_guard<std::mutex> lk(wake_mu_); }
    epoch_cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  // Restore tracers and the direct send/release paths. Worker threads are
  // joined (or never existed), so draining their magazines back to the
  // depot from this thread is race-free.
  for (auto& w : workers_) {
    for (NodeId id : w.shard) {
      NodeExec& n = *nodes_[static_cast<std::size_t>(id)];
      if (Tracer* orig = saved_tracers_[static_cast<std::size_t>(id)]) {
        n.swap_tracer(orig);
      }
      if (net_ != nullptr) {
        net_->set_outbox(id, nullptr);
        net_->set_poll_magazine(id, nullptr);
      }
    }
    if (net_ != nullptr) net_->packet_pool().flush(w.magazine);
  }

  RunReport rep;
  for (auto& w : workers_) {
    rep.quanta += w.quanta;
  }
  quanta_ += rep.quanta;
  for (NodeExec* n : nodes_) {
    if (n->clock() > rep.end_time) rep.end_time = n->clock();
  }
  return rep;
}

}  // namespace abcl::sim
