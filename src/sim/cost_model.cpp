#include "sim/cost_model.hpp"

namespace abcl::sim {

CostModel CostModel::ap1000() { return CostModel{}; }

CostModel CostModel::zero() {
  CostModel m;
  m.locality_check = 0;
  m.lookup_call = 0;
  m.vftp_switch = 0;
  m.mq_check = 0;
  m.poll_remote = 0;
  m.stack_return = 0;
  m.frame_alloc = 0;
  m.msg_store = 0;
  m.mq_enqueue = 0;
  m.sched_enqueue = 0;
  m.sched_dispatch = 0;
  m.ctx_save = 0;
  m.ctx_restore = 0;
  m.reply_box_alloc = 0;
  m.reply_check = 0;
  m.select_scan_per_msg = 0;
  m.create_local = 0;
  m.create_remote_local_part = 0;
  m.create_remote_install = 0;
  m.chunk_replenish = 0;
  m.send_setup = 0;
  m.recv_handler = 0;
  m.wire_latency = 1;  // must stay > 0: the PDES driver's lookahead
  m.per_hop = 0;
  m.per_word = 0;
  return m;
}

}  // namespace abcl::sim
