#include "net/fault.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace abcl::net {

// ----------------------------------------------------------------------------
// FaultPlan
// ----------------------------------------------------------------------------

FaultPlan::FaultPlan(const FaultConfig& cfg, sim::Instr min_latency)
    : cfg_(cfg) {
  std::string err;
  ABCL_CHECK_MSG(validate_fault_config(cfg_, &err), err.c_str());
  ABCL_CHECK(min_latency > 0);
  rto_ = cfg_.rto != 0 ? cfg_.rto : 4 * min_latency;
  if (rto_ > cfg_.rto_max) rto_ = cfg_.rto_max;
}

std::uint64_t FaultPlan::remix(std::uint64_t x) {
  return util::splitmix64(x);  // advances x; we want the output only
}

std::uint64_t FaultPlan::roll(std::uint64_t tag, std::int32_t src,
                              std::int32_t dst, std::uint64_t seq,
                              std::uint32_t attempt) const {
  // A short SplitMix chain over the decision coordinates. Every input is a
  // simulated quantity; equal coordinates always produce equal rolls, which
  // is what makes serial and parallel runs agree decision-for-decision.
  std::uint64_t x = cfg_.seed;
  x = remix(x ^ (tag * 0x9e3779b97f4a7c15ull));
  x = remix(x ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint32_t>(dst)));
  x = remix(x ^ seq);
  x = remix(x ^ attempt);
  return x;
}

// ----------------------------------------------------------------------------
// DedupWindow
// ----------------------------------------------------------------------------

void DedupWindow::advance() {
  for (;;) {
    while (bits_ & 1) {
      bits_ >>= 1;
      ++base_;
    }
    // Pull spilled sequences that now fit the bitmap; re-loop in case they
    // extend the delivered prefix further.
    bool migrated = false;
    while (!far_.empty() && *far_.begin() < base_ + kBits) {
      bits_ |= std::uint64_t{1} << (*far_.begin() - base_);
      far_.erase(far_.begin());
      migrated = true;
    }
    if (!migrated) return;
  }
}

bool DedupWindow::accept(std::uint64_t seq) {
  if (seq < base_) return false;  // inside the delivered prefix: duplicate
  if (seq < base_ + kBits) {
    const std::uint64_t bit = std::uint64_t{1} << (seq - base_);
    if (bits_ & bit) return false;
    bits_ |= bit;
    advance();
    return true;
  }
  return far_.insert(seq).second;
}

// ----------------------------------------------------------------------------
// FaultStats
// ----------------------------------------------------------------------------

void FaultStats::merge(const FaultStats& o) {
  // Field-coverage guard in the Network::Stats::merge style: adding a
  // FaultStats member without merging it here breaks the totals silently.
  static_assert(sizeof(FaultStats) == 10 * sizeof(std::uint64_t) +
                                          sizeof(util::Log2Histogram),
                "new FaultStats field? merge it here and in the tests");
  attempts += o.attempts;
  drops += o.drops;
  blackout_drops += o.blackout_drops;
  duplicates += o.duplicates;
  delays += o.delays;
  spurious_retransmits += o.spurious_retransmits;
  forced_deliveries += o.forced_deliveries;
  copies_enqueued += o.copies_enqueued;
  delivered += o.delivered;
  dup_suppressed += o.dup_suppressed;
  retry_delay_instr.merge(o.retry_delay_instr);
}

// ----------------------------------------------------------------------------
// Config validation / parsing
// ----------------------------------------------------------------------------

namespace {

bool cfg_fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool validate_fault_config(const FaultConfig& cfg, std::string* err) {
  if (!cfg.enabled) return true;
  if (cfg.drop_ppm >= kPpmOne) {
    return cfg_fail(err,
                    "fault config: drop probability 1.0 loses every attempt "
                    "on every link — a guaranteed livelock; use < 1.0");
  }
  if (cfg.blackout_ppm >= kPpmOne) {
    return cfg_fail(err,
                    "fault config: blackout probability 1.0 keeps every link "
                    "permanently dark — a guaranteed livelock; use < 1.0");
  }
  if (cfg.dup_ppm > kPpmOne) {
    return cfg_fail(err, "fault config: dup probability > 1.0");
  }
  if (cfg.delay_ppm > kPpmOne) {
    return cfg_fail(err, "fault config: delay probability > 1.0");
  }
  if (cfg.delay_max < 1) {
    return cfg_fail(err, "fault config: delay_max must be >= 1 instr");
  }
  if (cfg.blackout_window < 1) {
    return cfg_fail(err, "fault config: blackout_window must be >= 1 instr");
  }
  if (cfg.rto_max < 1) {
    return cfg_fail(err, "fault config: rto_max must be >= 1 instr");
  }
  if (cfg.rto > cfg.rto_max) {
    return cfg_fail(err, "fault config: rto exceeds rto_max");
  }
  return true;
}

namespace {

// "0.05" / "1" / ".25" -> ppm. Strict: decimal digits only, at most six
// fractional digits (the ppm resolution), value <= 1.
std::optional<std::uint32_t> parse_prob_ppm(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t dot = s.find('.');
  std::string ip = dot == std::string::npos ? s : s.substr(0, dot);
  std::string fp = dot == std::string::npos ? "" : s.substr(dot + 1);
  if (ip.empty() && fp.empty()) return std::nullopt;
  if (fp.size() > 6) return std::nullopt;  // sub-ppm precision unsupported
  std::uint64_t whole = 0;
  for (char c : ip) {
    if (c < '0' || c > '9') return std::nullopt;
    whole = whole * 10 + static_cast<std::uint64_t>(c - '0');
    if (whole > 1) return std::nullopt;
  }
  std::uint64_t frac = 0;
  for (char c : fp) {
    if (c < '0' || c > '9') return std::nullopt;
    frac = frac * 10 + static_cast<std::uint64_t>(c - '0');
  }
  for (std::size_t i = fp.size(); i < 6; ++i) frac *= 10;
  std::uint64_t ppm = whole * kPpmOne + frac;
  if (ppm > kPpmOne) return std::nullopt;
  return static_cast<std::uint32_t>(ppm);
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    if (v > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10) {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::optional<FaultConfig> parse_fault_spec(const char* text,
                                            std::string* err) {
  FaultConfig cfg;
  if (text == nullptr || *text == '\0') return cfg;  // unset: faults off
  const std::string raw = text;
  auto fail = [&](const std::string& why) -> std::optional<FaultConfig> {
    if (err != nullptr) {
      *err = "fault spec \"" + raw + "\": " + why +
             " (expected comma-separated drop/dup/delay/blackout=PROB, "
             "delay_max/blackout_window/rto/rto_max/seed=N)";
    }
    return std::nullopt;
  };
  if (trim(raw) == "off") return cfg;
  cfg.enabled = true;

  bool seen[9] = {};
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    std::size_t comma = raw.find(',', pos);
    if (comma == std::string::npos) comma = raw.size();
    const std::string item = trim(raw.substr(pos, comma - pos));
    pos = comma + 1;
    if (item.empty()) {
      return fail("empty list entry");
    }
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) return fail("entry \"" + item + "\" has no '='");
    const std::string key = trim(item.substr(0, eq));
    const std::string val = trim(item.substr(eq + 1));

    auto prob = [&](const char* name, std::uint32_t* out,
                    int idx) -> std::optional<std::string> {
      if (seen[idx]) return "duplicate key \"" + std::string(name) + "\"";
      seen[idx] = true;
      std::optional<std::uint32_t> p = parse_prob_ppm(val);
      if (!p.has_value()) {
        return std::string(name) + "=\"" + val +
               "\" is not a probability in [0, 1] with <= 6 decimals";
      }
      *out = *p;
      return std::nullopt;
    };
    auto count = [&](const char* name, sim::Instr* out,
                     int idx) -> std::optional<std::string> {
      if (seen[idx]) return "duplicate key \"" + std::string(name) + "\"";
      seen[idx] = true;
      std::optional<std::uint64_t> v = parse_u64(val);
      if (!v.has_value()) {
        return std::string(name) + "=\"" + val + "\" is not a non-negative integer";
      }
      *out = *v;
      return std::nullopt;
    };

    std::optional<std::string> why;
    if (key == "drop") {
      why = prob("drop", &cfg.drop_ppm, 0);
    } else if (key == "dup") {
      why = prob("dup", &cfg.dup_ppm, 1);
    } else if (key == "delay") {
      why = prob("delay", &cfg.delay_ppm, 2);
    } else if (key == "blackout") {
      why = prob("blackout", &cfg.blackout_ppm, 3);
    } else if (key == "delay_max") {
      why = count("delay_max", &cfg.delay_max, 4);
    } else if (key == "blackout_window") {
      why = count("blackout_window", &cfg.blackout_window, 5);
    } else if (key == "rto") {
      why = count("rto", &cfg.rto, 6);
    } else if (key == "rto_max") {
      why = count("rto_max", &cfg.rto_max, 7);
    } else if (key == "seed") {
      if (seen[8]) {
        why = "duplicate key \"seed\"";
      } else {
        seen[8] = true;
        std::optional<std::uint64_t> v = parse_u64(val);
        if (!v.has_value()) {
          why = "seed=\"" + val + "\" is not a non-negative integer";
        } else {
          cfg.seed = *v;
        }
      }
    } else {
      why = "unknown key \"" + key + "\"";
    }
    if (why.has_value()) return fail(*why);
    if (pos > raw.size()) break;
  }

  std::string verr;
  if (!validate_fault_config(cfg, &verr)) return fail(verr);
  return cfg;
}

std::string to_string(const FaultConfig& cfg) {
  if (!cfg.enabled) return "off";
  auto prob = [](std::uint32_t ppm) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%06u", ppm / kPpmOne, ppm % kPpmOne);
    std::string s = buf;
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
    return s;
  };
  std::string out;
  out += "drop=" + prob(cfg.drop_ppm);
  out += ",dup=" + prob(cfg.dup_ppm);
  out += ",delay=" + prob(cfg.delay_ppm);
  out += ",delay_max=" + std::to_string(cfg.delay_max);
  out += ",blackout=" + prob(cfg.blackout_ppm);
  out += ",blackout_window=" + std::to_string(cfg.blackout_window);
  out += ",rto=" + std::to_string(cfg.rto);
  out += ",rto_max=" + std::to_string(cfg.rto_max);
  out += ",seed=" + std::to_string(cfg.seed);
  return out;
}

}  // namespace abcl::net
