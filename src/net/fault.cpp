#include "net/fault.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/spec_parser.hpp"

namespace abcl::net {

// ----------------------------------------------------------------------------
// FaultPlan
// ----------------------------------------------------------------------------

FaultPlan::FaultPlan(const FaultConfig& cfg, sim::Instr min_latency)
    : cfg_(cfg) {
  std::string err;
  ABCL_CHECK_MSG(validate_fault_config(cfg_, &err), err.c_str());
  ABCL_CHECK(min_latency > 0);
  rto_ = cfg_.rto != 0 ? cfg_.rto : 4 * min_latency;
  if (rto_ > cfg_.rto_max) rto_ = cfg_.rto_max;
}

std::uint64_t FaultPlan::remix(std::uint64_t x) {
  return util::splitmix64(x);  // advances x; we want the output only
}

std::uint64_t FaultPlan::roll(std::uint64_t tag, std::int32_t src,
                              std::int32_t dst, std::uint64_t seq,
                              std::uint32_t attempt) const {
  // A short SplitMix chain over the decision coordinates. Every input is a
  // simulated quantity; equal coordinates always produce equal rolls, which
  // is what makes serial and parallel runs agree decision-for-decision.
  std::uint64_t x = cfg_.seed;
  x = remix(x ^ (tag * 0x9e3779b97f4a7c15ull));
  x = remix(x ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint32_t>(dst)));
  x = remix(x ^ seq);
  x = remix(x ^ attempt);
  return x;
}

// ----------------------------------------------------------------------------
// DedupWindow
// ----------------------------------------------------------------------------

void DedupWindow::advance() {
  for (;;) {
    while (bits_ & 1) {
      bits_ >>= 1;
      ++base_;
    }
    // Pull spilled sequences that now fit the bitmap; re-loop in case they
    // extend the delivered prefix further.
    bool migrated = false;
    while (!far_.empty() && *far_.begin() < base_ + kBits) {
      bits_ |= std::uint64_t{1} << (*far_.begin() - base_);
      far_.erase(far_.begin());
      migrated = true;
    }
    if (!migrated) return;
  }
}

bool DedupWindow::accept(std::uint64_t seq) {
  if (seq < base_) return false;  // inside the delivered prefix: duplicate
  if (seq < base_ + kBits) {
    const std::uint64_t bit = std::uint64_t{1} << (seq - base_);
    if (bits_ & bit) return false;
    bits_ |= bit;
    advance();
    return true;
  }
  return far_.insert(seq).second;
}

// ----------------------------------------------------------------------------
// FaultStats
// ----------------------------------------------------------------------------

void FaultStats::merge(const FaultStats& o) {
  // Field-coverage guard in the Network::Stats::merge style: adding a
  // FaultStats member without merging it here breaks the totals silently.
  static_assert(sizeof(FaultStats) == 10 * sizeof(std::uint64_t) +
                                          sizeof(util::Log2Histogram),
                "new FaultStats field? merge it here and in the tests");
  attempts += o.attempts;
  drops += o.drops;
  blackout_drops += o.blackout_drops;
  duplicates += o.duplicates;
  delays += o.delays;
  spurious_retransmits += o.spurious_retransmits;
  forced_deliveries += o.forced_deliveries;
  copies_enqueued += o.copies_enqueued;
  delivered += o.delivered;
  dup_suppressed += o.dup_suppressed;
  retry_delay_instr.merge(o.retry_delay_instr);
}

// ----------------------------------------------------------------------------
// Config validation / parsing
// ----------------------------------------------------------------------------

namespace {

bool cfg_fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool validate_fault_config(const FaultConfig& cfg, std::string* err) {
  if (!cfg.enabled) return true;
  if (cfg.drop_ppm >= kPpmOne) {
    return cfg_fail(err,
                    "fault config: drop probability 1.0 loses every attempt "
                    "on every link — a guaranteed livelock; use < 1.0");
  }
  if (cfg.blackout_ppm >= kPpmOne) {
    return cfg_fail(err,
                    "fault config: blackout probability 1.0 keeps every link "
                    "permanently dark — a guaranteed livelock; use < 1.0");
  }
  if (cfg.dup_ppm > kPpmOne) {
    return cfg_fail(err, "fault config: dup probability > 1.0");
  }
  if (cfg.delay_ppm > kPpmOne) {
    return cfg_fail(err, "fault config: delay probability > 1.0");
  }
  if (cfg.delay_max < 1) {
    return cfg_fail(err, "fault config: delay_max must be >= 1 instr");
  }
  if (cfg.blackout_window < 1) {
    return cfg_fail(err, "fault config: blackout_window must be >= 1 instr");
  }
  if (cfg.rto_max < 1) {
    return cfg_fail(err, "fault config: rto_max must be >= 1 instr");
  }
  if (cfg.rto > cfg.rto_max) {
    return cfg_fail(err, "fault config: rto exceeds rto_max");
  }
  return true;
}

// Thin wrapper over util::SpecParser (the shared key=value grammar): the
// field set and every diagnostic below are this knob's contract; the split /
// trim / duplicate-key machinery is the shared core.
std::optional<FaultConfig> parse_fault_spec(const char* text,
                                            std::string* err) {
  FaultConfig cfg;
  if (util::spec_off(text)) return cfg;  // unset or "off": faults off
  const std::string raw = text;
  auto fail = [&](const std::string& why) -> std::optional<FaultConfig> {
    if (err != nullptr) {
      *err = util::spec_error(
          "fault spec", raw, why,
          "expected comma-separated drop/dup/delay/blackout=PROB, "
          "delay_max/blackout_window/rto/rto_max/seed=N");
    }
    return std::nullopt;
  };
  cfg.enabled = true;

  util::SpecParser p;
  p.prob_ppm("drop", &cfg.drop_ppm)
      .prob_ppm("dup", &cfg.dup_ppm)
      .prob_ppm("delay", &cfg.delay_ppm)
      .prob_ppm("blackout", &cfg.blackout_ppm)
      .u64("delay_max", &cfg.delay_max)
      .u64("blackout_window", &cfg.blackout_window)
      .u64("rto", &cfg.rto)
      .u64("rto_max", &cfg.rto_max)
      .u64("seed", &cfg.seed);
  std::string why;
  if (!p.run(raw, &why)) return fail(why);

  std::string verr;
  if (!validate_fault_config(cfg, &verr)) return fail(verr);
  return cfg;
}

std::string to_string(const FaultConfig& cfg) {
  if (!cfg.enabled) return "off";
  auto prob = [](std::uint32_t ppm) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%06u", ppm / kPpmOne, ppm % kPpmOne);
    std::string s = buf;
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
    return s;
  };
  std::string out;
  out += "drop=" + prob(cfg.drop_ppm);
  out += ",dup=" + prob(cfg.dup_ppm);
  out += ",delay=" + prob(cfg.delay_ppm);
  out += ",delay_max=" + std::to_string(cfg.delay_max);
  out += ",blackout=" + prob(cfg.blackout_ppm);
  out += ",blackout_window=" + std::to_string(cfg.blackout_window);
  out += ",rto=" + std::to_string(cfg.rto);
  out += ",rto_max=" + std::to_string(cfg.rto_max);
  out += ",seed=" + std::to_string(cfg.seed);
  return out;
}

}  // namespace abcl::net
