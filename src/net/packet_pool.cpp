#include "net/packet_pool.hpp"

namespace abcl::net {

PacketPool::~PacketPool() {
  // Pooled slots live in slabs_, freed wholesale. Unpooled slots are
  // heap-owned by whoever holds the pointer (Network's destructor drains
  // its queues back through release()).
}

void PacketPool::depot_get(Magazine& m) {
  std::lock_guard<std::mutex> lock(mu_);
  const int want = kMagazineCap / 2;
  while (m.n_ < want) {
    if (!depot_.empty()) {
      m.slots_[m.n_++] = depot_.back();
      depot_.pop_back();
      continue;
    }
    if (fresh_left_ == 0) {
      slabs_.push_back(std::make_unique<Packet[]>(kSlabPackets));
      fresh_ = slabs_.back().get();
      fresh_left_ = kSlabPackets;
    }
    m.slots_[m.n_++] = fresh_++;
    --fresh_left_;
  }
}

void PacketPool::depot_put(Magazine& m, int keep) {
  std::lock_guard<std::mutex> lock(mu_);
  while (m.n_ > keep) depot_.push_back(m.slots_[--m.n_]);
}

Packet* PacketPool::acquire(Magazine& m) {
  if (!pooled_) return new Packet;
  if (m.n_ == 0) {
    ++m.depot_trips_;
    depot_get(m);
  } else {
    ++m.hits_;
  }
  return m.slots_[--m.n_];
}

void PacketPool::release(Magazine& m, Packet* p) {
  if (!pooled_) {
    delete p;
    return;
  }
  if (m.n_ == kMagazineCap) {
    ++m.depot_trips_;
    depot_put(m, kMagazineCap / 2);
  } else {
    ++m.hits_;
  }
  m.slots_[m.n_++] = p;
}

void PacketPool::flush(Magazine& m) {
  if (!pooled_ || m.n_ == 0) return;
  ++m.depot_trips_;
  depot_put(m, 0);
}

std::uint64_t PacketPool::slabs_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slabs_.size();
}

}  // namespace abcl::net
