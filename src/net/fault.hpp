// Deterministic network fault injection + the delivery-hardening protocol.
//
// The paper assumes the multicomputer's network is perfect — no drops, no
// duplicates, no pathological delays — and so did this runtime, which made
// whole bug classes (stale gossip steering placement, replenish protocols
// wedged on a lost create packet) unreachable by the fuzzer. A FaultPlan
// makes unreliable delivery a first-class simulated scenario: drop,
// duplicate, reorder-delay and per-link blackout faults, each decided by a
// counter-based SplitMix hash of (seed, src, dst, link_seq, attempt).
//
// Determinism argument: every hash input is a simulated quantity assigned
// in the network's canonical commit order (link_seq increments per
// (src,dst) channel exactly when Network::commit runs, and commits happen
// in the same order under the serial Machine and under flush_outboxes'
// canonical merge), so serial and host-parallel runs make bit-identical
// fault decisions. No host randomness, clocks or thread interleavings are
// ever consulted.
//
// Reliability is resolved *analytically at commit time*: instead of
// simulating live ack packets and timer events, commit plays out the whole
// stop-and-wait retry protocol for the packet at once — attempt k
// transmits at send_time + sum of backoffs, is lost to a drop or blackout
// hash, or else enqueues a real delivery copy (plus a duplicate copy when
// the dup hash fires); a lost virtual ack makes the sender retransmit
// spuriously, which the receiver's DedupWindow later suppresses. The
// resulting delivery schedule is exactly what a message-level simulation
// of the protocol would produce, at none of the event cost, and every copy
// still arrives >= send_time + Network::min_packet_latency(), so the PDES
// lookahead stays valid.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::net {

// Fault probabilities are integer parts-per-million (0..1'000'000) so that
// configs serialize exactly (no float formatting drift in specs, metrics or
// baselines). parse_fault_spec accepts human decimals ("drop=0.05") and
// converts; 1.0 drop/blackout is rejected outright — with every attempt
// lost the retry protocol is a guaranteed livelock.
struct FaultConfig {
  bool enabled = false;
  std::uint32_t drop_ppm = 0;      // per-attempt data-packet loss (also acks)
  std::uint32_t dup_ppm = 0;       // duplicate-delivery probability per copy
  std::uint32_t delay_ppm = 0;     // extra reorder-delay probability per copy
  sim::Instr delay_max = 256;      // max extra delay drawn (instr, >= 1)
  std::uint32_t blackout_ppm = 0;  // per-(link,window) total-outage probability
  sim::Instr blackout_window = 4096;  // blackout granularity (instr, >= 1)
  sim::Instr rto = 0;              // retransmit timeout; 0 = auto (4x min wire)
  sim::Instr rto_max = 1u << 20;   // exponential-backoff cap (instr)
  std::uint64_t seed = 1;          // fault-decision stream seed

  bool operator==(const FaultConfig&) const = default;
};

inline constexpr std::uint32_t kPpmOne = 1'000'000;

// Structural validation shared by parse_fault_spec, WorldConfig and the
// fuzz Spec loader. Returns false with a human-readable reason; a disabled
// config is always valid.
bool validate_fault_config(const FaultConfig& cfg, std::string* err);

// Strict parser behind ABCLSIM_FAULTS and fuzz_repro --faults. nullptr or
// empty -> disabled config. Otherwise a comma-separated key=value list:
//   drop=P dup=P delay=P blackout=P      probabilities in [0,1], <= 6
//                                        fractional digits (ppm precision)
//   delay_max=N blackout_window=N        positive instr counts
//   rto=N rto_max=N                      instr counts (rto=0 -> auto)
//   seed=N                               decision-stream seed
// Anything else — unknown keys, repeated keys, malformed numbers, drop or
// blackout probability >= 1 — returns nullopt with a diagnostic in *err.
// Garbage never falls back silently to "no faults".
std::optional<FaultConfig> parse_fault_spec(const char* text,
                                            std::string* err);

// One-line canonical rendering ("drop=0.05,dup=0.01,seed=7"; "off" when
// disabled) — parse_fault_spec(to_string(cfg)) round-trips exactly.
std::string to_string(const FaultConfig& cfg);

// The pure decision functions. A FaultPlan holds no mutable state: every
// query is a hash of its arguments, so callers may evaluate decisions in
// any order (or re-evaluate them) and get the same answers — the property
// the cross-driver determinism proof leans on.
class FaultPlan {
 public:
  // Attempt ceiling for the analytic retry loop: the final attempt is
  // force-delivered so a deterministically unlucky hash streak cannot
  // livelock a run (counted in FaultStats::forced_deliveries; with drop
  // probability p the chance of reaching it is p^63 per packet).
  static constexpr std::uint32_t kMaxAttempts = 64;

  // `min_latency` = Network::min_packet_latency(); it anchors the auto rto.
  FaultPlan(const FaultConfig& cfg, sim::Instr min_latency);

  const FaultConfig& config() const { return cfg_; }
  // Resolved retransmit timeout (cfg.rto, or 4x min latency when auto).
  sim::Instr rto() const { return rto_; }

  // Data-packet attempt `attempt` of channel-sequence `seq` on (src,dst)
  // is lost in transit.
  bool drop(std::int32_t src, std::int32_t dst, std::uint64_t seq,
            std::uint32_t attempt) const {
    return bernoulli(roll(kTagDrop, src, dst, seq, attempt), cfg_.drop_ppm);
  }

  // The (virtual) ack for a delivered attempt is lost on the way back, so
  // the sender retransmits spuriously. Acks share the data drop rate.
  bool ack_lost(std::int32_t src, std::int32_t dst, std::uint64_t seq,
                std::uint32_t attempt) const {
    return bernoulli(roll(kTagAck, src, dst, seq, attempt), cfg_.drop_ppm);
  }

  // The network duplicates this delivered copy.
  bool duplicate(std::int32_t src, std::int32_t dst, std::uint64_t seq,
                 std::uint32_t attempt) const {
    return bernoulli(roll(kTagDup, src, dst, seq, attempt), cfg_.dup_ppm);
  }

  // Extra reorder delay for this copy: 0, or 1..delay_max instrs.
  sim::Instr extra_delay(std::int32_t src, std::int32_t dst, std::uint64_t seq,
                         std::uint32_t attempt) const {
    std::uint64_t r = roll(kTagDelay, src, dst, seq, attempt);
    if (!bernoulli(r, cfg_.delay_ppm)) return 0;
    return 1 + static_cast<sim::Instr>(remix(r) %
                                       static_cast<std::uint64_t>(cfg_.delay_max));
  }

  // The (src,dst) link is dark for the whole blackout window `window`
  // (= transmit_time / cfg.blackout_window). Window-granular so an outage
  // kills consecutive attempts, which is what exercises real backoff.
  bool blackout(std::int32_t src, std::int32_t dst,
                std::uint64_t window) const {
    return bernoulli(roll(kTagBlackout, src, dst, window, 0),
                     cfg_.blackout_ppm);
  }

  // Retransmit backoff after attempt `attempt` (0-based): rto << attempt,
  // saturating at rto_max.
  sim::Instr backoff(std::uint32_t attempt) const {
    if (attempt >= 63 || (rto_ >> (63 - attempt)) != 0) return cfg_.rto_max;
    sim::Instr b = rto_ << attempt;
    return b > cfg_.rto_max ? cfg_.rto_max : b;
  }

 private:
  enum : std::uint64_t {
    kTagDrop = 1,
    kTagAck = 2,
    kTagDup = 3,
    kTagDelay = 4,
    kTagBlackout = 5,
  };

  static std::uint64_t remix(std::uint64_t x);
  std::uint64_t roll(std::uint64_t tag, std::int32_t src, std::int32_t dst,
                     std::uint64_t seq, std::uint32_t attempt) const;
  static bool bernoulli(std::uint64_t r, std::uint32_t ppm) {
    return ppm != 0 && r % kPpmOne < ppm;
  }

  FaultConfig cfg_;
  sim::Instr rto_;
};

// Receiver-side duplicate suppression for one (dst <- src) channel. Tracks
// which link_seqs have been delivered: a contiguous prefix [0, base) plus a
// 64-bit bitmap for [base, base+64) plus an ordered spill set for copies
// that arrive wildly early (heavy reorder-delay). accept() returns true
// exactly once per sequence number; the base advances over the delivered
// prefix so steady-state memory is one word per live channel.
class DedupWindow {
 public:
  static constexpr std::uint64_t kBits = 64;

  // Records delivery of `seq`; true iff this is its first delivery.
  bool accept(std::uint64_t seq);

  std::uint64_t base() const { return base_; }
  std::size_t spill_size() const { return far_.size(); }

 private:
  friend struct abcl::ckpt::WorldIo;  // checkpoint serializer

  void advance();

  std::uint64_t base_ = 0;  // every seq < base_ has been delivered
  std::uint64_t bits_ = 0;  // bit i set => base_ + i delivered
  std::set<std::uint64_t> far_;  // delivered seqs >= base_ + kBits
};

// Fault-layer accounting. Commit-side counters are updated on the (single
// threaded) commit path; the receiver-side pair (delivered/dup_suppressed)
// is aggregated by Network::fault_stats() from per-destination counters
// owned by each destination's polling worker — nothing here is written
// concurrently. Deliberately separate from Network::Stats so the faults-off
// metrics snapshot stays byte-identical to the committed baselines.
struct FaultStats {
  std::uint64_t attempts = 0;             // physical transmissions, retries incl.
  std::uint64_t drops = 0;                // attempts lost to the drop hash
  std::uint64_t blackout_drops = 0;       // attempts lost to link blackouts
  std::uint64_t duplicates = 0;           // network-duplicated copies enqueued
  std::uint64_t delays = 0;               // copies given extra reorder delay
  std::uint64_t spurious_retransmits = 0; // resends caused by lost acks
  std::uint64_t forced_deliveries = 0;    // packets that hit kMaxAttempts
  std::uint64_t copies_enqueued = 0;      // delivery copies placed in dst queues
  std::uint64_t delivered = 0;            // first copies dispatched (recv side)
  std::uint64_t dup_suppressed = 0;       // later copies discarded (recv side)
  // Delivery lateness vs the fault-free arrival instant (bucket 0 = on
  // time); the retry/backoff overhead distribution in EXPERIMENTS.md.
  util::Log2Histogram retry_delay_instr;

  void merge(const FaultStats& o);
};

}  // namespace abcl::net
