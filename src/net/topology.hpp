// Interconnect topologies for the simulated multicomputer.
//
// The AP1000 is a 2-D torus (T-net, 25 MB/s); the network model only needs
// the hop count between two nodes to price a packet, so a topology is a hop
// function plus a neighbour enumeration (used by the neighbour placement
// policy and the load-gossip service).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace abcl::net {

using sim::NodeId;

enum class TopologyKind : std::uint8_t {
  kTorus2D,        // AP1000-style wrap-around mesh
  kMesh2D,         // no wrap-around
  kFullyConnected, // 1 hop between any two distinct nodes
  kRing,           // 1-D wrap-around (pipeline machines)
  kHypercube,      // hops = popcount(a ^ b); n rounded meanings: see ctor
};

class Topology {
 public:
  // Builds a topology over `n` nodes. For the 2-D kinds, the grid is chosen
  // as close to square as possible (X * Y == n, X >= Y).
  Topology(TopologyKind kind, std::int32_t n);

  TopologyKind kind() const { return kind_; }
  std::int32_t num_nodes() const { return n_; }
  std::int32_t dim_x() const { return x_; }
  std::int32_t dim_y() const { return y_; }

  // Minimal routing distance in hops; 0 iff src == dst.
  std::int32_t hops(NodeId src, NodeId dst) const;

  // Direct neighbours (4 for torus/mesh interior; all others for
  // fully-connected, capped at 8 for gossip fan-out sanity).
  std::vector<NodeId> neighbors(NodeId id) const;

  std::int32_t diameter() const;

 private:
  std::int32_t coord_x(NodeId id) const { return static_cast<std::int32_t>(id) % x_; }
  std::int32_t coord_y(NodeId id) const { return static_cast<std::int32_t>(id) / x_; }

  TopologyKind kind_;
  std::int32_t n_;
  std::int32_t x_ = 1;
  std::int32_t y_ = 1;
};

}  // namespace abcl::net
