#include "net/network.hpp"

#include "util/assert.hpp"

namespace abcl::net {

namespace {
constexpr std::int32_t kMatrixNodeLimit = 1024;  // 1024^2 * 8 B = 8 MiB
}

Network::Network(Topology topology, const sim::CostModel* cm,
                 std::function<void(NodeId)> on_deliverable)
    : topology_(topology),
      cm_(cm),
      on_deliverable_(std::move(on_deliverable)),
      queues_(static_cast<std::size_t>(topology_.num_nodes())),
      use_matrix_(topology_.num_nodes() <= kMatrixNodeLimit) {
  ABCL_CHECK(cm_ != nullptr);
  ABCL_CHECK_MSG(cm_->wire_latency + cm_->per_hop > 0,
                 "network lookahead must be positive for the PDES driver");
  if (use_matrix_) {
    channel_matrix_.assign(
        static_cast<std::size_t>(topology_.num_nodes()) *
            static_cast<std::size_t>(topology_.num_nodes()),
        0);
  }
}

sim::Instr& Network::channel_floor(NodeId src, NodeId dst) {
  if (use_matrix_) {
    return channel_matrix_[static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(topology_.num_nodes()) +
                           static_cast<std::size_t>(dst)];
  }
  std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                       << 32) |
                      static_cast<std::uint32_t>(dst);
  return channel_map_[key];
}

void Network::send(Packet&& p, AmCategory category) {
  ABCL_CHECK(p.dst >= 0 && p.dst < topology_.num_nodes());
  ABCL_CHECK(p.src >= 0 && p.src < topology_.num_nodes());

  std::int32_t hops = topology_.hops(p.src, p.dst);
  sim::Instr wire = cm_->wire_latency +
                    static_cast<sim::Instr>(hops) * cm_->per_hop +
                    static_cast<sim::Instr>(p.wire_words()) * cm_->per_word;
  if (wire == 0) wire = 1;  // strictly positive lookahead
  sim::Instr arrive = p.send_time + wire;

  // Enforce per-channel FIFO: a later send on the same channel never
  // arrives before an earlier one.
  sim::Instr& floor = channel_floor(p.src, p.dst);
  if (arrive < floor) arrive = floor;
  floor = arrive;

  p.arrive_time = arrive;
  p.seq = next_seq_++;

  stats_.packets += 1;
  stats_.payload_words += p.nwords;
  stats_.wire_words += static_cast<std::uint64_t>(p.wire_words());
  stats_.per_category[static_cast<int>(category)] += 1;
  stats_.wire_latency_instr.add(static_cast<double>(arrive - p.send_time));

  NodeId dst = p.dst;
  queues_[static_cast<std::size_t>(dst)].push(std::move(p));
  ++in_flight_;
  if (on_deliverable_) on_deliverable_(dst);
}

bool Network::poll(NodeId dst, sim::Instr now, Packet& out) {
  auto& q = queues_[static_cast<std::size_t>(dst)];
  if (q.empty() || q.top().arrive_time > now) return false;
  out = q.top();
  q.pop();
  --in_flight_;
  return true;
}

sim::Instr Network::next_arrival(NodeId dst) const {
  const auto& q = queues_[static_cast<std::size_t>(dst)];
  return q.empty() ? sim::kInstrInf : q.top().arrive_time;
}

}  // namespace abcl::net
