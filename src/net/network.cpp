#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace abcl::net {

namespace {
constexpr std::int32_t kMatrixNodeLimit = 1024;  // 1024^2 * 8 B = 8 MiB
constexpr int kMinWireWords = 4;                 // header-only packet
// Merge fan-in bound = the host-thread ceiling (parse_host_threads caps at
// 1024 workers, one outbox each); the cursors live on the flush's stack.
constexpr int kMaxMergeRuns = 1024;
}

void Network::Stats::merge(const Stats& o) {
  // Field-coverage guard: a new Stats member must be merged here or totals
  // silently drop it. On LP64 the struct is 3*8 (counters) + 4*8
  // (per_category) + 48 (RunningStat) bytes; adding a field breaks this
  // assert and points you at the merge. tests/test_obs.cpp checks the
  // fields themselves.
  static_assert(sizeof(Stats) == 3 * sizeof(std::uint64_t) +
                                     4 * sizeof(std::uint64_t) +
                                     sizeof(util::RunningStat),
                "new Network::Stats field? merge it here and in the tests");
  packets += o.packets;
  payload_words += o.payload_words;
  wire_words += o.wire_words;
  for (int i = 0; i < 4; ++i) per_category[i] += o.per_category[i];
  wire_latency_instr.merge(o.wire_latency_instr);
}

Network::Network(Topology topology, const sim::CostModel* cm,
                 std::function<void(NodeId)> on_deliverable, bool pooling,
                 util::QueueKind queue, FlushKind flush, FaultConfig faults)
    : topology_(topology),
      cm_(cm),
      on_deliverable_(std::move(on_deliverable)),
      queues_(static_cast<std::size_t>(topology_.num_nodes()),
              DstQueue(queue)),
      use_matrix_(topology_.num_nodes() <= kMatrixNodeLimit),
      src_seq_(static_cast<std::size_t>(topology_.num_nodes()), 0),
      outboxes_(static_cast<std::size_t>(topology_.num_nodes()), nullptr),
      queue_kind_(queue),
      flush_(flush),
      flush_touched_mark_(static_cast<std::size_t>(topology_.num_nodes()), 0),
      pool_(pooling),
      poll_mags_(static_cast<std::size_t>(topology_.num_nodes()), nullptr) {
  ABCL_CHECK(cm_ != nullptr);
  ABCL_CHECK_MSG(cm_->wire_latency + cm_->per_hop > 0,
                 "network lookahead must be positive for the PDES driver");
  min_latency_raw_ = cm_->wire_latency +
                     static_cast<sim::Instr>(kMinWireWords) * cm_->per_word;
  min_latency_ = min_latency_raw_ == 0 ? 1 : min_latency_raw_;
  if (use_matrix_) {
    channel_matrix_.assign(
        static_cast<std::size_t>(topology_.num_nodes()) *
            static_cast<std::size_t>(topology_.num_nodes()),
        0);
  }
  if (faults.enabled) {
    fault_plan_ = std::make_unique<FaultPlan>(faults, min_packet_latency());
    if (use_matrix_) {
      link_seq_matrix_.assign(channel_matrix_.size(), 0);
    }
    dst_fault_.resize(static_cast<std::size_t>(topology_.num_nodes()));
  }
}

Network::~Network() {
  // Packets still queued at teardown (worlds are routinely dropped before
  // quiescence in tests) hold pool slots; hand them back so the unpooled
  // mode stays leak-free under ASan.
  for (auto& q : queues_) {
    while (!q.empty()) {
      pool_.release(home_mag_, q.top().slot);
      q.pop();
    }
  }
}

sim::Instr& Network::channel_floor(NodeId src, NodeId dst) {
  if (use_matrix_) {
    return channel_matrix_[static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(topology_.num_nodes()) +
                           static_cast<std::size_t>(dst)];
  }
  std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                       << 32) |
                      static_cast<std::uint32_t>(dst);
  return channel_map_[key];
}

std::uint64_t& Network::link_seq(NodeId src, NodeId dst) {
  if (use_matrix_) {
    return link_seq_matrix_[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(topology_.num_nodes()) +
                            static_cast<std::size_t>(dst)];
  }
  std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                       << 32) |
                      static_cast<std::uint32_t>(dst);
  return link_seq_map_[key];
}

void Network::send(Packet&& p, AmCategory category) {
  ABCL_CHECK(p.dst >= 0 && p.dst < topology_.num_nodes());
  ABCL_CHECK(p.src >= 0 && p.src < topology_.num_nodes());
  if (Outbox* ob = outboxes_[static_cast<std::size_t>(p.src)]) {
    ob->items_.push_back({std::move(p), category, ob->current_key_});
    ob->sorted_ = false;
    return;
  }
  // A direct commit inside a windowed run would bypass the reorder buffer's
  // key stamping; the parallel driver installs an outbox for every source
  // before enabling the mode.
  ABCL_CHECK(!windowed_stats_);
  commit(std::move(p), category);
}

void Network::commit(Packet&& p, AmCategory category) {
  std::int32_t hops = topology_.hops(p.src, p.dst);
  sim::Instr wire = cm_->wire_latency +
                    static_cast<sim::Instr>(hops) * cm_->per_hop +
                    static_cast<sim::Instr>(p.wire_words()) * cm_->per_word;
  if (wire == 0) wire = 1;  // strictly positive lookahead
  sim::Instr arrive = p.send_time + wire;

  // Enforce per-channel FIFO: a later send on the same channel never
  // arrives before an earlier one.
  sim::Instr& floor = channel_floor(p.src, p.dst);
  if (arrive < floor) arrive = floor;
  floor = arrive;

  p.arrive_time = arrive;
  p.seq = src_seq_[static_cast<std::size_t>(p.src)]++;

  // Logical (sender-intent) accounting: one packet per send regardless of
  // how many physical attempts/copies the fault layer generates below —
  // fault overhead is reported separately in FaultStats.
  stats_.packets += 1;
  stats_.payload_words += p.nwords;
  stats_.wire_words += static_cast<std::uint64_t>(p.wire_words());
  stats_.per_category[static_cast<int>(category)] += 1;
  if (windowed_stats_) {
    // Park the order-sensitive Welford sample until the global key frontier
    // passes commit_key_ (see set_windowed_stats); the sums above are
    // order-free and stay immediate.
    deferred_lat_.push_back(
        {commit_key_, p.src, static_cast<double>(arrive - p.send_time)});
  } else {
    stats_.wire_latency_instr.add(static_cast<double>(arrive - p.send_time));
  }

  if (fault_plan_ != nullptr) {
    commit_faulty(p);
    return;
  }
  enqueue_copy(p, arrive);
}

void Network::enqueue_copy(const Packet& p, sim::Instr arrive) {
  NodeId dst = p.dst;
  Packet* slot = pool_.acquire(home_mag_);
  *slot = p;
  slot->arrive_time = arrive;
  queues_[static_cast<std::size_t>(dst)].push(
      QueuedPacket{arrive, p.src, p.seq, slot});
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (flush_active_) {
    // Batched wakeups: record the destination once; flush_outboxes runs a
    // single rekey pass per dst after all commits. Equivalent to the
    // per-packet callback because more packets only lower a destination's
    // effective key — the post-flush key is the min the driver would have
    // folded in packet by packet.
    auto d = static_cast<std::size_t>(dst);
    if (!flush_touched_mark_[d]) {
      flush_touched_mark_[d] = 1;
      flush_touched_.push_back(dst);
    }
    return;
  }
  if (on_deliverable_) on_deliverable_(dst);
}

// Resolves the stop-and-wait retry protocol for one committed packet
// analytically (see net/fault.hpp): attempt k transmits at send_time + the
// accumulated backoff; each attempt is lost to the drop hash or a link
// blackout, or else enqueues a real delivery copy (plus a duplicate copy
// when that hash fires). A lost virtual ack keeps the loop going — a
// spurious retransmit the receiver's dedup window will suppress. Every
// copy's arrival is >= send_time + min_packet_latency() (the effective
// wire below already clamps there), so the PDES lookahead stays valid, and
// copies get strictly increasing arrivals so the (arrive, src, seq)
// delivery order stays a strict total order.
void Network::commit_faulty(Packet& p) {
  const FaultPlan& plan = *fault_plan_;
  const FaultConfig& fc = plan.config();
  FaultStats& fs = fault_commit_;

  const std::uint64_t lseq = link_seq(p.src, p.dst)++;
  p.link_seq = lseq;
  const sim::Instr base_arrive = p.arrive_time;
  // Effective wire time including the per-channel FIFO clamp the caller
  // already applied; >= min_packet_latency() by construction.
  const sim::Instr eff_wire = base_arrive - p.send_time;

  sim::Instr t = p.send_time;   // transmit instant of the current attempt
  sim::Instr last_arrive = 0;   // strictly-increasing de-tie clamp
  for (std::uint32_t attempt = 0;; ++attempt) {
    const bool forced = attempt + 1 == FaultPlan::kMaxAttempts;
    fs.attempts += 1;
    bool lost = false;
    if (!forced) {
      if (plan.drop(p.src, p.dst, lseq, attempt)) {
        fs.drops += 1;
        lost = true;
      } else if (fc.blackout_ppm != 0 &&
                 plan.blackout(p.src, p.dst, t / fc.blackout_window)) {
        fs.blackout_drops += 1;
        lost = true;
      }
    }
    if (!lost) {
      sim::Instr extra = plan.extra_delay(p.src, p.dst, lseq, attempt);
      if (extra != 0) fs.delays += 1;
      sim::Instr a = t + eff_wire + extra;
      if (a <= last_arrive) a = last_arrive + 1;
      last_arrive = a;
      p.retries = static_cast<std::uint16_t>(attempt);
      fs.copies_enqueued += 1;
      fs.retry_delay_instr.add(a - base_arrive);
      enqueue_copy(p, a);
      if (plan.duplicate(p.src, p.dst, lseq, attempt)) {
        sim::Instr d = a + 1;
        last_arrive = d;
        fs.duplicates += 1;
        fs.copies_enqueued += 1;
        fs.retry_delay_instr.add(d - base_arrive);
        enqueue_copy(p, d);
      }
      if (forced) {
        fs.forced_deliveries += 1;
        return;
      }
      if (!plan.ack_lost(p.src, p.dst, lseq, attempt)) return;  // acked: done
      fs.spurious_retransmits += 1;
    }
    t += plan.backoff(attempt);
  }
}

void Network::Outbox::sort_canonical() {
  if (sorted_) return;
  // (quantum key, src) ascending; stability keeps each source's program
  // order, since one source lives in exactly one outbox.
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.pkt.src < b.pkt.src;
                   });
  sorted_ = true;
}

void Network::set_poll_magazine(NodeId dst, PacketPool::Magazine* m) {
  ABCL_CHECK(dst >= 0 && dst < topology_.num_nodes());
  poll_mags_[static_cast<std::size_t>(dst)] = m;
}

void Network::set_outbox(NodeId src, Outbox* ob) {
  ABCL_CHECK(src >= 0 && src < topology_.num_nodes());
  outboxes_[static_cast<std::size_t>(src)] = ob;
}

void Network::flush_outboxes(Outbox* const* boxes, std::size_t nboxes) {
  flush_active_ = true;
  if (flush_ == FlushKind::kMerge) {
    flush_merge(boxes, nboxes);
  } else {
    flush_sort(boxes, nboxes);
  }
  for (std::size_t i = 0; i < nboxes; ++i) {
    boxes[i]->items_.clear();
    boxes[i]->sorted_ = true;
  }
  flush_active_ = false;
  // One deduplicated rekey pass per destination, in canonical first-commit
  // order (deterministic, though the drivers only fold these into a min).
  for (NodeId dst : flush_touched_) {
    flush_touched_mark_[static_cast<std::size_t>(dst)] = 0;
    if (on_deliverable_) on_deliverable_(dst);
  }
  flush_touched_.clear();
}

// The historical commit path: gather everything, one global stable sort.
void Network::flush_sort(Outbox* const* boxes, std::size_t nboxes) {
  merge_.clear();
  for (std::size_t i = 0; i < nboxes; ++i) {
    for (Outbox::Item& it : boxes[i]->items_) merge_.push_back(std::move(it));
  }
  // Canonical order: (quantum key, src) ascending; a stable sort keeps each
  // source's program order, since one source lives in exactly one outbox.
  std::stable_sort(merge_.begin(), merge_.end(),
                   [](const Outbox::Item& a, const Outbox::Item& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.pkt.src < b.pkt.src;
                   });
  for (Outbox::Item& it : merge_) {
    commit_key_ = it.key;
    commit(std::move(it.pkt), it.cat);
  }
  merge_.clear();
}

void Network::set_windowed_stats(bool on) {
  // Mode flips only happen with the buffer drained (run entry/exit).
  ABCL_CHECK(deferred_lat_.empty());
  windowed_stats_ = on;
  deferred_mid_ = 0;
}

void Network::drain_deferred_wire_stats(sim::Instr frontier) {
  auto cmp = [](const DeferredWireSample& a, const DeferredWireSample& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.src < b.src;
  };
  if (deferred_mid_ > 0 && deferred_mid_ < deferred_lat_.size()) {
    // Carry (sorted) + this flush's batch (committed in canonical order, so
    // already sorted). inplace_merge keeps the carry first on equal (key,
    // src) — the carry is the earlier program order.
    std::inplace_merge(deferred_lat_.begin(),
                       deferred_lat_.begin() +
                           static_cast<std::ptrdiff_t>(deferred_mid_),
                       deferred_lat_.end(), cmp);
  }
  std::size_t n = 0;
  while (n < deferred_lat_.size() && deferred_lat_[n].key < frontier) {
    stats_.wire_latency_instr.add(deferred_lat_[n].v);
    ++n;
  }
  deferred_lat_.erase(deferred_lat_.begin(),
                      deferred_lat_.begin() + static_cast<std::ptrdiff_t>(n));
  deferred_mid_ = deferred_lat_.size();
}

// N-way loser-tree merge over pre-sorted per-worker runs: O(M log N)
// comparisons on the coordinator instead of O(M log M), with the per-run
// sorts already paid for in parallel by the workers (sort_canonical at the
// end of each shard's window). Equal (key, src) pairs cannot straddle two
// runs — a source lives in exactly one outbox — so merging runs in (key,
// src) order with ties broken by run index reproduces the canonical global
// order exactly, program order included.
void Network::flush_merge(Outbox* const* boxes, std::size_t nboxes) {
  struct Cursor {
    std::vector<Outbox::Item>* items;
    std::size_t pos;
  };
  // Gather non-empty runs; sort any the caller didn't pre-sort (direct
  // callers outside the parallel driver).
  Cursor runs[kMaxMergeRuns];
  int k = 0;
  for (std::size_t i = 0; i < nboxes; ++i) {
    if (boxes[i]->items_.empty()) continue;
    ABCL_CHECK_MSG(k < kMaxMergeRuns, "too many outboxes in one flush");
    boxes[i]->sort_canonical();
    runs[k++] = Cursor{&boxes[i]->items_, 0};
  }
  if (k == 0) return;
  if (k == 1) {
    for (Outbox::Item& it : *runs[0].items) {
      commit_key_ = it.key;
      commit(std::move(it.pkt), it.cat);
    }
    return;
  }

  // a beats b: a's head precedes b's head in canonical order. Run index -1
  // is the virtual "empty" slot used only while building the tree — it
  // wins every match so real runs settle in as losers. An exhausted run
  // loses to every live one.
  auto wins = [&runs](int a, int b) {
    if (a < 0) return true;
    if (b < 0) return false;
    const Cursor& ca = runs[a];
    const Cursor& cb = runs[b];
    const bool ea = ca.pos == ca.items->size();
    const bool eb = cb.pos == cb.items->size();
    if (ea != eb) return eb;
    if (ea) return a < b;
    const Outbox::Item& x = (*ca.items)[ca.pos];
    const Outbox::Item& y = (*cb.items)[cb.pos];
    if (x.key != y.key) return x.key < y.key;
    if (x.pkt.src != y.pkt.src) return x.pkt.src < y.pkt.src;
    return a < b;
  };

  // node[1..k-1] hold the loser of the match played there; the winner of
  // every replay pops out at the root. Leaf for run r sits at k + r.
  int node[kMaxMergeRuns];
  for (int i = 0; i < k; ++i) node[i] = -1;
  auto replay = [&](int s) {
    for (int t = (k + s) / 2; t > 0; t /= 2) {
      if (wins(node[t], s)) std::swap(node[t], s);
    }
    return s;
  };
  int winner = -1;
  for (int r = 0; r < k; ++r) winner = replay(r);

  for (;;) {
    Cursor& c = runs[winner];
    if (c.pos == c.items->size()) break;  // winner exhausted => all are
    Outbox::Item& it = (*c.items)[c.pos++];
    commit_key_ = it.key;
    commit(std::move(it.pkt), it.cat);
    winner = replay(winner);
  }
}

bool Network::poll(NodeId dst, sim::Instr now, Packet& out, bool* was_dup) {
  auto& q = queues_[static_cast<std::size_t>(dst)];
  if (q.empty() || q.top().arrive > now) return false;
  Packet* slot = q.top().slot;
  out = *slot;
  PacketPool::Magazine* m = poll_mags_[static_cast<std::size_t>(dst)];
  pool_.release(m != nullptr ? *m : home_mag_, slot);
  q.pop();
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (was_dup != nullptr) *was_dup = false;
  if (fault_plan_ != nullptr) {
    // Receiver-side dedup: only the first copy of each (src, link_seq) is
    // dispatched; retransmits and network duplicates are reported back so
    // the caller charges the handler cost and discards. This state is owned
    // by the worker polling `dst` — no cross-thread writes.
    DstFaultState& st = dst_fault_[static_cast<std::size_t>(dst)];
    if (st.windows[out.src].accept(out.link_seq)) {
      st.delivered += 1;
    } else {
      st.dup_suppressed += 1;
      if (was_dup != nullptr) *was_dup = true;
    }
  }
  return true;
}

FaultStats Network::fault_stats() const {
  FaultStats total = fault_commit_;
  for (const DstFaultState& st : dst_fault_) {
    total.delivered += st.delivered;
    total.dup_suppressed += st.dup_suppressed;
  }
  return total;
}

sim::Instr Network::next_arrival(NodeId dst) const {
  const auto& q = queues_[static_cast<std::size_t>(dst)];
  return q.empty() ? sim::kInstrInf : q.top().arrive;
}

}  // namespace abcl::net
