// The simulated interconnect.
//
// Pricing: arrive = send_time + wire_latency + hops * per_hop +
// wire_words * per_word, clamped so arrivals on each (src,dst) channel are
// nondecreasing — the paper's "preservation of transmission order" between
// a fixed sender/receiver pair. Per destination, packets are delivered in
// (arrive_time, seq) order, so the whole simulation is deterministic.
//
// The sender's software setup cost and the receiver's handler cost are NOT
// part of wire latency; the core runtime charges those to the node clocks
// (send_setup before send(), recv_handler at poll time), mirroring the
// paper's breakdown: ~20 sender instructions + ~1.5 us wire each way +
// ~50 receiver instructions.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/active_message.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/cost_model.hpp"
#include "util/stats.hpp"

namespace abcl::net {

class Network {
 public:
  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t payload_words = 0;
    std::uint64_t wire_words = 0;
    std::uint64_t per_category[4] = {};
    util::RunningStat wire_latency_instr;
  };

  // on_deliverable(dst) fires whenever a packet is enqueued toward dst; the
  // machine driver uses it to re-key the node in its ready heap.
  Network(Topology topology, const sim::CostModel* cm,
          std::function<void(NodeId)> on_deliverable = {});

  void set_on_deliverable(std::function<void(NodeId)> fn) {
    on_deliverable_ = std::move(fn);
  }

  const Topology& topology() const { return topology_; }

  // Sends `p` (src/dst/handler/payload/send_time filled by the caller,
  // category recorded for stats). Computes arrive_time and seq.
  void send(Packet&& p, AmCategory category);

  // Pops the next packet for `dst` with arrive_time <= now, or nullptr-like
  // false if none. Out-of-order across channels never happens because the
  // per-destination heap orders by arrival.
  bool poll(NodeId dst, sim::Instr now, Packet& out);

  // Earliest pending arrival for `dst`, or kInstrInf.
  sim::Instr next_arrival(NodeId dst) const;

  bool idle() const { return in_flight_ == 0; }
  std::uint64_t in_flight() const { return in_flight_; }
  const Stats& stats() const { return stats_; }

 private:
  struct PacketOrder {
    bool operator()(const Packet& a, const Packet& b) const {
      return a.arrive_time != b.arrive_time ? a.arrive_time > b.arrive_time
                                            : a.seq > b.seq;
    }
  };
  using DstQueue = std::priority_queue<Packet, std::vector<Packet>, PacketOrder>;

  sim::Instr& channel_floor(NodeId src, NodeId dst);

  Topology topology_;
  const sim::CostModel* cm_;
  std::function<void(NodeId)> on_deliverable_;
  std::vector<DstQueue> queues_;
  // Last arrival per (src,dst) channel; flat matrix for small machines,
  // hash map above the threshold to avoid O(N^2) memory.
  std::vector<sim::Instr> channel_matrix_;
  std::unordered_map<std::uint64_t, sim::Instr> channel_map_;
  bool use_matrix_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t in_flight_ = 0;
  Stats stats_;
};

}  // namespace abcl::net
