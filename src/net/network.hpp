// The simulated interconnect.
//
// Pricing: arrive = send_time + wire_latency + hops * per_hop +
// wire_words * per_word, clamped so arrivals on each (src,dst) channel are
// nondecreasing — the paper's "preservation of transmission order" between
// a fixed sender/receiver pair. Per destination, packets are delivered in
// (arrive_time, src, src_seq) order — all simulated quantities — so delivery
// is deterministic no matter which host driver (serial or parallel) issued
// the sends, and same-instant arrivals from different sources are ordered by
// source id rather than by host-side send call order.
//
// The sender's software setup cost and the receiver's handler cost are NOT
// part of wire latency; the core runtime charges those to the node clocks
// (send_setup before send(), recv_handler at poll time), mirroring the
// paper's breakdown: ~20 sender instructions + ~1.5 us wire each way +
// ~50 receiver instructions.
//
// Host-parallel support: during a ParallelMachine time window each worker
// thread redirects its nodes' sends into a private Outbox (set_outbox);
// flush_outboxes commits them at the window barrier in the serial driver's
// canonical order (quantum key, src, program order), so seqs, channel
// floors, and Stats are bit-identical to a serial run. Destination queues
// are only popped by the worker that owns the destination node, so the only
// send/poll-shared word is the in-flight count, which is atomic.
//
// Commit-path hot loop: each worker pre-sorts its own outbox into canonical
// (quantum key, src) order in parallel before the barrier
// (Outbox::sort_canonical), so the coordinator-side flush only runs an
// N-way loser-tree merge over pre-sorted runs — O(M log N) with N = worker
// count instead of the former O(M log M) global stable_sort
// (FlushKind::kSort, kept as a byte-compared ablation). Deliverability
// wakeups are batched: instead of one on_deliverable(dst) per committed
// packet, flush_outboxes runs a single deduplicated rekey pass per
// destination after all commits — equivalent, because a destination's
// effective key only falls as packets accumulate, so the post-flush key
// equals the min over per-packet observations.
//
// Buffer management: in-flight packets live in PacketPool slots; the
// destination heaps order 24-byte references by (arrive_time, src, seq),
// so heap sifts stop copying whole payloads. Commits acquire slots through
// the coordinator-owned home magazine; polls release them through the
// magazine installed for the destination (set_poll_magazine — the parallel
// driver installs one per worker; serial runs fall back to the home
// magazine). Slot addresses are host-dependent, but nothing observable
// reads them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/active_message.hpp"
#include "net/fault.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/topology.hpp"
#include "sim/cost_model.hpp"
#include "util/bucket_queue.hpp"
#include "util/stats.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::net {

// How flush_outboxes reconstructs canonical commit order: kMerge (default)
// loser-tree-merges the workers' pre-sorted runs; kSort is the historical
// coordinator-side global stable_sort, kept as an ablation baseline
// (ABCLSIM_FLUSH=sort). Results are byte-identical either way.
enum class FlushKind { kMerge, kSort };

class Network {
 public:
  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t payload_words = 0;
    std::uint64_t wire_words = 0;
    std::uint64_t per_category[4] = {};
    util::RunningStat wire_latency_instr;

    // Accumulates `o` into this block (counters add, the latency stat
    // merges); lets per-shard accumulations be combined into exact totals.
    void merge(const Stats& o);
  };

  // A per-worker send buffer for the host-parallel driver. Appends are made
  // by exactly one worker thread; commit order is reconstructed from the
  // quantum key stamped on each item.
  class Outbox {
   public:
    // Key of the quantum currently executing; stamped on subsequent sends.
    void set_current_key(sim::Instr k) { current_key_ = k; }
    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    // Stable-sorts the buffered items into canonical (quantum key, src)
    // order, preserving each source's program order. Workers call this in
    // parallel at the end of their window so the barrier-side flush only
    // has to merge; flush_outboxes sorts any box that skipped it.
    void sort_canonical();

   private:
    friend class Network;
    struct Item {
      Packet pkt;
      AmCategory cat;
      sim::Instr key;  // quantum key of the send (canonical-order sort key)
    };
    std::vector<Item> items_;
    sim::Instr current_key_ = 0;
    bool sorted_ = true;  // empty is trivially sorted
  };

  // on_deliverable(dst) fires whenever a packet is enqueued toward dst; the
  // machine driver uses it to re-key the node in its ready heap. `pooling`
  // selects recycled packet slots (default) vs per-send heap allocation
  // (the bench_alloc ablation baseline); results are identical either way.
  // `faults` installs a deterministic FaultPlan (see net/fault.hpp); the
  // default disabled config leaves every commit/poll path byte-identical to
  // a fault-free network.
  Network(Topology topology, const sim::CostModel* cm,
          std::function<void(NodeId)> on_deliverable = {}, bool pooling = true,
          util::QueueKind queue = util::QueueKind::kBucket,
          FlushKind flush = FlushKind::kMerge, FaultConfig faults = {});
  ~Network();

  FlushKind flush_kind() const { return flush_; }
  util::QueueKind queue_kind() const { return queue_kind_; }

  void set_on_deliverable(std::function<void(NodeId)> fn) {
    on_deliverable_ = std::move(fn);
  }

  const Topology& topology() const { return topology_; }

  // Sends `p` (src/dst/handler/payload/send_time filled by the caller,
  // category recorded for stats). Computes arrive_time and seq — or, when an
  // outbox is installed for p.src, buffers the packet for flush_outboxes.
  void send(Packet&& p, AmCategory category);

  // Redirects sends with src == `src` into `ob` (nullptr restores the
  // direct path). Only the parallel driver installs these, around a run.
  void set_outbox(NodeId src, Outbox* ob);

  // Commits every buffered send in canonical order — ascending (quantum
  // key, src), preserving each source's program order — which is exactly
  // the order the serial driver would have issued them. Under kMerge,
  // boxes already in canonical order (sort_canonical) are k-way merged;
  // unsorted boxes are sorted here first. Fires on_deliverable at most
  // once per destination, after all commits.
  void flush_outboxes(Outbox* const* boxes, std::size_t nboxes);

  // Windowed-commit mode for per-node-horizon windows. Under distance-aware
  // horizons, consecutive flushes are no longer globally ordered by quantum
  // key — node A's window may commit sends at keys far beyond the keys node
  // B commits at the *next* barrier — but the wire-latency Welford stat is
  // order-sensitive in floating point and must observe samples in the
  // serial driver's global (key, src, program) order to stay byte-identical.
  // With this mode on, commit() parks each sample in a reorder buffer
  // instead of adding it; drain_deferred_wire_stats(frontier) then adds, in
  // canonical order, every sample with key < frontier. The parallel driver
  // calls it each barrier with the next window's floor key: no later window
  // can produce a sample below that, so the drained prefix is complete and
  // the add order equals the serial order. Every other Stats field is an
  // order-free sum and stays on the immediate path.
  void set_windowed_stats(bool on);
  void drain_deferred_wire_stats(sim::Instr frontier);
  std::size_t deferred_wire_samples() const { return deferred_lat_.size(); }

  // Pops the next packet for `dst` with arrive_time <= now, or nullptr-like
  // false if none. Out-of-order across channels never happens because the
  // per-destination heap orders by arrival. With a fault plan installed,
  // `*was_dup` (when non-null) reports whether the popped copy is a
  // duplicate the receiver must discard — the caller still pays its handler
  // cost but must not dispatch it. Always false when faults are off.
  bool poll(NodeId dst, sim::Instr now, Packet& out, bool* was_dup = nullptr);

  // Earliest pending arrival for `dst`, or kInstrInf.
  sim::Instr next_arrival(NodeId dst) const;

  // Packets currently queued toward `dst` (delivered or not yet arrived);
  // observability hook for mid-run snapshots. Zero at quiescence.
  std::size_t pending(NodeId dst) const {
    return queues_[static_cast<std::size_t>(dst)].size();
  }

  // A strictly positive lower bound on any packet's priced latency: the
  // parallel driver's lookahead. (Every packet carries >= 4 header words
  // and hops >= 0; send() clamps zero wire latency up to 1.) Cached at
  // construction — the window loop reads it every barrier — under the
  // standing contract that the cost model and topology are immutable for
  // the network's lifetime (nothing exposes a mutation path; a changed
  // model requires a new Network).
  sim::Instr min_packet_latency() const { return min_latency_; }

  // The same floor *without* the clamp-to-1: the distance-aware horizon
  // adds hops * per_hop on top and must not double-count the clamp the
  // commit path applies to the whole priced latency. May be 0; the
  // construction invariant wire_latency + per_hop > 0 keeps the per-pair
  // bound positive for any src != dst.
  sim::Instr min_packet_latency_raw() const { return min_latency_raw_; }

  // The pricing model (per_hop feeds the distance-aware lookahead).
  const sim::CostModel& cost_model() const { return *cm_; }

  bool idle() const { return in_flight_.load(std::memory_order_relaxed) == 0; }
  std::uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  const Stats& stats() const { return stats_; }

  // Routes slot releases for polls on `dst` through `m` (nullptr restores
  // the home magazine). Only the parallel driver installs these, around a
  // run; the caller guarantees `m` is owned by the thread polling `dst`.
  void set_poll_magazine(NodeId dst, PacketPool::Magazine* m);

  PacketPool& packet_pool() { return pool_; }
  // Coordinator-side magazine (commit acquires, serial-driver releases).
  const PacketPool::Magazine& home_magazine() const { return home_mag_; }

  // ----- fault injection ---------------------------------------------------
  bool faults_enabled() const { return fault_plan_ != nullptr; }
  // The installed plan; only valid when faults_enabled().
  const FaultPlan& fault_plan() const { return *fault_plan_; }
  // Aggregated fault accounting: the commit-side block plus every
  // destination's receive-side counters. Call from a single thread with no
  // run in progress (the same contract as stats()).
  FaultStats fault_stats() const;

 private:
  // Checkpoint serializer (src/ckpt/world_io.cpp).
  friend struct abcl::ckpt::WorldIo;

  // Destination-queue entry: the simulated delivery key plus the pooled
  // slot holding the payload. Moving 24 bytes instead of sizeof(Packet)
  // is most of the pooled send/poll win at depth.
  struct QueuedPacket {
    sim::Instr arrive;
    std::int32_t src;
    std::uint64_t seq;
    Packet* slot;
  };
  struct PacketKey {
    sim::Instr operator()(const QueuedPacket& q) const { return q.arrive; }
  };
  // Delivery order: ascending (arrive, src, seq) — a strict total order
  // (seqs are unique per src), so bucket and heap modes pop identically.
  struct PacketOrder {
    bool operator()(const QueuedPacket& a, const QueuedPacket& b) const {
      if (a.arrive != b.arrive) return a.arrive < b.arrive;
      if (a.src != b.src) return a.src < b.src;
      return a.seq < b.seq;
    }
  };
  using DstQueue = util::BucketQueue<QueuedPacket, PacketKey, PacketOrder>;

  sim::Instr& channel_floor(NodeId src, NodeId dst);
  std::uint64_t& link_seq(NodeId src, NodeId dst);
  void commit(Packet&& p, AmCategory category);
  // Plays out the whole retry protocol for one committed packet (see
  // net/fault.hpp); enqueues every surviving delivery copy.
  void commit_faulty(Packet& p);
  // Common tail of commit: acquire a slot, enqueue toward p.dst, bump
  // in-flight, and record/fire the deliverability wakeup.
  void enqueue_copy(const Packet& p, sim::Instr arrive);
  void flush_merge(Outbox* const* boxes, std::size_t nboxes);
  void flush_sort(Outbox* const* boxes, std::size_t nboxes);

  Topology topology_;
  const sim::CostModel* cm_;
  std::function<void(NodeId)> on_deliverable_;
  std::vector<DstQueue> queues_;
  // Last arrival per (src,dst) channel; flat matrix for small machines,
  // hash map above the threshold to avoid O(N^2) memory.
  std::vector<sim::Instr> channel_matrix_;
  std::unordered_map<std::uint64_t, sim::Instr> channel_map_;
  bool use_matrix_;
  std::vector<std::uint64_t> src_seq_;
  std::vector<Outbox*> outboxes_;     // per-src redirect; nullptr = direct
  util::QueueKind queue_kind_;
  FlushKind flush_;
  std::vector<Outbox::Item> merge_;   // kSort flush scratch (reused)
  // Batched-wakeup scratch: destinations touched by the current flush, in
  // first-commit (canonical) order, deduplicated via the mark vector.
  bool flush_active_ = false;
  std::vector<NodeId> flush_touched_;
  std::vector<std::uint8_t> flush_touched_mark_;
  sim::Instr min_latency_;      // cached min_packet_latency (immutable model)
  sim::Instr min_latency_raw_;  // same, without the clamp-to-1
  // Windowed-stats reorder buffer (see set_windowed_stats): wire-latency
  // samples parked until the global key frontier passes them. [0,
  // deferred_mid_) is the (key, src)-sorted carry from earlier flushes;
  // each flush appends one already-canonical batch behind it.
  struct DeferredWireSample {
    sim::Instr key;
    std::int32_t src;
    double v;
  };
  bool windowed_stats_ = false;
  sim::Instr commit_key_ = 0;  // quantum key of the send being committed
  std::vector<DeferredWireSample> deferred_lat_;
  std::size_t deferred_mid_ = 0;
  std::atomic<std::uint64_t> in_flight_{0};
  Stats stats_;
  PacketPool pool_;
  PacketPool::Magazine home_mag_;
  std::vector<PacketPool::Magazine*> poll_mags_;  // per-dst; nullptr = home

  // ----- fault-injection state (all empty/null when faults are off) -------
  // Receive side of one destination: dedup windows keyed by source plus the
  // delivery counters. Touched only by the worker that polls `dst`, so the
  // parallel driver needs no extra synchronization.
  struct DstFaultState {
    std::unordered_map<std::int32_t, DedupWindow> windows;
    std::uint64_t delivered = 0;
    std::uint64_t dup_suppressed = 0;
  };
  std::unique_ptr<FaultPlan> fault_plan_;
  // Per-(src,dst) channel sequence counters; same matrix/map split as the
  // channel floors. Advanced on the commit path only.
  std::vector<std::uint64_t> link_seq_matrix_;
  std::unordered_map<std::uint64_t, std::uint64_t> link_seq_map_;
  FaultStats fault_commit_;           // commit-side counters
  std::vector<DstFaultState> dst_fault_;
};

}  // namespace abcl::net
