// Network packets.
//
// A packet is a self-dispatching active message (Section 5.1): the handler
// id names the procedure that runs at the receiver the moment the packet is
// polled; the payload is untyped words whose layout the (specialized,
// per-pattern) handler knows statically — the paper's "tags are no longer
// necessary" property.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace abcl::net {

using Word = std::uint64_t;
using HandlerId = std::uint16_t;
using sim::Instr;

inline constexpr int kMaxPacketWords = 24;

struct Packet {
  HandlerId handler = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  Instr send_time = 0;
  Instr arrive_time = 0;
  // Per-source send order: the number of packets this src had sent before
  // this one. Same-instant arrivals at a destination are delivered in
  // (arrive_time, src, seq) order — a function of simulated quantities only,
  // never of the host driver's execution interleaving.
  std::uint64_t seq = 0;
  // Per-(src,dst) channel sequence, assigned at commit only when a fault
  // plan is installed (0 otherwise). The receiver's dedup window compacts
  // over this counter — unlike `seq` (global per src) it has no per-channel
  // gaps, so the delivered prefix actually advances. Not priced on the
  // wire: the paper's 4 header words already carry routing/sequencing.
  std::uint64_t link_seq = 0;
  // Which transmission attempt of the retry protocol this copy is (0 =
  // first try). Receiver-side observability only (kFaultRetry trace).
  std::uint16_t retries = 0;
  std::uint8_t nwords = 0;
  Word payload[kMaxPacketWords] = {};

  void push(Word w) {
    ABCL_CHECK_MSG(nwords < kMaxPacketWords, "packet payload overflow");
    payload[nwords++] = w;
  }

  Word at(int i) const {
    ABCL_DCHECK(i >= 0 && i < nwords);
    return payload[i];
  }

  // Total wire size in words: payload plus a fixed header (routing info,
  // handler id, destination object pointer all ride in 4 header words, as in
  // the paper's "4 words including routing information" minimal message).
  int wire_words() const { return nwords + 4; }
};

}  // namespace abcl::net
