#include "net/active_message.hpp"

// The registry itself is header-only; this translation unit anchors the
// component in the library and keeps a home for future out-of-line growth
// (e.g. handler tracing hooks).

namespace abcl::net {

static_assert(sizeof(Packet) <= 256, "Packet should stay copy-cheap");

}  // namespace abcl::net
