#include "net/topology.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/assert.hpp"

namespace abcl::net {

Topology::Topology(TopologyKind kind, std::int32_t n) : kind_(kind), n_(n) {
  ABCL_CHECK(n >= 1);
  if (kind_ == TopologyKind::kFullyConnected || kind_ == TopologyKind::kRing) {
    x_ = n;
    y_ = 1;
    return;
  }
  if (kind_ == TopologyKind::kHypercube) {
    ABCL_CHECK_MSG((n & (n - 1)) == 0, "hypercube needs a power-of-two size");
    x_ = n;
    y_ = 1;
    return;
  }
  // Pick the factorization X * Y = n with X >= Y and X - Y minimal.
  std::int32_t best_y = 1;
  for (std::int32_t y = 1; y * y <= n; ++y) {
    if (n % y == 0) best_y = y;
  }
  y_ = best_y;
  x_ = n / best_y;
}

std::int32_t Topology::hops(NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  switch (kind_) {
    case TopologyKind::kFullyConnected:
      return 1;
    case TopologyKind::kRing: {
      std::int32_t d = std::abs(src - dst);
      return d < n_ - d ? d : n_ - d;
    }
    case TopologyKind::kHypercube:
      return std::popcount(static_cast<std::uint32_t>(src) ^
                           static_cast<std::uint32_t>(dst));
    case TopologyKind::kMesh2D: {
      std::int32_t dx = std::abs(coord_x(src) - coord_x(dst));
      std::int32_t dy = std::abs(coord_y(src) - coord_y(dst));
      return dx + dy;
    }
    case TopologyKind::kTorus2D: {
      std::int32_t dx = std::abs(coord_x(src) - coord_x(dst));
      std::int32_t dy = std::abs(coord_y(src) - coord_y(dst));
      if (x_ - dx < dx) dx = x_ - dx;
      if (y_ - dy < dy) dy = y_ - dy;
      return dx + dy;
    }
  }
  ABCL_UNREACHABLE();
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  if (kind_ == TopologyKind::kFullyConnected) {
    for (std::int32_t i = 0; i < n_ && out.size() < 8; ++i) {
      if (i != id) out.push_back(i);
    }
    return out;
  }
  if (kind_ == TopologyKind::kRing) {
    if (n_ > 1) out.push_back((id + 1) % n_);
    if (n_ > 2) out.push_back((id + n_ - 1) % n_);
    return out;
  }
  if (kind_ == TopologyKind::kHypercube) {
    for (std::int32_t bit = 1; bit < n_; bit <<= 1) out.push_back(id ^ bit);
    return out;
  }
  std::int32_t cx = coord_x(id);
  std::int32_t cy = coord_y(id);
  auto add = [&](std::int32_t nx, std::int32_t ny) {
    if (kind_ == TopologyKind::kTorus2D) {
      nx = (nx + x_) % x_;
      ny = (ny + y_) % y_;
    } else if (nx < 0 || nx >= x_ || ny < 0 || ny >= y_) {
      return;
    }
    NodeId nid = ny * x_ + nx;
    if (nid == id) return;  // wrap-around on a dimension of size 1
    for (NodeId seen : out) {
      if (seen == nid) return;
    }
    out.push_back(nid);
  };
  add(cx - 1, cy);
  add(cx + 1, cy);
  add(cx, cy - 1);
  add(cx, cy + 1);
  return out;
}

std::int32_t Topology::diameter() const {
  switch (kind_) {
    case TopologyKind::kFullyConnected:
      return n_ > 1 ? 1 : 0;
    case TopologyKind::kMesh2D:
      return (x_ - 1) + (y_ - 1);
    case TopologyKind::kTorus2D:
      return x_ / 2 + y_ / 2;
    case TopologyKind::kRing:
      return n_ / 2;
    case TopologyKind::kHypercube: {
      std::int32_t d = 0;
      for (std::int32_t v = n_ - 1; v != 0; v >>= 1) ++d;
      return d;
    }
  }
  ABCL_UNREACHABLE();
}

}  // namespace abcl::net
