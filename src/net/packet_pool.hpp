// Recycled packet buffers with per-thread magazine caches.
//
// Every in-flight packet occupies one pooled slot; destination queues hold
// 24-byte references ordered by (arrive_time, src, seq) instead of sifting
// whole Packet payloads through a binary heap. Slots come from slabs owned
// by the pool and recycle through a central depot (mutex-guarded free
// stack) fronted by Magazines — small per-thread caches in the style of
// Bonwick's magazine layer — so the hot path is a bare pointer pop/push
// and the depot lock is only taken every kMagazineCap operations.
//
// Threading model (matches the ParallelMachine window discipline):
//   - acquire() runs only where commits run: on the coordinator thread
//     (serial driver, boot code, window-barrier outbox flushes), always
//     through the owner's "home" magazine.
//   - release() runs on whichever worker polls the destination node, each
//     through its own magazine; a full magazine flushes to the depot under
//     the lock.
// Magazines are single-owner by construction; the depot mutex orders slot
// handoff between threads, and the driver's window barrier orders writes
// to a slot's payload (commit) before any read (poll).
//
// Determinism: slot addresses depend on host interleaving, but nothing
// observable does — queues order by simulated quantities only, and none of
// the pool's occupancy figures are exported into the metrics snapshot.
//
// Ablation ("pooling off"): pooled=false makes acquire/release plain heap
// new/delete — the per-send allocation baseline bench_alloc measures
// against.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/packet.hpp"

namespace abcl::net {

class PacketPool {
 public:
  // Slots per slab allocation and per-magazine cache depth.
  static constexpr int kSlabPackets = 64;
  static constexpr int kMagazineCap = 32;

  // A single-owner cache of free slots. Counters are owner-thread-local,
  // so they are only meaningful (and only deterministic) where the owner's
  // operation sequence is — e.g. the home magazine under the serial driver.
  class Magazine {
   public:
    int size() const { return n_; }
    std::uint64_t cache_hits() const { return hits_; }
    std::uint64_t depot_trips() const { return depot_trips_; }

   private:
    friend class PacketPool;
    Packet* slots_[kMagazineCap];
    int n_ = 0;
    std::uint64_t hits_ = 0;        // acquire/release served by the cache
    std::uint64_t depot_trips_ = 0; // locked refill/flush round trips
  };

  explicit PacketPool(bool pooled = true) : pooled_(pooled) {}
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  bool pooled() const { return pooled_; }

  // Returns a slot whose payload the caller now owns. The slot's previous
  // contents are unspecified.
  Packet* acquire(Magazine& m);

  // Returns `p` to `m`'s cache, spilling half a full magazine to the depot.
  void release(Magazine& m, Packet* p);

  // Drains `m` into the depot. Call when the owning thread retires its
  // magazine (end of a parallel run); the magazine stays usable.
  void flush(Magazine& m);

  // Depot-side figures (host-dependent; never exported into metrics).
  std::uint64_t slabs_allocated() const;

 private:
  void depot_get(Magazine& m);   // locked: refill up to half capacity
  void depot_put(Magazine& m, int keep);  // locked: spill down to `keep`

  bool pooled_;
  mutable std::mutex mu_;
  std::vector<Packet*> depot_;                    // free slots (LIFO)
  std::vector<std::unique_ptr<Packet[]>> slabs_;  // slot storage
  int fresh_left_ = 0;       // unissued slots in slabs_.back()
  Packet* fresh_ = nullptr;  // cursor into slabs_.back()
};

}  // namespace abcl::net
