// Active-message handler registry (Section 5.1).
//
// Handlers are registered once per program (the "compiler output"): one
// specialized handler per message pattern (Category 1), one per class for
// creation requests (Category 2), one per chunk size for allocation replies
// (Category 3), and assorted services (Category 4). A handler executes
// immediately when the receiving node polls the packet; the node context is
// passed opaquely so this layer stays below the core runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/assert.hpp"

namespace abcl::net {

enum class AmCategory : std::uint8_t {
  kObjectMessage = 0,   // normal message transmission between objects
  kCreateRequest = 1,   // remote object creation
  kAllocReply = 2,      // reply to remote memory allocation (replenish)
  kService = 3,         // load balancing, termination, GC, ...
};

inline const char* to_string(AmCategory c) {
  switch (c) {
    case AmCategory::kObjectMessage: return "object-message";
    case AmCategory::kCreateRequest: return "create-request";
    case AmCategory::kAllocReply: return "alloc-reply";
    case AmCategory::kService: return "service";
  }
  return "?";
}

// node_ctx is the receiving core::NodeRuntime, passed as void* to keep the
// dependency arrow pointing upward.
using AmHandlerFn = void (*)(void* node_ctx, const Packet& pkt);

class AmRegistry {
 public:
  struct Entry {
    std::string name;
    AmHandlerFn fn = nullptr;
    AmCategory category = AmCategory::kService;
  };

  HandlerId register_handler(std::string name, AmHandlerFn fn, AmCategory cat) {
    ABCL_CHECK(fn != nullptr);
    ABCL_CHECK_MSG(entries_.size() < 0xFFFF, "too many active-message handlers");
    entries_.push_back(Entry{std::move(name), fn, cat});
    return static_cast<HandlerId>(entries_.size() - 1);
  }

  const Entry& entry(HandlerId id) const {
    ABCL_DCHECK(id < entries_.size());
    return entries_[id];
  }

  void dispatch(HandlerId id, void* node_ctx, const Packet& pkt) const {
    const Entry& e = entry(id);
    e.fn(node_ctx, pkt);
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace abcl::net
