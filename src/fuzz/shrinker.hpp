// Greedy spec reduction (delta debugging over the Spec structure).
//
// Given a Spec on which some predicate holds (canonically "the oracle
// fails"), the shrinker repeatedly tries structure-removing edits — drop a
// boot chain, drop a whole object (remapping references), drop a dynamic
// template, drop a single action, halve fuel / compute iterations / spray
// width / node count, reset the stress knobs — and keeps any edit after
// which the spec still validates and the predicate still holds. It loops to
// a fixpoint, so the result is 1-minimal with respect to the edit set: no
// single remaining edit preserves the failure.
//
// The predicate sees only the candidate Spec, so the same machinery shrinks
// oracle failures, crash repros (run under a death-test wrapper), or
// synthetic properties in tests.
#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/spec.hpp"

namespace abcl::fuzz {

using FailPred = std::function<bool(const Spec&)>;

struct ShrinkStats {
  int rounds = 0;            // fixpoint iterations
  std::size_t attempts = 0;  // candidate evaluations (predicate calls)
  std::size_t accepted = 0;  // edits kept
};

// `failing` must satisfy `still_fails`; returns a (possibly identical)
// spec that still satisfies it. `max_attempts` bounds total predicate
// evaluations so a pathological predicate cannot loop forever.
Spec shrink(const Spec& failing, const FailPred& still_fails,
            ShrinkStats* stats = nullptr, std::size_t max_attempts = 5000);

}  // namespace abcl::fuzz
