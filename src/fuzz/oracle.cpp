#include "fuzz/oracle.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace abcl::fuzz {

namespace {

// Serial-machine sentinel (see WorldConfig::host_threads).
constexpr int kSerial = -1;

std::string where(int threads) {
  return threads == kSerial ? std::string("serial")
                            : "threads=" + std::to_string(threads);
}

bool set_failure(OracleResult& r, std::string msg) {
  if (r.ok) {
    r.ok = false;
    r.failure = std::move(msg);
  }
  return false;
}

#define FUZZ_EXPECT(res, cond, msg) \
  do {                              \
    if (!(cond)) {                  \
      set_failure((res), (msg));    \
      return false;                 \
    }                               \
  } while (0)

bool check_invariants(const Spec& spec, const RunResult& rr,
                      OracleResult& res) {
  const auto nboot = static_cast<std::uint64_t>(spec.boot.size());
  FUZZ_EXPECT(res, rr.latch_done, "latch not done: some chain never finished");
  FUZZ_EXPECT(res,
              rr.latch_received == static_cast<std::int64_t>(nboot) &&
                  rr.latch_total == static_cast<std::int64_t>(nboot),
              "latch count mismatch: expected " + std::to_string(nboot) +
                  ", received " + std::to_string(rr.latch_received));
  const Counters& t = rr.total;
  FUZZ_EXPECT(res, t.dones == nboot, "chain terminations != boot chains");
  FUZZ_EXPECT(res, t.steps_run == t.steps_sent + nboot,
              "step conservation violated: run " + std::to_string(t.steps_run) +
                  " != sent " + std::to_string(t.steps_sent) + " + boot " +
                  std::to_string(nboot));
  FUZZ_EXPECT(res, t.asks_made == t.asks_answered,
              "ask conservation violated: made " + std::to_string(t.asks_made) +
                  " != answered " + std::to_string(t.asks_answered));
  FUZZ_EXPECT(res, t.tokens_requested == t.tokens_emitted,
              "token requests != emissions");
  FUZZ_EXPECT(res, t.tokens_emitted == t.tokens_got + t.tokens_stray,
              "token conservation violated: emitted " +
                  std::to_string(t.tokens_emitted) + " != got " +
                  std::to_string(t.tokens_got) + " + stray " +
                  std::to_string(t.tokens_stray));
  FUZZ_EXPECT(res, t.creates_begun == t.creates_done,
              "remote creations begun != finished");
  // Chunk-stock shells (format_chunk) count toward total_created_objects:
  // seeding formats depth chunks per ordered node pair, and each
  // stock-routed create triggers at most one replenish. Every completed
  // create consumes exactly one counted object, so the count is exact when
  // no stock chunk can exist and tightly bounded otherwise.
  const std::uint64_t floor_created =
      spec.objects.size() + 1 + t.creates_done;
  const auto n = static_cast<std::uint64_t>(spec.nodes);
  const std::uint64_t seeded =
      n * (n - 1) * static_cast<std::uint64_t>(spec.seed_stock_depth);
  const std::uint64_t replenished = spec.disable_replenish ? 0 : t.creates_done;
  if (spec.seed_stock_depth == 0 && spec.disable_replenish) {
    FUZZ_EXPECT(res, rr.created == floor_created,
                "created-object count != statics + latch + dynamics "
                "(no stock chunks possible)");
  } else {
    FUZZ_EXPECT(res,
                rr.created >= floor_created &&
                    rr.created <= floor_created + seeded + replenished,
                "created-object count " + std::to_string(rr.created) +
                    " outside [" + std::to_string(floor_created) + ", " +
                    std::to_string(floor_created + seeded + replenished) +
                    "]");
  }
  FUZZ_EXPECT(res, rr.waiting_objects == 0,
              "object left in waiting mode at quiescence");
  FUZZ_EXPECT(res, rr.queued_msgs == 0,
              "message left queued at quiescence");
  if (spec.faults.has_value()) {
    // Exactly-once delivery under faults. `packets` counts logical sends
    // (the commit-side view before the retry protocol multiplies them into
    // physical copies); every one must be dispatched to its handler exactly
    // once, and every surviving extra copy must be suppressed — the
    // conservation chain attempts -> copies -> delivered closes exactly.
    FUZZ_EXPECT(res, rr.fault_delivered == rr.packets,
                "faults: delivered " + std::to_string(rr.fault_delivered) +
                    " != logical packets " + std::to_string(rr.packets) +
                    " (lost or multiply-dispatched message)");
    FUZZ_EXPECT(res,
                rr.fault_delivered + rr.fault_dup_suppressed == rr.fault_copies,
                "faults: delivered + suppressed != copies enqueued");
    FUZZ_EXPECT(res,
                rr.fault_copies ==
                    rr.fault_attempts - rr.fault_drops + rr.fault_duplicates,
                "faults: copy conservation violated (attempts " +
                    std::to_string(rr.fault_attempts) + " - losses " +
                    std::to_string(rr.fault_drops) + " + dups " +
                    std::to_string(rr.fault_duplicates) + " != copies " +
                    std::to_string(rr.fault_copies) + ")");
    FUZZ_EXPECT(res, rr.fault_attempts >= rr.packets,
                "faults: fewer physical attempts than logical packets");
  } else {
    FUZZ_EXPECT(res, rr.fault_attempts == 0 && rr.fault_copies == 0,
                "faults-off run reported fault activity");
  }
  if (spec.migration.has_value()) {
    // Object conservation: every migration that left a node was installed
    // at exactly one new home. Combined with the step/ask/token identities
    // above — which count dispatches wherever the message actually lands —
    // and the empty-queue quiescence probes (which follow forwarding
    // chains), this closes the exactly-once-at-exactly-one-home argument
    // even when shedding races the fault plan.
    FUZZ_EXPECT(res, rr.migrations_out == rr.migrations_in,
                "migration conservation violated: out " +
                    std::to_string(rr.migrations_out) + " != in " +
                    std::to_string(rr.migrations_in));
  } else {
    FUZZ_EXPECT(res,
                rr.migrations_out == 0 && rr.migrations_in == 0 &&
                    rr.migration_mail == 0 && rr.migration_forwards == 0 &&
                    rr.migration_updates == 0 && rr.migration_holds == 0,
                "migration-off run reported migration activity");
  }
  return true;
}

bool check_identical(const RunResult& a, const RunResult& b,
                     const std::string& w, OracleResult& res) {
  FUZZ_EXPECT(res, b.sim_time == a.sim_time, w + ": sim_time differs");
  FUZZ_EXPECT(res, b.quanta == a.quanta, w + ": quanta differ");
  FUZZ_EXPECT(res, b.trace_events == a.trace_events,
              w + ": trace event count differs");
  FUZZ_EXPECT(res, b.trace_hash == a.trace_hash,
              w + ": trace fingerprint differs");
  FUZZ_EXPECT(res, b.packets == a.packets, w + ": packet count differs");
  FUZZ_EXPECT(res, b.wire_words == a.wire_words, w + ": wire words differ");
  for (int c = 0; c < 4; ++c) {
    FUZZ_EXPECT(res, b.per_category[c] == a.per_category[c],
                w + ": AM category " + std::to_string(c) + " count differs");
  }
  FUZZ_EXPECT(res, b.created == a.created, w + ": created objects differ");
  FUZZ_EXPECT(res, b.per_node == a.per_node,
              w + ": per-node flow counters differ");
  FUZZ_EXPECT(res,
              b.latch_done == a.latch_done &&
                  b.latch_received == a.latch_received &&
                  b.latch_total == a.latch_total,
              w + ": latch state differs");
  FUZZ_EXPECT(res,
              b.fault_attempts == a.fault_attempts &&
                  b.fault_drops == a.fault_drops &&
                  b.fault_duplicates == a.fault_duplicates &&
                  b.fault_copies == a.fault_copies &&
                  b.fault_delivered == a.fault_delivered &&
                  b.fault_dup_suppressed == a.fault_dup_suppressed &&
                  b.fault_forced == a.fault_forced,
              w + ": fault-schedule counters differ");
  FUZZ_EXPECT(res,
              b.migrations_out == a.migrations_out &&
                  b.migrations_in == a.migrations_in &&
                  b.migration_mail == a.migration_mail &&
                  b.migration_forwards == a.migration_forwards &&
                  b.migration_updates == a.migration_updates &&
                  b.migration_holds == a.migration_holds,
              w + ": migration-schedule counters differ");
  FUZZ_EXPECT(res, b.metrics_json == a.metrics_json,
              w + ": metrics_json not byte-identical");
  return true;
}

// The flow-determined projection of a Counters record: every field whose
// value depends only on the message multiset, not on arrival interleaving.
// ask_sum/tok_sum (state-dependent reply values) and the got/stray token
// split (races) are deliberately excluded.
struct FlowCounters {
  std::uint64_t steps_run, steps_sent, asks_made, asks_answered;
  std::uint64_t tokens_requested, tokens_emitted, tokens_consumed;
  std::uint64_t creates_begun, creates_done, dones;

  explicit FlowCounters(const Counters& c)
      : steps_run(c.steps_run),
        steps_sent(c.steps_sent),
        asks_made(c.asks_made),
        asks_answered(c.asks_answered),
        tokens_requested(c.tokens_requested),
        tokens_emitted(c.tokens_emitted),
        tokens_consumed(c.tokens_got + c.tokens_stray),
        creates_begun(c.creates_begun),
        creates_done(c.creates_done),
        dones(c.dones) {}

  bool operator==(const FlowCounters&) const = default;
};

bool check_metamorphic(const Spec& spec, const RunResult& base,
                       const RunResult& scaled, OracleResult& res) {
  FUZZ_EXPECT(res, scaled.per_node.size() == base.per_node.size(),
              "metamorphic: node count changed");
  if (spec.migration.has_value() && spec.migration->enabled) {
    // Work shedding keys off run-queue depth versus gossiped neighbor load,
    // both of which shift when wire latency scales — objects legitimately
    // re-home, so per-node attribution is NOT latency-invariant. The world
    // totals still are: migration moves work, it never creates or loses it.
    FUZZ_EXPECT(res, FlowCounters(scaled.total) == FlowCounters(base.total),
                "metamorphic: total flow counters changed under latency "
                "scale-up (with migration enabled)");
  } else {
    for (std::size_t i = 0; i < base.per_node.size(); ++i) {
      FUZZ_EXPECT(res,
                  FlowCounters(scaled.per_node[i]) ==
                      FlowCounters(base.per_node[i]),
                  "metamorphic: flow counters changed under latency scale-up "
                  "(node " +
                      std::to_string(i) + ")");
    }
  }
  FUZZ_EXPECT(res,
              scaled.latch_done && scaled.latch_received == base.latch_received,
              "metamorphic: latch state changed under latency scale-up");
  // Completion time is deliberately NOT asserted monotone: sweeping seeds
  // 1..256 found workloads (e.g. 239, 255) that finish EARLIER under 4x
  // wire latency — later arrivals can turn queued dispatches into direct
  // calls (stack scheduling), shedding enough quantum/enqueue overhead to
  // beat the added wire time. Only the flow counters and the terminal
  // latch state are latency-invariant.
  return true;
}

#undef FUZZ_EXPECT

}  // namespace

namespace {

// Assembles the observable record of a finished run. `rep` must carry the
// run's cumulative quanta (for a restored world: resumed_quanta() plus the
// post-restore report), so a resumed run's record is comparable
// byte-for-byte with an uninterrupted one.
RunResult collect(FuzzWorld& fw, const HashTracer& tracer,
                  const RunReport& rep) {
  RunResult rr;
  rr.metrics_json = obs::metrics_json(fw.world(), &rep);
  rr.trace_hash = tracer.hash();
  rr.trace_events = tracer.events();
  rr.sim_time = rep.sim_time;
  rr.quanta = rep.quanta;
  rr.per_node = fw.per_node();
  rr.total = fw.total();
  const net::Network::Stats& ns = fw.world().network().stats();
  rr.packets = ns.packets;
  rr.wire_words = ns.wire_words;
  for (int c = 0; c < 4; ++c) rr.per_category[c] = ns.per_category[c];
  rr.created = fw.world().total_created_objects();
  const CompletionLatch& l = fw.latch();
  rr.latch_received = l.received;
  rr.latch_total = l.total;
  rr.latch_done = l.done();
  rr.waiting_objects = fw.waiting_static_objects();
  rr.queued_msgs = fw.queued_static_msgs();
  const core::NodeStats ts = fw.world().total_stats();
  rr.migrations_out = ts.migrations_out;
  rr.migrations_in = ts.migrations_in;
  rr.migration_mail = ts.migration_mail;
  rr.migration_forwards = ts.migration_forwards;
  rr.migration_updates = ts.migration_updates;
  rr.migration_holds = ts.migration_holds;
  if (fw.world().network().faults_enabled()) {
    const net::FaultStats fs = fw.world().network().fault_stats();
    rr.fault_attempts = fs.attempts;
    rr.fault_drops = fs.drops + fs.blackout_drops;
    rr.fault_duplicates = fs.duplicates;
    rr.fault_copies = fs.copies_enqueued;
    rr.fault_delivered = fs.delivered;
    rr.fault_dup_suppressed = fs.dup_suppressed;
    rr.fault_forced = fs.forced_deliveries;
  }
  return rr;
}

}  // namespace

RunResult run_spec(const Spec& spec, int host_threads,
                   const sim::CostModel& cost, util::QueueKind queue,
                   net::FlushKind flush, sim::HorizonKind horizon,
                   sim::ShardKind shard) {
  HashTracer tracer;
  FuzzWorld fw(spec, host_threads, &tracer, cost, queue, flush, horizon,
               shard);
  RunReport rep = fw.world().run();
  return collect(fw, tracer, rep);
}

RunResult run_spec_with_checkpoint(const Spec& spec, int host_threads,
                                   std::uint64_t at, int restore_host_threads,
                                   const sim::CostModel& cost,
                                   util::QueueKind queue, net::FlushKind flush,
                                   sim::HorizonKind horizon,
                                   sim::ShardKind shard) {
  HashTracer tracer;
  ckpt::CheckpointConfig ck;
  ck.enabled = true;
  ck.at = at;
  FuzzWorld fw(spec, host_threads, &tracer, cost, queue, flush, horizon, shard,
               ck);
  fw.world().run();  // stops at the `at` boundary (or quiesces before it)

  ckpt::MemSink sink;
  fw.checkpoint_to(sink);
  ckpt::MemSource src(sink.take());
  fw.restore_world(src, &tracer, restore_host_threads);

  RunReport rep = fw.world().run();
  rep.quanta += fw.world().resumed_quanta();
  return collect(fw, tracer, rep);
}

RunResult run_spec_with_crash(const Spec& spec, int host_threads,
                              std::uint64_t at, std::uint64_t crash_at,
                              const sim::CostModel& cost, util::QueueKind queue,
                              net::FlushKind flush, sim::HorizonKind horizon,
                              sim::ShardKind shard) {
  HashTracer tracer;
  ckpt::CheckpointConfig ck;
  ck.enabled = true;
  ck.at = at;
  FuzzWorld fw(spec, host_threads, &tracer, cost, queue, flush, horizon, shard,
               ck);
  fw.world().run();  // to the checkpoint boundary

  ckpt::MemSink sink;
  fw.checkpoint_to(sink);
  const std::vector<Counters> saved_counters = fw.per_node();
  const HashTracer::State saved_trace = tracer.state();

  // Run on toward the crash instant; everything this segment does — world
  // state, counters, trace events — is about to be lost.
  fw.world().run(crash_at);

  // Crash + recovery: the world is gone; app-side effects roll back to
  // their checkpoint-time copies, then deterministic replay re-earns them.
  tracer.restore_state(saved_trace);
  fw.reset_counters(saved_counters);
  ckpt::MemSource src(sink.take());
  fw.restore_world(src, &tracer);

  RunReport rep = fw.world().run();
  rep.quanta += fw.world().resumed_quanta();
  return collect(fw, tracer, rep);
}

OracleResult check_spec(const Spec& spec, const OracleOptions& opts) {
  OracleResult res;
  res.serial = run_spec(spec, kSerial);
  if (!check_invariants(spec, res.serial, res)) return res;
  for (int t : opts.thread_counts) {
    RunResult rr =
        run_spec(spec, t, sim::CostModel::ap1000(), util::QueueKind::kBucket,
                 net::FlushKind::kMerge, opts.horizon, opts.shard);
    if (!check_identical(res.serial, rr, where(t), res)) return res;
  }
  if (opts.metamorphic) {
    sim::CostModel scaled = sim::CostModel::ap1000();
    scaled.wire_latency *= 4;
    scaled.per_hop *= 2;
    RunResult rr = run_spec(spec, kSerial, scaled);
    if (!check_metamorphic(spec, res.serial, rr, res)) return res;
  }
  return res;
}

OracleResult check_spec_checkpoint(const Spec& spec,
                                   const CheckpointOracleOptions& opts) {
  OracleResult res;
  res.serial = run_spec(spec, kSerial);
  if (!check_invariants(spec, res.serial, res)) return res;
  // Default boundaries land mid-workload: halfway to quiescence for the
  // checkpoint, halfway through the remainder for the crash. (`at` must be
  // >= 1; a degenerate baseline still yields a valid boundary.)
  const std::uint64_t at = opts.at != 0 ? opts.at : res.serial.sim_time / 2 + 1;
  const std::uint64_t crash_at =
      opts.crash_at != 0 ? opts.crash_at
                         : at + (res.serial.sim_time - at) / 2 + 1;
  const sim::CostModel cost = sim::CostModel::ap1000();
  const util::QueueKind q = util::QueueKind::kBucket;
  const net::FlushKind f = net::FlushKind::kMerge;
  {
    RunResult rr = run_spec_with_checkpoint(spec, kSerial, at, 0, cost, q, f,
                                            opts.horizon, opts.shard);
    if (!check_identical(res.serial, rr, "ckpt+restore serial", res)) {
      return res;
    }
  }
  for (int t : opts.thread_counts) {
    RunResult rr = run_spec_with_checkpoint(spec, t, at, 0, cost, q, f,
                                            opts.horizon, opts.shard);
    if (!check_identical(res.serial, rr, "ckpt+restore " + where(t), res)) {
      return res;
    }
  }
  {
    // Cross-driver: capture under the serial machine, resume host-parallel.
    RunResult rr = run_spec_with_checkpoint(spec, kSerial, at, 2, cost, q, f,
                                            opts.horizon, opts.shard);
    if (!check_identical(res.serial, rr,
                         "ckpt serial, restore threads=2", res)) {
      return res;
    }
  }
  {
    RunResult rr = run_spec_with_crash(spec, kSerial, at, crash_at, cost, q, f,
                                       opts.horizon, opts.shard);
    if (!check_identical(res.serial, rr, "crash-recovery", res)) return res;
  }
  return res;
}

}  // namespace abcl::fuzz
