#include "fuzz/shrinker.hpp"

#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace abcl::fuzz {

namespace {

bool is_blocking(Op op) {
  return op == Op::kAsk || op == Op::kSelectToken || op == Op::kHybrid;
}

bool targets_static(Op op) {
  return op == Op::kForward || op == Op::kSprayWide || is_blocking(op);
}

// Removes static object `gone` and remaps every reference. Blocking
// references to the removed object drop their action (retargeting could
// break the acyclic-wait order; validate() would reject most retargets
// anyway); plain sends wrap around.
Spec drop_object(const Spec& s, std::size_t gone) {
  Spec out = s;
  out.objects.erase(out.objects.begin() + static_cast<std::ptrdiff_t>(gone));
  const auto remaining = static_cast<std::int32_t>(out.objects.size());
  const auto g = static_cast<std::int32_t>(gone);
  auto fix_script = [&](std::vector<Action>& script) {
    std::vector<Action> kept;
    for (Action a : script) {
      if (targets_static(a.op)) {
        if (a.a == g) {
          if (is_blocking(a.op) || remaining == 0) continue;
          a.a = a.a % remaining;
        } else if (a.a > g) {
          a.a -= 1;
        }
      }
      kept.push_back(a);
    }
    script = std::move(kept);
  };
  for (ObjectSpec& os : out.objects) fix_script(os.script);
  for (ObjectSpec& os : out.dynamic) fix_script(os.script);
  std::vector<BootMsg> boot;
  for (BootMsg bm : out.boot) {
    if (bm.target == g) continue;
    if (bm.target > g) bm.target -= 1;
    boot.push_back(bm);
  }
  out.boot = std::move(boot);
  return out;
}

Spec drop_dynamic(const Spec& s, std::size_t gone) {
  Spec out = s;
  out.dynamic.erase(out.dynamic.begin() + static_cast<std::ptrdiff_t>(gone));
  const auto g = static_cast<std::int32_t>(gone);
  for (ObjectSpec& os : out.objects) {
    std::vector<Action> kept;
    for (Action a : os.script) {
      if (a.op == Op::kCreate) {
        if (a.a == g) continue;
        if (a.a > g) a.a -= 1;
      }
      kept.push_back(a);
    }
    os.script = std::move(kept);
  }
  return out;
}

// All single-edit candidates, largest cuts first — the order determines
// how fast the greedy loop descends.
std::vector<Spec> candidates(const Spec& s) {
  std::vector<Spec> out;
  for (std::size_t i = 0; i < s.objects.size(); ++i) {
    out.push_back(drop_object(s, i));
  }
  for (std::size_t i = 0; i < s.dynamic.size(); ++i) {
    out.push_back(drop_dynamic(s, i));
  }
  for (std::size_t i = 0; i < s.boot.size(); ++i) {
    Spec c = s;
    c.boot.erase(c.boot.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  for (int dyn = 0; dyn < 2; ++dyn) {
    const auto& pool = dyn != 0 ? s.dynamic : s.objects;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = 0; j < pool[i].script.size(); ++j) {
        Spec c = s;
        auto& script = (dyn != 0 ? c.dynamic : c.objects)[i].script;
        script.erase(script.begin() + static_cast<std::ptrdiff_t>(j));
        out.push_back(std::move(c));
      }
    }
  }
  for (std::size_t i = 0; i < s.boot.size(); ++i) {
    if (s.boot[i].fuel > 0) {
      Spec c = s;
      c.boot[i].fuel /= 2;
      out.push_back(std::move(c));
    }
  }
  for (int dyn = 0; dyn < 2; ++dyn) {
    const auto& pool = dyn != 0 ? s.dynamic : s.objects;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = 0; j < pool[i].script.size(); ++j) {
        const Action& a = pool[i].script[j];
        if ((a.op == Op::kCompute && a.a > 1) ||
            (a.op == Op::kSprayWide && a.b > 1)) {
          Spec c = s;
          Action& ca = (dyn != 0 ? c.dynamic : c.objects)[i].script[j];
          if (ca.op == Op::kCompute) {
            ca.a /= 2;
          } else {
            ca.b /= 2;
          }
          out.push_back(std::move(c));
        }
      }
    }
  }
  if (s.nodes > 1) {
    Spec c = s;
    c.nodes = (c.nodes + 1) / 2;
    for (ObjectSpec& os : c.objects) os.node %= c.nodes;
    for (ObjectSpec& os : c.objects) {
      for (Action& a : os.script) {
        if (a.op == Op::kCreate) a.b %= c.nodes;
      }
    }
    out.push_back(std::move(c));
  }
  if (s.seed_stock_depth != 0) {
    Spec c = s;
    c.seed_stock_depth = 0;
    out.push_back(std::move(c));
  }
  if (s.disable_replenish) {
    Spec c = s;
    c.disable_replenish = false;
    out.push_back(std::move(c));
  }
  if (s.max_call_depth != 48) {
    Spec c = s;
    c.max_call_depth = 48;
    out.push_back(std::move(c));
  }
  if (s.reduction_budget != 4096) {
    Spec c = s;
    c.reduction_budget = 4096;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

Spec shrink(const Spec& failing, const FailPred& still_fails,
            ShrinkStats* stats, std::size_t max_attempts) {
  ABCL_CHECK_MSG(still_fails(failing), "shrink: input does not fail");
  Spec cur = failing;
  ShrinkStats st;
  bool changed = true;
  while (changed && st.attempts < max_attempts) {
    changed = false;
    st.rounds += 1;
    for (Spec& cand : candidates(cur)) {
      if (st.attempts >= max_attempts) break;
      if (!cand.validate()) continue;
      st.attempts += 1;
      if (still_fails(cand)) {
        cur = std::move(cand);
        st.accepted += 1;
        changed = true;
        break;
      }
    }
  }
  if (stats != nullptr) *stats = st;
  return cur;
}

}  // namespace abcl::fuzz
