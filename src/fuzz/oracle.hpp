// Differential + metamorphic oracle.
//
// The repo's determinism contract says a program's observable behavior is a
// pure function of (program, config) — independent of the host driver. The
// oracle turns that into a checked property per fuzz Spec:
//
//  1. Differential: run the Spec under the serial Machine and under
//     ParallelMachine at 1/2/8 workers; the metrics_json snapshot must be
//     byte-identical and the trace fingerprint (an order-sensitive hash of
//     every trace event) must match exactly, along with sim time, quanta,
//     per-node flow counters, network totals and the created-object count.
//
//  2. Invariants (any single run): the completion latch reports every boot
//     chain done; message conservation (steps run == steps sent + boots,
//     asks made == asks answered, tokens requested == emitted ==
//     consumed + stray, creations begun == finished); created objects ==
//     statics + latch + finished creations; and at quiescence no static
//     object is left in waiting mode or with a non-empty queue (probed at
//     its current home, following forwarding stubs). With a migration
//     block, migrations out == in and buffered/held mail is fully flushed.
//
//  3. Metamorphic: scaling the network cost model (wire latency x4,
//     per-hop x2) must not change any flow-determined counter — the
//     message *multiset* is schedule-independent even though interleavings,
//     reply values and the got/stray token split are not — and must not
//     shorten the simulated completion time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/interp.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace abcl::fuzz {

// Order-sensitive fingerprint of the whole trace stream. Works identically
// under ParallelMachine because per-worker buffers are replayed into the
// attached tracer in canonical order at window barriers.
class HashTracer final : public sim::Tracer {
 public:
  HashTracer() : sim::Tracer(1) {}

  void record(sim::Instr t, sim::NodeId node, sim::TraceEv kind,
              std::uint64_t payload) override {
    std::uint64_t x = h_;
    x = mix(x ^ static_cast<std::uint64_t>(t));
    x = mix(x ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
                 << 8) ^
            static_cast<std::uint64_t>(kind));
    x = mix(x ^ payload);
    h_ = x;
    ++n_;
  }

  std::uint64_t hash() const { return h_; }
  std::uint64_t events() const { return n_; }

  // Crash-recovery support: the fingerprint state is tiny, so a harness can
  // save it alongside a world checkpoint and roll back to it, discarding
  // the events of a crashed (to-be-replayed) segment.
  struct State {
    std::uint64_t h = 0, n = 0;
  };
  State state() const { return {h_, n_}; }
  void restore_state(const State& s) {
    h_ = s.h;
    n_ = s.n;
  }

 private:
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t h_ = 0x9e3779b97f4a7c15ull;
  std::uint64_t n_ = 0;
};

// Everything observable about one run of a Spec.
struct RunResult {
  std::string metrics_json;
  std::uint64_t trace_hash = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t sim_time = 0;
  std::uint64_t quanta = 0;
  std::vector<Counters> per_node;
  Counters total;
  std::uint64_t packets = 0;
  std::uint64_t wire_words = 0;
  std::uint64_t per_category[4] = {};
  std::uint64_t created = 0;
  std::int64_t latch_received = 0;
  std::int64_t latch_total = 0;
  bool latch_done = false;
  std::uint64_t waiting_objects = 0;
  std::uint64_t queued_msgs = 0;
  // Fault-layer accounting (all zero when the Spec carries no faults block).
  // check_invariants turns these into an exactly-once-delivery proof:
  // every logical packet is dispatched once, every extra copy suppressed.
  std::uint64_t fault_attempts = 0;
  std::uint64_t fault_drops = 0;  // drop-hash + blackout losses combined
  std::uint64_t fault_duplicates = 0;
  std::uint64_t fault_copies = 0;
  std::uint64_t fault_delivered = 0;
  std::uint64_t fault_dup_suppressed = 0;
  std::uint64_t fault_forced = 0;
  // Migration-layer accounting (all zero when the Spec carries no migration
  // block). check_invariants turns migrations_out == migrations_in into a
  // conservation proof: every shipped object is installed at exactly one
  // new home, and (with the step/ask/token identities above, which count
  // dispatches at whatever home the message lands on) every message is
  // dispatched exactly once even while its target moves.
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t migration_mail = 0;
  std::uint64_t migration_forwards = 0;
  std::uint64_t migration_updates = 0;
  std::uint64_t migration_holds = 0;
};

// `queue`/`flush` select the time-queue and commit-path ablations;
// `horizon`/`shard` the parallel driver's window and shard policies. Every
// combination must yield a byte-identical RunResult (checked by
// tests/test_host_parallel.cpp and tests/test_fuzz.cpp over the fuzz
// corpus).
RunResult run_spec(const Spec& spec, int host_threads,
                   const sim::CostModel& cost = sim::CostModel::ap1000(),
                   util::QueueKind queue = util::QueueKind::kBucket,
                   net::FlushKind flush = net::FlushKind::kMerge,
                   sim::HorizonKind horizon = sim::HorizonKind::kGlobal,
                   sim::ShardKind shard = sim::ShardKind::kStatic);

// Snapshot-equivalence drill: run `spec` to the quantum boundary at `at`,
// serialize the whole world into memory, destroy it, restore it (under
// `restore_host_threads` if nonzero — 0 keeps the snapshot's driver) and
// run the restored world to quiescence, all under one trace fingerprint.
// The result must be byte-identical to run_spec with the same arguments;
// check_spec_checkpoint turns that into a checked property.
RunResult run_spec_with_checkpoint(
    const Spec& spec, int host_threads, std::uint64_t at,
    int restore_host_threads = 0,
    const sim::CostModel& cost = sim::CostModel::ap1000(),
    util::QueueKind queue = util::QueueKind::kBucket,
    net::FlushKind flush = net::FlushKind::kMerge,
    sim::HorizonKind horizon = sim::HorizonKind::kGlobal,
    sim::ShardKind shard = sim::ShardKind::kStatic);

// Crash-recovery drill: checkpoint at `at`, keep running toward the later
// simulated instant `crash_at`, then "crash" — destroy the world, roll the
// app-side counters and the trace fingerprint back to their
// checkpoint-time copies, restore from the snapshot and run to quiescence.
// Deterministic replay makes the recovered run byte-identical to an
// uninterrupted one.
RunResult run_spec_with_crash(
    const Spec& spec, int host_threads, std::uint64_t at,
    std::uint64_t crash_at,
    const sim::CostModel& cost = sim::CostModel::ap1000(),
    util::QueueKind queue = util::QueueKind::kBucket,
    net::FlushKind flush = net::FlushKind::kMerge,
    sim::HorizonKind horizon = sim::HorizonKind::kGlobal,
    sim::ShardKind shard = sim::ShardKind::kStatic);

struct OracleOptions {
  std::vector<int> thread_counts = {1, 2, 8};
  bool metamorphic = true;
  // Parallel-driver policies for the differential runs. The serial baseline
  // has no window or shard, so any combination must still match it exactly.
  sim::HorizonKind horizon = sim::HorizonKind::kGlobal;
  sim::ShardKind shard = sim::ShardKind::kStatic;
};

struct OracleResult {
  bool ok = true;
  std::string failure;  // first failed check, human-readable
  RunResult serial;
};

// Runs the full oracle on `spec`. Also usable as the shrinker's
// still-failing predicate via !check_spec(spec).ok.
OracleResult check_spec(const Spec& spec, const OracleOptions& opts = {});

struct CheckpointOracleOptions {
  std::vector<int> thread_counts = {1, 2, 8};
  // Simulated boundary to checkpoint at; 0 = halfway through the baseline
  // run (derived from its sim_time, so it always lands mid-workload).
  std::uint64_t at = 0;
  // Simulated instant of the simulated crash; 0 = halfway between the
  // checkpoint and the baseline's quiescence.
  std::uint64_t crash_at = 0;
  // Parallel-driver policies, applied to every checkpointing/restored run
  // (the snapshot carries them, so a restore keeps the policy unless its
  // caller overrides the thread count — never the policy).
  sim::HorizonKind horizon = sim::HorizonKind::kGlobal;
  sim::ShardKind shard = sim::ShardKind::kStatic;
};

// Snapshot-equivalence oracle: the uninterrupted serial run is the
// baseline; a checkpoint+restore run under the serial machine and under
// each thread count, a cross-driver run (checkpointed serial, restored
// host-parallel), and a crash-recovery run must all match it
// byte-for-byte (same checks as check_spec's differential pass).
OracleResult check_spec_checkpoint(const Spec& spec,
                                   const CheckpointOracleOptions& opts = {});

}  // namespace abcl::fuzz
