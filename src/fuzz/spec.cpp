#include "fuzz/spec.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace abcl::fuzz {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool validate_script(const Spec& s, const ObjectSpec& os, bool is_dynamic,
                     std::int32_t index, std::string* error) {
  const auto nobjects = static_cast<std::int32_t>(s.objects.size());
  const auto ndynamic = static_cast<std::int32_t>(s.dynamic.size());
  const std::string who =
      (is_dynamic ? "dynamic[" : "objects[") + std::to_string(index) + "]";
  if (!is_dynamic && (os.node < 0 || os.node >= s.nodes)) {
    return fail(error, who + ".node out of range");
  }
  if (os.script.size() > 4096) return fail(error, who + ".script too long");
  for (std::size_t j = 0; j < os.script.size(); ++j) {
    const Action& act = os.script[j];
    const std::string where = who + ".script[" + std::to_string(j) + "]";
    switch (act.op) {
      case Op::kForward:
        if (act.a < 0 || act.a >= nobjects) {
          return fail(error, where + ": forward target out of range");
        }
        break;
      case Op::kSprayWide:
        if (act.a < 0 || act.a >= nobjects) {
          return fail(error, where + ": spray base out of range");
        }
        if (act.b < 1 || act.b > 8) {
          return fail(error, where + ": spray count not in [1,8]");
        }
        break;
      case Op::kCompute:
        if (act.a < 1 || act.a > 64) {
          return fail(error, where + ": compute iterations not in [1,64]");
        }
        break;
      case Op::kAsk:
      case Op::kSelectToken:
      case Op::kHybrid:
        // Acyclic wait-for: static objects block only on strictly higher
        // indices; dynamic objects block only on static objects (which can
        // never block back on a dynamic one).
        if (is_dynamic) {
          if (act.a < 0 || act.a >= nobjects) {
            return fail(error, where + ": blocking target out of range");
          }
        } else if (act.a <= index || act.a >= nobjects) {
          return fail(error,
                      where + ": blocking target must be a higher index");
        }
        break;
      case Op::kCreate:
        if (is_dynamic) {
          return fail(error, where + ": kCreate not allowed in dynamic scripts");
        }
        if (act.a < 0 || act.a >= ndynamic) {
          return fail(error, where + ": dynamic template out of range");
        }
        if (act.b < 0 || act.b >= s.nodes) {
          return fail(error, where + ": creation node out of range");
        }
        break;
      default:
        return fail(error, where + ": unknown op");
    }
  }
  return true;
}

void action_json(obs::JsonWriter& w, const Action& a) {
  w.begin_array();
  w.value(static_cast<std::int64_t>(a.op));
  w.value(static_cast<std::int64_t>(a.a));
  w.value(static_cast<std::int64_t>(a.b));
  w.end_array();
}

void object_json(obs::JsonWriter& w, const ObjectSpec& os) {
  w.begin_object();
  w.field("node", static_cast<std::int64_t>(os.node));
  w.key("script");
  w.begin_array();
  for (const Action& a : os.script) action_json(w, a);
  w.end_array();
  w.end_object();
}

bool read_i32(const obs::JsonValue* v, std::int32_t* out) {
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kNumber ||
      !v->is_integer) {
    return false;
  }
  *out = static_cast<std::int32_t>(v->integer);
  return true;
}

bool read_u64(const obs::JsonValue* v, std::uint64_t* out) {
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kNumber ||
      !v->is_integer || v->integer < 0) {
    return false;
  }
  *out = static_cast<std::uint64_t>(v->integer);
  return true;
}

bool read_u32(const obs::JsonValue* v, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!read_u64(v, &wide) || wide > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

void faults_json(obs::JsonWriter& w, const net::FaultConfig& fc) {
  w.key("faults");
  w.begin_object();
  w.field("drop_ppm", static_cast<std::uint64_t>(fc.drop_ppm));
  w.field("dup_ppm", static_cast<std::uint64_t>(fc.dup_ppm));
  w.field("delay_ppm", static_cast<std::uint64_t>(fc.delay_ppm));
  w.field("delay_max", fc.delay_max);
  w.field("blackout_ppm", static_cast<std::uint64_t>(fc.blackout_ppm));
  w.field("blackout_window", fc.blackout_window);
  w.field("rto", fc.rto);
  w.field("rto_max", fc.rto_max);
  w.field("seed", fc.seed);
  w.end_object();
}

bool read_faults(const obs::JsonValue* v, net::FaultConfig* out) {
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kObject) return false;
  out->enabled = true;
  return read_u32(v->find("drop_ppm"), &out->drop_ppm) &&
         read_u32(v->find("dup_ppm"), &out->dup_ppm) &&
         read_u32(v->find("delay_ppm"), &out->delay_ppm) &&
         read_u64(v->find("delay_max"), &out->delay_max) &&
         read_u32(v->find("blackout_ppm"), &out->blackout_ppm) &&
         read_u64(v->find("blackout_window"), &out->blackout_window) &&
         read_u64(v->find("rto"), &out->rto) &&
         read_u64(v->find("rto_max"), &out->rto_max) &&
         read_u64(v->find("seed"), &out->seed);
}

void migration_json(obs::JsonWriter& w, const remote::MigrationConfig& mc) {
  w.key("migration");
  w.begin_object();
  w.field("interval", static_cast<std::uint64_t>(mc.interval));
  w.field("hysteresis", static_cast<std::uint64_t>(mc.hysteresis));
  w.field("max_batch", static_cast<std::uint64_t>(mc.max_batch));
  w.field("min_queue", static_cast<std::uint64_t>(mc.min_queue));
  w.field("seed", mc.seed);
  w.end_object();
}

bool read_migration(const obs::JsonValue* v, remote::MigrationConfig* out) {
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kObject) return false;
  out->enabled = true;
  return read_u32(v->find("interval"), &out->interval) &&
         read_u32(v->find("hysteresis"), &out->hysteresis) &&
         read_u32(v->find("max_batch"), &out->max_batch) &&
         read_u32(v->find("min_queue"), &out->min_queue) &&
         read_u64(v->find("seed"), &out->seed);
}

bool read_action(const obs::JsonValue& v, Action* out) {
  if (v.kind != obs::JsonValue::Kind::kArray || v.array.size() != 3) {
    return false;
  }
  std::int32_t op = 0;
  if (!read_i32(&v.array[0], &op) || !read_i32(&v.array[1], &out->a) ||
      !read_i32(&v.array[2], &out->b)) {
    return false;
  }
  if (op < 0 || op >= kNumOps) return false;
  out->op = static_cast<Op>(op);
  return true;
}

bool read_objects(const obs::JsonValue* v, std::vector<ObjectSpec>* out) {
  if (v == nullptr || v->kind != obs::JsonValue::Kind::kArray) return false;
  for (const obs::JsonValue& ov : v->array) {
    if (ov.kind != obs::JsonValue::Kind::kObject) return false;
    ObjectSpec os;
    if (!read_i32(ov.find("node"), &os.node)) return false;
    const obs::JsonValue* script = ov.find("script");
    if (script == nullptr || script->kind != obs::JsonValue::Kind::kArray) {
      return false;
    }
    for (const obs::JsonValue& av : script->array) {
      Action a;
      if (!read_action(av, &a)) return false;
      os.script.push_back(a);
    }
    out->push_back(std::move(os));
  }
  return true;
}

}  // namespace

std::size_t Spec::total_actions() const {
  std::size_t n = boot.size();
  for (const ObjectSpec& os : objects) n += os.script.size();
  for (const ObjectSpec& os : dynamic) n += os.script.size();
  return n;
}

bool Spec::validate(std::string* error) const {
  if (nodes < 1 || nodes > 1024) return fail(error, "nodes not in [1,1024]");
  if (max_call_depth < 1) return fail(error, "max_call_depth < 1");
  if (reduction_budget < 1) return fail(error, "reduction_budget < 1");
  if (seed_stock_depth < 0 || seed_stock_depth > 64) {
    return fail(error, "seed_stock_depth not in [0,64]");
  }
  if (objects.empty() || objects.size() > 4096) {
    return fail(error, "objects count not in [1,4096]");
  }
  if (faults.has_value()) {
    if (!faults->enabled) {
      return fail(error, "faults block present but disabled (omit it instead)");
    }
    std::string ferr;
    if (!net::validate_fault_config(*faults, &ferr)) {
      return fail(error, "faults: " + ferr);
    }
  }
  if (migration.has_value()) {
    if (!migration->enabled) {
      return fail(error,
                  "migration block present but disabled (omit it instead)");
    }
    std::string merr;
    if (!remote::validate_migration_config(*migration, &merr)) {
      return fail(error, "migration: " + merr);
    }
  }
  if (dynamic.size() > 4096) return fail(error, "too many dynamic templates");
  if (boot.size() > 4096) return fail(error, "too many boot messages");
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (!validate_script(*this, objects[i], false,
                         static_cast<std::int32_t>(i), error)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < dynamic.size(); ++i) {
    if (!validate_script(*this, dynamic[i], true, static_cast<std::int32_t>(i),
                         error)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < boot.size(); ++i) {
    const BootMsg& bm = boot[i];
    if (bm.target < 0 ||
        bm.target >= static_cast<std::int32_t>(objects.size())) {
      return fail(error, "boot[" + std::to_string(i) + "].target out of range");
    }
    if (bm.fuel < 0 || bm.fuel > 64) {
      return fail(error, "boot[" + std::to_string(i) + "].fuel not in [0,64]");
    }
  }
  return true;
}

std::string Spec::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kSpecSchema);
  w.field("seed", seed);
  w.field("nodes", static_cast<std::int64_t>(nodes));
  w.field("max_call_depth", static_cast<std::int64_t>(max_call_depth));
  w.field("reduction_budget", static_cast<std::uint64_t>(reduction_budget));
  w.field("seed_stock_depth", static_cast<std::int64_t>(seed_stock_depth));
  w.field("disable_replenish", disable_replenish);
  if (faults.has_value()) faults_json(w, *faults);
  if (migration.has_value()) migration_json(w, *migration);
  w.key("objects");
  w.begin_array();
  for (const ObjectSpec& os : objects) object_json(w, os);
  w.end_array();
  w.key("dynamic");
  w.begin_array();
  for (const ObjectSpec& os : dynamic) object_json(w, os);
  w.end_array();
  w.key("boot");
  w.begin_array();
  for (const BootMsg& bm : boot) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(bm.target));
    w.value(static_cast<std::int64_t>(bm.fuel));
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<Spec> Spec::from_json(std::string_view text, std::string* error) {
  std::optional<obs::JsonValue> root = obs::parse_json(text, error);
  if (!root.has_value()) return std::nullopt;
  auto bad = [&](const char* what) -> std::optional<Spec> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  const obs::JsonValue* schema = root->find("schema");
  if (schema == nullptr || schema->kind != obs::JsonValue::Kind::kString ||
      schema->string != kSpecSchema) {
    return bad("missing or unknown spec schema");
  }
  Spec s;
  const obs::JsonValue* seed = root->find("seed");
  if (seed == nullptr || seed->kind != obs::JsonValue::Kind::kNumber ||
      !seed->is_integer) {
    return bad("bad seed");
  }
  s.seed = static_cast<std::uint64_t>(seed->integer);
  std::int32_t budget = 0;
  if (!read_i32(root->find("nodes"), &s.nodes) ||
      !read_i32(root->find("max_call_depth"), &s.max_call_depth) ||
      !read_i32(root->find("reduction_budget"), &budget) ||
      !read_i32(root->find("seed_stock_depth"), &s.seed_stock_depth)) {
    return bad("bad numeric field");
  }
  if (budget < 1) return bad("bad reduction_budget");
  s.reduction_budget = static_cast<std::uint32_t>(budget);
  const obs::JsonValue* dis = root->find("disable_replenish");
  if (dis == nullptr || dis->kind != obs::JsonValue::Kind::kBool) {
    return bad("bad disable_replenish");
  }
  s.disable_replenish = dis->boolean;
  // Optional (absent in every pre-fault repro file; schema stays v1).
  if (const obs::JsonValue* fv = root->find("faults"); fv != nullptr) {
    net::FaultConfig fc;
    if (!read_faults(fv, &fc)) return bad("bad faults block");
    s.faults = fc;
  }
  // Optional (absent in every pre-migration repro file; schema stays v1).
  if (const obs::JsonValue* mv = root->find("migration"); mv != nullptr) {
    remote::MigrationConfig mc;
    if (!read_migration(mv, &mc)) return bad("bad migration block");
    s.migration = mc;
  }
  if (!read_objects(root->find("objects"), &s.objects)) {
    return bad("bad objects array");
  }
  if (!read_objects(root->find("dynamic"), &s.dynamic)) {
    return bad("bad dynamic array");
  }
  const obs::JsonValue* boot = root->find("boot");
  if (boot == nullptr || boot->kind != obs::JsonValue::Kind::kArray) {
    return bad("bad boot array");
  }
  for (const obs::JsonValue& bv : boot->array) {
    if (bv.kind != obs::JsonValue::Kind::kArray || bv.array.size() != 2) {
      return bad("bad boot entry");
    }
    BootMsg bm;
    if (!read_i32(&bv.array[0], &bm.target) ||
        !read_i32(&bv.array[1], &bm.fuel)) {
      return bad("bad boot entry");
    }
    s.boot.push_back(bm);
  }
  std::string verr;
  if (!s.validate(&verr)) {
    if (error != nullptr) *error = "invalid spec: " + verr;
    return std::nullopt;
  }
  return s;
}

}  // namespace abcl::fuzz
