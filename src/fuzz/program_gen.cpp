#include "fuzz/program_gen.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace abcl::fuzz {

namespace {

std::int32_t pick(util::Xoshiro256& rng, std::int32_t lo, std::int32_t hi) {
  return lo + static_cast<std::int32_t>(
                  rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
}

// One action for the script of static object `index` (or a dynamic
// template when index < 0). Weighted op bag: sends and creates dominate so
// traffic is dense; blocking ops appear only where a legal target exists.
Action gen_action(util::Xoshiro256& rng, const Spec& s, std::int32_t index) {
  const auto nobjects = static_cast<std::int32_t>(s.objects.size());
  const auto ndynamic = static_cast<std::int32_t>(s.dynamic.size());
  const bool is_dynamic = index < 0;
  const bool can_block = is_dynamic || index < nobjects - 1;

  std::vector<Op> bag;
  auto add = [&bag](Op op, int weight) {
    for (int i = 0; i < weight; ++i) bag.push_back(op);
  };
  add(Op::kForward, 3);
  add(Op::kSprayWide, 2);
  add(Op::kCompute, 2);
  if (can_block) {
    add(Op::kAsk, 2);
    add(Op::kSelectToken, 1);
    add(Op::kHybrid, 1);
  }
  if (!is_dynamic && ndynamic > 0) add(Op::kCreate, 3);

  Action a;
  a.op = bag[rng.below(bag.size())];
  switch (a.op) {
    case Op::kForward:
      a.a = pick(rng, 0, nobjects - 1);
      break;
    case Op::kSprayWide:
      a.a = pick(rng, 0, nobjects - 1);
      a.b = pick(rng, 1, 3);
      break;
    case Op::kCompute:
      a.a = pick(rng, 1, 12);
      break;
    case Op::kAsk:
    case Op::kSelectToken:
    case Op::kHybrid:
      a.a = is_dynamic ? pick(rng, 0, nobjects - 1)
                       : pick(rng, index + 1, nobjects - 1);
      break;
    case Op::kCreate:
      a.a = pick(rng, 0, ndynamic - 1);
      a.b = pick(rng, 0, s.nodes - 1);
      break;
  }
  return a;
}

}  // namespace

Spec generate(std::uint64_t seed, const GenConfig& cfg) {
  std::uint64_t sm = seed;
  util::Xoshiro256 rng(util::splitmix64(sm));

  Spec s;
  s.seed = seed;
  s.nodes = pick(rng, 1, cfg.max_nodes);

  // Runtime knobs, stress-biased: tiny call depths force preemption
  // buffering, tiny reduction budgets force yield spills, empty stocks
  // force split-phase creation, and the occasional replenish ablation
  // keeps stocks permanently drained.
  constexpr std::int32_t kDepths[] = {3, 8, 48};
  constexpr std::uint32_t kBudgets[] = {96, 512, 4096};
  constexpr std::int32_t kStocks[] = {0, 0, 1, 2};
  s.max_call_depth = kDepths[rng.below(3)];
  s.reduction_budget = kBudgets[rng.below(3)];
  s.seed_stock_depth = kStocks[rng.below(4)];
  s.disable_replenish = rng.below(8) == 0;

  const std::int32_t nobjects = pick(rng, 2, cfg.max_objects);
  for (std::int32_t i = 0; i < nobjects; ++i) {
    ObjectSpec os;
    os.node = pick(rng, 0, s.nodes - 1);
    s.objects.push_back(std::move(os));
  }
  const std::int32_t ndynamic = pick(rng, 0, cfg.max_dynamic);
  for (std::int32_t i = 0; i < ndynamic; ++i) {
    s.dynamic.push_back(ObjectSpec{});
  }

  for (std::int32_t i = 0; i < nobjects; ++i) {
    const std::int32_t len = pick(rng, 1, cfg.max_script);
    for (std::int32_t j = 0; j < len; ++j) {
      s.objects[static_cast<std::size_t>(i)].script.push_back(
          gen_action(rng, s, i));
    }
  }
  for (std::int32_t i = 0; i < ndynamic; ++i) {
    const std::int32_t len = pick(rng, 1, 4);
    for (std::int32_t j = 0; j < len; ++j) {
      s.dynamic[static_cast<std::size_t>(i)].script.push_back(
          gen_action(rng, s, -1));
    }
  }

  const std::int32_t nboot = pick(rng, 1, cfg.max_boot);
  for (std::int32_t i = 0; i < nboot; ++i) {
    BootMsg bm;
    bm.target = pick(rng, 0, nobjects - 1);
    bm.fuel = pick(rng, 1, cfg.max_fuel);
    s.boot.push_back(bm);
  }

  std::string verr;
  ABCL_CHECK_MSG(s.validate(&verr), "generator produced an invalid spec");
  return s;
}

}  // namespace abcl::fuzz
