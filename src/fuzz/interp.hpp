// Spec interpreter — a single generic actor class whose methods execute a
// fuzz::Spec script through the real DSL macros, so generated programs
// exercise exactly the code paths hand-written apps do: dormant/active
// dispatch, await blocking with stack->heap frame spill, selective
// reception (waiting-mode VFT), hybrid await-or-select, ABCL_YIELD
// preemption and the full remote-creation protocol (stock hit, split-phase
// miss, messages racing into fault mode).
//
// Patterns:
//   fz.step    [fuel, chain] — run this object's script once; fuel gates
//                              message-producing ops, chain==1 marks the
//                              message as a chain step that must either be
//                              forwarded once or report latch.done
//   fz.ask     []            — now-type; replies one deterministic word
//   fz.reflect [node, ptr]   — send fz.tok back to the requester (past)
//   fz.tok     [v]           — token; consumed by a wait site, or counted
//                              as a stray when it arrives after the site
//                              already resumed via the hybrid's reply arm
//
// Flow accounting is kept per *node* (RunCtx::per_node): one node's quanta
// never run concurrently, and cross-window handoff in the parallel driver
// is barrier-synchronized — the same discipline that makes NodeRuntime's
// own state safe. The oracle sums and compares these counters across
// drivers and uses them for conservation invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "abcl/machine_api.hpp"
#include "abcl/termination.hpp"
#include "fuzz/spec.hpp"

namespace abcl::fuzz {

struct alignas(64) Counters {
  std::uint64_t steps_run = 0;      // fz.step method executions
  std::uint64_t steps_sent = 0;     // fz.step messages sent by scripts
  std::uint64_t asks_made = 0;      // now-type fz.ask sends
  std::uint64_t asks_answered = 0;  // fz.ask method executions
  std::uint64_t ask_sum = 0;        // sum of reply values consumed
  std::uint64_t tokens_requested = 0;
  std::uint64_t tokens_emitted = 0;  // fz.reflect executions
  std::uint64_t tokens_got = 0;      // consumed by a wait site
  std::uint64_t tokens_stray = 0;    // dispatched as a dormant method
  std::uint64_t tok_sum = 0;
  std::uint64_t creates_begun = 0;
  std::uint64_t creates_done = 0;
  std::uint64_t dones = 0;  // latch.done sends (chain terminations)

  bool operator==(const Counters&) const = default;
  Counters& operator+=(const Counters& o);
};

// Everything a running method needs to resolve script references. Built by
// FuzzWorld before the first message is sent and immutable during the run
// (per_node points at mutable counter slots, see above).
struct RunCtx {
  const Spec* spec = nullptr;
  std::vector<MailAddr> addrs;  // static objects, by index
  MailAddr latch = core::kNilAddr;
  Counters* per_node = nullptr;
  PatternId step = 0, ask = 0, reflect = 0, tok = 0;
  PatternId latch_done = 0;
  const core::ClassInfo* actor_cls = nullptr;
};

struct InterpPatterns {
  PatternId step = 0, ask = 0, reflect = 0, tok = 0;
  const core::ClassInfo* cls = nullptr;
};

// Registers the interpreter actor class and its patterns on `prog`.
// Call before prog.finalize().
InterpPatterns register_interp(core::Program& prog);

// A World built from a Spec: registers the interpreter + completion latch,
// creates the static objects on their home nodes, optionally warms the
// chunk stocks, and enqueues the boot chains. Run with world().run().
class FuzzWorld {
 public:
  // `spec` must validate; aborts otherwise. `tracer` (optional) is attached
  // before boot so boot-time cascades are fingerprinted too. `queue` and
  // `flush` select the time-queue and flush-path ablations (see
  // WorldConfig); `horizon` and `shard` the parallel driver's window and
  // shard policies. Every combination must produce byte-identical results.
  // `ck` (optional) enables deterministic checkpoint capture at a
  // simulated-time boundary (see ckpt/snapshot.hpp and checkpoint_to below).
  FuzzWorld(const Spec& spec, int host_threads, sim::Tracer* tracer = nullptr,
            const sim::CostModel& cost = sim::CostModel::ap1000(),
            util::QueueKind queue = util::QueueKind::kBucket,
            net::FlushKind flush = net::FlushKind::kMerge,
            sim::HorizonKind horizon = sim::HorizonKind::kGlobal,
            sim::ShardKind shard = sim::ShardKind::kStatic,
            const ckpt::CheckpointConfig& ck = {});

  FuzzWorld(const FuzzWorld&) = delete;
  FuzzWorld& operator=(const FuzzWorld&) = delete;

  World& world() { return *world_; }
  const Spec& spec() const { return spec_; }
  const RunCtx& rc() const { return rc_; }

  const std::vector<Counters>& per_node() const { return counters_; }
  Counters total() const;

  // Valid once the world has quiesced.
  const CompletionLatch& latch() const;
  std::int64_t expected_chains() const {
    return static_cast<std::int64_t>(spec_.boot.size());
  }

  // Post-quiescence probes over the static objects (dynamic objects are
  // covered indirectly by the conservation invariants).
  std::uint64_t waiting_static_objects() const;
  std::uint64_t queued_static_msgs() const;

  // Serializes the current world (requires a checkpoint-enabled `ck` at
  // construction; only legal between run() calls — a quantum boundary).
  void checkpoint_to(ckpt::Sink& sink) const { world_->checkpoint(sink); }

  // Destroys the current World (unmapping its fixed-base arenas) and
  // rebuilds it from `src`. Restored actor frames hold `const RunCtx*`
  // words pointing back into this FuzzWorld, so restore must reuse the SAME
  // FuzzWorld instance — spec, program, counters and RunCtx stay at their
  // original addresses. `tracer` is re-attached to the restored world (pass
  // the original to keep one fingerprint spanning the gap).
  // `host_threads_override`: 0 keeps the snapshot's driver configuration;
  // otherwise same semantics as WorldConfig::host_threads.
  void restore_world(ckpt::Source& src, sim::Tracer* tracer = nullptr,
                     int host_threads_override = 0);

  // Crash-recovery support: rolls the app-side flow counters back to a copy
  // of per_node() captured alongside a checkpoint, discarding whatever a
  // crashed (to-be-replayed) segment accumulated.
  void reset_counters(const std::vector<Counters>& snap);

 private:
  Spec spec_;  // owned copy; RunCtx points into it
  core::Program prog_;
  InterpPatterns ip_;
  CompletionPatterns lp_;
  std::vector<Counters> counters_;
  RunCtx rc_;
  std::unique_ptr<World> world_;
};

}  // namespace abcl::fuzz
