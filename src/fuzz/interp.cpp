#include "fuzz/interp.hpp"

#include "abcl/dsl.hpp"
#include "core/program.hpp"
#include "util/assert.hpp"

namespace abcl::fuzz {

namespace {

// Wait sites, in registration order (asserted in register_interp).
constexpr std::int32_t kSiteSelect = 0;  // kSelectToken's site
constexpr std::int32_t kSiteHybrid = 1;  // kHybrid's site

// StepFrame resume labels (the case numbers in StepFrame::run).
constexpr std::uint16_t kPcAskReply = 1;
constexpr std::uint16_t kPcCreateDone = 2;
constexpr std::uint16_t kPcYield = 3;
constexpr std::uint16_t kPcSelectTok = 4;
constexpr std::uint16_t kPcHybridReply = 5;
constexpr std::uint16_t kPcHybridTok = 6;
constexpr std::uint16_t kPcHybridDrain = 7;

std::size_t idx(std::int64_t i) { return static_cast<std::size_t>(i); }

struct ActorState {
  const RunCtx* rc = nullptr;
  std::int32_t script = 0;
  std::int32_t dyn = 0;

  void on_create(const Msg& m) {
    rc = reinterpret_cast<const RunCtx*>(m.at(0));
    script = static_cast<std::int32_t>(m.i64(1));
    dyn = static_cast<std::int32_t>(m.i64(2));
  }

  const std::vector<Action>& actions() const {
    const Spec& s = *rc->spec;
    return (dyn != 0 ? s.dynamic : s.objects)[idx(script)].script;
  }

  Counters& nc(Ctx& ctx) const { return rc->per_node[idx(ctx.node_id())]; }
};

struct AskFrame : Frame {
  ReplyDest rd;

  static void init(AskFrame& f, const Msg& m) { f.rd = m.reply; }
  static Status run(Ctx& ctx, ActorState& self, AskFrame& f) {
    ABCL_BEGIN(f);
    {
      Counters& nc = self.nc(ctx);
      nc.asks_answered += 1;
      // Deterministic but state-dependent reply value: identical across
      // drivers (same execution order), different across schedules.
      Word v = static_cast<Word>((nc.asks_answered * 7 + nc.steps_run) & 0xFFFF);
      ctx.reply(f.rd, &v, 1);
    }
    ABCL_END();
  }
};

struct ReflectFrame : Frame {
  MailAddr req;

  static void init(ReflectFrame& f, const Msg& m) { f.req = m.addr(0); }
  static Status run(Ctx& ctx, ActorState& self, ReflectFrame& f) {
    ABCL_BEGIN(f);
    {
      Counters& nc = self.nc(ctx);
      nc.tokens_emitted += 1;
      Word v = static_cast<Word>(nc.tokens_emitted & 0xFFFF);
      ctx.send_past(f.req, self.rc->tok, &v, 1);
    }
    ABCL_END();
  }
};

// A token that reaches a dormant object (its wait already resumed via the
// hybrid's reply arm, or it never selected) dispatches here and is counted
// as a stray; without this method the generic not-understood entry would
// abort the run.
struct TokFrame : Frame {
  Word v = 0;

  static void init(TokFrame& f, const Msg& m) { f.v = m.at(0); }
  static Status run(Ctx& ctx, ActorState& self, TokFrame& f) {
    ABCL_BEGIN(f);
    {
      Counters& nc = self.nc(ctx);
      nc.tokens_stray += 1;
      nc.tok_sum += static_cast<std::uint64_t>(f.v);
    }
    ABCL_END();
  }
};

struct StepFrame : Frame {
  std::int32_t ip = 0;
  std::int32_t fuel = 0;
  std::int32_t chain = 0;
  std::int32_t forwarded = 0;
  std::int32_t iters = 0;
  std::int32_t pad = 0;
  Word tok = 0;
  NowCall call;
  CreateCall cc;

  static void init(StepFrame& f, const Msg& m) {
    f.fuel = static_cast<std::int32_t>(m.i64(0));
    f.chain = static_cast<std::int32_t>(m.i64(1));
  }
  static void copy_tok(StepFrame& f, const Msg& m) { f.tok = m.at(0); }
  static Status run(Ctx& ctx, ActorState& self, StepFrame& f);
};

Status StepFrame::run(Ctx& ctx, ActorState& self, StepFrame& f) {
  const RunCtx& rc = *self.rc;
  const std::vector<Action>& script = self.actions();
  Counters& nc = self.nc(ctx);
  ABCL_BEGIN(f);
  nc.steps_run += 1;
  for (f.ip = 0; f.ip < static_cast<std::int32_t>(script.size()); ++f.ip) {
    if (script[f.ip].op == Op::kForward) {
      // Fuel gates every message-producing op, so the step population is
      // finite. Exactly one forward per chain execution carries the chain
      // (fuel-1, chain=1); everything else is a zero-fuel spray.
      if (f.fuel > 0) {
        Word a0 = 0;
        Word a1 = 0;
        if (f.chain != 0 && f.forwarded == 0) {
          a0 = static_cast<Word>(f.fuel - 1);
          a1 = 1;
          f.forwarded = 1;
        }
        {
          Word args[2] = {a0, a1};
          ctx.send_past(rc.addrs[idx(script[f.ip].a)], rc.step, args, 2);
        }
        nc.steps_sent += 1;
      }
      continue;
    }
    if (script[f.ip].op == Op::kSprayWide) {
      if (f.fuel > 0) {
        for (std::int32_t k = 0; k < script[f.ip].b; ++k) {
          Word args[2] = {0, 0};
          std::size_t t =
              idx((script[f.ip].a + k) %
                  static_cast<std::int32_t>(rc.addrs.size()));
          ctx.send_past(rc.addrs[t], rc.step, args, 2);
          nc.steps_sent += 1;
        }
      }
      continue;
    }
    if (script[f.ip].op == Op::kCompute) {
      for (f.iters = script[f.ip].a; f.iters > 0; --f.iters) {
        ctx.charge(37);
        ABCL_YIELD(ctx, f, kPcYield);
        ;
      }
      continue;
    }
    if (script[f.ip].op == Op::kAsk) {
      f.call = ctx.send_now(rc.addrs[idx(script[f.ip].a)], rc.ask, nullptr, 0);
      nc.asks_made += 1;
      ABCL_AWAIT(ctx, f, kPcAskReply, f.call);
      nc.ask_sum += static_cast<std::uint64_t>(ctx.take_reply(f.call));
      continue;
    }
    if (script[f.ip].op == Op::kSelectToken) {
      {
        MailAddr me = ctx.self_addr();
        Word args[2] = {me.word_node(), me.word_ptr()};
        ctx.send_past(rc.addrs[idx(script[f.ip].a)], rc.reflect, args, 2);
        nc.tokens_requested += 1;
      }
      ABCL_SELECT(ctx, self, f, kSiteSelect);
    }
    if (false) {
      case kPcSelectTok:
        nc.tokens_got += 1;
        nc.tok_sum += static_cast<std::uint64_t>(f.tok);
        continue;
    }
    if (script[f.ip].op == Op::kHybrid) {
      {
        MailAddr me = ctx.self_addr();
        Word args[2] = {me.word_node(), me.word_ptr()};
        ctx.send_past(rc.addrs[idx(script[f.ip].a)], rc.reflect, args, 2);
        nc.tokens_requested += 1;
      }
      f.call = ctx.send_now(rc.addrs[idx(script[f.ip].a)], rc.ask, nullptr, 0);
      nc.asks_made += 1;
      ABCL_AWAIT_OR_SELECT(ctx, self, f, kPcHybridReply, f.call, kSiteHybrid);
      nc.ask_sum += static_cast<std::uint64_t>(ctx.take_reply(f.call));
      continue;
    }
    if (false) {
      // Token won the hybrid race: consume it, then drain the still-pending
      // reply (the registration was cancelled; the box stays valid).
      case kPcHybridTok:
        nc.tokens_got += 1;
        nc.tok_sum += static_cast<std::uint64_t>(f.tok);
        ABCL_AWAIT(ctx, f, kPcHybridDrain, f.call);
        nc.ask_sum += static_cast<std::uint64_t>(ctx.take_reply(f.call));
        continue;
    }
    if (script[f.ip].op == Op::kCreate) {
      if (f.fuel > 0) {
        {
          Word cargs[3] = {reinterpret_cast<Word>(self.rc),
                           static_cast<Word>(script[f.ip].a), 1};
          f.cc = ctx.remote_create_begin(
              *rc.actor_cls, static_cast<NodeId>(script[f.ip].b), cargs, 3);
        }
        nc.creates_begun += 1;
        ABCL_AWAIT(ctx, f, kPcCreateDone, f.cc.call);
        {
          MailAddr na = ctx.remote_create_finish(f.cc);
          Word args[2] = {0, 0};
          ctx.send_past(na, rc.step, args, 2);
        }
        nc.creates_done += 1;
        nc.steps_sent += 1;
      }
      continue;
    }
  }
  if (f.chain != 0 && f.forwarded == 0) {
    // Chain ends here: report the completion.
    Word one = 1;
    ctx.send_past(rc.latch, rc.latch_done, &one, 1);
    nc.dones += 1;
  }
  ABCL_END();
}

}  // namespace

Counters& Counters::operator+=(const Counters& o) {
  steps_run += o.steps_run;
  steps_sent += o.steps_sent;
  asks_made += o.asks_made;
  asks_answered += o.asks_answered;
  ask_sum += o.ask_sum;
  tokens_requested += o.tokens_requested;
  tokens_emitted += o.tokens_emitted;
  tokens_got += o.tokens_got;
  tokens_stray += o.tokens_stray;
  tok_sum += o.tok_sum;
  creates_begun += o.creates_begun;
  creates_done += o.creates_done;
  dones += o.dones;
  return *this;
}

InterpPatterns register_interp(core::Program& prog) {
  InterpPatterns ip;
  ip.step = prog.patterns().intern("fz.step", 2);
  ip.ask = prog.patterns().intern("fz.ask", 0);
  ip.reflect = prog.patterns().intern("fz.reflect", 2);
  ip.tok = prog.patterns().intern("fz.tok", 1);

  ClassDef<ActorState> def(prog, "FuzzActor");
  // Migration-eligible: ActorState is {pointer, two ints} — trivially
  // copyable/destructible — and RunCtx is process-global, so the pointer
  // survives a node change. Harmless when the spec carries no migration
  // block (the flag is only consulted by an enabled shedding policy).
  def.migratable();
  def.method<StepFrame>(ip.step);
  def.method<AskFrame>(ip.ask);
  def.method<ReflectFrame>(ip.reflect);
  def.method<TokFrame>(ip.tok);

  std::int32_t site_select = def.wait_site<StepFrame>();
  def.accept<StepFrame, &StepFrame::copy_tok>(site_select, ip.tok,
                                              kPcSelectTok);
  std::int32_t site_hybrid = def.wait_site<StepFrame>();
  def.accept<StepFrame, &StepFrame::copy_tok>(site_hybrid, ip.tok,
                                              kPcHybridTok);
  ABCL_CHECK(site_select == kSiteSelect && site_hybrid == kSiteHybrid);

  ip.cls = &def.info();
  return ip;
}

FuzzWorld::FuzzWorld(const Spec& spec, int host_threads, sim::Tracer* tracer,
                     const sim::CostModel& cost, util::QueueKind queue,
                     net::FlushKind flush, sim::HorizonKind horizon,
                     sim::ShardKind shard, const ckpt::CheckpointConfig& ck)
    : spec_(spec) {
  std::string verr;
  ABCL_CHECK_MSG(spec_.validate(&verr), "invalid fuzz spec");

  ip_ = register_interp(prog_);
  lp_ = register_completion_latch(prog_);
  prog_.finalize();

  WorldConfig cfg;
  cfg.with_nodes(spec_.nodes)
      .with_host_threads(host_threads)
      .with_cost(cost)
      .with_seed(spec_.seed | 1)
      .with_queue(queue)
      .with_flush(flush)
      .with_horizon(horizon)
      .with_shard(shard)
      .with_ckpt(ck);
  cfg.node.max_call_depth = spec_.max_call_depth;
  cfg.node.reduction_budget = spec_.reduction_budget;
  cfg.node.disable_replenish = spec_.disable_replenish;
  if (spec_.faults.has_value()) cfg.with_faults(*spec_.faults);
  if (spec_.migration.has_value()) cfg.with_migration(*spec_.migration);

  counters_.assign(static_cast<std::size_t>(spec_.nodes), Counters{});
  rc_.spec = &spec_;
  rc_.per_node = counters_.data();
  rc_.step = ip_.step;
  rc_.ask = ip_.ask;
  rc_.reflect = ip_.reflect;
  rc_.tok = ip_.tok;
  rc_.latch_done = lp_.done;
  rc_.actor_cls = ip_.cls;

  world_ = std::make_unique<World>(prog_, cfg);
  if (tracer != nullptr) world_->attach_tracer(tracer);

  world_->boot(0, [&](core::NodeRuntime& ctx) {
    rc_.latch = ctx.create_local(*lp_.cls, {});
    ctx.send_past(rc_.latch, lp_.expect,
                  {static_cast<Word>(spec_.boot.size())});
  });
  rc_.addrs.reserve(spec_.objects.size());
  for (std::size_t i = 0; i < spec_.objects.size(); ++i) {
    world_->boot(spec_.objects[i].node, [&](core::NodeRuntime& ctx) {
      rc_.addrs.push_back(ctx.create_local(
          *ip_.cls, {reinterpret_cast<Word>(&rc_), static_cast<Word>(i),
                     Word{0}}));
    });
  }
  if (spec_.seed_stock_depth > 0) {
    world_->seed_stocks(*ip_.cls, spec_.seed_stock_depth);
  }
  // Start the chains only after every static object exists: a boot-time
  // local send cascades immediately and may touch any addrs entry.
  for (const BootMsg& bm : spec_.boot) {
    world_->boot(0, [&](core::NodeRuntime& ctx) {
      ctx.send_past(rc_.addrs[idx(bm.target)], ip_.step,
                    {static_cast<Word>(bm.fuel), Word{1}});
    });
  }
}

void FuzzWorld::restore_world(ckpt::Source& src, sim::Tracer* tracer,
                              int host_threads_override) {
  // The old world must die first: restore re-maps the node arenas at the
  // exact bases the snapshot records (MAP_FIXED_NOREPLACE).
  world_.reset();
  world_ = World::restore(prog_, src, host_threads_override);
  if (tracer != nullptr) world_->attach_tracer(tracer);
}

void FuzzWorld::reset_counters(const std::vector<Counters>& snap) {
  ABCL_CHECK_MSG(snap.size() == counters_.size(),
                 "counter snapshot is from a different world shape");
  counters_ = snap;
  rc_.per_node = counters_.data();
}

Counters FuzzWorld::total() const {
  Counters t;
  for (const Counters& c : counters_) t += c;
  return t;
}

const CompletionLatch& FuzzWorld::latch() const {
  return latch_state(rc_.latch);
}

namespace {

// A boot-time address may now be a forwarding stub (live migration): chase
// the chain to the object's current home. An in-transit stub reports its
// own address; at quiescence none exist, so the probe lands on the live
// header either way.
MailAddr resolve_home(const World& w, MailAddr a) {
  for (int hops = 0; hops < 64; ++hops) {
    auto f = w.node(a.node).forward_target(a.ptr);
    if (!f.has_value()) return a;
    if (f->node == a.node && f->ptr == a.ptr) return a;
    a = *f;
  }
  ABCL_CHECK_MSG(false, "forwarding chain exceeds 64 hops");
  return a;
}

}  // namespace

std::uint64_t FuzzWorld::waiting_static_objects() const {
  std::uint64_t n = 0;
  for (const MailAddr& a : rc_.addrs) {
    if (resolve_home(*world_, a).ptr->mode == core::Mode::kWaiting) ++n;
  }
  return n;
}

std::uint64_t FuzzWorld::queued_static_msgs() const {
  std::uint64_t n = 0;
  for (const MailAddr& a : rc_.addrs) {
    n += resolve_home(*world_, a).ptr->mq.size();
  }
  return n;
}

}  // namespace abcl::fuzz
