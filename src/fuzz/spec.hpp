// Fuzz program specification — a .cpp-free description of a random ABCL
// program, interpretable by the generic actor in fuzz/interp and
// serializable to JSON (so a failing program can be committed as a repro
// and replayed with the fuzz_repro CLI).
//
// A Spec names a set of *static* objects (created at boot, one script
// each), a set of *dynamic* object templates (instantiated at runtime via
// the remote-creation protocol) and a set of boot messages that start
// bounded message chains. Scripts are straight-line action lists; every
// action is one of the Op kinds below, chosen to cover the runtime's mode
// transitions: past sends (dormant->active dispatch and queuing), now sends
// (await blocking), selective reception (waiting-mode VFT), hybrid
// await-or-select, preemption yields, and remote creations (chunk-stock
// fast path + split-phase fallback + messages racing into fault mode).
//
// Termination is guaranteed by construction (validate() enforces it):
//  * fuel bounds the total number of chain-forward steps, and spray
//    messages carry zero fuel, so the message population is finite;
//  * blocking actions (ask / select / hybrid) of static object i may only
//    target objects with index > i, and dynamic objects may only target
//    static objects while never being targets themselves, so the wait-for
//    graph is acyclic and every blocked object eventually resumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/fault.hpp"
#include "remote/migration.hpp"

namespace abcl::fuzz {

enum class Op : std::int32_t {
  kForward = 0,     // chain step: send fz.step to object `a` (fuel-gated)
  kSprayWide = 1,   // send `b` zero-fuel steps to objects a, a+1, ... (mod N)
  kCompute = 2,     // charge+ABCL_YIELD loop of `a` iterations (preemption)
  kAsk = 3,         // now-type fz.ask to object `a`, await the reply
  kSelectToken = 4, // request a token from `a`, ABCL_SELECT on it (waiting)
  kHybrid = 5,      // request token + ask from `a`, ABCL_AWAIT_OR_SELECT
  kCreate = 6,      // remote-create dynamic template `a` on node `b`
};
inline constexpr std::int32_t kNumOps = 7;

struct Action {
  Op op = Op::kForward;
  std::int32_t a = 0;
  std::int32_t b = 0;

  bool operator==(const Action&) const = default;
};

struct ObjectSpec {
  std::int32_t node = 0;  // home node (static objects only; dynamic
                          // templates take their node from the kCreate site)
  std::vector<Action> script;

  bool operator==(const ObjectSpec&) const = default;
};

struct BootMsg {
  std::int32_t target = 0;  // static object index
  std::int32_t fuel = 0;    // chain length budget

  bool operator==(const BootMsg&) const = default;
};

struct Spec {
  std::uint64_t seed = 0;  // provenance only; the program is the data below

  // World shape / runtime knobs under test.
  std::int32_t nodes = 1;
  std::int32_t max_call_depth = 48;
  std::uint32_t reduction_budget = 4096;
  std::int32_t seed_stock_depth = 0;  // World::seed_stocks warm start
  bool disable_replenish = false;     // Category-3 ablation

  // Optional deterministic fault plan injected under the program. Serialized
  // as a "faults" object; its absence keeps old committed repro files valid
  // under the unchanged v1 schema (from_json ignores unknown keys, so old
  // binaries also tolerate new repros that carry the block).
  std::optional<net::FaultConfig> faults;

  // Optional live-migration knob (serialized as a "migration" object with
  // the same absence rule as "faults"). The interpreter marks its actor
  // class migratable, so an enabled block exercises shedding, forwarding
  // stubs and path compression under the oracle's conservation identity.
  std::optional<remote::MigrationConfig> migration;

  std::vector<ObjectSpec> objects;  // static, index-addressed
  std::vector<ObjectSpec> dynamic;  // templates for kCreate
  std::vector<BootMsg> boot;        // one chain each

  bool operator==(const Spec&) const = default;

  // Actions across all scripts plus boot messages — the size measure the
  // shrinker minimizes.
  std::size_t total_actions() const;

  // Checks every structural and termination invariant documented above.
  // Returns false (with a description) on the first violation; interp
  // refuses to run an invalid Spec.
  bool validate(std::string* error = nullptr) const;

  // Deterministic JSON round-trip (schema "abclsim-fuzz-spec-v1").
  std::string to_json() const;
  static std::optional<Spec> from_json(std::string_view text,
                                       std::string* error = nullptr);
};

inline constexpr const char* kSpecSchema = "abclsim-fuzz-spec-v1";

}  // namespace abcl::fuzz
