// Seeded random-program generator. Same seed -> same Spec, bit-for-bit
// (Xoshiro256 is platform-reproducible), which is what lets the committed
// corpus in tests/test_fuzz.cpp stand in for the programs themselves.
//
// Generated programs respect every Spec::validate() invariant by
// construction: blocking targets are drawn strictly above the asking
// object's index (acyclic wait-for), message-producing ops are fuel-gated,
// dynamic templates never create. The knobs (call depth, reduction budget,
// stock depth, replenish ablation) are drawn from small stress-biased sets
// so low-probability runtime paths — preemption spills, chunk-stock
// exhaustion, split-phase creation — appear often in any 64-seed corpus.
#pragma once

#include <cstdint>

#include "fuzz/spec.hpp"

namespace abcl::fuzz {

struct GenConfig {
  std::int32_t max_nodes = 12;
  std::int32_t max_objects = 10;  // static objects: 2..max_objects
  std::int32_t max_script = 6;    // actions per static script: 1..max_script
  std::int32_t max_dynamic = 3;   // dynamic templates: 0..max_dynamic
  std::int32_t max_boot = 5;      // boot chains: 1..max_boot
  std::int32_t max_fuel = 10;     // chain fuel: 1..max_fuel
};

Spec generate(std::uint64_t seed, const GenConfig& cfg = {});

}  // namespace abcl::fuzz
