// Intra-node scheduling queue, policy selection and per-node statistics
// (Sections 4.1, 4.3, 6.3).
//
// The scheduling queue is node-wise and FIFO; each item is an object plus a
// continuation kind — "process the next buffered message" or "resume the
// saved context" — which together with the frame's pc is the paper's
// (object pointer, continuation address) pair. Under the stack policy the
// queue is used only for once-buffered messages and preempted objects; the
// naive policy (Figure 6's baseline) routes *every* local message through
// it.
#pragma once

#include <cstdint>

#include "core/object.hpp"
#include "sim/time.hpp"
#include "util/intrusive_list.hpp"
#include "util/stats.hpp"

namespace abcl::core {

enum class SchedPolicy : std::uint8_t {
  kStack,  // the paper's integrated stack/queue scheduling
  kNaive,  // always buffer + schedule through the queue
};

class SchedQueue {
 public:
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  // Enqueues `o` with the given continuation kind. An object is in the
  // queue at most once; conflicting kinds indicate a runtime bug.
  void push(ObjectHeader* o, SchedState kind) {
    ABCL_DCHECK(kind != SchedState::kNone);
    if (o->sched_state != SchedState::kNone) {
      ABCL_CHECK_MSG(o->sched_state == kind,
                     "conflicting scheduling-continuation kinds");
      return;
    }
    o->sched_state = kind;
    q_.push_back(o);
  }

  ObjectHeader* pop() { return q_.pop_front(); }

  // Detaches `o` wherever it sits in the queue (migration shed). Returns
  // true iff it was queued; its sched_state is reset so a later push is a
  // fresh enqueue.
  bool remove(ObjectHeader* o) {
    if (o->sched_state == SchedState::kNone) return false;
    ObjectHeader* out =
        q_.remove_first_if([o](ObjectHeader& x) { return &x == o; });
    ABCL_CHECK(out == o);
    o->sched_state = SchedState::kNone;
    return true;
  }

  // FIFO-order read-only walk (shed candidate scan).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    q_.for_each(fn);
  }

  // Checkpoint restore: re-link `o` at the tail, bypassing push()'s
  // sched_state transition — the restored arena image already carries the
  // object's sched_state, and push() would early-return on it. Relinking in
  // the snapshot's FIFO order rebuilds the identical sched_next chain.
  void ckpt_relink_tail(ObjectHeader* o) { q_.push_back(o); }

 private:
  util::IntrusiveFifo<ObjectHeader, &ObjectHeader::sched_next> q_;
};

// Per-node runtime statistics; aggregated by the World into run reports and
// used directly by the Table/Figure benches.
struct NodeStats {
  // local message delivery
  std::uint64_t local_sends = 0;
  std::uint64_t local_to_dormant = 0;   // ran immediately on the stack
  std::uint64_t local_to_active = 0;    // buffered via a queuing procedure
  std::uint64_t local_to_waiting_hit = 0;  // awaited pattern, restored context
  std::uint64_t forced_buffer_depth = 0;   // stack-depth preemption
  // remote messaging
  std::uint64_t remote_sends = 0;
  std::uint64_t remote_recv = 0;
  std::uint64_t replies_sent = 0;
  // blocking
  std::uint64_t blocks_await = 0;
  std::uint64_t blocks_select = 0;
  std::uint64_t yields = 0;
  std::uint64_t resumes = 0;
  std::uint64_t await_fast_hits = 0;   // reply already present at check
  // creation
  std::uint64_t creations_local = 0;
  std::uint64_t creations_remote = 0;
  std::uint64_t chunk_stock_hits = 0;
  std::uint64_t chunk_stock_misses = 0;
  // scheduling queue
  std::uint64_t sched_enqueues = 0;
  std::uint64_t sched_dispatches = 0;
  // live migration (remote/migration.*; all zero when migration is off so
  // the migration-off metrics snapshot stays byte-identical to baselines)
  std::uint64_t migrations_out = 0;     // objects shed from this node
  std::uint64_t migrations_in = 0;      // objects attached at this node
  std::uint64_t migration_mail = 0;     // inbox frames flushed across a move
  std::uint64_t migration_forwards = 0; // messages bounced by a stub here
  std::uint64_t migration_updates = 0;  // kUpdateAddr/kUpdateStub sent
  std::uint64_t migration_holds = 0;    // sends held during a flush window
  // time accounting
  sim::Instr busy_instr = 0;   // total charged work
  sim::Instr idle_instr = 0;   // clock jumps while waiting for packets

  // distributions (all in simulated quantities, so they are bit-identical
  // across host drivers)
  static constexpr int kNumAmCategories = 4;  // mirrors net::AmCategory
  // Per-AM-category message latency, send_time -> dispatch, in simulated
  // instructions (wire latency + time the packet sat in the receive queue).
  util::Log2Histogram msg_latency[kNumAmCategories];
  // Scheduling-queue length sampled at the start of every quantum.
  util::Log2Histogram sched_depth;

  // Accumulates every field of `o` into this block; keep in sync with the
  // field list above (tests/test_obs.cpp carries a field-coverage check).
  void merge(const NodeStats& o);
};

}  // namespace abcl::core
