// A Program bundles everything "the compiler generated": the pattern
// registry, class infos with their multiple virtual function tables, and
// the active-message handler table (one specialized handler per message
// pattern — Category 1; one per class for creation — Category 2; one per
// chunk size class for replenishment — Category 3; services — Category 4).
//
// Programs are built once, finalized, then shared read-only by every node.
#pragma once

#include <memory>
#include <vector>

#include "core/pattern.hpp"
#include "core/vft.hpp"
#include "net/active_message.hpp"
#include "util/arena.hpp"

namespace abcl::core {

class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  PatternRegistry& patterns() { return patterns_; }
  const PatternRegistry& patterns() const { return patterns_; }

  net::AmRegistry& am() { return am_; }
  const net::AmRegistry& am() const { return am_; }

  // Registers a class shell; methods/wait sites are filled in by the
  // abcl::ClassDef builder before finalize().
  ClassInfo& add_class(std::string name);

  const ClassInfo& cls(ClassId id) const {
    ABCL_CHECK(id < classes_.size());
    return *classes_[id];
  }
  std::size_t num_classes() const { return classes_.size(); }

  // Freezes the pattern registry, builds every class's tables and the shared
  // fault table, and registers the active-message handlers.
  void finalize();
  bool finalized() const { return finalized_; }

  const Vft& fault_vft() const { return fault_vft_; }

  // Active-message handler id blocks (valid after finalize()).
  net::HandlerId h_obj_msg(PatternId p) const {
    return static_cast<net::HandlerId>(h_obj_msg_base_ + p);
  }
  net::HandlerId h_create(ClassId c) const {
    return static_cast<net::HandlerId>(h_create_base_ + c);
  }
  net::HandlerId h_replenish(std::uint16_t size_class) const {
    return static_cast<net::HandlerId>(h_replenish_base_ + size_class);
  }
  net::HandlerId h_reply() const { return h_reply_; }
  net::HandlerId h_alloc_request() const { return h_alloc_request_; }
  net::HandlerId h_load_gossip() const { return h_load_gossip_; }
  // Live-migration protocol (Category 4 services; see remote/migration.hpp).
  net::HandlerId h_migrate_start() const { return h_migrate_start_; }
  net::HandlerId h_migrate_frag() const { return h_migrate_frag_; }
  net::HandlerId h_migrate_done() const { return h_migrate_done_; }
  net::HandlerId h_update_addr() const { return h_update_addr_; }
  net::HandlerId h_update_stub() const { return h_update_stub_; }
  net::HandlerId h_flush_marker() const { return h_flush_marker_; }
  net::HandlerId h_flush_ack() const { return h_flush_ack_; }

  PatternId pattern_of_handler(net::HandlerId h) const {
    return static_cast<PatternId>(h - h_obj_msg_base_);
  }
  ClassId class_of_handler(net::HandlerId h) const {
    return static_cast<ClassId>(h - h_create_base_);
  }
  std::uint16_t size_class_of_handler(net::HandlerId h) const {
    return static_cast<std::uint16_t>(h - h_replenish_base_);
  }

 private:
  friend void register_builtin_handlers(Program& prog);

  PatternRegistry patterns_;
  net::AmRegistry am_;
  std::vector<std::unique_ptr<ClassInfo>> classes_;
  Vft fault_vft_;
  bool finalized_ = false;

  net::HandlerId h_obj_msg_base_ = 0;
  net::HandlerId h_create_base_ = 0;
  net::HandlerId h_replenish_base_ = 0;
  net::HandlerId h_reply_ = 0;
  net::HandlerId h_alloc_request_ = 0;
  net::HandlerId h_load_gossip_ = 0;
  net::HandlerId h_migrate_start_ = 0;
  net::HandlerId h_migrate_frag_ = 0;
  net::HandlerId h_migrate_done_ = 0;
  net::HandlerId h_update_addr_ = 0;
  net::HandlerId h_update_stub_ = 0;
  net::HandlerId h_flush_marker_ = 0;
  net::HandlerId h_flush_ack_ = 0;
};

}  // namespace abcl::core
