// Mail addresses (Section 5.2).
//
// A mail address is the pair (processor number, real pointer) — no export
// tables, no indirection. Inside the simulator all node heaps share one
// process address space, so the "real pointer" is a genuine ObjectHeader*
// even when it denotes an object owned by another node; dereferencing it
// from the wrong node is a runtime bug the core asserts against.
#pragma once

#include "core/types.hpp"

namespace abcl::core {

struct MailAddr {
  NodeId node = -1;
  ObjectHeader* ptr = nullptr;

  constexpr bool is_nil() const { return ptr == nullptr; }

  friend constexpr bool operator==(const MailAddr& a, const MailAddr& b) {
    return a.node == b.node && a.ptr == b.ptr;
  }
  friend constexpr bool operator!=(const MailAddr& a, const MailAddr& b) {
    return !(a == b);
  }

  // Packing for message payloads: two words.
  Word word_node() const { return static_cast<Word>(static_cast<std::uint32_t>(node)); }
  Word word_ptr() const { return reinterpret_cast<Word>(ptr); }
  static MailAddr from_words(Word wn, Word wp) {
    return MailAddr{static_cast<NodeId>(static_cast<std::uint32_t>(wn)),
                    reinterpret_cast<ObjectHeader*>(wp)};
  }
};

inline constexpr MailAddr kNilAddr{};

// Reply destination (Section 2.2): where the reply of a now-type message is
// delivered. It names a reply box, which is itself remotely addressable —
// reply destinations can be passed to third parties, so replies need not
// come from the original receiver.
struct ReplyDest {
  NodeId node = -1;
  ReplyBox* box = nullptr;

  constexpr bool is_nil() const { return box == nullptr; }

  Word word_node() const { return static_cast<Word>(static_cast<std::uint32_t>(node)); }
  Word word_box() const { return reinterpret_cast<Word>(box); }
  static ReplyDest from_words(Word wn, Word wb) {
    return ReplyDest{static_cast<NodeId>(static_cast<std::uint32_t>(wn)),
                     reinterpret_cast<ReplyBox*>(wb)};
  }
};

inline constexpr ReplyDest kNilReply{};

}  // namespace abcl::core
