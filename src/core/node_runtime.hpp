// NodeRuntime: one simulated processor's ABCL runtime (Sections 4 and 5).
//
// Single-threaded by construction (one node = one thread of control); owns
// the node heap, frame/box pools, the message-polling loop, the intra-node
// scheduler and the chunk stocks. All user method code runs inside
// step()'s dispatch cascades; the public methods below are the "runtime
// calls" the compiled methods (our DSL state machines) make.
#pragma once

#include <functional>
#include <initializer_list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/frame.hpp"
#include "core/mail_addr.hpp"
#include "core/object.hpp"
#include "core/program.hpp"
#include "core/reply.hpp"
#include "core/scheduler.hpp"
#include "net/network.hpp"
#include "remote/chunk_stock.hpp"
#include "remote/migration.hpp"
#include "remote/placement.hpp"
#include "remote/services.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/slab.hpp"

namespace abcl::ckpt {
struct WorldIo;
}

namespace abcl::core {

// Result of beginning a remote creation: either the mail address is already
// known (chunk-stock hit — the fast path that hides the round trip), or the
// stock was empty and the caller must await `call` before finishing
// (split-phase fallback; "only when the stock is empty does context
// switching occur").
struct CreateCall {
  MailAddr addr;
  NowCall call;  // pending chunk allocation; box == nullptr on the fast path

  bool ready() const { return call.box == nullptr; }
};

class NodeRuntime final : public sim::NodeExec {
 public:
  struct Config {
    SchedPolicy policy = SchedPolicy::kStack;
    int max_call_depth = 48;        // direct-call cascade bound (preemption)
    int max_packets_per_quantum = 32;
    // Instructions a quantum may charge before should_yield() turns true
    // (long internal loops check it via ABCL_YIELD — Section 4.3's
    // preemption of long loops / deep recursions).
    std::uint32_t reduction_budget = 4096;
    int chunk_stock_target = 2;     // steady-state stock depth per (peer,size)
    // Disables Category-3 replenishment, degrading every remote creation to
    // split-phase allocation — the baseline the paper's stock scheme is
    // designed to beat (ablation support).
    bool disable_replenish = false;
    std::uint32_t gossip_interval = 0;  // quanta between load gossips; 0 = off
    std::uint64_t seed = 1;
    // Slab-pool the node heap (frames, boxes, objects, chunks). false
    // degrades every allocation to the general-purpose heap — the
    // bench_alloc ablation baseline. Simulation results are identical
    // either way; only host time and the alloc counters differ.
    bool pooling = true;
    // Live migration (remote/migration.hpp). Disabled by default; the
    // shed policy additionally needs gossip (World auto-enables it at the
    // shed interval when the app left gossip off).
    remote::MigrationConfig migration;
    // Checkpointable worlds place the node heap in a fixed-base reserved
    // arena so a snapshot restores address-faithfully (util/arena.hpp).
    // Default worlds keep the malloc-block arena. arena_base is consulted
    // only when reserved_arena is true: kReserveAuto claims the next free
    // registry slot; an explicit base (restore path) maps exactly there.
    bool reserved_arena = false;
    std::uint64_t arena_base = util::Arena::kReserveAuto;
  };

  NodeRuntime(NodeId id, Program& prog, net::Network& net,
              const sim::CostModel& cm, Config cfg);
  ~NodeRuntime() override;

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  // ----- sim::NodeExec ---------------------------------------------------
  sim::NodeId node_id() const override { return id_; }
  sim::Instr clock() const override { return clock_; }
  bool runnable() const override;
  sim::Instr next_wake() const override { return net_->next_arrival(id_); }
  void advance_clock(sim::Instr t) override;
  void step() override;

  // ----- message sends (runtime calls made by methods) --------------------
  void send_past(MailAddr target, PatternId p, std::initializer_list<Word> args) {
    send_past(target, p, args.begin(), static_cast<int>(args.size()));
  }
  void send_past(MailAddr target, PatternId p, const Word* args, int nargs);
  void send_past(MailAddr target, PatternId p, const WordSpan& a) {
    send_past(target, p, a.ptr, a.n);
  }

  NowCall send_now(MailAddr target, PatternId p, std::initializer_list<Word> args) {
    return send_now(target, p, args.begin(), static_cast<int>(args.size()));
  }
  NowCall send_now(MailAddr target, PatternId p, const Word* args, int nargs);
  NowCall send_now(MailAddr target, PatternId p, const WordSpan& a) {
    return send_now(target, p, a.ptr, a.n);
  }

  // Delivers a reply to `rd` (locally fills the box and possibly resumes
  // the blocked owner; remotely sends the reply active message).
  void reply(const ReplyDest& rd, std::initializer_list<Word> vals) {
    reply(rd, vals.begin(), static_cast<int>(vals.size()));
  }
  void reply(const ReplyDest& rd, const Word* vals, int n);

  // Checks a now-call's reply box (charges the reply-check cost).
  bool reply_ready(const NowCall& c);
  // Reads value word `i` without consuming.
  Word peek_reply(const NowCall& c, int i = 0) const;
  // Consumes the reply: frees the box. Returns value word 0.
  Word take_reply(NowCall& c);

  // ----- object creation ---------------------------------------------------
  MailAddr create_local(const ClassInfo& cls, std::initializer_list<Word> args) {
    return create_local(cls, args.begin(), static_cast<int>(args.size()));
  }
  MailAddr create_local(const ClassInfo& cls, const Word* args, int nargs);
  MailAddr create_local(const ClassInfo& cls, const WordSpan& a) {
    return create_local(cls, a.ptr, a.n);
  }

  CreateCall remote_create_begin(const ClassInfo& cls, NodeId target,
                                 std::initializer_list<Word> args) {
    return remote_create_begin(cls, target, args.begin(),
                               static_cast<int>(args.size()));
  }
  CreateCall remote_create_begin(const ClassInfo& cls, NodeId target,
                                 const Word* args, int nargs);
  CreateCall remote_create_begin(const ClassInfo& cls, NodeId target,
                                 const WordSpan& a) {
    return remote_create_begin(cls, target, a.ptr, a.n);
  }
  MailAddr remote_create_finish(CreateCall& c);

  // Marks the current object for reclamation once it returns to dormant
  // mode with an empty queue. (Extension: the paper defers GC to future
  // work; explicit retirement lets large benchmarks bound their heaps.)
  void retire_self();

  // ----- blocking protocol (used by the DSL macros inside run()) ----------
  Status block_await(const NowCall& c);
  Status block_select(std::int32_t site);
  // Hybrid wait (Section 2.2 action 4: selective reception *including
  // replies of now-type messages*): blocks until either the call's reply
  // arrives (continues at the frame's current pc) or a pattern accepted by
  // `site` restores the context (continues at that accept's resume_pc). If
  // the select alternative wins, the reply registration is cancelled — the
  // box stays valid and a later reply simply fills it.
  Status block_await_select(const NowCall& c, std::int32_t site);
  Status block_yield();
  bool should_yield() const {
    return clock_ - quantum_start_clock_ >= cfg_.reduction_budget;
  }

  // Scans the current object's message queue for a pattern accepted by
  // `site`; on a hit copies the message into `frame`, frees it and returns
  // the continuation pc; else returns kPcBlocked.
  std::uint16_t select_try(std::int32_t site, void* frame);

  // ----- dispatch internals (used by generated entries; see dispatch.hpp) -
  Status deliver_local(ObjectHeader* o, const MsgView& m);
  Status dispatch_body(ObjectHeader* o, const MsgView& m);
  void method_epilogue(ObjectHeader* o);
  void commit_block(ObjectHeader* o, CtxFrameBase* hf, ResumeFn resume);
  void resume_object(ObjectHeader* o);
  void queue_message(ObjectHeader* o, const MsgView& m);

  ObjectHeader* current_object() const { return cur_obj_; }
  void set_current_object(ObjectHeader* o) { cur_obj_ = o; }

  // Mail address of the object whose method is currently executing.
  MailAddr self_addr() const {
    ABCL_DCHECK(cur_obj_ != nullptr);
    return MailAddr{id_, cur_obj_};
  }

  // ----- memory ------------------------------------------------------------
  template <class FrameT>
  FrameT* alloc_ctx_frame() {
    // The slab guarantees min(class_bytes, kMaxAlignment); a frame aligned
    // beyond that would silently land on a weaker boundary (the old
    // PoolAllocator handed every class max_align_t at best).
    static_assert(alignof(FrameT) <= util::SlabAllocator::kMaxAlignment,
                  "context frame over-aligned beyond the slab guarantee");
    auto* f = static_cast<FrameT*>(pool_.allocate(sizeof(FrameT)));
    f->bytes = sizeof(FrameT);
    return f;
  }
  void free_ctx_frame(CtxFrameBase* f) { pool_.deallocate(f, f->bytes); }

  MsgFrame* alloc_msg_frame();
  void free_msg_frame(MsgFrame* f);
  ReplyBox* alloc_reply_box();
  void free_reply_box(ReplyBox* b);

  // Formats a fresh fault-mode chunk of the given pool size class (used by
  // the remote-creation protocol and by boot-time stock seeding).
  ObjectHeader* format_chunk(std::uint16_t size_class);

  // ----- inlined-send support (Section 8.2) --------------------------------
  // Guarded fast path for a compile-time-known receiver class: true iff the
  // receiver is local AND its VFTP designates the class's dormant table, in
  // which case the caller may run the inlined method body directly.
  bool inline_guard(MailAddr target, const ClassInfo& cls);

  // ----- services / accounting ---------------------------------------------
  void charge(sim::Instr n) {
    clock_ += n;
    stats_.busy_instr += n;
  }
  const sim::CostModel& cost_model() const { return *cm_; }
  Program& program() { return *prog_; }
  net::Network& network() { return *net_; }
  NodeId num_nodes() const { return net_->topology().num_nodes(); }
  util::Xoshiro256& rng() { return rng_; }
  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }
  const Config& config() const { return cfg_; }
  std::size_t live_objects() const { return live_objects_; }
  std::size_t heap_bytes() const { return arena_.bytes_allocated(); }
  // Slab-pool counters (deterministic; exported in the metrics snapshot).
  const util::SlabAllocator::Stats& alloc_stats() const {
    return pool_.stats();
  }
  std::uint32_t sched_queue_len() const {
    return static_cast<std::uint32_t>(sched_.size());
  }

  // Known loads of peers (maintained by the Category-4 gossip service).
  // nullopt = never heard from, or last heard more than 2x gossip_interval
  // quanta ago (stale figures are worse than none: a peer whose gossip
  // stopped — blackout, drops, overload — must not keep advertising its
  // old load). With gossip disabled (interval 0) entries never age.
  std::optional<std::uint32_t> known_load(NodeId peer) const {
    const std::uint64_t max_age =
        cfg_.gossip_interval == 0 ? 0 : 2ull * cfg_.gossip_interval;
    return loads_.get(peer, quanta_run_, max_age);
  }
  void note_peer_load(NodeId peer, std::uint32_t load) {
    loads_.note(peer, load, quanta_run_);
  }
  void gossip_load_now();

  // Placement policy used by apps for remote creation targets.
  remote::Placement& placement() { return placement_; }
  const remote::ChunkStock& chunk_stock() const { return stock_; }

  // Runs `fn` as bootstrap code on this node (before or between machine
  // runs); `fn` may create objects and send messages.
  void boot(const std::function<void(NodeRuntime&)>& fn);

  // Optional execution tracing (one branch per hot-path event when unset).
  void set_tracer(sim::Tracer* t) { tracer_ = t; }
  sim::Tracer* swap_tracer(sim::Tracer* t) override {
    sim::Tracer* old = tracer_;
    tracer_ = t;
    return old;
  }
  void trace(sim::TraceEv ev, std::uint64_t payload = 0) {
    if (tracer_ != nullptr) tracer_->record(clock_, id_, ev, payload);
  }

  // Chunk-stock interface (implementation in remote/chunk_stock).
  std::optional<ObjectHeader*> stock_try_pop(NodeId peer, std::uint16_t szcls);
  void stock_push(NodeId peer, std::uint16_t szcls, ObjectHeader* chunk);
  std::size_t stock_depth(NodeId peer, std::uint16_t szcls) const;

  // Boot-time warm-up: pre-issues `depth` chunks of `cls`'s size class from
  // `peer_rt`'s heap into this node's stock (models the paper's
  // "predelivered stocks" without running the protocol).
  void seed_stock_from(NodeRuntime& peer_rt, const ClassInfo& cls, int depth);

  // Objects ever created on this node (monotone; for reports/leak checks).
  std::uint64_t total_created() const { return total_created_; }

  // ----- live migration (remote/migration.hpp) -----------------------------
  // True iff `o` may be shipped right now: a migratable class, not running,
  // not already in transit, and either fully idle or parked at a wait site
  // (the blocked context frame travels with the state; yield-blocked objects
  // have no wait site to re-enter and stay put).
  bool migratable_now(const ObjectHeader* o) const;
  // Ships `o` to `target` (caller checked migratable_now). The local header
  // becomes a buffering stub until the new home confirms with kMigrateDone,
  // then a forwarding stub for the rest of the run.
  void migrate_object_to(ObjectHeader* o, NodeId target);
  // Where mail for a (possibly former) local object ends up: nullopt for a
  // live local object, otherwise the forwarding destination. Probing aid for
  // the fuzz oracle; in-transit stubs report their (pre-Done) old address.
  std::optional<MailAddr> forward_target(const ObjectHeader* o) const;

 private:
  friend void register_builtin_handlers(Program& prog);
  // Checkpoint serializer (src/ckpt/world_io.cpp).
  friend struct abcl::ckpt::WorldIo;

  struct BlockReason {
    enum class Kind : std::uint8_t {
      kNone,
      kAwait,
      kSelect,
      kAwaitSelect,
      kYield,
    } kind = Kind::kNone;
    ReplyBox* box = nullptr;
    std::int32_t site = -1;
  };

  struct PendingCreate {
    const ClassInfo* cls = nullptr;
    NodeId target = -1;
    std::uint8_t nargs = 0;
    Word args[kMaxArgs] = {};
  };

  // ----- live-migration state (all node-side: ObjectHeader never grows,
  // so slab size classes and the migration-off alloc metrics stay
  // byte-identical to the committed baselines) -----------------------------

  // A kFlushMarker parked at an in-transit stub; replayed after the
  // buffered mail once kMigrateDone installs the forwarding address.
  struct ParkedMarker {
    Word key_ptr = 0;           // redirect-map key at the marker's origin
    std::uint32_t epoch = 0;
    NodeId origin = -1;
  };
  // Old-home side of a migrated object (keyed by the stub's header).
  struct StubInfo {
    MailAddr fwd = kNilAddr;    // nil while kMigrating (not yet confirmed)
    std::uint32_t fwd_epoch = 0;
    std::vector<ParkedMarker> parked;
  };
  // A message held at the sender while a redirect entry flushes.
  struct HeldMsg {
    PatternId pattern = 0;
    int nargs = 0;
    ReplyDest rd = kNilReply;
    Word args[kMaxArgs] = {};
  };
  // Sender-side directory: "mail addressed to key now goes to fwd". The
  // flushing window (kFlushMarker round trip) keeps per-object FIFO intact
  // across the shortcut: new mail is held until mail already routed through
  // the stub chain has drained.
  struct RedirectEntry {
    MailAddr fwd = kNilAddr;
    std::uint32_t epoch = 0;
    bool flushing = false;
    std::vector<HeldMsg> held;
  };
  // Reassembly buffer for one inbound migration (fragments may arrive
  // before the start packet under fault reordering).
  struct InboundMigration {
    bool have_start = false;
    ClassId cls_id = 0;
    std::uint32_t flags = 0;
    std::uint32_t epoch = 0;
    std::int64_t wait_site = -1;
    std::uint32_t blob_words = 0;
    std::uint32_t received_words = 0;
    NodeId src = -1;
    std::vector<MailAddr> priors;
    std::vector<Word> blob;
  };
  // New-home side bookkeeping for a migrated-in object: its epoch and the
  // trail of stubs to notify (kUpdateStub) if it migrates again.
  struct MigratedMeta {
    std::uint32_t epoch = 0;
    std::vector<MailAddr> priors;
  };

  ObjectHeader* alloc_object(const ClassInfo& cls);
  void destroy_object(ObjectHeader* o);
  void maybe_retire(ObjectHeader* o);
  void run_sched_item(ObjectHeader* o);
  void remote_send(MailAddr target, PatternId p, const Word* args, int nargs,
                   const ReplyDest& rd);
  void send_create_packet(const ClassInfo& cls, NodeId target,
                          ObjectHeader* chunk, const Word* args, int nargs);
  void deliver_reply_local(ReplyBox* box, const Word* vals, int n);
  void naive_local_send(ObjectHeader* o, const MsgView& m);

  // Migration internals (node_runtime.cpp, migration section).
  void maybe_shed();
  void attach_migrated(Word old_ptr_word, InboundMigration& in);
  // Pure read: follows local stub links from `o` to the final forwarding
  // destination; nullopt while any hop is still kMigrating (unconfirmed).
  std::optional<std::pair<MailAddr, std::uint32_t>> peek_forward(
      const ObjectHeader* o) const;
  // Sender-side redirect resolution; returns false when the message was
  // held at a flushing entry (caller must not also send it).
  bool route_send(MailAddr& target, PatternId p, const Word* args, int nargs,
                  const ReplyDest& rd);
  // Delivers locally or remotely after redirection already happened.
  void send_resolved(MailAddr target, PatternId p, const Word* args, int nargs,
                     const ReplyDest& rd);
  void run_flush_marker(ObjectHeader* route, Word key_ptr, std::uint32_t epoch,
                        NodeId origin);
  void deliver_flush_ack_local(Word key_ptr, std::uint32_t epoch);
  void send_update_addr(NodeId to, Word key_ptr, MailAddr dest,
                        std::uint32_t epoch);
  // Charges send-setup and hands a Category-4 service packet to the network
  // (mirrors gossip: service traffic is not counted in remote_sends).
  void send_service(NodeId to, net::HandlerId h,
                    std::initializer_list<Word> words);
  void stub_apply_update(ObjectHeader* stub, MailAddr dest,
                         std::uint32_t epoch);

  // Active-message handler bodies (dispatched via Program's registry).
  void on_obj_msg(const net::Packet& pkt);
  void on_reply(const net::Packet& pkt);
  void on_create(const net::Packet& pkt);
  void on_alloc_request(const net::Packet& pkt);
  void on_replenish(const net::Packet& pkt);
  void on_load_gossip(const net::Packet& pkt);
  void on_migrate_start(const net::Packet& pkt);
  void on_migrate_frag(const net::Packet& pkt);
  void on_migrate_done(const net::Packet& pkt);
  void on_update_addr(const net::Packet& pkt);
  void on_update_stub(const net::Packet& pkt);
  void on_flush_marker(const net::Packet& pkt);
  void on_flush_ack(const net::Packet& pkt);

  NodeId id_;
  Program* prog_;
  net::Network* net_;
  const sim::CostModel* cm_;
  Config cfg_;

  sim::Instr clock_ = 0;
  util::Arena arena_;
  util::SlabAllocator pool_;
  SchedQueue sched_;
  NodeStats stats_;
  util::Xoshiro256 rng_;

  ObjectHeader* cur_obj_ = nullptr;
  int call_depth_ = 0;
  std::uint32_t deliveries_this_quantum_ = 0;
  sim::Instr quantum_start_clock_ = 0;
  BlockReason block_reason_;

  sim::Tracer* tracer_ = nullptr;
  ObjectHeader* live_head_ = nullptr;
  std::size_t live_objects_ = 0;
  std::uint64_t total_created_ = 0;
  std::uint64_t quanta_run_ = 0;

  remote::ChunkStock stock_;
  remote::LoadMap loads_;
  remote::Placement placement_;

  // Migration maps, all keyed by header words (process-globally unique:
  // every node heap lives in one address space and stubs are never freed).
  // Lookups are keyed-only — the maps are never iterated — so unordered
  // iteration order cannot leak into results and determinism holds.
  std::unordered_map<ObjectHeader*, StubInfo> stubs_;
  std::unordered_map<Word, RedirectEntry> redirects_;
  std::unordered_map<Word, InboundMigration> inbound_;
  std::unordered_map<ObjectHeader*, MigratedMeta> migrated_meta_;
};

// Registers the builtin active-message handlers on `prog`'s registry;
// called by Program::finalize(). Defined alongside NodeRuntime because the
// handler bodies are runtime internals.
void register_builtin_handlers(Program& prog);

}  // namespace abcl::core
