// Message pattern registry (Section 2.4).
//
// A pattern is the combination of a message's keywords and argument types;
// the compiler assigns each pattern a unique small integer at compile time
// and every virtual function table is indexed by it. Here registration
// happens at program-construction time (our "compile time"), before any
// node runs; the registry is immutable afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace abcl::core {

struct PatternInfo {
  std::string name;
  std::uint8_t arity = 0;
};

class PatternRegistry {
 public:
  // Interns `name` with the given arity. Re-interning the same name must
  // use the same arity (a pattern is keyword + argument types).
  PatternId intern(std::string_view name, std::uint8_t arity);

  // Looks up an existing pattern; aborts if unknown.
  PatternId id_of(std::string_view name) const;

  const PatternInfo& info(PatternId id) const;
  std::size_t size() const { return infos_.size(); }

  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  std::vector<PatternInfo> infos_;
  bool frozen_ = false;
};

}  // namespace abcl::core
