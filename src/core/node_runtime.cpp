#include "core/node_runtime.hpp"

#include <cstring>

namespace abcl::core {

namespace {

std::uint16_t object_size_class(const ClassInfo& cls) {
  return static_cast<std::uint16_t>(
      util::SlabAllocator::size_class(object_alloc_bytes(cls.state_bytes)));
}

}  // namespace

NodeRuntime::NodeRuntime(NodeId id, Program& prog, net::Network& net,
                         const sim::CostModel& cm, Config cfg)
    : id_(id),
      prog_(&prog),
      net_(&net),
      cm_(&cm),
      cfg_(cfg),
      arena_(64u << 10),
      pool_(arena_, cfg.pooling),
      rng_(cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(id) + 1) {
  ABCL_CHECK_MSG(prog.finalized(), "Program must be finalized before nodes start");
}

NodeRuntime::~NodeRuntime() {
  for (ObjectHeader* o = live_head_; o != nullptr; o = o->live_next) {
    if (o->cls != nullptr && !o->needs_init && o->cls->destruct != nullptr) {
      o->cls->destruct(o->state());
    }
  }
  // Pooled memory dies with the arena; the slab allocator frees any
  // unpooled-mode blocks still outstanding.
}

// ----------------------------------------------------------------------------
// sim::NodeExec
// ----------------------------------------------------------------------------

bool NodeRuntime::runnable() const {
  return !sched_.empty() || net_->next_arrival(id_) <= clock_;
}

void NodeRuntime::advance_clock(sim::Instr t) {
  ABCL_DCHECK(t >= clock_);
  stats_.idle_instr += t - clock_;
  clock_ = t;
}

void NodeRuntime::step() {
  deliveries_this_quantum_ = 0;
  quantum_start_clock_ = clock_;
  ++quanta_run_;
  stats_.sched_depth.add(sched_.size());
  trace(sim::TraceEv::kQuantum, sched_.size());

  // Poll against the quantum-start clock, not the growing clock_: a packet
  // that arrives mid-quantum (while handlers charge instructions) is picked
  // up by a later quantum. This makes a quantum's inputs a pure function of
  // the pre-quantum state, which is what lets the host-parallel driver run
  // whole lookahead windows of quanta concurrently yet bit-identically.
  net::Packet pkt;
  bool dup = false;
  int handled = 0;
  while (handled < cfg_.max_packets_per_quantum &&
         net_->poll(id_, quantum_start_clock_, pkt, &dup)) {
    charge(cm_->recv_handler);
    if (dup) {
      // A retransmitted or network-duplicated copy the dedup window already
      // saw: the receiver still burns handler instructions recognizing it
      // (the real cost of at-least-once delivery) but must not dispatch —
      // and it contributes nothing to the delivery stats, which count
      // logical messages.
      trace(sim::TraceEv::kFaultDup, pkt.handler);
      ++handled;
      continue;
    }
    stats_.remote_recv += 1;
    // Send -> dispatch latency in simulated instrs: the wire plus however
    // long the packet sat deliverable in the receive queue. The dispatch
    // instant includes the just-charged handler cost, matching the paper's
    // "receiver instructions" accounting.
    auto cat = static_cast<int>(prog_->am().entry(pkt.handler).category);
    stats_.msg_latency[cat].add(static_cast<std::uint64_t>(clock_ - pkt.send_time));
    trace(sim::TraceEv::kRecvRemote, pkt.handler);
    if (pkt.retries != 0) trace(sim::TraceEv::kFaultRetry, pkt.retries);
    prog_->am().dispatch(pkt.handler, this, pkt);
    ++handled;
  }

  if (ObjectHeader* o = sched_.pop()) run_sched_item(o);

  if (cfg_.gossip_interval != 0 && quanta_run_ % cfg_.gossip_interval == 0) {
    gossip_load_now();
  }
}

// ----------------------------------------------------------------------------
// Local delivery and scheduling
// ----------------------------------------------------------------------------

Status NodeRuntime::deliver_local(ObjectHeader* o, const MsgView& m) {
  charge(cm_->lookup_call);
  ++deliveries_this_quantum_;

  if (cfg_.policy == SchedPolicy::kNaive) {
    naive_local_send(o, m);
    return Status::kDone;
  }

  if (call_depth_ >= cfg_.max_call_depth) {
    // Preemption of the direct-call cascade: the receiver is handled as if
    // it were active — buffer and round-trip the scheduling queue — so the
    // C++ stack stays bounded. FIFO per sender is preserved because the
    // object is switched to active mode (later sends buffer behind).
    if (o->is_idle_receiver()) {
      stats_.forced_buffer_depth += 1;
      queue_message(o, m);
      o->vftp = &o->cls->active;
      o->mode = Mode::kActive;
      charge(cm_->sched_enqueue);
      stats_.sched_enqueues += 1;
      sched_.push(o, SchedState::kQueuedNext);
      return Status::kDone;
    }
    if (o->mode == Mode::kWaiting && o->vftp->wait_site >= 0 &&
        o->vftp->entry(m.pattern) == &select_restore_entry) {
      stats_.forced_buffer_depth += 1;
      queue_message(o, m);
      if (o->sched_state == SchedState::kNone) {
        charge(cm_->sched_enqueue);
        stats_.sched_enqueues += 1;
        sched_.push(o, SchedState::kQueuedNext);
      }
      return Status::kDone;
    }
    // Other cases (queuing entries) do not recurse into user code.
  }

  ++call_depth_;
  Status s = o->vftp->entry(m.pattern)(*this, o, m);
  --call_depth_;
  return s;
}

Status NodeRuntime::dispatch_body(ObjectHeader* o, const MsgView& m) {
  if (o->needs_init) return lazy_init_entry(*this, o, m);
  return o->cls->dormant.entry(m.pattern)(*this, o, m);
}

void NodeRuntime::queue_message(ObjectHeader* o, const MsgView& m) {
  charge(cm_->frame_alloc + cm_->msg_store + cm_->mq_enqueue);
  MsgFrame* f = alloc_msg_frame();
  f->pattern = m.pattern;
  f->nargs = m.nargs;
  f->reply = m.reply;
  for (int i = 0; i < m.nargs; ++i) f->args[i] = m.args[i];
  o->mq.push_back(f);
}

void NodeRuntime::naive_local_send(ObjectHeader* o, const MsgView& m) {
  queue_message(o, m);
  bool should_sched = false;
  if (o->is_idle_receiver()) {
    should_sched = true;
  } else if (o->mode == Mode::kWaiting && o->vftp->wait_site >= 0) {
    const WaitSite& ws =
        *o->cls->wait_sites[static_cast<std::size_t>(o->vftp->wait_site)];
    should_sched = ws.find(m.pattern) != nullptr;
  }
  if (should_sched && o->sched_state == SchedState::kNone) {
    charge(cm_->sched_enqueue);
    stats_.sched_enqueues += 1;
    sched_.push(o, SchedState::kQueuedNext);
  }
}

void NodeRuntime::run_sched_item(ObjectHeader* o) {
  SchedState kind = o->sched_state;
  o->sched_state = SchedState::kNone;
  charge(cm_->sched_dispatch);
  stats_.sched_dispatches += 1;

  if (kind == SchedState::kQueuedResume) {
    ABCL_CHECK(o->mode == Mode::kWaiting && o->blocked_frame != nullptr);
    ++call_depth_;
    o->resume_entry(*this, o);
    --call_depth_;
    return;
  }

  ABCL_DCHECK(kind == SchedState::kQueuedNext);
  if (o->mode == Mode::kWaiting) {
    // A reply may have been delivered while this item was pending (hybrid
    // wait under the naive policy / at the depth bound): the box is full
    // and the object must resume through it.
    if (o->awaiting_box != nullptr &&
        o->awaiting_box->state == ReplyBox::State::kFull) {
      ++call_depth_;
      o->resume_entry(*this, o);
      --call_depth_;
      return;
    }
    // Selective-reception retry after a depth-forced buffer: scan for an
    // accepted message; reply waits are resumed by the reply box instead.
    if (o->vftp->wait_site < 0) return;
    const WaitSite& ws =
        *o->cls->wait_sites[static_cast<std::size_t>(o->vftp->wait_site)];
    MsgFrame* mf = o->mq.remove_first_if(
        [&](MsgFrame& f) { return ws.find(f.pattern) != nullptr; });
    if (mf == nullptr) return;
    const WaitSite::Accept* a = ws.find(mf->pattern);
    a->copy_in(o->blocked_frame, MsgView::of_frame(*mf));
    o->blocked_frame->pc = a->resume_pc;
    free_msg_frame(mf);
    stats_.local_to_waiting_hit += 1;
    ++call_depth_;
    o->resume_entry(*this, o);
    --call_depth_;
    return;
  }

  MsgFrame* mf = o->mq.pop_front();
  if (mf == nullptr) {
    if (o->mode == Mode::kActive) {
      o->vftp = o->needs_init ? &o->cls->lazy_init : &o->cls->dormant;
      o->mode = Mode::kDormant;
      maybe_retire(o);
    }
    return;
  }
  MsgView m = MsgView::of_frame(*mf);
  ++call_depth_;
  dispatch_body(o, m);
  --call_depth_;
  free_msg_frame(mf);
}

void NodeRuntime::method_epilogue(ObjectHeader* o) {
  if (!cm_->opt.elide_mq_check) charge(cm_->mq_check);
  if (!cm_->opt.elide_poll) charge(cm_->poll_remote);
  if (!o->mq.empty()) {
    if (o->sched_state == SchedState::kNone) {
      charge(cm_->sched_enqueue);
      stats_.sched_enqueues += 1;
      sched_.push(o, SchedState::kQueuedNext);
    }
    // VFTP stays the active (queuing) table until the queue drains.
  } else {
    if (!cm_->opt.elide_vftp_switch) charge(cm_->vftp_switch);
    o->vftp = o->needs_init ? &o->cls->lazy_init : &o->cls->dormant;
    o->mode = Mode::kDormant;
    maybe_retire(o);
  }
  charge(cm_->stack_return);
}

void NodeRuntime::commit_block(ObjectHeader* o, CtxFrameBase* hf, ResumeFn resume) {
  trace(sim::TraceEv::kBlock, static_cast<std::uint64_t>(block_reason_.kind));
  o->blocked_frame = hf;
  o->resume_entry = resume;
  switch (block_reason_.kind) {
    case BlockReason::Kind::kAwait: {
      stats_.blocks_await += 1;
      ReplyBox* b = block_reason_.box;
      ABCL_CHECK(b != nullptr && b->state == ReplyBox::State::kEmpty);
      b->state = ReplyBox::State::kWaiting;
      b->waiter = o;
      o->awaiting_box = b;
      o->vftp = &o->cls->active;  // all entries queue while awaiting a reply
      o->mode = Mode::kWaiting;
      break;
    }
    case BlockReason::Kind::kAwaitSelect: {
      stats_.blocks_await += 1;
      stats_.blocks_select += 1;
      ReplyBox* b = block_reason_.box;
      ABCL_CHECK(b != nullptr && b->state == ReplyBox::State::kEmpty);
      ABCL_CHECK(block_reason_.site >= 0 &&
                 static_cast<std::size_t>(block_reason_.site) <
                     o->cls->wait_sites.size());
      b->state = ReplyBox::State::kWaiting;
      b->waiter = o;
      o->awaiting_box = b;
      // Accepted patterns restore directly; everything else queues; the
      // reply resumes through the box — whichever comes first wins.
      o->vftp =
          &o->cls->wait_sites[static_cast<std::size_t>(block_reason_.site)]->vft;
      o->mode = Mode::kWaiting;
      break;
    }
    case BlockReason::Kind::kSelect: {
      stats_.blocks_select += 1;
      ABCL_CHECK(block_reason_.site >= 0 &&
                 static_cast<std::size_t>(block_reason_.site) <
                     o->cls->wait_sites.size());
      o->vftp =
          &o->cls->wait_sites[static_cast<std::size_t>(block_reason_.site)]->vft;
      o->mode = Mode::kWaiting;
      break;
    }
    case BlockReason::Kind::kYield: {
      stats_.yields += 1;
      o->vftp = &o->cls->active;
      o->mode = Mode::kWaiting;
      charge(cm_->sched_enqueue);
      stats_.sched_enqueues += 1;
      sched_.push(o, SchedState::kQueuedResume);
      break;
    }
    case BlockReason::Kind::kNone:
      ABCL_CHECK_MSG(false, "method returned kBlocked without a block reason");
  }
  block_reason_ = {};
}

void NodeRuntime::resume_object(ObjectHeader* o) {
  ABCL_CHECK(o->mode == Mode::kWaiting && o->blocked_frame != nullptr);
  if (cfg_.policy == SchedPolicy::kStack && call_depth_ < cfg_.max_call_depth) {
    ++call_depth_;
    o->resume_entry(*this, o);
    --call_depth_;
  } else if (o->sched_state == SchedState::kNone) {
    charge(cm_->sched_enqueue);
    stats_.sched_enqueues += 1;
    sched_.push(o, SchedState::kQueuedResume);
  }
  // else: a kQueuedNext item is already pending for this object; it will
  // observe the (now full) reply box and resume through it.
}

// ----------------------------------------------------------------------------
// Blocking protocol
// ----------------------------------------------------------------------------

Status NodeRuntime::block_await(const NowCall& c) {
  ABCL_CHECK(c.box != nullptr);
  block_reason_ = BlockReason{BlockReason::Kind::kAwait, c.box, -1};
  return Status::kBlocked;
}

Status NodeRuntime::block_select(std::int32_t site) {
  block_reason_ = BlockReason{BlockReason::Kind::kSelect, nullptr, site};
  return Status::kBlocked;
}

Status NodeRuntime::block_await_select(const NowCall& c, std::int32_t site) {
  ABCL_CHECK(c.box != nullptr);
  block_reason_ = BlockReason{BlockReason::Kind::kAwaitSelect, c.box, site};
  return Status::kBlocked;
}

Status NodeRuntime::block_yield() {
  block_reason_ = BlockReason{BlockReason::Kind::kYield, nullptr, -1};
  return Status::kBlocked;
}

std::uint16_t NodeRuntime::select_try(std::int32_t site, void* frame) {
  ObjectHeader* o = cur_obj_;
  ABCL_CHECK(o != nullptr && site >= 0 &&
             static_cast<std::size_t>(site) < o->cls->wait_sites.size());
  const WaitSite& ws = *o->cls->wait_sites[static_cast<std::size_t>(site)];
  std::uint32_t scanned = 0;
  MsgFrame* mf = o->mq.remove_first_if([&](MsgFrame& f) {
    ++scanned;
    return ws.find(f.pattern) != nullptr;
  });
  charge(static_cast<sim::Instr>(scanned) * cm_->select_scan_per_msg);
  if (mf == nullptr) return kPcBlocked;
  const WaitSite::Accept* a = ws.find(mf->pattern);
  a->copy_in(frame, MsgView::of_frame(*mf));
  free_msg_frame(mf);
  return a->resume_pc;
}

// ----------------------------------------------------------------------------
// Sends and replies
// ----------------------------------------------------------------------------

void NodeRuntime::send_past(MailAddr t, PatternId p, const Word* args, int nargs) {
  ABCL_CHECK(!t.is_nil());
  if (!cm_->opt.elide_locality_check) charge(cm_->locality_check);
  if (t.node == id_) {
    stats_.local_sends += 1;
    if (t.ptr->is_idle_receiver()) {
      stats_.local_to_dormant += 1;
    } else if (t.ptr->mode == Mode::kActive) {
      stats_.local_to_active += 1;
    }
    MsgView m{p, static_cast<std::uint8_t>(nargs), args, kNilReply};
    deliver_local(t.ptr, m);
  } else {
    remote_send(t, p, args, nargs, kNilReply);
  }
}

NowCall NodeRuntime::send_now(MailAddr t, PatternId p, const Word* args,
                              int nargs) {
  ABCL_CHECK(!t.is_nil());
  charge(cm_->reply_box_alloc);
  ReplyBox* box = alloc_reply_box();
  ReplyDest rd{id_, box};
  if (!cm_->opt.elide_locality_check) charge(cm_->locality_check);
  if (t.node == id_) {
    stats_.local_sends += 1;
    if (t.ptr->is_idle_receiver()) {
      stats_.local_to_dormant += 1;
    } else if (t.ptr->mode == Mode::kActive) {
      stats_.local_to_active += 1;
    }
    MsgView m{p, static_cast<std::uint8_t>(nargs), args, rd};
    deliver_local(t.ptr, m);
  } else {
    remote_send(t, p, args, nargs, rd);
  }
  return NowCall{box};
}

void NodeRuntime::remote_send(MailAddr t, PatternId p, const Word* args,
                              int nargs, const ReplyDest& rd) {
  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  trace(sim::TraceEv::kSendRemote, p);
  net::Packet pkt;
  pkt.handler = prog_->h_obj_msg(p);
  pkt.src = id_;
  pkt.dst = t.node;
  pkt.send_time = clock_;
  pkt.push(t.word_ptr());
  pkt.push(rd.word_node());
  pkt.push(rd.word_box());
  for (int i = 0; i < nargs; ++i) pkt.push(args[i]);
  net_->send(std::move(pkt), net::AmCategory::kObjectMessage);
}

void NodeRuntime::reply(const ReplyDest& rd, const Word* vals, int n) {
  ABCL_CHECK(!rd.is_nil());
  ABCL_CHECK(n >= 0 && n <= kMaxReplyWords);
  stats_.replies_sent += 1;
  if (rd.node == id_) {
    deliver_reply_local(rd.box, vals, n);
    return;
  }
  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  net::Packet pkt;
  pkt.handler = prog_->h_reply();
  pkt.src = id_;
  pkt.dst = rd.node;
  pkt.send_time = clock_;
  pkt.push(rd.word_box());
  for (int i = 0; i < n; ++i) pkt.push(vals[i]);
  net_->send(std::move(pkt), net::AmCategory::kObjectMessage);
}

void NodeRuntime::deliver_reply_local(ReplyBox* b, const Word* vals, int n) {
  ABCL_CHECK(b != nullptr);
  switch (b->state) {
    case ReplyBox::State::kEmpty:
      b->store(vals, n);
      b->state = ReplyBox::State::kFull;
      break;
    case ReplyBox::State::kWaiting: {
      ObjectHeader* o = b->waiter;
      b->waiter = nullptr;
      b->store(vals, n);
      b->state = ReplyBox::State::kFull;
      resume_object(o);
      break;
    }
    case ReplyBox::State::kFull:
      ABCL_CHECK_MSG(false, "double reply to a now-type message");
  }
}

bool NodeRuntime::reply_ready(const NowCall& c) {
  if (c.box == nullptr) return true;  // local-create fast path of CreateCall
  charge(cm_->reply_check);
  if (c.box->state == ReplyBox::State::kFull) {
    stats_.await_fast_hits += 1;
    return true;
  }
  return false;
}

Word NodeRuntime::peek_reply(const NowCall& c, int i) const {
  ABCL_CHECK(c.box != nullptr && c.box->state == ReplyBox::State::kFull);
  ABCL_CHECK(i >= 0 && i < c.box->nvals);
  return c.box->vals[i];
}

Word NodeRuntime::take_reply(NowCall& c) {
  ABCL_CHECK(c.box != nullptr && c.box->state == ReplyBox::State::kFull);
  Word v = c.box->nvals > 0 ? c.box->vals[0] : 0;
  free_reply_box(c.box);
  c.box = nullptr;
  return v;
}

// ----------------------------------------------------------------------------
// Object creation
// ----------------------------------------------------------------------------

ObjectHeader* NodeRuntime::alloc_object(const ClassInfo& cls) {
  trace(sim::TraceEv::kCreate, cls.id);
  std::size_t bytes = object_alloc_bytes(cls.state_bytes);
  auto szcls = static_cast<std::uint16_t>(util::SlabAllocator::size_class(bytes));
  void* mem = pool_.allocate(bytes);
  auto* o = new (mem) ObjectHeader();
  o->cls = &cls;
  o->home = id_;
  o->mode = Mode::kDormant;
  o->needs_init = true;
  o->vftp = &cls.lazy_init;
  o->alloc_size_class = szcls;
  o->live_next = live_head_;
  o->live_pprev = &live_head_;
  if (live_head_ != nullptr) live_head_->live_pprev = &o->live_next;
  live_head_ = o;
  ++live_objects_;
  ++total_created_;
  return o;
}

ObjectHeader* NodeRuntime::format_chunk(std::uint16_t size_class) {
  void* mem = pool_.allocate(util::SlabAllocator::class_bytes(size_class));
  auto* o = new (mem) ObjectHeader();
  o->cls = nullptr;
  o->home = id_;
  o->mode = Mode::kFault;
  o->needs_init = true;
  o->vftp = &prog_->fault_vft();
  o->alloc_size_class = size_class;
  o->live_next = live_head_;
  o->live_pprev = &live_head_;
  if (live_head_ != nullptr) live_head_->live_pprev = &o->live_next;
  live_head_ = o;
  ++live_objects_;
  ++total_created_;
  return o;
}

void NodeRuntime::destroy_object(ObjectHeader* o) {
  if (o->cls != nullptr && !o->needs_init && o->cls->destruct != nullptr) {
    o->cls->destruct(o->state());
  }
  while (MsgFrame* f = o->mq.pop_front()) free_msg_frame(f);
  if (o->pending_init != nullptr) free_msg_frame(o->pending_init);
  // Unlink from the live list.
  *o->live_pprev = o->live_next;
  if (o->live_next != nullptr) o->live_next->live_pprev = o->live_pprev;
  std::uint16_t szcls = o->alloc_size_class;
  o->~ObjectHeader();
  pool_.deallocate(o, util::SlabAllocator::class_bytes(szcls));
  --live_objects_;
}

void NodeRuntime::maybe_retire(ObjectHeader* o) {
  if (!o->retired) return;
  if (o->mode != Mode::kDormant || !o->mq.empty() ||
      o->blocked_frame != nullptr || o->sched_state != SchedState::kNone) {
    return;
  }
  destroy_object(o);
}

void NodeRuntime::retire_self() {
  ABCL_CHECK(cur_obj_ != nullptr);
  cur_obj_->retired = true;
}

MailAddr NodeRuntime::create_local(const ClassInfo& cls, const Word* args,
                                   int nargs) {
  charge(cm_->create_local);
  stats_.creations_local += 1;
  ObjectHeader* o = alloc_object(cls);
  if (nargs > 0) {
    MsgFrame* f = alloc_msg_frame();
    f->pattern = 0;
    f->nargs = static_cast<std::uint8_t>(nargs);
    f->reply = kNilReply;
    for (int i = 0; i < nargs; ++i) f->args[i] = args[i];
    o->pending_init = f;
  }
  return MailAddr{id_, o};
}

CreateCall NodeRuntime::remote_create_begin(const ClassInfo& cls, NodeId target,
                                            const Word* args, int nargs) {
  if (target == id_) return CreateCall{create_local(cls, args, nargs), {}};
  ABCL_CHECK(target >= 0 && target < num_nodes());
  charge(cm_->create_remote_local_part);
  stats_.creations_remote += 1;
  std::uint16_t szcls = object_size_class(cls);
  if (auto chunk = stock_try_pop(target, szcls)) {
    stats_.chunk_stock_hits += 1;
    send_create_packet(cls, target, *chunk, args, nargs);
    return CreateCall{MailAddr{target, *chunk}, {}};
  }
  // Stock empty: split-phase fallback — request a chunk and await it.
  stats_.chunk_stock_misses += 1;
  charge(cm_->reply_box_alloc);
  ReplyBox* b = alloc_reply_box();
  auto* pc = static_cast<PendingCreate*>(pool_.allocate(sizeof(PendingCreate)));
  new (pc) PendingCreate();
  pc->cls = &cls;
  pc->target = target;
  pc->nargs = static_cast<std::uint8_t>(nargs);
  for (int i = 0; i < nargs; ++i) pc->args[i] = args[i];
  b->pending_create = pc;

  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  net::Packet pkt;
  pkt.handler = prog_->h_alloc_request();
  pkt.src = id_;
  pkt.dst = target;
  pkt.send_time = clock_;
  pkt.push(szcls);
  pkt.push(reinterpret_cast<Word>(b));
  net_->send(std::move(pkt), net::AmCategory::kCreateRequest);
  return CreateCall{kNilAddr, NowCall{b}};
}

MailAddr NodeRuntime::remote_create_finish(CreateCall& c) {
  if (c.call.box != nullptr) {
    ReplyBox* b = c.call.box;
    ABCL_CHECK(b->state == ReplyBox::State::kFull);
    auto* pc = static_cast<PendingCreate*>(b->pending_create);
    ABCL_CHECK(pc != nullptr);
    auto* chunk = reinterpret_cast<ObjectHeader*>(b->vals[0]);
    send_create_packet(*pc->cls, pc->target, chunk, pc->args, pc->nargs);
    c.addr = MailAddr{pc->target, chunk};
    pc->~PendingCreate();
    pool_.deallocate(pc, sizeof(PendingCreate));
    free_reply_box(b);
    c.call.box = nullptr;
  }
  return c.addr;
}

void NodeRuntime::send_create_packet(const ClassInfo& cls, NodeId target,
                                     ObjectHeader* chunk, const Word* args,
                                     int nargs) {
  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  // Only ask the target to replenish while on-hand plus in-flight chunks
  // sit below the steady-state target; an unconditional request overshoots
  // without bound once a drained stock bursts back up. The request rides in
  // bit 0 of the chunk address (pool chunks are at least 8-byte aligned),
  // so the packet layout is unchanged.
  std::uint16_t szcls = chunk->alloc_size_class;
  const bool want_replenish =
      !cfg_.disable_replenish &&
      stock_.planned_depth(target, szcls) <
          static_cast<std::size_t>(cfg_.chunk_stock_target);
  if (want_replenish) stock_.note_replenish_requested(target, szcls);
  net::Packet pkt;
  pkt.handler = prog_->h_create(cls.id);
  pkt.src = id_;
  pkt.dst = target;
  pkt.send_time = clock_;
  pkt.push(reinterpret_cast<Word>(chunk) | (want_replenish ? 1 : 0));
  for (int i = 0; i < nargs; ++i) pkt.push(args[i]);
  net_->send(std::move(pkt), net::AmCategory::kCreateRequest);
}

bool NodeRuntime::inline_guard(MailAddr target, const ClassInfo& cls) {
  charge(cm_->locality_check + cm_->inline_mode_check);
  return target.node == id_ && target.ptr->vftp == &cls.dormant;
}

// ----------------------------------------------------------------------------
// Pools
// ----------------------------------------------------------------------------

MsgFrame* NodeRuntime::alloc_msg_frame() {
  auto* f = static_cast<MsgFrame*>(pool_.allocate(sizeof(MsgFrame)));
  return new (f) MsgFrame();
}

void NodeRuntime::free_msg_frame(MsgFrame* f) {
  pool_.deallocate(f, sizeof(MsgFrame));
}

ReplyBox* NodeRuntime::alloc_reply_box() {
  auto* b = static_cast<ReplyBox*>(pool_.allocate(sizeof(ReplyBox)));
  return new (b) ReplyBox();
}

void NodeRuntime::free_reply_box(ReplyBox* b) {
  pool_.deallocate(b, sizeof(ReplyBox));
}

// ----------------------------------------------------------------------------
// Chunk stock
// ----------------------------------------------------------------------------

std::optional<ObjectHeader*> NodeRuntime::stock_try_pop(NodeId peer,
                                                        std::uint16_t szcls) {
  return stock_.try_pop(peer, szcls);
}

void NodeRuntime::stock_push(NodeId peer, std::uint16_t szcls,
                             ObjectHeader* chunk) {
  stock_.push(peer, szcls, chunk);
}

std::size_t NodeRuntime::stock_depth(NodeId peer, std::uint16_t szcls) const {
  return stock_.depth(peer, szcls);
}

void NodeRuntime::seed_stock_from(NodeRuntime& peer_rt, const ClassInfo& cls,
                                  int depth) {
  ABCL_CHECK(&peer_rt != this);
  std::uint16_t szcls = object_size_class(cls);
  for (int i = 0; i < depth; ++i) {
    stock_push(peer_rt.node_id(), szcls, peer_rt.format_chunk(szcls));
  }
}

// ----------------------------------------------------------------------------
// Services (Category 4)
// ----------------------------------------------------------------------------

void NodeRuntime::gossip_load_now() {
  auto load = static_cast<Word>(sched_.size());
  for (NodeId nb : net_->topology().neighbors(id_)) {
    charge(cm_->send_setup);
    net::Packet pkt;
    pkt.handler = prog_->h_load_gossip();
    pkt.src = id_;
    pkt.dst = nb;
    pkt.send_time = clock_;
    pkt.push(load);
    net_->send(std::move(pkt), net::AmCategory::kService);
  }
}

void NodeRuntime::boot(const std::function<void(NodeRuntime&)>& fn) {
  deliveries_this_quantum_ = 0;
  quantum_start_clock_ = clock_;
  fn(*this);
}

// ----------------------------------------------------------------------------
// Active-message handler bodies
// ----------------------------------------------------------------------------

void NodeRuntime::on_obj_msg(const net::Packet& pkt) {
  PatternId p = prog_->pattern_of_handler(pkt.handler);
  auto* o = reinterpret_cast<ObjectHeader*>(pkt.at(0));
  ABCL_CHECK_MSG(o->home == id_, "object message routed to the wrong node");
  ReplyDest rd = ReplyDest::from_words(pkt.at(1), pkt.at(2));
  MsgView m{p, static_cast<std::uint8_t>(pkt.nwords - 3), &pkt.payload[3], rd};
  deliver_local(o, m);
}

void NodeRuntime::on_reply(const net::Packet& pkt) {
  auto* b = reinterpret_cast<ReplyBox*>(pkt.at(0));
  deliver_reply_local(b, &pkt.payload[1], pkt.nwords - 1);
}

void NodeRuntime::on_create(const net::Packet& pkt) {
  const ClassInfo& cls = prog_->cls(prog_->class_of_handler(pkt.handler));
  const bool want_replenish = (pkt.at(0) & 1) != 0;
  auto* chunk = reinterpret_cast<ObjectHeader*>(pkt.at(0) & ~Word{1});
  ABCL_CHECK(chunk->home == id_);
  ABCL_CHECK_MSG(chunk->mode == Mode::kFault,
                 "creation request for an already-installed chunk");
  ABCL_CHECK(chunk->alloc_size_class == object_size_class(cls));
  charge(cm_->create_remote_install);

  chunk->cls = &cls;
  MsgView ctor{0, static_cast<std::uint8_t>(pkt.nwords - 1), &pkt.payload[1],
               kNilReply};
  cls.construct(chunk->state(), ctor);
  chunk->needs_init = false;
  if (!chunk->mq.empty()) {
    // Messages raced ahead of the creation request and were fault-queued;
    // process them in arrival order through the scheduling queue.
    chunk->vftp = &cls.active;
    chunk->mode = Mode::kActive;
    charge(cm_->sched_enqueue);
    stats_.sched_enqueues += 1;
    sched_.push(chunk, SchedState::kQueuedNext);
  } else {
    chunk->vftp = &cls.dormant;
    chunk->mode = Mode::kDormant;
  }

  if (cfg_.disable_replenish || !want_replenish) return;

  // Replenish the requester's stock (Category 3).
  ObjectHeader* fresh = format_chunk(chunk->alloc_size_class);
  charge(cm_->send_setup);
  net::Packet rep;
  rep.handler = prog_->h_replenish(chunk->alloc_size_class);
  rep.src = id_;
  rep.dst = pkt.src;
  rep.send_time = clock_;
  rep.push(reinterpret_cast<Word>(fresh));
  net_->send(std::move(rep), net::AmCategory::kAllocReply);
}

void NodeRuntime::on_alloc_request(const net::Packet& pkt) {
  auto szcls = static_cast<std::uint16_t>(pkt.at(0));
  ObjectHeader* fresh = format_chunk(szcls);
  Word v = reinterpret_cast<Word>(fresh);
  reply(ReplyDest{pkt.src, reinterpret_cast<ReplyBox*>(pkt.at(1))}, &v, 1);
}

void NodeRuntime::on_replenish(const net::Packet& pkt) {
  charge(cm_->chunk_replenish);
  std::uint16_t szcls = prog_->size_class_of_handler(pkt.handler);
  stock_.note_replenish_arrived(pkt.src, szcls);
  stock_push(pkt.src, szcls, reinterpret_cast<ObjectHeader*>(pkt.at(0)));
}

void NodeRuntime::on_load_gossip(const net::Packet& pkt) {
  note_peer_load(pkt.src, static_cast<std::uint32_t>(pkt.at(0)));
}

// ----------------------------------------------------------------------------
// Builtin handler registration (called from Program::finalize)
// ----------------------------------------------------------------------------

namespace {

template <void (NodeRuntime::*Member)(const net::Packet&)>
void trampoline(void* ctx, const net::Packet& pkt) {
  (static_cast<NodeRuntime*>(ctx)->*Member)(pkt);
}

}  // namespace

void register_builtin_handlers(Program& prog) {
  auto& am = prog.am_;

  // Category 1: one specialized handler per message pattern.
  for (std::size_t p = 0; p < prog.patterns_.size(); ++p) {
    net::HandlerId id =
        am.register_handler("msg:" + prog.patterns_.info(static_cast<PatternId>(p)).name,
                            &trampoline<&NodeRuntime::on_obj_msg>,
                            net::AmCategory::kObjectMessage);
    if (p == 0) prog.h_obj_msg_base_ = id;
  }

  prog.h_reply_ = am.register_handler("reply", &trampoline<&NodeRuntime::on_reply>,
                                      net::AmCategory::kObjectMessage);

  // Category 2: one handler per class.
  for (std::size_t c = 0; c < prog.classes_.size(); ++c) {
    net::HandlerId id = am.register_handler(
        "create:" + prog.classes_[c]->name, &trampoline<&NodeRuntime::on_create>,
        net::AmCategory::kCreateRequest);
    if (c == 0) prog.h_create_base_ = id;
  }

  prog.h_alloc_request_ =
      am.register_handler("alloc-request", &trampoline<&NodeRuntime::on_alloc_request>,
                          net::AmCategory::kCreateRequest);

  // Category 3: one handler per chunk size class.
  for (std::size_t s = 0; s < util::SlabAllocator::kNumClasses; ++s) {
    net::HandlerId id = am.register_handler(
        "replenish:" + std::to_string(util::SlabAllocator::class_bytes(s)) + "B",
        &trampoline<&NodeRuntime::on_replenish>, net::AmCategory::kAllocReply);
    if (s == 0) prog.h_replenish_base_ = id;
  }

  // Category 4: services.
  prog.h_load_gossip_ =
      am.register_handler("load-gossip", &trampoline<&NodeRuntime::on_load_gossip>,
                          net::AmCategory::kService);
}

}  // namespace abcl::core
