#include "core/node_runtime.hpp"

#include <algorithm>
#include <cstring>

namespace abcl::core {

namespace {

std::uint16_t object_size_class(const ClassInfo& cls) {
  return static_cast<std::uint16_t>(
      util::SlabAllocator::size_class(object_alloc_bytes(cls.state_bytes)));
}

}  // namespace

NodeRuntime::NodeRuntime(NodeId id, Program& prog, net::Network& net,
                         const sim::CostModel& cm, Config cfg)
    : id_(id),
      prog_(&prog),
      net_(&net),
      cm_(&cm),
      cfg_(cfg),
      arena_(64u << 10, cfg.reserved_arena ? cfg.arena_base : 0),
      pool_(arena_, cfg.pooling),
      rng_(cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(id) + 1) {
  ABCL_CHECK_MSG(prog.finalized(), "Program must be finalized before nodes start");
}

NodeRuntime::~NodeRuntime() {
  for (ObjectHeader* o = live_head_; o != nullptr; o = o->live_next) {
    if (o->cls != nullptr && !o->needs_init && o->cls->destruct != nullptr) {
      o->cls->destruct(o->state());
    }
  }
  // Pooled memory dies with the arena; the slab allocator frees any
  // unpooled-mode blocks still outstanding.
}

// ----------------------------------------------------------------------------
// sim::NodeExec
// ----------------------------------------------------------------------------

bool NodeRuntime::runnable() const {
  return !sched_.empty() || net_->next_arrival(id_) <= clock_;
}

void NodeRuntime::advance_clock(sim::Instr t) {
  ABCL_DCHECK(t >= clock_);
  stats_.idle_instr += t - clock_;
  clock_ = t;
}

void NodeRuntime::step() {
  deliveries_this_quantum_ = 0;
  quantum_start_clock_ = clock_;
  ++quanta_run_;
  stats_.sched_depth.add(sched_.size());
  trace(sim::TraceEv::kQuantum, sched_.size());

  // Poll against the quantum-start clock, not the growing clock_: a packet
  // that arrives mid-quantum (while handlers charge instructions) is picked
  // up by a later quantum. This makes a quantum's inputs a pure function of
  // the pre-quantum state, which is what lets the host-parallel driver run
  // whole lookahead windows of quanta concurrently yet bit-identically.
  net::Packet pkt;
  bool dup = false;
  int handled = 0;
  while (handled < cfg_.max_packets_per_quantum &&
         net_->poll(id_, quantum_start_clock_, pkt, &dup)) {
    charge(cm_->recv_handler);
    if (dup) {
      // A retransmitted or network-duplicated copy the dedup window already
      // saw: the receiver still burns handler instructions recognizing it
      // (the real cost of at-least-once delivery) but must not dispatch —
      // and it contributes nothing to the delivery stats, which count
      // logical messages.
      trace(sim::TraceEv::kFaultDup, pkt.handler);
      ++handled;
      continue;
    }
    stats_.remote_recv += 1;
    // Send -> dispatch latency in simulated instrs: the wire plus however
    // long the packet sat deliverable in the receive queue. The dispatch
    // instant includes the just-charged handler cost, matching the paper's
    // "receiver instructions" accounting.
    auto cat = static_cast<int>(prog_->am().entry(pkt.handler).category);
    stats_.msg_latency[cat].add(static_cast<std::uint64_t>(clock_ - pkt.send_time));
    trace(sim::TraceEv::kRecvRemote, pkt.handler);
    if (pkt.retries != 0) trace(sim::TraceEv::kFaultRetry, pkt.retries);
    prog_->am().dispatch(pkt.handler, this, pkt);
    ++handled;
  }

  // Shed check before the dispatch: the decision reads the run-queue depth
  // the quantum started with (pure function of pre-quantum state, like the
  // poll loop above).
  if (cfg_.migration.enabled) maybe_shed();

  if (ObjectHeader* o = sched_.pop()) run_sched_item(o);

  if (cfg_.gossip_interval != 0 && quanta_run_ % cfg_.gossip_interval == 0) {
    gossip_load_now();
  }
}

// ----------------------------------------------------------------------------
// Local delivery and scheduling
// ----------------------------------------------------------------------------

Status NodeRuntime::deliver_local(ObjectHeader* o, const MsgView& m) {
  charge(cm_->lookup_call);
  ++deliveries_this_quantum_;

  // Migration stubs intercept before any dispatch: a forwarding stub
  // bounces the message toward the object's new home (the loop walks local
  // chains — an object that migrated away and later back through here), an
  // in-transit stub buffers it until kMigrateDone flushes the inbox.
  while (o->mode == Mode::kForwarding) {
    auto it = stubs_.find(o);
    ABCL_CHECK(it != stubs_.end());
    stats_.migration_forwards += 1;
    trace(sim::TraceEv::kForward, m.pattern);
    const MailAddr fwd = it->second.fwd;
    if (fwd.node == id_) {
      o = fwd.ptr;
      continue;
    }
    remote_send(fwd, m.pattern, m.args, m.nargs, m.reply);
    return Status::kDone;
  }
  if (o->mode == Mode::kMigrating) {
    queue_message(o, m);
    return Status::kDone;
  }

  if (cfg_.policy == SchedPolicy::kNaive) {
    naive_local_send(o, m);
    return Status::kDone;
  }

  if (call_depth_ >= cfg_.max_call_depth) {
    // Preemption of the direct-call cascade: the receiver is handled as if
    // it were active — buffer and round-trip the scheduling queue — so the
    // C++ stack stays bounded. FIFO per sender is preserved because the
    // object is switched to active mode (later sends buffer behind).
    if (o->is_idle_receiver()) {
      stats_.forced_buffer_depth += 1;
      queue_message(o, m);
      o->vftp = &o->cls->active;
      o->mode = Mode::kActive;
      charge(cm_->sched_enqueue);
      stats_.sched_enqueues += 1;
      sched_.push(o, SchedState::kQueuedNext);
      return Status::kDone;
    }
    if (o->mode == Mode::kWaiting && o->vftp->wait_site >= 0 &&
        o->vftp->entry(m.pattern) == &select_restore_entry) {
      stats_.forced_buffer_depth += 1;
      queue_message(o, m);
      if (o->sched_state == SchedState::kNone) {
        charge(cm_->sched_enqueue);
        stats_.sched_enqueues += 1;
        sched_.push(o, SchedState::kQueuedNext);
      }
      return Status::kDone;
    }
    // Other cases (queuing entries) do not recurse into user code.
  }

  ++call_depth_;
  Status s = o->vftp->entry(m.pattern)(*this, o, m);
  --call_depth_;
  return s;
}

Status NodeRuntime::dispatch_body(ObjectHeader* o, const MsgView& m) {
  if (o->needs_init) return lazy_init_entry(*this, o, m);
  return o->cls->dormant.entry(m.pattern)(*this, o, m);
}

void NodeRuntime::queue_message(ObjectHeader* o, const MsgView& m) {
  charge(cm_->frame_alloc + cm_->msg_store + cm_->mq_enqueue);
  MsgFrame* f = alloc_msg_frame();
  f->pattern = m.pattern;
  f->nargs = m.nargs;
  f->reply = m.reply;
  for (int i = 0; i < m.nargs; ++i) f->args[i] = m.args[i];
  o->mq.push_back(f);
}

void NodeRuntime::naive_local_send(ObjectHeader* o, const MsgView& m) {
  queue_message(o, m);
  bool should_sched = false;
  if (o->is_idle_receiver()) {
    should_sched = true;
  } else if (o->mode == Mode::kWaiting && o->vftp->wait_site >= 0) {
    const WaitSite& ws =
        *o->cls->wait_sites[static_cast<std::size_t>(o->vftp->wait_site)];
    should_sched = ws.find(m.pattern) != nullptr;
  }
  if (should_sched && o->sched_state == SchedState::kNone) {
    charge(cm_->sched_enqueue);
    stats_.sched_enqueues += 1;
    sched_.push(o, SchedState::kQueuedNext);
  }
}

void NodeRuntime::run_sched_item(ObjectHeader* o) {
  SchedState kind = o->sched_state;
  o->sched_state = SchedState::kNone;
  charge(cm_->sched_dispatch);
  stats_.sched_dispatches += 1;

  if (kind == SchedState::kQueuedResume) {
    ABCL_CHECK(o->mode == Mode::kWaiting && o->blocked_frame != nullptr);
    ++call_depth_;
    o->resume_entry(*this, o);
    --call_depth_;
    return;
  }

  ABCL_DCHECK(kind == SchedState::kQueuedNext);
  if (o->mode == Mode::kWaiting) {
    // A reply may have been delivered while this item was pending (hybrid
    // wait under the naive policy / at the depth bound): the box is full
    // and the object must resume through it.
    if (o->awaiting_box != nullptr &&
        o->awaiting_box->state == ReplyBox::State::kFull) {
      ++call_depth_;
      o->resume_entry(*this, o);
      --call_depth_;
      return;
    }
    // Selective-reception retry after a depth-forced buffer: scan for an
    // accepted message; reply waits are resumed by the reply box instead.
    if (o->vftp->wait_site < 0) return;
    const WaitSite& ws =
        *o->cls->wait_sites[static_cast<std::size_t>(o->vftp->wait_site)];
    MsgFrame* mf = o->mq.remove_first_if(
        [&](MsgFrame& f) { return ws.find(f.pattern) != nullptr; });
    if (mf == nullptr) return;
    const WaitSite::Accept* a = ws.find(mf->pattern);
    a->copy_in(o->blocked_frame, MsgView::of_frame(*mf));
    o->blocked_frame->pc = a->resume_pc;
    free_msg_frame(mf);
    stats_.local_to_waiting_hit += 1;
    ++call_depth_;
    o->resume_entry(*this, o);
    --call_depth_;
    return;
  }

  MsgFrame* mf = o->mq.pop_front();
  if (mf == nullptr) {
    if (o->mode == Mode::kActive) {
      o->vftp = o->needs_init ? &o->cls->lazy_init : &o->cls->dormant;
      o->mode = Mode::kDormant;
      maybe_retire(o);
    }
    return;
  }
  MsgView m = MsgView::of_frame(*mf);
  ++call_depth_;
  dispatch_body(o, m);
  --call_depth_;
  free_msg_frame(mf);
}

void NodeRuntime::method_epilogue(ObjectHeader* o) {
  if (!cm_->opt.elide_mq_check) charge(cm_->mq_check);
  if (!cm_->opt.elide_poll) charge(cm_->poll_remote);
  if (!o->mq.empty()) {
    if (o->sched_state == SchedState::kNone) {
      charge(cm_->sched_enqueue);
      stats_.sched_enqueues += 1;
      sched_.push(o, SchedState::kQueuedNext);
    }
    // VFTP stays the active (queuing) table until the queue drains.
  } else {
    if (!cm_->opt.elide_vftp_switch) charge(cm_->vftp_switch);
    o->vftp = o->needs_init ? &o->cls->lazy_init : &o->cls->dormant;
    o->mode = Mode::kDormant;
    maybe_retire(o);
  }
  charge(cm_->stack_return);
}

void NodeRuntime::commit_block(ObjectHeader* o, CtxFrameBase* hf, ResumeFn resume) {
  trace(sim::TraceEv::kBlock, static_cast<std::uint64_t>(block_reason_.kind));
  o->blocked_frame = hf;
  o->resume_entry = resume;
  switch (block_reason_.kind) {
    case BlockReason::Kind::kAwait: {
      stats_.blocks_await += 1;
      ReplyBox* b = block_reason_.box;
      ABCL_CHECK(b != nullptr && b->state == ReplyBox::State::kEmpty);
      b->state = ReplyBox::State::kWaiting;
      b->waiter = o;
      o->awaiting_box = b;
      o->vftp = &o->cls->active;  // all entries queue while awaiting a reply
      o->mode = Mode::kWaiting;
      break;
    }
    case BlockReason::Kind::kAwaitSelect: {
      stats_.blocks_await += 1;
      stats_.blocks_select += 1;
      ReplyBox* b = block_reason_.box;
      ABCL_CHECK(b != nullptr && b->state == ReplyBox::State::kEmpty);
      ABCL_CHECK(block_reason_.site >= 0 &&
                 static_cast<std::size_t>(block_reason_.site) <
                     o->cls->wait_sites.size());
      b->state = ReplyBox::State::kWaiting;
      b->waiter = o;
      o->awaiting_box = b;
      // Accepted patterns restore directly; everything else queues; the
      // reply resumes through the box — whichever comes first wins.
      o->vftp =
          &o->cls->wait_sites[static_cast<std::size_t>(block_reason_.site)]->vft;
      o->mode = Mode::kWaiting;
      break;
    }
    case BlockReason::Kind::kSelect: {
      stats_.blocks_select += 1;
      ABCL_CHECK(block_reason_.site >= 0 &&
                 static_cast<std::size_t>(block_reason_.site) <
                     o->cls->wait_sites.size());
      o->vftp =
          &o->cls->wait_sites[static_cast<std::size_t>(block_reason_.site)]->vft;
      o->mode = Mode::kWaiting;
      break;
    }
    case BlockReason::Kind::kYield: {
      stats_.yields += 1;
      o->vftp = &o->cls->active;
      o->mode = Mode::kWaiting;
      charge(cm_->sched_enqueue);
      stats_.sched_enqueues += 1;
      sched_.push(o, SchedState::kQueuedResume);
      break;
    }
    case BlockReason::Kind::kNone:
      ABCL_CHECK_MSG(false, "method returned kBlocked without a block reason");
  }
  block_reason_ = {};
}

void NodeRuntime::resume_object(ObjectHeader* o) {
  ABCL_CHECK(o->mode == Mode::kWaiting && o->blocked_frame != nullptr);
  if (cfg_.policy == SchedPolicy::kStack && call_depth_ < cfg_.max_call_depth) {
    ++call_depth_;
    o->resume_entry(*this, o);
    --call_depth_;
  } else if (o->sched_state == SchedState::kNone) {
    charge(cm_->sched_enqueue);
    stats_.sched_enqueues += 1;
    sched_.push(o, SchedState::kQueuedResume);
  }
  // else: a kQueuedNext item is already pending for this object; it will
  // observe the (now full) reply box and resume through it.
}

// ----------------------------------------------------------------------------
// Blocking protocol
// ----------------------------------------------------------------------------

Status NodeRuntime::block_await(const NowCall& c) {
  ABCL_CHECK(c.box != nullptr);
  block_reason_ = BlockReason{BlockReason::Kind::kAwait, c.box, -1};
  return Status::kBlocked;
}

Status NodeRuntime::block_select(std::int32_t site) {
  block_reason_ = BlockReason{BlockReason::Kind::kSelect, nullptr, site};
  return Status::kBlocked;
}

Status NodeRuntime::block_await_select(const NowCall& c, std::int32_t site) {
  ABCL_CHECK(c.box != nullptr);
  block_reason_ = BlockReason{BlockReason::Kind::kAwaitSelect, c.box, site};
  return Status::kBlocked;
}

Status NodeRuntime::block_yield() {
  block_reason_ = BlockReason{BlockReason::Kind::kYield, nullptr, -1};
  return Status::kBlocked;
}

std::uint16_t NodeRuntime::select_try(std::int32_t site, void* frame) {
  ObjectHeader* o = cur_obj_;
  ABCL_CHECK(o != nullptr && site >= 0 &&
             static_cast<std::size_t>(site) < o->cls->wait_sites.size());
  const WaitSite& ws = *o->cls->wait_sites[static_cast<std::size_t>(site)];
  std::uint32_t scanned = 0;
  MsgFrame* mf = o->mq.remove_first_if([&](MsgFrame& f) {
    ++scanned;
    return ws.find(f.pattern) != nullptr;
  });
  charge(static_cast<sim::Instr>(scanned) * cm_->select_scan_per_msg);
  if (mf == nullptr) return kPcBlocked;
  const WaitSite::Accept* a = ws.find(mf->pattern);
  a->copy_in(frame, MsgView::of_frame(*mf));
  free_msg_frame(mf);
  return a->resume_pc;
}

// ----------------------------------------------------------------------------
// Sends and replies
// ----------------------------------------------------------------------------

void NodeRuntime::send_past(MailAddr t, PatternId p, const Word* args, int nargs) {
  ABCL_CHECK(!t.is_nil());
  if (!route_send(t, p, args, nargs, kNilReply)) return;  // held during a flush
  if (!cm_->opt.elide_locality_check) charge(cm_->locality_check);
  if (t.node == id_) {
    stats_.local_sends += 1;
    if (t.ptr->is_idle_receiver()) {
      stats_.local_to_dormant += 1;
    } else if (t.ptr->mode == Mode::kActive) {
      stats_.local_to_active += 1;
    }
    MsgView m{p, static_cast<std::uint8_t>(nargs), args, kNilReply};
    deliver_local(t.ptr, m);
  } else {
    remote_send(t, p, args, nargs, kNilReply);
  }
}

NowCall NodeRuntime::send_now(MailAddr t, PatternId p, const Word* args,
                              int nargs) {
  ABCL_CHECK(!t.is_nil());
  charge(cm_->reply_box_alloc);
  ReplyBox* box = alloc_reply_box();
  ReplyDest rd{id_, box};
  // Held-during-flush messages carry the reply dest with them; the box is
  // already allocated, so the caller's NowCall stays valid either way.
  if (!route_send(t, p, args, nargs, rd)) return NowCall{box};
  if (!cm_->opt.elide_locality_check) charge(cm_->locality_check);
  if (t.node == id_) {
    stats_.local_sends += 1;
    if (t.ptr->is_idle_receiver()) {
      stats_.local_to_dormant += 1;
    } else if (t.ptr->mode == Mode::kActive) {
      stats_.local_to_active += 1;
    }
    MsgView m{p, static_cast<std::uint8_t>(nargs), args, rd};
    deliver_local(t.ptr, m);
  } else {
    remote_send(t, p, args, nargs, rd);
  }
  return NowCall{box};
}

void NodeRuntime::remote_send(MailAddr t, PatternId p, const Word* args,
                              int nargs, const ReplyDest& rd) {
  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  trace(sim::TraceEv::kSendRemote, p);
  net::Packet pkt;
  pkt.handler = prog_->h_obj_msg(p);
  pkt.src = id_;
  pkt.dst = t.node;
  pkt.send_time = clock_;
  pkt.push(t.word_ptr());
  pkt.push(rd.word_node());
  pkt.push(rd.word_box());
  for (int i = 0; i < nargs; ++i) pkt.push(args[i]);
  net_->send(std::move(pkt), net::AmCategory::kObjectMessage);
}

void NodeRuntime::reply(const ReplyDest& rd, const Word* vals, int n) {
  ABCL_CHECK(!rd.is_nil());
  ABCL_CHECK(n >= 0 && n <= kMaxReplyWords);
  stats_.replies_sent += 1;
  if (rd.node == id_) {
    deliver_reply_local(rd.box, vals, n);
    return;
  }
  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  net::Packet pkt;
  pkt.handler = prog_->h_reply();
  pkt.src = id_;
  pkt.dst = rd.node;
  pkt.send_time = clock_;
  pkt.push(rd.word_box());
  for (int i = 0; i < n; ++i) pkt.push(vals[i]);
  net_->send(std::move(pkt), net::AmCategory::kObjectMessage);
}

void NodeRuntime::deliver_reply_local(ReplyBox* b, const Word* vals, int n) {
  ABCL_CHECK(b != nullptr);
  switch (b->state) {
    case ReplyBox::State::kEmpty:
      b->store(vals, n);
      b->state = ReplyBox::State::kFull;
      break;
    case ReplyBox::State::kWaiting: {
      ObjectHeader* o = b->waiter;
      b->waiter = nullptr;
      b->store(vals, n);
      b->state = ReplyBox::State::kFull;
      resume_object(o);
      break;
    }
    case ReplyBox::State::kFull:
      ABCL_CHECK_MSG(false, "double reply to a now-type message");
  }
}

bool NodeRuntime::reply_ready(const NowCall& c) {
  if (c.box == nullptr) return true;  // local-create fast path of CreateCall
  charge(cm_->reply_check);
  if (c.box->state == ReplyBox::State::kFull) {
    stats_.await_fast_hits += 1;
    return true;
  }
  return false;
}

Word NodeRuntime::peek_reply(const NowCall& c, int i) const {
  ABCL_CHECK(c.box != nullptr && c.box->state == ReplyBox::State::kFull);
  ABCL_CHECK(i >= 0 && i < c.box->nvals);
  return c.box->vals[i];
}

Word NodeRuntime::take_reply(NowCall& c) {
  ABCL_CHECK(c.box != nullptr && c.box->state == ReplyBox::State::kFull);
  Word v = c.box->nvals > 0 ? c.box->vals[0] : 0;
  free_reply_box(c.box);
  c.box = nullptr;
  return v;
}

// ----------------------------------------------------------------------------
// Object creation
// ----------------------------------------------------------------------------

ObjectHeader* NodeRuntime::alloc_object(const ClassInfo& cls) {
  trace(sim::TraceEv::kCreate, cls.id);
  std::size_t bytes = object_alloc_bytes(cls.state_bytes);
  auto szcls = static_cast<std::uint16_t>(util::SlabAllocator::size_class(bytes));
  void* mem = pool_.allocate(bytes);
  auto* o = new (mem) ObjectHeader();
  o->cls = &cls;
  o->home = id_;
  o->mode = Mode::kDormant;
  o->needs_init = true;
  o->vftp = &cls.lazy_init;
  o->alloc_size_class = szcls;
  o->live_next = live_head_;
  o->live_pprev = &live_head_;
  if (live_head_ != nullptr) live_head_->live_pprev = &o->live_next;
  live_head_ = o;
  ++live_objects_;
  ++total_created_;
  return o;
}

ObjectHeader* NodeRuntime::format_chunk(std::uint16_t size_class) {
  void* mem = pool_.allocate(util::SlabAllocator::class_bytes(size_class));
  auto* o = new (mem) ObjectHeader();
  o->cls = nullptr;
  o->home = id_;
  o->mode = Mode::kFault;
  o->needs_init = true;
  o->vftp = &prog_->fault_vft();
  o->alloc_size_class = size_class;
  o->live_next = live_head_;
  o->live_pprev = &live_head_;
  if (live_head_ != nullptr) live_head_->live_pprev = &o->live_next;
  live_head_ = o;
  ++live_objects_;
  ++total_created_;
  return o;
}

void NodeRuntime::destroy_object(ObjectHeader* o) {
  if (o->cls != nullptr && !o->needs_init && o->cls->destruct != nullptr) {
    o->cls->destruct(o->state());
  }
  if (!migrated_meta_.empty()) migrated_meta_.erase(o);
  while (MsgFrame* f = o->mq.pop_front()) free_msg_frame(f);
  if (o->pending_init != nullptr) free_msg_frame(o->pending_init);
  // Unlink from the live list.
  *o->live_pprev = o->live_next;
  if (o->live_next != nullptr) o->live_next->live_pprev = o->live_pprev;
  std::uint16_t szcls = o->alloc_size_class;
  o->~ObjectHeader();
  pool_.deallocate(o, util::SlabAllocator::class_bytes(szcls));
  --live_objects_;
}

void NodeRuntime::maybe_retire(ObjectHeader* o) {
  if (!o->retired) return;
  if (o->mode != Mode::kDormant || !o->mq.empty() ||
      o->blocked_frame != nullptr || o->sched_state != SchedState::kNone) {
    return;
  }
  destroy_object(o);
}

void NodeRuntime::retire_self() {
  ABCL_CHECK(cur_obj_ != nullptr);
  cur_obj_->retired = true;
}

MailAddr NodeRuntime::create_local(const ClassInfo& cls, const Word* args,
                                   int nargs) {
  charge(cm_->create_local);
  stats_.creations_local += 1;
  ObjectHeader* o = alloc_object(cls);
  if (nargs > 0) {
    MsgFrame* f = alloc_msg_frame();
    f->pattern = 0;
    f->nargs = static_cast<std::uint8_t>(nargs);
    f->reply = kNilReply;
    for (int i = 0; i < nargs; ++i) f->args[i] = args[i];
    o->pending_init = f;
  }
  return MailAddr{id_, o};
}

CreateCall NodeRuntime::remote_create_begin(const ClassInfo& cls, NodeId target,
                                            const Word* args, int nargs) {
  if (target == id_) return CreateCall{create_local(cls, args, nargs), {}};
  ABCL_CHECK(target >= 0 && target < num_nodes());
  charge(cm_->create_remote_local_part);
  stats_.creations_remote += 1;
  std::uint16_t szcls = object_size_class(cls);
  if (auto chunk = stock_try_pop(target, szcls)) {
    stats_.chunk_stock_hits += 1;
    send_create_packet(cls, target, *chunk, args, nargs);
    return CreateCall{MailAddr{target, *chunk}, {}};
  }
  // Stock empty: split-phase fallback — request a chunk and await it.
  stats_.chunk_stock_misses += 1;
  charge(cm_->reply_box_alloc);
  ReplyBox* b = alloc_reply_box();
  auto* pc = static_cast<PendingCreate*>(pool_.allocate(sizeof(PendingCreate)));
  new (pc) PendingCreate();
  pc->cls = &cls;
  pc->target = target;
  pc->nargs = static_cast<std::uint8_t>(nargs);
  for (int i = 0; i < nargs; ++i) pc->args[i] = args[i];
  b->pending_create = pc;

  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  net::Packet pkt;
  pkt.handler = prog_->h_alloc_request();
  pkt.src = id_;
  pkt.dst = target;
  pkt.send_time = clock_;
  pkt.push(szcls);
  pkt.push(reinterpret_cast<Word>(b));
  net_->send(std::move(pkt), net::AmCategory::kCreateRequest);
  return CreateCall{kNilAddr, NowCall{b}};
}

MailAddr NodeRuntime::remote_create_finish(CreateCall& c) {
  if (c.call.box != nullptr) {
    ReplyBox* b = c.call.box;
    ABCL_CHECK(b->state == ReplyBox::State::kFull);
    auto* pc = static_cast<PendingCreate*>(b->pending_create);
    ABCL_CHECK(pc != nullptr);
    auto* chunk = reinterpret_cast<ObjectHeader*>(b->vals[0]);
    send_create_packet(*pc->cls, pc->target, chunk, pc->args, pc->nargs);
    c.addr = MailAddr{pc->target, chunk};
    pc->~PendingCreate();
    pool_.deallocate(pc, sizeof(PendingCreate));
    free_reply_box(b);
    c.call.box = nullptr;
  }
  return c.addr;
}

void NodeRuntime::send_create_packet(const ClassInfo& cls, NodeId target,
                                     ObjectHeader* chunk, const Word* args,
                                     int nargs) {
  charge(cm_->send_setup);
  stats_.remote_sends += 1;
  // Only ask the target to replenish while on-hand plus in-flight chunks
  // sit below the steady-state target; an unconditional request overshoots
  // without bound once a drained stock bursts back up. The request rides in
  // bit 0 of the chunk address (pool chunks are at least 8-byte aligned),
  // so the packet layout is unchanged.
  std::uint16_t szcls = chunk->alloc_size_class;
  const bool want_replenish =
      !cfg_.disable_replenish &&
      stock_.planned_depth(target, szcls) <
          static_cast<std::size_t>(cfg_.chunk_stock_target);
  if (want_replenish) stock_.note_replenish_requested(target, szcls);
  net::Packet pkt;
  pkt.handler = prog_->h_create(cls.id);
  pkt.src = id_;
  pkt.dst = target;
  pkt.send_time = clock_;
  pkt.push(reinterpret_cast<Word>(chunk) | (want_replenish ? 1 : 0));
  for (int i = 0; i < nargs; ++i) pkt.push(args[i]);
  net_->send(std::move(pkt), net::AmCategory::kCreateRequest);
}

bool NodeRuntime::inline_guard(MailAddr target, const ClassInfo& cls) {
  charge(cm_->locality_check + cm_->inline_mode_check);
  return target.node == id_ && target.ptr->vftp == &cls.dormant;
}

// ----------------------------------------------------------------------------
// Pools
// ----------------------------------------------------------------------------

MsgFrame* NodeRuntime::alloc_msg_frame() {
  auto* f = static_cast<MsgFrame*>(pool_.allocate(sizeof(MsgFrame)));
  return new (f) MsgFrame();
}

void NodeRuntime::free_msg_frame(MsgFrame* f) {
  pool_.deallocate(f, sizeof(MsgFrame));
}

ReplyBox* NodeRuntime::alloc_reply_box() {
  auto* b = static_cast<ReplyBox*>(pool_.allocate(sizeof(ReplyBox)));
  return new (b) ReplyBox();
}

void NodeRuntime::free_reply_box(ReplyBox* b) {
  pool_.deallocate(b, sizeof(ReplyBox));
}

// ----------------------------------------------------------------------------
// Chunk stock
// ----------------------------------------------------------------------------

std::optional<ObjectHeader*> NodeRuntime::stock_try_pop(NodeId peer,
                                                        std::uint16_t szcls) {
  return stock_.try_pop(peer, szcls);
}

void NodeRuntime::stock_push(NodeId peer, std::uint16_t szcls,
                             ObjectHeader* chunk) {
  stock_.push(peer, szcls, chunk);
}

std::size_t NodeRuntime::stock_depth(NodeId peer, std::uint16_t szcls) const {
  return stock_.depth(peer, szcls);
}

void NodeRuntime::seed_stock_from(NodeRuntime& peer_rt, const ClassInfo& cls,
                                  int depth) {
  ABCL_CHECK(&peer_rt != this);
  std::uint16_t szcls = object_size_class(cls);
  for (int i = 0; i < depth; ++i) {
    stock_push(peer_rt.node_id(), szcls, peer_rt.format_chunk(szcls));
  }
}

// ----------------------------------------------------------------------------
// Services (Category 4)
// ----------------------------------------------------------------------------

void NodeRuntime::gossip_load_now() {
  auto load = static_cast<Word>(sched_.size());
  for (NodeId nb : net_->topology().neighbors(id_)) {
    charge(cm_->send_setup);
    net::Packet pkt;
    pkt.handler = prog_->h_load_gossip();
    pkt.src = id_;
    pkt.dst = nb;
    pkt.send_time = clock_;
    pkt.push(load);
    net_->send(std::move(pkt), net::AmCategory::kService);
  }
}

void NodeRuntime::boot(const std::function<void(NodeRuntime&)>& fn) {
  deliveries_this_quantum_ = 0;
  quantum_start_clock_ = clock_;
  fn(*this);
}

// ----------------------------------------------------------------------------
// Active-message handler bodies
// ----------------------------------------------------------------------------

void NodeRuntime::on_obj_msg(const net::Packet& pkt) {
  PatternId p = prog_->pattern_of_handler(pkt.handler);
  auto* o = reinterpret_cast<ObjectHeader*>(pkt.at(0));
  ABCL_CHECK_MSG(o->home == id_, "object message routed to the wrong node");
  if (o->mode == Mode::kForwarding) {
    // Path compression: tell the sender where the chain currently ends so
    // its later sends skip this stub (deliver_local below still does the
    // actual forward for *this* message). No update while the chain dead-
    // ends in an in-transit stub — the address is not yet known.
    if (auto hit = peek_forward(o)) {
      send_update_addr(pkt.src, pkt.at(0), hit->first, hit->second);
    }
  }
  ReplyDest rd = ReplyDest::from_words(pkt.at(1), pkt.at(2));
  MsgView m{p, static_cast<std::uint8_t>(pkt.nwords - 3), &pkt.payload[3], rd};
  deliver_local(o, m);
}

void NodeRuntime::on_reply(const net::Packet& pkt) {
  auto* b = reinterpret_cast<ReplyBox*>(pkt.at(0));
  deliver_reply_local(b, &pkt.payload[1], pkt.nwords - 1);
}

void NodeRuntime::on_create(const net::Packet& pkt) {
  const ClassInfo& cls = prog_->cls(prog_->class_of_handler(pkt.handler));
  const bool want_replenish = (pkt.at(0) & 1) != 0;
  auto* chunk = reinterpret_cast<ObjectHeader*>(pkt.at(0) & ~Word{1});
  ABCL_CHECK(chunk->home == id_);
  ABCL_CHECK_MSG(chunk->mode == Mode::kFault,
                 "creation request for an already-installed chunk");
  ABCL_CHECK(chunk->alloc_size_class == object_size_class(cls));
  charge(cm_->create_remote_install);

  chunk->cls = &cls;
  MsgView ctor{0, static_cast<std::uint8_t>(pkt.nwords - 1), &pkt.payload[1],
               kNilReply};
  cls.construct(chunk->state(), ctor);
  chunk->needs_init = false;
  if (!chunk->mq.empty()) {
    // Messages raced ahead of the creation request and were fault-queued;
    // process them in arrival order through the scheduling queue.
    chunk->vftp = &cls.active;
    chunk->mode = Mode::kActive;
    charge(cm_->sched_enqueue);
    stats_.sched_enqueues += 1;
    sched_.push(chunk, SchedState::kQueuedNext);
  } else {
    chunk->vftp = &cls.dormant;
    chunk->mode = Mode::kDormant;
  }

  if (cfg_.disable_replenish || !want_replenish) return;

  // Replenish the requester's stock (Category 3).
  ObjectHeader* fresh = format_chunk(chunk->alloc_size_class);
  charge(cm_->send_setup);
  net::Packet rep;
  rep.handler = prog_->h_replenish(chunk->alloc_size_class);
  rep.src = id_;
  rep.dst = pkt.src;
  rep.send_time = clock_;
  rep.push(reinterpret_cast<Word>(fresh));
  net_->send(std::move(rep), net::AmCategory::kAllocReply);
}

void NodeRuntime::on_alloc_request(const net::Packet& pkt) {
  auto szcls = static_cast<std::uint16_t>(pkt.at(0));
  ObjectHeader* fresh = format_chunk(szcls);
  Word v = reinterpret_cast<Word>(fresh);
  reply(ReplyDest{pkt.src, reinterpret_cast<ReplyBox*>(pkt.at(1))}, &v, 1);
}

void NodeRuntime::on_replenish(const net::Packet& pkt) {
  charge(cm_->chunk_replenish);
  std::uint16_t szcls = prog_->size_class_of_handler(pkt.handler);
  stock_.note_replenish_arrived(pkt.src, szcls);
  stock_push(pkt.src, szcls, reinterpret_cast<ObjectHeader*>(pkt.at(0)));
}

void NodeRuntime::on_load_gossip(const net::Packet& pkt) {
  note_peer_load(pkt.src, static_cast<std::uint32_t>(pkt.at(0)));
}

// ----------------------------------------------------------------------------
// Live migration (remote/migration.hpp has the policy; DESIGN.md "Object
// migration" has the protocol walkthrough and the determinism argument)
// ----------------------------------------------------------------------------

namespace {

// kMigrateFrag payload: [old_ptr, offset, <= kFragWords blob words].
constexpr std::uint32_t kFragWords = net::kMaxPacketWords - 2;

}  // namespace

void NodeRuntime::send_service(NodeId to, net::HandlerId h,
                               std::initializer_list<Word> words) {
  // Service traffic mirrors gossip's accounting: send-setup instructions
  // are charged but remote_sends counts only application messages.
  charge(cm_->send_setup);
  net::Packet pkt;
  pkt.handler = h;
  pkt.src = id_;
  pkt.dst = to;
  pkt.send_time = clock_;
  for (Word w : words) pkt.push(w);
  net_->send(std::move(pkt), net::AmCategory::kService);
}

bool NodeRuntime::migratable_now(const ObjectHeader* o) const {
  if (o == nullptr || o == cur_obj_) return false;
  if (o->cls == nullptr || !o->cls->migratable || o->retired) return false;
  if (o->mode != Mode::kDormant && o->mode != Mode::kActive &&
      o->mode != Mode::kWaiting) {
    return false;
  }
  // A pending now-call pins the object: its ReplyBox lives on this node and
  // the reply will resume it here. Yield-blocked contexts (frame but no
  // wait site) have no pattern that can re-enter them remotely.
  if (o->awaiting_box != nullptr) return false;
  if (o->blocked_frame != nullptr && o->vftp->wait_site < 0) return false;
  return true;
}

std::optional<MailAddr> NodeRuntime::forward_target(
    const ObjectHeader* o) const {
  if (o->mode == Mode::kMigrating) {
    // In transit: mail still funnels through this stub.
    return MailAddr{id_, const_cast<ObjectHeader*>(o)};
  }
  if (o->mode != Mode::kForwarding) return std::nullopt;
  auto it = stubs_.find(const_cast<ObjectHeader*>(o));
  ABCL_CHECK(it != stubs_.end());
  return it->second.fwd;
}

std::optional<std::pair<MailAddr, std::uint32_t>> NodeRuntime::peek_forward(
    const ObjectHeader* o) const {
  const ObjectHeader* cur = o;
  for (;;) {
    if (cur->mode == Mode::kMigrating) return std::nullopt;
    if (cur->mode == Mode::kForwarding) {
      auto it = stubs_.find(const_cast<ObjectHeader*>(cur));
      ABCL_CHECK(it != stubs_.end());
      if (it->second.fwd.node == id_) {
        cur = it->second.fwd.ptr;
        continue;
      }
      return std::make_pair(it->second.fwd, it->second.fwd_epoch);
    }
    // A live local copy: the object migrated back through this node. Its
    // current epoch is in the migrated-in bookkeeping.
    auto mit = migrated_meta_.find(const_cast<ObjectHeader*>(cur));
    if (mit == migrated_meta_.end()) return std::nullopt;
    return std::make_pair(MailAddr{id_, const_cast<ObjectHeader*>(cur)},
                          mit->second.epoch);
  }
}

bool NodeRuntime::route_send(MailAddr& t, PatternId p, const Word* args,
                             int nargs, const ReplyDest& rd) {
  // Guard keeps the migration-off hot path byte-identical: no lookup, no
  // charge, until the first kUpdateAddr ever lands on this node.
  if (redirects_.empty()) return true;
  int hops = 0;
  for (;;) {
    auto it = redirects_.find(t.word_ptr());
    if (it == redirects_.end()) return true;
    RedirectEntry& e = it->second;
    if (e.flushing) {
      // Mail we previously routed through the stub chain has not drained
      // past the flush marker yet; taking the shortcut now could overtake
      // it. Hold until the ack.
      stats_.migration_holds += 1;
      HeldMsg h;
      h.pattern = p;
      h.nargs = nargs;
      h.rd = rd;
      for (int i = 0; i < nargs; ++i) h.args[i] = args[i];
      e.held.push_back(h);
      return false;
    }
    t = e.fwd;
    ABCL_CHECK_MSG(++hops <= 64, "redirect chain too long (cycle?)");
  }
}

void NodeRuntime::send_resolved(MailAddr t, PatternId p, const Word* args,
                                int nargs, const ReplyDest& rd) {
  if (t.node == id_) {
    MsgView m{p, static_cast<std::uint8_t>(nargs), args, rd};
    deliver_local(t.ptr, m);
  } else {
    remote_send(t, p, args, nargs, rd);
  }
}

void NodeRuntime::maybe_shed() {
  const remote::MigrationConfig& mc = cfg_.migration;
  if (mc.interval == 0 || quanta_run_ % mc.interval != 0) return;
  // Fresh gossip samples in the topology's fixed neighbour order, so the
  // policy sees an identical vector in every driver.
  std::vector<std::pair<std::int32_t, std::uint32_t>> loads;
  for (NodeId nb : net_->topology().neighbors(id_)) {
    if (auto l = known_load(nb)) loads.emplace_back(nb, *l);
  }
  auto depth = static_cast<std::uint32_t>(sched_.size());
  auto d = remote::decide_shed(mc, id_, quanta_run_, depth, loads);
  if (!d) return;
  // Candidates in run-queue FIFO order: the objects that have waited
  // longest are shipped first (canonical shed order; DESIGN.md).
  std::vector<ObjectHeader*> victims;
  sched_.for_each([&](ObjectHeader& o) {
    if (victims.size() < d->quota && migratable_now(&o)) {
      victims.push_back(&o);
    }
  });
  for (ObjectHeader* v : victims) migrate_object_to(v, d->target);
}

void NodeRuntime::migrate_object_to(ObjectHeader* o, NodeId target) {
  ABCL_CHECK(target >= 0 && target < num_nodes() && target != id_);
  ABCL_CHECK_MSG(migratable_now(o), "object not migratable right now");
  const ClassInfo& cls = *o->cls;
  sched_.remove(o);

  // Epoch = the object's migration count; the prior-stub trail travels so
  // the new home can short-circuit every old stub after it attaches.
  std::uint32_t epoch = 1;
  std::vector<MailAddr> priors;
  if (auto it = migrated_meta_.find(o); it != migrated_meta_.end()) {
    epoch = it->second.epoch + 1;
    priors = std::move(it->second.priors);
    migrated_meta_.erase(it);
  }

  // --- state blob: [state words][ctor frame?][blocked ctx frame?] ---
  std::uint32_t flags = 0;
  std::size_t state_words = (cls.state_bytes + 7) / 8;
  std::vector<Word> blob(state_words, 0);
  if (o->needs_init) {
    flags |= remote::kMigNeedsInit;  // bytes unconstructed; ship zeros
  } else if (cls.state_bytes > 0) {
    std::memcpy(blob.data(), o->state(), cls.state_bytes);
  }
  if (o->pending_init != nullptr) {
    flags |= remote::kMigPendingInit;
    MsgFrame* f = o->pending_init;
    blob.push_back(static_cast<Word>(f->pattern) |
                   (static_cast<Word>(f->nargs) << 16));
    blob.push_back(f->reply.word_node());
    blob.push_back(f->reply.word_box());
    for (int i = 0; i < f->nargs; ++i) blob.push_back(f->args[i]);
    free_msg_frame(f);
    o->pending_init = nullptr;
  }
  std::int64_t wait_site = -1;
  if (o->blocked_frame != nullptr) {
    flags |= remote::kMigWaiting;
    wait_site = o->vftp->wait_site;  // >= 0 per migratable_now
    CtxFrameBase* hf = o->blocked_frame;
    blob.push_back(hf->bytes);
    std::size_t base = blob.size();
    blob.insert(blob.end(), (hf->bytes + 7) / 8, 0);
    std::memcpy(&blob[base], hf, hf->bytes);
    blob.push_back(reinterpret_cast<Word>(o->resume_entry));
    free_ctx_frame(hf);
    o->blocked_frame = nullptr;
    o->resume_entry = nullptr;
  }

  // Start packet: 6 header words + 2 per prior stub (kMaxPriorStubs keeps
  // this within kMaxPacketWords).
  const Word old_ptr = reinterpret_cast<Word>(o);
  charge(cm_->send_setup);
  net::Packet sp;
  sp.handler = prog_->h_migrate_start();
  sp.src = id_;
  sp.dst = target;
  sp.send_time = clock_;
  sp.push(old_ptr);
  sp.push(cls.id);
  sp.push(static_cast<Word>(flags) | (static_cast<Word>(epoch) << 32));
  sp.push(static_cast<Word>(wait_site));
  sp.push(static_cast<Word>(blob.size()));
  sp.push(static_cast<Word>(priors.size()));
  for (const MailAddr& pr : priors) {
    sp.push(pr.word_node());
    sp.push(pr.word_ptr());
  }
  net_->send(std::move(sp), net::AmCategory::kService);

  // The header left behind is now a buffering stub: every arrival queues
  // until the new home confirms with kMigrateDone. The fault table (all
  // entries queue) also makes inline_guard fail for it, and needs_init
  // stops any destructor from running on the shipped-away state bytes.
  o->vftp = &prog_->fault_vft();
  o->mode = Mode::kMigrating;
  o->needs_init = true;
  stubs_[o] = StubInfo{};

  // Fragments after the start packet (same channel, but reassembly is
  // order-independent anyway — fault plans may reorder them).
  for (std::uint32_t off = 0; off < blob.size(); off += kFragWords) {
    charge(cm_->send_setup);
    net::Packet fp;
    fp.handler = prog_->h_migrate_frag();
    fp.src = id_;
    fp.dst = target;
    fp.send_time = clock_;
    fp.push(old_ptr);
    fp.push(off);
    std::uint32_t n = std::min<std::uint32_t>(
        kFragWords, static_cast<std::uint32_t>(blob.size()) - off);
    for (std::uint32_t i = 0; i < n; ++i) fp.push(blob[off + i]);
    net_->send(std::move(fp), net::AmCategory::kService);
  }

  stats_.migrations_out += 1;
  trace(sim::TraceEv::kMigrateOut, static_cast<std::uint64_t>(target));
}

void NodeRuntime::on_migrate_start(const net::Packet& pkt) {
  const Word old_ptr = pkt.at(0);
  InboundMigration& in = inbound_[old_ptr];
  ABCL_CHECK_MSG(!in.have_start, "duplicate kMigrateStart past dedup");
  in.have_start = true;
  in.cls_id = static_cast<ClassId>(pkt.at(1));
  in.flags = static_cast<std::uint32_t>(pkt.at(2));
  in.epoch = static_cast<std::uint32_t>(pkt.at(2) >> 32);
  in.wait_site = static_cast<std::int64_t>(pkt.at(3));
  in.blob_words = static_cast<std::uint32_t>(pkt.at(4));
  in.src = pkt.src;
  const auto np = static_cast<std::size_t>(pkt.at(5));
  for (std::size_t i = 0; i < np; ++i) {
    in.priors.push_back(
        MailAddr::from_words(pkt.at(6 + 2 * i), pkt.at(7 + 2 * i)));
  }
  if (in.blob.size() < in.blob_words) in.blob.resize(in.blob_words, 0);
  if (in.received_words == in.blob_words) {
    attach_migrated(old_ptr, in);
    inbound_.erase(old_ptr);
  }
}

void NodeRuntime::on_migrate_frag(const net::Packet& pkt) {
  const Word old_ptr = pkt.at(0);
  const auto off = static_cast<std::uint32_t>(pkt.at(1));
  const int n = pkt.nwords - 2;
  InboundMigration& in = inbound_[old_ptr];
  // Fragments may beat the start packet under fault reordering; grow the
  // buffer on demand and reconcile sizes when the start arrives. Network
  // dedup delivers each fragment exactly once, so a received-word count
  // detects completion without an offset bitmap.
  if (in.blob.size() < off + static_cast<std::size_t>(n)) {
    in.blob.resize(off + static_cast<std::size_t>(n), 0);
  }
  for (int i = 0; i < n; ++i) in.blob[off + i] = pkt.at(2 + i);
  in.received_words += static_cast<std::uint32_t>(n);
  if (in.have_start && in.received_words == in.blob_words) {
    attach_migrated(old_ptr, in);
    inbound_.erase(old_ptr);
  }
}

void NodeRuntime::attach_migrated(Word old_ptr_word, InboundMigration& in) {
  const ClassInfo& cls = prog_->cls(in.cls_id);
  charge(cm_->create_remote_install);

  // Raw allocation, deliberately not alloc_object(): a migrated-in object
  // is not a creation — total_created and the kCreate trace stay untouched
  // so conservation checks (created == per-class sums) and migration-off
  // fingerprints line up. It is a live object changing homes.
  std::size_t bytes = object_alloc_bytes(cls.state_bytes);
  auto szcls = static_cast<std::uint16_t>(util::SlabAllocator::size_class(bytes));
  void* mem = pool_.allocate(bytes);
  auto* o = new (mem) ObjectHeader();
  o->cls = &cls;
  o->home = id_;
  o->alloc_size_class = szcls;
  o->live_next = live_head_;
  o->live_pprev = &live_head_;
  if (live_head_ != nullptr) live_head_->live_pprev = &o->live_next;
  live_head_ = o;
  ++live_objects_;

  std::size_t pos = (cls.state_bytes + 7) / 8;
  o->needs_init = (in.flags & remote::kMigNeedsInit) != 0;
  if (!o->needs_init && cls.state_bytes > 0) {
    std::memcpy(o->state(), in.blob.data(), cls.state_bytes);
  }
  if ((in.flags & remote::kMigPendingInit) != 0) {
    MsgFrame* f = alloc_msg_frame();
    const Word h = in.blob[pos++];
    f->pattern = static_cast<PatternId>(h & 0xffff);
    f->nargs = static_cast<std::uint8_t>(h >> 16);
    f->reply = ReplyDest::from_words(in.blob[pos], in.blob[pos + 1]);
    pos += 2;
    for (int i = 0; i < f->nargs; ++i) f->args[i] = in.blob[pos++];
    o->pending_init = f;
  }
  if ((in.flags & remote::kMigWaiting) != 0) {
    const auto fbytes = static_cast<std::uint16_t>(in.blob[pos++]);
    void* fmem = pool_.allocate(fbytes);
    std::memcpy(fmem, &in.blob[pos], fbytes);
    pos += (fbytes + 7) / 8;
    auto* hf = static_cast<CtxFrameBase*>(fmem);
    o->blocked_frame = hf;
    o->resume_entry = reinterpret_cast<ResumeFn>(in.blob[pos++]);
    ABCL_CHECK(in.wait_site >= 0 &&
               static_cast<std::size_t>(in.wait_site) < cls.wait_sites.size());
    o->vftp = &cls.wait_sites[static_cast<std::size_t>(in.wait_site)]->vft;
    o->mode = Mode::kWaiting;
  } else {
    // The inbox (flushed from the old home after our Done) re-activates it
    // naturally; no scheduler touch here.
    o->vftp = o->needs_init ? &cls.lazy_init : &cls.dormant;
    o->mode = Mode::kDormant;
  }

  stats_.migrations_in += 1;
  trace(sim::TraceEv::kMigrateIn, static_cast<std::uint64_t>(in.src));

  // Bookkeeping for a future onward migration: the full stub trail now
  // includes the home we just left (capped; see kMaxPriorStubs).
  MigratedMeta meta;
  meta.epoch = in.epoch;
  meta.priors = in.priors;
  meta.priors.push_back(
      MailAddr{in.src, reinterpret_cast<ObjectHeader*>(old_ptr_word)});
  while (meta.priors.size() > remote::kMaxPriorStubs) {
    meta.priors.erase(meta.priors.begin());
  }
  migrated_meta_[o] = std::move(meta);

  // Confirm to the old home (turns its stub into a forwarder and flushes
  // the buffered inbox here) ...
  send_service(in.src, prog_->h_migrate_done(),
               {old_ptr_word, static_cast<Word>(id_), reinterpret_cast<Word>(o),
                static_cast<Word>(in.epoch)});
  // ... and short-circuit every earlier stub straight to the new address,
  // which is what bounds forwarding chains (epoch-guarded at the stub, so
  // reordered updates from older migrations lose).
  for (const MailAddr& prior : in.priors) {
    if (prior.node == id_) {
      stub_apply_update(prior.ptr, MailAddr{id_, o}, in.epoch);
    } else {
      stats_.migration_updates += 1;
      send_service(prior.node, prog_->h_update_stub(),
                   {prior.word_ptr(), static_cast<Word>(id_),
                    reinterpret_cast<Word>(o), static_cast<Word>(in.epoch)});
    }
  }
}

void NodeRuntime::on_migrate_done(const net::Packet& pkt) {
  auto* o = reinterpret_cast<ObjectHeader*>(pkt.at(0));
  const MailAddr dest = MailAddr::from_words(pkt.at(1), pkt.at(2));
  const auto epoch = static_cast<std::uint32_t>(pkt.at(3));
  ABCL_CHECK_MSG(o->mode == Mode::kMigrating,
                 "kMigrateDone for an object that is not in transit");
  MailAddr fwd = kNilAddr;
  std::vector<ParkedMarker> parked;
  {
    auto it = stubs_.find(o);
    ABCL_CHECK(it != stubs_.end());
    StubInfo& s = it->second;
    // A kUpdateStub from a *later* migration may already have installed a
    // fresher address (the Done raced it); the epoch guard keeps it.
    if (epoch > s.fwd_epoch) {
      s.fwd = dest;
      s.fwd_epoch = epoch;
    }
    fwd = s.fwd;
    parked = std::move(s.parked);
    s.parked.clear();
  }
  o->mode = Mode::kForwarding;
  // Flush the buffered inbox in FIFO order. The single old->new channel
  // preserves that order on the wire; send_resolved also handles the
  // migrated-back case where `fwd` is local again.
  while (MsgFrame* f = o->mq.pop_front()) {
    stats_.migration_mail += 1;
    send_resolved(fwd, f->pattern, f->args, f->nargs, f->reply);
    free_msg_frame(f);
  }
  // Parked flush markers chase the mail they were parked behind.
  for (const ParkedMarker& pm : parked) {
    run_flush_marker(o, pm.key_ptr, pm.epoch, pm.origin);
  }
}

void NodeRuntime::stub_apply_update(ObjectHeader* stub, MailAddr dest,
                                    std::uint32_t epoch) {
  auto it = stubs_.find(stub);
  ABCL_CHECK(it != stubs_.end());
  StubInfo& s = it->second;
  if (epoch <= s.fwd_epoch) return;  // stale (reordered across fault retries)
  s.fwd = dest;
  s.fwd_epoch = epoch;
  // Mode is NOT flipped here: a kMigrating stub keeps buffering until its
  // own Done arrives (the inbox must flush exactly once, behind nothing).
}

void NodeRuntime::on_update_stub(const net::Packet& pkt) {
  stub_apply_update(reinterpret_cast<ObjectHeader*>(pkt.at(0)),
                    MailAddr::from_words(pkt.at(1), pkt.at(2)),
                    static_cast<std::uint32_t>(pkt.at(3)));
}

void NodeRuntime::send_update_addr(NodeId to, Word key_ptr, MailAddr dest,
                                   std::uint32_t epoch) {
  if (to == id_) return;  // local senders walk the stub chain directly
  stats_.migration_updates += 1;
  send_service(to, prog_->h_update_addr(),
               {key_ptr, dest.word_node(), dest.word_ptr(),
                static_cast<Word>(epoch)});
}

void NodeRuntime::on_update_addr(const net::Packet& pkt) {
  const Word key = pkt.at(0);
  const MailAddr dest = MailAddr::from_words(pkt.at(1), pkt.at(2));
  const auto epoch = static_cast<std::uint32_t>(pkt.at(3));
  RedirectEntry& e = redirects_[key];
  if (e.epoch != 0 && epoch <= e.epoch) return;  // stale or duplicate
  e.fwd = dest;
  e.epoch = epoch;
  // Enter (or re-enter, if a fresher address superseded a flush already in
  // progress — the old ack's epoch no longer matches and is ignored) the
  // flushing window: mail we already routed through the stub chain must
  // drain past a marker before new mail may take the shortcut, or the
  // shortcut could overtake it. pkt.src is the stub's node: updates for
  // `key` only ever originate from key's home.
  e.flushing = true;
  send_service(pkt.src, prog_->h_flush_marker(),
               {key, key, static_cast<Word>(epoch),
                static_cast<Word>(static_cast<std::int64_t>(id_))});
}

void NodeRuntime::run_flush_marker(ObjectHeader* route, Word key_ptr,
                                   std::uint32_t epoch, NodeId origin) {
  // The marker travels exactly like a message would, so per-channel FIFO
  // puts it *behind* all mail the origin previously routed this way.
  while (route->mode == Mode::kForwarding) {
    auto it = stubs_.find(route);
    ABCL_CHECK(it != stubs_.end());
    const MailAddr fwd = it->second.fwd;
    if (fwd.node == id_) {
      route = fwd.ptr;
      continue;
    }
    send_service(fwd.node, prog_->h_flush_marker(),
                 {fwd.word_ptr(), key_ptr, static_cast<Word>(epoch),
                  static_cast<Word>(static_cast<std::int64_t>(origin))});
    return;
  }
  if (route->mode == Mode::kMigrating) {
    // Buffered mail ahead of the marker ships at Done; park the marker so
    // it replays after that mail, keeping its position in the channel.
    auto it = stubs_.find(route);
    ABCL_CHECK(it != stubs_.end());
    it->second.parked.push_back(ParkedMarker{key_ptr, epoch, origin});
    return;
  }
  // Reached the live object: everything the origin sent ahead of the
  // marker has been delivered. Release its held mail.
  if (origin == id_) {
    deliver_flush_ack_local(key_ptr, epoch);
  } else {
    send_service(origin, prog_->h_flush_ack(),
                 {key_ptr, static_cast<Word>(epoch)});
  }
}

void NodeRuntime::on_flush_marker(const net::Packet& pkt) {
  run_flush_marker(reinterpret_cast<ObjectHeader*>(pkt.at(0)), pkt.at(1),
                   static_cast<std::uint32_t>(pkt.at(2)),
                   static_cast<NodeId>(static_cast<std::int64_t>(pkt.at(3))));
}

void NodeRuntime::on_flush_ack(const net::Packet& pkt) {
  deliver_flush_ack_local(pkt.at(0), static_cast<std::uint32_t>(pkt.at(1)));
}

void NodeRuntime::deliver_flush_ack_local(Word key_ptr, std::uint32_t epoch) {
  auto it = redirects_.find(key_ptr);
  if (it == redirects_.end()) return;
  RedirectEntry& e = it->second;
  // A fresher kUpdateAddr restarted the window with a new epoch; this ack
  // belongs to the superseded flush and must not release the mail early.
  if (!e.flushing || e.epoch != epoch) return;
  e.flushing = false;
  // Move the held mail out before draining: each drained message re-routes
  // from the key (the entry is open now, but a *chained* entry downstream
  // may hold it again), and route_send may insert into redirects_,
  // invalidating `e`.
  std::vector<HeldMsg> held = std::move(e.held);
  e.held.clear();
  for (const HeldMsg& h : held) {
    MailAddr t{id_, reinterpret_cast<ObjectHeader*>(key_ptr)};  // node unused:
    // route_send resolves purely by pointer key and this key has an entry.
    if (route_send(t, h.pattern, h.args, h.nargs, h.rd)) {
      send_resolved(t, h.pattern, h.args, h.nargs, h.rd);
    }
  }
}

// ----------------------------------------------------------------------------
// Builtin handler registration (called from Program::finalize)
// ----------------------------------------------------------------------------

namespace {

template <void (NodeRuntime::*Member)(const net::Packet&)>
void trampoline(void* ctx, const net::Packet& pkt) {
  (static_cast<NodeRuntime*>(ctx)->*Member)(pkt);
}

}  // namespace

void register_builtin_handlers(Program& prog) {
  auto& am = prog.am_;

  // Category 1: one specialized handler per message pattern.
  for (std::size_t p = 0; p < prog.patterns_.size(); ++p) {
    net::HandlerId id =
        am.register_handler("msg:" + prog.patterns_.info(static_cast<PatternId>(p)).name,
                            &trampoline<&NodeRuntime::on_obj_msg>,
                            net::AmCategory::kObjectMessage);
    if (p == 0) prog.h_obj_msg_base_ = id;
  }

  prog.h_reply_ = am.register_handler("reply", &trampoline<&NodeRuntime::on_reply>,
                                      net::AmCategory::kObjectMessage);

  // Category 2: one handler per class.
  for (std::size_t c = 0; c < prog.classes_.size(); ++c) {
    net::HandlerId id = am.register_handler(
        "create:" + prog.classes_[c]->name, &trampoline<&NodeRuntime::on_create>,
        net::AmCategory::kCreateRequest);
    if (c == 0) prog.h_create_base_ = id;
  }

  prog.h_alloc_request_ =
      am.register_handler("alloc-request", &trampoline<&NodeRuntime::on_alloc_request>,
                          net::AmCategory::kCreateRequest);

  // Category 3: one handler per chunk size class.
  for (std::size_t s = 0; s < util::SlabAllocator::kNumClasses; ++s) {
    net::HandlerId id = am.register_handler(
        "replenish:" + std::to_string(util::SlabAllocator::class_bytes(s)) + "B",
        &trampoline<&NodeRuntime::on_replenish>, net::AmCategory::kAllocReply);
    if (s == 0) prog.h_replenish_base_ = id;
  }

  // Category 4: services.
  prog.h_load_gossip_ =
      am.register_handler("load-gossip", &trampoline<&NodeRuntime::on_load_gossip>,
                          net::AmCategory::kService);
  // Live-migration protocol (registered last so migration-off runs keep the
  // handler-id assignments — and therefore trace fingerprints — of older
  // baselines).
  prog.h_migrate_start_ = am.register_handler(
      "migrate-start", &trampoline<&NodeRuntime::on_migrate_start>,
      net::AmCategory::kService);
  prog.h_migrate_frag_ = am.register_handler(
      "migrate-frag", &trampoline<&NodeRuntime::on_migrate_frag>,
      net::AmCategory::kService);
  prog.h_migrate_done_ = am.register_handler(
      "migrate-done", &trampoline<&NodeRuntime::on_migrate_done>,
      net::AmCategory::kService);
  prog.h_update_addr_ = am.register_handler(
      "update-addr", &trampoline<&NodeRuntime::on_update_addr>,
      net::AmCategory::kService);
  prog.h_update_stub_ = am.register_handler(
      "update-stub", &trampoline<&NodeRuntime::on_update_stub>,
      net::AmCategory::kService);
  prog.h_flush_marker_ = am.register_handler(
      "flush-marker", &trampoline<&NodeRuntime::on_flush_marker>,
      net::AmCategory::kService);
  prog.h_flush_ack_ = am.register_handler(
      "flush-ack", &trampoline<&NodeRuntime::on_flush_ack>,
      net::AmCategory::kService);
}

}  // namespace abcl::core
