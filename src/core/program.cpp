#include "core/program.hpp"

#include "util/assert.hpp"

namespace abcl::core {

ClassInfo& Program::add_class(std::string name) {
  ABCL_CHECK_MSG(!finalized_, "cannot add classes after finalize()");
  ABCL_CHECK_MSG(classes_.size() < 0xFFFe, "too many classes");
  auto cls = std::make_unique<ClassInfo>();
  cls->id = static_cast<ClassId>(classes_.size());
  cls->name = std::move(name);
  classes_.push_back(std::move(cls));
  return *classes_.back();
}

void Program::finalize() {
  ABCL_CHECK(!finalized_);
  patterns_.freeze();
  const std::size_t np = patterns_.size();
  fault_vft_ = make_fault_vft(np);
  for (auto& c : classes_) build_class_vfts(*c, np);
  register_builtin_handlers(*this);
  finalized_ = true;
}

}  // namespace abcl::core
