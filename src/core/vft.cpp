#include "core/vft.hpp"

#include <cstdio>

#include "core/node_runtime.hpp"
#include "core/object.hpp"

namespace abcl::core {

Status generic_queue_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m) {
  rt.queue_message(o, m);
  return Status::kDone;
}

Status not_understood_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m) {
  const char* cls = (o->cls != nullptr) ? o->cls->name.c_str() : "<fault-chunk>";
  const char* pat = rt.program().patterns().info(m.pattern).name.c_str();
  std::fprintf(stderr, "abclsim: message '%s' not understood by class '%s'\n",
               pat, cls);
  ABCL_CHECK_MSG(false, "message not understood");
  return Status::kDone;
}

Status lazy_init_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m) {
  ABCL_CHECK(o->needs_init && o->cls != nullptr);
  MsgView ctor_view{};
  if (o->pending_init != nullptr) ctor_view = MsgView::of_frame(*o->pending_init);
  o->cls->construct(o->state(), ctor_view);
  if (o->pending_init != nullptr) {
    rt.free_msg_frame(o->pending_init);
    o->pending_init = nullptr;
  }
  o->needs_init = false;
  o->vftp = &o->cls->dormant;
  o->mode = Mode::kDormant;
  return o->cls->dormant.entry(m.pattern)(rt, o, m);
}

Status select_restore_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m) {
  const Vft* vft = o->vftp;
  ABCL_DCHECK(vft->wait_site >= 0 && vft->cls != nullptr);
  const WaitSite& ws =
      *vft->cls->wait_sites[static_cast<std::size_t>(vft->wait_site)];
  const WaitSite::Accept* a = ws.find(m.pattern);
  ABCL_CHECK(a != nullptr);
  CtxFrameBase* f = o->blocked_frame;
  ABCL_CHECK(f != nullptr);
  a->copy_in(f, m);
  f->pc = a->resume_pc;
  rt.stats().local_to_waiting_hit += 1;
  // Run the continuation right here (the sender's stack hosts it, exactly
  // like a dormant-object invocation).
  ResumeFn resume = o->resume_entry;
  return resume(rt, o);
}

Vft make_fault_vft(std::size_t npatterns) {
  Vft v;
  v.cls = nullptr;
  v.mode = Mode::kFault;
  v.entries.assign(npatterns, &generic_queue_entry);
  return v;
}

void build_class_vfts(ClassInfo& cls, std::size_t npatterns) {
  ABCL_CHECK(!cls.finalized);
  cls.methods.resize(npatterns);

  cls.dormant.cls = &cls;
  cls.dormant.mode = Mode::kDormant;
  cls.dormant.entries.assign(npatterns, &not_understood_entry);

  cls.active.cls = &cls;
  cls.active.mode = Mode::kActive;
  cls.active.entries.assign(npatterns, &generic_queue_entry);

  cls.lazy_init.cls = &cls;
  cls.lazy_init.mode = Mode::kUninitialized;
  cls.lazy_init.entries.assign(npatterns, &lazy_init_entry);

  for (std::size_t p = 0; p < npatterns; ++p) {
    if (cls.methods[p].body != nullptr) {
      cls.dormant.entries[p] = cls.methods[p].body;
    }
  }

  std::int32_t site_idx = 0;
  for (auto& site_ptr : cls.wait_sites) {
    WaitSite& ws = *site_ptr;
    ABCL_CHECK_MSG(ws.resume != nullptr, "wait site missing resume entry");
    ws.vft.cls = &cls;
    ws.vft.mode = Mode::kWaiting;
    ws.vft.wait_site = site_idx++;
    ws.vft.entries.assign(npatterns, &generic_queue_entry);
    for (const auto& a : ws.accepts) {
      ABCL_CHECK(a.pattern < npatterns && a.copy_in != nullptr);
      ws.vft.entries[a.pattern] = &select_restore_entry;
    }
  }
  cls.finalized = true;
}

}  // namespace abcl::core
