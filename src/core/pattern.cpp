#include "core/pattern.hpp"

#include "util/assert.hpp"

namespace abcl::core {

PatternId PatternRegistry::intern(std::string_view name, std::uint8_t arity) {
  ABCL_CHECK_MSG(!frozen_, "pattern registry frozen (program already finalized)");
  ABCL_CHECK(arity <= kMaxArgs);
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].name == name) {
      ABCL_CHECK_MSG(infos_[i].arity == arity,
                     "pattern re-interned with a different arity");
      return static_cast<PatternId>(i);
    }
  }
  ABCL_CHECK_MSG(infos_.size() < 0xFFFe, "too many message patterns");
  infos_.push_back(PatternInfo{std::string(name), arity});
  return static_cast<PatternId>(infos_.size() - 1);
}

PatternId PatternRegistry::id_of(std::string_view name) const {
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].name == name) return static_cast<PatternId>(i);
  }
  ABCL_CHECK_MSG(false, "unknown message pattern");
  return 0;
}

const PatternInfo& PatternRegistry::info(PatternId id) const {
  ABCL_CHECK(id < infos_.size());
  return infos_[id];
}

}  // namespace abcl::core
