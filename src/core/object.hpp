// Concurrent object representation (Figure 2).
//
// An object is: a state-variable box (the user's struct, placed immediately
// after the header), a message queue (buffered MsgFrames), and a VFTP —
// the pointer to the virtual function table of its current mode. The header
// additionally carries the blocked continuation (heap frame + resume entry)
// and the intrusive scheduling-queue link.
#pragma once

#include "core/frame.hpp"
#include "core/reply.hpp"
#include "core/types.hpp"
#include "core/vft.hpp"
#include "util/intrusive_list.hpp"

namespace abcl::core {

enum class SchedState : std::uint8_t {
  kNone = 0,
  kQueuedNext,    // scheduled to process the next buffered message
  kQueuedResume,  // scheduled to resume a preempted/yielded context
};

struct ObjectHeader {
  const Vft* vftp = nullptr;
  const ClassInfo* cls = nullptr;  // null while a fault-mode chunk
  NodeId home = -1;

  util::IntrusiveFifo<MsgFrame, &MsgFrame::next> mq;

  // Saved continuation when blocked (waiting mode) or preempted.
  CtxFrameBase* blocked_frame = nullptr;
  ResumeFn resume_entry = nullptr;

  // Reply box this object is registered on while blocked (await or hybrid
  // await-or-select). Cleared on resume; if the select alternative won, the
  // box registration is cancelled so a later reply simply fills the box.
  ReplyBox* awaiting_box = nullptr;

  // Lazily-initialized local creation: the creation arguments, kept until
  // the first message triggers state-variable initialization.
  MsgFrame* pending_init = nullptr;

  // Node-wise scheduling queue membership (at most one item per object).
  ObjectHeader* sched_next = nullptr;
  SchedState sched_state = SchedState::kNone;

  // Node-local live-object list (O(1) unlink for retirement).
  ObjectHeader* live_next = nullptr;
  ObjectHeader** live_pprev = nullptr;

  Mode mode = Mode::kFault;
  bool needs_init = false;   // state variables not yet constructed (lazy init)
  bool retired = false;      // app asked to reclaim after the current method
  std::uint16_t alloc_size_class = 0;  // pool class of header+state chunk

  void* state() {
    return reinterpret_cast<std::byte*>(this) + state_offset();
  }
  const void* state() const {
    return reinterpret_cast<const std::byte*>(this) + state_offset();
  }

  template <class T>
  T* state_as() {
    return static_cast<T*>(state());
  }

  // State storage begins at a fixed 16-byte-aligned offset past the header,
  // so `(node, pointer)` mail addresses can be formatted as chunks before
  // the class (and hence the state layout) is known — the remote-creation
  // pre-initialization requires exactly this (Section 5.2).
  static constexpr std::size_t state_offset() {
    return (sizeof_header_rounded());
  }

  bool is_idle_receiver() const {
    return mode == Mode::kDormant || mode == Mode::kUninitialized;
  }

 private:
  static constexpr std::size_t sizeof_header_rounded();
};

// Defined after the class is complete.
constexpr std::size_t ObjectHeader::sizeof_header_rounded() {
  constexpr std::size_t kAlign = 16;
  return (sizeof(ObjectHeader) + kAlign - 1) / kAlign * kAlign;
}

// Total allocation size for an object of a class with `state_bytes` state.
inline std::size_t object_alloc_bytes(std::size_t state_bytes) {
  return ObjectHeader::state_offset() + (state_bytes == 0 ? 1 : state_bytes);
}

}  // namespace abcl::core
