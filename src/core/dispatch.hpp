// Generated method entries (what the ABCL compiler emits as C functions).
//
// Every method of every class is represented by a *frame type* FrameT — a
// trivially-copyable struct deriving CtxFrameBase that holds the message
// arguments, the persistent locals and the continuation pc — plus two
// static functions:
//
//    static void  init(FrameT&, const MsgView&);   // land the arguments
//    static Status run(NodeRuntime&, T&, FrameT&); // the body state machine
//
// method_entry<T, FrameT> is the dormant-table entry: it switches the VFTP
// to the active (queuing) table, runs the body with the frame as a plain
// stack object, and on completion runs the method epilogue. If the body
// blocks, the frame is lazily spilled to the heap (one memcpy — the paper's
// context save) and the object transitions to waiting mode.
#pragma once

#include <cstring>
#include <type_traits>

#include "core/node_runtime.hpp"

namespace abcl::core {

template <class T, class FrameT>
Status run_frame(NodeRuntime& rt, ObjectHeader* o, FrameT& f, bool on_stack);

// Continuation entry stored in ObjectHeader::resume_entry while blocked.
template <class T, class FrameT>
Status resume_frame(NodeRuntime& rt, ObjectHeader* o) {
  auto* f = static_cast<FrameT*>(o->blocked_frame);
  o->blocked_frame = nullptr;
  // If the object was also registered on a reply box (await / hybrid
  // await-or-select) and something else resumed it, cancel the
  // registration: a later reply then simply fills the box.
  if (ReplyBox* b = o->awaiting_box) {
    o->awaiting_box = nullptr;
    if (b->state == ReplyBox::State::kWaiting && b->waiter == o) {
      b->state = ReplyBox::State::kEmpty;
      b->waiter = nullptr;
    }
  }
  rt.charge(rt.cost_model().ctx_restore);
  rt.stats().resumes += 1;
  rt.trace(sim::TraceEv::kResume, o->cls->id);
  return run_frame<T, FrameT>(rt, o, *f, /*on_stack=*/false);
}

template <class T, class FrameT>
Status run_frame(NodeRuntime& rt, ObjectHeader* o, FrameT& f, bool on_stack) {
  static_assert(std::is_trivially_copyable_v<FrameT>,
                "method frames are spilled by memcpy; keep them trivially copyable");
  static_assert(std::is_base_of_v<CtxFrameBase, FrameT>,
                "method frames must derive core::CtxFrameBase");

  o->vftp = &o->cls->active;
  o->mode = Mode::kActive;

  ObjectHeader* prev = rt.current_object();
  rt.set_current_object(o);
  Status s = FrameT::run(rt, *o->template state_as<T>(), f);
  rt.set_current_object(prev);

  if (s == Status::kDone) {
    if (!on_stack) rt.free_ctx_frame(&f);
    rt.method_epilogue(o);
    return s;
  }

  // Blocked: lazily move the stack frame to the heap (first block only).
  FrameT* hf;
  if (on_stack) {
    rt.charge(rt.cost_model().ctx_save);
    hf = rt.alloc_ctx_frame<FrameT>();
    std::memcpy(static_cast<void*>(hf), static_cast<const void*>(&f),
                sizeof(FrameT));
    hf->bytes = sizeof(FrameT);
  } else {
    hf = &f;
  }
  rt.commit_block(o, hf, &resume_frame<T, FrameT>);
  return Status::kBlocked;
}

// The dormant-table entry for a method: invoked directly by a local sender
// (stack scheduling) or by the scheduler when dispatching a buffered
// message.
template <class T, class FrameT>
Status method_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m) {
  if (!rt.cost_model().opt.elide_vftp_switch) {
    rt.charge(rt.cost_model().vftp_switch);
  }
  FrameT f{};
  f.pc = 0;
  FrameT::init(f, m);
  return run_frame<T, FrameT>(rt, o, f, /*on_stack=*/true);
}

}  // namespace abcl::core
