// Reply-destination boxes (Sections 2.2, 4.3).
//
// A now-type send allocates a reply box from the node's pool and passes its
// address (node, box pointer) as the message's reply destination. The box is
// an addressable object in its own right: any holder of the reply
// destination may fill it, locally or via the reply active message. After
// the send returns, the sender checks the box — with stack-based scheduling
// the callee usually ran first, so the box is already full and no blocking
// occurs; otherwise the sender spills its frame and the box resumes it when
// the reply arrives.
#pragma once

#include "core/mail_addr.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"

namespace abcl::core {

inline constexpr int kMaxReplyWords = 4;

struct ReplyBox {
  enum class State : std::uint8_t {
    kEmpty,    // no reply yet, owner not blocked
    kFull,     // reply stored, owner not yet resumed
    kWaiting,  // owner blocked on this box
  };

  State state = State::kEmpty;
  std::uint8_t nvals = 0;
  ObjectHeader* waiter = nullptr;  // valid iff state == kWaiting
  void* pending_create = nullptr;  // cookie for remote-create stock misses
  Word vals[kMaxReplyWords] = {};

  void store(const Word* v, int n) {
    ABCL_DCHECK(n >= 0 && n <= kMaxReplyWords);
    for (int i = 0; i < n; ++i) vals[i] = v[i];
    nvals = static_cast<std::uint8_t>(n);
  }
};

// Handle a method keeps (in its frame) for an outstanding now-type call.
// Trivially copyable so frames containing it can be spilled by memcpy.
struct NowCall {
  ReplyBox* box = nullptr;

  bool pending() const { return box != nullptr; }
};

}  // namespace abcl::core
