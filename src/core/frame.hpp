// Frames (Section 4.3).
//
// The paper allocates one frame per message holding arguments, locals and
// scheduling fields; the frame lives on the stack while the invocation is
// unblocked and is lazily copied to the heap at the first block. We keep the
// same lifecycle but split the representation for type safety:
//
//  * MsgFrame  — a buffered message: pattern + argument words + reply
//                destination. Allocated on the heap by queuing procedures,
//                linked into the receiver's message queue.
//  * CtxFrame  — a method's typed continuation frame (arguments + locals +
//                pc). Declared by each method as a trivially-copyable struct
//                deriving CtxFrameBase; lives on the C++ stack until the
//                method first blocks, then is memcpy-spilled into the pool.
//
// The cost model charges the unified-frame costs the paper reports, so the
// split is representational only.
#pragma once

#include <cstring>

#include "core/mail_addr.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"

namespace abcl::core {

// A received-but-unprocessed message, as stored by a queuing procedure.
struct MsgFrame {
  MsgFrame* next = nullptr;  // message-queue link
  PatternId pattern = 0;
  std::uint8_t nargs = 0;
  ReplyDest reply;
  Word args[kMaxArgs];
};

// Read-only view of an in-flight message, valid only for the duration of a
// dispatch (args may point into the sender's stack or a packet).
struct MsgView {
  PatternId pattern = 0;
  std::uint8_t nargs = 0;
  const Word* args = nullptr;
  ReplyDest reply;

  Word at(int i) const {
    ABCL_DCHECK(i >= 0 && i < nargs);
    return args[i];
  }
  std::int64_t i64(int i) const { return static_cast<std::int64_t>(at(i)); }
  MailAddr addr(int i) const { return MailAddr::from_words(at(i), at(i + 1)); }

  static MsgView of_frame(const MsgFrame& f) {
    return MsgView{f.pattern, f.nargs, f.args, f.reply};
  }
};

// Borrowed view of a word sequence (argument lists). The abcl::ArgPack
// helper converts to this implicitly, so runtime calls accept either raw
// (Word*, n) pairs or packed typed arguments.
struct WordSpan {
  const Word* ptr = nullptr;
  int n = 0;
};

// Base of every method continuation frame. Derived frames must be
// trivially copyable (they are spilled by memcpy, exactly as the paper's
// context save copies locals into the heap frame).
struct CtxFrameBase {
  std::uint16_t pc = 0;
  std::uint16_t bytes = 0;  // set at spill time; used to recycle the pool slot
};

}  // namespace abcl::core
