// Multiple virtual function tables (Section 4.2).
//
// Each class owns several virtual function tables, one per object mode:
//   dormant    — entries are the method bodies; a message send to a dormant
//                object therefore *is* the method call (stack scheduling);
//   active     — entries are queuing procedures that buffer the message;
//   lazy-init  — entries initialize the state variables, then fall through
//                to the method body (local creation defers initialization
//                to the first message, avoiding a per-send "initialized?"
//                flag check);
//   waiting    — one table per selective-reception site: awaited patterns
//                restore the blocked context, the rest queue;
//   fault      — a single class-independent table, installed on pre-issued
//                remote chunks; all entries queue, so messages racing ahead
//                of the creation request are buffered safely.
//
// The sender never tests the receiver's mode: the mode is whichever table
// the receiver's VFTP points at, and the lookup is the (already necessary)
// dynamic method dispatch.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/frame.hpp"
#include "core/types.hpp"

namespace abcl::core {

// A dispatch entry: runs when a message with the indexing pattern is
// delivered to an object whose VFTP designates the containing table.
using EntryFn = Status (*)(NodeRuntime&, ObjectHeader*, const MsgView&);

// Continuation entry for a blocked object (resume saved frame).
using ResumeFn = Status (*)(NodeRuntime&, ObjectHeader*);

struct Vft {
  const ClassInfo* cls = nullptr;  // null for the shared fault table
  Mode mode = Mode::kDormant;
  std::int32_t wait_site = -1;     // >= 0 for waiting tables
  std::vector<EntryFn> entries;    // indexed by PatternId

  EntryFn entry(PatternId p) const {
    ABCL_DCHECK(p < entries.size());
    return entries[p];
  }
};

struct MethodInfo {
  EntryFn body = nullptr;   // dormant-mode entry (nullptr = not understood)
  std::uint8_t arity = 0;
};

// One selective-reception site: the set of accepted patterns, and for each
// the copy-in procedure that lands the message's arguments into the blocked
// frame plus the continuation pc to resume at.
struct WaitSite {
  struct Accept {
    PatternId pattern = 0;
    // Type-erased: frame is the method's CtxFrame.
    void (*copy_in)(void* frame, const MsgView&) = nullptr;
    std::uint16_t resume_pc = 0;
  };

  std::vector<Accept> accepts;
  ResumeFn resume = nullptr;  // runs the saved frame after copy-in
  Vft vft;                    // built at Program::finalize()

  const Accept* find(PatternId p) const {
    for (const auto& a : accepts) {
      if (a.pattern == p) return &a;
    }
    return nullptr;
  }
};

struct ClassInfo {
  ClassId id = 0;
  std::string name;
  std::uint32_t state_bytes = 0;
  std::uint32_t state_align = alignof(std::max_align_t);

  // Placement-constructs the state object (default ctor, then the class's
  // on_create hook with the creation-message arguments, if it has one).
  void (*construct)(void* storage, const MsgView& ctor_args) = nullptr;
  void (*destruct)(void* storage) = nullptr;

  std::vector<MethodInfo> methods;       // indexed by PatternId
  std::vector<std::unique_ptr<WaitSite>> wait_sites;

  Vft dormant;
  Vft active;
  Vft lazy_init;
  // The class opted into live migration (ClassDef::migratable()): its state
  // is trivially copyable/destructible, so a raw word copy of the state box
  // is a faithful transfer and the stale copy left at the old home needs no
  // teardown. Non-migratable objects are simply never shed.
  bool migratable = false;
  bool finalized = false;

  const MethodInfo* method(PatternId p) const {
    if (p >= methods.size() || methods[p].body == nullptr) return nullptr;
    return &methods[p];
  }
};

// Entry installed in every slot of every `active` table (and the fault
// table): buffers the message into the receiver's queue. Generic for all
// classes — the property the remote-creation scheme relies on (Section 5.2).
Status generic_queue_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m);

// Entry for patterns a class has no method for.
Status not_understood_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m);

// Entry of the lazy-init table: constructs the state variables from the
// stashed creation arguments, installs the dormant table, then dispatches
// the triggering message. Class-generic (construction is type-erased).
Status lazy_init_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m);

// Entry installed for accepted patterns in a waiting table: lands the
// message into the blocked frame via the site's copy-in, sets the
// continuation pc and resumes the object immediately (stack scheduling).
Status select_restore_entry(NodeRuntime& rt, ObjectHeader* o, const MsgView& m);

// The shared fault table (all queuing entries), sized to `npatterns`.
Vft make_fault_vft(std::size_t npatterns);

// Fills the per-class tables from `methods`/`wait_sites`. Called by
// Program::finalize() once the pattern registry is frozen.
void build_class_vfts(ClassInfo& cls, std::size_t npatterns);

}  // namespace abcl::core
