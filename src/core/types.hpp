// Shared scalar types of the core runtime.
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace abcl::core {

using Word = net::Word;            // untyped 64-bit message/frame cell
using NodeId = std::int32_t;
using PatternId = std::uint16_t;   // compile-time-unique message pattern id
using ClassId = std::uint16_t;

// Result of running a method entry or continuation.
enum class Status : std::uint8_t {
  kDone,     // method completed; epilogue has run
  kBlocked,  // context saved to a heap frame; object is in waiting mode
};

// Object execution modes (Section 2.1). The authoritative encoding is the
// VFTP (which table the object points at); this enum mirrors it for stats
// and invariant checks.
enum class Mode : std::uint8_t {
  kDormant,        // no messages being processed; body table installed
  kActive,         // executing or scheduled; queuing table installed
  kWaiting,        // blocked in selective reception / reply wait
  kUninitialized,  // created locally, state vars not yet initialized
  kFault,          // remote-created chunk, creation request not yet arrived
  kMigrating,      // state shipped to a new home; inbox buffering until Done
  kForwarding,     // forwarding stub: bounces mail to the object's new home
};

inline const char* to_string(Mode m) {
  switch (m) {
    case Mode::kDormant: return "dormant";
    case Mode::kActive: return "active";
    case Mode::kWaiting: return "waiting";
    case Mode::kUninitialized: return "uninitialized";
    case Mode::kFault: return "fault";
    case Mode::kMigrating: return "migrating";
    case Mode::kForwarding: return "forwarding";
  }
  return "?";
}

inline constexpr int kMaxArgs = 12;          // max message arity
inline constexpr std::uint16_t kPcBlocked = 0xFFFF;  // select_try sentinel

class NodeRuntime;
struct ObjectHeader;
struct ClassInfo;
struct Vft;
struct MsgFrame;
struct ReplyBox;

}  // namespace abcl::core
