#include "core/scheduler.hpp"

namespace abcl::core {

void NodeStats::merge(const NodeStats& o) {
  // Field-coverage guard: a new NodeStats member must be merged below or
  // World::total_stats silently drops it (27 uint64 counters plus 5
  // Log2Histograms on LP64). tests/test_obs.cpp checks the fields.
  static_assert(sizeof(NodeStats) ==
                    27 * sizeof(std::uint64_t) +
                        (kNumAmCategories + 1) * sizeof(util::Log2Histogram),
                "new NodeStats field? merge it here and in the tests");
  local_sends += o.local_sends;
  local_to_dormant += o.local_to_dormant;
  local_to_active += o.local_to_active;
  local_to_waiting_hit += o.local_to_waiting_hit;
  forced_buffer_depth += o.forced_buffer_depth;
  remote_sends += o.remote_sends;
  remote_recv += o.remote_recv;
  replies_sent += o.replies_sent;
  blocks_await += o.blocks_await;
  blocks_select += o.blocks_select;
  yields += o.yields;
  resumes += o.resumes;
  await_fast_hits += o.await_fast_hits;
  creations_local += o.creations_local;
  creations_remote += o.creations_remote;
  chunk_stock_hits += o.chunk_stock_hits;
  chunk_stock_misses += o.chunk_stock_misses;
  sched_enqueues += o.sched_enqueues;
  sched_dispatches += o.sched_dispatches;
  migrations_out += o.migrations_out;
  migrations_in += o.migrations_in;
  migration_mail += o.migration_mail;
  migration_forwards += o.migration_forwards;
  migration_updates += o.migration_updates;
  migration_holds += o.migration_holds;
  busy_instr += o.busy_instr;
  idle_instr += o.idle_instr;
  for (int i = 0; i < kNumAmCategories; ++i) msg_latency[i].merge(o.msg_latency[i]);
  sched_depth.merge(o.sched_depth);
}

}  // namespace abcl::core
