// Placement policies (Section 2.5's locality control) and the Category-4
// load-gossip service.
#include <gtest/gtest.h>

#include <set>

#include "apps/counters.hpp"
#include "remote/placement.hpp"
#include "support.hpp"

namespace {

using namespace abcl;

struct Fixture {
  core::Program prog;
  apps::CounterProgram counter;

  Fixture() {
    counter = apps::register_counter(prog);
    prog.finalize();
  }
};

TEST(Placement, SelfAlwaysReturnsHome) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 8;
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kSelf);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.choose(world.node(3)), 3);
}

TEST(Placement, RoundRobinCyclesOverAllNodes) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 8;
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kRoundRobin);
  std::set<NodeId> seen;
  for (int i = 0; i < 8; ++i) seen.insert(p.choose(world.node(2)));
  EXPECT_EQ(seen.size(), 8u);  // covers every node (incl. eventually self)
}

TEST(Placement, RandomStaysInRangeAndSpreads) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 16;
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kRandom);
  std::set<NodeId> seen;
  for (int i = 0; i < 400; ++i) {
    NodeId t = p.choose(world.node(0));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 16);
    seen.insert(t);
  }
  EXPECT_GE(seen.size(), 12u);
}

TEST(Placement, NeighborReturnsOneHopTargets) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 16;  // 4x4 torus
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kNeighbor);
  const auto& topo = world.network().topology();
  for (int i = 0; i < 12; ++i) {
    NodeId t = p.choose(world.node(5));
    EXPECT_EQ(topo.hops(5, t), 1);
  }
}

TEST(Placement, SingleNodeWorldAlwaysSelf) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 1;
  World world(fx.prog, cfg);
  for (auto kind :
       {remote::PlacementKind::kSelf, remote::PlacementKind::kRoundRobin,
        remote::PlacementKind::kRandom, remote::PlacementKind::kNeighbor,
        remote::PlacementKind::kLeastLoaded}) {
    remote::Placement p(kind);
    EXPECT_EQ(p.choose(world.node(0)), 0);
  }
}

TEST(Placement, LeastLoadedUsesGossipedLoads) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 16;
  World world(fx.prog, cfg);
  auto& rt = world.node(5);
  auto nbs = world.network().topology().neighbors(5);
  ASSERT_GE(nbs.size(), 2u);
  // All neighbours heavily loaded except one.
  for (auto nb : nbs) rt.note_peer_load(nb, 100);
  rt.note_peer_load(nbs[1], 0);
  remote::Placement p(remote::PlacementKind::kLeastLoaded);
  // Self has load 0 as well; the policy prefers strictly smaller loads, so
  // with equal best it stays local. Make the distinction observable:
  EXPECT_EQ(p.choose(rt), 5);  // self load 0 == best neighbour: stays home
  rt.note_peer_load(nbs[1], 0);
  // Give self synthetic load by filling its sched queue indirectly: not
  // accessible here, so assert the ranking logic through known loads only.
  for (auto nb : nbs) {
    if (nb != nbs[1]) {
      EXPECT_NE(p.choose(rt), nb);
    }
  }
}

TEST(Placement, GossipServiceDistributesLoads) {
  Fixture fx;
  WorldConfig cfg;
  cfg.nodes = 4;
  World world(fx.prog, cfg);
  world.boot(1, [&](Ctx& ctx) { ctx.gossip_load_now(); });
  world.run();
  // Every neighbour of node 1 heard a load figure (possibly zero); check
  // the service plumbing by noting a nonzero load and re-gossiping.
  const auto& ns = world.network().stats();
  EXPECT_EQ(ns.per_category[static_cast<int>(net::AmCategory::kService)],
            world.network().topology().neighbors(1).size());
}

}  // namespace
