// Placement policies (Section 2.5's locality control) and the Category-4
// load-gossip service.
#include <gtest/gtest.h>

#include <set>

#include "apps/counters.hpp"
#include "remote/placement.hpp"
#include "support.hpp"

namespace {

using namespace abcl;

struct Fixture {
  core::Program prog;
  apps::CounterProgram counter;

  Fixture() {
    counter = apps::register_counter(prog);
    prog.finalize();
  }
};

TEST(Placement, SelfAlwaysReturnsHome) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(8);
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kSelf);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.choose(world.node(3)), 3);
}

TEST(Placement, RoundRobinCyclesOverAllNodes) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(8);
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kRoundRobin);
  std::set<NodeId> seen;
  for (int i = 0; i < 8; ++i) seen.insert(p.choose(world.node(2)));
  EXPECT_EQ(seen.size(), 8u);  // covers every node (incl. eventually self)
}

TEST(Placement, RandomStaysInRangeAndSpreads) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(16);
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kRandom);
  std::set<NodeId> seen;
  for (int i = 0; i < 400; ++i) {
    NodeId t = p.choose(world.node(0));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 16);
    seen.insert(t);
  }
  EXPECT_GE(seen.size(), 12u);
}

TEST(Placement, NeighborReturnsOneHopTargets) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(16);  // 4x4 torus
  World world(fx.prog, cfg);
  remote::Placement p(remote::PlacementKind::kNeighbor);
  const auto& topo = world.network().topology();
  for (int i = 0; i < 12; ++i) {
    NodeId t = p.choose(world.node(5));
    EXPECT_EQ(topo.hops(5, t), 1);
  }
}

TEST(Placement, SingleNodeWorldAlwaysSelf) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  for (auto kind :
       {remote::PlacementKind::kSelf, remote::PlacementKind::kRoundRobin,
        remote::PlacementKind::kRandom, remote::PlacementKind::kNeighbor,
        remote::PlacementKind::kLeastLoaded}) {
    remote::Placement p(kind);
    EXPECT_EQ(p.choose(world.node(0)), 0);
  }
}

TEST(Placement, LeastLoadedUsesGossipedLoads) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(16);
  World world(fx.prog, cfg);
  auto& rt = world.node(5);
  auto nbs = world.network().topology().neighbors(5);
  ASSERT_GE(nbs.size(), 2u);
  // All neighbours heavily loaded except one.
  for (auto nb : nbs) rt.note_peer_load(nb, 100);
  rt.note_peer_load(nbs[1], 0);
  remote::Placement p(remote::PlacementKind::kLeastLoaded);
  // Self has load 0 as well; the policy prefers strictly smaller loads, so
  // with equal best it stays local. Make the distinction observable:
  EXPECT_EQ(p.choose(rt), 5);  // self load 0 == best neighbour: stays home
  rt.note_peer_load(nbs[1], 0);
  // Give self synthetic load by filling its sched queue indirectly: not
  // accessible here, so assert the ranking logic through known loads only.
  for (auto nb : nbs) {
    if (nb != nbs[1]) {
      EXPECT_NE(p.choose(rt), nb);
    }
  }
}

TEST(LoadMap, UnknownPeerIsNulloptNotZero) {
  // Regression: get() used to return 0 for peers never heard from, which
  // made kLeastLoaded read silence as idleness and pile work onto exactly
  // the nodes whose gossip was lost.
  remote::LoadMap m;
  EXPECT_EQ(m.get(3, /*now_quanta=*/100, /*max_age=*/8), std::nullopt);
  m.note(3, 7, /*now_quanta=*/100);
  EXPECT_EQ(m.get(3, 100, 8), std::optional<std::uint32_t>(7));
  EXPECT_EQ(m.get(4, 100, 8), std::nullopt);  // still unknown
}

TEST(LoadMap, EntriesGoStaleAfterMaxAge) {
  // Regression: entries never aged, so a peer whose gossip stopped (drops,
  // blackout) kept its last figure forever.
  remote::LoadMap m;
  m.note(2, 5, /*now_quanta=*/10);
  EXPECT_EQ(m.get(2, 18, /*max_age=*/8), std::optional<std::uint32_t>(5));
  EXPECT_EQ(m.get(2, 19, 8), std::nullopt);  // one quantum past the age limit
  EXPECT_EQ(m.get(2, 19, 0), std::optional<std::uint32_t>(5));  // 0 = no aging
  m.note(2, 6, 30);  // fresh gossip revives the peer
  EXPECT_EQ(m.get(2, 31, 8), std::optional<std::uint32_t>(6));
  EXPECT_EQ(m.known_peers(), 1u);
}

TEST(Placement, LeastLoadedFallsBackToSelfWhenGossipSilent) {
  // Regression for the unknown-peer bug at the policy level: a busy node
  // whose neighbours have never gossiped must keep work local rather than
  // dumping it on a peer it knows nothing about.
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(16);
  cfg.node.max_call_depth = 0;  // no direct calls: boot sends really queue
  World world(fx.prog, cfg);
  // Boot enqueues real work on node 5, so self reports a nonzero load —
  // the exact situation where the old code preferred a silent neighbour.
  world.boot(5, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*fx.counter.cls, {});
    for (int i = 0; i < 4; ++i) ctx.send_past(c, fx.counter.inc, {});
  });
  auto& rt = world.node(5);
  ASSERT_GT(rt.sched_queue_len(), 0u);
  for (auto nb : world.network().topology().neighbors(5)) {
    EXPECT_EQ(rt.known_load(nb), std::nullopt);
  }
  remote::Placement p(remote::PlacementKind::kLeastLoaded);
  EXPECT_EQ(p.choose(rt), 5);
  // A single fresh gossiped figure re-enables spreading.
  auto nbs = world.network().topology().neighbors(5);
  rt.note_peer_load(nbs[0], 0);
  EXPECT_EQ(p.choose(rt), nbs[0]);
}

TEST(Placement, GossipServiceDistributesLoads) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(fx.prog, cfg);
  world.boot(1, [&](Ctx& ctx) { ctx.gossip_load_now(); });
  world.run();
  // Every neighbour of node 1 heard a load figure (possibly zero); check
  // the service plumbing by noting a nonzero load and re-gossiping.
  const auto& ns = world.network().stats();
  EXPECT_EQ(ns.per_category[static_cast<int>(net::AmCategory::kService)],
            world.network().topology().neighbors(1).size());
}

}  // namespace
