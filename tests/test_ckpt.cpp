// Checkpoint/restore tests: the ABCLSIM_CHECKPOINT spec grammar, the
// WorldConfig precedence contract (from_env + with_* overrides), stop
// reasons, quanta accounting across a restore, snapshot determinism
// (byte-identical re-capture), the never-a-partial-world integrity gates
// (versioning, truncation, corrupted-byte fuzz) and the snapshot-equivalence
// oracle: run-to-T + checkpoint + restore + continue must be byte-identical
// to the uninterrupted run across the serial and host-parallel drivers,
// with faults and migration both off and on — plus a crash-recovery drill
// that loses a segment of the run and replays it from the last checkpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "abcl/machine_api.hpp"
#include "abcl/termination.hpp"
#include "ckpt/snapshot.hpp"
#include "fuzz/interp.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/program_gen.hpp"
#include "obs/json.hpp"
#include "sim/parallel_machine.hpp"

namespace {

using namespace abcl;

constexpr int kSerial = -1;

// Saves/restores one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

ckpt::CheckpointConfig at_config(std::uint64_t at) {
  ckpt::CheckpointConfig ck;
  ck.enabled = true;
  ck.at = at;
  return ck;
}

// ------------------------------------------------ spec grammar + knob ------

TEST(CkptSpec, UnsetOrOffMeansDisabled) {
  std::string err;
  for (const char* text : {static_cast<const char*>(nullptr), "", "off"}) {
    auto cfg = ckpt::parse_checkpoint_spec(text, &err);
    ASSERT_TRUE(cfg.has_value()) << err;
    EXPECT_FALSE(cfg->enabled);
  }
}

TEST(CkptSpec, ParsesAtAndOptionalPath) {
  std::string err;
  auto cfg = ckpt::parse_checkpoint_spec("at=5000", &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_TRUE(cfg->enabled);
  EXPECT_EQ(cfg->at, 5000u);
  EXPECT_TRUE(cfg->path.empty());

  cfg = ckpt::parse_checkpoint_spec(" at = 12 , path = /tmp/w.ck ", &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->at, 12u);
  EXPECT_EQ(cfg->path, "/tmp/w.ck");
}

TEST(CkptSpec, ToStringRoundTrips) {
  for (const char* text : {"off", "at=5000", "at=12,path=/tmp/w.ck"}) {
    std::string err;
    auto cfg = ckpt::parse_checkpoint_spec(text, &err);
    ASSERT_TRUE(cfg.has_value()) << err;
    auto again = ckpt::parse_checkpoint_spec(to_string(*cfg).c_str(), &err);
    ASSERT_TRUE(again.has_value()) << err;
    EXPECT_EQ(*cfg, *again);
    EXPECT_EQ(to_string(*cfg), to_string(*again));
  }
}

TEST(CkptSpec, GarbageNeverSilentlyDisables) {
  for (const char* text : {"at=zap", "at=0", "path=/tmp/x", "at=5,at=6",
                           "bogus=1", "at=", "at=5,"}) {
    std::string err;
    auto cfg = ckpt::parse_checkpoint_spec(text, &err);
    EXPECT_FALSE(cfg.has_value()) << text;
    EXPECT_NE(err.find("checkpoint spec"), std::string::npos) << err;
  }
}

TEST(CkptSpec, ValidateRejectsZeroBoundary) {
  ckpt::CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.at = 0;
  std::string err;
  EXPECT_FALSE(ckpt::validate_checkpoint_config(cfg, &err));
  EXPECT_NE(err.find("at must be >= 1"), std::string::npos) << err;
  cfg.enabled = false;  // a disabled config is always valid
  EXPECT_TRUE(ckpt::validate_checkpoint_config(cfg, &err));
}

TEST(CkptEnv, UnsetMeansDisabled) {
  ScopedEnv e("ABCLSIM_CHECKPOINT", nullptr);
  EXPECT_FALSE(WorldConfig::from_env().ckpt.enabled);
}

TEST(CkptEnv, ReadsFullSpec) {
  ScopedEnv e("ABCLSIM_CHECKPOINT", "at=777,path=snap.bin");
  WorldConfig cfg = WorldConfig::from_env();
  EXPECT_TRUE(cfg.ckpt.enabled);
  EXPECT_EQ(cfg.ckpt.at, 777u);
  EXPECT_EQ(cfg.ckpt.path, "snap.bin");
}

TEST(CkptEnvDeath, GarbageAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedEnv e("ABCLSIM_CHECKPOINT", "at=nope");
  EXPECT_DEATH({ WorldConfig::from_env(); }, "ABCLSIM_CHECKPOINT");
}

// ------------------------------------------- config precedence contract ----

// Last-wins precedence, direction 1: every environment-controlled knob is
// read by from_env(), and a subsequent with_* override replaces it.
// Direction 2: overriding one knob leaves every other env-derived knob
// untouched, and a repeated with_* keeps the last value.
TEST(ConfigPrecedence, EnvThenBuilderOverrideForEveryKnob) {
  ScopedEnv e1("ABCLSIM_HOST_THREADS", "3");
  ScopedEnv e2("ABCLSIM_POOLING", "0");
  ScopedEnv e3("ABCLSIM_QUEUE", "heap");
  ScopedEnv e4("ABCLSIM_FLUSH", "sort");
  ScopedEnv e5("ABCLSIM_FAULTS", "drop=0.05,seed=9");
  ScopedEnv e6("ABCLSIM_MIGRATION", "interval=16,seed=3");
  ScopedEnv e7("ABCLSIM_CHECKPOINT", "at=123,path=env.ck");

  WorldConfig cfg = WorldConfig::from_env();
  // from_env() picked up every variable.
  EXPECT_EQ(cfg.host_threads, 3);
  EXPECT_FALSE(cfg.pooling);
  EXPECT_EQ(cfg.queue, util::QueueKind::kHeap);
  EXPECT_EQ(cfg.flush, net::FlushKind::kSort);
  EXPECT_TRUE(cfg.faults.enabled);
  EXPECT_EQ(cfg.faults.drop_ppm, 50'000u);
  EXPECT_TRUE(cfg.migration.enabled);
  EXPECT_EQ(cfg.migration.interval, 16u);
  EXPECT_TRUE(cfg.ckpt.enabled);
  EXPECT_EQ(cfg.ckpt.at, 123u);

  // with_* overrides win over the environment, knob by knob.
  net::FaultConfig fc;
  fc.enabled = true;
  fc.dup_ppm = 10'000;
  remote::MigrationConfig mc;
  mc.enabled = true;
  mc.interval = 64;
  cfg.with_host_threads(7)
      .with_pooling(true)
      .with_queue(util::QueueKind::kBucket)
      .with_flush(net::FlushKind::kMerge)
      .with_faults(fc)
      .with_migration(mc)
      .with_ckpt(at_config(456));
  EXPECT_EQ(cfg.host_threads, 7);
  EXPECT_TRUE(cfg.pooling);
  EXPECT_EQ(cfg.queue, util::QueueKind::kBucket);
  EXPECT_EQ(cfg.flush, net::FlushKind::kMerge);
  EXPECT_EQ(cfg.faults.dup_ppm, 10'000u);
  EXPECT_EQ(cfg.faults.drop_ppm, 0u);
  EXPECT_EQ(cfg.migration.interval, 64u);
  EXPECT_EQ(cfg.ckpt.at, 456u);
  EXPECT_TRUE(cfg.ckpt.path.empty());
}

TEST(ConfigPrecedence, OverridingOneKnobLeavesTheOthersAlone) {
  ScopedEnv e1("ABCLSIM_HOST_THREADS", "3");
  ScopedEnv e2("ABCLSIM_POOLING", nullptr);
  ScopedEnv e3("ABCLSIM_QUEUE", "heap");
  ScopedEnv e4("ABCLSIM_FLUSH", nullptr);
  ScopedEnv e5("ABCLSIM_FAULTS", "drop=0.05,seed=9");
  ScopedEnv e6("ABCLSIM_MIGRATION", nullptr);
  ScopedEnv e7("ABCLSIM_CHECKPOINT", "at=123");

  WorldConfig cfg = WorldConfig::from_env().with_nodes(64).with_seed(5);
  EXPECT_EQ(cfg.nodes, 64);
  EXPECT_EQ(cfg.seed, 5u);
  // Env-derived knobs survive unrelated with_* calls.
  EXPECT_EQ(cfg.host_threads, 3);
  EXPECT_EQ(cfg.queue, util::QueueKind::kHeap);
  EXPECT_TRUE(cfg.faults.enabled);
  EXPECT_TRUE(cfg.ckpt.enabled);
  EXPECT_EQ(cfg.ckpt.at, 123u);

  // Repeated with_* on the same knob: last one wins.
  cfg.with_seed(9).with_seed(11);
  EXPECT_EQ(cfg.seed, 11u);
  cfg.with_ckpt(at_config(7)).with_ckpt(at_config(8));
  EXPECT_EQ(cfg.ckpt.at, 8u);
}

// ------------------------------------------------- world-level contract ----

TEST(CkptWorldDeath, CheckpointingRequiresPooling) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::Program prog;
  fuzz::register_interp(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_pooling(false).with_ckpt(at_config(100));
  EXPECT_DEATH({ World w(prog, cfg); }, "requires pooling");
}

TEST(CkptWorldDeath, CheckpointWithoutConfigDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::Program prog;
  fuzz::register_interp(prog);
  prog.finalize();
  World w(prog, WorldConfig{});
  ckpt::MemSink sink;
  EXPECT_DEATH({ w.checkpoint(sink); }, "not built with checkpointing");
}

TEST(CkptWorld, StopReasonsAndToString) {
  EXPECT_STREQ(to_string(StopReason::kQuiesced), "quiesced");
  EXPECT_STREQ(to_string(StopReason::kMaxTime), "max_time");
  EXPECT_STREQ(to_string(StopReason::kCheckpointRequested),
               "checkpoint_requested");

  const fuzz::Spec spec = fuzz::generate(1);
  {
    // No checkpoint: a truncated run reports kMaxTime, a full one kQuiesced.
    fuzz::FuzzWorld fw(spec, kSerial);
    RunReport r = fw.world().run(1);
    EXPECT_EQ(r.stop_reason, StopReason::kMaxTime);
    r = fw.world().run();
    EXPECT_EQ(r.stop_reason, StopReason::kQuiesced);
    EXPECT_TRUE(fw.latch().done());
    EXPECT_FALSE(fw.world().work_remaining());
  }
}

TEST(CkptWorld, ResumedQuantaAccountingAcrossRestore) {
  const fuzz::Spec spec = fuzz::generate(2);
  const fuzz::RunResult base = fuzz::run_spec(spec, kSerial);
  const std::uint64_t at = base.sim_time / 2 + 1;

  fuzz::FuzzWorld fw(spec, kSerial, nullptr, sim::CostModel::ap1000(),
                     util::QueueKind::kBucket, net::FlushKind::kMerge,
                     sim::HorizonKind::kGlobal, sim::ShardKind::kStatic,
                     at_config(at));
  RunReport r1 = fw.world().run();
  EXPECT_EQ(r1.stop_reason, StopReason::kCheckpointRequested);
  EXPECT_TRUE(fw.world().work_remaining());
  // The driver stops *starting* quanta keyed past `at`; the final quantum
  // may carry a clock beyond it, but the run stopped well short of the end.
  EXPECT_LT(r1.sim_time, base.sim_time);
  EXPECT_EQ(fw.world().resumed_quanta(), 0u);

  ckpt::MemSink sink;
  fw.checkpoint_to(sink);
  ckpt::MemSource src(sink.take());
  fw.restore_world(src);
  EXPECT_EQ(fw.world().resumed_quanta(), r1.quanta);

  RunReport r2 = fw.world().run();
  EXPECT_EQ(r2.stop_reason, StopReason::kQuiesced);
  EXPECT_EQ(r1.quanta + r2.quanta, base.quanta);
  EXPECT_EQ(r2.sim_time, base.sim_time);
  EXPECT_TRUE(fw.latch().done());
}

TEST(CkptWorld, FileCheckpointIsTransparentAndRecaptureRoundTrips) {
  const fuzz::Spec spec = fuzz::generate(3);
  const fuzz::RunResult base = fuzz::run_spec(spec, kSerial);
  ckpt::CheckpointConfig ck = at_config(base.sim_time / 2 + 1);
  ck.path = ::testing::TempDir() + "abclsim_snap.bin";

  // Fire-and-forget: a path-configured checkpoint writes the file at the
  // boundary and resumes inside the same run() call, so a
  // checkpoint-unaware caller sees the uninterrupted run's results.
  fuzz::FuzzWorld fw(spec, kSerial, nullptr, sim::CostModel::ap1000(),
                     util::QueueKind::kBucket, net::FlushKind::kMerge,
                     sim::HorizonKind::kGlobal, sim::ShardKind::kStatic, ck);
  RunReport r1 = fw.world().run();
  EXPECT_EQ(r1.stop_reason, StopReason::kQuiesced);
  EXPECT_EQ(r1.quanta, base.quanta);
  EXPECT_EQ(r1.sim_time, base.sim_time);
  EXPECT_TRUE(fw.latch().done());
  std::optional<std::string> file = obs::read_file(ck.path);
  ASSERT_TRUE(file.has_value());

  // Restoring the mid-run snapshot rewinds the world to the boundary, and
  // recapturing the restored world is byte-identical to the file — restore
  // is lossless and serialization is canonical (capture twice to also pin
  // that checkpoint() itself doesn't perturb state).
  ckpt::FileSource src(ck.path);
  fw.restore_world(src);
  ckpt::MemSink a, b;
  fw.checkpoint_to(a);
  fw.checkpoint_to(b);
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(a.bytes(), *file);

  // Replaying from the boundary finishes exactly like the baseline.
  RunReport r2 = fw.world().run();
  EXPECT_EQ(fw.world().resumed_quanta() + r2.quanta, base.quanta);
  EXPECT_EQ(r2.sim_time, base.sim_time);
  EXPECT_TRUE(fw.latch().done());
  std::remove(ck.path.c_str());
}

TEST(CkptWorld, SnapshotCarriesWindowAndShardPolicies) {
  // v2 snapshots record the horizon/shard knobs: a world checkpointed under
  // (distance, balanced) restores under (distance, balanced) even when the
  // restore overrides the thread count — the override swaps the driver
  // width, never the policy.
  const fuzz::Spec spec = fuzz::generate(2);
  const fuzz::RunResult base = fuzz::run_spec(spec, kSerial);
  const std::uint64_t at = base.sim_time / 2 + 1;

  fuzz::FuzzWorld fw(spec, /*host_threads=*/8, nullptr,
                     sim::CostModel::ap1000(), util::QueueKind::kBucket,
                     net::FlushKind::kMerge, sim::HorizonKind::kDistance,
                     sim::ShardKind::kBalanced, at_config(at));
  RunReport r1 = fw.world().run();
  EXPECT_EQ(r1.stop_reason, StopReason::kCheckpointRequested);
  ckpt::MemSink sink;
  fw.checkpoint_to(sink);

  for (int restore_threads : {0, 2}) {
    ckpt::MemSource src(sink.bytes());
    fw.restore_world(src, nullptr, restore_threads);
    EXPECT_EQ(fw.world().config().horizon, sim::HorizonKind::kDistance);
    EXPECT_EQ(fw.world().config().shard, sim::ShardKind::kBalanced);
    auto* pm = dynamic_cast<sim::ParallelMachine*>(&fw.world().machine());
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->horizon_kind(), sim::HorizonKind::kDistance);
    EXPECT_EQ(pm->shard_kind(), sim::ShardKind::kBalanced);
    RunReport r2 = fw.world().run();
    EXPECT_EQ(r2.stop_reason, StopReason::kQuiesced);
    EXPECT_EQ(r2.sim_time, base.sim_time);
    EXPECT_TRUE(fw.latch().done());
  }
}

// ------------------------------------------- never a partial world ---------

std::string snapshot_bytes(std::uint64_t seed) {
  const fuzz::Spec spec = fuzz::generate(seed);
  const fuzz::RunResult base = fuzz::run_spec(spec, kSerial);
  fuzz::FuzzWorld fw(spec, kSerial, nullptr, sim::CostModel::ap1000(),
                     util::QueueKind::kBucket, net::FlushKind::kMerge,
                     sim::HorizonKind::kGlobal, sim::ShardKind::kStatic,
                     at_config(base.sim_time / 2 + 1));
  fw.world().run();
  ckpt::MemSink sink;
  fw.checkpoint_to(sink);
  return sink.take();
}

// A Program with the same registry the snapshot was captured under. The
// corrupted streams below die inside Reader validation, before any World
// state exists — which is exactly the contract under test.
void expect_restore_death(const std::string& bytes, const char* diagnostic) {
  core::Program prog;
  fuzz::register_interp(prog);
  register_completion_latch(prog);
  prog.finalize();
  ckpt::MemSource src(bytes);
  EXPECT_DEATH({ World::restore(prog, src); }, diagnostic);
}

TEST(CkptIntegrityDeath, TruncatedAndFramedStreamsNeverBuildAWorld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string bytes = snapshot_bytes(4);
  ASSERT_GT(bytes.size(), 48u);

  expect_restore_death(bytes.substr(0, 20),
                       "shorter than the snapshot header");
  expect_restore_death(bytes.substr(0, bytes.size() - 7),
                       "payload shorter than the header claims");
  expect_restore_death(bytes + "x", "trailing bytes after the snapshot");

  std::string s = bytes;
  s[0] ^= 0x5a;  // magic (header bytes 0..7)
  expect_restore_death(s, "bad magic");

  s = bytes;
  s[8] ^= 0x5a;  // version (header bytes 8..11)
  expect_restore_death(s, "snapshot version");

  s = bytes;
  s[16] ^= 0x5a;  // program fingerprint (header bytes 16..23)
  expect_restore_death(s, "different Program");

  s = bytes;
  s[32] ^= 0x5a;  // checksum (header bytes 32..39)
  expect_restore_death(s, "checksum mismatch");
}

TEST(CkptIntegrityDeath, CorruptedPayloadBytesNeverBuildAWorld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string bytes = snapshot_bytes(4);
  const std::size_t payload = bytes.size() - 40;
  ASSERT_GT(payload, 8u);
  // One flipped byte at each of several positions spread across the
  // payload; every one must be caught by the up-front checksum.
  for (std::size_t frac : {0u, 1u, 2u, 3u, 4u}) {
    std::string s = bytes;
    s[40 + (payload - 1) * frac / 4] ^= 0x5a;
    expect_restore_death(s, "checksum mismatch");
  }
}

TEST(CkptIntegrityDeath, DifferentProgramIsRejectedByFingerprint) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string bytes = snapshot_bytes(4);
  // A program missing the completion latch's handlers: same binary, wrong
  // registry. The fingerprint gate must fire before anything is built.
  core::Program prog;
  fuzz::register_interp(prog);
  prog.finalize();
  ckpt::MemSource src(bytes);
  EXPECT_DEATH({ World::restore(prog, src); }, "different Program");
}

// --------------------------------------- snapshot-equivalence oracle -------

TEST(CkptEquivalence, SmokeAcrossDriversAndCrashRecovery) {
  for (std::uint64_t seed : {1ull, 7ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fuzz::OracleResult r = fuzz::check_spec_checkpoint(fuzz::generate(seed));
    EXPECT_TRUE(r.ok) << r.failure;
  }
}

TEST(CkptEquivalence, ExplicitBoundariesAndLateCheckpoint) {
  const fuzz::Spec spec = fuzz::generate(5);
  const fuzz::RunResult base = fuzz::run_spec(spec, kSerial);
  // A boundary past quiescence: the world drains first, the snapshot
  // captures the drained world, and the resumed run is a no-op.
  fuzz::RunResult late =
      fuzz::run_spec_with_checkpoint(spec, kSerial, base.sim_time + 1000);
  EXPECT_EQ(late.metrics_json, base.metrics_json);
  EXPECT_EQ(late.trace_hash, base.trace_hash);
  EXPECT_EQ(late.quanta, base.quanta);
  // An early boundary right after boot.
  fuzz::RunResult early = fuzz::run_spec_with_checkpoint(spec, kSerial, 1);
  EXPECT_EQ(early.metrics_json, base.metrics_json);
  EXPECT_EQ(early.trace_hash, base.trace_hash);
}

// The corpus gates. Every seed: uninterrupted serial baseline vs
// checkpoint+restore under serial and 1/2/8 workers, a cross-driver
// restore, and a crash-recovery replay — all byte-identical.
TEST(CkptFuzz, SnapshotEquivalenceCorpus) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fuzz::OracleResult r = fuzz::check_spec_checkpoint(fuzz::generate(seed));
    ASSERT_TRUE(r.ok) << r.failure;
  }
}

TEST(CkptFuzz, SnapshotEquivalenceUnderFaultsAndMigration) {
  net::FaultConfig fc;
  fc.enabled = true;
  fc.drop_ppm = 80'000;
  fc.dup_ppm = 40'000;
  fc.delay_ppm = 80'000;
  fc.seed = 17;
  remote::MigrationConfig mc;
  mc.enabled = true;
  mc.interval = 8;
  mc.hysteresis = 1;
  mc.max_batch = 4;
  mc.min_queue = 2;
  mc.seed = 5;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fuzz::Spec spec = fuzz::generate(seed);
    spec.faults = fc;
    spec.migration = mc;
    fuzz::OracleResult r = fuzz::check_spec_checkpoint(spec);
    ASSERT_TRUE(r.ok) << r.failure;
  }
}

}  // namespace
