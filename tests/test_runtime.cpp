// Core-runtime behaviour tests: the integrated stack/queue scheduler, the
// multiple virtual function tables, mode transitions, preemption, lazy
// initialization, retirement and cost accounting (Sections 4.1-4.3).
#include <gtest/gtest.h>

#include "apps/counters.hpp"
#include "support.hpp"

namespace {

using namespace abcl;
using namespace abcl::testsup;

struct Fixture {
  core::Program prog;
  EchoProgram echo;
  apps::CounterProgram counter;

  Fixture() {
    echo = register_echo(prog);
    counter = apps::register_counter(prog);
    prog.finalize();
    clear_log();
  }

  WorldConfig cfg(int nodes, core::SchedPolicy pol = core::SchedPolicy::kStack) {
    WorldConfig c;
    c.with_nodes(nodes);
    c.node.policy = pol;
    return c;
  }
};

// --- Figure 1: stack scheduling interleavings -------------------------------

TEST(Runtime, DormantReceiverRunsImmediatelyOnSenderStack) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    Word tag = 7;
    MailAddr e = ctx.create_local(*fx.echo.cls, &tag, 1);
    Word args[3] = {core::kNilAddr.word_node(), core::kNilAddr.word_ptr(), 0};
    ctx.send_past(e, fx.echo.run, args, 3);
    // The send returned only after the method fully executed (stack path).
    ASSERT_EQ(event_log().size(), 3u);
    EXPECT_EQ(event_log()[0], "ctor7");
    EXPECT_EQ(event_log()[1], "run7.0");
    EXPECT_EQ(event_log()[2], "end7.0");
  });
  world.run();
}

TEST(Runtime, MessageToActiveObjectIsBufferedAndScheduled) {
  // A.run(2) -> sends B.run(1); B sends back A.run(0) while A is active:
  // that message must be buffered and processed through the scheduling
  // queue AFTER both current methods finish (paper Figure 1, steps 3-5).
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    Word ta = 1, tb = 2;
    MailAddr a = ctx.create_local(*fx.echo.cls, &ta, 1);
    MailAddr b = ctx.create_local(*fx.echo.cls, &tb, 1);
    Word args[3] = {b.word_node(), b.word_ptr(), 2};
    ctx.send_past(a, fx.echo.run, args, 3);
  });
  world.run();
  std::vector<std::string> expected = {
      "ctor1",           // A initialized lazily at its first message
      "run1.2",          // A starts
      "ctor2",           // B initialized lazily when A's send reaches it
      "run2.1",          // B invoked immediately (dormant)
      "end2.1",          // B's send back to A was buffered (A active)
      "end1.2",          // A finishes its method
      "run1.0", "end1.0" // buffered message runs via the scheduling queue
  };
  EXPECT_EQ(event_log(), expected);
}

TEST(Runtime, NaivePolicyBuffersEverything) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1, core::SchedPolicy::kNaive));
  world.boot(0, [&](Ctx& ctx) {
    Word ta = 1, tb = 2;
    MailAddr a = ctx.create_local(*fx.echo.cls, &ta, 1);
    MailAddr b = ctx.create_local(*fx.echo.cls, &tb, 1);
    Word args[3] = {b.word_node(), b.word_ptr(), 2};
    ctx.send_past(a, fx.echo.run, args, 3);
    // Nothing ran inline: the message sits in A's queue.
    EXPECT_TRUE(event_log().empty());
  });
  world.run();
  std::vector<std::string> expected = {
      "ctor1", "run1.2", "end1.2",
      "ctor2", "run2.1", "end2.1",
      "run1.0", "end1.0",
  };
  EXPECT_EQ(event_log(), expected);
}

namespace burst {
// Burst: "burst.go" [n] sends itself n "burst.note" [i] messages. Because
// the object is active while sending, all notes are buffered; they must be
// processed in send order afterwards.
struct State {
  int notes_seen = 0;
};
struct NoteFrame : Frame {
  std::int64_t i = 0;
  static void init(NoteFrame& f, const Msg& m) { f.i = m.i64(0); }
  static Status run(Ctx&, State& self, NoteFrame& f) {
    log_event("note" + std::to_string(f.i));
    self.notes_seen += 1;
    return Status::kDone;
  }
};
struct GoFrame : Frame {
  std::int64_t n = 0;
  PatternId note_pat = 0;
  static void init(GoFrame& f, const Msg& m) {
    f.n = m.i64(0);
    f.note_pat = static_cast<PatternId>(m.at(1));
  }
  static Status run(Ctx& ctx, State&, GoFrame& f) {
    for (std::int64_t i = 0; i < f.n; ++i) {
      Word w = static_cast<Word>(i);
      ctx.send_past(ctx.self_addr(), f.note_pat, &w, 1);
    }
    return Status::kDone;
  }
};
}  // namespace burst

TEST(Runtime, FifoPreservedToActiveReceiver) {
  core::Program prog;
  PatternId note = prog.patterns().intern("burst.note", 1);
  PatternId go = prog.patterns().intern("burst.go", 2);
  ClassDef<burst::State> def(prog, "Burst");
  def.method<burst::NoteFrame>(note);
  def.method<burst::GoFrame>(go);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  clear_log();
  MailAddr b;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(def.info(), nullptr, 0);
    Word args[2] = {8, note};
    ctx.send_past(b, go, args, 2);
    // Self-sends were buffered, not run inline.
    EXPECT_TRUE(event_log().empty());
  });
  world.run();
  ASSERT_EQ(event_log().size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(event_log()[static_cast<std::size_t>(i)],
              "note" + std::to_string(i));
  }
  EXPECT_EQ(b.ptr->state_as<burst::State>()->notes_seen, 8);
}

TEST(Runtime, BufferedMessagesRunInSendOrder) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*fx.counter.cls, nullptr, 0);
    // First send runs inline and leaves the object dormant again; to force
    // buffering, drive sends from an Echo method: Echo(A).run sends to the
    // counter... simpler: use add with distinct values through an active
    // phase produced by self-sends.
    for (int i = 0; i < 5; ++i) {
      Word k = i;
      ctx.send_past(c, fx.counter.add, &k, 1);
    }
  });
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 0 + 1 + 2 + 3 + 4);
}

// --- Preemption --------------------------------------------------------------

namespace chain {
// Chain: "chain.go" [k] — creates a FRESH object and forwards go(k-1) to
// it. Each hop targets a dormant object, so without preemption the direct
// calls would nest k deep and overflow the C++ stack.
struct State {
  std::int64_t seen = 0;
};
struct GoFrame : Frame {
  std::int64_t k = 0;
  PatternId pat = 0;
  static void init(GoFrame& f, const Msg& m) {
    f.k = m.i64(0);
    f.pat = m.pattern;
  }
  static Status run(Ctx& ctx, State& self, GoFrame& f) {
    self.seen = f.k;
    if (f.k > 0) {
      MailAddr next = ctx.create_local(*ctx.current_object()->cls, nullptr, 0);
      Word w = static_cast<Word>(f.k - 1);
      ctx.send_past(next, f.pat, &w, 1);
    }
    return Status::kDone;
  }
};
}  // namespace chain

TEST(Runtime, DeepChainIsPreemptedNotStackOverflowed) {
  core::Program prog;
  PatternId go = prog.patterns().intern("chain.go", 1);
  ClassDef<chain::State> def(prog, "Chain");
  def.method<chain::GoFrame>(go);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.node.max_call_depth = 8;
  World world(prog, cfg);
  MailAddr first;
  world.boot(0, [&](Ctx& ctx) {
    first = ctx.create_local(def.info(), nullptr, 0);
    Word k = 100000;  // would overflow the host stack if run nested
    ctx.send_past(first, go, &k, 1);
  });
  world.run();
  EXPECT_GT(world.total_stats().forced_buffer_depth, 10000u);
  EXPECT_EQ(world.total_created_objects(), 100001u);
}

TEST(Runtime, DepthZeroForcesFullQueueing) {
  Fixture fx;
  WorldConfig cfg = fx.cfg(1);
  cfg.node.max_call_depth = 0;
  World world(fx.prog, cfg);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*fx.counter.cls, nullptr, 0);
    ctx.send_past(c, fx.counter.inc, nullptr, 0);
    // Not yet executed: forced through the scheduling queue.
  });
  EXPECT_TRUE(c.ptr->needs_init);
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 1);
}

// --- Lazy initialization (Section 4.2) ---------------------------------------

TEST(Runtime, StateInitializedLazilyOnFirstMessage) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    Word tag = 9;
    MailAddr e = ctx.create_local(*fx.echo.cls, &tag, 1);
    // No message yet: the ctor hook has not run.
    EXPECT_TRUE(event_log().empty());
    EXPECT_TRUE(e.ptr->needs_init);
    EXPECT_EQ(e.ptr->vftp, &fx.echo.cls->lazy_init);
    Word args[3] = {core::kNilAddr.word_node(), core::kNilAddr.word_ptr(), 0};
    ctx.send_past(e, fx.echo.run, args, 3);
    EXPECT_FALSE(e.ptr->needs_init);
    ASSERT_GE(event_log().size(), 1u);
    EXPECT_EQ(event_log()[0], "ctor9");  // initialized exactly at first message
  });
  world.run();
}

// --- Mode/VFTP invariants -----------------------------------------------------

TEST(Runtime, VftpReturnsToDormantAfterMethod) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*fx.counter.cls, nullptr, 0);
    ctx.send_past(c, fx.counter.inc, nullptr, 0);
  });
  world.run();
  EXPECT_EQ(c.ptr->mode, core::Mode::kDormant);
  EXPECT_EQ(c.ptr->vftp, &fx.counter.cls->dormant);
  EXPECT_TRUE(c.ptr->mq.empty());
  EXPECT_EQ(c.ptr->sched_state, core::SchedState::kNone);
}

TEST(Runtime, StatsClassifyDormantVsActiveSends) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    Word ta = 1, tb = 2;
    MailAddr a = ctx.create_local(*fx.echo.cls, &ta, 1);
    MailAddr b = ctx.create_local(*fx.echo.cls, &tb, 1);
    Word args[3] = {b.word_node(), b.word_ptr(), 2};
    ctx.send_past(a, fx.echo.run, args, 3);
  });
  world.run();
  const auto st = world.total_stats();
  EXPECT_EQ(st.local_sends, 3u);        // k=2 (boot), k=1, k=0
  EXPECT_EQ(st.local_to_dormant, 2u);   // boot->A, A->B
  EXPECT_EQ(st.local_to_active, 1u);    // B->A while A active
  EXPECT_EQ(st.sched_dispatches, 1u);
}

// --- Cost accounting (Tables 1 and 2) ----------------------------------------

TEST(Runtime, DormantSendChargesExactly25InstructionsPlusCreate) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*fx.counter.cls, nullptr, 0);
    sim::Instr before = ctx.clock();
    ctx.send_past(c, fx.counter.noop, nullptr, 0);
    // Table 2: 25 instructions for a null method to a dormant object.
    EXPECT_EQ(ctx.clock() - before, 25u);
  });
}

TEST(Runtime, OptimizationFlagsShrinkDormantSendTo8) {
  Fixture fx;
  WorldConfig cfg = fx.cfg(1);
  cfg.cost.opt.elide_locality_check = true;
  cfg.cost.opt.elide_vftp_switch = true;
  cfg.cost.opt.elide_mq_check = true;
  cfg.cost.opt.elide_poll = true;
  World world(fx.prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*fx.counter.cls, nullptr, 0);
    sim::Instr before = ctx.clock();
    ctx.send_past(c, fx.counter.noop, nullptr, 0);
    EXPECT_EQ(ctx.clock() - before, 8u);
  });
}

TEST(Runtime, CreateLocalChargesCreationCost) {
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    sim::Instr before = ctx.clock();
    ctx.create_local(*fx.counter.cls, nullptr, 0);
    EXPECT_EQ(ctx.clock() - before, world.config().cost.create_local);
  });
}

// --- Retirement ----------------------------------------------------------------

TEST(Runtime, RetiredObjectIsReclaimedAfterMethodEnds) {
  core::Program prog;
  // A self-retiring class: one method that retires itself.
  struct RetState {
    int runs = 0;
  };
  struct RetFrame : Frame {
    static void init(RetFrame&, const Msg&) {}
    static Status run(Ctx& ctx, RetState& self, RetFrame&) {
      self.runs += 1;
      ctx.retire_self();
      return Status::kDone;
    }
  };
  PatternId go = prog.patterns().intern("ret.go", 0);
  ClassDef<RetState> def(prog, "Ret");
  def.method<RetFrame>(go);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    std::size_t before = ctx.live_objects();
    MailAddr r = ctx.create_local(def.info(), nullptr, 0);
    EXPECT_EQ(ctx.live_objects(), before + 1);
    ctx.send_past(r, go, nullptr, 0);
    EXPECT_EQ(ctx.live_objects(), before);  // reclaimed at method epilogue
  });
  world.run();
}

// --- Not-understood is fatal -----------------------------------------------------

TEST(RuntimeDeath, MessageNotUnderstoodAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture fx;
  World world(fx.prog, fx.cfg(1));
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*fx.counter.cls, nullptr, 0);
    // Initialize it first (lazy table would otherwise try to init-then-run).
    ctx.send_past(c, fx.counter.inc, nullptr, 0);
    EXPECT_DEATH(ctx.send_past(c, fx.echo.run, nullptr, 0), "not understood");
  });
}

// --- Remote sends charge sender/receiver costs -----------------------------------

TEST(Runtime, RemoteSendDeliversAndCountsStats) {
  Fixture fx;
  World world(fx.prog, fx.cfg(4));
  MailAddr c;
  world.boot(3, [&](Ctx& ctx) { c = ctx.create_local(*fx.counter.cls, nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) {
    for (int i = 0; i < 5; ++i) ctx.send_past(c, fx.counter.inc, nullptr, 0);
  });
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 5);
  auto st = world.total_stats();
  EXPECT_EQ(st.remote_sends, 5u);
  EXPECT_EQ(st.remote_recv, 5u);
  EXPECT_EQ(world.network().stats().packets, 5u);
}

}  // namespace
