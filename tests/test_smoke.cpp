// End-to-end smoke tests: the whole stack (program -> world -> run) on the
// shipped workloads.
#include <gtest/gtest.h>

#include "abcl/abcl.hpp"
#include "apps/counters.hpp"
#include "apps/fib.hpp"
#include "apps/nqueens.hpp"
#include "apps/nqueens_seq.hpp"
#include "apps/pingpong.hpp"

namespace {

using namespace abcl;

TEST(Smoke, CounterLocal) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);

  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*cp.cls, nullptr, 0);
    for (int i = 0; i < 10; ++i) ctx.send_past(c, cp.inc, nullptr, 0);
  });
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 10);
}

TEST(Smoke, CounterRemote) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);

  MailAddr c;
  world.boot(2, [&](Ctx& ctx) { c = ctx.create_local(*cp.cls, nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) {
    for (int i = 0; i < 7; ++i) ctx.send_past(c, cp.inc, nullptr, 0);
  });
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 7);
}

TEST(Smoke, PingPongInterNode) {
  core::Program prog;
  auto pp = apps::register_pingpong(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  auto r = apps::run_pingpong(world, pp, 0, 1, 100);
  EXPECT_GE(r.bounces, 200u);
  EXPECT_GT(r.us_per_message, 0.0);
}

TEST(Smoke, FibLocal) {
  core::Program prog;
  auto fp = apps::register_fib(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  auto r = apps::run_fib(world, fp, 15);
  EXPECT_EQ(r.value, 610);
}

TEST(Smoke, FibDistributed) {
  core::Program prog;
  auto fp = apps::register_fib(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(8);
  World world(prog, cfg);
  auto r = apps::run_fib(world, fp, 12);
  EXPECT_EQ(r.value, 144);
}

TEST(Smoke, NQueens6) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);
  apps::NQueensParams p;
  p.n = 6;
  auto r = apps::run_nqueens(world, np, p);
  EXPECT_EQ(r.solutions, 4);

  auto seq = apps::nqueens_seq(6, p.charge_base, p.charge_per_col);
  EXPECT_EQ(seq.solutions, 4);
  EXPECT_EQ(seq.tree_nodes, r.objects_created);
}

}  // namespace
