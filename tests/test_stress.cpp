// Stress and property tests: random actor traffic across many nodes, token
// conservation, yield-based preemption, determinism of full runs.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/counters.hpp"
#include "apps/fib.hpp"
#include "apps/nqueens.hpp"
#include "support.hpp"

namespace {

using namespace abcl;
using namespace abcl::testsup;

// ---------------------------------------------------------------------------
// TokenWorker: "tw.token" [hops, latch_node, latch_ptr, done_pat, dir_node,
// dir_ptr] — forwards the token to a random worker (looked up through a
// Directory object's state) until hops run out, then reports to the latch.
// Simpler variant: the worker picks a random *node* and sends to the worker
// on that node, whose address it carries in its state.
// ---------------------------------------------------------------------------
struct TokenState {
  std::uint64_t received = 0;
};

struct TokenRing {
  // Host-shared directory: one worker per node. Methods read it via a raw
  // pointer passed in creation args (host memory, read-only during the run).
  std::vector<MailAddr> workers;
};

struct TokenFrame : Frame {
  std::int64_t hops = 0;
  ReplyDest latch_like;  // reuse ReplyDest packing for the latch address
  MailAddr latch;
  PatternId done_pat = 0;
  PatternId self_pat = 0;
  const TokenRing* ring = nullptr;
  static void init(TokenFrame& f, const Msg& m) {
    f.hops = m.i64(0);
    f.latch = m.addr(1);
    f.done_pat = static_cast<PatternId>(m.at(3));
    f.ring = reinterpret_cast<const TokenRing*>(
        static_cast<std::uintptr_t>(m.at(4)));
    f.self_pat = m.pattern;
  }
  static Status run(Ctx& ctx, TokenState& self, TokenFrame& f) {
    self.received += 1;
    if (f.hops == 0) {
      Word one = 1;
      ctx.send_past(f.latch, f.done_pat, &one, 1);
      return Status::kDone;
    }
    std::size_t pick = static_cast<std::size_t>(
        ctx.rng().below(f.ring->workers.size()));
    Word args[5] = {static_cast<Word>(f.hops - 1), f.latch.word_node(),
                    f.latch.word_ptr(), f.done_pat,
                    static_cast<Word>(reinterpret_cast<std::uintptr_t>(f.ring))};
    ctx.send_past(f.ring->workers[pick], f.self_pat, args, 5);
    return Status::kDone;
  }
};

struct TokenProgram {
  PatternId token = 0;
  const core::ClassInfo* cls = nullptr;
  CompletionPatterns latch;
};

TokenProgram register_token(core::Program& prog) {
  TokenProgram tp;
  tp.latch = register_completion_latch(prog);
  tp.token = prog.patterns().intern("tw.token", 5);
  ClassDef<TokenState> def(prog, "TokenWorker");
  def.method<TokenFrame>(tp.token);
  tp.cls = &def.info();
  return tp;
}

struct TokenRun {
  std::uint64_t deliveries = 0;  // token hops actually executed
  sim::Instr sim_time = 0;
  std::uint64_t quanta = 0;
  bool completed = false;
};

TokenRun run_tokens(int nodes, int tokens, int hops, std::uint64_t seed,
                    core::SchedPolicy policy, int host_threads = 0) {
  core::Program prog;
  TokenProgram tp = register_token(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(nodes);
  cfg.with_seed(seed);
  cfg.node.policy = policy;
  cfg.with_host_threads(host_threads);
  World world(prog, cfg);

  TokenRing ring;
  for (NodeId nid = 0; nid < nodes; ++nid) {
    world.boot(nid, [&](Ctx& ctx) {
      ring.workers.push_back(ctx.create_local(*tp.cls, nullptr, 0));
    });
  }
  MailAddr latch;
  world.boot(0, [&](Ctx& ctx) {
    latch = ctx.create_local(*tp.latch.cls, nullptr, 0);
    ctx.send_past(latch, tp.latch.expect, {static_cast<Word>(tokens)});
    for (int i = 0; i < tokens; ++i) {
      Word args[5] = {static_cast<Word>(hops), latch.word_node(),
                      latch.word_ptr(), tp.latch.done,
                      static_cast<Word>(reinterpret_cast<std::uintptr_t>(&ring))};
      ctx.send_past(ring.workers[static_cast<std::size_t>(i) % ring.workers.size()],
                    tp.token, args, 5);
    }
  });
  RunReport rep = world.run();

  TokenRun out;
  out.completed = latch_state(latch).done();
  std::uint64_t received = 0;
  for (MailAddr w : ring.workers) {
    if (!w.ptr->needs_init) received += w.ptr->state_as<TokenState>()->received;
  }
  out.deliveries = received;
  out.sim_time = rep.sim_time;
  out.quanta = rep.quanta;
  return out;
}

class TokenSoup
    : public ::testing::TestWithParam<std::tuple<int, int, core::SchedPolicy>> {
};

TEST_P(TokenSoup, EveryTokenTravelsItsFullHopCountAndTerminates) {
  auto [nodes, tokens, policy] = GetParam();
  const int hops = 50;
  TokenRun r = run_tokens(nodes, tokens, hops, 42, policy);
  ASSERT_TRUE(r.completed);
  // Conservation: every token is received exactly hops+1 times.
  EXPECT_EQ(r.deliveries,
            static_cast<std::uint64_t>(tokens) * static_cast<std::uint64_t>(hops + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, TokenSoup,
    ::testing::Combine(::testing::Values(1, 4, 32, 128),
                       ::testing::Values(1, 16, 64),
                       ::testing::Values(core::SchedPolicy::kStack,
                                         core::SchedPolicy::kNaive)));

TEST(TokenSoup, DeterministicGivenSeed) {
  TokenRun a = run_tokens(16, 32, 40, 7, core::SchedPolicy::kStack);
  TokenRun b = run_tokens(16, 32, 40, 7, core::SchedPolicy::kStack);
  TokenRun c = run_tokens(16, 32, 40, 8, core::SchedPolicy::kStack);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.quanta, b.quanta);
  EXPECT_EQ(a.deliveries, b.deliveries);
  // A different seed routes tokens differently (almost surely).
  EXPECT_NE(a.sim_time, c.sim_time);
}

// ---------------------------------------------------------------------------
// Voluntary preemption (ABCL_YIELD): a long internal loop yields through the
// scheduling queue instead of monopolizing the node.
// ---------------------------------------------------------------------------
struct SpinState {
  std::int64_t iters_done = 0;
};

struct SpinFrame : Frame {
  std::int64_t n = 0;
  std::int64_t i = 0;
  static void init(SpinFrame& f, const Msg& m) { f.n = m.i64(0); }
  static Status run(Ctx& ctx, SpinState& self, SpinFrame& f) {
    ABCL_BEGIN(f);
    while (f.i < f.n) {
      ctx.charge(5);
      f.i += 1;
      self.iters_done += 1;
      ABCL_YIELD(ctx, f, 1);
    }
    ABCL_END();
  }
};

TEST(Yield, LongLoopYieldsAndCompletes) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  PatternId spin = prog.patterns().intern("spin.go", 1);
  ClassDef<SpinState> def(prog, "Spinner");
  def.method<SpinFrame>(spin);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.node.reduction_budget = 0;  // should_yield() after any delivery
  World world(prog, cfg);
  MailAddr s, c;
  world.boot(0, [&](Ctx& ctx) {
    s = ctx.create_local(def.info(), nullptr, 0);
    c = ctx.create_local(*cp.cls, nullptr, 0);
    Word n = 200;
    ctx.send_past(s, spin, &n, 1);
    // The spinner yields, so other sends still get service while it spins.
    ctx.send_past(c, cp.inc, nullptr, 0);
  });
  world.run();
  EXPECT_EQ(s.ptr->state_as<SpinState>()->iters_done, 200);
  EXPECT_EQ(apps::counter_state(c).count, 1);
  EXPECT_GT(world.total_stats().yields, 100u);
}

TEST(Yield, MessagesArrivingDuringYieldAreServedFifo) {
  core::Program prog;
  PatternId spin = prog.patterns().intern("spin.go", 1);
  ClassDef<SpinState> def(prog, "Spinner");
  def.method<SpinFrame>(spin);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.node.reduction_budget = 0;
  World world(prog, cfg);
  MailAddr s;
  world.boot(0, [&](Ctx& ctx) {
    s = ctx.create_local(def.info(), nullptr, 0);
    Word n1 = 50;
    ctx.send_past(s, spin, &n1, 1);  // starts, yields
    Word n2 = 7;
    ctx.send_past(s, spin, &n2, 1);  // buffered behind the yielded run
  });
  world.run();
  EXPECT_EQ(s.ptr->state_as<SpinState>()->iters_done, 57);
}

// ---------------------------------------------------------------------------
// Full-run determinism for the bigger apps.
// ---------------------------------------------------------------------------

TEST(Determinism, FibIdenticalAcrossRuns) {
  auto once = [] {
    core::Program prog;
    auto fp = apps::register_fib(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(8);
    cfg.with_placement(remote::PlacementKind::kRandom);
    World world(prog, cfg);
    auto r = apps::run_fib(world, fp, 14);
    return std::tuple<std::int64_t, sim::Instr, std::uint64_t>(
        r.value, r.rep.sim_time, r.rep.quanta);
  };
  EXPECT_EQ(once(), once());
}

TEST(Determinism, TokensIdenticalAcrossHostDrivers) {
  // Random routing through per-node RNGs: any divergence in delivery order
  // under the parallel driver changes which worker each token visits and so
  // shows up in sim_time/quanta/deliveries immediately.
  TokenRun serial =
      run_tokens(32, 48, 60, 7, core::SchedPolicy::kStack, /*host_threads=*/-1);
  ASSERT_TRUE(serial.completed);
  for (int threads : {1, 2, 8}) {
    TokenRun par =
        run_tokens(32, 48, 60, 7, core::SchedPolicy::kStack, threads);
    EXPECT_TRUE(par.completed);
    EXPECT_EQ(par.sim_time, serial.sim_time) << "threads=" << threads;
    EXPECT_EQ(par.quanta, serial.quanta) << "threads=" << threads;
    EXPECT_EQ(par.deliveries, serial.deliveries) << "threads=" << threads;
  }
}

TEST(Determinism, NQueensStatsIdenticalAcrossHostDrivers) {
  auto once = [](int host_threads) {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(32);
    cfg.with_host_threads(host_threads);
    World world(prog, cfg);
    apps::NQueensParams p;
    p.n = 8;
    auto r = apps::run_nqueens(world, np, p);
    return std::tuple(r.solutions, r.stats.local_sends, r.stats.remote_sends,
                      r.stats.sched_dispatches, r.stats.chunk_stock_hits,
                      r.stats.blocks_await, r.sim_time, r.rep.quanta);
  };
  auto serial = once(-1);
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(once(threads), serial) << "threads=" << threads;
  }
}

TEST(Determinism, StatsIdenticalAcrossRuns) {
  auto once = [] {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(32);
    World world(prog, cfg);
    apps::NQueensParams p;
    p.n = 8;
    auto r = apps::run_nqueens(world, np, p);
    return std::tuple(r.stats.local_sends, r.stats.remote_sends,
                      r.stats.sched_dispatches, r.stats.chunk_stock_hits,
                      r.stats.blocks_await, r.sim_time);
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
