// Pattern registry, class-table construction and handler registration — the
// "compile time" layer (Sections 2.4, 4.2, 5.1).
#include <gtest/gtest.h>

#include "apps/buffer.hpp"
#include "apps/counters.hpp"
#include "core/program.hpp"
#include "support.hpp"

namespace {

using namespace abcl;

TEST(Patterns, InternAssignsDenseIds) {
  core::PatternRegistry reg;
  auto a = reg.intern("msg.a", 0);
  auto b = reg.intern("msg.b", 2);
  auto a2 = reg.intern("msg.a", 0);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.info(b).arity, 2);
  EXPECT_EQ(reg.id_of("msg.b"), b);
}

TEST(Patterns, EmptyRegistryMatchesNothing) {
  core::PatternRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.frozen());
  // A frozen empty registry is legal (a program with no patterns); it just
  // can never dispatch anything.
  reg.freeze();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(PatternsDeath, UnknownLookupAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::PatternRegistry reg;
  reg.intern("msg.a", 0);
  EXPECT_DEATH(reg.id_of("msg.zzz"), "unknown message pattern");
  core::PatternRegistry empty;
  EXPECT_DEATH(empty.id_of("anything"), "unknown message pattern");
}

TEST(WaitSite, EmptyAcceptSetMatchesNoPattern) {
  // A selective-reception site with no accepted patterns: every arrival
  // must fall through to the queuing path, none may restore the frame.
  core::WaitSite ws;
  for (PatternId p = 0; p < 8; ++p) EXPECT_EQ(ws.find(p), nullptr);
}

TEST(WaitSite, OverlappingAcceptsFirstRegisteredWins) {
  // Two accepts for the same pattern (e.g. two textual arms of one select
  // matching the same message): the first registered arm must win,
  // deterministically, and its continuation pc is the one restored.
  core::WaitSite ws;
  ws.accepts.push_back(core::WaitSite::Accept{7, nullptr, 11});
  ws.accepts.push_back(core::WaitSite::Accept{7, nullptr, 22});
  ws.accepts.push_back(core::WaitSite::Accept{3, nullptr, 33});
  const core::WaitSite::Accept* a = ws.find(7);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->resume_pc, 11);  // first match, not last
  const core::WaitSite::Accept* b = ws.find(3);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->resume_pc, 33);
  EXPECT_EQ(ws.find(4), nullptr);
}

TEST(WaitSite, SpecificAcceptBeatsGenericQueueFallback) {
  // The waiting table is the wildcard-vs-specific split: awaited patterns
  // get the specific restore entry, every other pattern falls through to
  // the catch-all queuing entry — priority is encoded structurally, per
  // slot, not by scan order at delivery time.
  core::Program prog;
  auto bp = apps::register_buffer(prog);
  prog.finalize();
  const core::WaitSite& ws = *bp.cls->wait_sites[0];
  std::size_t restores = 0;
  for (std::size_t p = 0; p < prog.patterns().size(); ++p) {
    auto pid = static_cast<PatternId>(p);
    if (ws.find(pid) != nullptr) {
      EXPECT_EQ(ws.vft.entry(pid), &core::select_restore_entry);
      ++restores;
    } else {
      EXPECT_EQ(ws.vft.entry(pid), &core::generic_queue_entry);
    }
  }
  EXPECT_EQ(restores, 1u);  // the wait-empty site awaits exactly `put`
}

TEST(PatternsDeath, ArityMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::PatternRegistry reg;
  reg.intern("msg.a", 1);
  EXPECT_DEATH(reg.intern("msg.a", 2), "different arity");
}

TEST(PatternsDeath, FrozenRegistryRejectsIntern) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::PatternRegistry reg;
  reg.freeze();
  EXPECT_DEATH(reg.intern("late", 0), "frozen");
}

TEST(Program, FinalizeBuildsAllModeTables) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  auto bp = apps::register_buffer(prog);
  prog.finalize();

  const std::size_t np = prog.patterns().size();
  ASSERT_GE(np, 6u);

  const core::ClassInfo& counter = *cp.cls;
  EXPECT_TRUE(counter.finalized);
  EXPECT_EQ(counter.dormant.entries.size(), np);
  EXPECT_EQ(counter.active.entries.size(), np);
  EXPECT_EQ(counter.lazy_init.entries.size(), np);
  // Registered methods land in the dormant table; others are errors.
  EXPECT_NE(counter.dormant.entry(cp.inc), &core::not_understood_entry);
  EXPECT_EQ(counter.dormant.entry(bp.put), &core::not_understood_entry);
  // The active table queues everything.
  for (std::size_t p = 0; p < np; ++p) {
    EXPECT_EQ(counter.active.entry(static_cast<PatternId>(p)),
              &core::generic_queue_entry);
  }

  // The buffer's wait-empty site accepts exactly `put`; the wait-full site
  // accepts exactly `get`.
  const core::ClassInfo& buffer = *bp.cls;
  ASSERT_EQ(buffer.wait_sites.size(), 2u);
  const core::WaitSite& ws = *buffer.wait_sites[0];
  EXPECT_EQ(ws.vft.entry(bp.put), &core::select_restore_entry);
  EXPECT_EQ(ws.vft.entry(bp.get), &core::generic_queue_entry);
  EXPECT_EQ(ws.vft.wait_site, 0);
  EXPECT_NE(ws.find(bp.put), nullptr);
  EXPECT_EQ(ws.find(bp.get), nullptr);
  const core::WaitSite& wf = *buffer.wait_sites[1];
  EXPECT_EQ(wf.vft.entry(bp.get), &core::select_restore_entry);
  EXPECT_EQ(wf.vft.entry(bp.put), &core::generic_queue_entry);
  EXPECT_EQ(wf.vft.wait_site, 1);
}

TEST(Program, FaultVftQueuesEveryPattern) {
  core::Program prog;
  apps::register_counter(prog);
  prog.finalize();
  const core::Vft& f = prog.fault_vft();
  EXPECT_EQ(f.cls, nullptr);
  EXPECT_EQ(f.mode, core::Mode::kFault);
  for (std::size_t p = 0; p < prog.patterns().size(); ++p) {
    EXPECT_EQ(f.entry(static_cast<PatternId>(p)), &core::generic_queue_entry);
  }
}

TEST(Program, HandlerBlocksAreRegisteredPerPatternClassAndSizeClass) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  auto ep = testsup::register_echo(prog);
  prog.finalize();

  const auto& am = prog.am();
  // One Category-1 handler per pattern, with a readable name.
  EXPECT_EQ(am.entry(prog.h_obj_msg(cp.inc)).name, "msg:ctr.inc");
  EXPECT_EQ(am.entry(prog.h_obj_msg(cp.inc)).category,
            net::AmCategory::kObjectMessage);
  EXPECT_EQ(am.entry(prog.h_obj_msg(ep.run)).name, "msg:echo.run");
  // One Category-2 handler per class.
  EXPECT_EQ(am.entry(prog.h_create(cp.cls->id)).name, "create:Counter");
  EXPECT_EQ(am.entry(prog.h_create(cp.cls->id)).category,
            net::AmCategory::kCreateRequest);
  // Category-3 handlers per chunk size class.
  EXPECT_EQ(am.entry(prog.h_replenish(0)).category, net::AmCategory::kAllocReply);
  EXPECT_EQ(am.entry(prog.h_replenish(3)).name, "replenish:256B");
  // Category 4.
  EXPECT_EQ(am.entry(prog.h_load_gossip()).category, net::AmCategory::kService);
  // Round-tripping handler ids back to pattern/class/size-class.
  EXPECT_EQ(prog.pattern_of_handler(prog.h_obj_msg(cp.get)), cp.get);
  EXPECT_EQ(prog.class_of_handler(prog.h_create(cp.cls->id)), cp.cls->id);
  EXPECT_EQ(prog.size_class_of_handler(prog.h_replenish(5)), 5);
}

TEST(ProgramDeath, WorldRequiresFinalizedProgram) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::Program prog;
  apps::register_counter(prog);
  WorldConfig cfg;
  cfg.with_nodes(1);
  EXPECT_DEATH({ World w(prog, cfg); }, "finalize");
}

TEST(Program, ObjectLayoutLeavesAlignedStateOffset) {
  EXPECT_EQ(core::ObjectHeader::state_offset() % 16, 0u);
  EXPECT_GE(core::ObjectHeader::state_offset(), sizeof(core::ObjectHeader));
  EXPECT_GE(core::object_alloc_bytes(0), core::ObjectHeader::state_offset() + 1);
}

}  // namespace
