// Live object migration: spec parsing, the pure shed policy, forwarding
// stubs + sender-side path compression, inbox carryover ordering across a
// move, migrate-while-waiting, and a 6-node hot-spot scenario asserting the
// work-shedding balancer actually spreads load (see DESIGN.md "Object
// migration").
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "abcl/abcl.hpp"
#include "core/object.hpp"
#include "obs/metrics.hpp"
#include "remote/migration.hpp"

namespace {

using namespace abcl;
using remote::MigrationConfig;
using remote::ShedDecision;

// ----------------------------------------------------------- parsing -----

TEST(MigrationSpec, UnsetEmptyAndOffAllDisable) {
  std::string err;
  for (const char* t :
       {static_cast<const char*>(nullptr), "", "off", " off "}) {
    std::optional<MigrationConfig> cfg = remote::parse_migration_spec(t, &err);
    ASSERT_TRUE(cfg.has_value());
    EXPECT_FALSE(cfg->enabled);
  }
}

TEST(MigrationSpec, ParsesEveryKey) {
  std::string err;
  std::optional<MigrationConfig> cfg = remote::parse_migration_spec(
      "interval=32, hysteresis=2, max_batch=6, min_queue=5, seed=99", &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_TRUE(cfg->enabled);
  EXPECT_EQ(cfg->interval, 32u);
  EXPECT_EQ(cfg->hysteresis, 2u);
  EXPECT_EQ(cfg->max_batch, 6u);
  EXPECT_EQ(cfg->min_queue, 5u);
  EXPECT_EQ(cfg->seed, 99u);
}

TEST(MigrationSpec, PartialSpecKeepsDefaults) {
  std::string err;
  std::optional<MigrationConfig> cfg =
      remote::parse_migration_spec("interval=16", &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_TRUE(cfg->enabled);
  EXPECT_EQ(cfg->interval, 16u);
  EXPECT_EQ(cfg->hysteresis, MigrationConfig{}.hysteresis);
  EXPECT_EQ(cfg->min_queue, MigrationConfig{}.min_queue);
}

TEST(MigrationSpec, ToStringRoundTripsExactly) {
  std::string err;
  for (const char* t :
       {"off", "interval=1", "interval=8,hysteresis=0,max_batch=2,seed=7",
        "min_queue=1,seed=18446744073709551615"}) {
    std::optional<MigrationConfig> a = remote::parse_migration_spec(t, &err);
    ASSERT_TRUE(a.has_value()) << t << ": " << err;
    std::optional<MigrationConfig> b =
        remote::parse_migration_spec(remote::to_string(*a).c_str(), &err);
    ASSERT_TRUE(b.has_value()) << remote::to_string(*a) << ": " << err;
    EXPECT_EQ(*a, *b) << t;
  }
}

TEST(MigrationSpec, GarbageNeverFallsBackToOff) {
  // A typo in ABCLSIM_MIGRATION must be a hard error naming the raw text,
  // not a silent migration-free run.
  for (const char* t :
       {"bogus", "interval", "interval=", "interval=abc", "interval=-1",
        "interval=0x10", "interval=1,interval=2", "unknown_key=1",
        "interval=1,,seed=2", "seed=", "interval=0", "max_batch=0",
        "min_queue=0", "interval=4294967296"}) {
    std::string err;
    std::optional<MigrationConfig> cfg = remote::parse_migration_spec(t, &err);
    EXPECT_FALSE(cfg.has_value()) << t;
    EXPECT_NE(err.find(t), std::string::npos)
        << "diagnostic should quote the offending spec: " << err;
  }
}

// ------------------------------------------------------- shed policy -----

TEST(ShedRoll, PureAndCoordinateDependent) {
  EXPECT_EQ(remote::shed_roll(1, 3, 100), remote::shed_roll(1, 3, 100));
  int differ = 0;
  for (std::uint64_t q = 0; q < 64; ++q) {
    differ += remote::shed_roll(1, 3, q) != remote::shed_roll(2, 3, q);
    differ += remote::shed_roll(1, 3, q) != remote::shed_roll(1, 4, q);
    differ += remote::shed_roll(1, 3, q) != remote::shed_roll(1, 3, q + 1);
  }
  EXPECT_GT(differ, 150);  // the streams are genuinely distinct
}

MigrationConfig policy_cfg() {
  MigrationConfig cfg;
  cfg.enabled = true;
  cfg.hysteresis = 4;
  cfg.max_batch = 4;
  cfg.min_queue = 8;
  cfg.seed = 1;
  return cfg;
}

TEST(ShedPolicy, DisabledOrShallowQueueNeverSheds) {
  MigrationConfig cfg = policy_cfg();
  const std::vector<std::pair<std::int32_t, std::uint32_t>> idle = {{1, 0},
                                                                    {2, 0}};
  EXPECT_FALSE(remote::decide_shed(cfg, 0, 64, 7, idle).has_value());
  cfg.enabled = false;
  EXPECT_FALSE(remote::decide_shed(cfg, 0, 64, 100, idle).has_value());
}

TEST(ShedPolicy, NoFreshNeighborsMeansNoShed) {
  // Without gossip there is no safe target — a blind shed could dump on a
  // node even hotter than us.
  EXPECT_FALSE(remote::decide_shed(policy_cfg(), 0, 64, 100, {}).has_value());
}

TEST(ShedPolicy, HysteresisBandHolds) {
  const MigrationConfig cfg = policy_cfg();
  const std::vector<std::pair<std::int32_t, std::uint32_t>> loads = {
      {1, 10}, {2, 20}};
  // Lower median of {10, 20} is 10; depth must exceed 10 + hysteresis(4).
  EXPECT_FALSE(remote::decide_shed(cfg, 0, 64, 10, loads).has_value());
  EXPECT_FALSE(remote::decide_shed(cfg, 0, 64, 14, loads).has_value());
  auto d = remote::decide_shed(cfg, 0, 64, 15, loads);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->target, 1);  // least-loaded strictly-below neighbour
  EXPECT_EQ(d->quota, 2u);  // (15 - 10) / 2, under max_batch
}

TEST(ShedPolicy, QuotaIsCappedAtMaxBatch) {
  const MigrationConfig cfg = policy_cfg();
  auto d = remote::decide_shed(cfg, 0, 64, 100, {{1, 0}, {2, 0}});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->quota, cfg.max_batch);
}

TEST(ShedPolicy, TieBreakIsSeededAndDeterministic) {
  const MigrationConfig cfg = policy_cfg();
  const std::vector<std::pair<std::int32_t, std::uint32_t>> tied = {
      {1, 0}, {2, 0}, {3, 0}};
  // Same coordinates: always the same target (re-evaluation independence).
  auto first = remote::decide_shed(cfg, 0, 64, 40, tied);
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 8; ++i) {
    auto again = remote::decide_shed(cfg, 0, 64, 40, tied);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->target, first->target);
  }
  // Across quanta the choice rotates: a symmetric neighbourhood must not
  // always dump on one node (that just moves the hot spot one hop over).
  bool saw_other = false;
  for (std::uint64_t q = 0; q < 64; ++q) {
    auto d = remote::decide_shed(cfg, 0, q, 40, tied);
    ASSERT_TRUE(d.has_value());
    saw_other |= d->target != first->target;
  }
  EXPECT_TRUE(saw_other);
}

// --------------------------------------------------------- mechanism -----

// Minimal migratable class: counts messages, folds their values in arrival
// order (order-sensitive), and remembers the node that ran the last
// dispatch. Trivially copyable/destructible by construction.
struct RecState {
  std::uint64_t count = 0;
  std::uint64_t order_hash = 0;
  std::uint64_t last_node = 0;
};

struct RecFrame : Frame {
  Word v = 0;
  static void init(RecFrame& f, const Msg& m) { f.v = m.at(0); }
  static Status run(Ctx& ctx, RecState& self, RecFrame& f) {
    ABCL_BEGIN(f);
    self.count += 1;
    self.order_hash = self.order_hash * 1099511628211ull + f.v;
    self.last_node = static_cast<std::uint64_t>(ctx.node_id());
    ABCL_END();
  }
};

struct RecProgram {
  PatternId rec = 0;
  const core::ClassInfo* cls = nullptr;
};

RecProgram register_rec(core::Program& prog) {
  RecProgram rp;
  rp.rec = prog.patterns().intern("mig.rec", 1);
  ClassDef<RecState> def(prog, "MigRec");
  def.migratable();
  def.method<RecFrame>(rp.rec);
  rp.cls = &def.info();
  return rp;
}

// Chases forwarding stubs to the object's current home.
MailAddr resolve(const World& w, MailAddr a) {
  for (int hops = 0; hops < 64; ++hops) {
    auto f = w.node(a.node).forward_target(a.ptr);
    if (!f.has_value()) return a;
    if (f->node == a.node && f->ptr == a.ptr) return a;
    a = *f;
  }
  ADD_FAILURE() << "forwarding chain exceeded 64 hops";
  return a;
}

std::uint64_t fold(std::initializer_list<std::uint64_t> vals) {
  std::uint64_t h = 0;
  for (std::uint64_t v : vals) h = h * 1099511628211ull + v;
  return h;
}

TEST(Migration, InboxCarriesOverInFifoOrder) {
  core::Program prog;
  RecProgram rp = register_rec(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  MailAddr a;
  world.boot(0, [&](Ctx& ctx) {
    a = ctx.create_local(*rp.cls, {});
    // Pre-move mail may dispatch at the old home or ride out the move in
    // the stub's queue; either way arrival ORDER is the contract.
    for (Word v = 1; v <= 3; ++v) ctx.send_past(a, rp.rec, {v});
    ctx.migrate_object_to(a.ptr, 1);
    // Post-move mail lands on the in-transit stub and must be flushed to
    // the new home after the state arrives, still in order.
    for (Word v = 4; v <= 6; ++v) ctx.send_past(a, rp.rec, {v});
  });
  world.run();

  MailAddr home = resolve(world, a);
  EXPECT_EQ(home.node, 1);
  const auto* st = home.ptr->state_as<const RecState>();
  EXPECT_EQ(st->count, 6u);
  EXPECT_EQ(st->order_hash, fold({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(st->last_node, 1u);
  EXPECT_EQ(world.node(0).stats().migrations_out, 1u);
  EXPECT_EQ(world.node(1).stats().migrations_in, 1u);
  EXPECT_GT(world.total_stats().migration_mail, 0u);
}

TEST(Migration, ForwardingStubBouncesAndCompressesPerSender) {
  core::Program prog;
  RecProgram rp = register_rec(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);
  MailAddr a;
  world.boot(0, [&](Ctx& ctx) { a = ctx.create_local(*rp.cls, {}); });
  world.run();
  world.boot(0, [&](Ctx& ctx) { ctx.migrate_object_to(a.ptr, 1); });
  world.run();  // migration completes; node 0 now holds a forwarding stub

  // First message from node 2 to the OLD address bounces through the stub;
  // the stub's node notices the remote sender and mails back a kUpdateAddr.
  world.boot(2, [&](Ctx& ctx) { ctx.send_past(a, rp.rec, {41}); });
  world.run();
  const std::uint64_t forwards_after_first =
      world.total_stats().migration_forwards;
  EXPECT_GE(forwards_after_first, 1u);
  EXPECT_GT(world.total_stats().migration_updates, 0u);

  // Node 2 now routes straight to the new home: no further stub hops.
  world.boot(2, [&](Ctx& ctx) { ctx.send_past(a, rp.rec, {42}); });
  world.run();
  EXPECT_EQ(world.total_stats().migration_forwards, forwards_after_first);

  MailAddr home = resolve(world, a);
  EXPECT_EQ(home.node, 1);
  const auto* st = home.ptr->state_as<const RecState>();
  EXPECT_EQ(st->count, 2u);
  EXPECT_EQ(st->order_hash, fold({41, 42}));
}

TEST(Migration, SecondHopCollapsesOldStubChains) {
  // After 0 -> 1 -> 2, the kUpdateStub fan-out must point the node-0 stub
  // DIRECTLY at node 2: a message to the original address takes exactly one
  // forwarding hop, not two (the chain-length <= 1 bound from DESIGN.md).
  core::Program prog;
  RecProgram rp = register_rec(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);
  MailAddr a;
  world.boot(0, [&](Ctx& ctx) { a = ctx.create_local(*rp.cls, {}); });
  world.run();
  world.boot(0, [&](Ctx& ctx) { ctx.migrate_object_to(a.ptr, 1); });
  world.run();
  MailAddr hop1 = resolve(world, a);
  ASSERT_EQ(hop1.node, 1);
  world.boot(1, [&](Ctx& ctx) { ctx.migrate_object_to(hop1.ptr, 2); });
  world.run();

  auto direct = world.node(0).forward_target(a.ptr);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->node, 2);  // compressed, not 1

  const std::uint64_t forwards_before = world.total_stats().migration_forwards;
  world.boot(3, [&](Ctx& ctx) { ctx.send_past(a, rp.rec, {7}); });
  world.run();
  EXPECT_EQ(world.total_stats().migration_forwards, forwards_before + 1);
  const auto* st = resolve(world, a).ptr->state_as<const RecState>();
  EXPECT_EQ(st->count, 1u);
  EXPECT_EQ(st->last_node, 2u);
}

// Waits at a selective-reception site for mig.tok; the frame carries a
// marker that must survive serialization of the blocked context.
struct WaitState {
  std::uint64_t got = 0;
  std::uint64_t marker = 0;
  std::uint64_t resumed_node = 0;
};

struct WaitFrame : Frame {
  Word tok = 0;
  Word marker = 0;
  static void init(WaitFrame& f, const Msg& m) { f.marker = m.at(0); }
  static void copy_tok(WaitFrame& f, const Msg& m) { f.tok = m.at(0); }
  static Status run(Ctx& ctx, WaitState& self, WaitFrame& f) {
    ABCL_BEGIN(f);
    ABCL_SELECT(ctx, self, f, 0);
    case 1:
      self.got = f.tok;
      self.marker = f.marker;
      self.resumed_node = static_cast<std::uint64_t>(ctx.node_id());
    ABCL_END();
  }
};

struct WaitProgram {
  PatternId wait = 0;
  PatternId tok = 0;
  const core::ClassInfo* cls = nullptr;
};

WaitProgram register_wait(core::Program& prog) {
  WaitProgram wp;
  wp.wait = prog.patterns().intern("mig.wait", 1);
  wp.tok = prog.patterns().intern("mig.tok", 1);
  ClassDef<WaitState> def(prog, "MigWait");
  def.migratable();
  def.method<WaitFrame>(wp.wait);
  std::int32_t site = def.wait_site<WaitFrame>();
  def.accept<WaitFrame, &WaitFrame::copy_tok>(site, wp.tok, 1);
  EXPECT_EQ(site, 0);
  wp.cls = &def.info();
  return wp;
}

TEST(Migration, WaitingObjectMovesWithItsBlockedFrame) {
  core::Program prog;
  WaitProgram wp = register_wait(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(3);
  World world(prog, cfg);
  MailAddr a;
  world.boot(0, [&](Ctx& ctx) {
    a = ctx.create_local(*wp.cls, {});
    ctx.send_past(a, wp.wait, {777});  // runs, blocks at the select site
  });
  world.run();
  ASSERT_EQ(a.ptr->mode, core::Mode::kWaiting);

  world.boot(0, [&](Ctx& ctx) {
    ctx.migrate_object_to(a.ptr, 2);
    // Token sent to the old address while the object is in transit: it
    // must chase the move and resume the restored frame at the new home.
    ctx.send_past(a, wp.tok, {55});
  });
  world.run();

  MailAddr home = resolve(world, a);
  EXPECT_EQ(home.node, 2);
  EXPECT_EQ(home.ptr->mode, core::Mode::kDormant);  // resumed and finished
  const auto* st = home.ptr->state_as<const WaitState>();
  EXPECT_EQ(st->got, 55u);
  EXPECT_EQ(st->marker, 777u);  // frame contents survived the move
  EXPECT_EQ(st->resumed_node, 2u);
}

TEST(MigrationDeath, NonMigratableClassIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  core::Program prog;
  PatternId p = prog.patterns().intern("plain.msg", 1);
  struct PlainState {
    std::uint64_t x = 0;
  };
  struct PlainFrame : Frame {
    static void init(PlainFrame&, const Msg&) {}
    static Status run(Ctx&, PlainState&, PlainFrame& f) {
      ABCL_BEGIN(f);
      ABCL_END();
    }
  };
  ClassDef<PlainState> def(prog, "Plain");  // no .migratable()
  def.method<PlainFrame>(p);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  MailAddr a;
  world.boot(0, [&](Ctx& ctx) { a = ctx.create_local(def.info(), {}); });
  world.run();
  EXPECT_DEATH(
      world.boot(0, [&](Ctx& ctx) { ctx.migrate_object_to(a.ptr, 1); }),
      "not migratable");
}

// ----------------------------------------------------------- hot spot -----

// All actors are created on node 0 of a 6-node world and churn through
// self-chains. With migration off everything runs where it was born; with
// the shedding policy on, node 0 must export objects and real work must
// land elsewhere — and the whole run stays deterministic.
struct ChurnState {
  std::uint64_t steps = 0;
};

struct HotSpotResult {
  std::vector<int> objects_per_node;
  std::uint64_t shed_out = 0;
  std::uint64_t shed_in_elsewhere = 0;
  std::uint64_t total_steps = 0;
  std::string metrics;
};

TEST(MigrationHotSpot, SixNodeShedSpreadsLoadDeterministically) {
  constexpr int kNodes = 6;
  constexpr int kActors = 40;
  constexpr Word kFuel = 60;

  auto run_once = [&](bool migrate) {
    core::Program prog;
    PatternId kick = prog.patterns().intern("churn.kick", 1);
    ClassDef<ChurnState> def(prog, "Churn");
    def.migratable();
    struct KickFrame : Frame {
      Word fuel = 0;
      PatternId pat = 0;
      static void init(KickFrame& f, const Msg& m) {
        f.fuel = m.at(0);
        f.pat = m.pattern;
      }
      static Status run(Ctx& ctx, ChurnState& self, KickFrame& f) {
        ABCL_BEGIN(f);
        self.steps += 1;
        ctx.charge(200);
        if (f.fuel > 0) {
          Word arg = f.fuel - 1;
          ctx.send_past(ctx.self_addr(), f.pat, &arg, 1);
        }
        ABCL_END();
      }
    };
    def.method<KickFrame>(kick);
    prog.finalize();

    WorldConfig cfg;
    cfg.with_nodes(kNodes);
    if (migrate) {
      MigrationConfig mc;
      mc.enabled = true;
      mc.interval = 8;
      mc.hysteresis = 2;
      mc.max_batch = 4;
      mc.min_queue = 6;
      mc.seed = 5;
      cfg.with_migration(mc);
    }
    World world(prog, cfg);
    std::vector<MailAddr> actors;
    world.boot(0, [&](Ctx& ctx) {
      for (int i = 0; i < kActors; ++i) {
        actors.push_back(ctx.create_local(def.info(), {}));
      }
    });
    world.boot(0, [&](Ctx& ctx) {
      for (const MailAddr& a : actors) ctx.send_past(a, kick, {kFuel});
    });
    world.run();

    HotSpotResult r;
    r.objects_per_node.assign(kNodes, 0);
    for (const MailAddr& a : actors) {
      MailAddr home = resolve(world, a);
      r.objects_per_node[static_cast<std::size_t>(home.node)] += 1;
      r.total_steps += home.ptr->state_as<const ChurnState>()->steps;
    }
    r.shed_out = world.node(0).stats().migrations_out;
    for (int n = 1; n < kNodes; ++n) {
      r.shed_in_elsewhere += world.node(n).stats().migrations_in;
    }
    r.metrics = obs::metrics_json(world);
    return r;
  };

  HotSpotResult off = run_once(false);
  // Exactly-once dispatch: every actor ran its whole chain, nothing lost
  // or duplicated, migration or not.
  const std::uint64_t kExpectedSteps =
      static_cast<std::uint64_t>(kActors) * (kFuel + 1);
  EXPECT_EQ(off.total_steps, kExpectedSteps);
  EXPECT_EQ(off.objects_per_node[0], kActors);  // no migration: all home
  EXPECT_EQ(off.shed_out, 0u);

  HotSpotResult on = run_once(true);
  EXPECT_EQ(on.total_steps, kExpectedSteps);
  EXPECT_GT(on.shed_out, 0u);  // the hot node really shed
  EXPECT_GT(on.shed_in_elsewhere, 0u);
  // Post-migration spread: node 0 no longer owns everything, and at least
  // one other node ended the run owning migrated objects.
  EXPECT_LT(on.objects_per_node[0], kActors);
  int nodes_with_objects = 0;
  for (int n : on.objects_per_node) nodes_with_objects += n > 0;
  EXPECT_GE(nodes_with_objects, 2);

  // Determinism: the same configuration replays to the byte.
  HotSpotResult again = run_once(true);
  EXPECT_EQ(again.metrics, on.metrics);
  EXPECT_EQ(again.objects_per_node, on.objects_per_node);
}

// ----------------------------------------------- ABCLSIM_MIGRATION env -----

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(MigrationEnv, UnsetMeansDisabled) {
  ScopedEnv e("ABCLSIM_MIGRATION", nullptr);
  EXPECT_FALSE(WorldConfig::from_env().migration.enabled);
}

TEST(MigrationEnv, ReadsFullSpec) {
  ScopedEnv e("ABCLSIM_MIGRATION", "interval=16,min_queue=3,seed=11");
  WorldConfig cfg = WorldConfig::from_env();
  EXPECT_TRUE(cfg.migration.enabled);
  EXPECT_EQ(cfg.migration.interval, 16u);
  EXPECT_EQ(cfg.migration.min_queue, 3u);
  EXPECT_EQ(cfg.migration.seed, 11u);
}

TEST(MigrationEnvDeath, GarbageAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedEnv e("ABCLSIM_MIGRATION", "interval=lots");
  EXPECT_DEATH({ WorldConfig::from_env(); }, "ABCLSIM_MIGRATION");
}

}  // namespace
