// Topology-aware lookahead + deterministic shard balancing: unit tests for
// HorizonMap's O(N) exclude-self min-plus relaxation against the O(N^2)
// brute force, the line transform it is built from, the ShardBalancer's
// deterministic LPT packing, the ParallelMachine policy matrix
// ({global,distance} x {static,balanced}) byte-identity contract, the
// fault-injection fallback to the flat window, and the ABCLSIM_HORIZON /
// ABCLSIM_SHARD environment grammar.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "apps/nqueens.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/lookahead.hpp"
#include "sim/parallel_machine.hpp"
#include "sim/shard_balance.hpp"

namespace {

using namespace abcl;
using net::Topology;
using net::TopologyKind;
using sim::HorizonMap;
using sim::Instr;
using sim::kInstrInf;
using sim::sat_add;

// Deterministic key stream: SplitMix64 over an index, occasionally idle.
Instr key_at(std::uint64_t seed, std::uint64_t i, bool allow_inf = true) {
  std::uint64_t z = seed + (i + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  if (allow_inf && (z & 7) == 0) return kInstrInf;  // 1/8 idle
  return static_cast<Instr>(z % 100'000);
}

// ------------------------------------------------------------ sat_add -----

TEST(Lookahead, SatAddSaturatesAtInf) {
  EXPECT_EQ(sat_add(5, 7), 12u);
  EXPECT_EQ(sat_add(kInstrInf, 0), kInstrInf);
  EXPECT_EQ(sat_add(kInstrInf, 5), kInstrInf);
  EXPECT_EQ(sat_add(kInstrInf - 3, 5), kInstrInf);
  EXPECT_EQ(sat_add(0, kInstrInf), kInstrInf);
}

// -------------------------------------------------- line_min_plus_excl ----

// O(n^2) reference of the exclude-self line transform.
void line_ref(const std::vector<Instr>& a, Instr w, bool wrap,
              std::vector<Instr>* out) {
  const std::size_t n = a.size();
  out->assign(n, kInstrInf);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      std::size_t d = i > j ? i - j : j - i;
      if (wrap) d = std::min(d, n - d);
      Instr v = sat_add(a[j], w * static_cast<Instr>(d));
      (*out)[i] = std::min((*out)[i], v);
    }
  }
}

TEST(Lookahead, LineMinPlusExclMatchesReference) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 17u}) {
    for (Instr w : {Instr{0}, Instr{1}, Instr{7}}) {
      for (bool wrap : {false, true}) {
        std::vector<Instr> a(n), got(n), want;
        for (std::size_t i = 0; i < n; ++i) a[i] = key_at(42 * n + w, i);
        sim::line_min_plus_excl(a.data(), n, w, wrap, got.data());
        line_ref(a, w, wrap, &want);
        EXPECT_EQ(got, want) << "n=" << n << " w=" << w << " wrap=" << wrap;
      }
    }
  }
}

TEST(Lookahead, LineMinPlusExclAllIdleIsIdle) {
  std::vector<Instr> a(6, kInstrInf), got(6);
  sim::line_min_plus_excl(a.data(), a.size(), 3, true, got.data());
  for (Instr v : got) EXPECT_EQ(v, kInstrInf);
}

// ----------------------------------------------------------- HorizonMap ---

// relax() must equal brute_force() exactly on every topology with an exact
// transform. Sizes deliberately include 1 (no other node -> inf), primes
// (grids degrade to Nx1) and non-square factorizations (12 = 4x3, 30 = 6x5).
TEST(Lookahead, RelaxMatchesBruteForceOnExactTopologies) {
  const TopologyKind kinds[] = {TopologyKind::kTorus2D, TopologyKind::kMesh2D,
                                TopologyKind::kFullyConnected,
                                TopologyKind::kRing};
  const std::int32_t sizes[] = {1, 2, 3, 4, 5, 7, 12, 16, 30, 64};
  for (TopologyKind kind : kinds) {
    for (std::int32_t n : sizes) {
      Topology topo(kind, n);
      for (Instr per_hop : {Instr{0}, Instr{1}, Instr{3}}) {
        HorizonMap hmap(&topo, per_hop);
        std::vector<Instr> keys(static_cast<std::size_t>(n)), got;
        for (std::size_t i = 0; i < keys.size(); ++i) {
          keys[i] = key_at(static_cast<std::uint64_t>(n) * 31 + per_hop, i);
        }
        hmap.relax(keys, &got);
        ASSERT_EQ(got.size(), keys.size());
        for (std::int32_t i = 0; i < n; ++i) {
          EXPECT_EQ(got[static_cast<std::size_t>(i)],
                    HorizonMap::brute_force(topo, per_hop, keys, i))
              << "kind=" << static_cast<int>(kind) << " n=" << n
              << " per_hop=" << per_hop << " i=" << i;
        }
      }
    }
  }
}

// The hypercube pass is exact for every j != i and only over-conservative
// in the self echo key_i + 2 * per_hop (a valid, smaller bound): relax ==
// min(brute, key_i + 2 * per_hop) exactly.
TEST(Lookahead, RelaxHypercubeIsBruteForceModuloSelfEcho) {
  for (std::int32_t n : {1, 2, 4, 8, 16, 64}) {
    Topology topo(TopologyKind::kHypercube, n);
    for (Instr per_hop : {Instr{0}, Instr{1}, Instr{3}}) {
      HorizonMap hmap(&topo, per_hop);
      std::vector<Instr> keys(static_cast<std::size_t>(n)), got;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        keys[i] = key_at(static_cast<std::uint64_t>(n) * 977 + per_hop, i);
      }
      hmap.relax(keys, &got);
      ASSERT_EQ(got.size(), keys.size());
      for (std::int32_t i = 0; i < n; ++i) {
        Instr brute = HorizonMap::brute_force(topo, per_hop, keys, i);
        // The self echo key_i + 2 * per_hop needs a neighbour to bounce off;
        // a 0-cube has none, and the exact answer (inf) comes out instead.
        Instr echo = n > 1
                         ? sat_add(keys[static_cast<std::size_t>(i)], 2 * per_hop)
                         : kInstrInf;
        EXPECT_EQ(got[static_cast<std::size_t>(i)], std::min(brute, echo))
            << "n=" << n << " per_hop=" << per_hop << " i=" << i;
        EXPECT_LE(got[static_cast<std::size_t>(i)], brute);
      }
    }
  }
}

TEST(Lookahead, RelaxAllIdleOrSingletonIsInf) {
  Topology topo(TopologyKind::kTorus2D, 16);
  HorizonMap hmap(&topo, 1);
  std::vector<Instr> keys(16, kInstrInf), got;
  hmap.relax(keys, &got);
  for (Instr v : got) EXPECT_EQ(v, kInstrInf);

  // One busy node: every *other* node is bounded by it, the busy node
  // itself sees only idle peers and gets inf — the isolated-hot-node case
  // that lets a lone busy node drain in a single window.
  keys[5] = 1000;
  hmap.relax(keys, &got);
  EXPECT_EQ(got[5], kInstrInf);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == 5) continue;
    EXPECT_EQ(got[i], 1000 + 1 * static_cast<Instr>(topo.hops(5,
                              static_cast<NodeId>(i))));
  }

  Topology one(TopologyKind::kRing, 1);
  HorizonMap hone(&one, 1);
  std::vector<Instr> k1{123};
  hone.relax(k1, &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], kInstrInf);
}

// -------------------------------------------------------- ShardBalancer ---

TEST(ShardBalance, InitialAssignmentIsRoundRobin) {
  sim::ShardBalancer bal(10, 4, 7);
  for (std::int32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(bal.assignment()[static_cast<std::size_t>(i)], i % 4);
  }
}

TEST(ShardBalance, RebalanceIsDeterministicAndConsumesQuanta) {
  auto feed = [](sim::ShardBalancer& bal, std::uint64_t salt) {
    std::vector<std::int32_t> history;
    for (int round = 0; round < 6; ++round) {
      std::vector<std::uint64_t> q(16);
      for (std::size_t i = 0; i < q.size(); ++i) {
        q[i] = key_at(salt + round, i, /*allow_inf=*/false) & 31;
      }
      bal.rebalance(q.data());
      for (std::uint64_t v : q) EXPECT_EQ(v, 0u);  // consumed
      history.insert(history.end(), bal.assignment().begin(),
                     bal.assignment().end());
    }
    return history;
  };
  sim::ShardBalancer a(16, 4, 99), b(16, 4, 99);
  EXPECT_EQ(feed(a, 5), feed(b, 5));  // bit-identical history, same stream

  // A different tie-break seed may pack equal loads differently, but the
  // result is still a valid assignment into [0, workers).
  sim::ShardBalancer c(16, 4, 100);
  for (std::int32_t w : feed(c, 5)) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
  }
}

TEST(ShardBalance, LptIsolatesTheHeavyNode) {
  sim::ShardBalancer bal(4, 2, 1);
  std::vector<std::uint64_t> q = {100, 1, 1, 1};
  bal.rebalance(q.data());
  const auto& a = bal.assignment();
  // Largest-first onto least-loaded: the heavy node ends up alone on one
  // worker, the three light ones share the other.
  EXPECT_NE(a[0], a[1]);
  EXPECT_EQ(a[1], a[2]);
  EXPECT_EQ(a[2], a[3]);
}

TEST(ShardBalance, SteadyLoadConverges) {
  sim::ShardBalancer bal(32, 8, 3);
  std::vector<std::uint64_t> base(32);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = key_at(11, i, /*allow_inf=*/false) & 63;
  }
  int moves = -1;
  for (int round = 0; round < 12; ++round) {
    std::vector<std::uint64_t> q = base;
    moves = bal.rebalance(q.data());
  }
  // Identical per-window loads: the EWMAs converge and the LPT packing
  // stops churning — steady state must be a fixed point, not an oscillation.
  EXPECT_EQ(moves, 0);
}

// --------------------------------------- ParallelMachine policy matrix ----

struct PolicyFp {
  std::int64_t solutions = 0;
  Instr sim_time = 0;
  std::uint64_t quanta = 0;
  std::string metrics;
  bool operator==(const PolicyFp&) const = default;
};

PolicyFp run_policy(int host_threads, sim::HorizonKind h, sim::ShardKind s,
                    sim::ParallelMachine** pm_out = nullptr, World** w = nullptr,
                    bool faults = false) {
  static core::Program* prog = nullptr;
  static apps::NQueensProgram np;
  if (prog == nullptr) {
    prog = new core::Program();
    np = apps::register_nqueens(*prog);
    prog->finalize();
  }
  WorldConfig cfg;
  cfg.with_nodes(16);
  cfg.with_host_threads(host_threads);
  cfg.with_horizon(h);
  cfg.with_shard(s);
  if (faults) {
    net::FaultConfig fc;
    fc.enabled = true;
    fc.drop_ppm = 50'000;
    fc.seed = 17;
    cfg.with_faults(fc);
  }
  static World* world = nullptr;
  delete world;
  world = new World(*prog, cfg);
  auto r = apps::run_nqueens(*world, np,
                             apps::NQueensParams::paper_calibrated(6));
  PolicyFp fp;
  fp.solutions = r.solutions;
  fp.sim_time = r.sim_time;
  fp.quanta = r.rep.quanta;
  fp.metrics = obs::metrics_json(*world);
  if (pm_out != nullptr) {
    *pm_out = dynamic_cast<sim::ParallelMachine*>(&world->machine());
  }
  if (w != nullptr) *w = world;
  return fp;
}

TEST(WindowPolicy, MatrixIsByteIdenticalToSerial) {
  const PolicyFp serial =
      run_policy(-1, sim::HorizonKind::kGlobal, sim::ShardKind::kStatic);
  EXPECT_EQ(serial.solutions, 4);  // 6-queens
  for (sim::HorizonKind h :
       {sim::HorizonKind::kGlobal, sim::HorizonKind::kDistance}) {
    for (sim::ShardKind s : {sim::ShardKind::kStatic, sim::ShardKind::kBalanced}) {
      for (int t : {1, 2, 8}) {
        PolicyFp fp = run_policy(t, h, s);
        EXPECT_EQ(fp, serial) << "threads=" << t << " horizon="
                              << sim::to_string(h) << " shard="
                              << sim::to_string(s);
      }
    }
  }
}

TEST(WindowPolicy, DistanceNeverAddsWindowsAndCountersAreSane) {
  sim::ParallelMachine* pm_g = nullptr;
  run_policy(2, sim::HorizonKind::kGlobal, sim::ShardKind::kStatic, &pm_g);
  ASSERT_NE(pm_g, nullptr);
  const std::uint64_t wg = pm_g->windows_run();
  const std::uint64_t og = pm_g->occupancy_sum();
  EXPECT_GT(wg, 0u);
  EXPECT_GT(og, 0u);
  EXPECT_EQ(pm_g->rebalances(), 0u);   // static shard never rebalances
  EXPECT_EQ(pm_g->shard_moves(), 0u);

  sim::ParallelMachine* pm_d = nullptr;
  run_policy(2, sim::HorizonKind::kDistance, sim::ShardKind::kStatic, &pm_d);
  ASSERT_NE(pm_d, nullptr);
  EXPECT_EQ(pm_d->horizon_kind(), sim::HorizonKind::kDistance);
  // Per-node horizons are >= the flat bound, so a window commits at least
  // as many quanta — the policy can only remove barriers, never add them.
  EXPECT_LE(pm_d->windows_run(), wg);
  // Occupancy counts node-window incidences: at most every node per window.
  EXPECT_GT(pm_d->occupancy_sum(), 0u);
  EXPECT_LE(pm_d->occupancy_sum(), pm_d->windows_run() * 16);
}

TEST(WindowPolicy, BalancedShardRebalancesAtMultiThreadWidths) {
  sim::ParallelMachine* pm = nullptr;
  run_policy(8, sim::HorizonKind::kGlobal, sim::ShardKind::kBalanced, &pm);
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->shard_kind(), sim::ShardKind::kBalanced);
  EXPECT_GT(pm->rebalances(), 0u);

  // A single worker has nothing to balance: the policy degrades to static.
  sim::ParallelMachine* pm1 = nullptr;
  run_policy(1, sim::HorizonKind::kGlobal, sim::ShardKind::kBalanced, &pm1);
  ASSERT_NE(pm1, nullptr);
  EXPECT_EQ(pm1->shard_kind(), sim::ShardKind::kStatic);
}

TEST(WindowPolicy, FaultInjectionFallsBackToGlobalWindows) {
  // The retry protocol's timer keys are not priced by hop distance, so the
  // distance horizon is unsound under fault injection; the driver must
  // fall back to the flat bound (and say so via horizon_kind()).
  sim::ParallelMachine* pm = nullptr;
  run_policy(2, sim::HorizonKind::kDistance, sim::ShardKind::kStatic, &pm,
             nullptr, /*faults=*/true);
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->horizon_kind(), sim::HorizonKind::kGlobal);
}

TEST(WindowPolicy, DriverMetricsJsonSnapshotsTheCounters) {
  sim::ParallelMachine* pm = nullptr;
  run_policy(8, sim::HorizonKind::kDistance, sim::ShardKind::kBalanced, &pm);
  ASSERT_NE(pm, nullptr);
  const std::string js = obs::driver_metrics_json(*pm);
  std::string err;
  auto doc = obs::parse_json(js, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("horizon")->string, "distance");
  EXPECT_EQ(doc->find("shard")->string, "balanced");
  EXPECT_EQ(static_cast<std::uint64_t>(doc->find("windows_run")->integer),
            pm->windows_run());
  EXPECT_EQ(static_cast<std::uint64_t>(doc->find("occupancy_sum")->integer),
            pm->occupancy_sum());
  EXPECT_EQ(static_cast<std::uint64_t>(doc->find("rebalances")->integer),
            pm->rebalances());
  EXPECT_EQ(static_cast<std::uint64_t>(doc->find("shard_moves")->integer),
            pm->shard_moves());
}

// ------------------------------------------------------- env grammar ------

// Saves/restores one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(WindowPolicyEnv, ParsesHorizonAndShard) {
  {
    ScopedEnv h("ABCLSIM_HORIZON", nullptr);
    ScopedEnv s("ABCLSIM_SHARD", nullptr);
    WorldConfig cfg = WorldConfig::from_env();
    EXPECT_EQ(cfg.horizon, sim::HorizonKind::kGlobal);
    EXPECT_EQ(cfg.shard, sim::ShardKind::kStatic);
  }
  {
    ScopedEnv h("ABCLSIM_HORIZON", "distance");
    ScopedEnv s("ABCLSIM_SHARD", "balanced");
    WorldConfig cfg = WorldConfig::from_env();
    EXPECT_EQ(cfg.horizon, sim::HorizonKind::kDistance);
    EXPECT_EQ(cfg.shard, sim::ShardKind::kBalanced);
  }
}

TEST(WindowPolicyEnvDeathTest, GarbageHorizonAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedEnv h("ABCLSIM_HORIZON", "nearby");
  ScopedEnv s("ABCLSIM_SHARD", nullptr);
  EXPECT_DEATH(WorldConfig::from_env(), "ABCLSIM_HORIZON");
}

TEST(WindowPolicyEnvDeathTest, GarbageShardAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedEnv h("ABCLSIM_HORIZON", nullptr);
  ScopedEnv s("ABCLSIM_SHARD", "spread");
  EXPECT_DEATH(WorldConfig::from_env(), "ABCLSIM_SHARD");
}

TEST(WindowPolicy, ToStringSpellsTheEnvGrammar) {
  EXPECT_STREQ(sim::to_string(sim::HorizonKind::kGlobal), "global");
  EXPECT_STREQ(sim::to_string(sim::HorizonKind::kDistance), "distance");
  EXPECT_STREQ(sim::to_string(sim::ShardKind::kStatic), "static");
  EXPECT_STREQ(sim::to_string(sim::ShardKind::kBalanced), "balanced");
}

}  // namespace
