// Tracer ring buffer and the World's utilization reporting.
#include <gtest/gtest.h>

#include "apps/counters.hpp"
#include "apps/fib.hpp"
#include "sim/trace.hpp"
#include "support.hpp"

namespace {

using namespace abcl;

TEST(Tracer, RecordsInOrder) {
  sim::Tracer t(8);
  for (int i = 0; i < 5; ++i) {
    t.record(static_cast<sim::Instr>(i * 10), i % 2, sim::TraceEv::kQuantum);
  }
  EXPECT_EQ(t.size(), 5u);
  auto ev = t.snapshot();
  ASSERT_EQ(ev.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ev[static_cast<std::size_t>(i)].t, static_cast<sim::Instr>(i * 10));
  }
}

TEST(Tracer, RingOverwritesOldest) {
  sim::Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.record(static_cast<sim::Instr>(i), 0, sim::TraceEv::kSendRemote);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  auto ev = t.snapshot();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev.front().t, 6u);
  EXPECT_EQ(ev.back().t, 9u);
}

// Regression: a zero-capacity ring used to make record() reduce its index
// modulo zero (UB / SIGFPE). Capacity is now clamped to 1.
TEST(Tracer, ZeroCapacityIsClampedToOne) {
  sim::Tracer t(0);
  EXPECT_EQ(t.capacity(), 1u);
  for (int i = 0; i < 3; ++i) {
    t.record(static_cast<sim::Instr>(i), 0, sim::TraceEv::kQuantum,
             static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.total_recorded(), 3u);
  auto ev = t.snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].t, 2u);
  EXPECT_EQ(ev[0].payload, 2u);
}

// After the ring wraps, snapshot() must still return the surviving suffix in
// record order, with each event's payload travelling with it.
TEST(Tracer, WrapAroundKeepsOrderAndPayloads) {
  sim::Tracer t(4);
  for (int i = 0; i < 11; ++i) {
    t.record(static_cast<sim::Instr>(100 + i), i % 3, sim::TraceEv::kCreate,
             static_cast<std::uint64_t>(1000 + i));
  }
  auto ev = t.snapshot();
  ASSERT_EQ(ev.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    int logical = 7 + static_cast<int>(i);  // events 7..10 survive
    EXPECT_EQ(ev[i].t, static_cast<sim::Instr>(100 + logical));
    EXPECT_EQ(ev[i].node, logical % 3);
    EXPECT_EQ(ev[i].payload, static_cast<std::uint64_t>(1000 + logical));
  }
}

TEST(Tracer, ClearResets) {
  sim::Tracer t(4);
  t.record(1, 0, sim::TraceEv::kBlock);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, CapturesRuntimeEventKinds) {
  core::Program prog;
  auto fp = apps::register_fib(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);
  sim::Tracer tracer(1u << 16);
  world.attach_tracer(&tracer);
  apps::run_fib(world, fp, 10);

  bool saw[6] = {};
  for (const auto& e : tracer.snapshot()) {
    saw[static_cast<int>(e.kind)] = true;
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, 4);
  }
  EXPECT_TRUE(saw[static_cast<int>(sim::TraceEv::kQuantum)]);
  EXPECT_TRUE(saw[static_cast<int>(sim::TraceEv::kSendRemote)]);
  EXPECT_TRUE(saw[static_cast<int>(sim::TraceEv::kRecvRemote)]);
  EXPECT_TRUE(saw[static_cast<int>(sim::TraceEv::kBlock)]);
  EXPECT_TRUE(saw[static_cast<int>(sim::TraceEv::kResume)]);
  EXPECT_TRUE(saw[static_cast<int>(sim::TraceEv::kCreate)]);
}

TEST(Tracer, DetachStopsRecording) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  sim::Tracer tracer(64);
  world.attach_tracer(&tracer);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) { c = ctx.create_local(*cp.cls, nullptr, 0); });
  EXPECT_GT(tracer.total_recorded(), 0u);
  std::uint64_t before = tracer.total_recorded();
  world.attach_tracer(nullptr);
  world.boot(0, [&](Ctx& ctx) { ctx.create_local(*cp.cls, nullptr, 0); });
  EXPECT_EQ(tracer.total_recorded(), before);
}

TEST(Utilization, SingleBusyNodeShowsFullUtilization) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*cp.cls, nullptr, 0);
    for (int i = 0; i < 100; ++i) ctx.send_past(c, cp.inc, nullptr, 0);
  });
  world.run();
  EXPECT_NEAR(world.mean_utilization(), 1.0, 1e-9);
  std::string table = world.utilization_table().to_string();
  EXPECT_NE(table.find("100.0%"), std::string::npos);
}

TEST(Utilization, IdleNodesDragTheMeanDown) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*cp.cls, nullptr, 0);
    for (int i = 0; i < 100; ++i) ctx.send_past(c, cp.inc, nullptr, 0);
  });
  world.run();
  EXPECT_LT(world.mean_utilization(), 0.5);
  EXPECT_GT(world.mean_utilization(), 0.0);
}

}  // namespace
