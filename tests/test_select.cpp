// Selective reception (Sections 2.2 action 4, 4.2, 4.3) through the
// SyncBuffer app: per-wait-site virtual function tables, direct context
// restoration, queue-scan-before-block, and deferral of unaccepted
// messages.
#include <gtest/gtest.h>

#include "apps/buffer.hpp"
#include "support.hpp"

namespace {

using namespace abcl;
using namespace abcl::testsup;

struct Fixture {
  core::Program prog;
  apps::BufferProgram buf;
  AskerProgram asker;

  Fixture() {
    buf = apps::register_buffer(prog);
    asker = register_asker(prog);
    prog.finalize();
  }
};

TEST(Select, GetFromNonEmptyBufferNeverWaits) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr a;
  world.boot(0, [&](Ctx& ctx) {
    MailAddr b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    Word item = 31;
    ctx.send_past(b, fx.buf.put, &item, 1);
    a = ctx.create_local(*fx.asker.cls, nullptr, 0);
    Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
    ctx.send_past(a, fx.asker.go, args, 3);
    EXPECT_EQ(a.ptr->state_as<AskerState>()->got, 31);
  });
  world.run();
  EXPECT_EQ(world.total_stats().blocks_select, 0u);
}

TEST(Select, GetOnEmptyBufferWaitsAndPutRestoresDirectly) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr a, b;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    a = ctx.create_local(*fx.asker.cls, nullptr, 0);
    Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
    ctx.send_past(a, fx.asker.go, args, 3);
    // Both the buffer's get-method and the asker are now blocked.
    EXPECT_EQ(b.ptr->mode, core::Mode::kWaiting);
    EXPECT_GE(b.ptr->vftp->wait_site, 0);
    // The put restores the blocked get directly on this stack.
    Word item = 99;
    ctx.send_past(b, fx.buf.put, &item, 1);
    EXPECT_EQ(a.ptr->state_as<AskerState>()->got, 99);
    EXPECT_EQ(b.ptr->mode, core::Mode::kDormant);
  });
  world.run();
  auto st = world.total_stats();
  EXPECT_EQ(st.blocks_select, 1u);
  EXPECT_EQ(st.local_to_waiting_hit, 1u);
  EXPECT_EQ(apps::buffer_state(b).waited_gets, 1u);
}

TEST(Select, ScanFindsMessageAlreadyInQueue) {
  // A put buffered while the buffer was active must satisfy a later get
  // without blocking: "the object is not blocked as long as it finds an
  // awaited message when it first checks its message queue".
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  // Force queueing of the put by disabling the direct-call path.
  cfg.node.max_call_depth = 0;
  World world(fx.prog, cfg);
  MailAddr a, b;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    a = ctx.create_local(*fx.asker.cls, nullptr, 0);
    Word item = 12;
    ctx.send_past(b, fx.buf.put, &item, 1);
    Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
    ctx.send_past(a, fx.asker.go, args, 3);
  });
  world.run();
  EXPECT_EQ(a.ptr->state_as<AskerState>()->got, 12);
}

TEST(Select, UnacceptedMessagesDeferredWhileWaiting) {
  // While a get waits for a put, another get must be buffered (not served)
  // and handled after the first completes — in order.
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr a1, a2, b;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    a1 = ctx.create_local(*fx.asker.cls, nullptr, 0);
    a2 = ctx.create_local(*fx.asker.cls, nullptr, 0);
    Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
    ctx.send_past(a1, fx.asker.go, args, 3);
    ctx.send_past(a2, fx.asker.go, args, 3);
    EXPECT_EQ(b.ptr->mq.size(), 1u);  // second get deferred
    Word i1 = 100, i2 = 200;
    ctx.send_past(b, fx.buf.put, &i1, 1);  // serves the waiting get (a1)
    ctx.send_past(b, fx.buf.put, &i2, 1);  // a2's get replays, then this put
  });
  world.run();
  EXPECT_EQ(a1.ptr->state_as<AskerState>()->got, 100);
  EXPECT_EQ(a2.ptr->state_as<AskerState>()->got, 200);
}

TEST(Select, WorksUnderNaivePolicy) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.node.policy = core::SchedPolicy::kNaive;
  World world(fx.prog, cfg);
  MailAddr a, b;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    a = ctx.create_local(*fx.asker.cls, nullptr, 0);
    Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
    ctx.send_past(a, fx.asker.go, args, 3);
    Word item = 64;
    ctx.send_past(b, fx.buf.put, &item, 1);
  });
  world.run();
  EXPECT_EQ(a.ptr->state_as<AskerState>()->got, 64);
}

TEST(Select, RemoteProducersAndConsumers) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(fx.prog, cfg);
  MailAddr b;
  std::vector<MailAddr> askers;
  world.boot(1, [&](Ctx& ctx) { b = ctx.create_local(*fx.buf.cls, nullptr, 0); });
  world.boot(2, [&](Ctx& ctx) {
    for (int i = 0; i < 3; ++i) {
      MailAddr a = ctx.create_local(*fx.asker.cls, nullptr, 0);
      askers.push_back(a);
      Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
      ctx.send_past(a, fx.asker.go, args, 3);
    }
  });
  world.boot(3, [&](Ctx& ctx) {
    for (Word item = 1; item <= 3; ++item) {
      ctx.send_past(b, fx.buf.put, &item, 1);
    }
  });
  world.run();
  std::int64_t sum = 0;
  for (MailAddr a : askers) {
    EXPECT_TRUE(a.ptr->state_as<AskerState>()->completed);
    sum += a.ptr->state_as<AskerState>()->got;
  }
  EXPECT_EQ(sum, 6);  // each item consumed exactly once
  EXPECT_EQ(apps::buffer_state(b).puts, 3u);
}

TEST(Select, ManyItemsFlowThroughInOrderWhenBufferNotWaiting) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr b;
  std::vector<MailAddr> askers;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    for (Word item = 10; item < 15; ++item) {
      ctx.send_past(b, fx.buf.put, &item, 1);
    }
    for (int i = 0; i < 5; ++i) {
      MailAddr a = ctx.create_local(*fx.asker.cls, nullptr, 0);
      askers.push_back(a);
      Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
      ctx.send_past(a, fx.asker.go, args, 3);
    }
  });
  world.run();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(askers[static_cast<std::size_t>(i)].ptr->state_as<AskerState>()->got,
              10 + i)
        << "ring buffer must be FIFO";
  }
}

TEST(Select, PutIntoFullBufferWaitsForGet) {
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr b, a;
  world.boot(0, [&](Ctx& ctx) {
    b = ctx.create_local(*fx.buf.cls, nullptr, 0);
    for (Word item = 0; item < apps::kBufferCapacity; ++item) {
      ctx.send_past(b, fx.buf.put, &item, 1);
    }
    EXPECT_EQ(b.ptr->mode, core::Mode::kDormant);
    // One more put: the buffer is full, the put must select-wait.
    Word overflow_item = 99;
    ctx.send_past(b, fx.buf.put, &overflow_item, 1);
    EXPECT_EQ(b.ptr->mode, core::Mode::kWaiting);
    // A get arrives: it is consumed by the waiting put's site, which serves
    // the OLDEST item (FIFO) and then stores its own.
    a = ctx.create_local(*fx.asker.cls, nullptr, 0);
    Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
    ctx.send_past(a, fx.asker.go, args, 3);
    EXPECT_EQ(a.ptr->state_as<AskerState>()->got, 0);
    EXPECT_EQ(b.ptr->mode, core::Mode::kDormant);
  });
  world.run();
  const auto& bs = apps::buffer_state(b);
  EXPECT_EQ(bs.waited_puts, 1u);
  EXPECT_EQ(bs.count, apps::kBufferCapacity);  // still full: 1..15 + 99
}

TEST(Select, OverflowingProducerIsFlowControlled) {
  // 3x capacity puts, then enough gets: every item must come out exactly
  // once, in order.
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(fx.prog, cfg);
  const int kItems = 3 * apps::kBufferCapacity;
  MailAddr b;
  std::vector<MailAddr> askers;
  world.boot(0, [&](Ctx& ctx) { b = ctx.create_local(*fx.buf.cls, nullptr, 0); });
  world.boot(1, [&](Ctx& ctx) {
    for (Word item = 0; item < static_cast<Word>(kItems); ++item) {
      ctx.send_past(b, fx.buf.put, &item, 1);
    }
  });
  world.run();
  world.boot(0, [&](Ctx& ctx) {
    for (int i = 0; i < kItems; ++i) {
      MailAddr a = ctx.create_local(*fx.asker.cls, nullptr, 0);
      askers.push_back(a);
      Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
      ctx.send_past(a, fx.asker.go, args, 3);
    }
  });
  world.run();
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(askers[static_cast<std::size_t>(i)].ptr->state_as<AskerState>()->got,
              i);
  }
  EXPECT_GT(apps::buffer_state(b).waited_puts, 0u);
}

// ---------------------------------------------------------------------------
// Hybrid wait: selective reception including now-type replies (Section 2.2
// action 4). A Requester asks a Delay object and waits for EITHER the reply
// or a "cancel" message.
// ---------------------------------------------------------------------------

namespace hybrid {

struct ReqState {
  std::int64_t got = -1;
  bool cancelled = false;
  bool completed = false;
};

constexpr std::uint16_t kPcCancelled = 2;

struct ReqGoFrame : Frame {
  MailAddr target;
  PatternId ask_pat = 0;
  NowCall call;

  static void init(ReqGoFrame& f, const Msg& m) {
    f.target = m.addr(0);
    f.ask_pat = static_cast<PatternId>(m.at(2));
  }
  static void copy_cancel(ReqGoFrame&, const Msg&) {}  // no payload

  static Status run(Ctx& ctx, ReqState& self, ReqGoFrame& f) {
    ABCL_BEGIN(f);
    f.call = ctx.send_now(f.target, f.ask_pat, nullptr, 0);
    ABCL_AWAIT_OR_SELECT(ctx, self, f, 1, f.call, /*site=*/0);
    // Reply path.
    self.got = static_cast<std::int64_t>(ctx.take_reply(f.call));
    self.completed = true;
    ABCL_RETURN();
    case kPcCancelled:
      // Cancel path: the reply registration was dropped; consume the reply
      // whenever it eventually arrives so the box is reclaimed.
      self.cancelled = true;
      ABCL_AWAIT(ctx, f, 3, f.call);
      self.got = static_cast<std::int64_t>(ctx.take_reply(f.call));
      self.completed = true;
    ABCL_END();
  }
};

struct CancelFrame : Frame {
  static void init(CancelFrame&, const Msg&) {}
  static Status run(Ctx&, ReqState& self, CancelFrame&) {
    // Cancel arriving while NOT waiting: record and ignore.
    self.cancelled = true;
    return Status::kDone;
  }
};

struct Prog {
  PatternId go = 0, cancel = 0;
  const core::ClassInfo* cls = nullptr;
};

Prog register_requester(core::Program& prog) {
  Prog rp;
  rp.go = prog.patterns().intern("req.go", 3);
  rp.cancel = prog.patterns().intern("req.cancel", 0);
  ClassDef<ReqState> def(prog, "Requester");
  def.method<ReqGoFrame>(rp.go);
  def.method<CancelFrame>(rp.cancel);
  std::int32_t site = def.wait_site<ReqGoFrame>();
  ABCL_CHECK(site == 0);
  def.accept<ReqGoFrame, &ReqGoFrame::copy_cancel>(site, rp.cancel,
                                                   kPcCancelled);
  rp.cls = &def.info();
  return rp;
}

}  // namespace hybrid

struct HybridFixture {
  core::Program prog;
  DelayProgram delay;
  hybrid::Prog req;
  HybridFixture() {
    delay = register_delay(prog);
    req = hybrid::register_requester(prog);
    prog.finalize();
  }
};

TEST(HybridWait, ReplyArrivingFirstTakesTheAwaitPath) {
  HybridFixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr r, d;
  world.boot(0, [&](Ctx& ctx) {
    d = ctx.create_local(*fx.delay.cls, nullptr, 0);
    r = ctx.create_local(*fx.req.cls, nullptr, 0);
    Word args[3] = {d.word_node(), d.word_ptr(), fx.delay.ask};
    ctx.send_past(r, fx.req.go, args, 3);
    EXPECT_EQ(r.ptr->mode, core::Mode::kWaiting);
    Word v = 7;
    ctx.send_past(d, fx.delay.kick, &v, 1);
  });
  world.run();
  const auto& st = *r.ptr->state_as<hybrid::ReqState>();
  EXPECT_TRUE(st.completed);
  EXPECT_FALSE(st.cancelled);
  EXPECT_EQ(st.got, 7);
}

TEST(HybridWait, CancelArrivingFirstTakesTheSelectPath) {
  HybridFixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr r, d;
  world.boot(0, [&](Ctx& ctx) {
    d = ctx.create_local(*fx.delay.cls, nullptr, 0);
    r = ctx.create_local(*fx.req.cls, nullptr, 0);
    Word args[3] = {d.word_node(), d.word_ptr(), fx.delay.ask};
    ctx.send_past(r, fx.req.go, args, 3);
    ctx.send_past(r, fx.req.cancel, nullptr, 0);  // restores the select arm
    const auto& st = *r.ptr->state_as<hybrid::ReqState>();
    EXPECT_TRUE(st.cancelled);
    EXPECT_FALSE(st.completed);  // now awaiting the (late) reply cleanly
    EXPECT_EQ(r.ptr->mode, core::Mode::kWaiting);
    Word v = 13;
    ctx.send_past(d, fx.delay.kick, &v, 1);  // the late reply
  });
  world.run();
  const auto& st = *r.ptr->state_as<hybrid::ReqState>();
  EXPECT_TRUE(st.completed);
  EXPECT_TRUE(st.cancelled);
  EXPECT_EQ(st.got, 13);
}

TEST(HybridWait, CancelWhileNotWaitingIsAPlainMethod) {
  HybridFixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(fx.prog, cfg);
  MailAddr r;
  world.boot(0, [&](Ctx& ctx) {
    r = ctx.create_local(*fx.req.cls, nullptr, 0);
    ctx.send_past(r, fx.req.cancel, nullptr, 0);
  });
  world.run();
  EXPECT_TRUE(r.ptr->state_as<hybrid::ReqState>()->cancelled);
  EXPECT_EQ(r.ptr->mode, core::Mode::kDormant);
}

TEST(HybridWait, RemoteReplyRace) {
  // Across nodes: the cancel and the reply race through the network; both
  // orders must leave a consistent, completed requester.
  HybridFixture fx;
  WorldConfig cfg;
  cfg.with_nodes(3);
  World world(fx.prog, cfg);
  MailAddr r, d;
  world.boot(1, [&](Ctx& ctx) { d = ctx.create_local(*fx.delay.cls, nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) {
    r = ctx.create_local(*fx.req.cls, nullptr, 0);
    Word args[3] = {d.word_node(), d.word_ptr(), fx.delay.ask};
    ctx.send_past(r, fx.req.go, args, 3);
  });
  world.run();  // requester is blocked on the hybrid wait
  world.boot(2, [&](Ctx& ctx) { ctx.send_past(r, fx.req.cancel, nullptr, 0); });
  world.boot(1, [&](Ctx& ctx) {
    Word v = 21;
    ctx.send_past(d, fx.delay.kick, &v, 1);
  });
  world.run();
  const auto& st = *r.ptr->state_as<hybrid::ReqState>();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.got, 21);
}

TEST(HybridWait, NaivePolicyReplyAndCancelRace) {
  // Regression: under the naive policy a select-retry item can already be
  // pending when the reply arrives; the wakeup must neither double-schedule
  // nor get lost — the pending item observes the full box and resumes.
  HybridFixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.node.policy = core::SchedPolicy::kNaive;
  World world(fx.prog, cfg);
  MailAddr r, d;
  world.boot(0, [&](Ctx& ctx) {
    d = ctx.create_local(*fx.delay.cls, nullptr, 0);
    r = ctx.create_local(*fx.req.cls, nullptr, 0);
    Word args[3] = {d.word_node(), d.word_ptr(), fx.delay.ask};
    ctx.send_past(r, fx.req.go, args, 3);
  });
  world.run();  // r blocked in the hybrid wait, d holds the reply dest
  ASSERT_EQ(r.ptr->mode, core::Mode::kWaiting);
  world.boot(0, [&](Ctx& ctx) {
    // Order matters: the kick is scheduled before the cancel's retry item,
    // so the reply is delivered while r's kQueuedNext is pending.
    Word v = 5;
    ctx.send_past(d, fx.delay.kick, &v, 1);
    ctx.send_past(r, fx.req.cancel, nullptr, 0);
    EXPECT_EQ(r.ptr->sched_state, core::SchedState::kQueuedNext);
  });
  world.run();
  const auto& st = *r.ptr->state_as<hybrid::ReqState>();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.got, 5);
  EXPECT_TRUE(st.cancelled);  // the queued cancel ran as a plain method
  EXPECT_EQ(r.ptr->mode, core::Mode::kDormant);
  EXPECT_TRUE(r.ptr->mq.empty());
}

TEST(HybridWait, DepthBoundReplyAndCancelRace) {
  // Same race under the stack policy with the direct-call depth exhausted.
  HybridFixture fx;
  WorldConfig cfg;
  cfg.with_nodes(1);
  cfg.node.max_call_depth = 0;
  World world(fx.prog, cfg);
  MailAddr r, d;
  world.boot(0, [&](Ctx& ctx) {
    d = ctx.create_local(*fx.delay.cls, nullptr, 0);
    r = ctx.create_local(*fx.req.cls, nullptr, 0);
    Word args[3] = {d.word_node(), d.word_ptr(), fx.delay.ask};
    ctx.send_past(r, fx.req.go, args, 3);
  });
  world.run();
  ASSERT_EQ(r.ptr->mode, core::Mode::kWaiting);
  world.boot(0, [&](Ctx& ctx) {
    Word v = 6;
    ctx.send_past(d, fx.delay.kick, &v, 1);
    ctx.send_past(r, fx.req.cancel, nullptr, 0);
  });
  world.run();
  const auto& st = *r.ptr->state_as<hybrid::ReqState>();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(r.ptr->mode, core::Mode::kDormant);
  EXPECT_TRUE(r.ptr->mq.empty());
}

// ---------------------------------------------------------------------------
// Waiting-mode MVFT: while an object is blocked at a selective-reception
// site, every non-matching message must be buffered (none executed, none
// reordered, none lost), and once the awaited pattern arrives the buffered
// messages replay preserving each sender's FIFO order (Section 3.1's
// per-(src,dst) ordering guarantee carried through the waiting table).
// ---------------------------------------------------------------------------

namespace fifo_mvft {

struct WaiterState {
  Word log[32];
  int nlog = 0;
};

constexpr std::uint16_t kPcGo = 1;

struct StartFrame : Frame {
  Word go_v = 0;
  static void init(StartFrame&, const Msg&) {}
  static void copy_go(StartFrame& f, const Msg& m) { f.go_v = m.at(0); }
  static Status run(Ctx& ctx, WaiterState& self, StartFrame& f) {
    ABCL_BEGIN(f);
    ABCL_SELECT(ctx, self, f, /*site=*/0);
    case kPcGo:
      if (self.nlog < 32) self.log[self.nlog++] = f.go_v;
    ABCL_END();
  }
};

struct NoteFrame : Frame {
  Word v = 0;
  static void init(NoteFrame& f, const Msg& m) { f.v = m.at(0); }
  static Status run(Ctx&, WaiterState& self, NoteFrame& f) {
    if (self.nlog < 32) self.log[self.nlog++] = f.v;
    return Status::kDone;
  }
};

struct Prog {
  PatternId start = 0, note = 0, go = 0;
  const core::ClassInfo* cls = nullptr;
};

Prog register_waiter(core::Program& prog) {
  Prog wp;
  wp.start = prog.patterns().intern("w.start", 0);
  wp.note = prog.patterns().intern("w.note", 1);
  wp.go = prog.patterns().intern("w.go", 1);
  ClassDef<WaiterState> def(prog, "Waiter");
  def.method<StartFrame>(wp.start);
  def.method<NoteFrame>(wp.note);
  std::int32_t site = def.wait_site<StartFrame>();
  ABCL_CHECK(site == 0);
  def.accept<StartFrame, &StartFrame::copy_go>(site, wp.go, kPcGo);
  wp.cls = &def.info();
  return wp;
}

}  // namespace fifo_mvft

TEST(Select, WaitingModeQueuesNonMatchingAndPreservesPerSourceFifo) {
  core::Program prog;
  auto wp = fifo_mvft::register_waiter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(3);
  World world(prog, cfg);
  MailAddr w;
  world.boot(0, [&](Ctx& ctx) {
    w = ctx.create_local(*wp.cls, nullptr, 0);
    ctx.send_past(w, wp.start, nullptr, 0);
  });
  world.run();
  ASSERT_EQ(w.ptr->mode, core::Mode::kWaiting);
  ASSERT_EQ(w.ptr->vftp->wait_site, 0);

  // Two remote sources flood the waiter with messages its site does not
  // accept. Nothing may run; everything must buffer.
  world.boot(1, [&](Ctx& ctx) {
    for (Word v = 101; v <= 103; ++v) ctx.send_past(w, wp.note, &v, 1);
  });
  world.boot(2, [&](Ctx& ctx) {
    for (Word v = 201; v <= 203; ++v) ctx.send_past(w, wp.note, &v, 1);
  });
  world.run();
  EXPECT_EQ(w.ptr->mode, core::Mode::kWaiting);
  EXPECT_EQ(w.ptr->mq.size(), 6u);
  EXPECT_EQ(w.ptr->state_as<fifo_mvft::WaiterState>()->nlog, 0);

  // The awaited pattern arrives: the select resumes first, then the six
  // deferred notes replay.
  world.boot(1, [&](Ctx& ctx) {
    Word v = 42;
    ctx.send_past(w, wp.go, &v, 1);
  });
  world.run();
  const auto& st = *w.ptr->state_as<fifo_mvft::WaiterState>();
  EXPECT_EQ(w.ptr->mode, core::Mode::kDormant);
  EXPECT_TRUE(w.ptr->mq.empty());
  ASSERT_EQ(st.nlog, 7);
  EXPECT_EQ(st.log[0], 42u);
  // Each sender's messages must come out in its send order; the
  // interleaving BETWEEN senders is the network's business.
  std::vector<Word> from1, from2;
  for (int i = 1; i < 7; ++i) {
    (st.log[i] < 200 ? from1 : from2).push_back(st.log[i]);
  }
  ASSERT_EQ(from1.size(), 3u);
  ASSERT_EQ(from2.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(from1[static_cast<std::size_t>(i)], 101u + static_cast<Word>(i))
        << "per-(src,dst) FIFO broken for node 1";
    EXPECT_EQ(from2[static_cast<std::size_t>(i)], 201u + static_cast<Word>(i))
        << "per-(src,dst) FIFO broken for node 2";
  }
}

// Parameterized: the full producer/consumer flow balances for any mix of
// order, policy and node count.
class SelectFlow
    : public ::testing::TestWithParam<std::tuple<int, core::SchedPolicy, bool>> {
};

TEST_P(SelectFlow, AllGetsServedExactlyOnce) {
  auto [nodes, policy, puts_first] = GetParam();
  Fixture fx;
  WorldConfig cfg;
  cfg.with_nodes(nodes);
  cfg.node.policy = policy;
  World world(fx.prog, cfg);

  constexpr int kN = 12;
  MailAddr b;
  std::vector<MailAddr> askers;
  world.boot(0, [&](Ctx& ctx) { b = ctx.create_local(*fx.buf.cls, nullptr, 0); });
  auto do_puts = [&] {
    world.boot(nodes > 1 ? 1 : 0, [&](Ctx& ctx) {
      for (Word item = 0; item < kN; ++item) {
        ctx.send_past(b, fx.buf.put, &item, 1);
      }
    });
  };
  auto do_gets = [&] {
    world.boot(nodes > 2 ? 2 : 0, [&](Ctx& ctx) {
      for (int i = 0; i < kN; ++i) {
        MailAddr a = ctx.create_local(*fx.asker.cls, nullptr, 0);
        askers.push_back(a);
        Word args[3] = {b.word_node(), b.word_ptr(), fx.buf.get};
        ctx.send_past(a, fx.asker.go, args, 3);
      }
    });
  };
  if (puts_first) {
    do_puts();
    do_gets();
  } else {
    do_gets();
    do_puts();
  }
  world.run();

  std::int64_t sum = 0;
  for (MailAddr a : askers) {
    ASSERT_TRUE(a.ptr->state_as<AskerState>()->completed);
    sum += a.ptr->state_as<AskerState>()->got;
  }
  EXPECT_EQ(sum, kN * (kN - 1) / 2);  // every item consumed exactly once
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SelectFlow,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(core::SchedPolicy::kStack,
                                         core::SchedPolicy::kNaive),
                       ::testing::Bool()));

}  // namespace
