// Edge cases and limits: maximum arity, packet bounds, large worlds, odd
// state types, empty programs, world stepping controls.
#include <gtest/gtest.h>

#include "apps/counters.hpp"
#include "support.hpp"

namespace {

using namespace abcl;
using namespace abcl::testsup;

// --------------------------------------------------------- max-arity -------

struct WideState {
  Word sum = 0;
  Word first = 0, last = 0;
};

struct WideFrame : Frame {
  Word a[core::kMaxArgs];
  std::uint8_t n = 0;
  static void init(WideFrame& f, const Msg& m) {
    f.n = m.nargs;
    for (int i = 0; i < m.nargs; ++i) f.a[i] = m.at(i);
  }
  static Status run(Ctx&, WideState& self, WideFrame& f) {
    for (int i = 0; i < f.n; ++i) self.sum += f.a[i];
    self.first = f.a[0];
    self.last = f.a[f.n - 1];
    return Status::kDone;
  }
};

TEST(Edge, MaxArityMessageLocalAndRemote) {
  core::Program prog;
  PatternId wide = prog.patterns().intern("wide.msg", core::kMaxArgs);
  ClassDef<WideState> def(prog, "Wide");
  def.method<WideFrame>(wide);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  MailAddr local, remote;
  Word args[core::kMaxArgs];
  for (int i = 0; i < core::kMaxArgs; ++i) args[i] = static_cast<Word>(i + 1);
  world.boot(1, [&](Ctx& ctx) { remote = ctx.create_local(def.info(), nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) {
    local = ctx.create_local(def.info(), nullptr, 0);
    ctx.send_past(local, wide, args, core::kMaxArgs);
    ctx.send_past(remote, wide, args, core::kMaxArgs);
  });
  world.run();
  const Word expect = core::kMaxArgs * (core::kMaxArgs + 1) / 2;
  EXPECT_EQ(local.ptr->state_as<WideState>()->sum, expect);
  EXPECT_EQ(remote.ptr->state_as<WideState>()->sum, expect);
  EXPECT_EQ(remote.ptr->state_as<WideState>()->last, core::kMaxArgs);
}

// ---------------------------------------------------- non-trivial state ----

struct FancyState {
  std::vector<std::int64_t> log;  // non-trivially-copyable state is fine
  std::string name = "unset";

  void on_create(const Msg& m) {
    name = "fancy";
    if (m.nargs > 0) log.push_back(m.i64(0));
  }
};

struct FancyNoteFrame : Frame {
  std::int64_t v = 0;
  static void init(FancyNoteFrame& f, const Msg& m) { f.v = m.i64(0); }
  static Status run(Ctx&, FancyState& self, FancyNoteFrame& f) {
    self.log.push_back(f.v);
    return Status::kDone;
  }
};

TEST(Edge, NonTriviallyCopyableStateIsConstructedAndDestroyed) {
  core::Program prog;
  PatternId note = prog.patterns().intern("fancy.note", 1);
  ClassDef<FancyState> def(prog, "Fancy");
  def.method<FancyNoteFrame>(note);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  MailAddr f;
  world.boot(0, [&](Ctx& ctx) {
    Word seed = 100;
    f = ctx.create_local(def.info(), &seed, 1);
    for (Word v = 1; v <= 3; ++v) ctx.send_past(f, note, &v, 1);
  });
  world.run();
  const auto& st = *f.ptr->state_as<FancyState>();
  EXPECT_EQ(st.name, "fancy");
  ASSERT_EQ(st.log.size(), 4u);
  EXPECT_EQ(st.log[0], 100);
  EXPECT_EQ(st.log[3], 3);
  // Destruction runs at world teardown (ASan/valgrind would flag leaks).
}

// --------------------------------------------------------- big worlds ------

TEST(Edge, LargeWorldBootsAndRuns) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1024);
  World world(prog, cfg);
  MailAddr far;
  world.boot(1023, [&](Ctx& ctx) { far = ctx.create_local(*cp.cls, nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) { ctx.send_past(far, cp.inc, nullptr, 0); });
  world.run();
  EXPECT_EQ(apps::counter_state(far).count, 1);
  EXPECT_EQ(world.network().topology().dim_x(), 32);
  EXPECT_EQ(world.network().topology().dim_y(), 32);
}

TEST(Edge, EveryNodeTalksToEveryOther) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(12);
  World world(prog, cfg);
  std::vector<MailAddr> counters(12);
  for (NodeId nid = 0; nid < 12; ++nid) {
    world.boot(nid, [&](Ctx& ctx) {
      counters[static_cast<std::size_t>(nid)] =
          ctx.create_local(*cp.cls, nullptr, 0);
    });
  }
  for (NodeId src = 0; src < 12; ++src) {
    world.boot(src, [&](Ctx& ctx) {
      for (NodeId dst = 0; dst < 12; ++dst) {
        ctx.send_past(counters[static_cast<std::size_t>(dst)], cp.inc, nullptr,
                      0);
      }
    });
  }
  world.run();
  for (const MailAddr& c : counters) {
    EXPECT_EQ(apps::counter_state(c).count, 12);
  }
}

// ---------------------------------------------------- stepping controls ----

TEST(Edge, MaxTimeBoundsTheRun) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  MailAddr c;
  world.boot(1, [&](Ctx& ctx) { c = ctx.create_local(*cp.cls, nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) {
    Word args[2] = {1000, cp.inc};
    ctx.send_past(c, cp.fill, args, 2);  // remote: queues work on node 1
  });
  // max_time bounds when quanta may *start*; work scheduled later stays
  // deferred until a later run() call.
  RunReport first = world.run(/*max_time=*/200);
  RunReport rest = world.run();
  EXPECT_EQ(apps::counter_state(c).count, 1000);
  EXPECT_GT(rest.quanta, 500u);
  EXPECT_GT(rest.sim_time, first.sim_time);
}

TEST(Edge, EmptyWorldRunsToImmediateQuiescence) {
  core::Program prog;
  apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(4);
  World world(prog, cfg);
  RunReport rep = world.run();
  EXPECT_EQ(rep.quanta, 0u);
  EXPECT_EQ(rep.sim_time, 0u);
}

TEST(Edge, RunIsIdempotentAtQuiescence) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  MailAddr c;
  world.boot(1, [&](Ctx& ctx) { c = ctx.create_local(*cp.cls, nullptr, 0); });
  world.boot(0, [&](Ctx& ctx) { ctx.send_past(c, cp.inc, nullptr, 0); });
  world.run();
  RunReport again = world.run();
  EXPECT_EQ(again.quanta, 0u);
  EXPECT_EQ(apps::counter_state(c).count, 1);
}

// -------------------------------------------------------- misc limits ------

TEST(Edge, PacketPayloadGuardsOverflow) {
  net::Packet p;
  for (int i = 0; i < net::kMaxPacketWords; ++i) p.push(1);
  EXPECT_EQ(p.nwords, net::kMaxPacketWords);
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(p.push(1), "payload overflow");
}

TEST(Edge, MailAddrWordRoundTrip) {
  auto* fake = reinterpret_cast<core::ObjectHeader*>(0xDEADBEEF0ull);
  core::MailAddr a{37, fake};
  core::MailAddr b = core::MailAddr::from_words(a.word_node(), a.word_ptr());
  EXPECT_EQ(a, b);
  core::ReplyDest rd{512, reinterpret_cast<core::ReplyBox*>(0x1234560ull)};
  core::ReplyDest rd2 = core::ReplyDest::from_words(rd.word_node(), rd.word_box());
  EXPECT_EQ(rd2.node, 512);
  EXPECT_EQ(rd2.box, rd.box);
}

TEST(Edge, ArgPackEncodesTypedArguments) {
  core::MailAddr ma{3, reinterpret_cast<core::ObjectHeader*>(0x1000ull)};
  core::ReplyDest rd{7, reinterpret_cast<core::ReplyBox*>(0x2000ull)};
  enum class Color : std::uint8_t { kRed = 2 };
  ArgPack p = args(std::int64_t{-5}, ma, rd, Color::kRed);
  ASSERT_EQ(p.size(), 6);  // 1 + 2 + 2 + 1 words
  EXPECT_EQ(static_cast<std::int64_t>(p.data()[0]), -5);
  EXPECT_EQ(core::MailAddr::from_words(p.data()[1], p.data()[2]), ma);
  EXPECT_EQ(core::ReplyDest::from_words(p.data()[3], p.data()[4]).box, rd.box);
  EXPECT_EQ(p.data()[5], 2u);
}

TEST(Edge, ArgPackDrivesSends) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*cp.cls, args(std::int64_t{40}));
    ctx.send_past(c, cp.add, args(std::int64_t{2}));
  });
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 42);
}

TEST(EdgeDeath, ArgPackOverflowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ArgPack p;
  for (int i = 0; i < core::kMaxArgs; ++i) p.push(0);
  EXPECT_DEATH(p.push(0), "arity limit");
}

TEST(Edge, SelfSendWhileDormantViaBootIsImmediate) {
  // A boot-context send to a dormant object runs inline even when the
  // object immediately sends to itself (the self-send buffers).
  core::Program prog;
  auto cp = apps::register_counter(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  MailAddr c;
  world.boot(0, [&](Ctx& ctx) {
    c = ctx.create_local(*cp.cls, nullptr, 0);
    Word args[2] = {5, cp.inc};
    ctx.send_past(c, cp.fill, args, 2);
    EXPECT_EQ(c.ptr->mq.size(), 5u);  // buffered self-sends
  });
  world.run();
  EXPECT_EQ(apps::counter_state(c).count, 5);
}

}  // namespace
