// Fuzz subsystem tests: generator determinism, spec JSON round-trip and
// validation, interpreter semantics on hand-built specs, the committed
// 64-seed differential corpus, and shrinker minimization.
//
// The corpus test is the tier-1 fuzz gate: every seed's generated program
// must produce byte-identical metrics and trace fingerprints across the
// serial Machine and ParallelMachine at 1/2/8 workers, satisfy the
// conservation/termination invariants, and keep its flow counters under a
// network-latency scale-up. On failure the spec (plus a best-effort shrunk
// version) is written to $ABCLSIM_FUZZ_ARTIFACT_DIR for CI upload.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fuzz/oracle.hpp"
#include "fuzz/program_gen.hpp"
#include "fuzz/shrinker.hpp"
#include "fuzz/spec.hpp"
#include "obs/json.hpp"

namespace {

using namespace abcl;

// The committed corpus: these exact seeds gate every PR (see EXPERIMENTS.md
// for how to replay and extend them).
constexpr std::uint64_t kCorpus[] = {
    1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 16,
    17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32,
    33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48,
    49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64};
constexpr std::size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);
static_assert(kCorpusSize == 64);

// Writes a failing spec (and context) where CI can pick it up as an
// artifact; a no-op unless ABCLSIM_FUZZ_ARTIFACT_DIR is set.
void write_repro(const fuzz::Spec& spec, const std::string& name,
                 const std::string& why) {
  const char* dir = std::getenv("ABCLSIM_FUZZ_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  obs::write_file(std::string(dir) + "/" + name + ".json", spec.to_json());
  obs::write_file(std::string(dir) + "/" + name + ".txt", why);
}

TEST(ProgramGen, SameSeedSameSpecBitForBit) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1000000007ull}) {
    fuzz::Spec a = fuzz::generate(seed);
    fuzz::Spec b = fuzz::generate(seed);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.to_json(), b.to_json());
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(ProgramGen, DistinctSeedsDistinctPrograms) {
  // Not a hard guarantee, but if nearby seeds collided the corpus would be
  // worthless; these particular ones must differ.
  EXPECT_NE(fuzz::generate(1).to_json(), fuzz::generate(2).to_json());
  EXPECT_NE(fuzz::generate(2).to_json(), fuzz::generate(3).to_json());
}

TEST(ProgramGen, CorpusCoversTheStressKnobs) {
  // The 64-seed corpus must actually exercise the rare-path knobs the
  // generator biases toward; otherwise the gate tests less than it claims.
  int with_create = 0, with_select = 0, with_hybrid = 0, with_ablation = 0;
  int with_tiny_depth = 0, with_tiny_budget = 0, multi_node = 0;
  for (std::uint64_t seed : kCorpus) {
    fuzz::Spec s = fuzz::generate(seed);
    bool has_create = false, has_select = false, has_hybrid = false;
    for (const fuzz::ObjectSpec& os : s.objects) {
      for (const fuzz::Action& a : os.script) {
        has_create |= a.op == fuzz::Op::kCreate;
        has_select |= a.op == fuzz::Op::kSelectToken;
        has_hybrid |= a.op == fuzz::Op::kHybrid;
      }
    }
    with_create += has_create;
    with_select += has_select;
    with_hybrid += has_hybrid;
    with_ablation += s.disable_replenish;
    with_tiny_depth += s.max_call_depth <= 3;
    with_tiny_budget += s.reduction_budget <= 96;
    multi_node += s.nodes > 1;
  }
  EXPECT_GE(with_create, 10);
  EXPECT_GE(with_select, 10);
  EXPECT_GE(with_hybrid, 10);
  EXPECT_GE(with_ablation, 1);
  EXPECT_GE(with_tiny_depth, 5);
  EXPECT_GE(with_tiny_budget, 5);
  EXPECT_GE(multi_node, 32);
}

TEST(SpecJson, RoundTripsExactly) {
  for (std::uint64_t seed : {3ull, 11ull, 29ull}) {
    fuzz::Spec a = fuzz::generate(seed);
    std::string err;
    std::optional<fuzz::Spec> b = fuzz::Spec::from_json(a.to_json(), &err);
    ASSERT_TRUE(b.has_value()) << err;
    EXPECT_EQ(a, *b);
    EXPECT_EQ(a.to_json(), b->to_json());
  }
}

TEST(SpecJson, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(fuzz::Spec::from_json("not json", &err).has_value());
  EXPECT_FALSE(fuzz::Spec::from_json("{}", &err).has_value());
  // Valid JSON, wrong schema tag.
  EXPECT_FALSE(
      fuzz::Spec::from_json("{\"schema\": \"something-else\"}", &err)
          .has_value());
  EXPECT_FALSE(err.empty());
}

TEST(SpecValidate, EnforcesAcyclicWaitFor) {
  fuzz::Spec s = fuzz::generate(5);
  ASSERT_TRUE(s.validate());
  // A blocking action targeting the object itself (or any lower index)
  // could deadlock; validate must reject it.
  fuzz::Spec bad = s;
  bad.objects[0].script.push_back(
      fuzz::Action{fuzz::Op::kAsk, 0, 0});
  std::string err;
  EXPECT_FALSE(bad.validate(&err));
  EXPECT_NE(err.find("higher index"), std::string::npos);
}

TEST(SpecValidate, RejectsOutOfRangeReferences) {
  fuzz::Spec s = fuzz::generate(5);
  fuzz::Spec bad = s;
  bad.boot.push_back(
      fuzz::BootMsg{static_cast<std::int32_t>(s.objects.size()), 1});
  EXPECT_FALSE(bad.validate());
  bad = s;
  bad.objects[0].script.insert(bad.objects[0].script.begin(),
                               fuzz::Action{fuzz::Op::kForward, -1, 0});
  EXPECT_FALSE(bad.validate());
}

// Interpreter semantics pinned on a hand-built two-object program: one
// chain of fuel 2 bouncing 0 -> 1 -> 0, then ending.
TEST(Interp, TinyChainAccounting) {
  fuzz::Spec s;
  s.seed = 99;
  s.nodes = 2;
  s.objects.resize(2);
  s.objects[0].node = 0;
  s.objects[0].script = {fuzz::Action{fuzz::Op::kForward, 1, 0}};
  s.objects[1].node = 1;
  s.objects[1].script = {fuzz::Action{fuzz::Op::kForward, 0, 0}};
  s.boot = {fuzz::BootMsg{0, 2}};
  ASSERT_TRUE(s.validate());

  fuzz::RunResult rr = fuzz::run_spec(s, -1);
  // Executions: boot(fuel 2) at 0, forward(fuel 1) at 1, forward(fuel 0)
  // at 0 — the last has no fuel, ends the chain.
  EXPECT_EQ(rr.total.steps_run, 3u);
  EXPECT_EQ(rr.total.steps_sent, 2u);
  EXPECT_EQ(rr.total.dones, 1u);
  EXPECT_TRUE(rr.latch_done);
  EXPECT_EQ(rr.latch_received, 1);
  EXPECT_EQ(rr.created, 3u);  // 2 statics + latch
  EXPECT_EQ(rr.waiting_objects, 0u);
  EXPECT_EQ(rr.queued_msgs, 0u);
}

// A now-type ask and a selective reception, still hand-built: object 0
// asks 1, then select-waits on a token reflected by 1.
TEST(Interp, AskAndSelectAccounting) {
  fuzz::Spec s;
  s.seed = 100;
  s.nodes = 2;
  s.objects.resize(2);
  s.objects[0].node = 0;
  s.objects[0].script = {fuzz::Action{fuzz::Op::kAsk, 1, 0},
                         fuzz::Action{fuzz::Op::kSelectToken, 1, 0}};
  s.objects[1].node = 1;
  s.boot = {fuzz::BootMsg{0, 1}};
  ASSERT_TRUE(s.validate());

  fuzz::RunResult rr = fuzz::run_spec(s, -1);
  EXPECT_EQ(rr.total.asks_made, 1u);
  EXPECT_EQ(rr.total.asks_answered, 1u);
  EXPECT_EQ(rr.total.tokens_requested, 1u);
  EXPECT_EQ(rr.total.tokens_emitted, 1u);
  EXPECT_EQ(rr.total.tokens_got + rr.total.tokens_stray, 1u);
  EXPECT_TRUE(rr.latch_done);
}

TEST(Oracle, TraceFingerprintIsSensitive) {
  // Two different programs must not share a fingerprint — otherwise the
  // differential comparison is vacuous.
  fuzz::Spec a = fuzz::generate(1);
  fuzz::Spec b = fuzz::generate(2);
  fuzz::RunResult ra = fuzz::run_spec(a, -1);
  fuzz::RunResult rb = fuzz::run_spec(b, -1);
  EXPECT_NE(ra.trace_hash, rb.trace_hash);
  EXPECT_NE(ra.metrics_json, rb.metrics_json);
}

// The tier-1 fuzz gate (see file comment).
TEST(Corpus, DifferentialOracleHoldsForEverySeed) {
  for (std::uint64_t seed : kCorpus) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fuzz::Spec spec = fuzz::generate(seed);
    fuzz::OracleResult r = fuzz::check_spec(spec);
    if (!r.ok) {
      write_repro(spec, "repro_seed_" + std::to_string(seed), r.failure);
      // Best-effort minimization for the artifact; bounded so a failing CI
      // run stays fast.
      fuzz::Spec small = fuzz::shrink(
          spec, [](const fuzz::Spec& c) { return !fuzz::check_spec(c).ok; },
          nullptr, 200);
      write_repro(small, "repro_seed_" + std::to_string(seed) + "_min",
                  fuzz::check_spec(small).failure);
    }
    ASSERT_TRUE(r.ok) << r.failure << "\nspec:\n" << spec.to_json();
  }
}

// Seed-derived fault overlay for the fault-corpus gate: every corpus seed
// runs under a distinct deterministic plan, sweeping drop-only, dup/delay,
// blackout and combined regimes (seed % 5 == 0 gives an enabled-but-benign
// plan, which must behave exactly like a perfect network).
net::FaultConfig corpus_faults(std::uint64_t seed) {
  net::FaultConfig fc;
  fc.enabled = true;
  fc.seed = seed * 0x9e3779b9u + 1;
  fc.drop_ppm = static_cast<std::uint32_t>((seed % 5) * 60'000);         // 0-24%
  fc.dup_ppm = static_cast<std::uint32_t>(((seed / 5) % 4) * 40'000);    // 0-12%
  fc.delay_ppm = static_cast<std::uint32_t>(((seed / 3) % 4) * 80'000);  // 0-24%
  fc.blackout_ppm = seed % 7 == 0 ? 30'000u : 0u;
  fc.blackout_window = 512;
  return fc;
}

// The fault-corpus gate: under every seeded fault plan the program must
// still be bit-identical across drivers (fault decisions are simulated
// quantities, so serial and 1/2/8-thread runs share one fault schedule) and
// the delivery-hardening layer must achieve exactly-once dispatch — both
// enforced inside check_spec once spec.faults is set.
TEST(FaultCorpus, OracleHoldsUnderSeededFaultPlans) {
  std::uint64_t total_drops = 0, total_dups = 0, total_spurious = 0;
  for (std::uint64_t seed : kCorpus) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fuzz::Spec spec = fuzz::generate(seed);
    spec.faults = corpus_faults(seed);
    fuzz::OracleResult r = fuzz::check_spec(spec);
    if (!r.ok) {
      write_repro(spec, "repro_fault_seed_" + std::to_string(seed), r.failure);
      fuzz::Spec small = fuzz::shrink(
          spec, [](const fuzz::Spec& c) { return !fuzz::check_spec(c).ok; },
          nullptr, 200);
      write_repro(small, "repro_fault_seed_" + std::to_string(seed) + "_min",
                  fuzz::check_spec(small).failure);
    }
    ASSERT_TRUE(r.ok) << r.failure << "\nspec:\n" << spec.to_json();
    total_drops += r.serial.fault_drops;
    total_dups += r.serial.fault_duplicates;
    total_spurious += r.serial.fault_forced + r.serial.fault_dup_suppressed;
  }
  // The sweep must actually have exercised the machinery, not vacuously
  // passed on single-node programs with no remote traffic.
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_dups, 0u);
  EXPECT_GT(total_spurious, 0u);
}

// Seed-derived migration overlay for the policy-matrix gate: aggressive
// thresholds so the small fuzz programs still shed objects.
remote::MigrationConfig corpus_migration(std::uint64_t seed) {
  remote::MigrationConfig mc;
  mc.enabled = true;
  mc.interval = 16 + static_cast<std::uint32_t>(seed % 3) * 16;
  mc.hysteresis = 1;
  mc.max_batch = 2 + static_cast<std::uint32_t>(seed % 3);
  mc.min_queue = 2;
  mc.seed = seed * 0x2545f4914f6cdd1dull + 9;
  return mc;
}

// The {horizon} x {shard} policy-matrix gate: every corpus seed runs under
// one of the four combinations (seed % 4) composed with one of
// {plain, faults, migration, checkpoint} ((seed / 4) % 4) — four seeds per
// cell, so all 16 cells gate every PR. The serial baseline has no window or
// shard, so byte-identity across serial and 1/2/8 workers must hold for
// every combination; the checkpoint arm exercises snapshot save/restore
// under the balanced shard, including check_spec_checkpoint's restore at a
// different thread count (cross-driver restore).
TEST(PolicyMatrixCorpus, OracleHoldsForEveryCombo) {
  for (std::uint64_t seed : kCorpus) {
    const sim::HorizonKind h = (seed % 2) != 0 ? sim::HorizonKind::kDistance
                                               : sim::HorizonKind::kGlobal;
    const sim::ShardKind s = ((seed / 2) % 2) != 0 ? sim::ShardKind::kBalanced
                                                   : sim::ShardKind::kStatic;
    const int feature = static_cast<int>((seed / 4) % 4);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " horizon=" +
                 sim::to_string(h) + " shard=" + sim::to_string(s) +
                 " feature=" + std::to_string(feature));
    fuzz::Spec spec = fuzz::generate(seed);
    fuzz::OracleResult r;
    if (feature == 3) {
      fuzz::CheckpointOracleOptions opts;
      opts.horizon = h;
      opts.shard = sim::ShardKind::kBalanced;  // snapshot the active balancer
      r = fuzz::check_spec_checkpoint(spec, opts);
    } else {
      if (feature == 1) spec.faults = corpus_faults(seed);
      if (feature == 2) spec.migration = corpus_migration(seed);
      fuzz::OracleOptions opts;
      opts.horizon = h;
      opts.shard = s;
      r = fuzz::check_spec(spec, opts);
    }
    if (!r.ok) {
      write_repro(spec, "repro_policy_seed_" + std::to_string(seed),
                  r.failure);
    }
    ASSERT_TRUE(r.ok) << r.failure << "\nspec:\n" << spec.to_json();
  }
}

TEST(SpecJson, FaultsBlockRoundTripsAndStaysOptional) {
  std::string err;
  fuzz::Spec s = fuzz::generate(3);
  s.faults = corpus_faults(3);
  std::optional<fuzz::Spec> back = fuzz::Spec::from_json(s.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, s);

  // Fault-free specs serialize without the block (old binaries keep reading
  // new repro files) and old fault-free files keep loading here.
  fuzz::Spec plain = fuzz::generate(3);
  EXPECT_EQ(plain.to_json().find("faults"), std::string::npos);
  std::optional<fuzz::Spec> round = fuzz::Spec::from_json(plain.to_json(), &err);
  ASSERT_TRUE(round.has_value()) << err;
  EXPECT_FALSE(round->faults.has_value());
  EXPECT_EQ(*round, plain);

  // An invalid embedded plan is rejected by validate(), not run.
  s.faults->drop_ppm = net::kPpmOne;
  std::string verr;
  EXPECT_FALSE(s.validate(&verr));
  EXPECT_NE(verr.find("livelock"), std::string::npos) << verr;
}

TEST(Shrinker, ReducesSyntheticDivergenceToTenActionsOrFewer) {
  // Synthetic "bug": any program that both selects on a token and performs
  // a remote creation. Mimics a failure tied to one op interaction, which
  // is what real divergences look like; everything else should shrink away.
  auto pred = [](const fuzz::Spec& s) {
    bool has_select = false, has_create = false;
    for (const fuzz::ObjectSpec& os : s.objects) {
      for (const fuzz::Action& a : os.script) {
        has_select |= a.op == fuzz::Op::kSelectToken;
        has_create |= a.op == fuzz::Op::kCreate;
      }
    }
    return has_select && has_create && !s.boot.empty();
  };

  // Find a corpus seed exhibiting the "bug" with a reasonably big program.
  fuzz::Spec seed_spec;
  bool found = false;
  for (std::uint64_t seed : kCorpus) {
    fuzz::Spec s = fuzz::generate(seed);
    if (pred(s) && s.total_actions() > 20) {
      seed_spec = s;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no corpus seed matches the synthetic predicate";

  fuzz::ShrinkStats st;
  fuzz::Spec small = fuzz::shrink(seed_spec, pred, &st);
  EXPECT_TRUE(pred(small));
  EXPECT_TRUE(small.validate());
  EXPECT_LE(small.total_actions(), 10u)
      << "shrunk from " << seed_spec.total_actions() << " in " << st.rounds
      << " rounds / " << st.attempts << " attempts:\n"
      << small.to_json();
  EXPECT_LT(small.total_actions(), seed_spec.total_actions());
  // The minimized spec must still be runnable (the predicate here is
  // synthetic, not a crash).
  fuzz::RunResult rr = fuzz::run_spec(small, -1);
  EXPECT_TRUE(rr.latch_done);
}

TEST(Shrinker, FixpointIsStableUnderReshrink) {
  auto pred = [](const fuzz::Spec& s) { return !s.boot.empty(); };
  fuzz::Spec small = fuzz::shrink(fuzz::generate(17), pred);
  fuzz::ShrinkStats st;
  fuzz::Spec again = fuzz::shrink(small, pred, &st);
  EXPECT_EQ(small, again);
  EXPECT_EQ(st.accepted, 0u);
}

}  // namespace
