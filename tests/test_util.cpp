// Unit tests for the utility substrate: arena, slab allocator, intrusive
// FIFO, RNG, statistics, table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>
#include <set>
#include <vector>

#include "util/arena.hpp"
#include "util/bucket_queue.hpp"
#include "util/intrusive_list.hpp"
#include "util/rng.hpp"
#include "util/slab.hpp"
#include "util/spec_parser.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace abcl::util;
namespace util = abcl::util;

// ---------------------------------------------------------------- Arena ----

TEST(Arena, BasicAllocation) {
  Arena a;
  void* p1 = a.allocate(16);
  void* p2 = a.allocate(16);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(a.bytes_allocated(), 32u);
}

TEST(Arena, Alignment) {
  Arena a;
  a.allocate(1);  // misalign the cursor
  for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
    void* p = a.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, LargeAllocationSpansBlocks) {
  Arena a(4096);
  void* p = a.allocate(1 << 20);  // much bigger than the block size
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 1 << 20);  // must be fully usable
  EXPECT_GE(a.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, ManySmallAllocationsAllDistinct) {
  Arena a(4096);
  std::set<void*> seen;
  for (int i = 0; i < 10000; ++i) {
    void* p = a.allocate(24);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pointer";
  }
}

TEST(Arena, MakeConstructsObject) {
  Arena a;
  struct Pt {
    int x, y;
    Pt(int xx, int yy) : x(xx), y(yy) {}
  };
  Pt* p = a.make<Pt>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena a;
  void* p = a.allocate(0);
  EXPECT_NE(p, nullptr);
}

// ----------------------------------------------------------- Slab ----------

TEST(Slab, SizeClassRounding) {
  EXPECT_EQ(SlabAllocator::size_class(1), 0u);
  EXPECT_EQ(SlabAllocator::size_class(32), 0u);
  EXPECT_EQ(SlabAllocator::size_class(33), 1u);
  EXPECT_EQ(SlabAllocator::size_class(64), 1u);
  EXPECT_EQ(SlabAllocator::class_bytes(0), 32u);
  EXPECT_EQ(SlabAllocator::class_bytes(1), 64u);
  EXPECT_EQ(SlabAllocator::class_bytes(SlabAllocator::kNumClasses - 1),
            std::size_t{64} << 10);
}

TEST(Slab, RecyclesExactClass) {
  Arena a;
  SlabAllocator pool(a);
  void* p1 = pool.allocate(40);  // class 1 (64 B)
  pool.deallocate(p1, 40);
  void* p2 = pool.allocate(50);  // same class: must reuse p1
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(pool.stats().freelist_hits, 1u);
  void* p3 = pool.allocate(20);  // different class: must not reuse
  EXPECT_NE(p1, p3);
  EXPECT_EQ(pool.stats().freelist_hits, 1u);
}

TEST(Slab, LiveCountTracksAllocFree) {
  Arena a;
  SlabAllocator pool(a);
  std::vector<void*> ps;
  for (int i = 0; i < 100; ++i) ps.push_back(pool.allocate(64));
  EXPECT_EQ(pool.live_count(), 100u);
  for (void* p : ps) pool.deallocate(p, 64);
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(Slab, FreelistIsLifo) {
  Arena a;
  SlabAllocator pool(a);
  void* p1 = pool.allocate(32);
  void* p2 = pool.allocate(32);
  pool.deallocate(p1, 32);
  pool.deallocate(p2, 32);
  EXPECT_EQ(pool.allocate(32), p2);
  EXPECT_EQ(pool.allocate(32), p1);
}

TEST(Slab, OneRefillServesManySmallAllocations) {
  Arena a;
  SlabAllocator pool(a);
  const std::size_t slots = SlabAllocator::kSlabBytes / 32;
  std::set<void*> seen;
  for (std::size_t i = 0; i < slots; ++i) {
    EXPECT_TRUE(seen.insert(pool.allocate(32)).second);
  }
  EXPECT_EQ(pool.stats().slab_refills, 1u);
  EXPECT_EQ(pool.stats().slots_carved, slots);
  EXPECT_EQ(pool.stats().freelist_hits, 0u);
}

TEST(Slab, RefillAtChunkBoundary) {
  // Exhausting a slab exactly at its last slot must carve a second slab on
  // the next allocation — and only then.
  Arena a;
  SlabAllocator pool(a);
  const std::size_t slots = SlabAllocator::kSlabBytes / 32;
  std::set<void*> seen;
  for (std::size_t i = 0; i < slots; ++i) seen.insert(pool.allocate(24));
  ASSERT_EQ(pool.stats().slab_refills, 1u);
  void* over = pool.allocate(24);  // slot slots+1: boundary crossing
  EXPECT_EQ(pool.stats().slab_refills, 2u);
  EXPECT_TRUE(seen.insert(over).second) << "boundary slot not distinct";
  EXPECT_EQ(pool.stats().slots_carved, 2 * slots);
}

TEST(Slab, LargestClassRefillsOneSlotAtATime) {
  // 64 KiB class is bigger than a slab: each refill is exactly one slot.
  Arena a;
  SlabAllocator pool(a);
  void* p1 = pool.allocate(64u << 10);
  void* p2 = pool.allocate(64u << 10);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(pool.stats().slab_refills, 2u);
  EXPECT_EQ(pool.stats().slots_carved, 2u);
}

TEST(Slab, EveryClassIsNaturallyAligned) {
  Arena a;
  a.allocate(1);  // misalign the arena cursor first
  SlabAllocator pool(a);
  for (std::size_t cls = 0; cls < SlabAllocator::kNumClasses; ++cls) {
    const std::size_t bytes = SlabAllocator::class_bytes(cls);
    const std::size_t want = SlabAllocator::class_align(cls);
    void* fresh = pool.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(fresh) % want, 0u)
        << "fresh slot, class " << cls;
    pool.deallocate(fresh, bytes);
    void* reused = pool.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(reused) % want, 0u)
        << "recycled slot, class " << cls;
    pool.deallocate(reused, bytes);
  }
}

TEST(Slab, StatsMergeCoversEveryField) {
  Arena a;
  SlabAllocator pool(a);
  void* p = pool.allocate(32);
  pool.deallocate(p, 32);
  pool.allocate(32);  // freelist hit
  SlabAllocator::Stats total;
  total.merge(pool.stats());
  total.merge(pool.stats());
  EXPECT_EQ(total.allocs, 2 * pool.stats().allocs);
  EXPECT_EQ(total.frees, 2 * pool.stats().frees);
  EXPECT_EQ(total.freelist_hits, 2 * pool.stats().freelist_hits);
  EXPECT_EQ(total.slab_refills, 2 * pool.stats().slab_refills);
  EXPECT_EQ(total.slots_carved, 2 * pool.stats().slots_carved);
  EXPECT_EQ(total.backing_bytes, 2 * pool.stats().backing_bytes);
}

TEST(SlabUnpooled, HeapModeAllocatesAndTracksCounters) {
  Arena a;
  SlabAllocator pool(a, /*pooled=*/false);
  EXPECT_FALSE(pool.pooled());
  std::vector<void*> ps;
  for (int i = 0; i < 64; ++i) {
    void* p = pool.allocate(48);
    std::memset(p, 0xCD, 48);  // must be fully usable
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  SlabAllocator::kMaxAlignment,
              0u);
    ps.push_back(p);
  }
  EXPECT_EQ(pool.live_count(), 64u);
  // No slab machinery in heap mode; the arena is untouched.
  EXPECT_EQ(pool.stats().slab_refills, 0u);
  EXPECT_EQ(pool.stats().freelist_hits, 0u);
  EXPECT_EQ(a.bytes_allocated(), 0u);
  for (void* p : ps) pool.deallocate(p, 48);
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(SlabUnpooled, TeardownFreesOutstandingBlocks) {
  // Destroying the allocator with live blocks must not leak (ASan-checked)
  // — worlds are routinely dropped while objects are still live.
  Arena a;
  SlabAllocator pool(a, /*pooled=*/false);
  for (int i = 0; i < 16; ++i) pool.allocate(128);
  void* mid = pool.allocate(128);
  pool.deallocate(mid, 128);  // unlink from the middle of the header list
  for (int i = 0; i < 16; ++i) pool.allocate(1u << 12);
}

// ------------------------------------------------------ IntrusiveFifo ------

struct Node {
  int v = 0;
  Node* next = nullptr;
};
using Fifo = IntrusiveFifo<Node, &Node::next>;

TEST(IntrusiveFifo, FifoOrder) {
  Fifo q;
  Node n[5];
  for (int i = 0; i < 5; ++i) {
    n[i].v = i;
    q.push_back(&n[i]);
  }
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    Node* p = q.pop_front();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->v, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop_front(), nullptr);
}

TEST(IntrusiveFifo, RemoveFirstIfHead) {
  Fifo q;
  Node n[3];
  for (int i = 0; i < 3; ++i) {
    n[i].v = i;
    q.push_back(&n[i]);
  }
  Node* r = q.remove_first_if([](const Node& x) { return x.v == 0; });
  EXPECT_EQ(r, &n[0]);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_front(), &n[1]);
}

TEST(IntrusiveFifo, RemoveFirstIfMiddleAndTail) {
  Fifo q;
  Node n[4];
  for (int i = 0; i < 4; ++i) {
    n[i].v = i;
    q.push_back(&n[i]);
  }
  EXPECT_EQ(q.remove_first_if([](const Node& x) { return x.v == 2; }), &n[2]);
  EXPECT_EQ(q.remove_first_if([](const Node& x) { return x.v == 3; }), &n[3]);
  // Tail must be fixed up: pushing appends after n[1].
  Node extra;
  extra.v = 9;
  q.push_back(&extra);
  EXPECT_EQ(q.pop_front(), &n[0]);
  EXPECT_EQ(q.pop_front(), &n[1]);
  EXPECT_EQ(q.pop_front(), &extra);
}

TEST(IntrusiveFifo, RemoveFirstIfNoMatch) {
  Fifo q;
  Node a;
  q.push_back(&a);
  EXPECT_EQ(q.remove_first_if([](const Node&) { return false; }), nullptr);
  EXPECT_EQ(q.size(), 1u);
}

TEST(IntrusiveFifo, ReuseAfterPop) {
  Fifo q;
  Node a;
  q.push_back(&a);
  q.pop_front();
  q.push_back(&a);  // node must be re-linkable
  EXPECT_EQ(q.pop_front(), &a);
}

TEST(IntrusiveFifo, RemoveOnlyElementResetsBothEnds) {
  Fifo q;
  Node a;
  a.v = 1;
  q.push_back(&a);
  EXPECT_EQ(q.remove_first_if([](const Node& x) { return x.v == 1; }), &a);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.front(), nullptr);
  // Head AND tail must both be reset, or this push corrupts the list.
  Node b;
  b.v = 2;
  q.push_back(&b);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop_front(), &b);
  EXPECT_EQ(q.pop_front(), nullptr);
}

TEST(IntrusiveFifo, SpliceByDrainingPreservesOrderAcrossQueues) {
  // The runtime's "splice" idiom: selective reception drains one object's
  // queue into the scheduler queue by pop/push. Relative order must be
  // preserved and the source queue left reusable.
  Fifo src, dst;
  Node n[6];
  for (int i = 0; i < 6; ++i) {
    n[i].v = i;
    (i < 4 ? src : dst).push_back(&n[i]);
  }
  while (Node* p = src.pop_front()) dst.push_back(p);
  EXPECT_TRUE(src.empty());
  ASSERT_EQ(dst.size(), 6u);
  int expect[] = {4, 5, 0, 1, 2, 3};
  for (int e : expect) EXPECT_EQ(dst.pop_front()->v, e);
  src.push_back(&n[0]);  // drained source must still be linkable
  EXPECT_EQ(src.size(), 1u);
}

TEST(IntrusiveFifo, EraseDuringIterationViaRepeatedRemoveFirstIf) {
  // Erasing while scanning: the supported idiom is remove_first_if per
  // match (the pattern scan of Section 2.4's selective reception). Remove
  // every even element from a 6-node queue, then check the survivors'
  // links — including the tail — are intact.
  Fifo q;
  Node n[6];
  for (int i = 0; i < 6; ++i) {
    n[i].v = i;
    q.push_back(&n[i]);
  }
  auto even = [](const Node& x) { return x.v % 2 == 0; };
  EXPECT_EQ(q.remove_first_if(even), &n[0]);  // head
  EXPECT_EQ(q.remove_first_if(even), &n[2]);  // interior
  EXPECT_EQ(q.remove_first_if(even), &n[4]);  // interior adjacent to tail
  EXPECT_EQ(q.remove_first_if(even), nullptr);
  EXPECT_EQ(q.size(), 3u);
  int seen[3] = {0, 0, 0};
  int i = 0;
  q.for_each([&](const Node& x) { seen[i++] = x.v; });
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 3);
  EXPECT_EQ(seen[2], 5);
  // n[5] is still the tail: appending must land after it.
  Node extra;
  extra.v = 7;
  q.push_back(&extra);
  EXPECT_EQ(q.pop_front(), &n[1]);
  EXPECT_EQ(q.pop_front(), &n[3]);
  EXPECT_EQ(q.pop_front(), &n[5]);
  EXPECT_EQ(q.pop_front(), &extra);
  EXPECT_TRUE(q.empty());
}

TEST(IntrusiveFifo, RemoveTailThenPushRepairsTailPointer) {
  Fifo q;
  Node a, b;
  a.v = 1;
  b.v = 2;
  q.push_back(&a);
  q.push_back(&b);
  EXPECT_EQ(q.remove_first_if([](const Node& x) { return x.v == 2; }), &b);
  // Tail now points at a; push must chain after a, not after stale b.
  Node c;
  c.v = 3;
  q.push_back(&c);
  EXPECT_EQ(q.pop_front(), &a);
  EXPECT_EQ(q.pop_front(), &c);
  EXPECT_TRUE(q.empty());
}

// ----------------------------------------------------------------- RNG -----

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 r1(42), r2(42), r3(43);
  bool all_same = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    auto a = r1(), b = r2(), c = r3();
    all_same = all_same && (a == b);
    any_diff = any_diff || (a != c);
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256 r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// --------------------------------------------------------------- Stats -----

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(Log2Histogram, BucketsAndPercentile) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1);    // bucket for value 1
  for (int i = 0; i < 100; ++i) h.add(1000);  // larger bucket
  EXPECT_EQ(h.count(), 200u);
  EXPECT_LE(h.percentile(0.25), 1u);
  EXPECT_GE(h.percentile(0.9), 512u);
}

// Regression: percentile() used to cast p * count straight to uint64_t, so
// a negative p (or NaN) was undefined behaviour and p > 1 silently
// saturated. Out-of-range p now clamps to the distribution's endpoints.
TEST(Log2Histogram, PercentileClampsOutOfRangeP) {
  Log2Histogram h;
  h.add(1);
  h.add(1000);
  std::uint64_t lo = h.percentile(0.0);
  std::uint64_t hi = h.percentile(1.0);
  EXPECT_EQ(h.percentile(-0.5), lo);
  EXPECT_EQ(h.percentile(2.0), hi);
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), lo);
  EXPECT_GE(hi, 512u);
}

TEST(Log2Histogram, PercentileOnEmptyIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(-1.0), 0u);
}

// Values >= 2^63 are absorbed into the top bucket rather than indexing past
// the array. The percentile estimate for that bucket is its nominal upper
// bound 2^63 - 1, which understates absorbed values — documented behaviour.
TEST(Log2Histogram, TopBucketAbsorbsHugeValues) {
  Log2Histogram h;
  h.add(~0ull);
  h.add(1ull << 63);
  EXPECT_EQ(h.bucket(Log2Histogram::kBuckets - 1), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile(1.0), (1ull << 63) - 1);
}

TEST(Log2Histogram, MergeAddsCounts) {
  Log2Histogram a, b;
  a.add(5);
  b.add(5);
  b.add(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
}

// --------------------------------------------------------------- Table -----

TEST(Table, FormatsAlignedColumns) {
  Table t({"op", "us"});
  t.add_row({"send", "2.30"});
  t.add_row({"create", "2.10"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| op "), std::string::npos);
  EXPECT_NE(s.find("2.30"), std::string::npos);
  // Every line has the same width.
  std::size_t w = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    std::size_t e = s.find('\n', pos);
    EXPECT_EQ(e - pos, w);
    pos = e + 1;
  }
}

TEST(Table, NumGroupsThousands) {
  EXPECT_EQ(Table::num(std::uint64_t{9349765}), "9,349,765");
  EXPECT_EQ(Table::num(std::uint64_t{92}), "92");
  EXPECT_EQ(Table::num(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(Table::num(2.345, 2), "2.35");
}

// --------------------------------------------------------- BucketQueue ----

constexpr std::uint64_t kInf = ~std::uint64_t{0};

struct BqEntry {
  std::uint64_t key;
  std::int32_t id;
  bool operator==(const BqEntry&) const = default;
};
struct BqKey {
  std::uint64_t operator()(const BqEntry& e) const { return e.key; }
};
struct BqLess {
  bool operator()(const BqEntry& a, const BqEntry& b) const {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  }
};
using Bq = BucketQueue<BqEntry, BqKey, BqLess>;

// Reference min-queue: std::priority_queue pops the max, so invert.
struct BqGreater {
  bool operator()(const BqEntry& a, const BqEntry& b) const {
    return BqLess{}(b, a);
  }
};
using RefQueue =
    std::priority_queue<BqEntry, std::vector<BqEntry>, BqGreater>;

TEST(BucketQueue, PopsInKeyThenIdOrder) {
  for (QueueKind mode : {QueueKind::kBucket, QueueKind::kHeap}) {
    Bq q(mode);
    q.push({30, 1});
    q.push({10, 2});
    q.push({20, 3});
    q.push({10, 1});
    ASSERT_EQ(q.size(), 4u);
    EXPECT_EQ(q.top(), (BqEntry{10, 1}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{10, 2}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{20, 3}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{30, 1}));
    q.pop();
    EXPECT_TRUE(q.empty());
  }
}

TEST(BucketQueue, TieBreakIsDeterministicAcrossInsertionOrders) {
  // All-equal keys must drain in id order regardless of push order or mode.
  std::vector<std::int32_t> order = {7, 2, 9, 0, 5, 3, 8, 1, 6, 4};
  for (QueueKind mode : {QueueKind::kBucket, QueueKind::kHeap}) {
    Bq q(mode);
    for (std::int32_t id : order) q.push({42, id});
    for (std::int32_t want = 0; want < 10; ++want) {
      EXPECT_EQ(q.top(), (BqEntry{42, want}));
      q.pop();
    }
  }
}

// Interleaved random pushes/pops against std::priority_queue, across a key
// distribution that exercises monotone drift, far-future jumps (overflow
// tier + rebase) and late pushes below the active bucket.
TEST(BucketQueue, RandomizedEquivalenceVsPriorityQueue) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Xoshiro256 rng(seed);
    Bq q(QueueKind::kBucket);
    RefQueue ref;
    std::uint64_t front = 0;  // drifting time front
    std::int32_t next_id = 0;
    for (int step = 0; step < 20000; ++step) {
      const bool can_pop = !ref.empty();
      if (!can_pop || rng.below(100) < 55) {
        std::uint64_t k;
        switch (rng.below(10)) {
          case 0: k = front + rng.below(1u << 20);  break;  // far jump
          case 1: k = front - std::min(front, rng.below(16)); break;  // late
          default: k = front + rng.below(64); break;  // monotone-ish
        }
        BqEntry e{k, next_id++};
        q.push(e);
        ref.push(e);
      } else {
        ASSERT_EQ(q.top(), ref.top()) << "seed " << seed << " step " << step;
        if (q.top().key > front) front = q.top().key;
        q.pop();
        ref.pop();
      }
      ASSERT_EQ(q.size(), ref.size());
    }
    while (!ref.empty()) {
      ASSERT_EQ(q.top(), ref.top());
      q.pop();
      ref.pop();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(BucketQueue, BucketAndHeapModesPopIdentically) {
  Xoshiro256 rng(99);
  Bq a(QueueKind::kBucket);
  Bq b(QueueKind::kHeap);
  std::uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.below(32);
    BqEntry e{rng.below(50) == 0 ? t + (1u << 24) : t,
              static_cast<std::int32_t>(i)};
    a.push(e);
    b.push(e);
    if (rng.below(3) == 0) {
      ASSERT_EQ(a.top(), b.top()) << "i=" << i;
      a.pop();
      b.pop();
    }
  }
  while (!a.empty()) {
    ASSERT_EQ(a.top(), b.top());
    a.pop();
    b.pop();
  }
  EXPECT_TRUE(b.empty());
}

TEST(BucketQueue, LatePushBelowActiveBucketStaysExact) {
  Bq q(QueueKind::kBucket);
  for (std::uint64_t k = 100; k < 150; ++k) q.push({k, 0});
  // Drain partway so the active bucket has a consumed prefix.
  for (int i = 0; i < 20; ++i) q.pop();
  EXPECT_EQ(q.top().key, 120u);
  // A key below everything already popped must still surface first, and
  // must not resurrect consumed entries.
  q.push({5, 0});
  EXPECT_EQ(q.top().key, 5u);
  q.pop();
  std::uint64_t prev = 0;
  while (!q.empty()) {
    EXPECT_GT(q.top().key, prev);
    prev = q.top().key;
    q.pop();
  }
  EXPECT_EQ(prev, 149u);
}

TEST(BucketQueue, InfinityKeysAndFullSpanRebase) {
  // kInstrInf-magnitude keys plus key 0 force the widest possible rebase
  // (span ~2^64); all arithmetic must stay overflow-safe.
  for (QueueKind mode : {QueueKind::kBucket, QueueKind::kHeap}) {
    Bq q(mode);
    q.push({kInf, 1});
    q.push({0, 2});
    q.push({kInf - 1, 3});
    q.push({kInf, 0});
    q.push({1u << 31, 4});
    EXPECT_EQ(q.top(), (BqEntry{0, 2}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{std::uint64_t{1} << 31, 4}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{kInf - 1, 3}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{kInf, 0}));
    q.pop();
    EXPECT_EQ(q.top(), (BqEntry{kInf, 1}));
    q.pop();
    EXPECT_TRUE(q.empty());
  }
}

TEST(BucketQueue, ClearAndReuse) {
  Bq q(QueueKind::kBucket);
  for (std::uint64_t k = 0; k < 100; ++k) q.push({k * 1000, 0});
  q.pop();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push({7, 1});
  EXPECT_EQ(q.top(), (BqEntry{7, 1}));
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, SetModeRequiresEmpty) {
  Bq q(QueueKind::kBucket);
  q.set_mode(QueueKind::kHeap);  // empty: allowed
  q.push({1, 0});
  EXPECT_EQ(q.mode(), QueueKind::kHeap);
  q.pop();
  q.set_mode(QueueKind::kBucket);
  EXPECT_EQ(q.mode(), QueueKind::kBucket);
}


// ---------------------------------------------------------------------------
// SpecParser: the shared strict key=value grammar behind every spec knob
// (ABCLSIM_FAULTS / _MIGRATION / _CHECKPOINT); see util/spec_parser.hpp.
// ---------------------------------------------------------------------------

TEST(SpecParser, TrimStripsSurroundingBlanksOnly) {
  using util::SpecParser;
  EXPECT_EQ(SpecParser::trim("  a b  "), "a b");
  EXPECT_EQ(SpecParser::trim("\ta\t"), "a");
  EXPECT_EQ(SpecParser::trim(""), "");
  EXPECT_EQ(SpecParser::trim("   "), "");
}

TEST(SpecParser, ParseU64IsStrictAndOverflowChecked) {
  using util::SpecParser;
  EXPECT_EQ(SpecParser::parse_u64("0"), 0u);
  EXPECT_EQ(SpecParser::parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(SpecParser::parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(SpecParser::parse_u64("").has_value());
  EXPECT_FALSE(SpecParser::parse_u64("-1").has_value());
  EXPECT_FALSE(SpecParser::parse_u64("1x").has_value());
  EXPECT_FALSE(SpecParser::parse_u64("0x10").has_value());
}

TEST(SpecParser, ParseProbPpmIsStrict) {
  using util::SpecParser;
  EXPECT_EQ(SpecParser::parse_prob_ppm("0"), 0u);
  EXPECT_EQ(SpecParser::parse_prob_ppm("1"), 1'000'000u);
  EXPECT_EQ(SpecParser::parse_prob_ppm("0.05"), 50'000u);
  EXPECT_EQ(SpecParser::parse_prob_ppm(".25"), 250'000u);
  EXPECT_EQ(SpecParser::parse_prob_ppm("0.000001"), 1u);
  EXPECT_FALSE(SpecParser::parse_prob_ppm("1.5").has_value());
  EXPECT_FALSE(SpecParser::parse_prob_ppm("0.0000001").has_value());  // 7 dp
  EXPECT_FALSE(SpecParser::parse_prob_ppm("5%").has_value());
  EXPECT_FALSE(SpecParser::parse_prob_ppm("").has_value());
}

TEST(SpecParser, RunParsesTypedFieldsAndBlanks) {
  std::uint32_t ppm = 0, small = 0;
  std::uint64_t big = 0;
  std::string name;
  util::SpecParser p;
  p.prob_ppm("drop", &ppm).u64("at", &big).u32("n", &small).str("path", &name);
  std::string why;
  ASSERT_TRUE(p.run(" drop = 0.5 , at = 99 , n = 7 , path = /tmp/x ", &why))
      << why;
  EXPECT_EQ(ppm, 500'000u);
  EXPECT_EQ(big, 99u);
  EXPECT_EQ(small, 7u);
  EXPECT_EQ(name, "/tmp/x");
}

TEST(SpecParser, RunRejectsEveryDeviationWithAReason) {
  auto fails = [](const std::string& raw) {
    std::uint64_t at = 0;
    util::SpecParser p;
    p.u64("at", &at);
    std::string why;
    bool ok = p.run(raw, &why);
    EXPECT_TRUE(ok || !why.empty()) << raw;
    return !ok;
  };
  EXPECT_TRUE(fails("bogus=1"));     // unknown key
  EXPECT_TRUE(fails("at=1,at=2"));   // repeated key
  EXPECT_TRUE(fails("at=zap"));      // malformed number
  EXPECT_TRUE(fails("at"));          // missing '='
  EXPECT_TRUE(fails("at="));         // empty value
  EXPECT_TRUE(fails("at=1,"));       // empty trailing entry
  EXPECT_FALSE(fails("at=1"));
}

TEST(SpecParser, SpecOffAndDiagnosticShapes) {
  EXPECT_TRUE(util::spec_off(nullptr));
  EXPECT_TRUE(util::spec_off(""));
  EXPECT_TRUE(util::spec_off("off"));
  EXPECT_FALSE(util::spec_off("on"));
  EXPECT_FALSE(util::spec_off("at=1"));

  const std::string e =
      util::spec_error("fault spec", "drop=lots", "bad value", "expected X");
  EXPECT_NE(e.find("fault spec"), std::string::npos);
  EXPECT_NE(e.find("drop=lots"), std::string::npos);
  EXPECT_NE(e.find("bad value"), std::string::npos);
  EXPECT_NE(e.find("expected X"), std::string::npos);

  const std::string c = util::choice_error("ABCLSIM_QUEUE", "stack",
                                           "bucket or heap", "bucket");
  EXPECT_NE(c.find("ABCLSIM_QUEUE"), std::string::npos);
  EXPECT_NE(c.find("stack"), std::string::npos);
}

TEST(SpecParser, ParseChoiceMatchesExactWordsOnly) {
  EXPECT_EQ(util::parse_choice("bucket", {"bucket", "heap"}), 0u);
  EXPECT_EQ(util::parse_choice("heap", {"bucket", "heap"}), 1u);
  EXPECT_FALSE(util::parse_choice("buck", {"bucket", "heap"}).has_value());
  EXPECT_FALSE(util::parse_choice("", {"bucket", "heap"}).has_value());
  EXPECT_FALSE(util::parse_choice(nullptr, {"bucket", "heap"}).has_value());
}

}  // namespace
