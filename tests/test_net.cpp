// Tests for the network substrate: topology metrics, FIFO delivery,
// latency pricing, and loss-freedom under random traffic (property tests).
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace {

using namespace abcl;
using net::Packet;
using net::Topology;
using net::TopologyKind;

// ------------------------------------------------------------ Topology -----

TEST(Topology, FactorizationIsNearSquare) {
  Topology t(TopologyKind::kTorus2D, 512);
  EXPECT_EQ(t.dim_x() * t.dim_y(), 512);
  EXPECT_EQ(t.dim_x(), 32);
  EXPECT_EQ(t.dim_y(), 16);
  Topology s(TopologyKind::kTorus2D, 64);
  EXPECT_EQ(s.dim_x(), 8);
  EXPECT_EQ(s.dim_y(), 8);
}

TEST(Topology, HopsZeroIffSame) {
  for (auto kind : {TopologyKind::kTorus2D, TopologyKind::kMesh2D,
                    TopologyKind::kFullyConnected}) {
    Topology t(kind, 16);
    for (int i = 0; i < 16; ++i) {
      for (int j = 0; j < 16; ++j) {
        EXPECT_EQ(t.hops(i, j) == 0, i == j);
      }
    }
  }
}

TEST(Topology, TorusWrapAroundShortens) {
  Topology t(TopologyKind::kTorus2D, 16);  // 4x4
  // Nodes 0 and 3 are 3 apart on a mesh row but 1 apart on the torus.
  EXPECT_EQ(t.hops(0, 3), 1);
  Topology m(TopologyKind::kMesh2D, 16);
  EXPECT_EQ(m.hops(0, 3), 3);
}

TEST(Topology, FullyConnectedAlwaysOneHop) {
  Topology t(TopologyKind::kFullyConnected, 10);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i != j) {
        EXPECT_EQ(t.hops(i, j), 1);
      }
    }
  }
}

class TopologyProps
    : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(TopologyProps, HopsAreSymmetricAndBounded) {
  auto [kind, n] = GetParam();
  Topology t(kind, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(t.hops(i, j), t.hops(j, i));
      EXPECT_LE(t.hops(i, j), t.diameter());
      EXPECT_GE(t.hops(i, j), 0);
    }
  }
}

TEST_P(TopologyProps, TriangleInequality) {
  auto [kind, n] = GetParam();
  Topology t(kind, n);
  util::Xoshiro256 rng(5);
  for (int it = 0; it < 300; ++it) {
    int a = static_cast<int>(rng.below(n));
    int b = static_cast<int>(rng.below(n));
    int c = static_cast<int>(rng.below(n));
    EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
  }
}

TEST_P(TopologyProps, NeighborsAreMutualAndOneHop) {
  auto [kind, n] = GetParam();
  Topology t(kind, n);
  for (int i = 0; i < n; ++i) {
    for (auto nb : t.neighbors(i)) {
      EXPECT_NE(nb, i);
      EXPECT_EQ(t.hops(i, nb), 1);
      if (kind != TopologyKind::kFullyConnected) {
        // mutual (fully-connected caps the list, so skip there)
        auto back = t.neighbors(nb);
        EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyProps,
    ::testing::Combine(::testing::Values(TopologyKind::kTorus2D,
                                         TopologyKind::kMesh2D,
                                         TopologyKind::kFullyConnected,
                                         TopologyKind::kRing),
                       ::testing::Values(1, 2, 6, 16, 31, 64)));

INSTANTIATE_TEST_SUITE_P(
    HypercubeShapes, TopologyProps,
    ::testing::Combine(::testing::Values(TopologyKind::kHypercube),
                       ::testing::Values(1, 2, 16, 64)));

TEST(Topology, RingWrapsBothWays) {
  Topology r(TopologyKind::kRing, 10);
  EXPECT_EQ(r.hops(0, 9), 1);
  EXPECT_EQ(r.hops(0, 5), 5);
  EXPECT_EQ(r.hops(2, 8), 4);
  EXPECT_EQ(r.diameter(), 5);
  auto nb = r.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1);
  EXPECT_EQ(nb[1], 9);
}

TEST(Topology, HypercubeHopsAreHammingDistance) {
  Topology h(TopologyKind::kHypercube, 16);
  EXPECT_EQ(h.hops(0b0000, 0b1111), 4);
  EXPECT_EQ(h.hops(0b0101, 0b0110), 2);
  EXPECT_EQ(h.diameter(), 4);
  EXPECT_EQ(h.neighbors(0).size(), 4u);
}

TEST(TopologyDeath, HypercubeRequiresPowerOfTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ Topology h(TopologyKind::kHypercube, 12); }, "power-of-two");
}

// ------------------------------------------------------------- Network -----

net::Network make_net(int nodes, const sim::CostModel* cm) {
  return net::Network(Topology(TopologyKind::kTorus2D, nodes), cm);
}

Packet make_pkt(int src, int dst, sim::Instr t, net::Word tag = 0) {
  Packet p;
  p.handler = 0;
  p.src = src;
  p.dst = dst;
  p.send_time = t;
  p.push(tag);
  return p;
}

TEST(Network, LatencyPricing) {
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(16, &cm);
  net.send(make_pkt(0, 1, 100), net::AmCategory::kObjectMessage);
  Packet out;
  ASSERT_TRUE(net.poll(1, sim::kInstrInf, out));
  sim::Instr expected = 100 + cm.wire_latency + 1 * cm.per_hop +
                        static_cast<sim::Instr>(out.wire_words()) * cm.per_word;
  EXPECT_EQ(out.arrive_time, expected);
}

TEST(Network, PollRespectsArrivalTime) {
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(4, &cm);
  net.send(make_pkt(0, 1, 0), net::AmCategory::kObjectMessage);
  Packet out;
  EXPECT_FALSE(net.poll(1, 0, out));  // not arrived yet
  EXPECT_EQ(net.next_arrival(1), cm.wire_latency + cm.per_hop + 5 * cm.per_word);
  EXPECT_TRUE(net.poll(1, net.next_arrival(1), out));
  EXPECT_TRUE(net.idle());
}

TEST(Network, ChannelFifoEvenWithReorderedSendTimes) {
  // Two sends on the same channel where the second "catches up": arrival
  // times must stay nondecreasing in send order.
  sim::CostModel cm = sim::CostModel::zero();
  cm.wire_latency = 100;
  auto net = make_net(4, &cm);
  Packet a = make_pkt(0, 1, 0, 1);
  a.push(0);  // bigger payload -> would arrive later under per-word pricing
  net.send(std::move(a), net::AmCategory::kObjectMessage);
  net.send(make_pkt(0, 1, 1, 2), net::AmCategory::kObjectMessage);
  Packet out;
  ASSERT_TRUE(net.poll(1, sim::kInstrInf, out));
  EXPECT_EQ(out.at(0), 1u);
  ASSERT_TRUE(net.poll(1, sim::kInstrInf, out));
  EXPECT_EQ(out.at(0), 2u);
}

TEST(Network, MinPacketLatencyCachedAndClampedToOne) {
  // ap1000: the floor is wire_latency plus the 4 mandatory header words;
  // nonzero, so clamped and raw agree.
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(16, &cm);
  EXPECT_EQ(net.min_packet_latency_raw(), cm.wire_latency + 4 * cm.per_word);
  EXPECT_EQ(net.min_packet_latency(), net.min_packet_latency_raw());

  // Free wire + free words (per-hop-only pricing, which still satisfies the
  // wire_latency + per_hop > 0 invariant): the effective lookahead clamps up
  // to 1 — a zero-width window could never advance — while the raw floor
  // stays 0, because the distance horizon adds hops * per_hop on top and
  // must not double-count the clamp the commit path applies.
  sim::CostModel free_wire = sim::CostModel::zero();
  free_wire.wire_latency = 0;
  free_wire.per_word = 0;
  free_wire.per_hop = 1;
  auto net0 = make_net(16, &free_wire);
  EXPECT_EQ(net0.min_packet_latency_raw(), 0);
  EXPECT_EQ(net0.min_packet_latency(), 1);
}

TEST(Network, InFlightCountsAndStats) {
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(4, &cm);
  for (int i = 0; i < 10; ++i) {
    net.send(make_pkt(0, 1, 0), net::AmCategory::kObjectMessage);
  }
  net.send(make_pkt(0, 2, 0), net::AmCategory::kCreateRequest);
  EXPECT_EQ(net.in_flight(), 11u);
  EXPECT_EQ(net.stats().packets, 11u);
  EXPECT_EQ(net.stats().per_category[0], 10u);
  EXPECT_EQ(net.stats().per_category[1], 1u);
  Packet out;
  while (net.poll(1, sim::kInstrInf, out)) {
  }
  EXPECT_EQ(net.in_flight(), 1u);
}

TEST(Network, OnDeliverableCallbackFires) {
  sim::CostModel cm = sim::CostModel::ap1000();
  std::vector<int> notified;
  net::Network net(Topology(TopologyKind::kTorus2D, 4), &cm,
                   [&](net::NodeId d) { notified.push_back(d); });
  net.send(make_pkt(0, 3, 0), net::AmCategory::kObjectMessage);
  net.send(make_pkt(1, 2, 0), net::AmCategory::kObjectMessage);
  ASSERT_EQ(notified.size(), 2u);
  EXPECT_EQ(notified[0], 3);
  EXPECT_EQ(notified[1], 2);
}

// Property: random traffic — every packet delivered exactly once, per
// channel in FIFO order, never before its send time + minimum latency.
class NetworkTraffic : public ::testing::TestWithParam<int> {};

TEST_P(NetworkTraffic, NoLossNoDupFifo) {
  const int nodes = GetParam();
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(nodes, &cm);
  util::Xoshiro256 rng(1234 + nodes);

  const int kPackets = 5000;
  std::map<std::pair<int, int>, std::uint64_t> next_tag_to_send;
  std::vector<std::uint64_t> sent_tag(kPackets);
  for (int i = 0; i < kPackets; ++i) {
    int src = static_cast<int>(rng.below(nodes));
    int dst = static_cast<int>(rng.below(nodes));
    auto& tag = next_tag_to_send[{src, dst}];
    Packet p = make_pkt(src, dst, rng.below(1000), tag++);
    net.send(std::move(p), net::AmCategory::kObjectMessage);
  }

  std::map<std::pair<int, int>, std::uint64_t> next_tag_expected;
  int received = 0;
  for (int d = 0; d < nodes; ++d) {
    Packet out;
    sim::Instr last_arrive = 0;
    while (net.poll(d, sim::kInstrInf, out)) {
      ++received;
      // Per-destination delivery in arrival order.
      EXPECT_GE(out.arrive_time, last_arrive);
      last_arrive = out.arrive_time;
      // Per-channel FIFO by tag.
      auto& expect_tag = next_tag_expected[{out.src, d}];
      EXPECT_EQ(out.at(0), expect_tag) << "src=" << out.src << " dst=" << d;
      ++expect_tag;
      // Causality: no packet arrives before send + min latency.
      EXPECT_GE(out.arrive_time, out.send_time + 1);
    }
  }
  EXPECT_EQ(received, kPackets);
  EXPECT_TRUE(net.idle());
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkTraffic, ::testing::Values(2, 3, 16, 64));

// ------------------------------------------- Deterministic delivery order ---

TEST(Network, SameInstantArrivalsOrderedBySourceNotSendCallOrder) {
  // Fully connected: nodes 1 and 3 are both one hop from 2, so identical
  // packets sent at the same instant arrive at the same instant. The higher
  // source sends *first*, yet the lower source must be delivered first:
  // tiebreak is (arrive_time, src, seq) — simulated quantities, not host
  // call order.
  sim::CostModel cm = sim::CostModel::ap1000();
  net::Network net(Topology(TopologyKind::kFullyConnected, 4), &cm);
  net.send(make_pkt(3, 2, 0, /*tag=*/33), net::AmCategory::kObjectMessage);
  net.send(make_pkt(1, 2, 0, /*tag=*/11), net::AmCategory::kObjectMessage);
  Packet out;
  ASSERT_TRUE(net.poll(2, sim::kInstrInf, out));
  EXPECT_EQ(out.src, 1);
  EXPECT_EQ(out.at(0), 11u);
  ASSERT_TRUE(net.poll(2, sim::kInstrInf, out));
  EXPECT_EQ(out.src, 3);
}

TEST(Network, SeqNumbersArePerSource) {
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(4, &cm);
  net.send(make_pkt(0, 2, 0), net::AmCategory::kObjectMessage);
  net.send(make_pkt(1, 2, 0), net::AmCategory::kObjectMessage);
  net.send(make_pkt(0, 3, 0), net::AmCategory::kObjectMessage);
  std::map<int, std::vector<std::uint64_t>> seqs_by_src;
  Packet out;
  for (int d = 0; d < 4; ++d) {
    while (net.poll(d, sim::kInstrInf, out)) {
      seqs_by_src[out.src].push_back(out.seq);
    }
  }
  EXPECT_EQ(seqs_by_src[0], (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(seqs_by_src[1], (std::vector<std::uint64_t>{0}));
}

TEST(Network, MinPacketLatencyIsAPositiveLowerBound) {
  for (auto cm : {sim::CostModel::ap1000(), sim::CostModel::zero()}) {
    auto net = make_net(16, &cm);
    sim::Instr look = net.min_packet_latency();
    EXPECT_GT(look, 0u);
    // Empirically no packet beats the bound, including the 0-hop self-send.
    for (int dst = 0; dst < 16; ++dst) {
      net.send(make_pkt(0, dst, 0), net::AmCategory::kObjectMessage);
    }
    Packet out;
    for (int dst = 0; dst < 16; ++dst) {
      while (net.poll(dst, sim::kInstrInf, out)) {
        EXPECT_GE(out.arrive_time - out.send_time, look);
      }
    }
  }
}

// ------------------------------------------------------ Outbox + merging ---

TEST(Network, OutboxBuffersUntilFlush) {
  sim::CostModel cm = sim::CostModel::ap1000();
  auto net = make_net(4, &cm);
  net::Network::Outbox ob;
  net.set_outbox(0, &ob);
  ob.set_current_key(0);
  net.send(make_pkt(0, 1, 0), net::AmCategory::kObjectMessage);
  EXPECT_EQ(ob.size(), 1u);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.next_arrival(1), sim::kInstrInf);  // nothing committed yet
  net::Network::Outbox* boxes[] = {&ob};
  net.flush_outboxes(boxes, 1);
  EXPECT_TRUE(ob.empty());
  EXPECT_EQ(net.in_flight(), 1u);
  Packet out;
  ASSERT_TRUE(net.poll(1, sim::kInstrInf, out));
  net.set_outbox(0, nullptr);
}

TEST(Network, FlushCommitsInCanonicalKeySrcOrderAcrossOutboxes) {
  // Two outboxes holding interleaved quantum keys: after the flush, seqs and
  // channel floors must equal those of a direct-send network that issued the
  // same packets in ascending (key, src) order.
  sim::CostModel cm = sim::CostModel::ap1000();
  auto buffered = make_net(4, &cm);
  auto direct = make_net(4, &cm);

  net::Network::Outbox ob0, ob1;
  buffered.set_outbox(0, &ob0);
  buffered.set_outbox(1, &ob1);
  // Worker 0 runs node 0's quanta at keys 50 then 70; worker 1 runs node
  // 1's quantum at key 60. Host issue order is scrambled on purpose.
  ob0.set_current_key(50);
  buffered.send(make_pkt(0, 2, 50, 1), net::AmCategory::kObjectMessage);
  ob0.set_current_key(70);
  buffered.send(make_pkt(0, 2, 70, 3), net::AmCategory::kObjectMessage);
  ob1.set_current_key(60);
  buffered.send(make_pkt(1, 2, 60, 2), net::AmCategory::kObjectMessage);
  net::Network::Outbox* boxes[] = {&ob1, &ob0};  // order must not matter
  buffered.flush_outboxes(boxes, 2);

  direct.send(make_pkt(0, 2, 50, 1), net::AmCategory::kObjectMessage);
  direct.send(make_pkt(1, 2, 60, 2), net::AmCategory::kObjectMessage);
  direct.send(make_pkt(0, 2, 70, 3), net::AmCategory::kObjectMessage);

  Packet a, b;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(buffered.poll(2, sim::kInstrInf, a));
    ASSERT_TRUE(direct.poll(2, sim::kInstrInf, b));
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.arrive_time, b.arrive_time);
    EXPECT_EQ(a.at(0), b.at(0));
  }
  EXPECT_EQ(buffered.stats().packets, direct.stats().packets);
  EXPECT_EQ(buffered.stats().wire_latency_instr.mean(),
            direct.stats().wire_latency_instr.mean());
  EXPECT_EQ(buffered.stats().wire_latency_instr.variance(),
            direct.stats().wire_latency_instr.variance());
}

TEST(NetworkStats, MergeMatchesCombinedAccumulation) {
  sim::CostModel cm = sim::CostModel::ap1000();
  auto whole = make_net(8, &cm);
  auto part_a = make_net(8, &cm);
  auto part_b = make_net(8, &cm);
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    int src = static_cast<int>(rng.below(8));
    int dst = static_cast<int>(rng.below(8));
    // Widely spaced send times: the per-channel FIFO clamp never engages, so
    // each packet's latency is independent of which network carried it.
    auto t = static_cast<sim::Instr>(i) * 1000;
    auto cat = static_cast<net::AmCategory>(rng.below(4));
    whole.send(make_pkt(src, dst, t), cat);
    (i % 2 == 0 ? part_a : part_b).send(make_pkt(src, dst, t), cat);
  }
  net::Network::Stats merged = part_a.stats();
  merged.merge(part_b.stats());
  EXPECT_EQ(merged.packets, whole.stats().packets);
  EXPECT_EQ(merged.payload_words, whole.stats().payload_words);
  EXPECT_EQ(merged.wire_words, whole.stats().wire_words);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(merged.per_category[c], whole.stats().per_category[c]);
  }
  EXPECT_EQ(merged.wire_latency_instr.count(),
            whole.stats().wire_latency_instr.count());
  // Welford merge is algebraically exact; floating point makes it only
  // near-exact vs a straight-line accumulation.
  EXPECT_NEAR(merged.wire_latency_instr.mean(),
              whole.stats().wire_latency_instr.mean(), 1e-9);
  EXPECT_NEAR(merged.wire_latency_instr.variance(),
              whole.stats().wire_latency_instr.variance(), 1e-6);
  EXPECT_EQ(merged.wire_latency_instr.min(), whole.stats().wire_latency_instr.min());
  EXPECT_EQ(merged.wire_latency_instr.max(), whole.stats().wire_latency_instr.max());
}

}  // namespace
