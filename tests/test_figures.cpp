// Direct reproductions of the paper's worked examples:
//   Figure 1 — the intra-node scheduling strategy (A, B, C on one node);
//   Figure 3 — stack unwinding on a now-type send to an active object
//              (S, R, and S's activator O).
// Plus fidelity tests for the lazy heap spill (Section 4.3): every frame
// field must survive the stack-to-heap copy and resumption.
#include <gtest/gtest.h>

#include "support.hpp"

namespace {

using namespace abcl;
using namespace abcl::testsup;

// ---------------------------------------------------------------------------
// Figure 1. "A sends a message to B. B starts execution immediately. B sends
// a message to C. C starts execution immediately. C sends the second message
// to B, and C continues execution because B is already active. After C
// finished its execution, B executes the rest of the method. When B finishes
// its method, B enqueues itself in the scheduling queue and will be
// scheduled later."
// ---------------------------------------------------------------------------

namespace fig1 {
// "fig1.step" [stage, a2, b2, c2]: scripted sends per the figure.
// Object identities are passed as creation arg (tag) for logging.
struct State {
  std::int64_t tag = 0;
  void on_create(const Msg& m) { tag = m.i64(0); }
};

struct StepFrame : Frame {
  std::int64_t stage = 0;
  MailAddr b, c;
  PatternId pat = 0;
  static void init(StepFrame& f, const Msg& m) {
    f.stage = m.i64(0);
    f.b = m.addr(1);
    f.c = m.addr(3);
    f.pat = m.pattern;
  }
  static Status run(Ctx& ctx, State& self, StepFrame& f) {
    log_event("enter" + std::to_string(self.tag) + ".s" + std::to_string(f.stage));
    if (f.stage == 1) {
      // A's method: send to B (stage 2).
      Word a[5];
      a[0] = 2;
      a[1] = f.b.word_node();
      a[2] = f.b.word_ptr();
      a[3] = f.c.word_node();
      a[4] = f.c.word_ptr();
      ctx.send_past(f.b, f.pat, a, 5);
    } else if (f.stage == 2) {
      // B's method: send to C (stage 3) — C runs immediately; when control
      // returns here, "B executes the rest of the method" (step 4).
      Word a[5];
      a[0] = 3;
      a[1] = ctx.self_addr().word_node();
      a[2] = ctx.self_addr().word_ptr();
      a[3] = f.c.word_node();
      a[4] = f.c.word_ptr();
      ctx.send_past(f.c, f.pat, a, 5);
      log_event("rest-of-B");
    } else if (f.stage == 3) {
      // C's method: send the SECOND message to B (stage 4) — B is active,
      // so this buffers and C continues (step 3).
      Word a[5];
      a[0] = 4;
      a[1] = f.b.word_node();
      a[2] = f.b.word_ptr();
      a[3] = 0;
      a[4] = 0;
      ctx.send_past(f.b, f.pat, a, 5);
      log_event("C-continues");
    }
    log_event("exit" + std::to_string(self.tag) + ".s" + std::to_string(f.stage));
    return Status::kDone;
  }
};
}  // namespace fig1

TEST(Figure1, IntraNodeSchedulingStrategy) {
  core::Program prog;
  PatternId step = prog.patterns().intern("fig1.step", 5);
  ClassDef<fig1::State> def(prog, "Fig1");
  def.method<fig1::StepFrame>(step);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  clear_log();
  world.boot(0, [&](Ctx& ctx) {
    Word ta = 1, tb = 2, tc = 3;
    MailAddr a = ctx.create_local(def.info(), &ta, 1);
    MailAddr b = ctx.create_local(def.info(), &tb, 1);
    MailAddr c = ctx.create_local(def.info(), &tc, 1);
    // Warm all three (lazy init) so the trace below is pure scheduling.
    Word w[5] = {0, 0, 0, 0, 0};
    ctx.send_past(a, step, w, 5);
    ctx.send_past(b, step, w, 5);
    ctx.send_past(c, step, w, 5);
    clear_log();
    Word a1[5] = {1, b.word_node(), b.word_ptr(), c.word_node(), c.word_ptr()};
    ctx.send_past(a, step, a1, 5);
    // Steps 1-4 all happened synchronously on this stack; B's buffered
    // second message is pending in the scheduling queue (step 5).
    EXPECT_EQ(b.ptr->sched_state, core::SchedState::kQueuedNext);
  });
  world.run();

  const std::vector<std::string> expected = {
      "enter1.s1",      // A starts (step 1: B invoked immediately below)
      "enter2.s2",      //   B starts on A's stack
      "enter3.s3",      //     C starts on B's stack (step 2)
      "C-continues",    //     C's second message to B buffered (step 3)
      "exit3.s3",       //     C finishes
      "rest-of-B",      //   B executes the rest of its method (step 4)
      "exit2.s2",       //   B finishes; enqueues itself (step 5)
      "exit1.s1",       // A resumes and finishes
      "enter2.s4",      // the buffered message runs via the scheduling queue
      "exit2.s4",
  };
  EXPECT_EQ(event_log(), expected);
}

// ---------------------------------------------------------------------------
// Figure 3. "S sends now type message m to R and m is enqueued. S checks the
// reply destination object to find that no reply has arrived and saves its
// context into a heap-allocated frame. When R gets control, it enqueues
// itself into the scheduling queue at the end of the method. m is eventually
// scheduled and the reply reaches S."
// ---------------------------------------------------------------------------

namespace fig3 {
// R: a Delay-like object whose "fig3.m" replies immediately — but the test
// arranges for R to be ACTIVE when m arrives, so m buffers.
struct RState {
  std::int64_t serviced = 0;
};
struct MFrame : Frame {
  ReplyDest rd;
  static void init(MFrame& f, const Msg& m) { f.rd = m.reply; }
  static Status run(Ctx& ctx, RState& self, MFrame& f) {
    log_event("R-services-m");
    self.serviced += 1;
    Word v = 99;
    ctx.reply(f.rd, &v, 1);
    return Status::kDone;
  }
};
// "fig3.busy" [s_node, s_ptr, ask_pat]: while R runs this method (active!),
// it pokes S's `go`, making S send m to the active R.
struct BusyFrame : Frame {
  MailAddr s;
  PatternId go_pat = 0;
  Word m_pat = 0;
  static void init(BusyFrame& f, const Msg& m) {
    f.s = m.addr(0);
    f.go_pat = static_cast<PatternId>(m.at(2));
    f.m_pat = m.at(3);
  }
  static Status run(Ctx& ctx, RState&, BusyFrame& f) {
    log_event("R-busy-begin");
    // S runs now (dormant), sends m to us — we are active, m buffers, S
    // blocks, control returns here ("resumes the object which activated S").
    Word args[3] = {ctx.self_addr().word_node(), ctx.self_addr().word_ptr(),
                    f.m_pat};
    ctx.send_past(f.s, f.go_pat, args, 3);
    log_event("R-busy-end");
    return Status::kDone;
  }
};
}  // namespace fig3

TEST(Figure3, StackUnwindingOnNowTypeToActiveReceiver) {
  core::Program prog;
  AskerProgram ap = register_asker(prog);  // S: send_now + await
  PatternId m_pat = prog.patterns().intern("fig3.m", 0);
  PatternId busy = prog.patterns().intern("fig3.busy", 4);
  ClassDef<fig3::RState> rdef(prog, "Fig3R");
  rdef.method<fig3::MFrame>(m_pat);
  rdef.method<fig3::BusyFrame>(busy);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  clear_log();
  MailAddr s, r;
  world.boot(0, [&](Ctx& ctx) {
    r = ctx.create_local(rdef.info(), nullptr, 0);
    s = ctx.create_local(*ap.cls, nullptr, 0);
    Word args[4] = {s.word_node(), s.word_ptr(), ap.go, m_pat};
    ctx.send_past(r, busy, args, 4);
    // At this point: S blocked with a heap frame, R's queue holds m, R is
    // scheduled (its epilogue found the buffered m).
    EXPECT_EQ(s.ptr->mode, core::Mode::kWaiting);
    EXPECT_NE(s.ptr->blocked_frame, nullptr);
    EXPECT_EQ(r.ptr->mq.size(), 1u);
    EXPECT_EQ(r.ptr->sched_state, core::SchedState::kQueuedNext);
    EXPECT_FALSE(s.ptr->state_as<AskerState>()->completed);
  });
  world.run();  // m is eventually scheduled and the reply reaches S

  EXPECT_TRUE(s.ptr->state_as<AskerState>()->completed);
  EXPECT_EQ(s.ptr->state_as<AskerState>()->got, 99);
  const std::vector<std::string> expected = {
      "R-busy-begin",
      "R-busy-end",     // S's m was buffered; S blocked; R finished first
      "R-services-m",   // scheduled later; its reply resumes S
      "asker-done",
  };
  EXPECT_EQ(event_log(), expected);
}

// ---------------------------------------------------------------------------
// Spill fidelity: a frame with many live fields blocks twice; every field
// must survive the memcpy spill and both resumptions.
// ---------------------------------------------------------------------------

namespace spill {
struct State {
  std::int64_t result = 0;
};
struct BigFrame : Frame {
  std::int64_t a = 0, b = 0, c = 0;
  double d = 0;
  MailAddr target;
  std::uint32_t arr[6] = {};
  NowCall c1, c2;
  static void init(BigFrame& f, const Msg& m) {
    f.a = m.i64(0);
    f.target = m.addr(1);
    f.b = f.a * 3;
    f.c = -f.a;
    f.d = 0.5 * static_cast<double>(f.a);
    for (int i = 0; i < 6; ++i) f.arr[i] = static_cast<std::uint32_t>(i + 7);
  }
  static Status run(Ctx& ctx, State& self, BigFrame& f) {
    ABCL_BEGIN(f);
    f.c1 = ctx.send_now(f.target, ctx.program().patterns().id_of("delay.ask"),
                        nullptr, 0);
    ABCL_AWAIT(ctx, f, 1, f.c1);  // blocks (Delay holds the reply)
    f.b += static_cast<std::int64_t>(ctx.take_reply(f.c1));
    f.c2 = ctx.send_now(f.target, ctx.program().patterns().id_of("delay.ask"),
                        nullptr, 0);
    ABCL_AWAIT(ctx, f, 2, f.c2);  // blocks again (frame already on heap)
    f.b += static_cast<std::int64_t>(ctx.take_reply(f.c2));
    {
      std::int64_t sum = 0;
      for (int i = 0; i < 6; ++i) sum += f.arr[i];
      self.result = f.a + f.b + f.c + static_cast<std::int64_t>(f.d * 2) + sum;
    }
    ABCL_END();
  }
};
}  // namespace spill

TEST(Spill, AllFrameFieldsSurviveRepeatedBlocks) {
  core::Program prog;
  DelayProgram dp = register_delay(prog);
  PatternId go = prog.patterns().intern("spill.go", 3);
  ClassDef<spill::State> def(prog, "Spill");
  def.method<spill::BigFrame>(go);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  MailAddr sp, d;
  world.boot(0, [&](Ctx& ctx) {
    d = ctx.create_local(*dp.cls, nullptr, 0);
    sp = ctx.create_local(def.info(), nullptr, 0);
    Word args[3] = {1000, d.word_node(), d.word_ptr()};
    ctx.send_past(sp, go, args, 3);
    EXPECT_EQ(sp.ptr->mode, core::Mode::kWaiting);
    Word v1 = 11;
    ctx.send_past(d, dp.kick, &v1, 1);  // resume #1; blocks again
    EXPECT_EQ(sp.ptr->mode, core::Mode::kWaiting);
    Word v2 = 31;
    ctx.send_past(d, dp.kick, &v2, 1);  // resume #2; completes
  });
  world.run();
  // a=1000, b=3000+11+31, c=-1000, d*2=1000, arr sum=7+..+12=57
  EXPECT_EQ(sp.ptr->state_as<spill::State>()->result,
            1000 + 3042 - 1000 + 1000 + 57);
  EXPECT_EQ(world.total_stats().blocks_await, 2u);
  EXPECT_EQ(world.total_stats().resumes, 2u);
}

}  // namespace
