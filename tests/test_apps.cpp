// App-level tests: fork-join Fibonacci, ping-pong latency, the completion
// latch, and the inlined-send guard (Section 8.2).
#include <gtest/gtest.h>

#include "apps/counters.hpp"
#include "apps/fib.hpp"
#include "apps/pingpong.hpp"
#include "support.hpp"

namespace {

using namespace abcl;

// ------------------------------------------------------------------ Fib ----

class FibValues : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FibValues, CorrectOnAnyWorld) {
  auto [n, nodes] = GetParam();
  static constexpr std::int64_t kFib[] = {0, 1, 1, 2, 3, 5, 8, 13, 21, 34,
                                          55, 89, 144, 233, 377, 610};
  core::Program prog;
  auto fp = apps::register_fib(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(nodes);
  World world(prog, cfg);
  auto r = apps::run_fib(world, fp, n);
  EXPECT_EQ(r.value, kFib[n]);
}

INSTANTIATE_TEST_SUITE_P(Grid, FibValues,
                         ::testing::Combine(::testing::Values(0, 1, 2, 7, 12, 15),
                                            ::testing::Values(1, 2, 8)));

TEST(Fib, RetiredCallNodesAreReclaimed) {
  core::Program prog;
  auto fp = apps::register_fib(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  apps::run_fib(world, fp, 14);
  // Every Fib object retires after replying; only pool chunks remain.
  EXPECT_EQ(world.total_live_objects(), 0u);
  EXPECT_GT(world.total_created_objects(), 500u);
}

// ------------------------------------------------------------- PingPong ----

TEST(PingPong, IntraNodeLatencyMatchesDormantCost) {
  core::Program prog;
  auto pp = apps::register_pingpong(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  auto r = apps::run_pingpong(world, pp, 0, 0, 1000);
  // Table 1: intra-node past-type to a dormant object = 2.3 us region.
  // (The bouncing object pair alternates dormant/active: k messages to a
  //  dormant receiver run inline; the measured mean stays in the band.)
  EXPECT_GT(r.us_per_message, 0.5);
  EXPECT_LT(r.us_per_message, 12.0);
}

TEST(PingPong, InterNodeLatencyInPaperBand) {
  core::Program prog;
  auto pp = apps::register_pingpong(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  auto r = apps::run_pingpong(world, pp, 0, 1, 2000);
  // Table 1: minimum inter-node latency 8.9 us; we assert the same order of
  // magnitude (5..15 us) — calibration details are reported by the bench.
  EXPECT_GT(r.us_per_message, 4.0);
  EXPECT_LT(r.us_per_message, 16.0);
}

TEST(PingPong, LatencyGrowsWithDistance) {
  core::Program prog;
  auto pp = apps::register_pingpong(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(64);  // 8x8 torus
  cfg.with_topology(net::TopologyKind::kMesh2D);
  World world1(prog, cfg);
  auto near = apps::run_pingpong(world1, pp, 0, 1, 500);
  World world2(prog, cfg);
  auto far = apps::run_pingpong(world2, pp, 0, 63, 500);
  EXPECT_GT(far.us_per_message, near.us_per_message);
}

// ---------------------------------------------------------------- Latch ----

TEST(Latch, AccumulatesAndCompletes) {
  core::Program prog;
  auto lp = register_completion_latch(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  MailAddr l;
  world.boot(0, [&](Ctx& ctx) {
    l = ctx.create_local(*lp.cls, nullptr, 0);
    ctx.send_past(l, lp.expect, {3});
    ctx.send_past(l, lp.done, {10});
    ctx.send_past(l, lp.done, {20});
    EXPECT_FALSE(latch_state(l).done());
    ctx.send_past(l, lp.done, {12});
    EXPECT_TRUE(latch_state(l).done());
  });
  world.run();
  EXPECT_EQ(latch_state(l).total, 42);
}

TEST(Latch, PendingGetIsAnsweredOnCompletion) {
  core::Program prog;
  auto lp = register_completion_latch(prog);
  auto ap = testsup::register_asker(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(1);
  World world(prog, cfg);
  MailAddr l, a;
  world.boot(0, [&](Ctx& ctx) {
    l = ctx.create_local(*lp.cls, nullptr, 0);
    ctx.send_past(l, lp.expect, {1});
    a = ctx.create_local(*ap.cls, nullptr, 0);
    Word args[3] = {l.word_node(), l.word_ptr(), lp.get};
    ctx.send_past(a, ap.go, args, 3);
    EXPECT_FALSE(a.ptr->state_as<testsup::AskerState>()->completed);
    ctx.send_past(l, lp.done, {5});
    EXPECT_TRUE(a.ptr->state_as<testsup::AskerState>()->completed);
    EXPECT_EQ(a.ptr->state_as<testsup::AskerState>()->got, 5);
  });
  world.run();
}

// --------------------------------------------------- Inlined sends (8.2) ----

TEST(InlineGuard, HitsOnlyLocalDormantReceiversOfTheClass) {
  core::Program prog;
  auto cp = apps::register_counter(prog);
  auto dp = testsup::register_delay(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(2);
  World world(prog, cfg);
  MailAddr remote_c;
  world.boot(1, [&](Ctx& ctx) {
    remote_c = ctx.create_local(*cp.cls, nullptr, 0);
    ctx.send_past(remote_c, cp.inc, nullptr, 0);  // initialize
  });
  world.run();
  world.boot(0, [&](Ctx& ctx) {
    MailAddr c = ctx.create_local(*cp.cls, nullptr, 0);
    ctx.send_past(c, cp.inc, nullptr, 0);  // initialize -> dormant table
    EXPECT_TRUE(ctx.inline_guard(c, *cp.cls));        // local + dormant
    EXPECT_FALSE(ctx.inline_guard(remote_c, *cp.cls));  // remote
    MailAddr d = ctx.create_local(*dp.cls, nullptr, 0);
    EXPECT_FALSE(ctx.inline_guard(d, *cp.cls));  // wrong class (lazy table)
    // Uninitialized counter: lazy table, guard must miss.
    MailAddr fresh = ctx.create_local(*cp.cls, nullptr, 0);
    EXPECT_FALSE(ctx.inline_guard(fresh, *cp.cls));
  });
}

}  // namespace
