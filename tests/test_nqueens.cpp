// N-queens correctness and accounting across world shapes (the Section 6.2
// workload): solutions must be exact for every (N, nodes, policy,
// placement, topology) combination, object/message counts must match the
// sequential tree, and runs must be deterministic.
#include <gtest/gtest.h>

#include "apps/nqueens.hpp"
#include "apps/nqueens_seq.hpp"

namespace {

using namespace abcl;

constexpr std::int64_t kSolutions[] = {0, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724};

TEST(NQueensSeq, KnownSolutionCounts) {
  for (int n = 1; n <= 10; ++n) {
    auto r = apps::nqueens_seq(n, 10, 5);
    EXPECT_EQ(r.solutions, kSolutions[n]) << "n=" << n;
    EXPECT_GT(r.tree_nodes, 0u);
    EXPECT_GT(r.charged, 0u);
  }
}

TEST(NQueensSeq, ChargeFormulaIsLinear) {
  auto a = apps::nqueens_seq(7, 0, 1);
  auto b = apps::nqueens_seq(7, 100, 1);
  EXPECT_EQ(b.charged - a.charged, 100 * a.tree_nodes);
}

struct Shape {
  int n;
  int nodes;
  core::SchedPolicy policy;
  remote::PlacementKind placement;
  net::TopologyKind topology;
};

class NQueensShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(NQueensShapes, ExactSolutionsAndCounts) {
  const Shape s = GetParam();
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();

  WorldConfig cfg;
  cfg.with_nodes(s.nodes);
  cfg.node.policy = s.policy;
  cfg.with_placement(s.placement);
  cfg.with_topology(s.topology);
  World world(prog, cfg);

  apps::NQueensParams p;
  p.n = s.n;
  auto r = apps::run_nqueens(world, np, p);
  EXPECT_EQ(r.solutions, kSolutions[s.n]);

  auto seq = apps::nqueens_seq(s.n, p.charge_base, p.charge_per_col);
  EXPECT_EQ(r.objects_created, seq.tree_nodes);
  EXPECT_EQ(r.messages, 2 * seq.tree_nodes);
  EXPECT_GT(r.sim_time, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NQueensShapes,
    ::testing::Values(
        Shape{4, 1, core::SchedPolicy::kStack, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kTorus2D},
        Shape{6, 1, core::SchedPolicy::kNaive, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kTorus2D},
        Shape{7, 4, core::SchedPolicy::kStack, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kTorus2D},
        Shape{7, 4, core::SchedPolicy::kNaive, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kTorus2D},
        Shape{8, 16, core::SchedPolicy::kStack, remote::PlacementKind::kRandom,
              net::TopologyKind::kTorus2D},
        Shape{8, 16, core::SchedPolicy::kStack, remote::PlacementKind::kNeighbor,
              net::TopologyKind::kTorus2D},
        Shape{8, 16, core::SchedPolicy::kStack, remote::PlacementKind::kSelf,
              net::TopologyKind::kTorus2D},
        Shape{8, 13, core::SchedPolicy::kStack, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kMesh2D},
        Shape{8, 16, core::SchedPolicy::kStack, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kFullyConnected},
        Shape{9, 64, core::SchedPolicy::kStack, remote::PlacementKind::kRoundRobin,
              net::TopologyKind::kTorus2D},
        Shape{9, 64, core::SchedPolicy::kStack, remote::PlacementKind::kLeastLoaded,
              net::TopologyKind::kTorus2D}));

TEST(NQueens, ParallelismActuallyHelps) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  apps::NQueensParams p;
  p.n = 9;

  sim::Instr t1, t16;
  {
    WorldConfig cfg;
    cfg.with_nodes(1);
    World world(prog, cfg);
    t1 = apps::run_nqueens(world, np, p).sim_time;
  }
  {
    WorldConfig cfg;
    cfg.with_nodes(16);
    World world(prog, cfg);
    t16 = apps::run_nqueens(world, np, p).sim_time;
  }
  EXPECT_LT(static_cast<double>(t16), static_cast<double>(t1) / 3.0);
}

TEST(NQueens, StackBeatsNaive) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  apps::NQueensParams p;
  p.n = 8;

  sim::Instr stack_t, naive_t;
  {
    WorldConfig cfg;
    cfg.with_nodes(16);
    World world(prog, cfg);
    stack_t = apps::run_nqueens(world, np, p).sim_time;
  }
  {
    WorldConfig cfg;
    cfg.with_nodes(16);
    cfg.node.policy = core::SchedPolicy::kNaive;
    World world(prog, cfg);
    naive_t = apps::run_nqueens(world, np, p).sim_time;
  }
  // Figure 6: stack scheduling is substantially faster.
  EXPECT_LT(static_cast<double>(stack_t), static_cast<double>(naive_t));
}

TEST(NQueens, MajorityOfLocalMessagesHitDormantObjects) {
  core::Program prog;
  auto np = apps::register_nqueens(prog);
  prog.finalize();
  WorldConfig cfg;
  cfg.with_nodes(16);
  World world(prog, cfg);
  apps::NQueensParams p;
  p.n = 9;
  auto r = apps::run_nqueens(world, np, p);
  // Section 6.3: "approximately 75% of local messages are sent to dormant
  // mode objects". Allow a generous band.
  double frac = static_cast<double>(r.stats.local_to_dormant) /
                static_cast<double>(r.stats.local_sends);
  EXPECT_GT(frac, 0.5);
}

TEST(NQueens, DeterministicAcrossIdenticalRuns) {
  apps::NQueensParams p;
  p.n = 8;
  auto run_once = [&](std::uint64_t seed) {
    core::Program prog;
    auto np = apps::register_nqueens(prog);
    prog.finalize();
    WorldConfig cfg;
    cfg.with_nodes(16);
    cfg.with_placement(remote::PlacementKind::kRandom);  // exercises the RNG
    cfg.with_seed(seed);
    World world(prog, cfg);
    auto r = apps::run_nqueens(world, np, p);
    return std::tuple<sim::Instr, std::uint64_t, std::int64_t>(
        r.sim_time, r.rep.quanta, r.solutions);
  };
  auto a = run_once(7);
  auto b = run_once(7);
  auto c = run_once(8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::get<2>(c), 92);
  // A different seed changes placement, hence (almost surely) timing.
  EXPECT_NE(std::get<0>(a), std::get<0>(c));
}

TEST(NQueens, PaperCalibratedWorkModelAnchors) {
  auto p8 = apps::NQueensParams::paper_calibrated(8);
  auto p13 = apps::NQueensParams::paper_calibrated(13);
  auto seq8 = apps::nqueens_seq(8, p8.charge_base, p8.charge_per_col);
  // Table 4: N=8 sequential elapsed 84 ms on the 25 MHz SS1+.
  double ms8 = sim::CostModel::ap1000().ms(seq8.charged);
  EXPECT_GT(ms8, 60.0);
  EXPECT_LT(ms8, 110.0);
  EXPECT_GT(p13.charge_base, p8.charge_base);
}

}  // namespace
